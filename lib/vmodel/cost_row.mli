(** One row of the configuration cost table (paper Table 1).

    A row summarizes one explored state: the configuration constraint that
    selects it, the input (workload) predicate that triggers it, its cost
    metrics, and its call-chain information for differential critical-path
    analysis. *)

type t = {
  state_id : int;
  config_constraints : Vsmt.Expr.t list;
  workload_pred : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  traced_latency_us : float;
  chain : string list;  (** call-chain function names in cid order *)
  nodes : Vtrace.Callpath.node list;
  critical_ops : string list;
      (** root-to-hottest-node path, root excluded — the "{log_write_buf →
          fil_flush}" column of Table 1 *)
}

val of_profile : Vtrace.Profile.t -> t

val satisfied_by : ?max_nodes:int -> t -> (string * int) list -> bool
(** Does a concrete configuration assignment satisfy the row's configuration
    constraints?  Variables missing from the assignment make the row not
    satisfied.  [max_nodes] bounds the residual-feasibility solver call
    (default 2_000 — residual predicates are one row's open conjuncts). *)

val workload_satisfied_by : ?max_nodes:int -> t -> (string * int) list -> bool
val pp_constraint : Vsmt.Expr.t Fmt.t
(** Friendly constraint rendering, parenthesizing disjunctions so lists can
    be joined with [&&]. *)

val pp : t Fmt.t
val constraint_string : t -> string

val content_key : t -> string
(** Deterministic rendering of everything but [state_id] and the call tree:
    two rows with equal keys are interchangeable as checker witnesses.  The
    checker sorts candidate pools by this key so row selection never depends
    on model row order (which [--fast-nondet] stops canonicalizing). *)
