(** Impact models compiled into solver-free decision tables (DESIGN.md
    Section 5j).

    [compile] pays once at registry-load time to turn an {!Impact_model}
    into pure-lookup structures for the checker's hot paths:

    - per-parameter interval sets ({!Vsmt.Iset}) over each row's
      footprint-sliced configuration constraints, so "which rows does this
      assignment satisfy" is hash lookups + binary searches;
    - a first-poor-pair table replacing the [pairs_between] list scan;
    - precomputed pair verdicts (differential comparison + critical path);
    - materialized comparison orders: per slow row, the tie groups of every
      candidate in the checker comparator's order, so ordering a query's
      candidates is a table walk instead of scoring and sorting them;
    - a joint-input feasibility table over the distinct workload-predicate
      classes, replacing the per-pair solver gate.

    The quadratic structures are built eagerly for models under the pair
    cap; beyond it they fill lazily on first query (each entry is
    deterministic, so memoization is exact and steady-state checks are
    pure lookups either way).

    Every structure is {e exact}, not approximate: a row whose constraints
    the compiler cannot close (mixed-origin symbols, unbound variables at
    query time, out-of-domain values) falls back to the
    {!Cost_row.satisfied_by} solver path — the hybrid mode.  Compiled
    artifacts are safe to share across serving domains: post-compile
    mutation is limited to atomic telemetry counters, atomically published
    deterministic caches and one mutex-guarded memo table. *)

type t

type stats = {
  rows_total : int;
  rows_closed : int;
      (** rows whose config constraints mention only config symbols — the
          ones expected to stay on the lookup path *)
  rows_open : int;  (** rows expected to need the solver fallback *)
  iset_params : int;  (** per-parameter interval sets built *)
  eval_constraints : int;  (** closed multi-variable constraints *)
  wclasses : int;  (** distinct workload-predicate classes *)
  joint_pairs : int;  (** precomputed joint-input feasibility verdicts *)
  joint_solver_calls : int;  (** solver calls spent filling the table *)
  verdict_pairs : int;  (** precomputed pair verdicts *)
  order_rows : int;  (** slow rows with an eagerly materialized order *)
  compile_s : float;
}

val compile : ?joint_max_nodes:int -> Impact_model.t -> t
(** [joint_max_nodes] must equal the checker's joint-input budget for the
    feasibility table to be used (defaults to 1_000 on both sides); a
    mismatched query budget falls back to a live solver call. *)

val model : t -> Impact_model.t
(** The exact model [compile] was given (physical identity — the checker
    uses this to reject a stale artifact). *)

val stats : t -> stats
val joint_max_nodes : t -> int

val fast_count : t -> int
(** Row-match decisions answered by the compiled tables (atomic counter). *)

val fallback_count : t -> int
(** Row-match decisions that fell back to the solver path (atomic
    counter). *)

val rows_matching : t -> (string * int) list -> Cost_row.t list
(** Byte-identical to {!Impact_model.rows_matching} (model row order). *)

val rows_matching_workload : t -> (string * int) list -> Cost_row.t list
(** Rows whose workload predicate the assignment satisfies, in model
    order — the compiled form of filtering by
    {!Cost_row.workload_satisfied_by}. *)

val mentions : t -> Cost_row.t -> string list -> bool
(** Whether any of the row's config constraints mention one of the given
    parameter names (precomputed name sets). *)

val is_poor_row : t -> Cost_row.t -> bool

val comparison_order : t -> cap:int -> slow:Cost_row.t -> Cost_row.t list -> Cost_row.t list
(** Byte-identical to the checker's reference ordering: drop candidates
    sharing [slow]'s state id, stable-sort the rest by descending
    [(workload_score, score)], keep the first [cap].  Answered by walking
    [slow]'s materialized tie groups; a slow row or candidate that is not
    (physically) a model row falls back to live scoring. *)

val first_witness :
  t ->
  cap:int ->
  max_nodes:int ->
  require_joint_input:bool ->
  slow:Cost_row.t ->
  Cost_row.t list ->
  (Cost_row.t * (float * string * string list)) option
(** The checker's witness scan as one memoized lookup: the first candidate
    in {!comparison_order} that passes the joint-input gate (when
    [require_joint_input]) and yields a {!verdict}, together with that
    verdict.  Memoized per candidate view, slow row, gate flag and joint
    budget — every input deciding the scan — so steady-state checks answer
    from the table; foreign rows take the live walk. *)

val joint_feasible : t -> max_nodes:int -> slow:Cost_row.t -> fast:Cost_row.t -> bool
(** The checker's joint-input gate: feasibility of
    [slow.workload_pred @ fast.workload_pred].  A table lookup when
    [max_nodes] matches {!joint_max_nodes} and the class pair was
    precomputed; a live solver call otherwise. *)

val verdict : t -> slow:Cost_row.t -> fast:Cost_row.t -> (float * string * string list) option
(** The checker's post-gate judgement for the ordered pair: the first
    recorded poor pair if any, else the differential comparison — [(ratio,
    trigger, critical_path)]. *)
