(* Expressions are hash-consed, so "the same constraint appears in both
   rows" is physical equality — no text rendering, no structural walks.
   [List.memq] keeps the historical appearance-count semantics: the
   pre-hashconsing code compared rendered constraint text, and two
   constraints print alike exactly when they are the same node. *)
let appearance_count a b =
  List.fold_left (fun acc c -> if List.memq c b then acc + 1 else acc) 0 a

(* Footprint screen: config/workload constraint lists only ever hold
   expressions that mention a variable, so two lists with symbol-disjoint
   footprints cannot share a node — the count is 0 without any memq walk.
   Footprints are memoized per hash-consed node, so the screen costs a
   couple of sorted-array merges per pair. *)
let screened_count a b =
  let fa = Vsmt.Footprint.of_list a and fb = Vsmt.Footprint.of_list b in
  if not (Vsmt.Footprint.overlaps fa fb) then 0 else appearance_count a b

let score (a : Cost_row.t) (b : Cost_row.t) =
  screened_count a.Cost_row.config_constraints b.Cost_row.config_constraints

let workload_score (a : Cost_row.t) (b : Cost_row.t) =
  screened_count a.Cost_row.workload_pred b.Cost_row.workload_pred

(* Ranking is quadratic in the number of states; per-pair work is now a few
   pointer comparisons per constraint (none at all for footprint-disjoint
   pairs). *)
let rank_pairs rows =
  let arr = Array.of_list rows in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s = score arr.(i) arr.(j) + workload_score arr.(i) arr.(j) in
      pairs := (arr.(i), arr.(j), s) :: !pairs
    done
  done;
  List.stable_sort (fun (_, _, s1) (_, _, s2) -> Int.compare s2 s1) (List.rev !pairs)
