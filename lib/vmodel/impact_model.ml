module Sexp = Vsmt.Sexp
module Serial = Vsmt.Serial

type poor_pair_summary = {
  slow_id : int;
  fast_id : int;
  similarity : int;
  latency_ratio : float;
  trigger : string;
  critical_path : string list;
  max_differential_us : float;
}

type dropped_path = {
  dp_state_id : int;
  dp_config_constraints : Vsmt.Expr.t list;
  dp_latency_so_far_us : float;
}

type degradation_summary = {
  rungs : string list;
  deadline_hit : bool;
  dropped_paths : dropped_path list;
}

type t = {
  system : string;
  target : string;
  related : string list;
  threshold : float;
  rows : Cost_row.t list;
  poor_pairs : poor_pair_summary list;
  poor_state_ids : int list;
  max_ratio : float;
  explored_states : int;
  analysis_wall_s : float;
  virtual_analysis_s : float;
  degradation : degradation_summary option;
}

let is_degraded t =
  match t.degradation with
  | None -> false
  | Some d -> d.deadline_hit || d.rungs <> [] || d.dropped_paths <> []

let summarize_pair (p : Diff_analysis.poor_pair) =
  {
    slow_id = p.Diff_analysis.slow.Cost_row.state_id;
    fast_id = p.Diff_analysis.fast.Cost_row.state_id;
    similarity = p.Diff_analysis.similarity;
    latency_ratio = p.Diff_analysis.latency_ratio;
    trigger = Diff_analysis.trigger_label p.Diff_analysis.triggers;
    critical_path = p.Diff_analysis.diff.Critical_path.critical_path;
    max_differential_us = p.Diff_analysis.diff.Critical_path.max_differential_us;
  }

let build ?degradation ~system ~target ~related ~rows ~analysis ~explored_states
    ~analysis_wall_s ~virtual_analysis_s () =
  {
    degradation;
    system;
    target;
    related;
    threshold = analysis.Diff_analysis.threshold;
    rows;
    poor_pairs = List.map summarize_pair analysis.Diff_analysis.pairs;
    poor_state_ids = analysis.Diff_analysis.poor_state_ids;
    max_ratio = analysis.Diff_analysis.max_ratio;
    explored_states;
    analysis_wall_s;
    virtual_analysis_s;
  }

let row_by_id t id = List.find_opt (fun r -> r.Cost_row.state_id = id) t.rows
let rows_matching t assignment = List.filter (fun r -> Cost_row.satisfied_by r assignment) t.rows
let poor_rows t = List.filter (fun r -> List.mem r.Cost_row.state_id t.poor_state_ids) t.rows
let is_poor_row t row = List.mem row.Cost_row.state_id t.poor_state_ids

let pairs_between t ~slow ~fast =
  List.filter
    (fun p ->
      p.slow_id = slow.Cost_row.state_id && p.fast_id = fast.Cost_row.state_id)
    t.poor_pairs

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let cost_to_sexp (c : Vruntime.Cost.t) =
  Sexp.list
    [
      Sexp.float c.Vruntime.Cost.latency_us;
      Sexp.int c.Vruntime.Cost.instructions;
      Sexp.int c.Vruntime.Cost.syscalls;
      Sexp.int c.Vruntime.Cost.io_calls;
      Sexp.int c.Vruntime.Cost.io_bytes;
      Sexp.int c.Vruntime.Cost.sync_ops;
      Sexp.int c.Vruntime.Cost.net_ops;
      Sexp.int c.Vruntime.Cost.allocations;
      Sexp.int c.Vruntime.Cost.cache_ops;
    ]

let ( let* ) = Result.bind

let cost_of_sexp = function
  | Sexp.List [ lat; insn; sys; ioc; iob; sync; net; alloc; cache ] -> begin
    match
      ( Sexp.to_float lat, Sexp.to_int insn, Sexp.to_int sys, Sexp.to_int ioc,
        Sexp.to_int iob, Sexp.to_int sync, Sexp.to_int net, Sexp.to_int alloc,
        Sexp.to_int cache )
    with
    | ( Some latency_us, Some instructions, Some syscalls, Some io_calls, Some io_bytes,
        Some sync_ops, Some net_ops, Some allocations, Some cache_ops ) ->
      Ok
        {
          Vruntime.Cost.latency_us;
          instructions;
          syscalls;
          io_calls;
          io_bytes;
          sync_ops;
          net_ops;
          allocations;
          cache_ops;
        }
    | _ -> Error "cost: malformed field"
  end
  | s -> Error ("cost: unrecognized " ^ Sexp.to_string s)

let row_to_sexp (r : Cost_row.t) =
  Sexp.list
    [
      Sexp.atom "row";
      Sexp.int r.Cost_row.state_id;
      Sexp.list (List.map Serial.expr_to_sexp r.Cost_row.config_constraints);
      Sexp.list (List.map Serial.expr_to_sexp r.Cost_row.workload_pred);
      cost_to_sexp r.Cost_row.cost;
      Sexp.float r.Cost_row.traced_latency_us;
      Sexp.list (List.map Sexp.atom r.Cost_row.critical_ops);
    ]

let exprs_of_sexp = function
  | Sexp.List items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* e = Serial.expr_of_sexp item in
        Ok (acc @ [ e ]))
      (Ok []) items
  | s -> Error ("rows: expected list, got " ^ Sexp.to_string s)

let atoms_of_sexp = function
  | Sexp.List items ->
    let names = List.filter_map Sexp.to_atom items in
    if List.length names = List.length items then Ok names else Error "expected atoms"
  | s -> Error ("expected list of atoms, got " ^ Sexp.to_string s)

let row_of_sexp = function
  | Sexp.List [ Sexp.Atom "row"; id; configs; workloads; cost; lat; crit ] -> begin
    match Sexp.to_int id, Sexp.to_float lat with
    | Some state_id, Some traced_latency_us ->
      let* config_constraints = exprs_of_sexp configs in
      let* workload_pred = exprs_of_sexp workloads in
      let* cost = cost_of_sexp cost in
      let* critical_ops = atoms_of_sexp crit in
      Ok
        {
          Cost_row.state_id;
          config_constraints;
          workload_pred;
          cost;
          traced_latency_us;
          chain = [];
          nodes = [];
          critical_ops;
        }
    | _ -> Error "row: malformed id or latency"
  end
  | s -> Error ("row: unrecognized " ^ Sexp.to_string s)

let pair_to_sexp p =
  Sexp.list
    [
      Sexp.atom "pair";
      Sexp.int p.slow_id;
      Sexp.int p.fast_id;
      Sexp.int p.similarity;
      Sexp.float p.latency_ratio;
      Sexp.atom p.trigger;
      Sexp.list (List.map Sexp.atom p.critical_path);
      Sexp.float p.max_differential_us;
    ]

let pair_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "pair"; slow; fast; sim; ratio; Sexp.Atom trigger; crit; maxd ] -> begin
    match Sexp.to_int slow, Sexp.to_int fast, Sexp.to_int sim, Sexp.to_float ratio,
          Sexp.to_float maxd with
    | Some slow_id, Some fast_id, Some similarity, Some latency_ratio, Some max_differential_us
      ->
      let* critical_path = atoms_of_sexp crit in
      Ok { slow_id; fast_id; similarity; latency_ratio; trigger; critical_path;
           max_differential_us }
    | _ -> Error "pair: malformed field"
  end
  | s -> Error ("pair: unrecognized " ^ Sexp.to_string s)

let field name = function
  | Sexp.List (Sexp.Atom tag :: rest) when String.equal tag name -> Some rest
  | _ -> None

let dropped_path_to_sexp dp =
  Sexp.list
    [
      Sexp.atom "dp";
      Sexp.int dp.dp_state_id;
      Sexp.list (List.map Serial.expr_to_sexp dp.dp_config_constraints);
      Sexp.float dp.dp_latency_so_far_us;
    ]

let dropped_path_of_sexp = function
  | Sexp.List [ Sexp.Atom "dp"; id; configs; lat ] -> begin
    match Sexp.to_int id, Sexp.to_float lat with
    | Some dp_state_id, Some dp_latency_so_far_us ->
      let* dp_config_constraints = exprs_of_sexp configs in
      Ok { dp_state_id; dp_config_constraints; dp_latency_so_far_us }
    | _ -> Error "dropped-path: malformed field"
  end
  | s -> Error ("dropped-path: unrecognized " ^ Sexp.to_string s)

let degradation_to_sexp d =
  Sexp.list
    [
      Sexp.atom "degradation";
      Sexp.list (Sexp.atom "rungs" :: List.map Sexp.atom d.rungs);
      Sexp.list [ Sexp.atom "deadline-hit"; Sexp.atom (string_of_bool d.deadline_hit) ];
      Sexp.list (Sexp.atom "dropped" :: List.map dropped_path_to_sexp d.dropped_paths);
    ]

let degradation_of_fields fields =
  let get name =
    match List.find_map (field name) fields with
    | Some rest -> Ok rest
    | None -> Error ("degradation: missing field " ^ name)
  in
  let* rungs = let* f = get "rungs" in atoms_of_sexp (Sexp.List f) in
  let* deadline_hit = let* f = get "deadline-hit" in
    match f with
    | [ Sexp.Atom ("true" | "false") as b ] ->
      Ok (Sexp.to_atom b = Some "true")
    | _ -> Error "degradation: bad deadline-hit" in
  let* dropped_paths = let* f = get "dropped" in
    List.fold_left
      (fun acc s -> let* acc = acc in let* dp = dropped_path_of_sexp s in Ok (acc @ [ dp ]))
      (Ok []) f in
  Ok { rungs; deadline_hit; dropped_paths }

let to_sexp t =
  Sexp.list
    ([
       Sexp.atom "impact-model";
       Sexp.list [ Sexp.atom "system"; Sexp.atom t.system ];
       Sexp.list [ Sexp.atom "target"; Sexp.atom t.target ];
       Sexp.list (Sexp.atom "related" :: List.map Sexp.atom t.related);
       Sexp.list [ Sexp.atom "threshold"; Sexp.float t.threshold ];
       Sexp.list (Sexp.atom "rows" :: List.map row_to_sexp t.rows);
       Sexp.list (Sexp.atom "pairs" :: List.map pair_to_sexp t.poor_pairs);
       Sexp.list (Sexp.atom "poor-states" :: List.map Sexp.int t.poor_state_ids);
       Sexp.list [ Sexp.atom "max-ratio"; Sexp.float t.max_ratio ];
       Sexp.list [ Sexp.atom "explored-states"; Sexp.int t.explored_states ];
       Sexp.list [ Sexp.atom "analysis-wall-s"; Sexp.float t.analysis_wall_s ];
       Sexp.list [ Sexp.atom "virtual-analysis-s"; Sexp.float t.virtual_analysis_s ];
     ]
    @ match t.degradation with None -> [] | Some d -> [ degradation_to_sexp d ])

let to_string t = Sexp.to_string (to_sexp t)

let of_sexp = function
  | Sexp.List (Sexp.Atom "impact-model" :: fields) ->
    let get name =
      match List.find_map (field name) fields with
      | Some rest -> Ok rest
      | None -> Error ("model: missing field " ^ name)
    in
    let* system = let* f = get "system" in
      match f with [ Sexp.Atom s ] -> Ok s | _ -> Error "model: bad system" in
    let* target = let* f = get "target" in
      match f with [ Sexp.Atom s ] -> Ok s | _ -> Error "model: bad target" in
    let* related = let* f = get "related" in atoms_of_sexp (Sexp.List f) in
    let* threshold = let* f = get "threshold" in
      match f with [ x ] -> Option.to_result ~none:"model: bad threshold" (Sexp.to_float x)
                 | _ -> Error "model: bad threshold" in
    let* rows = let* f = get "rows" in
      List.fold_left
        (fun acc s -> let* acc = acc in let* r = row_of_sexp s in Ok (acc @ [ r ]))
        (Ok []) f in
    let* poor_pairs = let* f = get "pairs" in
      List.fold_left
        (fun acc s -> let* acc = acc in let* p = pair_of_sexp s in Ok (acc @ [ p ]))
        (Ok []) f in
    let* poor_state_ids = let* f = get "poor-states" in
      let ids = List.filter_map Sexp.to_int f in
      if List.length ids = List.length f then Ok ids else Error "model: bad poor-states" in
    let float_field name = let* f = get name in
      match f with [ x ] -> Option.to_result ~none:("model: bad " ^ name) (Sexp.to_float x)
                 | _ -> Error ("model: bad " ^ name) in
    let int_field name = let* f = get name in
      match f with [ x ] -> Option.to_result ~none:("model: bad " ^ name) (Sexp.to_int x)
                 | _ -> Error ("model: bad " ^ name) in
    let* max_ratio = float_field "max-ratio" in
    let* explored_states = int_field "explored-states" in
    let* analysis_wall_s = float_field "analysis-wall-s" in
    let* virtual_analysis_s = float_field "virtual-analysis-s" in
    (* optional: models written before the resilience layer have no
       degradation section and load as complete (non-degraded) models *)
    let* degradation =
      match List.find_map (field "degradation") fields with
      | None -> Ok None
      | Some rest -> let* d = degradation_of_fields rest in Ok (Some d)
    in
    Ok
      {
        system;
        target;
        related;
        threshold;
        rows;
        poor_pairs;
        poor_state_ids;
        max_ratio;
        explored_states;
        analysis_wall_s;
        virtual_analysis_s;
        degradation;
      }
  | s -> Error ("model: unrecognized " ^ Sexp.to_string s)

let of_string s =
  let* sexp = Sexp.of_string s in
  of_sexp sexp

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    of_string content

let pp_cost_table ppf t =
  Fmt.pf ppf "Cost table for %s (%s), related = [%s]:@." t.target t.system
    (String.concat ", " t.related);
  List.iter
    (fun row ->
      let poor = if is_poor_row t row then " [POOR]" else "" in
      Fmt.pf ppf "%a%s@." Cost_row.pp row poor)
    t.rows
