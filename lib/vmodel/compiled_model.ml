module M = Impact_model
module Row = Cost_row
module Expr = Vsmt.Expr
module Iset = Vsmt.Iset

(* One decidable configuration (or workload) constraint:
   - [D_iset]: single-variable constraints on one parameter, merged into one
     interval set (the conjunction is the intersection of truth sets); the
     original exprs are kept for the exact out-of-domain evaluation path;
   - [D_eval]: a multi-variable constraint closed by direct evaluation once
     every variable is bound (Simplify folds variable-free expressions
     completely, so evaluation equals the substitute-and-simplify path). *)
type decision =
  | D_iset of {
      name : string;
      dom : Vsmt.Dom.t;
      allowed : Iset.t;
      exprs : Expr.t list;
    }
  | D_eval of { names : string list; expr : Expr.t }

type row_plan = {
  row : Row.t;
  idx : int;  (** position in model row order *)
  config_plan : decision array;
  workload_plan : decision array;
  name_set : (string, unit) Hashtbl.t;  (** distinct config-constraint vars *)
  wclass : int;  (** workload-predicate class index *)
}

type stats = {
  rows_total : int;
  rows_closed : int;
  rows_open : int;
  iset_params : int;
  eval_constraints : int;
  wclasses : int;
  joint_pairs : int;
  joint_solver_calls : int;
  verdict_pairs : int;
  order_rows : int;
  compile_s : float;
}

(* The candidate-occurrence view of one comparison-order query: positions of
   every model row in the (possibly duplicated) candidate list, plus the
   ordered results already walked for it.  Every slow row of one check
   orders the same candidate list, and steady-state checks repeat the same
   list content, so the view (and its per-slow results) are reused across
   checks — a reader validates element-wise physical identity of the
   candidates, which pins the results exactly.  Last-writer-wins under
   concurrent checks. *)
type occ_view = {
  oc_rows : Row.t list;  (** the exact list this view was built from *)
  oc_cap : int;
  oc_cand : Row.t array;
  oc_occ : int list array;  (** per row idx, occurrence positions in order *)
  oc_results : (int, Row.t list) Hashtbl.t;  (** slow idx -> ordered, capped *)
  oc_witness :
    (int * bool * int, (Row.t * (float * string * string list)) option) Hashtbl.t;
      (** (slow idx, joint gate, joint budget) -> first surviving candidate *)
}

type t = {
  cm_model : M.t;
  plans : row_plan array;  (** in model row order *)
  by_id : (int, row_plan) Hashtbl.t;
  poor_ids : (int, unit) Hashtbl.t;
  first_pair : (int * int, M.poor_pair_summary) Hashtbl.t;
  verdicts : (int * int, (float * string * string list) option) Hashtbl.t option;
  joint : (int * int, bool) Hashtbl.t option;  (** wclass pair -> feasible *)
  joint_memo : (int * int, bool) Hashtbl.t;
      (** lazy overflow of [joint]: filled on first query per class pair
          (the budget is pinned and the solver deterministic, so the first
          answer is the answer) *)
  verdict_memo : (int * int, (float * string * string list) option) Hashtbl.t;
      (** lazy overflow of [verdicts] for models over the pair cap *)
  match_memo : ((string * int) list, Row.t list) Hashtbl.t;
      (** assignment content -> matching rows; the decision plans (and their
          solver fallbacks) are deterministic in the assignment, so repeated
          configurations are one bounded-table lookup *)
  wmatch_memo : ((string * int) list, Row.t list) Hashtbl.t;
  cm_lock : Mutex.t;  (** guards every lazy memo table above *)
  orders : int array array option Atomic.t array;
      (** per slow row, candidate tie groups in comparator order — eager for
          small models, computed on first use (deterministic, so concurrent
          duplicate computation is only wasted work) beyond [pair_cap] *)
  occ_view : occ_view option Atomic.t;
  cm_joint_max_nodes : int;
  cm_stats : stats;
  fast_hits : int Atomic.t;
  fallbacks : int Atomic.t;
}

let model t = t.cm_model
let stats t = t.cm_stats
let joint_max_nodes t = t.cm_joint_max_nodes
let fast_count t = Atomic.get t.fast_hits
let fallback_count t = Atomic.get t.fallbacks

(* precompute caps: pairwise tables are quadratic, so they are only built
   for models small enough that the load-time tax stays bounded *)
let pair_cap = 128
let joint_pair_cap = 4_096

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let plan_of_constraints constraints =
  (* group single-variable constraints per (name, dom); everything else is
     closed by evaluation *)
  let singles : (string * Vsmt.Dom.t, Iset.t * Expr.t list) Hashtbl.t =
    Hashtbl.create 4
  in
  let order = ref [] in
  let evals = ref [] in
  List.iter
    (fun c ->
      match Expr.vars c with
      | [ v ] -> begin
        match Iset.of_expr ~var:v c with
        | Some set ->
          let key = (v.Expr.name, v.Expr.dom) in
          (match Hashtbl.find_opt singles key with
          | None ->
            order := key :: !order;
            Hashtbl.replace singles key (set, [ c ])
          | Some (prev, cs) ->
            Hashtbl.replace singles key (Iset.inter prev set, c :: cs))
        | None ->
          evals := D_eval { names = [ v.Expr.name ]; expr = c } :: !evals
      end
      | vs ->
        evals :=
          D_eval { names = List.map (fun (v : Expr.var) -> v.Expr.name) vs; expr = c }
          :: !evals)
    constraints;
  let isets =
    List.rev_map
      (fun ((name, dom) as key) ->
        let allowed, exprs = Hashtbl.find singles key in
        D_iset { name; dom; allowed; exprs = List.rev exprs })
      !order
  in
  Array.of_list (isets @ List.rev !evals)

let names_of_constraints constraints =
  let set = Hashtbl.create 8 in
  List.iter
    (fun c ->
      List.iter (fun (v : Expr.var) -> Hashtbl.replace set v.Expr.name ()) (Expr.vars c))
    constraints;
  set

(* a row is expected to close when its config constraints mention only
   configuration symbols — anything else needs values the config assignment
   cannot bind, i.e. the solver fallback *)
let row_is_closed (row : Row.t) =
  List.for_all
    (fun c -> Vsmt.Footprint.for_all_origin Expr.Config (Vsmt.Footprint.of_expr c))
    row.Row.config_constraints

(* Tie groups of every model row around one slow row, in the checker
   comparator's descending (workload_score, score) order; within a group the
   member order is irrelevant (a query orders occurrences by position).  A
   stable sort of any candidate list decorated with these scores is exactly:
   walk the groups in order, emitting each group's candidate occurrences in
   query order — so the groups are the comparison order materialized
   independently of which rows a particular query matched. *)
let order_of (plans : row_plan array) si =
  let slow = plans.(si).row in
  let n = Array.length plans in
  let keyed =
    Array.init n (fun i ->
        let r = plans.(i).row in
        (Similarity.workload_score slow r, Similarity.score slow r, i))
  in
  (* adding the index as last key makes the order total, so any sort equals
     the stable sort *)
  Array.sort
    (fun (wa, ca, ia) (wb, cb, ib) ->
      if wa <> wb then Int.compare wb wa
      else if ca <> cb then Int.compare cb ca
      else Int.compare ia ib)
    keyed;
  let groups = ref [] and cur = ref [] and cur_key = ref None in
  let flush () = if !cur <> [] then groups := Array.of_list (List.rev !cur) :: !groups in
  Array.iter
    (fun (w, c, i) ->
      (match !cur_key with
      | Some (w', c') when w = w' && c = c' -> ()
      | _ ->
        flush ();
        cur := [];
        cur_key := Some (w, c));
      cur := i :: !cur)
    keyed;
  flush ();
  Array.of_list (List.rev !groups)

let compile ?(joint_max_nodes = 1_000) (m : M.t) =
  let t0 = Unix.gettimeofday () in
  let rows = Array.of_list m.M.rows in
  let n = Array.length rows in
  (* workload-predicate classes: rows sharing the identical ordered
     predicate list produce identical joint-input queries *)
  let wclass_tbl : (int list, int) Hashtbl.t = Hashtbl.create 8 in
  let wclass_preds = ref [] in
  let wclass_count = ref 0 in
  let class_of preds =
    let key = List.map Expr.id preds in
    match Hashtbl.find_opt wclass_tbl key with
    | Some i -> i
    | None ->
      let i = !wclass_count in
      incr wclass_count;
      Hashtbl.replace wclass_tbl key i;
      wclass_preds := preds :: !wclass_preds;
      i
  in
  let plans =
    Array.mapi
      (fun idx (row : Row.t) ->
        {
          row;
          idx;
          config_plan = plan_of_constraints row.Row.config_constraints;
          workload_plan = plan_of_constraints row.Row.workload_pred;
          name_set = names_of_constraints row.Row.config_constraints;
          wclass = class_of row.Row.workload_pred;
        })
      rows
  in
  let by_id = Hashtbl.create (max 8 n) in
  Array.iter (fun p -> Hashtbl.replace by_id p.row.Row.state_id p) plans;
  let poor_ids = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace poor_ids id ()) m.M.poor_state_ids;
  (* first poor pair per (slow, fast) — [pairs_between] keeps list order and
     the checker takes the head, so only the first occurrence is recorded *)
  let first_pair = Hashtbl.create 8 in
  List.iter
    (fun (p : M.poor_pair_summary) ->
      let key = (p.M.slow_id, p.M.fast_id) in
      if not (Hashtbl.mem first_pair key) then Hashtbl.replace first_pair key p)
    m.M.poor_pairs;
  (* joint-input feasibility over workload classes *)
  let wpreds = Array.of_list (List.rev !wclass_preds) in
  let w = Array.length wpreds in
  let joint_solver_calls = ref 0 in
  let joint =
    if w * w > joint_pair_cap then None
    else begin
      let tbl = Hashtbl.create (max 8 (w * w)) in
      for i = 0 to w - 1 do
        for j = 0 to w - 1 do
          incr joint_solver_calls;
          Hashtbl.replace tbl (i, j)
            (Vsmt.Solver.is_feasible ~max_nodes:joint_max_nodes
               (wpreds.(i) @ wpreds.(j)))
        done
      done;
      Some tbl
    end
  in
  (* pairwise verdicts (differential comparison + critical path) *)
  let verdicts =
    if n > pair_cap then None
    else begin
      let vd = Hashtbl.create (max 8 (n * n)) in
      Array.iter
        (fun (slow : Row.t) ->
          Array.iter
            (fun (fast : Row.t) ->
              if slow.Row.state_id <> fast.Row.state_id then begin
                let key = (slow.Row.state_id, fast.Row.state_id) in
                let v =
                  match Hashtbl.find_opt first_pair key with
                  | Some p -> Some (p.M.latency_ratio, p.M.trigger, p.M.critical_path)
                  | None -> begin
                    match
                      Diff_analysis.compare_pair ~threshold:m.M.threshold ~slow ~fast
                    with
                    | Some (worst, triggers) ->
                      let diff = Critical_path.differential ~slow ~fast in
                      Some
                        ( 1. +. worst,
                          Diff_analysis.trigger_label triggers,
                          diff.Critical_path.critical_path )
                    | None -> None
                  end
                in
                Hashtbl.replace vd key v
              end)
            rows)
        rows;
      Some vd
    end
  in
  (* materialized comparison orders: the tie groups of all rows around each
     slow row, in the checker comparator's descending order.  Quadratic in
     score computations, so eager only under the pair cap; larger models
     fill each slow row's groups on first use. *)
  let orders = Array.init n (fun _ -> Atomic.make None) in
  if n <= pair_cap then
    Array.iteri (fun si _ -> Atomic.set orders.(si) (Some (order_of plans si))) plans;
  let closed = Array.fold_left (fun acc p -> acc + if row_is_closed p.row then 1 else 0) 0 plans in
  let iset_params, eval_constraints =
    Array.fold_left
      (fun acc p ->
        Array.fold_left
          (fun (i, e) d -> match d with D_iset _ -> (i + 1, e) | D_eval _ -> (i, e + 1))
          acc p.config_plan)
      (0, 0) plans
  in
  {
    cm_model = m;
    plans;
    by_id;
    poor_ids;
    first_pair;
    verdicts;
    joint;
    joint_memo = Hashtbl.create 64;
    verdict_memo = Hashtbl.create 64;
    match_memo = Hashtbl.create 16;
    wmatch_memo = Hashtbl.create 16;
    cm_lock = Mutex.create ();
    orders;
    occ_view = Atomic.make None;
    cm_joint_max_nodes = joint_max_nodes;
    cm_stats =
      {
        rows_total = n;
        rows_closed = closed;
        rows_open = n - closed;
        iset_params;
        eval_constraints;
        wclasses = w;
        joint_pairs = (match joint with Some tbl -> Hashtbl.length tbl | None -> 0);
        joint_solver_calls = !joint_solver_calls;
        verdict_pairs = (match verdicts with Some tbl -> Hashtbl.length tbl | None -> 0);
        order_rows = (if n <= pair_cap then n else 0);
        compile_s = Unix.gettimeofday () -. t0;
      };
    fast_hits = Atomic.make 0;
    fallbacks = Atomic.make 0;
  }

(* ------------------------------------------------------------------ *)
(* Query paths                                                         *)
(* ------------------------------------------------------------------ *)

(* Deciding one constraint under a bound assignment.  [None] = some variable
   is unbound, so the residual is open and the row must go to the solver. *)
let decide lookup = function
  | D_iset { name; dom; allowed; exprs } -> begin
    match lookup name with
    | None -> None
    | Some x ->
      if Vsmt.Dom.mem dom x then Some (Iset.mem x allowed)
      else
        (* out-of-domain values (possible for workload assignments) are
           outside the compiled truth set; evaluate the exprs directly *)
        Some (List.for_all (fun e -> Expr.eval (fun _ -> x) e <> 0) exprs)
  end
  | D_eval { names; expr } ->
    if List.for_all (fun nm -> lookup nm <> None) names then
      Some
        (Expr.eval
           (fun (v : Expr.var) ->
             match lookup v.Expr.name with Some x -> x | None -> 0)
           expr
        <> 0)
    else None

(* Exact replication of [Cost_row.all_satisfied]: every decided constraint
   must hold; the first open (unbound) constraint sends the whole row to the
   reference implementation, whose joint residual feasibility check we must
   not approximate.  A decided-false answer short-circuits soundly: the
   reference also fails on any false decided residual regardless of the open
   ones. *)
let matches_with t ~fallback lookup plan row assignment =
  let n = Array.length plan in
  let rec go i =
    if i >= n then begin
      Atomic.incr t.fast_hits;
      true
    end
    else
      match decide lookup plan.(i) with
      | Some true -> go (i + 1)
      | Some false ->
        Atomic.incr t.fast_hits;
        false
      | None ->
        Atomic.incr t.fallbacks;
        fallback row assignment
  in
  go 0

(* bounded, mutex-guarded memo around a deterministic function of the key;
   reset rather than evict when full (steady-state serving touches a handful
   of keys, the bound only guards pathological churn) *)
let memoized t tbl ~cap key f =
  Mutex.lock t.cm_lock;
  let cached = Hashtbl.find_opt tbl key in
  Mutex.unlock t.cm_lock;
  match cached with
  | Some v -> v
  | None ->
    let v = f () in
    Mutex.lock t.cm_lock;
    if Hashtbl.length tbl >= cap then Hashtbl.reset tbl;
    Hashtbl.replace tbl key v;
    Mutex.unlock t.cm_lock;
    v

let lookup_of assignment =
  let tbl = Hashtbl.create (max 8 (List.length assignment)) in
  (* first binding wins, like List.assoc_opt *)
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k v)
    assignment;
  fun name -> Hashtbl.find_opt tbl name

let rows_matching t assignment =
  memoized t t.match_memo ~cap:256 assignment (fun () ->
      let lookup = lookup_of assignment in
      Array.to_list t.plans
      |> List.filter_map (fun p ->
             if
               matches_with t ~fallback:(fun r a -> Row.satisfied_by r a) lookup
                 p.config_plan p.row assignment
             then Some p.row
             else None))

let rows_matching_workload t assignment =
  memoized t t.wmatch_memo ~cap:256 assignment (fun () ->
      let lookup = lookup_of assignment in
      Array.to_list t.plans
      |> List.filter_map (fun p ->
             if
               matches_with t
                 ~fallback:(fun r a -> Row.workload_satisfied_by r a)
                 lookup p.workload_plan p.row assignment
             then Some p.row
             else None))

let mentions t (row : Row.t) params =
  match Hashtbl.find_opt t.by_id row.Row.state_id with
  | Some p -> List.exists (fun nm -> Hashtbl.mem p.name_set nm) params
  | None ->
    (* not a model row (defensive) — compute directly *)
    List.exists
      (fun c ->
        List.exists
          (fun (v : Expr.var) -> List.mem v.Expr.name params)
          (Expr.vars c))
      row.Row.config_constraints

let is_poor_row t (row : Row.t) = Hashtbl.mem t.poor_ids row.Row.state_id

(* The reference ordering (the solver engine's): live scores, stable sort,
   cap — used whenever the slow row or a candidate is not physically a model
   row, so the materialized groups do not apply. *)
let generic_order ~cap ~(slow : Row.t) rows =
  let decorated =
    rows
    |> List.filter (fun (r : Row.t) -> r.Row.state_id <> slow.Row.state_id)
    |> List.map (fun r ->
           ((Similarity.workload_score slow r, Similarity.score slow r), r))
  in
  let sorted =
    List.stable_sort
      (fun ((wa, ca), _) ((wb, cb), _) ->
        if wa <> wb then Int.compare wb wa else Int.compare cb ca)
      decorated
  in
  List.filteri (fun i _ -> i < cap) (List.map snd sorted)

(* A cached view applies when the candidates are element-wise the same
   physical rows: then every input deciding the ordering is identical, so
   the memoized results are exact. *)
let view_matches v ~cap rows =
  v.oc_cap = cap
  && (v.oc_rows == rows
     || begin
          let n = Array.length v.oc_cand in
          let rec go i = function
            | [] -> i = n
            | (r : Row.t) :: tl -> i < n && v.oc_cand.(i) == r && go (i + 1) tl
          in
          go 0 rows
        end)

(* [None] when some candidate is not (physically) a model row — the
   occurrence walk would mis-score it, so such queries take the live
   ordering instead. *)
let occ_view_of t ~cap rows =
  match Atomic.get t.occ_view with
  | Some v when view_matches v ~cap rows -> Some v
  | _ ->
    let cand = Array.of_list rows in
    let occ = Array.make (Array.length t.plans) [] in
    let foreign = ref false in
    Array.iteri
      (fun p (r : Row.t) ->
        match Hashtbl.find_opt t.by_id r.Row.state_id with
        | Some rp when rp.row == r -> occ.(rp.idx) <- p :: occ.(rp.idx)
        | _ -> foreign := true)
      cand;
    if !foreign then None
    else begin
      Array.iteri (fun i l -> occ.(i) <- List.rev l) occ;
      let v =
        {
          oc_rows = rows;
          oc_cap = cap;
          oc_cand = cand;
          oc_occ = occ;
          oc_results = Hashtbl.create 16;
          oc_witness = Hashtbl.create 16;
        }
      in
      Atomic.set t.occ_view (Some v);
      Some v
    end

let order_groups t si =
  match Atomic.get t.orders.(si) with
  | Some g -> g
  | None ->
    let g = order_of t.plans si in
    Atomic.set t.orders.(si) (Some g);
    g

let walk_order t v ~cap si =
  let out = ref [] and count = ref 0 in
  (try
     Array.iter
       (fun members ->
         (* this tie group's candidate occurrences, in query order; the
            slow row itself is excluded exactly as the reference filter
            does (every occurrence of its state id maps to [si], any
            impostor sharing the id would have made the view foreign) *)
         let occs =
           Array.fold_left
             (fun acc i -> if i = si then acc else List.rev_append v.oc_occ.(i) acc)
             [] members
           |> List.sort Int.compare
         in
         List.iter
           (fun p ->
             if !count >= cap then raise Exit;
             out := v.oc_cand.(p) :: !out;
             incr count)
           occs)
       (order_groups t si)
   with Exit -> ());
  List.rev !out

let comparison_order t ~cap ~(slow : Row.t) rows =
  match Hashtbl.find_opt t.by_id slow.Row.state_id with
  | Some sp when sp.row == slow -> begin
    match occ_view_of t ~cap rows with
    | None -> generic_order ~cap ~slow rows
    | Some v ->
      let si = sp.idx in
      let cached =
        Mutex.lock t.cm_lock;
        let r = Hashtbl.find_opt v.oc_results si in
        Mutex.unlock t.cm_lock;
        r
      in
      (match cached with
      | Some r -> r
      | None ->
        let r = walk_order t v ~cap si in
        Mutex.lock t.cm_lock;
        Hashtbl.replace v.oc_results si r;
        Mutex.unlock t.cm_lock;
        r)
  end
  | _ -> generic_order ~cap ~slow rows

let joint_feasible t ~max_nodes ~(slow : Row.t) ~(fast : Row.t) =
  let live () =
    Vsmt.Solver.is_feasible ~max_nodes (slow.Row.workload_pred @ fast.Row.workload_pred)
  in
  if max_nodes <> t.cm_joint_max_nodes then live ()
  else begin
    let cls (r : Row.t) =
      match Hashtbl.find_opt t.by_id r.Row.state_id with
      | Some p when p.row == r -> Some p.wclass
      | _ -> None
    in
    match (cls slow, cls fast) with
    | Some i, Some j -> begin
      match t.joint with
      | Some tbl -> (
        match Hashtbl.find_opt tbl (i, j) with Some v -> v | None -> live ())
      | None ->
        (* over the eager cap: memoize per class pair on first query *)
        memoized t t.joint_memo ~cap:65_536 (i, j) live
    end
    | _ -> live ()
  end

let verdict t ~(slow : Row.t) ~(fast : Row.t) =
  let key = (slow.Row.state_id, fast.Row.state_id) in
  let live () =
    match Hashtbl.find_opt t.first_pair key with
    | Some p -> Some (p.M.latency_ratio, p.M.trigger, p.M.critical_path)
    | None -> begin
      match
        Diff_analysis.compare_pair ~threshold:t.cm_model.M.threshold ~slow ~fast
      with
      | Some (worst, triggers) ->
        let diff = Critical_path.differential ~slow ~fast in
        Some
          ( 1. +. worst,
            Diff_analysis.trigger_label triggers,
            diff.Critical_path.critical_path )
      | None -> None
    end
  in
  match t.verdicts with
  | Some tbl -> (
    match Hashtbl.find_opt tbl key with Some v -> v | None -> live ())
  | None -> memoized t t.verdict_memo ~cap:8_192 key live


(* The checker's witness scan — first candidate in comparison order that
   passes the joint-input gate (when required) and yields a verdict — as a
   single memoized lookup.  Every deciding input is pinned by the key: the
   slow row (physically a model row), the candidate view (element-wise
   physical identity), the gate flag and the joint budget; the gate and the
   verdict are deterministic in those, so the first computed answer is the
   answer. *)
let judge_pair t ~max_nodes ~require_joint_input ~slow ~fast =
  if require_joint_input && not (joint_feasible t ~max_nodes ~slow ~fast) then None
  else verdict t ~slow ~fast

let witness_walk t ~cap ~max_nodes ~require_joint_input ~slow rows =
  List.find_map
    (fun fast ->
      Option.map
        (fun v -> (fast, v))
        (judge_pair t ~max_nodes ~require_joint_input ~slow ~fast))
    (comparison_order t ~cap ~slow rows)

let first_witness t ~cap ~max_nodes ~require_joint_input ~(slow : Row.t) rows =
  match Hashtbl.find_opt t.by_id slow.Row.state_id with
  | Some sp when sp.row == slow -> begin
    match occ_view_of t ~cap rows with
    | None -> witness_walk t ~cap ~max_nodes ~require_joint_input ~slow rows
    | Some v ->
      memoized t v.oc_witness ~cap:1_024
        (sp.idx, require_joint_input, max_nodes)
        (fun () -> witness_walk t ~cap ~max_nodes ~require_joint_input ~slow rows)
  end
  | _ -> witness_walk t ~cap ~max_nodes ~require_joint_input ~slow rows
