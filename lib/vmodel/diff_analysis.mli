(** Pairwise differential performance analysis (paper Section 4.6).

    The analyzer compares state pairs, most-similar first.  A pair is
    {e suspicious} when the slower state's traced latency exceeds the faster
    state's by more than the threshold (default 100%), or when any logical
    cost metric does — even if latency does not (the paper's c6 case is
    caught through the I/O metric alone). *)

type trigger = Latency | Logical of string

type poor_pair = {
  slow : Cost_row.t;
  fast : Cost_row.t;
  similarity : int;
  latency_ratio : float;  (** slow/fast traced latency; [infinity] if fast=0 *)
  worst_ratio : float;  (** 1 + worst relative difference over all metrics *)
  triggers : trigger list;  (** every metric exceeding the threshold *)
  diff : Critical_path.diff;
}

type t = {
  threshold : float;
  pairs : poor_pair list;  (** suspicious pairs, most similar first *)
  poor_state_ids : int list;  (** distinct ids of slow states *)
  max_ratio : float;  (** the "Max Diff" headline (Table 4): worst metric
                          ratio among each poor state's most-similar pair *)
}

val compare_pair :
  threshold:float -> slow:Cost_row.t -> fast:Cost_row.t -> (float * trigger list) option
(** [Some (worst ratio, triggers)] when [slow] is suspicious relative to
    [fast]; [None] otherwise.  The checker reuses this on specific row
    pairs (old vs new value, old vs new version). *)

val analyze :
  ?threshold:float ->
  ?min_similarity:int ->
  ?max_nodes:int ->
  ?jobs:int ->
  ?slice:bool ->
  Cost_row.t list ->
  t
(** [threshold] is the relative difference that makes a pair suspicious:
    1.0 means the slow state is worse by ≥100%.  [min_similarity] skips
    pairs less similar than the bound (default 0: compare all pairs and let
    ranking order them, as the fallback mode of Section 4.6).  [max_nodes]
    bounds the joint-input satisfiability queries (default 1_000); the
    pipeline threads its configured solver budget here.  [jobs] fans the
    O(n²) pairwise metric screen out over a {!Vpar.Pool} (default 1); the
    result is identical for any job count — hits are re-assembled in
    ascending pair order before ranking.  [slice] (default [true]) enables
    the footprint fast paths: joint-input satisfiability of symbol-disjoint
    workload predicates decomposes into per-side queries (memoized per
    input class), and similarity scoring skips the shared-constraint walk
    for rows whose footprints cannot intersect — both provably identical to
    the unsliced verdicts, since every config/workload constraint mentions
    a variable. *)

val trigger_label : trigger list -> string
(** Table 4 style: ["Latency"], ["I/O"], ["Lat.&Sync."], ... *)

val is_poor : t -> int -> bool
