type trigger = Latency | Logical of string

type poor_pair = {
  slow : Cost_row.t;
  fast : Cost_row.t;
  similarity : int;
  latency_ratio : float;
  worst_ratio : float;
  triggers : trigger list;
  diff : Critical_path.diff;
}

type t = {
  threshold : float;
  pairs : poor_pair list;
  poor_state_ids : int list;
  max_ratio : float;
}

(* Smoothed relative difference (slow - fast) / max(fast, floor): values at
   or below the floor on both sides count as equal, and a zero denominator
   is floored instead of yielding infinity (a path with 1 write syscall
   versus 0 reports 200% with floor 0.5, like the paper's c17). *)
let rel_diff ~floor slow fast =
  if slow <= floor && fast <= floor then 0. else (slow -. fast) /. Float.max fast floor

let latency_floor_us = 1.0

(* byte-traffic differences below a sector are noise; counters use 0.5 so a
   1-vs-0 syscall difference still reads as 200% *)
let logical_floor = function "io_bytes" -> 512. | _ -> 0.5

(* Compare one directed pair: is [slow] suspicious relative to [fast]?
   Returns the worst finite relative difference and the triggering metrics. *)
let compare_pair ~threshold ~(slow : Cost_row.t) ~(fast : Cost_row.t) =
  let worst = ref 0. in
  let lat_diff =
    rel_diff ~floor:latency_floor_us slow.Cost_row.traced_latency_us
      fast.Cost_row.traced_latency_us
  in
  if Float.is_finite lat_diff && lat_diff > !worst then worst := lat_diff;
  let logical_triggers =
    List.filter_map
      (fun (name, get) ->
        let d =
          rel_diff ~floor:(logical_floor name) (get slow.Cost_row.cost)
            (get fast.Cost_row.cost)
        in
        if Float.is_finite d && d > !worst then worst := d;
        if d > threshold then Some (Logical name) else None)
      Vruntime.Cost.logical_metrics
  in
  let triggers = (if lat_diff > threshold then [ Latency ] else []) @ logical_triggers in
  if triggers = [] then None else Some (!worst, triggers)

(* A pair is only meaningful for specious-config detection when (1) the two
   states differ in their configuration constraints — otherwise the
   performance difference is input-driven, not config-driven — and (2) some
   single input class can trigger both states, i.e. the conjunction of the
   two input predicates is satisfiable.  Comparing an INSERT-only state
   against a SELECT-only state would not isolate the configuration effect. *)
(* Expressions are hash-consed, so a constraint set's identity is its sorted
   list of node ids — O(set size) to build, O(1) per element to compare —
   instead of the rendered text the pre-hashconsing code compared.  The
   structural sort makes the key independent of the order constraints were
   recorded in.  Workload classes repeat heavily across states, so
   joint-satisfiability verdicts are memoized on the merged id key. *)
let joint_sat_max_nodes = 1_000

let constraint_key cs = List.map Vsmt.Expr.id (List.sort_uniq Vsmt.Expr.compare cs)

let make_comparable ~max_nodes ~slice rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace tbl r.Cost_row.state_id
        ( constraint_key r.Cost_row.config_constraints,
          constraint_key r.Cost_row.workload_pred,
          Vsmt.Footprint.of_list r.Cost_row.workload_pred ))
    rows;
  let sat_cache : (int list, bool) Hashtbl.t = Hashtbl.create 256 in
  (* per-side verdicts for the disjoint-footprint fast path, keyed on one
     row's predicate identity *)
  let side_cache : (int list, bool) Hashtbl.t = Hashtbl.create 64 in
  let side_sat wkey pred =
    match Hashtbl.find_opt side_cache wkey with
    | Some v -> v
    | None ->
      let v = Vsmt.Solver.is_feasible ~max_nodes pred in
      Hashtbl.add side_cache wkey v;
      v
  in
  fun a b ->
    let ca, wa, fa = Hashtbl.find tbl a.Cost_row.state_id in
    let cb, wb, fb = Hashtbl.find tbl b.Cost_row.state_id in
    ca <> cb
    && begin
         (* one predicate subsuming the other is trivially jointly sat *)
         let subset x y = List.for_all (fun c -> List.mem c y) x in
         subset wa wb || subset wb wa
         ||
         let key = List.sort_uniq Int.compare (wa @ wb) in
         match Hashtbl.find_opt sat_cache key with
         | Some v -> v
         | None ->
           let v =
             (* symbol-disjoint predicates constrain different input
                variables: the conjunction is satisfiable iff each side is,
                and the per-side verdicts are shared across every pairing of
                that input class *)
             if slice && not (Vsmt.Footprint.overlaps fa fb) then
               side_sat wa a.Cost_row.workload_pred && side_sat wb b.Cost_row.workload_pred
             else
               Vsmt.Solver.is_feasible ~max_nodes
                 (a.Cost_row.workload_pred @ b.Cost_row.workload_pred)
           in
           Hashtbl.add sat_cache key v;
           v
       end

(* The full metric comparison for an (a, b) pair: latency decides the slow
   side; logical metrics count in either direction (Section 4.6 marks the
   state even when only a logical metric exceeds).  Shared by the screening
   pass and the final pair construction. *)
let pair_triggers ~threshold a b =
  let slow, fast =
    if a.Cost_row.traced_latency_us >= b.Cost_row.traced_latency_us then a, b else b, a
  in
  let lat_diff =
    rel_diff ~floor:latency_floor_us slow.Cost_row.traced_latency_us
      fast.Cost_row.traced_latency_us
  in
  let worst = ref lat_diff in
  let logical_triggers =
    List.filter_map
      (fun (name, get) ->
        let va = get slow.Cost_row.cost and vb = get fast.Cost_row.cost in
        let d = rel_diff ~floor:(logical_floor name) (Float.max va vb) (Float.min va vb) in
        if d > !worst then worst := d;
        if d > threshold then Some (Logical name) else None)
      Vruntime.Cost.logical_metrics
  in
  let triggers = (if lat_diff > threshold then [ Latency ] else []) @ logical_triggers in
  if triggers = [] then None else Some (slow, fast, !worst, triggers)

let analyze ?(threshold = 1.0) ?(min_similarity = 0) ?(max_nodes = joint_sat_max_nodes)
    ?(jobs = 1) ?(slice = true) rows =
  let comparable = make_comparable ~max_nodes ~slice rows in
  (* pass 1: cheap metric screen over all pairs — the O(n²) stage.  Rows are
     fanned out over the worker pool by slow-side index; each worker emits
     its row's hits in ascending-j order and the rows are concatenated in
     ascending-i order, so the triggered list is in ascending (i, j)
     lexicographic order for any job count. *)
  let arr = Array.of_list rows in
  let n = Array.length arr in
  let jobs = Vpar.Pool.clamp_jobs jobs in
  let per_row =
    Vpar.Pool.map_array ~jobs
      (fun i ->
        let hits = ref [] in
        for j = n - 1 downto i + 1 do
          match pair_triggers ~threshold arr.(i) arr.(j) with
          | Some hit -> hits := (arr.(i), arr.(j), hit) :: !hits
          | None -> ()
        done;
        !hits)
      (Array.init n (fun i -> i))
  in
  let triggered = List.concat (Array.to_list per_row) in
  (* pass 2: rank the surviving pairs most-similar first.  Hash-consing
     makes constraint equality physical equality, so similarity counts
     shared nodes directly — no per-row text rendering. *)
  let appearance x y = List.fold_left (fun acc c -> if List.memq c y then acc + 1 else acc) 0 x in
  (* footprint screen: config/workload constraints always mention a variable,
     so rows with symbol-disjoint footprints cannot share a constraint node —
     their appearance count is 0 without any memq walk *)
  let foots = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace foots r.Cost_row.state_id
        ( Vsmt.Footprint.of_list r.Cost_row.config_constraints,
          Vsmt.Footprint.of_list r.Cost_row.workload_pred ))
    rows;
  let scored =
    List.map
      (fun (a, b, hit) ->
        let cfa, wfa = Hashtbl.find foots a.Cost_row.state_id in
        let cfb, wfb = Hashtbl.find foots b.Cost_row.state_id in
        let count fa fb x y =
          if slice && not (Vsmt.Footprint.overlaps fa fb) then 0 else appearance x y
        in
        let s =
          count cfa cfb a.Cost_row.config_constraints b.Cost_row.config_constraints
          + count wfa wfb a.Cost_row.workload_pred b.Cost_row.workload_pred
        in
        a, b, hit, s)
      triggered
  in
  let scored =
    List.stable_sort (fun (_, _, _, s1) (_, _, _, s2) -> Int.compare s2 s1) scored
  in
  let max_ratio = ref 0. in
  (* keep the most similar pairs per slow state: every poor state keeps its
     best witnesses while unbounded pair construction (and its LCS work) is
     avoided on large traces *)
  let per_state = Hashtbl.create 64 in
  let max_pairs_per_state = 8 in
  let pairs =
    List.filter_map
      (fun (a, b, (slow, fast, worst, triggers), similarity) ->
        let seen =
          match Hashtbl.find_opt per_state slow.Cost_row.state_id with
          | Some n -> n
          | None -> 0
        in
        if
          similarity < min_similarity
          || seen >= max_pairs_per_state
          || not (comparable a b)
        then None
        else begin
          Hashtbl.replace per_state slow.Cost_row.state_id (seen + 1);
          let latency_ratio =
            if fast.Cost_row.traced_latency_us <= 0. then infinity
            else slow.Cost_row.traced_latency_us /. fast.Cost_row.traced_latency_us
          in
          Some
            {
              slow;
              fast;
              similarity;
              latency_ratio;
              (* the headline ratio is the latency ratio when latency is what
                 triggered; logical metrics otherwise *)
              worst_ratio =
                (if List.mem Latency triggers && Float.is_finite latency_ratio then
                   latency_ratio
                 else 1. +. worst);
              triggers;
              diff = Critical_path.differential ~slow ~fast;
            }
        end)
      scored
  in
  let poor_state_ids =
    List.sort_uniq Int.compare (List.map (fun p -> p.slow.Cost_row.state_id) pairs)
  in
  (* headline diff: the analyzer reads most-similar pairs first, so report
     the worst ratio among each poor state's most similar suspicious pair *)
  List.iter
    (fun id ->
      match List.find_opt (fun p -> p.slow.Cost_row.state_id = id) pairs with
      | Some p -> if p.worst_ratio > !max_ratio then max_ratio := p.worst_ratio
      | None -> ())
    poor_state_ids;
  { threshold; pairs; poor_state_ids; max_ratio = !max_ratio }

let trigger_label triggers =
  let has_latency = List.mem Latency triggers in
  let logicals =
    List.filter_map (function Logical n -> Some n | Latency -> None) triggers
  in
  let io = List.exists (fun n -> n = "io_calls" || n = "io_bytes" || n = "syscalls") logicals in
  let sync = List.mem "sync_ops" logicals in
  let net = List.mem "net_ops" logicals in
  let parts =
    (if has_latency then [ "Lat." ] else [])
    @ (if io then [ "I/O" ] else [])
    @ (if sync then [ "Sync." ] else [])
    @ (if net then [ "Net." ] else [])
    @
    if (not io) && (not sync) && not net then
      List.filter_map
        (fun n -> if n = "instructions" || n = "allocations" || n = "cache_ops" then Some "CPU" else None)
        logicals
      |> List.sort_uniq String.compare
    else []
  in
  match parts with
  | [] -> "-"
  | [ "Lat." ] -> "Latency"
  | parts -> String.concat "&" parts

let is_poor t state_id = List.mem state_id t.poor_state_ids
