(** The configuration performance impact model — Violet's final analysis
    output (paper Sections 3.2 and 4.6).

    A model bundles the raw cost table (Table 1), the suspicious state
    pairs with their differential critical paths, the related-parameter set,
    and analysis metadata.  Models serialize to disk so the continuous
    checker can reuse them at user sites (Section 4.7); the call-tree nodes
    are not persisted — the checker needs only constraints, costs and the
    pre-computed critical paths. *)

type poor_pair_summary = {
  slow_id : int;
  fast_id : int;
  similarity : int;
  latency_ratio : float;
  trigger : string;  (** Table 4 style label, e.g. ["Lat.&I/O"] *)
  critical_path : string list;
  max_differential_us : float;
}

type dropped_path = {
  dp_state_id : int;
  dp_config_constraints : Vsmt.Expr.t list;
      (** the configuration region whose behavior the model does {e not}
          cover because the path was dropped under budget pressure *)
  dp_latency_so_far_us : float;
}

type degradation_summary = {
  rungs : string list;
      (** {!Vresilience.Degradation} rung names entered, oldest first *)
  deadline_hit : bool;
  dropped_paths : dropped_path list;
}
(** How exploration was degraded while this model was built.  A model with a
    summary is still sound for the paths it contains, but incomplete: the
    checker treats [dropped_paths] as conservative "unknown cost" regions. *)

type t = {
  system : string;
  target : string;
  related : string list;
  threshold : float;
  rows : Cost_row.t list;
  poor_pairs : poor_pair_summary list;
  poor_state_ids : int list;
  max_ratio : float;
  explored_states : int;
  analysis_wall_s : float;
  virtual_analysis_s : float;
      (** simulated end-to-end analysis time on the virtual clock (sum of
          all states' symbolic-execution clocks); the Figure 14 metric *)
  degradation : degradation_summary option;
      (** [None] = complete run (also for models saved before this field
          existed) *)
}

val is_degraded : t -> bool

val build :
  ?degradation:degradation_summary ->
  system:string ->
  target:string ->
  related:string list ->
  rows:Cost_row.t list ->
  analysis:Diff_analysis.t ->
  explored_states:int ->
  analysis_wall_s:float ->
  virtual_analysis_s:float ->
  unit ->
  t

val row_by_id : t -> int -> Cost_row.t option

val rows_matching : t -> (string * int) list -> Cost_row.t list
(** Rows whose configuration constraints a concrete assignment satisfies. *)

val poor_rows : t -> Cost_row.t list
val is_poor_row : t -> Cost_row.t -> bool

val pairs_between : t -> slow:Cost_row.t -> fast:Cost_row.t -> poor_pair_summary list
(** Poor pairs whose slow/fast state ids match the given rows. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trips everything except the in-memory call trees ([nodes] and
    [chain] of each row come back empty). *)

val save : t -> string -> unit
val load : string -> (t, string) result
val pp_cost_table : t Fmt.t
(** Render the raw cost table like paper Table 1. *)
