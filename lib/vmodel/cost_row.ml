module CP = Vtrace.Callpath

type t = {
  state_id : int;
  config_constraints : Vsmt.Expr.t list;
  workload_pred : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  traced_latency_us : float;
  chain : string list;
  nodes : CP.node list;
  critical_ops : string list;
}

(* Greedy hottest-child descent from the root; the display form of the
   slow-operation chain keeps only the deepest components, where the cost
   concentrates (paper Table 1 shows "{log_write_buf -> fil_flush}"). *)
let critical_ops_of nodes =
  match CP.roots nodes with
  | [] -> []
  | root :: _ ->
    let rec descend acc (n : CP.node) =
      match CP.children nodes n.CP.cid with
      | [] -> List.rev acc
      | c :: cs ->
        let hottest =
          List.fold_left
            (fun best (k : CP.node) ->
              if k.CP.latency_us > best.CP.latency_us then k else best)
            c cs
        in
        descend (hottest.CP.fname :: acc) hottest
    in
    let path = descend [] root in
    let n = List.length path in
    if n <= 3 then path else List.filteri (fun idx _ -> idx >= n - 3) path

let of_profile (p : Vtrace.Profile.t) =
  {
    state_id = p.Vtrace.Profile.state_id;
    config_constraints = p.Vtrace.Profile.config_constraints;
    workload_pred = p.Vtrace.Profile.workload_constraints;
    cost = p.Vtrace.Profile.cost;
    traced_latency_us = p.Vtrace.Profile.traced_latency_us;
    chain = CP.chain_names p.Vtrace.Profile.nodes;
    nodes = p.Vtrace.Profile.nodes;
    critical_ops = critical_ops_of p.Vtrace.Profile.nodes;
  }

(* joined with " && " by callers, so Or-rooted constraints need parens *)
let pp_constraint ppf e =
  match Vsmt.Expr.view e with
  | Vsmt.Expr.Binop (Vsmt.Expr.Or, _, _) -> Fmt.pf ppf "(%a)" Vsmt.Expr.pp_friendly e
  | _ -> Vsmt.Expr.pp_friendly ppf e

(* Substitute the assignment, then decide: a fully-concretized constraint
   must evaluate true; a residual constraint (config constraints can mix in
   workload variables, e.g. "row_bytes * 5/4 > buf_size / 4") must remain
   satisfiable for some input — the setting can then trigger the state. *)
(* residual predicates are tiny (the open conjuncts of one row), so the
   default budget is far below [Solver.default_max_nodes] *)
let residual_max_nodes = 2_000

let all_satisfied ?(max_nodes = residual_max_nodes) constraints assignment =
  let residuals =
    List.map
      (fun c ->
        Vsmt.Simplify.simplify
          (Vsmt.Expr.subst
             (fun v ->
               match List.assoc_opt v.Vsmt.Expr.name assignment with
               | Some x -> Some (Vsmt.Expr.const x)
               | None -> None)
             c))
      constraints
  in
  let decided, open_ = List.partition (fun c -> Vsmt.Expr.is_const c <> None) residuals in
  List.for_all (fun c -> Vsmt.Expr.is_const c <> Some 0) decided
  && (open_ = [] || Vsmt.Solver.is_feasible ~max_nodes open_)

let satisfied_by ?max_nodes row assignment =
  all_satisfied ?max_nodes row.config_constraints assignment

let workload_satisfied_by ?max_nodes row assignment =
  all_satisfied ?max_nodes row.workload_pred assignment

let constraint_string row =
  match row.config_constraints with
  | [] -> "true"
  | cs -> String.concat " && " (List.map (Fmt.str "%a" pp_constraint) cs)

(* Everything but [state_id] and the call tree: two rows with equal keys are
   interchangeable as checker witnesses.  Ids are exactly what --fast-nondet
   stops canonicalizing, so candidate ordering must never look at them. *)
let content_key row =
  let b = Buffer.create 128 in
  List.iter
    (fun e ->
      Buffer.add_string b (Vsmt.Expr.to_string e);
      Buffer.add_char b ';')
    row.config_constraints;
  Buffer.add_char b '|';
  List.iter
    (fun e ->
      Buffer.add_string b (Vsmt.Expr.to_string e);
      Buffer.add_char b ';')
    row.workload_pred;
  Buffer.add_char b '|';
  Buffer.add_string b (Vruntime.Cost.summary row.cost);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_float row.traced_latency_us);
  Buffer.add_char b '|';
  List.iter
    (fun s ->
      Buffer.add_string b s;
      Buffer.add_char b ';')
    row.chain;
  Buffer.add_char b '|';
  List.iter
    (fun s ->
      Buffer.add_string b s;
      Buffer.add_char b ';')
    row.critical_ops;
  Buffer.contents b

let pp ppf row =
  Fmt.pf ppf "| %s | %s, {%s} | %s |" (constraint_string row)
    (Vruntime.Cost.summary row.cost)
    (String.concat " -> " row.critical_ops)
    (match row.workload_pred with
    | [] -> "any"
    | cs -> String.concat " && " (List.map (Fmt.str "%a" pp_constraint) cs))
