(** State-pair similarity (paper Section 4.6).

    When several variables are symbolic, comparing arbitrary state pairs is
    misleading (e.g. [autocommit==0 && flush_log==1] against
    [autocommit==1 && flush_log==2] differs in two parameters at once).  The
    analyzer compares most-similar pairs first.  Similarity is the paper's
    deliberately simple appearance count: for each constraint involving a
    related parameter in one state's formula, add one if the {e same}
    constraint appears in the other state's formula.  Expressions are
    hash-consed, so "the same constraint" is a pointer comparison (and
    coincides with the printed-form equality earlier versions used).
    Pairs whose {!Vsmt.Footprint}s are symbol-disjoint score 0 without
    walking either list: every config/workload constraint mentions a
    variable, so disjoint footprints rule out any shared node. *)

val score : Cost_row.t -> Cost_row.t -> int

val workload_score : Cost_row.t -> Cost_row.t -> int
(** Same counting over the input predicates; used to prefer comparing states
    triggered by the same input class. *)

val rank_pairs : Cost_row.t list -> (Cost_row.t * Cost_row.t * int) list
(** All unordered pairs ranked by descending combined similarity. *)
