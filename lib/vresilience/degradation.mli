(** The graceful-degradation ladder.

    When deadline pressure mounts, the executor does not simply die at the
    deadline with whatever happened to be finished — it degrades
    {e deterministically}, trading completeness for termination one rung at a
    time:

    + {!Reduced_unroll}: shrink the loop-unroll bound, cutting off the
      deepest path families first;
    + {!Concretize_all}: disable the Section 5.4 relaxation rules, so every
      library call concretizes its arguments aggressively ([concretizeAll])
      and path families collapse;
    + {!Drop_states}: drop the lowest-priority frontier states outright.

    Every rung entered is recorded as an {!event} and lands in the
    [degradation] section of the exploration telemetry and in the impact
    model itself, so a degraded model is never silently mistaken for a
    complete one.  Dropped paths are remembered with their
    constraints-so-far; the checker treats a configuration matching a
    dropped path conservatively (the specious set can only widen, never
    shrink, under degradation). *)

type rung = Full | Reduced_unroll | Concretize_all | Drop_states

val rung_level : rung -> int
(** [Full] = 0 up to [Drop_states] = 3. *)

val rung_to_string : rung -> string
val rung_of_string : string -> rung option

type event = { rung : rung; at_step : int; pressure : float }
(** One escalation: the rung entered, the recorder step count and the budget
    pressure at that moment. *)

type policy = {
  enabled : bool;
  t_unroll : float;  (** pressure threshold entering {!Reduced_unroll} *)
  t_concretize : float;  (** pressure threshold entering {!Concretize_all} *)
  t_drop : float;  (** pressure threshold entering {!Drop_states} *)
  drop_keep_fraction : float;  (** frontier fraction kept on a drop *)
}

val default_policy : policy
(** Enabled, thresholds 0.5 / 0.7 / 0.85, keep fraction 0.5. *)

val disabled : policy

type controller
(** Mutable ladder state for one run. *)

val controller : policy -> controller
val current : controller -> rung

val observe : controller -> pressure:float -> step:int -> event list
(** Compare the pressure against the policy thresholds and escalate; returns
    the rungs newly entered this call (in escalation order, possibly several
    when pressure jumped, [] when nothing changed or the policy is
    disabled).  Escalation is monotone: rungs are never left. *)

val events : controller -> event list
(** Every escalation so far, oldest first. *)

val restore : controller -> event list -> unit
(** Re-enter the rungs recorded in a snapshot (resume path): replaces the
    controller's history and sets {!current} to the highest recorded rung. *)
