type t = {
  seed : int;
  solver_unknown_p : float;
  signal_drop_p : float;
  signal_delay_p : float;
  signal_delay_us : float;
  checkpoint_truncate_p : float;
  model_corrupt_p : float;
  rng : Random.State.t;
}

let make ?(solver_unknown = 0.) ?(signal_drop = 0.) ?(signal_delay = 0.)
    ?(signal_delay_us = 500.) ?(checkpoint_truncate = 0.) ?(model_corrupt = 0.) ~seed () =
  {
    seed;
    solver_unknown_p = solver_unknown;
    signal_drop_p = signal_drop;
    signal_delay_p = signal_delay;
    signal_delay_us;
    checkpoint_truncate_p = checkpoint_truncate;
    model_corrupt_p = model_corrupt;
    rng = Random.State.make [| seed; 0xc4a05 |];
  }

let default_with_seed seed =
  make ~solver_unknown:0.05 ~signal_drop:0.05 ~signal_delay:0.05 ~checkpoint_truncate:0.2
    ~model_corrupt:0.05 ~seed ()

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ seed ] -> begin
    match int_of_string_opt seed with
    | Some seed -> Ok (default_with_seed seed)
    | None -> Error (Printf.sprintf "invalid chaos seed %S" s)
  end
  | [ seed; p ] -> begin
    match int_of_string_opt seed, float_of_string_opt p with
    | Some seed, Some p when p >= 0. && p <= 1. ->
      Ok
        (make ~solver_unknown:p ~signal_drop:p ~signal_delay:p ~checkpoint_truncate:p
           ~model_corrupt:p ~seed ())
    | _ -> Error (Printf.sprintf "invalid chaos spec %S (expected SEED or SEED:PROB)" s)
  end
  | _ -> Error (Printf.sprintf "invalid chaos spec %S (expected SEED or SEED:PROB)" s)

let to_string t =
  Printf.sprintf "%d (solver=%.2f drop=%.2f delay=%.2f ckpt=%.2f model=%.2f)" t.seed
    t.solver_unknown_p t.signal_drop_p t.signal_delay_p t.checkpoint_truncate_p
    t.model_corrupt_p

(* An independent stream for a parallel worker: same fault probabilities,
   its own rng (Random.State is not domain-safe to share), seeded from the
   base seed and the worker index so each worker's fault schedule is
   reproducible. *)
let fork ~salt t = { t with rng = Random.State.make [| t.seed; salt; 0xc4a05 |] }

let flip t p = p > 0. && Random.State.float t.rng 1.0 < p

let truncate_file t path =
  if not (flip t t.checkpoint_truncate_p) then false
  else begin
    (try
       let len = (Unix.stat path).Unix.st_size in
       let keep = if len = 0 then 0 else Random.State.int t.rng len in
       Unix.truncate path keep
     with Unix.Unix_error _ | Sys_error _ -> ());
    true
  end

let corrupt_string t s =
  if String.length s = 0 || not (flip t t.model_corrupt_p) then s
  else begin
    let b = Bytes.of_string s in
    let i = Random.State.int t.rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int t.rng 256));
    Bytes.to_string b
  end
