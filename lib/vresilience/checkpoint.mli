(** Versioned on-disk snapshot envelope.

    A checkpoint file is a one-line header followed by an opaque payload:

    {v violet-ckpt <version> <kind> <payload-bytes> <md5-hex> v}

    The digest covers the payload and is verified {e before} the payload is
    handed back to the caller, so a truncated or bit-flipped file surfaces as
    a typed error instead of reaching [Marshal.from_string] (which may crash
    the process on corrupt input).  Writes go to a temporary file in the same
    directory and are renamed into place, so a crash mid-write — including a
    [kill -9] — leaves the previous checkpoint intact. *)

type error =
  | Io of string  (** open/read/write/rename failure *)
  | Bad_magic  (** not a checkpoint file *)
  | Bad_header  (** header line does not parse *)
  | Version_mismatch of { expected : int; found : int }
  | Kind_mismatch of { expected : string; found : string }
  | Truncated of { expected : int; got : int }
  | Corrupt  (** digest mismatch *)

val error_to_string : error -> string
val pp_error : error Fmt.t

val write : path:string -> kind:string -> version:int -> string -> (unit, error) result
(** Atomically write [payload] under the envelope. *)

val read : path:string -> kind:string -> version:int -> (string, error) result
(** Read and verify a checkpoint; the payload is returned only when the
    magic, version, kind, length and digest all check out. *)
