(** The unified exploration budget.

    One value carries every resource cap a Violet run obeys: the wall-clock
    deadline, the state cap, the per-state fuel and the per-query solver node
    budget.  The same [t] is threaded from {!Core.Pipeline} through
    {!Vsymexec.Executor} down to {!Vsmt.Solver}, replacing the scattered
    integer caps the layers used to carry separately.

    A budget is a pure {e specification}; {!arm} starts its clock.  The armed
    value answers the only questions the engine asks while running: has the
    deadline passed ({!expired}), and how close is it
    ({!pressure}, which drives the graceful-degradation ladder).

    The clock is injectable ([now]) so tests and benchmarks can run the whole
    pipeline on a virtual clock — this is what makes a resumed run's impact
    model byte-identical to an uninterrupted one, wall-time metadata
    included. *)

type t = {
  deadline_s : float option;  (** wall-clock allowance; [None] = no deadline *)
  max_states : int;  (** cap on symbolic states ever created *)
  fuel : int;  (** per-state statement budget *)
  solver_max_nodes : int;  (** per-query solver search budget *)
  now : unit -> float;  (** the clock; defaults to [Unix.gettimeofday] *)
}

val make :
  ?deadline_s:float ->
  ?max_states:int ->
  ?fuel:int ->
  ?solver_max_nodes:int ->
  ?now:(unit -> float) ->
  unit ->
  t
(** Defaults: no deadline, [max_states] 4096, [fuel] 200_000,
    [solver_max_nodes] 4_000, real clock. *)

val default : t

val with_deadline : t -> float option -> t
val with_max_states : t -> int -> t
val with_fuel : t -> int -> t
val with_solver_max_nodes : t -> int -> t
val with_clock : t -> (unit -> float) -> t

(** {1 Armed budgets} *)

type armed
(** A budget whose clock has started. *)

val arm : t -> armed
val spec : armed -> t
val elapsed_s : armed -> float
val remaining_s : armed -> float option
(** [None] when the budget has no deadline. *)

val expired : armed -> bool
(** True once [elapsed_s >= deadline_s].  Always false without a deadline. *)

val pressure : armed -> float
(** Fraction of the deadline consumed, clamped to [0..1]; [0.] without a
    deadline.  The degradation ladder's input. *)

val rearm : armed -> armed
(** A fresh armed budget with the same spec — the clock restarts now.  The
    serving layer holds one per-request budget specification and re-arms it
    for every admitted request instead of rebuilding the spec each time, so
    all requests share one deadline/cap policy (and one injectable clock). *)

val unlimited : unit -> armed
(** An armed default budget with no deadline — never expires. *)

(** {1 Test clocks} *)

val ticking_clock : ?start:float -> step_s:float -> unit -> unit -> float
(** A deterministic clock that advances by [step_s] on every read.  Lets
    deadline pressure grow with engine activity, reproducibly. *)

val manual_clock : ?start:float -> unit -> (unit -> float) * (float -> unit)
(** [(now, advance)]: a clock that only moves when [advance dt] is called. *)
