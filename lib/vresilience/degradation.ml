type rung = Full | Reduced_unroll | Concretize_all | Drop_states

let rung_level = function
  | Full -> 0
  | Reduced_unroll -> 1
  | Concretize_all -> 2
  | Drop_states -> 3

let rung_to_string = function
  | Full -> "full"
  | Reduced_unroll -> "reduced-unroll"
  | Concretize_all -> "concretize-all"
  | Drop_states -> "drop-states"

let rung_of_string = function
  | "full" -> Some Full
  | "reduced-unroll" -> Some Reduced_unroll
  | "concretize-all" -> Some Concretize_all
  | "drop-states" -> Some Drop_states
  | _ -> None

type event = { rung : rung; at_step : int; pressure : float }

type policy = {
  enabled : bool;
  t_unroll : float;
  t_concretize : float;
  t_drop : float;
  drop_keep_fraction : float;
}

let default_policy =
  { enabled = true; t_unroll = 0.5; t_concretize = 0.7; t_drop = 0.85; drop_keep_fraction = 0.5 }

let disabled = { default_policy with enabled = false }

type controller = {
  policy : policy;
  mutable cur : rung;
  mutable evs : event list;  (* newest first *)
}

let controller policy = { policy; cur = Full; evs = [] }
let current c = c.cur

let threshold c = function
  | Full -> 0.
  | Reduced_unroll -> c.policy.t_unroll
  | Concretize_all -> c.policy.t_concretize
  | Drop_states -> c.policy.t_drop

let next_rung = function
  | Full -> Some Reduced_unroll
  | Reduced_unroll -> Some Concretize_all
  | Concretize_all -> Some Drop_states
  | Drop_states -> None

let observe c ~pressure ~step =
  if not c.policy.enabled then []
  else begin
    let rec climb acc =
      match next_rung c.cur with
      | Some r when pressure >= threshold c r ->
        let ev = { rung = r; at_step = step; pressure } in
        c.cur <- r;
        c.evs <- ev :: c.evs;
        climb (ev :: acc)
      | _ -> List.rev acc
    in
    climb []
  end

let events c = List.rev c.evs

let restore c evs =
  c.evs <- List.rev evs;
  c.cur <-
    List.fold_left (fun cur e -> if rung_level e.rung > rung_level cur then e.rung else cur)
      Full evs
