type t = {
  deadline_s : float option;
  max_states : int;
  fuel : int;
  solver_max_nodes : int;
  now : unit -> float;
}

let make ?deadline_s ?(max_states = 4096) ?(fuel = 200_000) ?(solver_max_nodes = 4_000)
    ?(now = Unix.gettimeofday) () =
  { deadline_s; max_states; fuel; solver_max_nodes; now }

let default = make ()
let with_deadline t deadline_s = { t with deadline_s }
let with_max_states t max_states = { t with max_states }
let with_fuel t fuel = { t with fuel }
let with_solver_max_nodes t solver_max_nodes = { t with solver_max_nodes }
let with_clock t now = { t with now }

type armed = { spec : t; t0 : float }

let arm spec = { spec; t0 = spec.now () }
let spec a = a.spec
let elapsed_s a = a.spec.now () -. a.t0

let remaining_s a =
  Option.map (fun d -> Float.max 0. (d -. elapsed_s a)) a.spec.deadline_s

let expired a =
  match a.spec.deadline_s with None -> false | Some d -> elapsed_s a >= d

let pressure a =
  match a.spec.deadline_s with
  | None -> 0.
  | Some d when d <= 0. -> 1.
  | Some d -> Float.min 1. (Float.max 0. (elapsed_s a /. d))

let rearm a = arm a.spec
let unlimited () = arm default

let ticking_clock ?(start = 0.) ~step_s () =
  let t = ref start in
  fun () ->
    let v = !t in
    t := v +. step_s;
    v

let manual_clock ?(start = 0.) () =
  let t = ref start in
  (fun () -> !t), fun dt -> t := !t +. dt
