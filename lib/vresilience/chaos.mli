(** Fault injection for the {e engine itself}.

    Distinct from {!Vsymexec.Executor.options.fault_injection}, which injects
    faults into the {e modeled program} (library calls returning -1).  Chaos
    attacks Violet's own moving parts instead: solver queries come back
    [Unknown], tracer signals are dropped or delayed, checkpoint files are
    truncated on disk, serialized model rows are corrupted.  The QCheck chaos
    suite drives the pipeline under these faults and asserts the robustness
    contract: no uncaught exception, termination by the deadline, and a
    degraded result that is flagged as degraded.

    All randomness comes from one seeded [Random.State], so a chaotic run is
    reproducible from its seed. *)

type t = {
  seed : int;
  solver_unknown_p : float;  (** a solver query returns [Unknown] unsolved *)
  signal_drop_p : float;  (** a tracer signal is lost in transit *)
  signal_delay_p : float;  (** a tracer signal's timestamp is skewed *)
  signal_delay_us : float;
  checkpoint_truncate_p : float;  (** a written checkpoint file is truncated *)
  model_corrupt_p : float;  (** a serialized model byte is flipped *)
  rng : Random.State.t;
}

val make :
  ?solver_unknown:float ->
  ?signal_drop:float ->
  ?signal_delay:float ->
  ?signal_delay_us:float ->
  ?checkpoint_truncate:float ->
  ?model_corrupt:float ->
  seed:int ->
  unit ->
  t
(** All probabilities default to [0.]; [signal_delay_us] to [500.]. *)

val default_with_seed : int -> t
(** The standard chaos mix: 5% solver unknowns, 5% signal drops/delays,
    20% checkpoint truncation, 5% model corruption. *)

val of_string : string -> (t, string) result
(** ["SEED"] for {!default_with_seed}, or ["SEED:P"] to set every fault
    probability to [P] (checkpoint truncation included). *)

val to_string : t -> string

val flip : t -> float -> bool
(** One biased coin toss from the chaos rng. *)

val fork : salt:int -> t -> t
(** A chaos instance with the same fault probabilities but an independent
    rng stream derived from the base seed and [salt] — one per parallel
    worker, since a [Random.State] must not be shared across domains. *)

val truncate_file : t -> string -> bool
(** With probability [checkpoint_truncate_p], truncate the file to a random
    prefix (possibly zero bytes).  Returns whether it fired.  Errors while
    mauling are swallowed — chaos never aborts the run itself. *)

val corrupt_string : t -> string -> string
(** With probability [model_corrupt_p], flip a random byte (returns the
    input unchanged otherwise or when empty). *)
