type error =
  | Io of string
  | Bad_magic
  | Bad_header
  | Version_mismatch of { expected : int; found : int }
  | Kind_mismatch of { expected : string; found : string }
  | Truncated of { expected : int; got : int }
  | Corrupt

let error_to_string = function
  | Io msg -> "i/o error: " ^ msg
  | Bad_magic -> "not a checkpoint file"
  | Bad_header -> "malformed checkpoint header"
  | Version_mismatch { expected; found } ->
    Printf.sprintf "checkpoint version %d, expected %d" found expected
  | Kind_mismatch { expected; found } ->
    Printf.sprintf "checkpoint kind %S, expected %S" found expected
  | Truncated { expected; got } ->
    Printf.sprintf "checkpoint truncated: %d of %d payload bytes" got expected
  | Corrupt -> "checkpoint payload digest mismatch"

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let magic = "violet-ckpt"

let header ~kind ~version payload =
  Printf.sprintf "%s %d %s %d %s\n" magic version kind (String.length payload)
    (Digest.to_hex (Digest.string payload))

let write ~path ~kind ~version payload =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ~kind ~version payload);
        output_string oc payload);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

let read ~path ~kind ~version =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error Bad_magic
        | exception Sys_error msg -> Error (Io msg)
        | line -> begin
          match String.split_on_char ' ' line with
          | m :: _ when not (String.equal m magic) -> Error Bad_magic
          | [ _; v; k; len; digest ] -> begin
            match int_of_string_opt v, int_of_string_opt len with
            | Some v, _ when v <> version -> Error (Version_mismatch { expected = version; found = v })
            | Some _, Some len ->
              if not (String.equal k kind) then Error (Kind_mismatch { expected = kind; found = k })
              else begin
                let buf = Bytes.create len in
                match really_input ic buf 0 len with
                | exception End_of_file ->
                  let got = max 0 (in_channel_length ic - (String.length line + 1)) in
                  Error (Truncated { expected = len; got })
                | () ->
                  let payload = Bytes.to_string buf in
                  if String.equal (Digest.to_hex (Digest.string payload)) digest then Ok payload
                  else Error Corrupt
              end
            | _ -> Error Bad_header
          end
          | _ -> Error Bad_magic
        end)
