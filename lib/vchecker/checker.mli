(** The continuous specious-configuration checker (paper Section 4.7).

    Consumes a stored impact model and validates concrete user
    configurations, in three modes:

    + {b update}: a configuration update introduces a performance
      regression — compare the states matching the parameter's old and new
      values;
    + {b defaults}: a default (or currently deployed) value is poor for the
      user's setup — the state the current value falls in appears on the
      slow side of a significant pair;
    + {b upgrade / workload change}: a new code version's model makes an old
      setting poor, or the production workload class shifted into a poor
      state's input predicate.

    Findings carry the logical explanation (cost metrics, differential
    critical path) and a generated validation test case, not just a verdict —
    the analytical output the paper argues testing cannot give. *)

type finding = {
  param : string;
  message : string;
  slow_row : Vmodel.Cost_row.t;
  fast_row : Vmodel.Cost_row.t option;
  ratio : float;  (** slow/fast latency ratio (or worst metric ratio) *)
  trigger : string;
  critical_path : string list;
  test_case : Test_case.t option;
}

type report = { findings : finding list; checked_in_s : float }

(** How row decisions are made (DESIGN.md Section 5j):

    - [Solver]: the original substitute-simplify-solve path;
    - [Materialized]: answer from {!Vmodel.Compiled_model} decision tables,
      compiling on the fly when the caller supplies no artifact;
    - [Hybrid] (the default): use a supplied compiled artifact (the serving
      registry compiles at load time), otherwise stay on the solver path.

    All three modes produce byte-identical findings — the compiled tables
    are exact, with per-row fallback to the solver path for decisions the
    compiler could not close. *)
type mode = Solver | Materialized | Hybrid

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val default_joint_input_max_nodes : int
(** Node budget of the joint-input feasibility gate (1_000 — the same
    budget the analyzer's screen uses); serve/CLI callers can tune it per
    request via [?joint_input_max_nodes]. *)

val degraded_findings : Vmodel.Impact_model.t -> finding list
(** Conservative findings for a model built under budget degradation: one
    per dropped path (its configuration region has unknown cost, [fast_row =
    None], [trigger = "degraded"]).  Included by {!check_current},
    {!check_update} and {!check_workload_change} automatically, so
    degradation can only {e widen} the reported specious set, never shrink
    it. *)

val check_update :
  ?mode:mode ->
  ?compiled:Vmodel.Compiled_model.t ->
  ?joint_input_max_nodes:int ->
  model:Vmodel.Impact_model.t ->
  registry:Vruntime.Config_registry.t ->
  old_file:Config_file.t ->
  new_file:Config_file.t ->
  unit ->
  (report, string) result
(** Mode 1.  [Error] when a file fails to validate against the registry.
    [compiled] is used only when it was compiled from this exact [model]
    (physical identity) and [mode] is not [Solver]. *)

val check_current :
  ?mode:mode ->
  ?compiled:Vmodel.Compiled_model.t ->
  ?joint_input_max_nodes:int ->
  model:Vmodel.Impact_model.t ->
  registry:Vruntime.Config_registry.t ->
  file:Config_file.t ->
  unit ->
  (report, string) result
(** Mode 2, generalized: checks the file's effective values (defaults
    included) against the model's poor states. *)

val check_upgrade :
  ?old_digest:string ->
  ?new_digest:string ->
  old_model:Vmodel.Impact_model.t ->
  new_model:Vmodel.Impact_model.t ->
  unit ->
  report
(** Mode 3a: states that got significantly slower in the new code version's
    model, matched by configuration-constraint text (keyed lookup — no
    solver involved, so no [mode]).  When both serialized-model digests are
    supplied and equal, the row sweep is skipped outright — identical
    models cannot produce findings (the incremental path hits this
    constantly: an upgrade whose diff misses a slice carries its model over
    verbatim). *)

val check_workload_change :
  ?mode:mode ->
  ?compiled:Vmodel.Compiled_model.t ->
  ?joint_input_max_nodes:int ->
  model:Vmodel.Impact_model.t ->
  old_workload:(string * int) list ->
  new_workload:(string * int) list ->
  unit ->
  report
(** Mode 3b: rows whose input predicate the new workload satisfies compared
    against the rows the old workload satisfied.  On a degraded model the
    conservative {!degraded_findings} are appended: the shifted workload may
    land in an unknown-cost region, so the widening applies here too. *)

val pp_report : report Fmt.t
