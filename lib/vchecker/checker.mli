(** The continuous specious-configuration checker (paper Section 4.7).

    Consumes a stored impact model and validates concrete user
    configurations, in three modes:

    + {b update}: a configuration update introduces a performance
      regression — compare the states matching the parameter's old and new
      values;
    + {b defaults}: a default (or currently deployed) value is poor for the
      user's setup — the state the current value falls in appears on the
      slow side of a significant pair;
    + {b upgrade / workload change}: a new code version's model makes an old
      setting poor, or the production workload class shifted into a poor
      state's input predicate.

    Findings carry the logical explanation (cost metrics, differential
    critical path) and a generated validation test case, not just a verdict —
    the analytical output the paper argues testing cannot give. *)

type finding = {
  param : string;
  message : string;
  slow_row : Vmodel.Cost_row.t;
  fast_row : Vmodel.Cost_row.t option;
  ratio : float;  (** slow/fast latency ratio (or worst metric ratio) *)
  trigger : string;
  critical_path : string list;
  test_case : Test_case.t option;
}

type report = { findings : finding list; checked_in_s : float }

val degraded_findings : Vmodel.Impact_model.t -> finding list
(** Conservative findings for a model built under budget degradation: one
    per dropped path (its configuration region has unknown cost, [fast_row =
    None], [trigger = "degraded"]).  Included by {!check_current},
    {!check_update} and {!check_workload_change} automatically, so
    degradation can only {e widen} the reported specious set, never shrink
    it. *)

val check_update :
  model:Vmodel.Impact_model.t ->
  registry:Vruntime.Config_registry.t ->
  old_file:Config_file.t ->
  new_file:Config_file.t ->
  (report, string) result
(** Mode 1.  [Error] when a file fails to validate against the registry. *)

val check_current :
  model:Vmodel.Impact_model.t ->
  registry:Vruntime.Config_registry.t ->
  file:Config_file.t ->
  (report, string) result
(** Mode 2, generalized: checks the file's effective values (defaults
    included) against the model's poor states. *)

val check_upgrade :
  old_model:Vmodel.Impact_model.t -> new_model:Vmodel.Impact_model.t -> report
(** Mode 3a: states that got significantly slower in the new code version's
    model, matched by configuration-constraint text. *)

val check_workload_change :
  model:Vmodel.Impact_model.t ->
  old_workload:(string * int) list ->
  new_workload:(string * int) list ->
  report
(** Mode 3b: rows whose input predicate the new workload satisfies compared
    against the rows the old workload satisfied.  On a degraded model the
    conservative {!degraded_findings} are appended: the shifted workload may
    land in an unknown-cost region, so the widening applies here too. *)

val pp_report : report Fmt.t
