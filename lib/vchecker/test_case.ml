type t = { workload : (string * int) list; description : string }

let describe vars assignment =
  let part (v : Vsmt.Expr.var) =
    match List.assoc_opt v.Vsmt.Expr.name assignment with
    | Some x -> Some (Printf.sprintf "%s=%s" v.Vsmt.Expr.name (Vsmt.Dom.value_to_string v.Vsmt.Expr.dom x))
    | None -> None
  in
  String.concat ", " (List.filter_map part vars)

let of_predicate_live preds =
  match preds with
  | [] -> Some { workload = []; description = "any workload" }
  | _ -> begin
    match Vsmt.Solver.check ~max_nodes:Vsmt.Solver.default_max_nodes preds with
    | Vsmt.Solver.Sat m ->
      let vars = List.concat_map Vsmt.Expr.vars preds in
      let vars =
        List.fold_left
          (fun acc (v : Vsmt.Expr.var) ->
            if List.exists (fun (w : Vsmt.Expr.var) -> w.Vsmt.Expr.name = v.Vsmt.Expr.name) acc
            then acc
            else acc @ [ v ])
          [] vars
      in
      let m = Vsmt.Solver.complete ~vars m in
      Some { workload = m; description = "run workload with " ^ describe vars m }
    | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> None
  end

(* [of_predicate_live] is deterministic in its predicate list (the solver
   budget is pinned), so repeated findings over the same rows answer from a
   bounded memo: steady-state serving builds each witness's test case once.
   Keys are structural; the table resets rather than evicts when full. *)
let memo : (Vsmt.Expr.t list, t option) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let of_predicate preds =
  Mutex.lock memo_lock;
  let cached = Hashtbl.find_opt memo preds in
  Mutex.unlock memo_lock;
  match cached with
  | Some r -> r
  | None ->
    let r = of_predicate_live preds in
    Mutex.lock memo_lock;
    if Hashtbl.length memo >= 4_096 then Hashtbl.reset memo;
    Hashtbl.replace memo preds r;
    Mutex.unlock memo_lock;
    r

let of_row (row : Vmodel.Cost_row.t) = of_predicate row.Vmodel.Cost_row.workload_pred

(* Residual input constraints of a row's configuration constraints under a
   concrete configuration: mixed constraints like "row_bytes > buf/2" become
   pure input predicates once the configuration is pinned. *)
let residuals assignment constraints =
  List.filter_map
    (fun c ->
      let r =
        Vsmt.Simplify.simplify
          (Vsmt.Expr.subst
             (fun v ->
               match List.assoc_opt v.Vsmt.Expr.name assignment with
               | Some x -> Some (Vsmt.Expr.const x)
               | None -> None)
             c)
      in
      match Vsmt.Expr.is_const r with Some _ -> None | None -> Some r)
    constraints

(* Everything [of_pair] reads is in this key — both assignments and both
   rows' predicate lists — so the memo is exact across models and modes;
   the win is skipping the residual substitution/simplification, not just
   the solver call. *)
let pair_memo :
    ( ((string * int) list * (string * int) list)
      * (Vsmt.Expr.t list * Vsmt.Expr.t list)
      * (Vsmt.Expr.t list * Vsmt.Expr.t list),
      t option )
    Hashtbl.t =
  Hashtbl.create 64

let pair_lock = Mutex.create ()

let of_pair ~poor ~good ~(slow : Vmodel.Cost_row.t) ~(fast : Vmodel.Cost_row.t) =
  let key =
    ( (poor, good),
      (slow.Vmodel.Cost_row.workload_pred, fast.Vmodel.Cost_row.workload_pred),
      (slow.Vmodel.Cost_row.config_constraints, fast.Vmodel.Cost_row.config_constraints) )
  in
  Mutex.lock pair_lock;
  let cached = Hashtbl.find_opt pair_memo key in
  Mutex.unlock pair_lock;
  match cached with
  | Some r -> r
  | None ->
    let r =
      of_predicate
        (slow.Vmodel.Cost_row.workload_pred
        @ fast.Vmodel.Cost_row.workload_pred
        @ residuals poor slow.Vmodel.Cost_row.config_constraints
        @ residuals good fast.Vmodel.Cost_row.config_constraints)
    in
    Mutex.lock pair_lock;
    if Hashtbl.length pair_memo >= 4_096 then Hashtbl.reset pair_memo;
    Hashtbl.replace pair_memo key r;
    Mutex.unlock pair_lock;
    r
