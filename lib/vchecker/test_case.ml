type t = { workload : (string * int) list; description : string }

let describe vars assignment =
  let part (v : Vsmt.Expr.var) =
    match List.assoc_opt v.Vsmt.Expr.name assignment with
    | Some x -> Some (Printf.sprintf "%s=%s" v.Vsmt.Expr.name (Vsmt.Dom.value_to_string v.Vsmt.Expr.dom x))
    | None -> None
  in
  String.concat ", " (List.filter_map part vars)

let of_predicate preds =
  match preds with
  | [] -> Some { workload = []; description = "any workload" }
  | _ -> begin
    match Vsmt.Solver.check ~max_nodes:Vsmt.Solver.default_max_nodes preds with
    | Vsmt.Solver.Sat m ->
      let vars = List.concat_map Vsmt.Expr.vars preds in
      let vars =
        List.fold_left
          (fun acc (v : Vsmt.Expr.var) ->
            if List.exists (fun (w : Vsmt.Expr.var) -> w.Vsmt.Expr.name = v.Vsmt.Expr.name) acc
            then acc
            else acc @ [ v ])
          [] vars
      in
      let m = Vsmt.Solver.complete ~vars m in
      Some { workload = m; description = "run workload with " ^ describe vars m }
    | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> None
  end

let of_row (row : Vmodel.Cost_row.t) = of_predicate row.Vmodel.Cost_row.workload_pred

(* Residual input constraints of a row's configuration constraints under a
   concrete configuration: mixed constraints like "row_bytes > buf/2" become
   pure input predicates once the configuration is pinned. *)
let residuals assignment constraints =
  List.filter_map
    (fun c ->
      let r =
        Vsmt.Simplify.simplify
          (Vsmt.Expr.subst
             (fun v ->
               match List.assoc_opt v.Vsmt.Expr.name assignment with
               | Some x -> Some (Vsmt.Expr.const x)
               | None -> None)
             c)
      in
      match Vsmt.Expr.is_const r with Some _ -> None | None -> Some r)
    constraints

let of_pair ~poor ~good ~(slow : Vmodel.Cost_row.t) ~(fast : Vmodel.Cost_row.t) =
  of_predicate
    (slow.Vmodel.Cost_row.workload_pred
    @ fast.Vmodel.Cost_row.workload_pred
    @ residuals poor slow.Vmodel.Cost_row.config_constraints
    @ residuals good fast.Vmodel.Cost_row.config_constraints)
