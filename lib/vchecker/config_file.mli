(** my.cnf / postgresql.conf style configuration files.

    Supported syntax: [key = value] lines, [#] and [;] comments, blank
    lines, and [\[section\]] headers (recorded but not interpreted, like
    MySQL's option groups).  Later assignments to the same key win, matching
    the behaviour of the real parsers. *)

type t

val parse : string -> t
(** Parse file contents with per-line error recovery: a malformed line
    (broken section header, empty key, line that is neither a comment, a
    [key = value] pair, nor a bare flag name) is skipped and recorded in
    {!issues} with its 1-based line number.  [parse] never fails — a config
    file with one corrupt line still yields every well-formed binding. *)

val issues : t -> (int * string) list
(** Recovered-from parse problems, in line order; [[]] for a clean file. *)

val load : string -> (t, string) result
(** [Error] only on I/O failure; parse problems surface via {!issues}. *)

val bindings : t -> (string * string) list
val lookup : t -> string -> string option

val changed_keys : old_file:t -> new_file:t -> (string * string option * string option) list
(** [(key, old value, new value)] for every key added, removed or modified. *)

val to_assignment :
  Vruntime.Config_registry.t -> t -> ((string * int) list * string list, string) result
(** Encode the file against a registry: returns the full assignment
    (registry defaults overridden by the file) plus the list of file keys
    unknown to the registry (ignored, like plugin options).  [Error] on a
    value that fails validation — that is an {e invalid} configuration,
    which is outside Violet's scope but still reported. *)
