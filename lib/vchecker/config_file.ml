type t = {
  entries : (string * string) list;
  issues : (int * string) list;
}

(* Per-line error recovery: a malformed line is recorded as an issue and
   skipped, never aborting the whole file — a checker pointed at a config
   with one corrupt line should still validate the other 400 settings. *)
let parse content =
  let lines = String.split_on_char '\n' content in
  let rec go entries issues lineno = function
    | [] -> { entries = List.rev entries; issues = List.rev issues }
    | line :: rest ->
      let lineno = lineno + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = ';' then go entries issues lineno rest
      else if trimmed.[0] = '[' then
        if trimmed.[String.length trimmed - 1] = ']' then go entries issues lineno rest
        else go entries ((lineno, "malformed section header") :: issues) lineno rest
      else begin
        match String.index_opt trimmed '=' with
        | None ->
          (* bare keys are flag-style options (skip-networking) *)
          if
            String.for_all
              (fun c ->
                c = '_' || c = '-' || c = '.'
                || (c >= 'a' && c <= 'z')
                || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9'))
              trimmed
          then go ((trimmed, "ON") :: entries) issues lineno rest
          else go entries ((lineno, "unparseable line") :: issues) lineno rest
        | Some i ->
          let key = String.trim (String.sub trimmed 0 i) in
          let value =
            String.trim (String.sub trimmed (i + 1) (String.length trimmed - i - 1))
          in
          if key = "" then go entries ((lineno, "empty key") :: issues) lineno rest
          else go ((key, value) :: entries) issues lineno rest
      end
  in
  go [] [] 0 lines

let issues t = t.issues

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    Ok (parse content)

(* later assignments win; file order is preserved for the survivors *)
let bindings t =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (k, v) ->
      if Hashtbl.mem seen k then acc
      else begin
        Hashtbl.add seen k ();
        (k, v) :: acc
      end)
    []
    (List.rev t.entries)

let lookup t key = List.assoc_opt key (bindings t)

let changed_keys ~old_file ~new_file =
  let old_b = bindings old_file and new_b = bindings new_file in
  let keys =
    List.sort_uniq String.compare (List.map fst old_b @ List.map fst new_b)
  in
  List.filter_map
    (fun k ->
      let o = List.assoc_opt k old_b and n = List.assoc_opt k new_b in
      if o = n then None else Some (k, o, n))
    keys

let to_assignment registry t =
  let defaults =
    List.map
      (fun (p : Vruntime.Config_registry.param) ->
        p.Vruntime.Config_registry.name, p.Vruntime.Config_registry.default)
      (Vruntime.Config_registry.params registry)
  in
  let rec go assignment unknown = function
    | [] -> Ok (assignment, List.rev unknown)
    | (k, v) :: rest -> begin
      match Vruntime.Config_registry.find_opt registry k with
      | None -> go assignment (k :: unknown) rest
      | Some p -> begin
        match Vruntime.Config_registry.encode p v with
        | Some enc ->
          go ((k, enc) :: List.remove_assoc k assignment) unknown rest
        | None ->
          Error
            (Printf.sprintf "invalid value %S for parameter %s (%s)" v k
               p.Vruntime.Config_registry.summary)
      end
    end
  in
  go defaults [] (bindings t)
