module M = Vmodel.Impact_model
module Row = Vmodel.Cost_row
module Diff = Vmodel.Diff_analysis
module CM = Vmodel.Compiled_model

type finding = {
  param : string;
  message : string;
  slow_row : Row.t;
  fast_row : Row.t option;
  ratio : float;
  trigger : string;
  critical_path : string list;
  test_case : Test_case.t option;
}

type report = { findings : finding list; checked_in_s : float }

type mode = Solver | Materialized | Hybrid

let mode_to_string = function
  | Solver -> "solver"
  | Materialized -> "materialized"
  | Hybrid -> "hybrid"

let mode_of_string = function
  | "solver" -> Some Solver
  | "materialized" -> Some Materialized
  | "hybrid" -> Some Hybrid
  | _ -> None

let ( let* ) = Result.bind

let timed f =
  let t0 = Unix.gettimeofday () in
  let findings = f () in
  { findings; checked_in_s = Unix.gettimeofday () -. t0 }

let mentions row params =
  List.exists
    (fun c ->
      List.exists
        (fun (v : Vsmt.Expr.var) -> List.mem v.Vsmt.Expr.name params)
        (Vsmt.Expr.vars c))
    row.Row.config_constraints

(* same budget the analyzer's joint-input screen uses; serve/CLI callers can
   tune it per request, the default stays the analyzer's *)
let default_joint_input_max_nodes = 1_000

(* ------------------------------------------------------------------ *)
(* Engines: one set of checker semantics over two row-decision backends.
   The solver engine is the original substitute-simplify-solve path; the
   compiled engine answers from a {!Vmodel.Compiled_model}'s decision
   tables (falling back per row when the tables cannot close a decision).
   Both engines must produce byte-identical findings — the vfuzz oracle and
   bench matcheck pin this. *)

type engine = {
  e_rows_matching : (string * int) list -> Row.t list;
  e_rows_matching_workload : (string * int) list -> Row.t list;
  e_mentions : Row.t -> string list -> bool;
  e_is_poor : Row.t -> bool;
  e_witness :
    require_joint_input:bool ->
    Row.t ->
    Row.t list ->
    (Row.t * (float * string * string list)) option;
      (** first candidate (most-comparable order, capped at
          [max_candidates]) that passes the joint-input gate (when required)
          and yields a verdict, with that verdict *)
}

(* Most-comparable fast rows first: same input class, then similarity.
   Scores are computed once per row (not in the comparator) and the scan is
   capped — candidates far down the similarity order cannot produce a
   meaningful witness.  [Compiled_model.comparison_order] materializes
   exactly this ordering. *)
let max_candidates = 48

(* Candidate pools are sorted by row content before any engine sees them:
   both engines break similarity ties by pool position, so pool order must
   not inherit model row order — that is scheduling-dependent under
   --fast-nondet, and check verdicts have to be identical across modes.
   stable, id-blind: rows with equal content keep pool order, and either is
   an equally valid witness (they differ only in [state_id]). *)
let by_content rows =
  List.map snd
    (List.stable_sort
       (fun (ka, _) (kb, _) -> String.compare ka kb)
       (List.map (fun r -> (Row.content_key r, r)) rows))

let order_by_similarity slow rows =
  let decorated =
    rows
    |> List.filter (fun r -> r.Row.state_id <> slow.Row.state_id)
    |> List.map (fun r ->
           ((Vmodel.Similarity.workload_score slow r, Vmodel.Similarity.score slow r), r))
  in
  let sorted =
    List.stable_sort
      (fun ((wa, ca), _) ((wb, cb), _) ->
        if wa <> wb then Int.compare wb wa else Int.compare cb ca)
      decorated
  in
  List.filteri (fun i _ -> i < max_candidates) (List.map snd sorted)

(* Prefer the pre-computed poor pair for (slow, fast) when the analyzer
   already found it; otherwise compare the rows directly.  Modes 1 and 2
   require a single input class to trigger both states (Section 4.6);
   the workload-change mode deliberately compares across input classes. *)
let solver_engine (model : M.t) ~joint_input_max_nodes =
  let judge ~require_joint_input slow fast =
    if
      require_joint_input
      && not
           (Vsmt.Solver.is_feasible ~max_nodes:joint_input_max_nodes
              (slow.Row.workload_pred @ fast.Row.workload_pred))
    then None
    else
      match M.pairs_between model ~slow ~fast with
      | p :: _ -> Some (p.M.latency_ratio, p.M.trigger, p.M.critical_path)
      | [] -> begin
        match Diff.compare_pair ~threshold:model.M.threshold ~slow ~fast with
        | Some (worst, triggers) ->
          let diff = Vmodel.Critical_path.differential ~slow ~fast in
          Some
            (1. +. worst, Diff.trigger_label triggers, diff.Vmodel.Critical_path.critical_path)
        | None -> None
      end
  in
  {
    e_rows_matching = (fun assignment -> M.rows_matching model assignment);
    e_rows_matching_workload =
      (fun w -> List.filter (fun r -> Row.workload_satisfied_by r w) model.M.rows);
    e_mentions = mentions;
    e_is_poor = (fun r -> M.is_poor_row model r);
    e_witness =
      (fun ~require_joint_input slow rows ->
        List.find_map
          (fun fast ->
            Option.map (fun v -> (fast, v)) (judge ~require_joint_input slow fast))
          (order_by_similarity slow rows));
  }

let compiled_engine (cm : CM.t) ~joint_input_max_nodes =
  {
    e_rows_matching = (fun assignment -> CM.rows_matching cm assignment);
    e_rows_matching_workload = (fun w -> CM.rows_matching_workload cm w);
    e_mentions = (fun r params -> CM.mentions cm r params);
    e_is_poor = (fun r -> CM.is_poor_row cm r);
    e_witness =
      (fun ~require_joint_input slow rows ->
        CM.first_witness cm ~cap:max_candidates ~max_nodes:joint_input_max_nodes
          ~require_joint_input ~slow rows);
  }

(* Hybrid trusts a supplied artifact (the registry compiles at load time)
   and otherwise stays on the solver path; Materialized compiles on the
   fly when the caller has no artifact.  A compiled artifact for a
   different model (physical identity) is stale and never used. *)
let engine_of ~mode ~compiled ~joint_input_max_nodes model =
  let artifact =
    match compiled with Some c when CM.model c == model -> Some c | _ -> None
  in
  match (mode, artifact) with
  | Solver, _ -> solver_engine model ~joint_input_max_nodes
  | (Materialized | Hybrid), Some cm -> compiled_engine cm ~joint_input_max_nodes
  | Materialized, None ->
    compiled_engine
      (CM.compile ~joint_max_nodes:joint_input_max_nodes model)
      ~joint_input_max_nodes
  | Hybrid, None -> solver_engine model ~joint_input_max_nodes

(* When the caller knows the slow/fast configurations, the test case is
   built to distinguish the pair (Test_case.of_pair); otherwise it solves
   the slow state's input predicate alone.  [rows] is the candidate pool;
   the engine picks the witness (first surviving candidate in comparison
   order). *)
let finding_of ?(require_joint_input = true) ?configs eng ~param ~message slow rows =
  match eng.e_witness ~require_joint_input slow rows with
  | None -> None
  | Some (fast, (ratio, trigger, critical_path)) ->
    let test_case =
      match configs with
      | Some (poor, good) -> begin
        match Test_case.of_pair ~poor ~good ~slow ~fast with
        | Some tc -> Some tc
        | None -> Test_case.of_row slow
      end
      | None -> Test_case.of_row slow
    in
    Some
      { param; message; slow_row = slow; fast_row = Some fast; ratio; trigger;
        critical_path; test_case }

(* Conservative widening for degraded models (built under budget pressure):
   every path the engine dropped is a configuration region with *unknown*
   cost, so the checker flags it rather than silently passing it.  The
   reported set can only grow relative to the complete model — degradation
   never hides a finding, it adds conservative ones. *)
let row_of_dropped (dp : M.dropped_path) =
  {
    Row.state_id = dp.M.dp_state_id;
    config_constraints = dp.M.dp_config_constraints;
    workload_pred = [];
    cost = { Vruntime.Cost.zero with Vruntime.Cost.latency_us = dp.M.dp_latency_so_far_us };
    traced_latency_us = dp.M.dp_latency_so_far_us;
    chain = [];
    nodes = [];
    critical_ops = [];
  }

let degraded_findings (model : M.t) =
  match model.M.degradation with
  | None -> []
  | Some d ->
    List.map
      (fun (dp : M.dropped_path) ->
        {
          param = model.M.target;
          message =
            Printf.sprintf
              "analysis was degraded (%s%s): path %d was dropped before completion, so \
               its configuration region has unknown cost — treat as potentially specious"
              (String.concat " -> " d.M.rungs)
              (if d.M.deadline_hit then ", deadline hit" else "")
              dp.M.dp_state_id;
          slow_row = row_of_dropped dp;
          fast_row = None;
          ratio = 0.;
          trigger = "degraded";
          critical_path = [];
          test_case = None;
        })
      d.M.dropped_paths

let check_update ?(mode = Hybrid) ?compiled
    ?(joint_input_max_nodes = default_joint_input_max_nodes) ~model ~registry ~old_file
    ~new_file () =
  let* old_assignment, _ = Config_file.to_assignment registry old_file in
  let* new_assignment, _ = Config_file.to_assignment registry new_file in
  let eng = engine_of ~mode ~compiled ~joint_input_max_nodes model in
  Ok
    (timed (fun () ->
         let old_rows = eng.e_rows_matching old_assignment in
         let new_rows = eng.e_rows_matching new_assignment in
         let changed = Config_file.changed_keys ~old_file ~new_file in
         let changed_names = List.map (fun (k, _, _) -> k) changed in
         let relevant =
           List.filter
             (fun k -> String.equal k model.M.target || List.mem k model.M.related)
             changed_names
         in
         if relevant = [] then []
         else begin
           (* only states whose constraints involve an updated parameter can
              witness the regression (Section 4.7, scenario 1) *)
           let new_rows =
             by_content (List.filter (fun r -> eng.e_mentions r relevant) new_rows)
           in
           let old_rows =
             by_content (List.filter (fun r -> eng.e_mentions r relevant) old_rows)
           in
           List.filter_map
             (fun slow ->
               finding_of ~configs:(new_assignment, old_assignment) eng
                 ~param:(String.concat "," relevant)
                 ~message:
                   (Printf.sprintf
                      "config update on %s introduces a potential performance regression"
                      (String.concat ", " relevant))
                 slow old_rows)
             new_rows
         end
         @ degraded_findings model))

(* Representative alternative values of a parameter: full enumeration for
   small domains, boundary values plus the default otherwise. *)
let alternative_values (p : Vruntime.Config_registry.param) current =
  let dom = Vruntime.Config_registry.dom p in
  let lo = Vsmt.Dom.lo dom and hi = Vsmt.Dom.hi dom in
  let candidates =
    if Vsmt.Dom.size dom <= 16 then List.init (Vsmt.Dom.size dom) (fun k -> lo + k)
    else [ lo; hi; p.Vruntime.Config_registry.default; (lo + hi) / 2 ]
  in
  List.sort_uniq Int.compare (List.filter (fun v -> v <> current) candidates)

let check_current ?(mode = Hybrid) ?compiled
    ?(joint_input_max_nodes = default_joint_input_max_nodes) ~model ~registry ~file () =
  let* assignment, _ = Config_file.to_assignment registry file in
  let eng = engine_of ~mode ~compiled ~joint_input_max_nodes model in
  Ok
    (timed (fun () ->
         let current_rows =
           by_content
             (List.filter
                (fun r -> eng.e_is_poor r && eng.e_mentions r [ model.M.target ])
                (eng.e_rows_matching assignment))
         in
         (if current_rows = [] then []
          else begin
            (* "another value of the parameter performs significantly better"
               (Section 4.7, scenario 2): witnesses keep every other setting
               as deployed and change only the target *)
            let fast_rows =
              by_content
                (match Vruntime.Config_registry.find_opt registry model.M.target with
                | None -> model.M.rows
                | Some p ->
                  let current = List.assoc model.M.target assignment in
                  List.concat_map
                    (fun alt ->
                      let assignment' =
                        (model.M.target, alt) :: List.remove_assoc model.M.target assignment
                      in
                      eng.e_rows_matching assignment')
                    (alternative_values p current))
            in
            List.filter_map
              (fun slow ->
                finding_of ~configs:(assignment, assignment) eng
                  ~param:model.M.target
                  ~message:
                    (Printf.sprintf
                       "current value of %s falls in a poor state; another value \
                        performs significantly better"
                       model.M.target)
                  slow fast_rows)
              current_rows
          end)
         @ degraded_findings model))

let check_upgrade ?old_digest ?new_digest ~old_model ~new_model () =
  timed (fun () ->
      (* identical serialized models can't produce findings — every row
         pairs with its byte-equal twin and compares equal.  Callers that
         already hold digests (the registry, vinc manifests) skip the row
         sweep entirely; purely a fast path, the sweep answers the same. *)
      match old_digest, new_digest with
      | Some a, Some b when String.equal a b -> []
      | _ ->
      (* keyed lookup instead of the former O(n²) assoc scan; first
         occurrence wins, preserving [List.assoc]'s semantics when two old
         rows render to the same constraint string *)
      let old_by_constraint = Hashtbl.create (List.length old_model.M.rows) in
      List.iter
        (fun r ->
          let key = Row.constraint_string r in
          if not (Hashtbl.mem old_by_constraint key) then
            Hashtbl.replace old_by_constraint key r)
        old_model.M.rows;
      List.filter_map
        (fun new_row ->
          match Hashtbl.find_opt old_by_constraint (Row.constraint_string new_row) with
          | None -> None
          | Some old_row -> begin
            match
              Diff.compare_pair ~threshold:new_model.M.threshold ~slow:new_row ~fast:old_row
            with
            | None -> None
            | Some (worst, triggers) ->
              Some
                {
                  param = new_model.M.target;
                  message =
                    Printf.sprintf
                      "code upgrade makes setting [%s] significantly slower than before"
                      (Row.constraint_string new_row);
                  slow_row = new_row;
                  fast_row = Some old_row;
                  ratio = 1. +. worst;
                  trigger = Diff.trigger_label triggers;
                  critical_path = new_row.Row.critical_ops;
                  test_case = Test_case.of_row new_row;
                }
          end)
        new_model.M.rows)

let check_workload_change ?(mode = Hybrid) ?compiled
    ?(joint_input_max_nodes = default_joint_input_max_nodes) ~model ~old_workload
    ~new_workload () =
  let eng = engine_of ~mode ~compiled ~joint_input_max_nodes model in
  timed (fun () ->
      let old_rows = eng.e_rows_matching_workload old_workload in
      let new_rows = eng.e_rows_matching_workload new_workload in
      List.filter_map
        (fun slow ->
          finding_of ~require_joint_input:false eng ~param:model.M.target
            ~message:
              (Printf.sprintf
                 "workload change moves %s into a significantly slower state"
                 model.M.target)
            slow old_rows)
        new_rows
      (* a degraded model has configuration regions with unknown cost; the
         shifted workload may land in one, so the conservative widening
         applies to this mode exactly as it does to modes 1 and 2 *)
      @ degraded_findings model)

let pp_finding ppf f =
  Fmt.pf ppf "[%s] %s@.  state: %s@.  ratio: %.1fx (%s)@." f.param f.message
    (Row.constraint_string f.slow_row)
    f.ratio f.trigger;
  if f.critical_path <> [] then
    Fmt.pf ppf "  critical path: %s@." (String.concat " -> " f.critical_path);
  match f.test_case with
  | Some tc -> Fmt.pf ppf "  validate: %s@." tc.Test_case.description
  | None -> ()

let pp_report ppf r =
  if r.findings = [] then Fmt.pf ppf "no specious configuration detected@."
  else begin
    Fmt.pf ppf "%d finding(s):@." (List.length r.findings);
    List.iter (pp_finding ppf) r.findings
  end;
  Fmt.pf ppf "checked in %.3f s@." r.checked_in_s
