(** The fleet parent: spawns the router and one worker process per shard,
    watches them, and restarts what dies.

    The supervisor process itself never spawns a domain — children come
    from [fork] (so a fleet can only be started from a process that has not
    spawned domains either; {!Vpar.Pool.spawned_domains} is the guard the
    callers use).  Each child resets signal handlers, runs its body
    ({!Vserve.Server.run} for a worker shard, {!Router.run} for the router)
    and leaves with [Unix._exit] — it never returns into the parent's
    control flow.

    Failure handling, per shard:

    - an exited worker is reaped ([waitpid WNOHANG]) and respawned after an
      exponential backoff with jitter (seeded {!Random.State}; doubling per
      consecutive crash, reset by a stable run);
    - a {e crash loop} — more than [crashloop_limit] exits inside
      [crashloop_window_s] — trips the shard's breaker: no more restarts
      until [crashloop_cooldown_s] has passed, then one half-open attempt;
    - an {e unresponsive} worker (alive but failing [probe_failures_limit]
      consecutive health probes, each bounded by [probe_timeout_s]) is
      killed with SIGKILL and handled as an exit.

    The supervisor publishes its view — per-shard pid, state
    ([up]/[down]/[restarting]/[tripped]), restart/trip/failure counts — to
    the topology's {!Topology.state_file} after every change (atomic
    replace), which is how [violet fleet stats], the chaos harness, and the
    router's stats aggregation see it.

    Shutdown: SIGTERM (or the router exiting cleanly after a [shutdown]
    request — "drain") sends SIGTERM to every child, reaps them, and
    returns. *)

type options = {
  topology : Topology.t;
  models_dir : string;
  worker_opts : int -> Vserve.Server.options;
      (** options for shard [i]'s daemon; {!default_options} binds the
          shard socket, disables polling reload ([manual_reload]) and
          shutdown-by-wire, and leaves the rest at vserve defaults *)
  router_opts : Router.options;
  probe_every_s : float;  (** health-probe period (default 0.5) *)
  probe_timeout_s : float;  (** per-probe response bound (default 1.0) *)
  probe_failures_limit : int;
      (** consecutive failed probes before SIGKILL (default 3) *)
  backoff_base_s : float;  (** first restart delay (default 0.05) *)
  backoff_max_s : float;  (** restart delay cap (default 2.0) *)
  crashloop_window_s : float;  (** crash-counting window (default 10.0) *)
  crashloop_limit : int;  (** exits in window that trip (default 5) *)
  crashloop_cooldown_s : float;  (** tripped pause before half-open (default 5.0) *)
  seed : int;  (** backoff-jitter seed *)
  spawn_worker : (int -> unit) option;
      (** override the forked worker body (tests inject crashy workers);
          [None] runs [Vserve.Server.run (worker_opts i)] *)
}

val default_options : topology:Topology.t -> models_dir:string -> options

val run : options -> (unit, string) result
(** Fork the fleet and supervise until SIGTERM or router exit.  Returns
    after every child has been reaped.  [Error] when called from a process
    that has already spawned domains (forking would be unsound). *)
