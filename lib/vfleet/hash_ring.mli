(** Consistent-hash ring over shard ids.

    Each shard contributes [vnodes] points on the ring (md5 of
    ["shard-<i>#<v>"]); a model key routes to the owner of the first point
    clockwise of the key's own hash.  Virtual nodes smooth the key
    distribution; consistent hashing keeps most keys on the same shard when
    the fleet is resized, and — because the fleet replicates every model on
    every worker — the ring is an {e affinity} choice, not a placement
    constraint: any shard can answer any key, preferred owners just keep
    batch coalescing effective.

    Deterministic: the ring is a pure function of [(shards, vnodes)], so the
    router, tests, and an operator reading logs all agree on ownership. *)

type t

val make : ?vnodes:int -> shards:int -> unit -> t
(** [vnodes] defaults to 64 points per shard.  [shards] must be >= 1. *)

val shards : t -> int

val owner : t -> string -> int
(** The shard a key routes to first. *)

val preference : t -> string -> int list
(** All shards in ring order starting at the owner, each exactly once —
    the failover candidate order for the key.  Length = [shards t]. *)
