type t = { run_dir : string; shards : int }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let make ~run_dir ~shards =
  mkdir_p run_dir;
  { run_dir; shards }

let worker_addr t i = `Unix (Filename.concat t.run_dir (Printf.sprintf "shard-%d.sock" i))
let router_addr t = `Unix (Filename.concat t.run_dir "router.sock")
let state_file t = Filename.concat t.run_dir "fleet-state.json"

let write_state t contents =
  let path = state_file t in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let read_state t =
  let path = state_file t in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
