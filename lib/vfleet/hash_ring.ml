(* ring points sorted by hash; binary search finds the first point
   clockwise of a key's hash *)
type t = { n_shards : int; points : (string * int) array  (* (hash, shard) *) }

let hash_of s = Digest.to_hex (Digest.string s)

let make ?(vnodes = 64) ~shards () =
  if shards < 1 then invalid_arg "Hash_ring.make: shards must be >= 1";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash_of (Printf.sprintf "shard-%d#%d" shard v), shard))
  in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) points;
  { n_shards = shards; points }

let shards t = t.n_shards

(* index of the first point with hash >= h, wrapping to 0 *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then 0 else !lo

let owner t key = snd t.points.(successor t (hash_of key))

let preference t key =
  let n = Array.length t.points in
  let start = successor t (hash_of key) in
  let seen = Array.make t.n_shards false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < t.n_shards && !i < n do
    let shard = snd t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      order := shard :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order
