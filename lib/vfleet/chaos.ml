module P = Vserve.Protocol
module Client = Vserve.Client

type draws = { draw_int : int -> int; draw_float : unit -> float }

type action =
  | Kill of int
  | Stall of { shard : int; for_s : float }
  | Corrupt_reload of { key : string }

let action_to_string = function
  | Kill i -> Printf.sprintf "kill shard-%d" i
  | Stall { shard; for_s } -> Printf.sprintf "stall shard-%d for %.2fs" shard for_s
  | Corrupt_reload { key } -> Printf.sprintf "corrupt reload of %s" key

let plan ~draws ~shards ~keys ~events =
  List.init events (fun _ ->
      let r = draws.draw_float () in
      if r < 0.60 || (r >= 0.85 && keys = []) then Kill (draws.draw_int shards)
      else if r < 0.85 then
        Stall
          {
            shard = draws.draw_int shards;
            for_s = 0.1 +. (0.5 *. draws.draw_float ());
          }
      else Corrupt_reload { key = List.nth keys (draws.draw_int (List.length keys)) })

type outcome = { killed : int; stalled : int; corrupted : int; stage_rejections : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let apply ~pid_of_shard ~router ~models_dir outcome action =
  match action with
  | Kill shard -> begin
    match pid_of_shard shard with
    | None | Some 0 -> outcome
    | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      { outcome with killed = outcome.killed + 1 }
  end
  | Stall { shard; for_s } -> begin
    match pid_of_shard shard with
    | None | Some 0 -> outcome
    | Some pid ->
      (try Unix.kill pid Sys.sigstop with Unix.Unix_error _ -> ());
      Unix.sleepf for_s;
      (* the supervisor may have SIGKILLed the stalled pid already; CONT on
         a reaped pid is harmless (ESRCH swallowed) *)
      (try Unix.kill pid Sys.sigcont with Unix.Unix_error _ -> ());
      { outcome with stalled = outcome.stalled + 1 }
  end
  | Corrupt_reload { key } -> begin
    let path = Vserve.Registry.model_file ~dir:models_dir ~key in
    match read_file path with
    | exception Sys_error _ -> outcome
    | original ->
      (* a write killed half-way: the envelope checksum no longer matches *)
      let cut = max 1 (String.length original / 2) in
      write_file path (String.sub original 0 cut);
      let rejected =
        match Client.call ~timeout_s:10.0 router P.Reload_stage with
        | Ok (P.Reload_info { phase = "stage"; ok; _ }) -> not ok
        | Ok _ | Error _ -> false
      in
      write_file path original;
      {
        outcome with
        corrupted = outcome.corrupted + 1;
        stage_rejections = (outcome.stage_rejections + if rejected then 1 else 0);
      }
  end
