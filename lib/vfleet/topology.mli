(** Fleet layout conventions.

    A fleet lives in one run directory: every shard worker binds a
    Unix-domain socket there, the router binds the front socket, and the
    supervisor publishes its view of the world as an atomically-replaced
    JSON state file.  Everything that needs to find a fleet component —
    CLI, tests, bench, chaos harness — goes through these paths, so the
    naming scheme exists in exactly one place. *)

type t = {
  run_dir : string;
  shards : int;  (** worker count; shard ids are [0 .. shards-1] *)
}

val make : run_dir:string -> shards:int -> t
(** Creates [run_dir] (and missing parents) if needed. *)

val worker_addr : t -> int -> Vserve.Server.addr
(** [`Unix "<run_dir>/shard-<i>.sock"]. *)

val router_addr : t -> Vserve.Server.addr
(** [`Unix "<run_dir>/router.sock"] — the socket clients talk to. *)

val state_file : t -> string
(** ["<run_dir>/fleet-state.json"] — the supervisor's published state. *)

val write_state : t -> string -> unit
(** Atomically replace {!state_file} with the given contents (write to a
    temp file in the same directory, then rename) — a reader never sees a
    torn write. *)

val read_state : t -> string option
(** Contents of {!state_file}, or [None] before the first publication. *)
