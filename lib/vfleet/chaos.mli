(** Fleet-level fault injection.

    Seeded chaos for the fleet bench and the robustness tests: a {!plan} is
    a deterministic function of the injected randomness, and {!apply}
    executes one action against a live fleet (pids come from the
    supervisor's state file, passed in by the caller).

    Randomness is {e injected} as closures rather than drawn here — the
    vfuzz Sprng splittable generator drives the bench, but vfleet cannot
    depend on vfuzz (vfuzz's Oracle depends on vfleet), so the harness
    hands the draws across. *)

type draws = {
  draw_int : int -> int;  (** [draw_int n] uniform in [0, n) *)
  draw_float : unit -> float;  (** uniform in [0, 1) *)
}

type action =
  | Kill of int  (** SIGKILL shard [i]'s worker — abrupt crash *)
  | Stall of { shard : int; for_s : float }
      (** SIGSTOP the worker, SIGCONT after [for_s] — unresponsive, not dead *)
  | Corrupt_reload of { key : string }
      (** truncate the model file mid-"write", then attempt a two-phase
          reload (the stage must fail fleet-wide), then restore the bytes *)

val action_to_string : action -> string

val plan : draws:draws -> shards:int -> keys:string list -> events:int -> action list
(** [events] actions over the shard ids [0..shards-1] and model [keys]:
    ~60% kills, ~25% stalls (0.1–0.6 s), ~15% reload corruptions (only when
    [keys] is non-empty; otherwise the slot becomes a kill). *)

type outcome = {
  killed : int;
  stalled : int;
  corrupted : int;
  stage_rejections : int;
      (** corrupt-reload attempts the fleet correctly refused to stage *)
}

val apply :
  pid_of_shard:(int -> int option) ->
  router:Vserve.Client.t ->
  models_dir:string ->
  outcome ->
  action ->
  outcome
(** Execute one action.  [pid_of_shard] reads the supervisor's current view
    (0/None = shard down, the action is skipped).  [Corrupt_reload] drives
    the router's [reload-stage] and counts a rejection when the fleet
    refuses the corrupt generation; the file's original bytes are restored
    afterwards either way. *)
