module P = Vserve.Protocol
module Conn = Vserve.Conn
module Wire = Vserve.Wire
module Client = Vserve.Client
module Registry = Vserve.Registry
module Stats = Vsched.Exploration_stats
module Checker = Vchecker.Checker
module Degradation = Vresilience.Degradation

type options = {
  topology : Topology.t;
  models_dir : string;
  vnodes : int;
  replication : int;
  retries : bool;
  attempt_timeout_s : float;
  max_attempts : int;
  max_pending : int;
  down_budget_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  reconnect_every_s : float;
  allow_shutdown : bool;
  now : unit -> float;
}

let default_options ~topology ~models_dir =
  {
    topology;
    models_dir;
    vnodes = 64;
    replication = 2;
    retries = true;
    attempt_timeout_s = 2.0;
    max_attempts = 3;
    max_pending = 256;
    down_budget_s = 1.0;
    breaker_threshold = 3;
    breaker_cooldown_s = 1.0;
    reconnect_every_s = 0.25;
    allow_shutdown = true;
    now = Unix.gettimeofday;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type shard = {
  s_id : int;
  s_addr : Vserve.Server.addr;
  mutable s_conn : Conn.t option;
  mutable s_consec : int;  (* consecutive charged failures *)
  mutable s_failures : int;  (* total charged failures *)
  mutable s_trips : int;
  mutable s_open_until : float;  (* breaker: 0. = closed *)
  mutable s_down_since : float option;
  s_degrade : Degradation.controller;
}

type pending = {
  pn_rid : int;
  pn_client : Conn.t;
  pn_cid : int option;
  pn_req : P.request;
  pn_key : string;
  mutable pn_shard : int;
  mutable pn_remaining : int list;  (* untried preference candidates *)
  mutable pn_attempts : int;
  mutable pn_deadline : float;
  pn_t0 : float;
}

type state = {
  opts : options;
  ring : Hash_ring.t;
  registry : Registry.t;  (* the router's own copy, for fallback answers *)
  shards : shard array;
  pendings : (int, pending) Hashtbl.t;
  latency : Stats.latency_hist;
  mutable next_rid : int;
  mutable routed : int;
  mutable retries : int;
  mutable failovers : int;
  mutable timeouts : int;
  mutable stale : int;
  mutable fallback_degraded : int;
  mutable shed : int;
  mutable write_failed : int;
  mutable reloads_staged : int;
  mutable reloads_committed : int;
  mutable stage_ok : bool;  (* the last fleet-wide stage round succeeded *)
  mutable stopping : bool;
}

let key_of_request = function
  | P.Check_current { key; _ } | P.Check_update { key; _ } | P.Check_upgrade { key; _ } ->
    Some key
  | P.Health | P.Stats | P.Reload_stage | P.Reload_commit | P.Shutdown -> None

(* ------------------------------------------------------------------ *)
(* Shard connections and failure accounting                            *)
(* ------------------------------------------------------------------ *)

let close_shard_conn sh =
  (match sh.s_conn with Some c -> Conn.close c | None -> ());
  sh.s_conn <- None

let mark_down st sh =
  if sh.s_down_since = None then sh.s_down_since <- Some (st.opts.now ());
  close_shard_conn sh

let mark_success sh =
  sh.s_consec <- 0;
  sh.s_down_since <- None;
  sh.s_open_until <- 0.

(* one charged failure: consecutive count feeds the per-shard breaker *)
let mark_failure st sh =
  sh.s_consec <- sh.s_consec + 1;
  sh.s_failures <- sh.s_failures + 1;
  if sh.s_consec >= st.opts.breaker_threshold && st.opts.now () >= sh.s_open_until then begin
    sh.s_open_until <- st.opts.now () +. st.opts.breaker_cooldown_s;
    sh.s_trips <- sh.s_trips + 1
  end

let downtime st sh =
  match sh.s_down_since with None -> 0. | Some t -> st.opts.now () -. t

let observe_pressure st sh =
  let pressure =
    if st.opts.down_budget_s <= 0. then 1.
    else Float.min 1. (downtime st sh /. st.opts.down_budget_s)
  in
  ignore (Degradation.observe sh.s_degrade ~pressure ~step:st.routed)

let shard_conn _st sh =
  match sh.s_conn with
  | Some c when not (Conn.closed c) -> Some c
  | _ -> begin
    sh.s_conn <- None;
    let sock_addr =
      match sh.s_addr with
      | `Unix path -> Some (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | `Tcp (host, port) -> begin
        match Unix.gethostbyname host with
        | exception Not_found -> None
        | { Unix.h_addr_list = [||]; _ } -> None
        | { Unix.h_addr_list; _ } -> Some (Unix.PF_INET, Unix.ADDR_INET (h_addr_list.(0), port))
      end
    in
    match sock_addr with
    | None -> None
    | Some (pf, sa) -> begin
      let fd = Unix.socket pf Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () ->
        let c = Conn.make fd in
        sh.s_conn <- Some c;
        mark_success sh;
        Some c
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        None
    end
  end

(* candidate shards for a key, best first: the preference-list prefix of
   length [replication], minus shards whose breaker is open (cooldown not
   elapsed) or that have been down past the budget *)
let candidates st key =
  let now = st.opts.now () in
  Hash_ring.preference st.ring key
  |> List.filteri (fun i _ -> i < st.opts.replication)
  |> List.filter (fun id ->
         let sh = st.shards.(id) in
         let breaker_open = now < sh.s_open_until in
         let past_budget = downtime st sh > st.opts.down_budget_s in
         (not breaker_open) && not past_budget)

(* ------------------------------------------------------------------ *)
(* Answering clients                                                   *)
(* ------------------------------------------------------------------ *)

let answer st p resp =
  Hashtbl.remove st.pendings p.pn_rid;
  Conn.write_line p.pn_client (P.encode_response ?id:p.pn_cid resp);
  Stats.observe_latency st.latency ~us:((st.opts.now () -. p.pn_t0) *. 1e6)

(* every candidate failed: answer the conservative widening from the
   router's own registry rather than losing the request.  With [retries]
   off the resilience machinery is disabled wholesale — no re-dispatch
   {e and} no degraded stand-in — so failures surface as errors (the
   honest baseline the chaos bench A/Bs against). *)
let fallback st p =
  (match key_of_request p.pn_req with
  | Some key -> observe_pressure st st.shards.(Hash_ring.owner st.ring key)
  | None -> ());
  match (if st.opts.retries then Registry.find st.registry p.pn_key else None) with
  | Some (e : Registry.entry) ->
    st.fallback_degraded <- st.fallback_degraded + 1;
    let t0 = st.opts.now () in
    let findings = Checker.degraded_findings e.Registry.model in
    answer st p
      (P.Report
         {
           P.findings;
           checked_in_s = st.opts.now () -. t0;
           generation = e.Registry.generation;
           batched = false;
           coalesced = false;
           degraded = true;
         })
  | None ->
    answer st p
      (P.Error_resp
         {
           code = P.Check_failed;
           message = Printf.sprintf "no shard answered for model %s" p.pn_key;
         })

let rec dispatch st p =
  if p.pn_attempts >= st.opts.max_attempts then fallback st p
  else begin
    match p.pn_remaining with
    | [] -> fallback st p
    | id :: rest -> begin
      p.pn_remaining <- rest;
      let sh = st.shards.(id) in
      match shard_conn st sh with
      | None ->
        mark_failure st sh;
        mark_down st sh;
        if st.opts.retries then begin
          (* moving past an unreachable candidate is a failover too *)
          if p.pn_remaining <> [] then st.failovers <- st.failovers + 1;
          dispatch st p
        end
        else fallback st p
      | Some c ->
        p.pn_shard <- id;
        p.pn_attempts <- p.pn_attempts + 1;
        p.pn_deadline <- st.opts.now () +. st.opts.attempt_timeout_s;
        Conn.write_line c (P.encode_request ~id:p.pn_rid p.pn_req);
        if Conn.closed c then begin
          (* the write itself failed: the worker died under us *)
          mark_failure st sh;
          mark_down st sh;
          if st.opts.retries then begin
            if p.pn_remaining <> [] then st.failovers <- st.failovers + 1;
            dispatch st p
          end
          else fallback st p
        end
    end
  end

(* a worker connection died: everything in flight on it fails over *)
let on_worker_dead st sh =
  mark_down st sh;
  let victims =
    Hashtbl.fold (fun _ p acc -> if p.pn_shard = sh.s_id then p :: acc else acc) st.pendings []
  in
  List.iter
    (fun p ->
      mark_failure st sh;
      if st.opts.retries then begin
        st.failovers <- st.failovers + 1;
        st.retries <- st.retries + 1;
        dispatch st p
      end
      else fallback st p)
    victims

let check_timeouts st =
  let now = st.opts.now () in
  let expired =
    Hashtbl.fold (fun _ p acc -> if now >= p.pn_deadline then p :: acc else acc) st.pendings []
  in
  List.iter
    (fun p ->
      st.timeouts <- st.timeouts + 1;
      let sh = st.shards.(p.pn_shard) in
      mark_failure st sh;
      if st.opts.retries then begin
        st.failovers <- st.failovers + 1;
        st.retries <- st.retries + 1;
        dispatch st p
      end
      else fallback st p)
    expired

(* ------------------------------------------------------------------ *)
(* Worker responses                                                    *)
(* ------------------------------------------------------------------ *)

let handle_worker_line st sh line =
  match P.decode_response line with
  | Error _ -> st.stale <- st.stale + 1
  | Ok (rid, resp) -> begin
    match rid with
    | None -> st.stale <- st.stale + 1
    | Some rid -> begin
      match Hashtbl.find_opt st.pendings rid with
      | None ->
        (* already answered by failover or fallback: drop, never forward *)
        st.stale <- st.stale + 1
      | Some p -> begin
        match resp with
        | P.Error_resp { code = P.Overloaded; _ } when st.opts.retries && p.pn_remaining <> []
          ->
          (* the worker shed the request: retryable, but overload is not a
             shard fault — the breaker is not charged *)
          st.retries <- st.retries + 1;
          st.failovers <- st.failovers + 1;
          dispatch st p
        | resp ->
          mark_success sh;
          answer st p resp
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Synchronous worker calls (service verbs only)                       *)
(* ------------------------------------------------------------------ *)

let sync_call _st sh req ~timeout_s =
  match Client.connect sh.s_addr with
  | Error e -> Error e
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Client.call ~timeout_s c req)

let drain_deadline st =
  st.opts.now () +. (st.opts.attempt_timeout_s *. float_of_int (st.opts.max_attempts + 1))

(* wait out the in-flight requests (worker sockets only — client lines queue
   in their kernel buffers), so a reload never mixes generations and a
   stats pull sees a quiesced pending table *)
let drain st =
  let deadline = drain_deadline st in
  while Hashtbl.length st.pendings > 0 && st.opts.now () < deadline do
    let fds =
      Array.to_list st.shards
      |> List.filter_map (fun sh ->
             match sh.s_conn with
             | Some c when not (Conn.closed c) -> Some (Conn.fd c)
             | _ -> None)
    in
    let readable =
      match Unix.select fds [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        Array.iter
          (fun sh ->
            match sh.s_conn with
            | Some c when (not (Conn.closed c)) && Conn.fd c == fd ->
              let lines = Conn.read_lines c in
              if Conn.closed c then on_worker_dead st sh
              else List.iter (handle_worker_line st sh) lines
            | _ -> ())
          st.shards)
      readable;
    check_timeouts st
  done

(* ------------------------------------------------------------------ *)
(* Service verbs                                                       *)
(* ------------------------------------------------------------------ *)

let health_resp st =
  let models =
    List.map
      (fun (e : Registry.entry) ->
        {
          P.mi_key = e.Registry.key;
          mi_generation = e.Registry.generation;
          mi_digest = e.Registry.digest;
        })
      (Registry.entries st.registry)
  in
  P.Health_info { status = (if st.stopping then "stopping" else "ok"); models }

(* the supervisor's published view: pid and restart counts per shard *)
let supervisor_shards st =
  match Topology.read_state st.opts.topology with
  | None -> [||]
  | Some contents -> begin
    match Wire.of_string contents with
    | Error _ -> [||]
    | Ok v -> begin
      match Option.bind (Wire.member "shards" v) Wire.to_list with
      | None -> [||]
      | Some items ->
        let arr = Array.make (Array.length st.shards) None in
        List.iter
          (fun item ->
            match Option.bind (Wire.member "id" item) Wire.to_int with
            | Some id when id >= 0 && id < Array.length arr -> arr.(id) <- Some item
            | _ -> ())
          items;
        arr
    end
  end

let fleet_snapshot st =
  let sup = supervisor_shards st in
  let merged_latency = Stats.latency_hist () in
  Stats.merge_latency ~into:merged_latency st.latency;
  let shards =
    Array.to_list st.shards
    |> List.map (fun sh ->
           let stats_json =
             if downtime st sh > 0. then None
             else
               match sync_call st sh P.Stats ~timeout_s:1.0 with
               | Ok (P.Stats_info v) ->
                 (* fold the worker's latency histogram into the fleet view *)
                 (match Wire.member "latency" v with
                 | Some lat -> begin
                   match
                     ( Option.bind (Wire.member "bucket_counts" lat) Wire.to_list,
                       Option.bind (Wire.member "mean_us" lat) Wire.to_float,
                       Option.bind (Wire.member "max_us" lat) Wire.to_float )
                   with
                   | Some counts, Some mean_us, Some max_us ->
                     Stats.absorb_latency merged_latency
                       ~counts:(List.filter_map Wire.to_int counts)
                       ~mean_us ~max_us
                   | _ -> ()
                 end
                 | None -> ());
                 Some (Wire.to_string v)
               | _ -> None
           in
           let sup_field name conv =
             match sup with
             | [||] -> None
             | arr -> Option.bind arr.(sh.s_id) (fun v -> Option.bind (Wire.member name v) conv)
           in
           let sup_int name = sup_field name Wire.to_int in
           let sup_str name = sup_field name Wire.to_str in
           {
             Stats.fs_id = sh.s_id;
             fs_pid = Option.value ~default:0 (sup_int "pid");
             fs_state =
               (match sup_str "state" with
               | Some ("tripped" as s) | Some ("restarting" as s) -> s
               | _ -> if downtime st sh > 0. then "down" else "up");
             fs_restarts = Option.value ~default:0 (sup_int "restarts");
             fs_breaker_trips = sh.s_trips + Option.value ~default:0 (sup_int "breaker_trips");
             fs_failures = sh.s_failures + Option.value ~default:0 (sup_int "failures");
             fs_stats = stats_json;
           })
  in
  {
    Stats.f_shards = shards;
    f_routed = st.routed;
    f_retries = st.retries;
    f_failovers = st.failovers;
    f_timeouts = st.timeouts;
    f_stale_responses = st.stale;
    f_fallback_degraded = st.fallback_degraded;
    f_shed = st.shed;
    f_write_failed = st.write_failed;
    f_reloads_staged = st.reloads_staged;
    f_reloads_committed = st.reloads_committed;
    f_latency = merged_latency;
  }

let reload_stage st =
  drain st;
  let worker_results =
    Array.to_list st.shards
    |> List.map (fun sh ->
           let name = Printf.sprintf "shard-%d" sh.s_id in
           match sync_call st sh P.Reload_stage ~timeout_s:5.0 with
           | Ok (P.Reload_info { ok = true; _ }) -> (name, Ok ())
           | Ok (P.Reload_info { entries; _ }) ->
             let why =
               match List.find_opt (fun (_, v) -> v <> "") entries with
               | Some (k, v) -> Printf.sprintf "%s: %s" k v
               | None -> "stage failed"
             in
             (name, Error why)
           | Ok _ -> (name, Error "unexpected response to reload-stage")
           | Error e -> (name, Error e))
  in
  let own_results = Registry.stage st.registry in
  let own_ok = Registry.staged st.registry || own_results = [] in
  let ok = own_ok && List.for_all (fun (_, r) -> Result.is_ok r) worker_results in
  st.stage_ok <- ok;
  if ok then st.reloads_staged <- st.reloads_staged + 1;
  let entries =
    List.map
      (fun (name, r) -> (name, match r with Ok () -> "staged" | Error e -> e))
      worker_results
    @ List.map
        (fun (key, r) ->
          ("router:" ^ key, match r with Ok digest -> digest | Error e -> e))
        own_results
  in
  P.Reload_info { phase = "stage"; ok; entries }

let reload_commit st =
  if not st.stage_ok then
    P.Reload_info
      {
        phase = "commit";
        ok = false;
        entries = [ ("", "no successful fleet-wide stage to commit") ];
      }
  else begin
    st.stage_ok <- false;
    drain st;
    let commit_one sh =
      let name = Printf.sprintf "shard-%d" sh.s_id in
      let attempt () =
        match sync_call st sh P.Reload_commit ~timeout_s:5.0 with
        | Ok (P.Reload_info { ok = true; _ }) -> Ok ()
        | Ok (P.Reload_info { entries; _ }) ->
          Error
            (match entries with (_, e) :: _ -> e | [] -> "commit failed")
        | Ok _ -> Error "unexpected response to reload-commit"
        | Error e -> Error e
      in
      match attempt () with
      | Ok () -> (name, Ok ())
      | Error _ -> begin
        (* the worker may have restarted since the stage (losing its staged
           set, but loading the new files at startup anyway): re-stage and
           commit once so a recovered shard rejoins the new generation *)
        match sync_call st sh P.Reload_stage ~timeout_s:5.0 with
        | Ok (P.Reload_info { ok = true; _ }) -> (name, attempt ())
        | Ok _ | Error _ -> (name, attempt ())
      end
    in
    let worker_results = Array.to_list st.shards |> List.map commit_one in
    let own_ok =
      match Registry.commit st.registry with Ok _ -> true | Error _ -> false
    in
    let ok = own_ok && List.for_all (fun (_, r) -> Result.is_ok r) worker_results in
    if ok then st.reloads_committed <- st.reloads_committed + 1;
    let entries =
      List.map
        (fun (name, r) -> (name, match r with Ok () -> "committed" | Error e -> e))
        worker_results
    in
    P.Reload_info { phase = "commit"; ok; entries }
  end

(* ------------------------------------------------------------------ *)
(* Client requests                                                     *)
(* ------------------------------------------------------------------ *)

let handle_client_line st conn line =
  match P.decode_request line with
  | Error msg ->
    Conn.write_line conn
      (P.encode_response (P.Error_resp { code = P.Bad_request; message = msg }))
  | Ok (id, req) -> begin
    match req with
    | P.Health -> Conn.write_line conn (P.encode_response ?id (health_resp st))
    | P.Stats ->
      let json = Stats.fleet_to_json (fleet_snapshot st) in
      let resp =
        match Wire.of_string json with
        | Ok v -> P.Stats_info v
        | Error msg ->
          P.Error_resp { code = P.Check_failed; message = "stats rendering failed: " ^ msg }
      in
      Conn.write_line conn (P.encode_response ?id resp)
    | P.Reload_stage -> Conn.write_line conn (P.encode_response ?id (reload_stage st))
    | P.Reload_commit -> Conn.write_line conn (P.encode_response ?id (reload_commit st))
    | P.Shutdown ->
      if st.opts.allow_shutdown then begin
        st.stopping <- true;
        Conn.write_line conn (P.encode_response ?id P.Bye)
      end
      else
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp { code = P.Bad_request; message = "shutdown is disabled" }))
    | P.Check_current _ | P.Check_update _ | P.Check_upgrade _ ->
      if st.stopping then
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp { code = P.Shutting_down; message = "fleet is shutting down" }))
      else if Hashtbl.length st.pendings >= st.opts.max_pending then begin
        st.shed <- st.shed + 1;
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp
                { code = P.Overloaded; message = "router pending table full — request shed" }))
      end
      else begin
        let key = Option.value ~default:"" (key_of_request req) in
        let rid = st.next_rid in
        st.next_rid <- rid + 1;
        st.routed <- st.routed + 1;
        let p =
          {
            pn_rid = rid;
            pn_client = conn;
            pn_cid = id;
            pn_req = req;
            pn_key = key;
            pn_shard = -1;
            pn_remaining = candidates st key;
            pn_attempts = 0;
            pn_deadline = Float.max_float;
            pn_t0 = st.opts.now ();
          }
        in
        Hashtbl.replace st.pendings rid p;
        dispatch st p
      end
  end

(* ------------------------------------------------------------------ *)
(* The reactor                                                         *)
(* ------------------------------------------------------------------ *)

let bind_socket addr =
  match addr with
  | `Unix path ->
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let run opts =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = Topology.router_addr opts.topology in
  match bind_socket addr with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot bind router: %s" (Unix.error_message err))
  | listen_fd ->
    (* the router's registry only backs the degraded fallback (conservative
       widening, no row decisions), so it never pays the compile tax *)
    let registry = Registry.create ~compile:false ~dir:opts.models_dir () in
    ignore (Registry.refresh registry);
    let shards =
      Array.init opts.topology.Topology.shards (fun i ->
          {
            s_id = i;
            s_addr = Topology.worker_addr opts.topology i;
            s_conn = None;
            s_consec = 0;
            s_failures = 0;
            s_trips = 0;
            s_open_until = 0.;
            s_down_since = None;
            s_degrade = Degradation.controller Degradation.default_policy;
          })
    in
    let st =
      {
        opts;
        ring = Hash_ring.make ~vnodes:opts.vnodes ~shards:opts.topology.Topology.shards ();
        registry;
        shards;
        pendings = Hashtbl.create 64;
        latency = Stats.latency_hist ();
        next_rid = 1;
        routed = 0;
        retries = 0;
        failovers = 0;
        timeouts = 0;
        stale = 0;
        fallback_degraded = 0;
        shed = 0;
        write_failed = 0;
        reloads_staged = 0;
        reloads_committed = 0;
        stage_ok = false;
        stopping = false;
      }
    in
    let on_write_failed () = st.write_failed <- st.write_failed + 1 in
    let clients = ref [] in
    let last_reconnect = ref 0. in
    let rec loop () =
      clients := List.filter (fun c -> not (Conn.closed c)) !clients;
      if st.stopping && Hashtbl.length st.pendings = 0 then ()
      else begin
        (* periodically probe downed shards for recovery (the supervisor
           restarts them; this is how the router notices) *)
        if opts.now () -. !last_reconnect >= opts.reconnect_every_s then begin
          Array.iter
            (fun sh -> if sh.s_down_since <> None then ignore (shard_conn st sh))
            shards;
          last_reconnect := opts.now ()
        end;
        let worker_fds =
          Array.to_list shards
          |> List.filter_map (fun sh ->
                 match sh.s_conn with
                 | Some c when not (Conn.closed c) -> Some (Conn.fd c)
                 | _ -> None)
        in
        let fds =
          (if st.stopping then [] else [ listen_fd ])
          @ List.map (fun c -> Conn.fd c) !clients
          @ worker_fds
        in
        let timeout =
          if Hashtbl.length st.pendings = 0 then 0.2
          else
            Hashtbl.fold (fun _ p acc -> Float.min acc p.pn_deadline) st.pendings
              Float.max_float
            |> fun d -> Float.max 0.005 (Float.min 0.2 (d -. opts.now ()))
        in
        let readable =
          match Unix.select fds [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd == listen_fd then begin
              match Unix.accept listen_fd with
              | client_fd, _ -> clients := Conn.make ~on_write_failed client_fd :: !clients
              | exception Unix.Unix_error _ -> ()
            end
            else begin
              let handled = ref false in
              Array.iter
                (fun sh ->
                  match sh.s_conn with
                  | Some c when (not (Conn.closed c)) && Conn.fd c == fd ->
                    handled := true;
                    let lines = Conn.read_lines c in
                    if Conn.closed c then on_worker_dead st sh
                    else List.iter (handle_worker_line st sh) lines
                  | _ -> ())
                shards;
              if not !handled then
                match List.find_opt (fun c -> Conn.fd c == fd) !clients with
                | None -> ()
                | Some conn -> List.iter (handle_client_line st conn) (Conn.read_lines conn)
            end)
          readable;
        check_timeouts st;
        loop ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter Conn.close !clients;
        Array.iter close_shard_conn shards;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        match addr with
        | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
        | `Tcp _ -> ())
      (fun () ->
        loop ();
        Ok ())
