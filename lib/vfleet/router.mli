(** The fleet front door: a single-threaded [select] proxy that speaks the
    {!Vserve.Protocol} on both sides.

    Clients connect to one socket and see one logical daemon; behind it the
    router consistent-hashes each check's model key onto a preference list
    of shard workers ({!Hash_ring.preference}) and proxies the request:

    - {e dispatch}: the request is re-encoded with a router-assigned id and
      written to the preferred shard's connection; the response is
      re-encoded with the client's id.  The wire encoding is canonical, so
      a proxied answer is byte-identical to what the worker produced (and
      to what an in-process checker would have encoded) — the vfuzz Oracle
      pins this;
    - {e retry / failover}: every dispatch carries a per-attempt deadline.
      A timeout, a dead worker connection, or a worker [overloaded] answer
      re-dispatches the (pure, idempotent) check to the next untried shard
      on the preference list.  Worker overload is retried but {e not}
      charged to the shard's breaker; timeouts and connection failures are;
    - {e breaker}: consecutive charged failures open a per-shard breaker
      for a cooldown; an open shard is skipped at dispatch.  After the
      cooldown one probe dispatch is allowed through (half-open);
    - {e fallback}: when no shard candidate remains — all down, tripped, or
      past the down budget — the router answers from its own model registry
      with the conservative widening ({!Vchecker.Checker.degraded_findings},
      [degraded = true]), so overloaded or dying fleets degrade instead of
      erroring.  A per-shard {!Vresilience.Degradation} controller, fed
      [downtime / down_budget_s] as pressure, records the escalation;
    - {e stale answers}: a late response whose request was already answered
      (by failover or fallback) is dropped and counted, never forwarded;
    - {e two-phase reload}: [reload-stage] drains in-flight requests, then
      fans stage to every shard (and the router's own registry); commit is
      refused unless the last stage round fully succeeded, then drains and
      fans the flip.  No check is dispatched between a shard committing and
      the round completing, so clients never observe answers from two model
      generations;
    - {e service verbs}: [health] answers from the router's registry;
      [stats] pulls each live worker's stats over the wire and merges them
      (with the supervisor's published state file, when present) into one
      {!Vsched.Exploration_stats.fleet} JSON object. *)

type options = {
  topology : Topology.t;
  models_dir : string;
  vnodes : int;  (** ring points per shard (default 64) *)
  replication : int;
      (** preference-list prefix eligible for a key (capped at the shard
          count); 1 = no failover candidates (default 2) *)
  retries : bool;
      (** [false] disables the resilience machinery wholesale — no
          re-dispatch and no degraded fallback, the first failure answers
          the client with an error (the bench A/B hatch for the chaos
          experiment) *)
  attempt_timeout_s : float;  (** per-dispatch deadline (default 2.0) *)
  max_attempts : int;  (** dispatches per request, across shards (default 3) *)
  max_pending : int;  (** router admission bound (default 256) *)
  down_budget_s : float;
      (** downtime after which a shard is skipped at dispatch and the
          degradation controller saturates (default 1.0) *)
  breaker_threshold : int;  (** consecutive failures that open (default 3) *)
  breaker_cooldown_s : float;  (** open duration before half-open (default 1.0) *)
  reconnect_every_s : float;  (** down-shard reconnect probe period (default 0.25) *)
  allow_shutdown : bool;
  now : unit -> float;
}

val default_options : topology:Topology.t -> models_dir:string -> options

val run : options -> (unit, string) result
(** Bind the router socket and serve until a [shutdown] request.  Same
    contract as {!Vserve.Server.run}; runs equally well in a forked process
    (under {!Supervisor}) or in a domain (the Oracle's in-process fleet
    leg).  The router loads [models_dir] once at startup and thereafter
    changes generation only via two-phase reload. *)
