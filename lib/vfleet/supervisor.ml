module Client = Vserve.Client
module P = Vserve.Protocol
module Stats = Vsched.Exploration_stats

type options = {
  topology : Topology.t;
  models_dir : string;
  worker_opts : int -> Vserve.Server.options;
  router_opts : Router.options;
  probe_every_s : float;
  probe_timeout_s : float;
  probe_failures_limit : int;
  backoff_base_s : float;
  backoff_max_s : float;
  crashloop_window_s : float;
  crashloop_limit : int;
  crashloop_cooldown_s : float;
  seed : int;
  spawn_worker : (int -> unit) option;
}

let default_options ~topology ~models_dir =
  let worker_opts i =
    let base =
      Vserve.Server.default_options ~addr:(Topology.worker_addr topology i) ~models_dir
    in
    (* workers change generation only on the router's two-phase command,
       and only the supervisor (by signal) stops them *)
    { base with Vserve.Server.manual_reload = true; allow_shutdown = false }
  in
  {
    topology;
    models_dir;
    worker_opts;
    router_opts = Router.default_options ~topology ~models_dir;
    probe_every_s = 0.5;
    probe_timeout_s = 1.0;
    probe_failures_limit = 3;
    backoff_base_s = 0.05;
    backoff_max_s = 2.0;
    crashloop_window_s = 10.0;
    crashloop_limit = 5;
    crashloop_cooldown_s = 5.0;
    seed = 0x5eed;
    spawn_worker = None;
  }

(* ------------------------------------------------------------------ *)
(* Per-shard supervision state                                         *)
(* ------------------------------------------------------------------ *)

type shard_state = Up | Down | Restarting | Tripped

let state_to_string = function
  | Up -> "up"
  | Down -> "down"
  | Restarting -> "restarting"
  | Tripped -> "tripped"

type shard = {
  sh_id : int;
  mutable sh_pid : int;  (* 0 = not running *)
  mutable sh_state : shard_state;
  mutable sh_restarts : int;
  mutable sh_trips : int;
  mutable sh_failures : int;  (* probe failures, lifetime *)
  mutable sh_probe_failures : int;  (* consecutive *)
  mutable sh_crashes : float list;  (* exit times inside the window, newest first *)
  mutable sh_consec_crashes : int;
  mutable sh_restart_at : float;  (* when Restarting/Tripped may respawn *)
}

(* ------------------------------------------------------------------ *)

let fork_child body =
  match Unix.fork () with
  | 0 -> begin
    (* children die on the supervisor's SIGTERM; nothing of the parent's
       control flow may survive in the child *)
    Sys.set_signal Sys.sigterm Sys.Signal_default;
    (try body () with _ -> Unix._exit 2);
    Unix._exit 0
  end
  | pid -> pid

let spawn_worker opts i =
  fork_child (fun () ->
      match opts.spawn_worker with
      | Some body -> body i
      | None -> begin
        match Vserve.Server.run (opts.worker_opts i) with
        | Ok () -> Unix._exit 0
        | Error _ -> Unix._exit 1
      end)

let spawn_router opts =
  fork_child (fun () ->
      match Router.run opts.router_opts with
      | Ok () -> Unix._exit 0
      | Error _ -> Unix._exit 1)

let publish opts ~router_pid shards =
  let json =
    Printf.sprintf "{\"pid\":%d,\"router_pid\":%d,\"shards\":[%s]}" (Unix.getpid ())
      router_pid
      (String.concat ","
         (Array.to_list shards
         |> List.map (fun sh ->
                Stats.fleet_shard_to_json
                  {
                    Stats.fs_id = sh.sh_id;
                    fs_pid = sh.sh_pid;
                    fs_state = state_to_string sh.sh_state;
                    fs_restarts = sh.sh_restarts;
                    fs_breaker_trips = sh.sh_trips;
                    fs_failures = sh.sh_failures;
                    fs_stats = None;
                  })))
  in
  Topology.write_state opts.topology json

let run opts =
  if Vpar.Pool.spawned_domains () then
    Error "cannot start a fleet after spawning domains (fork is unsound)"
  else begin
    if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let stop = ref false in
    let old_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
    in
    let rng = Random.State.make [| opts.seed; Unix.getpid () |] in
    let shards =
      Array.init opts.topology.Topology.shards (fun i ->
          {
            sh_id = i;
            sh_pid = 0;
            sh_state = Down;
            sh_restarts = 0;
            sh_trips = 0;
            sh_failures = 0;
            sh_probe_failures = 0;
            sh_crashes = [];
            sh_consec_crashes = 0;
            sh_restart_at = 0.;
          })
    in
    Array.iter
      (fun sh ->
        sh.sh_pid <- spawn_worker opts sh.sh_id;
        sh.sh_state <- Up)
      shards;
    let router_pid = ref (spawn_router opts) in
    let router_exited = ref false in
    publish opts ~router_pid:!router_pid shards;
    let last_published = ref "" in
    let maybe_publish () =
      (* cheap change detection: republish only when the rendering moved *)
      let now_render =
        String.concat ";"
          (Array.to_list shards
          |> List.map (fun sh ->
                 Printf.sprintf "%d:%d:%s:%d:%d:%d" sh.sh_id sh.sh_pid
                   (state_to_string sh.sh_state) sh.sh_restarts sh.sh_trips sh.sh_failures))
      in
      if now_render <> !last_published then begin
        last_published := now_render;
        publish opts ~router_pid:!router_pid shards
      end
    in
    let shard_of_pid pid = Array.find_opt (fun sh -> sh.sh_pid = pid) shards in
    let on_worker_exit now sh =
      sh.sh_pid <- 0;
      sh.sh_probe_failures <- 0;
      sh.sh_crashes <-
        now :: List.filter (fun t -> now -. t <= opts.crashloop_window_s) sh.sh_crashes;
      sh.sh_consec_crashes <- sh.sh_consec_crashes + 1;
      if List.length sh.sh_crashes > opts.crashloop_limit then begin
        (* crash loop: stop burning restarts, wait out the cooldown, then
           allow one half-open attempt *)
        sh.sh_state <- Tripped;
        sh.sh_trips <- sh.sh_trips + 1;
        sh.sh_crashes <- [];
        sh.sh_restart_at <- now +. opts.crashloop_cooldown_s
      end
      else begin
        sh.sh_state <- Restarting;
        let delay =
          Float.min opts.backoff_max_s
            (opts.backoff_base_s *. (2. ** float_of_int (sh.sh_consec_crashes - 1)))
        in
        let jittered = delay *. (0.5 +. Random.State.float rng 1.0) in
        sh.sh_restart_at <- now +. jittered
      end
    in
    let last_probe = ref 0. in
    while not !stop do
      let now = Unix.gettimeofday () in
      (* reap exits *)
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | 0, _ -> ()
        | pid, _ when pid = !router_pid ->
          router_exited := true;
          reap ()
        | pid, _ -> begin
          (match shard_of_pid pid with Some sh -> on_worker_exit now sh | None -> ());
          reap ()
        end
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      in
      reap ();
      if !router_exited then stop := true
      else begin
        (* scheduled restarts (backoff elapsed / breaker half-open) *)
        Array.iter
          (fun sh ->
            match sh.sh_state with
            | (Restarting | Tripped) when now >= sh.sh_restart_at ->
              sh.sh_pid <- spawn_worker opts sh.sh_id;
              sh.sh_restarts <- sh.sh_restarts + 1;
              sh.sh_state <- Up
            | _ -> ())
          shards;
        (* health probes: a live but unresponsive worker gets SIGKILL and
           re-enters through the normal exit path *)
        if now -. !last_probe >= opts.probe_every_s then begin
          last_probe := now;
          Array.iter
            (fun sh ->
              if sh.sh_state = Up && sh.sh_pid <> 0 then begin
                let healthy =
                  match Client.connect (Topology.worker_addr opts.topology sh.sh_id) with
                  | Error _ -> false
                  | Ok c ->
                    Fun.protect
                      ~finally:(fun () -> Client.close c)
                      (fun () ->
                        match Client.call ~timeout_s:opts.probe_timeout_s c P.Health with
                        | Ok (P.Health_info _) -> true
                        | Ok _ | Error _ -> false)
                in
                if healthy then begin
                  sh.sh_probe_failures <- 0;
                  (* a stable run forgives crash history *)
                  if
                    sh.sh_crashes = []
                    || now -. List.hd sh.sh_crashes > opts.crashloop_window_s
                  then sh.sh_consec_crashes <- 0
                end
                else begin
                  sh.sh_probe_failures <- sh.sh_probe_failures + 1;
                  sh.sh_failures <- sh.sh_failures + 1;
                  if sh.sh_probe_failures >= opts.probe_failures_limit then begin
                    (try Unix.kill sh.sh_pid Sys.sigkill with Unix.Unix_error _ -> ());
                    sh.sh_probe_failures <- 0
                  end
                end
              end)
            shards
        end;
        maybe_publish ();
        Unix.sleepf 0.05
      end
    done;
    (* graceful stop: terminate the children, reap everything *)
    let kill pid signal = if pid > 0 then try Unix.kill pid signal with Unix.Unix_error _ -> () in
    if not !router_exited then kill !router_pid Sys.sigterm;
    Array.iter (fun sh -> kill sh.sh_pid Sys.sigterm) shards;
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec reap_all () =
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | 0, _ ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.02;
          reap_all ()
        end
        else begin
          if not !router_exited then kill !router_pid Sys.sigkill;
          Array.iter (fun sh -> kill sh.sh_pid Sys.sigkill) shards;
          let rec hard () =
            match Unix.waitpid [] (-1) with
            | _ -> hard ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> hard ()
          in
          hard ()
        end
      | _ -> reap_all ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap_all ()
    in
    reap_all ();
    Array.iter (fun sh -> sh.sh_pid <- 0; sh.sh_state <- Down) shards;
    publish opts ~router_pid:0 shards;
    Sys.set_signal Sys.sigterm old_term;
    Ok ()
  end
