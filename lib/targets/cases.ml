type known_case = {
  id : string;
  system : string;
  param : string;
  data_type : string;
  description : string;
  poor_setting : (string * string) list;
  good_setting : (string * string) list;
  trigger_workload : string;
  expect_detected : bool;
  tweak : Violet.Pipeline.options -> Violet.Pipeline.options;
}

type unknown_case = {
  u_system : string;
  u_param : string;
  u_impact : string;
  u_poor : (string * string) list;
  u_good : (string * string) list;
  u_workload : string;
}

let no_tweak o = o

let known =
  [
    {
      id = "c1";
      system = "mysql";
      param = "autocommit";
      data_type = "Boolean";
      description = "Determine whether all changes take effect immediately";
      poor_setting = [ "autocommit", "ON"; "innodb_flush_log_at_trx_commit", "1" ];
      good_setting = [ "autocommit", "OFF"; "innodb_flush_log_at_trx_commit", "1" ];
      trigger_workload = "oltp_insert";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c2";
      system = "mysql";
      param = "query_cache_wlock_invalidate";
      data_type = "Boolean";
      description = "Disable the query cache when after WRITE lock statement";
      poor_setting = [ "query_cache_wlock_invalidate", "ON"; "query_cache_type", "ON" ];
      good_setting = [ "query_cache_wlock_invalidate", "OFF"; "query_cache_type", "ON" ];
      trigger_workload = "myisam_concurrent";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c3";
      system = "mysql";
      param = "general_log";
      data_type = "Boolean";
      description = "Enable MySQL general log query";
      poor_setting = [ "general_log", "ON" ];
      good_setting = [ "general_log", "OFF" ];
      trigger_workload = "oltp_read_write";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c4";
      system = "mysql";
      param = "query_cache_type";
      data_type = "Enumeration";
      description = "Method used for controlling the query cache type";
      poor_setting = [ "query_cache_type", "ON" ];
      good_setting = [ "query_cache_type", "OFF" ];
      trigger_workload = "oltp_read_only";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c5";
      system = "mysql";
      param = "sync_binlog";
      data_type = "Integer";
      description = "Controls how often the MySQL server synchronizes binary log to disk";
      poor_setting = [ "sync_binlog", "1" ];
      good_setting = [ "sync_binlog", "0" ];
      trigger_workload = "oltp_write_only";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c6";
      system = "mysql";
      param = "innodb_log_buffer_size";
      data_type = "Integer";
      description = "Set the size of the buffer for transactions that have not been committed yet";
      poor_setting = [ "innodb_log_buffer_size", "262144" ];
      good_setting = [ "innodb_log_buffer_size", "33554432" ];
      trigger_workload = "bulk_insert";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c7";
      system = "postgres";
      param = "wal_sync_method";
      data_type = "Enumeration";
      description = "Method used for forcing WAL updates out to disk";
      poor_setting = [ "wal_sync_method", "open_sync" ];
      good_setting = [ "wal_sync_method", "fdatasync" ];
      trigger_workload = "pgbench_write_heavy";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c8";
      system = "postgres";
      param = "archive_mode";
      data_type = "Enumeration";
      description =
        "Force the server to switch to a new WAL periodically and archive old WAL segments";
      poor_setting = [ "archive_mode", "on"; "archive_timeout", "30" ];
      good_setting = [ "archive_mode", "off" ];
      trigger_workload = "pgbench_write_heavy";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c9";
      system = "postgres";
      param = "max_wal_size";
      data_type = "Integer";
      description = "Maximum number of log file segments between automatic WAL checkpoints";
      poor_setting = [ "max_wal_size", "2" ];
      good_setting = [ "max_wal_size", "1024" ];
      trigger_workload = "pgbench_write_heavy";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c10";
      system = "postgres";
      param = "checkpoint_completion_target";
      data_type = "Float";
      description = "Set a fraction of total time between checkpoints interval";
      poor_setting = [ "checkpoint_completion_target", "0.1"; "max_wal_size", "2" ];
      good_setting = [ "checkpoint_completion_target", "0.9"; "max_wal_size", "2" ];
      trigger_workload = "pgbench_write_heavy";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c11";
      system = "postgres";
      param = "bgwriter_lru_multiplier";
      data_type = "Float";
      description = "Set estimate of the number of buffers for the next background writing";
      poor_setting = [ "bgwriter_lru_multiplier", "0.5" ];
      good_setting = [ "bgwriter_lru_multiplier", "2" ];
      trigger_workload = "pgbench_write_heavy";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c12";
      system = "apache";
      param = "HostnameLookups";
      data_type = "Enumeration";
      description = "Enables DNS lookups to log the host names of clients sending requests";
      poor_setting = [ "HostnameLookups", "Double" ];
      good_setting = [ "HostnameLookups", "Off" ];
      trigger_workload = "ab_static";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c13";
      system = "apache";
      param = "DenyFrom";
      data_type = "Enum/String";
      description =
        "Restrict access to the server based on hostname, IP address, or env variables";
      poor_setting = [ "DenyFrom", "domain" ];
      good_setting = [ "DenyFrom", "none" ];
      trigger_workload = "ab_static";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c14";
      system = "apache";
      param = "MaxKeepAliveRequests";
      data_type = "Integer";
      description = "Limits the number of requests allowed per connection";
      poor_setting = [ "MaxKeepAliveRequests", "2" ];
      good_setting = [ "MaxKeepAliveRequests", "100" ];
      trigger_workload = "ab_static";
      (* missed by the paper's Violet: the default workload template has no
         keep-alive parameter, so the triggering input class is unreachable *)
      expect_detected = false;
      tweak = (fun o -> { o with Violet.Pipeline.workload_template = Some "http" });
    };
    {
      id = "c15";
      system = "apache";
      param = "KeepAliveTimeout";
      data_type = "Integer";
      description =
        "Seconds Apache will wait for a subsequent request before closing the connection";
      poor_setting = [ "KeepAliveTimeout", "120" ];
      good_setting = [ "KeepAliveTimeout", "5" ];
      trigger_workload = "ab_static";
      expect_detected = false;
      tweak = (fun o -> { o with Violet.Pipeline.workload_template = Some "http" });
    };
    {
      id = "c16";
      system = "squid";
      param = "cache";
      data_type = "String";
      description = "Requests denied by this directive will not be stored in the cache";
      poor_setting = [ "cache", "deny_all" ];
      good_setting = [ "cache", "allow_all" ];
      trigger_workload = "web_polygraph_hot";
      expect_detected = true;
      tweak = no_tweak;
    };
    {
      id = "c17";
      system = "squid";
      param = "buffered_logs";
      data_type = "Integer";
      description =
        "Whether to write access_log records ASAP or accumulate them in larger chunks";
      poor_setting = [ "buffered_logs", "0" ];
      good_setting = [ "buffered_logs", "1" ];
      trigger_workload = "web_polygraph_hot";
      expect_detected = true;
      (* the paper explored only 3 states for c17: no related params, one
         boolean-like parameter; restrict the symbolic workload accordingly *)
      tweak =
        (fun o ->
          { o with Violet.Pipeline.sym_workload_params = [ "object_cached" ] });
    };
  ]

let unknown =
  [
    {
      u_system = "postgres";
      u_param = "vacuum_cost_delay";
      u_impact = "Default value 20 ms is significantly worse than low values for write workload.";
      u_poor = [ "vacuum_cost_delay", "20" ];
      u_good = [ "vacuum_cost_delay", "0" ];
      u_workload = "pgbench_maintenance";
    };
    {
      u_system = "postgres";
      u_param = "archive_timeout";
      u_impact = "Small values cause performance penalties.";
      u_poor = [ "archive_mode", "on"; "archive_timeout", "30" ];
      u_good = [ "archive_mode", "on"; "archive_timeout", "3600" ];
      u_workload = "pgbench_write_heavy";
    };
    {
      u_system = "postgres";
      u_param = "random_page_cost";
      u_impact = "Values larger than 1.2 (default 4.0) cause bad perf on SSD for join queries.";
      u_poor = [ "random_page_cost", "4" ];
      u_good = [ "random_page_cost", "1.1" ];
      u_workload = "pgbench_join";
    };
    {
      u_system = "postgres";
      u_param = "log_statement";
      u_impact =
        "Setting mod causes bad perf. for write workload when synchronous_commit is off.";
      u_poor = [ "log_statement", "mod"; "synchronous_commit", "off" ];
      u_good = [ "log_statement", "none"; "synchronous_commit", "off" ];
      u_workload = "pgbench_write_heavy";
    };
    {
      u_system = "postgres";
      u_param = "parallel_leader_participation";
      u_impact =
        "Enabling it can cause select join query to be slow if random_page_cost is high.";
      u_poor = [ "parallel_leader_participation", "ON"; "random_page_cost", "4" ];
      u_good = [ "parallel_leader_participation", "OFF"; "random_page_cost", "4" ];
      u_workload = "pgbench_join";
    };
    {
      u_system = "mysql";
      u_param = "optimizer_search_depth";
      u_impact = "Default value would cause bad performance for join queries";
      u_poor = [ "optimizer_search_depth", "62" ];
      u_good = [ "optimizer_search_depth", "4" ];
      u_workload = "oltp_read_only";
    };
    {
      u_system = "mysql";
      u_param = "concurrent_insert";
      u_impact = "Enable concurrent_insert would cause bad performance for read workload";
      u_poor = [ "concurrent_insert", "ALWAYS" ];
      u_good = [ "concurrent_insert", "NEVER" ];
      u_workload = "myisam_concurrent";
    };
    {
      u_system = "squid";
      u_param = "ipcache_size";
      u_impact = "The default value is relatively small and may cause performance reduction";
      u_poor = [ "ipcache_size", "64" ];
      u_good = [ "ipcache_size", "16384" ];
      u_workload = "web_polygraph_cold";
    };
    {
      u_system = "squid";
      u_param = "cache_log";
      u_impact = "Enable cache_log with higher debug_option would cause extra I/O";
      u_poor = [ "cache_log", "ON"; "debug_options", "7" ];
      u_good = [ "cache_log", "ON"; "debug_options", "1" ];
      u_workload = "web_polygraph_hot";
    };
  ]

let systems = [ "mysql"; "postgres"; "apache"; "squid" ]

let find_target = function
  | "mysql" -> Some Mysql_model.target
  | "postgres" -> Some Postgres_model.target
  | "apache" -> Some Apache_model.target
  | "squid" -> Some Squid_model.target
  | _ -> None

let target_of s =
  match find_target s with
  | Some t -> t
  | None -> failwith ("Cases.target_of: unknown system " ^ s)

let standard_workloads_of = function
  | "mysql" -> Mysql_model.standard_workloads
  | "postgres" -> Postgres_model.standard_workloads
  | "apache" -> Apache_model.standard_workloads
  | "squid" -> Squid_model.standard_workloads
  | s -> failwith ("Cases.standard_workloads_of: unknown system " ^ s)

let validation_workloads_of = function
  | "mysql" -> Mysql_model.validation_workloads
  | "postgres" -> Postgres_model.validation_workloads
  | "apache" -> Apache_model.validation_workloads
  | "squid" -> Squid_model.validation_workloads
  | s -> failwith ("Cases.validation_workloads_of: unknown system " ^ s)

let workload_mix_of system name =
  match
    List.assoc_opt name (standard_workloads_of system @ validation_workloads_of system)
  with
  | Some mix -> mix
  | None -> failwith (Printf.sprintf "Cases.workload_mix_of: %s has no workload %s" system name)

let query_entry_of = function
  | "mysql" -> Mysql_model.query_entry
  | "postgres" -> Postgres_model.query_entry
  | "apache" -> Apache_model.query_entry
  | "squid" -> Squid_model.query_entry
  | s -> failwith ("Cases.query_entry_of: unknown system " ^ s)

let find_known id =
  match List.find_opt (fun c -> String.equal c.id id) known with
  | Some c -> c
  | None -> failwith ("Cases.find_known: unknown case " ^ id)

let all_targets =
  [ Mysql_model.target; Postgres_model.target; Apache_model.target; Squid_model.target ]
