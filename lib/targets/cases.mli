(** The real-world specious-configuration case registry.

    {!known} lists the 17 known cases of paper Table 3, each with the
    concrete poor/good settings, the workload that exposes the issue, and
    whether the paper's Violet detected it (c14 and c15 were missed).
    {!unknown} lists the 9 previously-unknown specious parameters of
    Table 5.  The benchmark harness and the integration tests iterate over
    these registries. *)

type known_case = {
  id : string;  (** "c1" ... "c17" *)
  system : string;
  param : string;
  data_type : string;  (** Table 3's Data Type column *)
  description : string;
  poor_setting : (string * string) list;
      (** target + related parameters set to expose the issue *)
  good_setting : (string * string) list;
  trigger_workload : string;  (** name in the target's standard workloads *)
  expect_detected : bool;  (** paper Table 4's Detect column *)
  tweak : Violet.Pipeline.options -> Violet.Pipeline.options;
      (** per-case analysis options (e.g. the workload template to use) *)
}

type unknown_case = {
  u_system : string;
  u_param : string;
  u_impact : string;  (** Table 5's Performance Impact column *)
  u_poor : (string * string) list;
  u_good : (string * string) list;
  u_workload : string;
}

val known : known_case list
val unknown : unknown_case list

val systems : string list
(** The bundled system names: mysql, postgres, apache, squid. *)

val find_target : string -> Violet.Pipeline.target option
(** Target bundle by system name; [None] for unknown systems — the
    crash-free lookup command-line tools should use. *)

val target_of : string -> Violet.Pipeline.target
(** Like {!find_target} but raises [Failure] — for callers with a
    statically known system name. *)

val standard_workloads_of :
  string -> (string * (Vruntime.Workload.instance * float) list) list

val validation_workloads_of :
  string -> (string * (Vruntime.Workload.instance * float) list) list

val workload_mix_of : string -> string -> (Vruntime.Workload.instance * float) list
(** Workload mix by system and name, searching standard then validation
    mixes; raises [Failure] when absent. *)

val query_entry_of : string -> string
(** Per-operation entry function of the system's program. *)

val find_known : string -> known_case
(** Lookup by case id; raises [Failure] for unknown ids. *)

val all_targets : Violet.Pipeline.target list
