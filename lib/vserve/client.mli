(** Blocking client for the vserve daemon (and the vfleet router, which
    speaks the same protocol).

    One connection, sequential request/response: {!call} assigns a request
    id, writes the line, and reads lines until the response carrying that id
    (or an id-less response, for servers answering without echo) arrives.
    {!post}/{!await} split the two halves so a caller can put several
    requests in flight across connections before collecting any answers —
    what the fleet crash-recovery tests use to have requests genuinely
    in-flight when a worker is killed.  Concurrency otherwise comes from
    many connections, not from pipelining one. *)

type t

val addr_of_string : string -> (Server.addr, string) result
(** ["unix:/path"], ["tcp:HOST:PORT"], or a bare path (taken as a
    Unix-domain socket). *)

val addr_to_string : Server.addr -> string

val connect : Server.addr -> (t, string) result
(** [Error] on resolution failure (including a host that resolves to an
    empty address list) or connection refusal — never an exception. *)

val connect_retry :
  ?deadline_s:float ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  Server.addr ->
  (t, string) result
(** Retry {!connect} with exponential backoff and jitter until it succeeds
    or [deadline_s] (default 5 s) of wall clock has elapsed.  Delays start
    at [base_delay_s] (default 0.02 s), double per attempt, and are capped
    at [max_delay_s] (default 0.5 s); each is multiplied by a random factor
    in [0.5, 1.5) so restarting clients spread out.  The failure message
    reports the attempt count and the last underlying error. *)

val close : t -> unit

val call : ?timeout_s:float -> t -> Protocol.request -> (Protocol.response, string) result
(** [Error] on I/O failure, EOF, or an undecodable response line.
    [timeout_s] bounds each wait for response bytes, so a hung daemon
    cannot block the caller forever; omitted = wait indefinitely. *)

val post : t -> Protocol.request -> (int, string) result
(** Send one request without waiting; returns the request id for {!await}. *)

val await : ?timeout_s:float -> t -> int -> (Protocol.response, string) result
(** Read until the response carrying the given id (or an id-less response)
    arrives. *)

val call_raw : t -> string -> (string, string) result
(** Send one raw line, return the next raw response line — the byte-level
    hatch the wire tests use. *)
