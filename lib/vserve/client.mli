(** Blocking client for the vserve daemon.

    One connection, sequential request/response: {!call} assigns a request
    id, writes the line, and reads lines until the response carrying that id
    (or an id-less response, for servers answering without echo) arrives.
    That is all the CLI, the tests and the bench drivers need; concurrency
    comes from many connections, not from pipelining one. *)

type t

val addr_of_string : string -> (Server.addr, string) result
(** ["unix:/path"], ["tcp:HOST:PORT"], or a bare path (taken as a
    Unix-domain socket). *)

val addr_to_string : Server.addr -> string

val connect : Server.addr -> (t, string) result

val connect_retry : ?attempts:int -> ?delay_s:float -> Server.addr -> (t, string) result
(** Retry [connect] while the daemon is still binding (default 50 attempts,
    0.1 s apart) — the smoke tests' start-up race absorber. *)

val close : t -> unit

val call : t -> Protocol.request -> (Protocol.response, string) result
(** [Error] on I/O failure, EOF, or an undecodable response line. *)

val call_raw : t -> string -> (string, string) result
(** Send one raw line, return the next raw response line — the byte-level
    hatch the wire tests use. *)
