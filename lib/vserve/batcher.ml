type stats = { groups : int; batched_requests : int; coalesced : int }

let run ~jobs ~group_of ~dedup_of ~exec reqs =
  let n = Array.length reqs in
  if n = 0 then ([||], { groups = 0; batched_requests = 0; coalesced = 0 })
  else begin
    (* group sizes, and one representative index per (group, dedup) pair *)
    let group_size = Hashtbl.create 8 in
    let rep_of_pair = Hashtbl.create 8 in
    let rep = Array.make n 0 in
    let group = Array.make n "" in
    for i = 0 to n - 1 do
      let g = group_of reqs.(i) in
      group.(i) <- g;
      Hashtbl.replace group_size g
        (1 + Option.value ~default:0 (Hashtbl.find_opt group_size g));
      let pair = (g, dedup_of reqs.(i)) in
      match Hashtbl.find_opt rep_of_pair pair with
      | Some r -> rep.(i) <- r
      | None ->
        Hashtbl.add rep_of_pair pair i;
        rep.(i) <- i
    done;
    (* execute each representative once, concurrently, order-preserved *)
    let rep_indices =
      Array.of_list (List.filter (fun i -> rep.(i) = i) (List.init n Fun.id))
    in
    let rep_results = Vpar.Pool.map_array ~jobs (fun i -> exec reqs.(i)) rep_indices in
    let result_of = Hashtbl.create 8 in
    Array.iteri (fun k i -> Hashtbl.replace result_of i rep_results.(k)) rep_indices;
    let coalesced = ref 0 in
    let batched_requests = ref 0 in
    let out =
      Array.init n (fun i ->
          let batched = Hashtbl.find group_size group.(i) > 1 in
          let coal = rep.(i) <> i in
          if batched then incr batched_requests;
          if coal then incr coalesced;
          (Hashtbl.find result_of rep.(i), batched, coal))
    in
    ( out,
      {
        groups = Hashtbl.length group_size;
        batched_requests = !batched_requests;
        coalesced = !coalesced;
      } )
  end
