(** Minimal JSON for the newline-delimited wire protocol.

    The serving layer speaks one JSON value per line.  No external JSON
    dependency exists in this repo (telemetry only ever {e wrote} JSON), so
    the codec lives here: a full value type, a recursive-descent parser and a
    canonical printer.

    Canonical output is what makes the protocol testable byte-for-byte:
    objects print their fields in construction order, strings escape exactly
    the characters JSON requires (control characters, double quote and
    backslash) and pass
    every other byte through untouched (so UTF-8 — and any non-ASCII
    configuration value — survives a round-trip verbatim), and floats print
    with enough digits to re-read to the same value, always with a ['.'] or
    exponent so they re-parse as [Float], never as [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order is preserved and printed *)

val to_string : t -> string
(** Canonical single-line rendering: [to_string (parse (to_string v)) =
    to_string v].  Non-finite floats (never produced by the protocol) render
    as [null]. *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed).  Accepts
    standard JSON, including [\uXXXX] escapes (decoded to UTF-8, with
    surrogate pairs); numbers containing ['.'], ['e'] or ['E'] parse as
    [Float], all others as [Int]. *)

(** {1 Accessors} — shape helpers for decoding, all total *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields and non-objects. *)

val to_str : t -> string option
val to_int : t -> int option
val to_float : t -> float option
(** [Int] values convert too — JSON writers are free to print [1] for [1.]. *)

val to_bool : t -> bool option
val to_list : t -> t list option
