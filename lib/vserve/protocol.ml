module W = Wire
module Row = Vmodel.Cost_row
module Checker = Vchecker.Checker
module TC = Vchecker.Test_case

type request =
  | Check_current of { key : string; config : string }
  | Check_update of { key : string; old_config : string; new_config : string }
  | Check_upgrade of {
      key : string;
      workloads : ((string * int) list * (string * int) list) option;
    }
  | Health
  | Stats
  | Reload_stage
  | Reload_commit
  | Shutdown

type outcome = {
  findings : Checker.finding list;
  checked_in_s : float;
  generation : int;
  batched : bool;
  coalesced : bool;
  degraded : bool;
}

type model_info = { mi_key : string; mi_generation : int; mi_digest : string }

type error_code =
  | Overloaded
  | Bad_request
  | Unknown_model
  | Check_failed
  | Shutting_down

type response =
  | Report of outcome
  | Health_info of { status : string; models : model_info list }
  | Stats_info of W.t
  | Reload_info of { phase : string; ok : bool; entries : (string * string) list }
      (** two-phase hot reload: [phase] is ["stage"] or ["commit"]; [entries]
          pairs each key with its staged digest / committed generation, or
          with the rejection reason when [ok] is false *)
  | Error_resp of { code : error_code; message : string }
  | Bye

let ( let* ) = Result.bind

let verb_of_request = function
  | Check_current _ -> "check-current"
  | Check_update _ -> "check-update"
  | Check_upgrade _ -> "check-upgrade"
  | Health -> "health"
  | Stats -> "stats"
  | Reload_stage -> "reload-stage"
  | Reload_commit -> "reload-commit"
  | Shutdown -> "shutdown"

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Bad_request -> "bad-request"
  | Unknown_model -> "unknown-model"
  | Check_failed -> "check-failed"
  | Shutting_down -> "shutting-down"

let error_code_of_string = function
  | "overloaded" -> Some Overloaded
  | "bad-request" -> Some Bad_request
  | "unknown-model" -> Some Unknown_model
  | "check-failed" -> Some Check_failed
  | "shutting-down" -> Some Shutting_down
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Field helpers                                                       *)
(* ------------------------------------------------------------------ *)

let field name conv v what =
  match Option.bind (W.member name v) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "%s: missing or ill-typed field %S" what name)

let str_field name v what = field name W.to_str v what
let int_field name v what = field name W.to_int v what
let float_field name v what = field name W.to_float v what
let bool_field name v what = field name W.to_bool v what
let list_field name v what = field name W.to_list v what

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Workload assignments: {"name":value,...}, order preserved            *)
(* ------------------------------------------------------------------ *)

let assignment_to_wire kvs = W.Obj (List.map (fun (k, v) -> (k, W.Int v)) kvs)

let assignment_of_wire v =
  match v with
  | W.Obj fields ->
    map_result
      (fun (k, v) ->
        match W.to_int v with
        | Some i -> Ok (k, i)
        | None -> Error (Printf.sprintf "workload value of %S is not an integer" k))
      fields
  | _ -> Error "workload assignment is not an object"

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

let expr_to_wire e = W.String (Vsmt.Sexp.to_string (Vsmt.Serial.expr_to_sexp e))

let expr_of_wire v =
  match W.to_str v with
  | None -> Error "constraint is not a string"
  | Some s ->
    let* sexp = Vsmt.Sexp.of_string s in
    Vsmt.Serial.expr_of_sexp sexp

let strings_to_wire ss = W.List (List.map (fun s -> W.String s) ss)

let strings_of_wire what v =
  match W.to_list v with
  | None -> Error (what ^ ": expected a list of strings")
  | Some vs ->
    map_result
      (fun v ->
        match W.to_str v with
        | Some s -> Ok s
        | None -> Error (what ^ ": expected a string"))
      vs

let cost_to_wire (c : Vruntime.Cost.t) =
  W.Obj
    [
      ("latency_us", W.Float c.Vruntime.Cost.latency_us);
      ("instructions", W.Int c.Vruntime.Cost.instructions);
      ("syscalls", W.Int c.Vruntime.Cost.syscalls);
      ("io_calls", W.Int c.Vruntime.Cost.io_calls);
      ("io_bytes", W.Int c.Vruntime.Cost.io_bytes);
      ("sync_ops", W.Int c.Vruntime.Cost.sync_ops);
      ("net_ops", W.Int c.Vruntime.Cost.net_ops);
      ("allocations", W.Int c.Vruntime.Cost.allocations);
      ("cache_ops", W.Int c.Vruntime.Cost.cache_ops);
    ]

let cost_of_wire v =
  let* latency_us = float_field "latency_us" v "cost" in
  let* instructions = int_field "instructions" v "cost" in
  let* syscalls = int_field "syscalls" v "cost" in
  let* io_calls = int_field "io_calls" v "cost" in
  let* io_bytes = int_field "io_bytes" v "cost" in
  let* sync_ops = int_field "sync_ops" v "cost" in
  let* net_ops = int_field "net_ops" v "cost" in
  let* allocations = int_field "allocations" v "cost" in
  let* cache_ops = int_field "cache_ops" v "cost" in
  Ok
    {
      Vruntime.Cost.latency_us;
      instructions;
      syscalls;
      io_calls;
      io_bytes;
      sync_ops;
      net_ops;
      allocations;
      cache_ops;
    }

(* call-tree [nodes] are not serialized, exactly as impact-model persistence
   drops them; they decode back as [] *)
let row_to_wire (r : Row.t) =
  W.Obj
    [
      ("state_id", W.Int r.Row.state_id);
      ("config", W.List (List.map expr_to_wire r.Row.config_constraints));
      ("workload", W.List (List.map expr_to_wire r.Row.workload_pred));
      ("cost", cost_to_wire r.Row.cost);
      ("traced_latency_us", W.Float r.Row.traced_latency_us);
      ("chain", strings_to_wire r.Row.chain);
      ("critical_ops", strings_to_wire r.Row.critical_ops);
    ]

let row_of_wire v =
  let* state_id = int_field "state_id" v "row" in
  let* config = list_field "config" v "row" in
  let* config_constraints = map_result expr_of_wire config in
  let* workload = list_field "workload" v "row" in
  let* workload_pred = map_result expr_of_wire workload in
  let* cost_v = field "cost" Option.some v "row" in
  let* cost = cost_of_wire cost_v in
  let* traced_latency_us = float_field "traced_latency_us" v "row" in
  let* chain_v = field "chain" Option.some v "row" in
  let* chain = strings_of_wire "chain" chain_v in
  let* ops_v = field "critical_ops" Option.some v "row" in
  let* critical_ops = strings_of_wire "critical_ops" ops_v in
  Ok
    {
      Row.state_id;
      config_constraints;
      workload_pred;
      cost;
      traced_latency_us;
      chain;
      nodes = [];
      critical_ops;
    }

let test_case_to_wire (tc : TC.t) =
  W.Obj
    [
      ("workload", assignment_to_wire tc.TC.workload);
      ("description", W.String tc.TC.description);
    ]

let test_case_of_wire v =
  let* wl = field "workload" Option.some v "test_case" in
  let* workload = assignment_of_wire wl in
  let* description = str_field "description" v "test_case" in
  Ok { TC.workload; description }

let opt_to_wire f = function None -> W.Null | Some x -> f x

let opt_of_wire f = function
  | W.Null -> Ok None
  | v ->
    let* x = f v in
    Ok (Some x)

let finding_to_wire (f : Checker.finding) =
  W.Obj
    [
      ("param", W.String f.Checker.param);
      ("message", W.String f.Checker.message);
      ("slow_row", row_to_wire f.Checker.slow_row);
      ("fast_row", opt_to_wire row_to_wire f.Checker.fast_row);
      ("ratio", W.Float f.Checker.ratio);
      ("trigger", W.String f.Checker.trigger);
      ("critical_path", strings_to_wire f.Checker.critical_path);
      ("test_case", opt_to_wire test_case_to_wire f.Checker.test_case);
    ]

let finding_of_wire v =
  let* param = str_field "param" v "finding" in
  let* message = str_field "message" v "finding" in
  let* slow_v = field "slow_row" Option.some v "finding" in
  let* slow_row = row_of_wire slow_v in
  let* fast_v = field "fast_row" Option.some v "finding" in
  let* fast_row = opt_of_wire row_of_wire fast_v in
  let* ratio = float_field "ratio" v "finding" in
  let* trigger = str_field "trigger" v "finding" in
  let* cp_v = field "critical_path" Option.some v "finding" in
  let* critical_path = strings_of_wire "critical_path" cp_v in
  let* tc_v = field "test_case" Option.some v "finding" in
  let* test_case = opt_of_wire test_case_of_wire tc_v in
  Ok
    {
      Checker.param;
      message;
      slow_row;
      fast_row;
      ratio;
      trigger;
      critical_path;
      test_case;
    }

let findings_to_wire fs = W.List (List.map finding_to_wire fs)

let findings_of_wire v =
  match W.to_list v with
  | None -> Error "findings: expected a list"
  | Some vs -> map_result finding_of_wire vs

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", W.Int id) :: fields

let request_to_wire ?id req =
  let verb = ("verb", W.String (verb_of_request req)) in
  let fields =
    match req with
    | Check_current { key; config } ->
      [ verb; ("key", W.String key); ("config", W.String config) ]
    | Check_update { key; old_config; new_config } ->
      [
        verb;
        ("key", W.String key);
        ("old", W.String old_config);
        ("new", W.String new_config);
      ]
    | Check_upgrade { key; workloads = None } -> [ verb; ("key", W.String key) ]
    | Check_upgrade { key; workloads = Some (old_w, new_w) } ->
      [
        verb;
        ("key", W.String key);
        ("old_workload", assignment_to_wire old_w);
        ("new_workload", assignment_to_wire new_w);
      ]
    | Health | Stats | Reload_stage | Reload_commit | Shutdown -> [ verb ]
  in
  W.Obj (with_id id fields)

let encode_request ?id req = W.to_string (request_to_wire ?id req)

let request_of_wire v =
  let id = Option.bind (W.member "id" v) W.to_int in
  let* verb = str_field "verb" v "request" in
  let* req =
    match verb with
    | "check-current" ->
      let* key = str_field "key" v verb in
      let* config = str_field "config" v verb in
      Ok (Check_current { key; config })
    | "check-update" ->
      let* key = str_field "key" v verb in
      let* old_config = str_field "old" v verb in
      let* new_config = str_field "new" v verb in
      Ok (Check_update { key; old_config; new_config })
    | "check-upgrade" ->
      let* key = str_field "key" v verb in
      let* workloads =
        match (W.member "old_workload" v, W.member "new_workload" v) with
        | None, None -> Ok None
        | Some o, Some n ->
          let* old_w = assignment_of_wire o in
          let* new_w = assignment_of_wire n in
          Ok (Some (old_w, new_w))
        | _ -> Error "check-upgrade: old_workload and new_workload must come together"
      in
      Ok (Check_upgrade { key; workloads })
    | "health" -> Ok Health
    | "stats" -> Ok Stats
    | "reload-stage" -> Ok Reload_stage
    | "reload-commit" -> Ok Reload_commit
    | "shutdown" -> Ok Shutdown
    | v -> Error (Printf.sprintf "unknown verb %S" v)
  in
  Ok (id, req)

let decode_request line =
  let* v = W.of_string line in
  request_of_wire v

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let response_to_wire ?id resp =
  let fields =
    match resp with
    | Report o ->
      [
        ( "ok",
          W.Obj
            [
              ("findings", findings_to_wire o.findings);
              ("generation", W.Int o.generation);
              ("batched", W.Bool o.batched);
              ("coalesced", W.Bool o.coalesced);
              ("degraded", W.Bool o.degraded);
              ("checked_in_s", W.Float o.checked_in_s);
            ] );
      ]
    | Health_info { status; models } ->
      [
        ( "health",
          W.Obj
            [
              ("status", W.String status);
              ( "models",
                W.List
                  (List.map
                     (fun m ->
                       W.Obj
                         [
                           ("key", W.String m.mi_key);
                           ("generation", W.Int m.mi_generation);
                           ("digest", W.String m.mi_digest);
                         ])
                     models) );
            ] );
      ]
    | Stats_info stats -> [ ("stats", stats) ]
    | Reload_info { phase; ok; entries } ->
      [
        ( "reload",
          W.Obj
            [
              ("phase", W.String phase);
              ("ok", W.Bool ok);
              ("entries", W.Obj (List.map (fun (k, v) -> (k, W.String v)) entries));
            ] );
      ]
    | Error_resp { code; message } ->
      [
        ( "error",
          W.Obj
            [
              ("code", W.String (error_code_to_string code));
              ("message", W.String message);
            ] );
      ]
    | Bye -> [ ("bye", W.Bool true) ]
  in
  W.Obj (with_id id fields)

let encode_response ?id resp = W.to_string (response_to_wire ?id resp)

let response_of_wire v =
  let id = Option.bind (W.member "id" v) W.to_int in
  let* resp =
    match
      ( W.member "ok" v,
        W.member "health" v,
        (W.member "stats" v, W.member "reload" v),
        W.member "error" v,
        W.member "bye" v )
    with
    | Some o, None, (None, None), None, None ->
      let* findings_v = field "findings" Option.some o "ok" in
      let* findings = findings_of_wire findings_v in
      let* generation = int_field "generation" o "ok" in
      let* batched = bool_field "batched" o "ok" in
      let* coalesced = bool_field "coalesced" o "ok" in
      let* degraded = bool_field "degraded" o "ok" in
      let* checked_in_s = float_field "checked_in_s" o "ok" in
      Ok (Report { findings; checked_in_s; generation; batched; coalesced; degraded })
    | None, Some h, (None, None), None, None ->
      let* status = str_field "status" h "health" in
      let* models_v = list_field "models" h "health" in
      let* models =
        map_result
          (fun m ->
            let* mi_key = str_field "key" m "model" in
            let* mi_generation = int_field "generation" m "model" in
            let* mi_digest = str_field "digest" m "model" in
            Ok { mi_key; mi_generation; mi_digest })
          models_v
      in
      Ok (Health_info { status; models })
    | None, None, (Some stats, None), None, None -> Ok (Stats_info stats)
    | None, None, (None, Some r), None, None ->
      let* phase = str_field "phase" r "reload" in
      let* ok = bool_field "ok" r "reload" in
      let* entries_v = field "entries" Option.some r "reload" in
      let* entries =
        match entries_v with
        | W.Obj fields ->
          map_result
            (fun (k, v) ->
              match W.to_str v with
              | Some s -> Ok (k, s)
              | None -> Error (Printf.sprintf "reload entry %S is not a string" k))
            fields
        | _ -> Error "reload entries is not an object"
      in
      Ok (Reload_info { phase; ok; entries })
    | None, None, (None, None), Some e, None ->
      let* code_s = str_field "code" e "error" in
      let* message = str_field "message" e "error" in
      (match error_code_of_string code_s with
      | Some code -> Ok (Error_resp { code; message })
      | None -> Error (Printf.sprintf "unknown error code %S" code_s))
    | None, None, (None, None), None, Some _ -> Ok Bye
    | _ -> Error "response must carry exactly one of ok/health/stats/reload/error/bye"
  in
  Ok (id, resp)

let decode_response line =
  let* v = W.of_string line in
  response_of_wire v
