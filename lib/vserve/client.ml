type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read past the last returned line *)
  mutable next_id : int;
}

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Ok (`Unix s)
  | Some _ -> begin
    match String.split_on_char ':' s with
    | "unix" :: rest -> Ok (`Unix (String.concat ":" rest))
    | [ "tcp"; host; port ] -> begin
      match int_of_string_opt port with
      | Some p when p > 0 -> Ok (`Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP port in %S" s)
    end
    | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)
  end

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let connect addr =
  let sock_addr =
    match addr with
    | `Unix path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> begin
      match Unix.gethostbyname host with
      | exception Not_found -> Error (Printf.sprintf "unknown host %S" host)
      | { Unix.h_addr_list = [||]; _ } ->
        (* a resolvable name with an empty address list used to raise
           [Invalid_argument] out of [h_addr_list.(0)] *)
        Error (Printf.sprintf "host %S resolved to no addresses" host)
      | { Unix.h_addr_list; _ } -> Ok (Unix.PF_INET, Unix.ADDR_INET (h_addr_list.(0), port))
    end
  in
  match sock_addr with
  | Error _ as e -> e
  | Ok (pf, sa) -> begin
    let fd = Unix.socket pf Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> Ok { fd; buf = Buffer.create 256; next_id = 1 }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" (addr_to_string addr) (Unix.error_message err))
  end

(* Exponential backoff with jitter under an overall wall-clock deadline.
   The jitter source is a local seeded state (nothing in the repo touches
   the global [Random]); determinism does not matter here — the point is
   only that a thundering herd of restarting clients spreads out. *)
let connect_retry ?(deadline_s = 5.0) ?(base_delay_s = 0.02) ?(max_delay_s = 0.5) addr =
  let rng = Random.State.make [| Unix.getpid (); 0x5eed; int_of_float (deadline_s *. 1e3) |] in
  let t0 = Unix.gettimeofday () in
  let rec go attempt delay =
    match connect addr with
    | Ok c -> Ok c
    | Error e ->
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed >= deadline_s then
        Error
          (Printf.sprintf "connect %s: gave up after %d attempt%s in %.2fs; last error: %s"
             (addr_to_string addr) attempt
             (if attempt = 1 then "" else "s")
             elapsed e)
      else begin
        let jittered = delay *. (0.5 +. Random.State.float rng 1.0) in
        let remaining = deadline_s -. elapsed in
        Unix.sleepf (Float.min jittered (Float.max 0. remaining));
        go (attempt + 1) (Float.min max_delay_s (delay *. 2.))
      end
  in
  go 1 base_delay_s

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  let data = line ^ "\n" in
  let len = String.length data in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write_substring c.fd data !pos (len - !pos)
    done;
    Ok ()
  with Unix.Unix_error (err, _, _) -> Error ("write: " ^ Unix.error_message err)

(* [timeout_s] bounds the wait for *each* read; a hung daemon therefore
   cannot block the caller forever.  [None] preserves the blocking
   behaviour. *)
let rec recv_line ?timeout_s c =
  let data = Buffer.contents c.buf in
  match String.index_opt data '\n' with
  | Some i ->
    let line = String.sub data 0 i in
    Buffer.clear c.buf;
    Buffer.add_string c.buf (String.sub data (i + 1) (String.length data - i - 1));
    Ok line
  | None -> begin
    let ready =
      match timeout_s with
      | None -> true
      | Some t -> begin
        match Unix.select [ c.fd ] [] [] t with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      end
    in
    if not ready then
      Error
        (Printf.sprintf "timeout: no response within %gs"
           (Option.value ~default:0. timeout_s))
    else begin
      let chunk = Bytes.create 65536 in
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed by server"
      | n ->
        Buffer.add_subbytes c.buf chunk 0 n;
        recv_line ?timeout_s c
      | exception Unix.Unix_error (err, _, _) -> Error ("read: " ^ Unix.error_message err)
    end
  end

let call_raw c line =
  match send_line c line with Error _ as e -> e | Ok () -> recv_line c

let ( let* ) = Result.bind

let post c req =
  let id = c.next_id in
  c.next_id <- id + 1;
  let* () = send_line c (Protocol.encode_request ~id req) in
  Ok id

let await ?timeout_s c id =
  let rec loop () =
    let* line = recv_line ?timeout_s c in
    let* got_id, resp = Protocol.decode_response line in
    match got_id with
    | Some i when i = id -> Ok resp
    | None -> Ok resp
    | Some _ -> loop ()  (* a stale response from an earlier abandoned call *)
  in
  loop ()

let call ?timeout_s c req =
  let* id = post c req in
  await ?timeout_s c id
