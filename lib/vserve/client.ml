type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read past the last returned line *)
  mutable next_id : int;
}

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Ok (`Unix s)
  | Some _ -> begin
    match String.split_on_char ':' s with
    | "unix" :: rest -> Ok (`Unix (String.concat ":" rest))
    | [ "tcp"; host; port ] -> begin
      match int_of_string_opt port with
      | Some p when p > 0 -> Ok (`Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP port in %S" s)
    end
    | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)
  end

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let connect addr =
  let sock_addr =
    match addr with
    | `Unix path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> begin
      match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
      | inet -> Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port))
      | exception Not_found -> Error (Printf.sprintf "unknown host %S" host)
    end
  in
  match sock_addr with
  | Error _ as e -> e
  | Ok (pf, sa) -> begin
    let fd = Unix.socket pf Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> Ok { fd; buf = Buffer.create 256; next_id = 1 }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" (addr_to_string addr) (Unix.error_message err))
  end

let connect_retry ?(attempts = 50) ?(delay_s = 0.1) addr =
  let rec go n =
    match connect addr with
    | Ok c -> Ok c
    | Error _ when n > 1 ->
      Unix.sleepf delay_s;
      go (n - 1)
    | Error _ as e -> e
  in
  go (max 1 attempts)

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  let data = line ^ "\n" in
  let len = String.length data in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write_substring c.fd data !pos (len - !pos)
    done;
    Ok ()
  with Unix.Unix_error (err, _, _) -> Error ("write: " ^ Unix.error_message err)

let rec recv_line c =
  let data = Buffer.contents c.buf in
  match String.index_opt data '\n' with
  | Some i ->
    let line = String.sub data 0 i in
    Buffer.clear c.buf;
    Buffer.add_string c.buf (String.sub data (i + 1) (String.length data - i - 1));
    Ok line
  | None -> begin
    let chunk = Bytes.create 65536 in
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> Error "connection closed by server"
    | n ->
      Buffer.add_subbytes c.buf chunk 0 n;
      recv_line c
    | exception Unix.Unix_error (err, _, _) -> Error ("read: " ^ Unix.error_message err)
  end

let call_raw c line =
  match send_line c line with Error _ as e -> e | Ok () -> recv_line c

let ( let* ) = Result.bind

let call c req =
  let id = c.next_id in
  c.next_id <- id + 1;
  let* () = send_line c (Protocol.encode_request ~id req) in
  let rec await () =
    let* line = recv_line c in
    let* got_id, resp = Protocol.decode_response line in
    match got_id with
    | Some i when i = id -> Ok resp
    | None -> Ok resp
    | Some _ -> await ()  (* a stale response from an earlier abandoned call *)
  in
  await ()
