(** Line-framed socket connections, shared by the daemon reactor and the
    vfleet router.

    A connection owns its fd and a read buffer for bytes past the last
    complete line.  Writes are all-or-nothing from the peer's point of view:
    if a write fails part-way ([EPIPE], [ECONNRESET], a full buffer that
    never drains), the connection is closed — the peer must never observe a
    truncated response line — and [on_write_failed] fires, so dropped
    responses are observable as a counter rather than silent. *)

type t

val make : ?on_write_failed:(unit -> unit) -> Unix.file_descr -> t
(** Wrap an accepted/connected fd.  [on_write_failed] defaults to a no-op. *)

val fd : t -> Unix.file_descr
val closed : t -> bool

val close : t -> unit
(** Idempotent. *)

val write_line : t -> string -> unit
(** Write [line ^ "\n"].  On any write error the connection is closed and
    [on_write_failed] is called; no partial line is ever left visible as a
    complete response.  No-op on a closed connection. *)

val read_lines : t -> string list
(** One readable-event read: drain what the kernel has, return the complete
    lines received (blank lines filtered).  EOF and read errors close the
    connection and return [[]]. *)
