module P = Protocol
module B = Vresilience.Budget
module Stats = Vsched.Exploration_stats
module Checker = Vchecker.Checker

type addr = [ `Unix of string | `Tcp of string * int ]

type options = {
  addr : addr;
  models_dir : string;
  resolve_registry : Vmodel.Impact_model.t -> Vruntime.Config_registry.t option;
  max_queue : int;
  max_batch : int;
  batching : bool;
  request_deadline_s : float option;
  shed_pressure : float;
  jobs : int;
  refresh_every_s : float;
  manual_reload : bool;
  allow_shutdown : bool;
  check_mode : Vchecker.Checker.mode;
  joint_input_max_nodes : int;
  now : unit -> float;
}

let default_options ~addr ~models_dir =
  {
    addr;
    models_dir;
    resolve_registry = (fun _ -> None);
    max_queue = 64;
    max_batch = 16;
    batching = true;
    request_deadline_s = None;
    shed_pressure = 0.9;
    jobs = Vpar.Pool.default_jobs ();
    refresh_every_s = 0.5;
    manual_reload = false;
    allow_shutdown = true;
    check_mode = Checker.Hybrid;
    joint_input_max_nodes = Checker.default_joint_input_max_nodes;
    now = Unix.gettimeofday;
  }

(* ------------------------------------------------------------------ *)
(* Serving state                                                       *)
(* ------------------------------------------------------------------ *)

type pending = {
  p_conn : Conn.t;
  p_id : int option;
  p_req : P.request;
  p_key : string;
  p_armed : B.armed;
  p_t_enq : float;
}

type state = {
  opts : options;
  registry : Registry.t;
  base_budget : B.armed;  (** one spec for every request, re-armed at admission *)
  queue : pending Queue.t;
  by_verb : (string, int) Hashtbl.t;
  latency : Stats.latency_hist;
  mutable requests : int;
  mutable shed_queue_full : int;
  mutable shed_deadline : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable coalesced : int;
  mutable write_failed : int;
  mutable stopping : bool;
}

let bump_verb st verb =
  Hashtbl.replace st.by_verb verb
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.by_verb verb))

let serve_snapshot st =
  {
    Stats.requests = st.requests;
    by_verb =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.by_verb []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    shed_queue_full = st.shed_queue_full;
    shed_deadline = st.shed_deadline;
    batches = st.batches;
    batched_requests = st.batched_requests;
    coalesced = st.coalesced;
    write_failed = st.write_failed;
    model_reloads = Registry.reloads st.registry;
    model_load_failures = Registry.load_failures st.registry;
    model_compiles = Registry.compiles st.registry;
    compile_wall_s = Registry.compile_wall_s st.registry;
    models =
      List.map
        (fun (e : Registry.entry) -> (e.Registry.key, e.Registry.generation))
        (Registry.entries st.registry);
    latency = st.latency;
  }

(* ------------------------------------------------------------------ *)
(* Check execution (runs on pool workers — must not raise)             *)
(* ------------------------------------------------------------------ *)

type exec_result = { resp : P.response; shed : bool }

let outcome_of_report generation (r : Checker.report) =
  P.Report
    {
      P.findings = r.Checker.findings;
      checked_in_s = r.Checker.checked_in_s;
      generation;
      batched = false;
      coalesced = false;
      degraded = false;
    }

let check_failed message = P.Error_resp { code = P.Check_failed; message }

(* Mode-3a (code upgrade, no workloads) is a pure function of the entry's
   current and previous models, and both are pinned by (key, generation):
   a reload that changes either bumps the generation.  The daemon answers
   the same upgrade question for every client watching a rollout, so the
   row sweep runs once per generation and replays from here after.  The
   table is shared across pool workers; stale generations for a key are
   evicted on insert, so it holds at most one report per model. *)
let upgrade_memo : (string * int, Checker.report) Hashtbl.t = Hashtbl.create 16
let upgrade_memo_lock = Mutex.create ()
let upgrade_memo_hit_count = Atomic.make 0
let upgrade_memo_hits () = Atomic.get upgrade_memo_hit_count

let memoized_check_upgrade ~key ~generation ~old_model ~new_model =
  let memo_key = key, generation in
  Mutex.lock upgrade_memo_lock;
  let cached = Hashtbl.find_opt upgrade_memo memo_key in
  Mutex.unlock upgrade_memo_lock;
  match cached with
  | Some r ->
    Atomic.incr upgrade_memo_hit_count;
    r
  | None ->
    let r = Checker.check_upgrade ~old_model ~new_model () in
    Mutex.lock upgrade_memo_lock;
    let stale =
      Hashtbl.fold
        (fun (k, g) _ acc -> if String.equal k key && g <> generation then (k, g) :: acc else acc)
        upgrade_memo []
    in
    List.iter (Hashtbl.remove upgrade_memo) stale;
    Hashtbl.replace upgrade_memo memo_key r;
    Mutex.unlock upgrade_memo_lock;
    r

let exec_check opts (p, entry) =
  match entry with
  | None ->
    {
      resp = P.Error_resp { code = P.Unknown_model; message = "no model named " ^ p.p_key };
      shed = false;
    }
  | Some (e : Registry.entry) -> begin
    let model = e.Registry.model in
    let mode = opts.check_mode
    and compiled = e.Registry.compiled
    and joint_input_max_nodes = opts.joint_input_max_nodes in
    let generation = e.Registry.generation in
    if B.pressure p.p_armed >= opts.shed_pressure then begin
      (* queue wait ate the request's deadline budget: shed to the
         conservative widening — answer what is knowable without the full
         comparison instead of erroring *)
      let t0 = opts.now () in
      let findings = Checker.degraded_findings model in
      {
        resp =
          P.Report
            {
              P.findings;
              checked_in_s = opts.now () -. t0;
              generation;
              batched = false;
              coalesced = false;
              degraded = true;
            };
        shed = true;
      }
    end
    else
      let resp =
        try
          match p.p_req with
          | P.Check_current { config; _ } -> begin
            match opts.resolve_registry model with
            | None ->
              check_failed
                ("no configuration registry for system " ^ model.Vmodel.Impact_model.system)
            | Some reg -> begin
              let file = Vchecker.Config_file.parse config in
              match
                Checker.check_current ~mode ?compiled ~joint_input_max_nodes ~model
                  ~registry:reg ~file ()
              with
              | Ok report -> outcome_of_report generation report
              | Error msg -> check_failed msg
            end
          end
          | P.Check_update { old_config; new_config; _ } -> begin
            match opts.resolve_registry model with
            | None ->
              check_failed
                ("no configuration registry for system " ^ model.Vmodel.Impact_model.system)
            | Some reg -> begin
              let old_file = Vchecker.Config_file.parse old_config in
              let new_file = Vchecker.Config_file.parse new_config in
              match
                Checker.check_update ~mode ?compiled ~joint_input_max_nodes ~model
                  ~registry:reg ~old_file ~new_file ()
              with
              | Ok report -> outcome_of_report generation report
              | Error msg -> check_failed msg
            end
          end
          | P.Check_upgrade { workloads = Some (old_workload, new_workload); _ } ->
            outcome_of_report generation
              (Checker.check_workload_change ~mode ?compiled ~joint_input_max_nodes
                 ~model ~old_workload ~new_workload ())
          | P.Check_upgrade { workloads = None; _ } -> begin
            match e.Registry.previous with
            | Some old_model ->
              outcome_of_report generation
                (memoized_check_upgrade ~key:p.p_key ~generation ~old_model
                   ~new_model:model)
            | None ->
              check_failed
                (Printf.sprintf "model %s has no previous generation to compare against"
                   p.p_key)
          end
          | P.Health | P.Stats | P.Reload_stage | P.Reload_commit | P.Shutdown ->
            (* service verbs never reach the queue *)
            check_failed "internal: service verb in check queue"
        with exn -> check_failed (Printexc.to_string exn)
      in
      { resp; shed = false }
  end

(* ------------------------------------------------------------------ *)
(* The reactor                                                         *)
(* ------------------------------------------------------------------ *)

let key_of_request = function
  | P.Check_current { key; _ } | P.Check_update { key; _ } | P.Check_upgrade { key; _ } ->
    Some key
  | P.Health | P.Stats | P.Reload_stage | P.Reload_commit | P.Shutdown -> None

let handle_line st conn line =
  let opts = st.opts in
  match P.decode_request line with
  | Error msg ->
    st.requests <- st.requests + 1;
    bump_verb st "invalid";
    Conn.write_line conn
      (P.encode_response (P.Error_resp { code = P.Bad_request; message = msg }))
  | Ok (id, req) -> begin
    let verb = P.verb_of_request req in
    match req with
    | P.Health ->
      st.requests <- st.requests + 1;
      bump_verb st verb;
      let models =
        List.map
          (fun (e : Registry.entry) ->
            {
              P.mi_key = e.Registry.key;
              mi_generation = e.Registry.generation;
              mi_digest = e.Registry.digest;
            })
          (Registry.entries st.registry)
      in
      Conn.write_line conn
        (P.encode_response ?id
           (P.Health_info { status = (if st.stopping then "stopping" else "ok"); models }))
    | P.Stats ->
      st.requests <- st.requests + 1;
      bump_verb st verb;
      let stats_json = Stats.serve_to_json (serve_snapshot st) in
      let resp =
        match Wire.of_string stats_json with
        | Ok v -> P.Stats_info v
        | Error msg -> check_failed ("stats rendering failed: " ^ msg)
      in
      Conn.write_line conn (P.encode_response ?id resp)
    | P.Reload_stage ->
      st.requests <- st.requests + 1;
      bump_verb st verb;
      let results = Registry.stage st.registry in
      let ok = Registry.staged st.registry || results = [] in
      let entries =
        List.map
          (fun (key, r) ->
            match r with Ok digest -> (key, digest) | Error reason -> (key, reason))
          results
      in
      Conn.write_line conn
        (P.encode_response ?id (P.Reload_info { phase = "stage"; ok; entries }))
    | P.Reload_commit ->
      st.requests <- st.requests + 1;
      bump_verb st verb;
      let resp =
        match Registry.commit st.registry with
        | Error msg -> P.Reload_info { phase = "commit"; ok = false; entries = [ ("", msg) ] }
        | Ok events ->
          let entries =
            List.filter_map
              (fun ev ->
                match ev with
                | Registry.Loaded { key; generation } -> Some (key, string_of_int generation)
                | Registry.Removed key -> Some (key, "removed")
                | Registry.Rejected _ -> None)
              events
          in
          P.Reload_info { phase = "commit"; ok = true; entries }
      in
      Conn.write_line conn (P.encode_response ?id resp)
    | P.Shutdown ->
      st.requests <- st.requests + 1;
      bump_verb st verb;
      if opts.allow_shutdown then begin
        st.stopping <- true;
        Conn.write_line conn (P.encode_response ?id P.Bye)
      end
      else
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp { code = P.Bad_request; message = "shutdown is disabled" }))
    | P.Check_current _ | P.Check_update _ | P.Check_upgrade _ ->
      if st.stopping then begin
        st.requests <- st.requests + 1;
        bump_verb st verb;
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp { code = P.Shutting_down; message = "daemon is shutting down" }))
      end
      else if Queue.length st.queue >= opts.max_queue then begin
        (* admission control: shed rather than queue without bound *)
        st.requests <- st.requests + 1;
        bump_verb st verb;
        st.shed_queue_full <- st.shed_queue_full + 1;
        Conn.write_line conn
          (P.encode_response ?id
             (P.Error_resp
                { code = P.Overloaded; message = "admission queue full — request shed" }))
      end
      else begin
        let key = Option.value ~default:"" (key_of_request req) in
        Queue.add
          {
            p_conn = conn;
            p_id = id;
            p_req = req;
            p_key = key;
            p_armed = B.rearm st.base_budget;
            p_t_enq = opts.now ();
          }
          st.queue
      end
  end

let run_batch st =
  let opts = st.opts in
  let n =
    if opts.batching then min opts.max_batch (Queue.length st.queue)
    else min 1 (Queue.length st.queue)
  in
  if n > 0 then begin
    let jobsv = Array.init n (fun _ -> Queue.pop st.queue) in
    let resolved =
      Array.map (fun p -> (p, Registry.find st.registry p.p_key)) jobsv
    in
    let group_of (p, entry) =
      match entry with
      | Some (e : Registry.entry) ->
        Printf.sprintf "%s#%d" e.Registry.key e.Registry.generation
      | None -> "?" ^ p.p_key
    in
    let dedup_of (p, _) = P.encode_request p.p_req in
    let results, bstats =
      Batcher.run ~jobs:opts.jobs ~group_of ~dedup_of ~exec:(exec_check opts) resolved
    in
    st.batches <- st.batches + bstats.Batcher.groups;
    st.batched_requests <- st.batched_requests + bstats.Batcher.batched_requests;
    st.coalesced <- st.coalesced + bstats.Batcher.coalesced;
    Array.iteri
      (fun i (r, batched, coalesced) ->
        let p, _ = resolved.(i) in
        let resp =
          match r.resp with
          | P.Report o -> P.Report { o with P.batched; coalesced }
          | resp -> resp
        in
        if r.shed then st.shed_deadline <- st.shed_deadline + 1;
        st.requests <- st.requests + 1;
        bump_verb st (P.verb_of_request p.p_req);
        Conn.write_line p.p_conn (P.encode_response ?id:p.p_id resp);
        Stats.observe_latency st.latency ~us:((opts.now () -. p.p_t_enq) *. 1e6))
      results
  end

let bind_socket addr =
  match addr with
  | `Unix path ->
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let run opts =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match bind_socket opts.addr with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot bind: %s" (Unix.error_message err))
  | listen_fd ->
    let registry =
      Registry.create
        ~compile:(opts.check_mode <> Vchecker.Checker.Solver)
        ~joint_max_nodes:opts.joint_input_max_nodes ~dir:opts.models_dir ()
    in
    ignore (Registry.refresh registry);
    let st =
      {
        opts;
        registry;
        base_budget =
          B.arm (B.with_clock (B.with_deadline B.default opts.request_deadline_s) opts.now);
        queue = Queue.create ();
        by_verb = Hashtbl.create 8;
        latency = Stats.latency_hist ();
        requests = 0;
        shed_queue_full = 0;
        shed_deadline = 0;
        batches = 0;
        batched_requests = 0;
        coalesced = 0;
        write_failed = 0;
        stopping = false;
      }
    in
    let on_write_failed () = st.write_failed <- st.write_failed + 1 in
    let conns = ref [] in
    let last_refresh = ref (opts.now ()) in
    let rec loop () =
      conns := List.filter (fun c -> not (Conn.closed c)) !conns;
      if st.stopping && Queue.is_empty st.queue then ()
      else begin
        let fds =
          (if st.stopping then [] else [ listen_fd ])
          @ List.map (fun c -> Conn.fd c) !conns
        in
        let timeout = if Queue.is_empty st.queue then 0.2 else 0. in
        let readable =
          match Unix.select fds [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            if fd == listen_fd then begin
              match Unix.accept listen_fd with
              | client_fd, _ -> conns := Conn.make ~on_write_failed client_fd :: !conns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> Conn.fd c == fd) !conns with
              | None -> ()
              | Some conn -> List.iter (handle_line st conn) (Conn.read_lines conn))
          readable;
        if (not opts.manual_reload) && opts.now () -. !last_refresh >= opts.refresh_every_s
        then begin
          ignore (Registry.refresh registry);
          last_refresh := opts.now ()
        end;
        run_batch st;
        loop ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter Conn.close !conns;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        match opts.addr with
        | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
        | `Tcp _ -> ())
      (fun () ->
        loop ();
        Ok ())
