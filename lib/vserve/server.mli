(** The continuous configuration-checking daemon.

    One process serves {!Protocol} requests over a Unix-domain or TCP socket,
    newline-delimited JSON both ways.  The loop is a single-threaded
    [select] reactor for I/O with batched execution:

    + readable sockets are drained and parsed; service verbs
      ([health]/[stats]/[reload-stage]/[reload-commit]/[shutdown]) are
      answered inline, check verbs pass
      {e admission control} — a bounded queue; when it is full the request is
      answered [overloaded] immediately and counted as shed;
    + when the queue is non-empty, up to [max_batch] requests are drained
      into one batch and executed by {!Batcher} on a {!Vpar.Pool} — grouped
      by model key + registry generation, identical requests coalesced;
    + each admitted request carries a {!Vresilience.Budget} armed at
      admission (one shared spec, {!Vresilience.Budget.rearm}ed per
      request).  If queue wait has pushed the budget past [shed_pressure] by
      the time the request executes, the full check is skipped and only the
      conservative degraded-region widening
      ({!Vchecker.Checker.degraded_findings}) runs — overload degrades
      answers instead of erroring;
    + between batches the {!Registry} is re-polled, so replacing a model
      file hot-swaps the next batch onto the new generation (a corrupt
      replacement is rejected and the old generation keeps serving).

    Responses to service verbs may overtake queued check responses on the
    same connection; clients correlate by request [id]. *)

type addr = [ `Unix of string | `Tcp of string * int ]

type options = {
  addr : addr;
  models_dir : string;
  resolve_registry : Vmodel.Impact_model.t -> Vruntime.Config_registry.t option;
      (** configuration registry for a model's system ([check-current] and
          [check-update] need one to encode config files); the CLI wires
          {!Targets.Cases}, tests wire their fixture *)
  max_queue : int;  (** admission-queue depth bound (default 64) *)
  max_batch : int;  (** requests drained per batch (default 16) *)
  batching : bool;
      (** [false] executes requests one at a time — the A/B hatch the bench
          measures against *)
  request_deadline_s : float option;
      (** per-request budget deadline, armed at admission (default none) *)
  shed_pressure : float;
      (** budget pressure at execution time beyond which the request is
          served degraded-only (default 0.9) *)
  jobs : int;  (** worker domains for batch execution *)
  refresh_every_s : float;  (** model-directory poll period (default 0.5) *)
  manual_reload : bool;
      (** disable the background directory poll: models load once at startup
          and change only via the two-phase [reload-stage]/[reload-commit]
          verbs.  Fleet workers run this way so every shard flips generation
          at the router's command, never on its own clock (default false) *)
  allow_shutdown : bool;  (** honour the [shutdown] verb (default true) *)
  check_mode : Vchecker.Checker.mode;
      (** row-decision backend for check requests (default [Hybrid]: use the
          decision tables the registry compiled at load time, solver path
          for anything they cannot close).  [Solver] also disables
          registry-load-time compilation *)
  joint_input_max_nodes : int;
      (** node budget of the checker's joint-input gate (default 1_000);
          the registry's compiled feasibility tables are keyed to it *)
  now : unit -> float;  (** injectable clock (latency metrics, budgets) *)
}

val default_options : addr:addr -> models_dir:string -> options
(** [resolve_registry] defaults to [fun _ -> None]; [jobs] to
    {!Vpar.Pool.default_jobs}. *)

val run : options -> (unit, string) result
(** Bind, serve until a [shutdown] request, then drain and exit.  [Error] on
    bind/listen failure.  An existing Unix-socket file at [addr] is
    replaced; the file is removed again on clean shutdown.  SIGPIPE is
    ignored process-wide (disconnecting clients must not kill the daemon). *)

val upgrade_memo_hits : unit -> int
(** Mode-3a upgrade reports answered from the per-(key, generation) memo
    instead of a fresh row sweep (process-wide counter; a registry reload
    bumps the generation and naturally invalidates the memo). *)
