type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable closed : bool;
  on_write_failed : unit -> unit;
}

let make ?(on_write_failed = fun () -> ()) fd =
  { fd; buf = Buffer.create 256; closed = false; on_write_failed }

let fd c = c.fd
let closed c = c.closed

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* A response that cannot be written in full is a dropped response; the
   connection is closed (the peer would otherwise read a truncated line) and
   the failure is surfaced through [on_write_failed] so it lands in a
   counter instead of vanishing. *)
let write_line c line =
  if not c.closed then begin
    let data = line ^ "\n" in
    let len = String.length data in
    let pos = ref 0 in
    try
      while !pos < len do
        pos := !pos + Unix.write_substring c.fd data !pos (len - !pos)
      done
    with Unix.Unix_error _ ->
      c.on_write_failed ();
      close c
  end

(* one readable-event read; returns the complete lines received *)
let read_lines c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error _ ->
    close c;
    []
  | 0 ->
    close c;
    []
  | n ->
    Buffer.add_subbytes c.buf chunk 0 n;
    let data = Buffer.contents c.buf in
    let parts = String.split_on_char '\n' data in
    let rec split_last acc = function
      | [] -> (List.rev acc, "")
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
    in
    let lines, rest = split_last [] parts in
    Buffer.clear c.buf;
    Buffer.add_string c.buf rest;
    List.filter (fun l -> String.trim l <> "") lines
