(** The vserve request/response protocol.

    One JSON object per line in each direction.  Requests mirror the three
    continuous-checker modes (paper Section 4.7) plus the service verbs:

    - [check-current]: mode 2 — is the (full) config file's effective value
      of the model's target parameter in a poor state?
    - [check-update]: mode 1 — does the old→new file change introduce a
      regression?
    - [check-upgrade]: mode 3 — with workloads given, 3b (the workload class
      shifted); without, 3a (the registry's previous model generation vs the
      current one, i.e. "did the last hot-reloaded model make my setting
      slow?").
    - [health] / [stats] / [shutdown]: service management.
    - [reload-stage] / [reload-commit]: two-phase hot reload — stage
      verifies every model file in the registry directory without touching
      the live table; commit flips the staged generation in.  The vfleet
      router drives the pair across every shard so mixed-generation answers
      never escape the fleet.

    Config files travel as raw file text (the daemon parses with
    {!Vchecker.Config_file.parse}, with its per-line recovery), so any byte
    sequence a real my.cnf can hold — including non-ASCII values — reaches
    the checker unchanged.

    Findings serialize completely: rows carry their constraints as the same
    s-expression strings impact models persist, so a served finding decodes
    to the identical {!Vchecker.Checker.finding} value the in-process
    checker produced (call-tree [nodes] excepted, exactly as model
    persistence drops them). *)

type request =
  | Check_current of { key : string; config : string }
  | Check_update of { key : string; old_config : string; new_config : string }
  | Check_upgrade of {
      key : string;
      workloads : ((string * int) list * (string * int) list) option;
          (** [(old, new)] workload assignments selects mode 3b; [None] is
              mode 3a against the previous model generation *)
    }
  | Health
  | Stats
  | Reload_stage
  | Reload_commit
  | Shutdown

type outcome = {
  findings : Vchecker.Checker.finding list;
  checked_in_s : float;
  generation : int;  (** model-registry generation that served the check *)
  batched : bool;  (** executed as part of a multi-request batch *)
  coalesced : bool;  (** served from an identical batch-mate's computation *)
  degraded : bool;
      (** overload shed: only the conservative widening (degraded-region
          findings) ran, not the full comparison *)
}

type model_info = { mi_key : string; mi_generation : int; mi_digest : string }

type error_code =
  | Overloaded  (** admission queue full — load was shed *)
  | Bad_request
  | Unknown_model
  | Check_failed  (** the checker itself reported an error *)
  | Shutting_down

type response =
  | Report of outcome
  | Health_info of { status : string; models : model_info list }
  | Stats_info of Wire.t  (** the stats JSON object, spliced verbatim *)
  | Reload_info of { phase : string; ok : bool; entries : (string * string) list }
      (** [phase] is ["stage"] or ["commit"]; [entries] pairs each key with
          its staged digest / committed generation, or with the rejection
          reason when [ok] is false *)
  | Error_resp of { code : error_code; message : string }
  | Bye  (** shutdown acknowledged *)

val verb_of_request : request -> string
val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val encode_request : ?id:int -> request -> string
(** One line, no trailing newline.  [id] is echoed in the response. *)

val decode_request : string -> (int option * request, string) result

val encode_response : ?id:int -> response -> string
val decode_response : string -> (int option * response, string) result

val findings_to_wire : Vchecker.Checker.finding list -> Wire.t
(** The findings array exactly as {!encode_response} embeds it — the hook
    the end-to-end byte-identity test compares on. *)

val findings_of_wire : Wire.t -> (Vchecker.Checker.finding list, string) result
