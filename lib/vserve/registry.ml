type entry = {
  key : string;
  path : string;
  generation : int;
  digest : string;
  model : Vmodel.Impact_model.t;
  compiled : Vmodel.Compiled_model.t option;
  previous : Vmodel.Impact_model.t option;
  mtime : float;
  size : int;
}

type event =
  | Loaded of { key : string; generation : int }
  | Rejected of { key : string; reason : string }
  | Removed of string

let event_to_string = function
  | Loaded { key; generation } -> Printf.sprintf "loaded %s (generation %d)" key generation
  | Rejected { key; reason } -> Printf.sprintf "rejected %s: %s" key reason
  | Removed key -> Printf.sprintf "removed %s" key

(* a fully verified load held back from the live table until [commit] *)
type staged = {
  st_key : string;
  st_path : string;
  st_digest : string;
  st_model : Vmodel.Impact_model.t;
  st_compiled : Vmodel.Compiled_model.t option;
  st_mtime : float;
  st_size : int;
}

type t = {
  dir : string;
  compile : bool;
  joint_max_nodes : int;
  entries : (string, entry) Hashtbl.t;
  mutable staged : staged list option;  (* [Some] after a successful stage *)
  mutable reloads : int;
  mutable load_failures : int;
  mutable compiles : int;
  mutable compile_wall_s : float;
}

let extension = ".vmodel"

let create ?(compile = true) ?(joint_max_nodes = 1_000) ~dir () =
  {
    dir;
    compile;
    joint_max_nodes;
    entries = Hashtbl.create 8;
    staged = None;
    reloads = 0;
    load_failures = 0;
    compiles = 0;
    compile_wall_s = 0.;
  }

let dir t = t.dir
let model_file ~dir ~key = Filename.concat dir (key ^ extension)

let key_of_file name =
  if Filename.check_suffix name extension then
    Some (Filename.chop_suffix name extension)
  else None

(* Read the payload through the checkpoint envelope (verifying magic,
   version, kind, length and digest) — the md5 both gates the load and
   becomes the entry's identity, and is known *before* the payload is
   parsed, so an unchanged digest skips the parse and recompile
   entirely. *)
let read_payload path =
  match
    Vresilience.Checkpoint.read ~path ~kind:Violet.Pipeline.model_kind
      ~version:Violet.Pipeline.model_version
  with
  | Error e -> Error (Vresilience.Checkpoint.error_to_string e)
  | Ok payload -> Ok (payload, Digest.to_hex (Digest.string payload))

let compile_model t model =
  if not t.compile then None
  else begin
    let cm = Vmodel.Compiled_model.compile ~joint_max_nodes:t.joint_max_nodes model in
    t.compiles <- t.compiles + 1;
    t.compile_wall_s <-
      t.compile_wall_s +. (Vmodel.Compiled_model.stats cm).Vmodel.Compiled_model.compile_s;
    Some cm
  end

let refresh ?(force = false) t =
  let events = ref [] in
  let seen = Hashtbl.create 8 in
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort String.compare files;
  Array.iter
    (fun name ->
      match key_of_file name with
      | None -> ()
      | Some key -> begin
        let path = Filename.concat t.dir name in
        match Unix.stat path with
        | exception Unix.Unix_error _ -> ()
        | st ->
          Hashtbl.replace seen key ();
          let old = Hashtbl.find_opt t.entries key in
          let unchanged =
            (not force)
            && match old with
               | Some e ->
                 Float.equal e.mtime st.Unix.st_mtime && e.size = st.Unix.st_size
               | None -> false
          in
          if not unchanged then begin
            match read_payload path with
            | Error reason ->
              (* keep serving the previous generation: the entry is only
                 ever replaced by a fully verified load *)
              t.load_failures <- t.load_failures + 1;
              events := Rejected { key; reason } :: !events
            | Ok (payload, digest) ->
              let same_bytes =
                match old with Some e -> String.equal e.digest digest | None -> false
              in
              if same_bytes then
                (* touched but byte-identical: refresh the stat cache only —
                   no re-parse, no recompile, the live generation stands *)
                Hashtbl.replace t.entries key
                  (Option.get old |> fun e ->
                   { e with mtime = st.Unix.st_mtime; size = st.Unix.st_size })
              else begin
                match Vmodel.Impact_model.of_string payload with
                | Error reason ->
                  t.load_failures <- t.load_failures + 1;
                  events := Rejected { key; reason } :: !events
                | Ok model ->
                  let generation, previous =
                    match old with
                    | Some e -> (e.generation + 1, Some e.model)
                    | None -> (1, None)
                  in
                  let entry =
                    {
                      key;
                      path;
                      generation;
                      digest;
                      model;
                      compiled = compile_model t model;
                      previous;
                      mtime = st.Unix.st_mtime;
                      size = st.Unix.st_size;
                    }
                  in
                  Hashtbl.replace t.entries key entry;
                  t.reloads <- t.reloads + 1;
                  events := Loaded { key; generation } :: !events
              end
          end
      end)
    files;
  Hashtbl.iter
    (fun key _ ->
      if not (Hashtbl.mem seen key) then events := Removed key :: !events)
    (Hashtbl.copy t.entries);
  List.iter
    (fun ev -> match ev with Removed key -> Hashtbl.remove t.entries key | _ -> ())
    !events;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Two-phase reload: [stage] verifies every file in the directory without
   touching the live table; [commit] flips the staged set in atomically
   (from a reader's point of view: one entry at a time, each fully built).
   The vfleet router runs stage on every shard and commits only when all of
   them staged successfully, so no shard ever serves a generation another
   shard could not load.  Staging also pays the model-compile tax, so the
   commit flip stays cheap and the compiled artifact rides through the
   fleet's generation bump. *)

let stage t =
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort String.compare files;
  let results = ref [] in
  let staged = ref [] in
  let all_ok = ref true in
  Array.iter
    (fun name ->
      match key_of_file name with
      | None -> ()
      | Some key -> begin
        let path = Filename.concat t.dir name in
        match Unix.stat path with
        | exception Unix.Unix_error (err, _, _) ->
          all_ok := false;
          t.load_failures <- t.load_failures + 1;
          results := (key, Error (Unix.error_message err)) :: !results
        | st -> begin
          match read_payload path with
          | Error reason ->
            all_ok := false;
            t.load_failures <- t.load_failures + 1;
            results := (key, Error reason) :: !results
          | Ok (payload, digest) -> begin
            let live =
              match Hashtbl.find_opt t.entries key with
              | Some e when String.equal e.digest digest -> Some e
              | _ -> None
            in
            match live with
            | Some e ->
              (* unchanged bytes: the verified envelope is enough — reuse
                 the live model and its compiled artifact *)
              staged :=
                {
                  st_key = key;
                  st_path = path;
                  st_digest = digest;
                  st_model = e.model;
                  st_compiled = e.compiled;
                  st_mtime = st.Unix.st_mtime;
                  st_size = st.Unix.st_size;
                }
                :: !staged;
              results := (key, Ok digest) :: !results
            | None -> begin
              match Vmodel.Impact_model.of_string payload with
              | Error reason ->
                all_ok := false;
                t.load_failures <- t.load_failures + 1;
                results := (key, Error reason) :: !results
              | Ok model ->
                staged :=
                  {
                    st_key = key;
                    st_path = path;
                    st_digest = digest;
                    st_model = model;
                    st_compiled = compile_model t model;
                    st_mtime = st.Unix.st_mtime;
                    st_size = st.Unix.st_size;
                  }
                  :: !staged;
                results := (key, Ok digest) :: !results
            end
          end
        end
      end)
    files;
  t.staged <- (if !all_ok then Some (List.rev !staged) else None);
  List.rev !results

let staged t = Option.is_some t.staged

let commit t =
  match t.staged with
  | None -> Error "nothing staged (run reload-stage first, and it must succeed)"
  | Some staged ->
    t.staged <- None;
    let events = ref [] in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun s ->
        Hashtbl.replace seen s.st_key ();
        let old = Hashtbl.find_opt t.entries s.st_key in
        let same_bytes =
          match old with Some e -> String.equal e.digest s.st_digest | None -> false
        in
        if not same_bytes then begin
          let generation, previous =
            match old with
            | Some e -> (e.generation + 1, Some e.model)
            | None -> (1, None)
          in
          Hashtbl.replace t.entries s.st_key
            {
              key = s.st_key;
              path = s.st_path;
              generation;
              digest = s.st_digest;
              model = s.st_model;
              compiled = s.st_compiled;
              previous;
              mtime = s.st_mtime;
              size = s.st_size;
            };
          t.reloads <- t.reloads + 1;
          events := Loaded { key = s.st_key; generation } :: !events
        end)
      staged;
    Hashtbl.iter
      (fun key _ ->
        if not (Hashtbl.mem seen key) then events := Removed key :: !events)
      (Hashtbl.copy t.entries);
    List.iter
      (fun ev -> match ev with Removed key -> Hashtbl.remove t.entries key | _ -> ())
      !events;
    Ok (List.rev !events)

let find t key = Hashtbl.find_opt t.entries key

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> String.compare a.key b.key)

let reloads t = t.reloads
let load_failures t = t.load_failures
let compiles t = t.compiles
let compile_wall_s t = t.compile_wall_s
