(** The serving model registry.

    A registry watches one directory of registry-format model files
    ([<key>.vmodel], the {!Violet.Pipeline.export_model} envelope) and keeps
    the latest {e good} generation of each key in memory:

    - every successful (re)load bumps the key's generation counter and
      retains the previous model, so mode-3a upgrade checks can compare "the
      model before the last hot reload" against the current one;
    - a file whose envelope fails verification (checksum mismatch, truncated,
      wrong version — e.g. a write that was killed half-way) is {e rejected}
      and the previous generation keeps serving;
    - swap is atomic per key: readers either see the old entry or the fully
      loaded new one, never a half-state.

    Reloading is poll-based: {!refresh} re-examines the directory and is
    cheap when nothing changed (a stat per file).  The server calls it
    between batches. *)

type entry = {
  key : string;
  path : string;
  generation : int;  (** 1 on first load, +1 per successful reload *)
  digest : string;  (** md5 hex of the model payload *)
  model : Vmodel.Impact_model.t;
  compiled : Vmodel.Compiled_model.t option;
      (** decision tables compiled at load/stage time (DESIGN.md Section
          5j); [None] when the registry was created with [~compile:false].
          Reused across generation bumps whose digest is unchanged. *)
  previous : Vmodel.Impact_model.t option;
      (** the generation this one replaced; [None] for generation 1 *)
  mtime : float;
  size : int;
}

type event =
  | Loaded of { key : string; generation : int }
  | Rejected of { key : string; reason : string }
      (** verification or parse failure; the old generation (if any) is
          still live *)
  | Removed of string  (** the file disappeared; the key was dropped *)

val event_to_string : event -> string

type t

val create : ?compile:bool -> ?joint_max_nodes:int -> dir:string -> unit -> t
(** No I/O happens until {!refresh}.  [compile] (default [true]) builds a
    {!Vmodel.Compiled_model} for every freshly parsed model at load/stage
    time; [joint_max_nodes] (default 1_000) is the joint-input budget its
    feasibility table is keyed to — pass the checker budget the server will
    query with. *)

val dir : t -> string

val refresh : ?force:bool -> t -> event list
(** Rescan the directory.  Unchanged files (same mtime and size) are skipped
    unless [force] is set — tests that rewrite a file within stat
    granularity pass [~force:true].  A touched file whose envelope digest
    still matches the live generation's only refreshes the stat cache: no
    re-parse, no recompile, no generation bump. *)

val find : t -> string -> entry option
val entries : t -> entry list
(** All live entries, sorted by key. *)

val reloads : t -> int
(** Successful loads (including first loads) since {!create}. *)

val load_failures : t -> int
(** Rejected loads since {!create}. *)

val compiles : t -> int
(** Models compiled into decision tables since {!create} (digest-unchanged
    reloads and stages reuse the live artifact and do not count). *)

val compile_wall_s : t -> float
(** Total wall-clock time spent compiling — the measured load-time tax. *)

(** {2 Two-phase reload}

    The fleet-wide hot-reload discipline: every shard runs {!stage} — which
    verifies each file in the directory (envelope checksum, version, parse)
    and holds the loaded models back from the live table — and only when
    all shards staged successfully does the router ask each to {!commit},
    flipping the staged set in.  A shard that cannot load the new files
    fails the stage and the whole fleet keeps serving the old generation,
    so mixed-generation answers never escape. *)

val stage : t -> (string * (string, string) result) list
(** Verify every model file in the directory without touching the live
    table.  Returns, per key, the payload digest ([Ok]) or the rejection
    reason ([Error]).  The staged set is retained for {!commit} only when
    every file verified. *)

val staged : t -> bool
(** A successful {!stage} is pending. *)

val commit : t -> (event list, string) result
(** Flip the staged set into the live table: changed digests bump the key's
    generation (retaining the previous model for mode 3a), unchanged ones
    are no-ops, keys whose files disappeared are dropped.  [Error] when no
    successful stage is pending.  Consumes the staged set either way. *)

val model_file : dir:string -> key:string -> string
(** The path a key is served from: [<dir>/<key>.vmodel]. *)
