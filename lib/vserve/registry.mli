(** The serving model registry.

    A registry watches one directory of registry-format model files
    ([<key>.vmodel], the {!Violet.Pipeline.export_model} envelope) and keeps
    the latest {e good} generation of each key in memory:

    - every successful (re)load bumps the key's generation counter and
      retains the previous model, so mode-3a upgrade checks can compare "the
      model before the last hot reload" against the current one;
    - a file whose envelope fails verification (checksum mismatch, truncated,
      wrong version — e.g. a write that was killed half-way) is {e rejected}
      and the previous generation keeps serving;
    - swap is atomic per key: readers either see the old entry or the fully
      loaded new one, never a half-state.

    Reloading is poll-based: {!refresh} re-examines the directory and is
    cheap when nothing changed (a stat per file).  The server calls it
    between batches. *)

type entry = {
  key : string;
  path : string;
  generation : int;  (** 1 on first load, +1 per successful reload *)
  digest : string;  (** md5 hex of the model payload *)
  model : Vmodel.Impact_model.t;
  previous : Vmodel.Impact_model.t option;
      (** the generation this one replaced; [None] for generation 1 *)
  mtime : float;
  size : int;
}

type event =
  | Loaded of { key : string; generation : int }
  | Rejected of { key : string; reason : string }
      (** verification or parse failure; the old generation (if any) is
          still live *)
  | Removed of string  (** the file disappeared; the key was dropped *)

val event_to_string : event -> string

type t

val create : dir:string -> t
(** No I/O happens until {!refresh}. *)

val dir : t -> string

val refresh : ?force:bool -> t -> event list
(** Rescan the directory.  Unchanged files (same mtime and size) are skipped
    unless [force] is set — tests that rewrite a file within stat
    granularity pass [~force:true]. *)

val find : t -> string -> entry option
val entries : t -> entry list
(** All live entries, sorted by key. *)

val reloads : t -> int
(** Successful loads (including first loads) since {!create}. *)

val load_failures : t -> int
(** Rejected loads since {!create}. *)

val model_file : dir:string -> key:string -> string
(** The path a key is served from: [<dir>/<key>.vmodel]. *)
