type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest-exact float, forced to re-parse as a float: %.17g always
   round-trips an OCaml float, but prints integral values bare ("3"), which
   would come back as [Int] *)
let float_string f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let exact s = float_of_string s = f in
    let s15 = Printf.sprintf "%.15g" f in
    let s16 = Printf.sprintf "%.16g" f in
    if exact s15 then s15 else if exact s16 then s16 else s

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_string f)
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        print buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.pos))
let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c "bad \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek c with
    | Some ch ->
      v := (!v * 16) + digit ch;
      advance c
    | None -> fail c "truncated \\u escape"
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> begin
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        let hi = hex4 c in
        if hi >= 0xd800 && hi <= 0xdbff then begin
          (* surrogate pair *)
          expect c '\\';
          expect c 'u';
          let lo = hex4 c in
          if lo < 0xdc00 || lo > 0xdfff then fail c "unpaired surrogate"
          else add_utf8 buf (0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00))
        end
        else add_utf8 buf hi
      | _ -> fail c "bad escape");
      loop ()
    end
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; true
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      true
    | _ -> false
  in
  while consume () do () done;
  let s = String.sub c.text start (c.pos - start) in
  if s = "" then fail c "expected a number"
  else if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "malformed number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing bytes after value at byte %d" c.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List vs -> Some vs | _ -> None
