(** Request batching with coalescing.

    A drained admission queue is executed as one {e batch}: requests are
    grouped by a caller-supplied batching key (the server uses "model key +
    registry generation", so every request in a group runs against the very
    same model value and shares whatever the checker's solver layer memoizes
    for it), identical requests within a group are {e coalesced} — computed
    once, fanned out to every duplicate — and the distinct representatives
    run concurrently on a {!Vpar.Pool}.

    Order contract: the result array lines up index-for-index with the
    input, whatever the grouping did. *)

type stats = {
  groups : int;  (** distinct batching keys in this batch *)
  batched_requests : int;  (** requests that shared a group with >= 1 other *)
  coalesced : int;  (** requests served from a duplicate's computation *)
}

val run :
  jobs:int ->
  group_of:('a -> string) ->
  dedup_of:('a -> string) ->
  exec:('a -> 'b) ->
  'a array ->
  ('b * bool * bool) array * stats
(** [run ~jobs ~group_of ~dedup_of ~exec reqs] executes every distinct
    [(group_of r, dedup_of r)] pair once via [exec] ([jobs]-way parallel,
    order-preserving) and returns, per input index, [(result, batched,
    coalesced)]: [batched] when the request's group held more than one
    request, [coalesced] when its result was computed for another index.
    [exec] must be safe to call concurrently and must not raise. *)
