open Genspec

type outcome = {
  sh_spec : Genspec.t;
  sh_from_size : int;
  sh_to_size : int;
  sh_steps : int;
  sh_checks : int;
}

(* ------------------------------------------------------------------ *)
(* Single-node structural edits                                        *)
(* ------------------------------------------------------------------ *)

(* Every edit strictly reduces node count: dropping a node, or splicing a
   branch/loop/unreachable body in place of its wrapper. *)
let rec body_edits body =
  let rec at prefix = function
    | [] -> []
    | n :: rest ->
      let drop = List.rev_append prefix rest in
      let spliced =
        match n with
        | S_if (_, t, e) -> [ t; e ]
        | S_loop (_, b) | S_unreachable b -> [ b ]
        | _ -> []
      in
      let spliced = List.map (fun b -> List.rev_append prefix (b @ rest)) spliced in
      let nested = List.map (fun n' -> List.rev_append prefix (n' :: rest)) (node_edits n) in
      ((drop :: spliced) @ nested) @ at (n :: prefix) rest
  in
  at [] body

and node_edits = function
  | S_if (c, t, e) ->
    List.map (fun t' -> S_if (c, t', e)) (body_edits t)
    @ List.map (fun e' -> S_if (c, t, e')) (body_edits e)
  | S_loop (k, b) -> List.map (fun b' -> S_loop (k, b')) (body_edits b)
  | S_unreachable b -> List.map (fun b' -> S_unreachable b') (body_edits b)
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Reference checks for parameter drops                                *)
(* ------------------------------------------------------------------ *)

let rec node_refs_cparam name = function
  | S_cfg_read p -> String.equal p name
  | S_if (cond, t, e) ->
    List.exists (function A_cfg (p, _, _) -> String.equal p name | A_wl _ -> false) cond
    || List.exists (node_refs_cparam name) t
    || List.exists (node_refs_cparam name) e
  | S_loop (_, b) | S_unreachable b -> List.exists (node_refs_cparam name) b
  | S_op _ | S_call _ -> false

let rec node_refs_wparam name = function
  | S_if (cond, t, e) ->
    List.exists (function A_wl (w, _, _) -> String.equal w name | A_cfg _ -> false) cond
    || List.exists (node_refs_wparam name) t
    || List.exists (node_refs_wparam name) e
  | S_loop (_, b) | S_unreachable b -> List.exists (node_refs_wparam name) b
  | S_op _ | S_call _ | S_cfg_read _ -> false

let cparam_unreferenced t name =
  (not (List.exists (fun f -> List.exists (node_refs_cparam name) f.f_body) t.g_funcs))
  && (not (List.exists (fun (p : plant) -> String.equal p.p_param name) t.g_plants))
  && not (List.exists (String.equal name) t.g_decoys)

let wparam_unreferenced t name =
  (not (List.exists (fun f -> List.exists (node_refs_wparam name) f.f_body) t.g_funcs))
  && not
       (List.exists
          (fun (p : plant) -> List.exists (fun (w, _) -> String.equal w name) p.p_workload)
          t.g_plants)

(* ------------------------------------------------------------------ *)
(* Candidate reductions                                                *)
(* ------------------------------------------------------------------ *)

let rec strip_calls name body =
  List.filter_map
    (function
      | S_call f when String.equal f name -> None
      | S_if (c, t, e) -> Some (S_if (c, strip_calls name t, strip_calls name e))
      | S_loop (k, b) -> Some (S_loop (k, strip_calls name b))
      | S_unreachable b -> Some (S_unreachable (strip_calls name b))
      | n -> Some n)
    body

let drop_ith l i = List.filteri (fun j _ -> j <> i) l

let candidates t =
  let drop_funcs =
    (* never the root: the entry calls function 0 *)
    List.filteri (fun i _ -> i > 0) (List.mapi (fun i f -> (i, f)) t.g_funcs)
    |> List.map (fun (i, (f : fspec)) ->
           {
             t with
             g_funcs =
               drop_ith t.g_funcs i
               |> List.map (fun g -> { g with f_body = strip_calls f.f_name g.f_body });
           })
  in
  let body_edit_specs =
    List.concat
      (List.mapi
         (fun i (f : fspec) ->
           List.map
             (fun body' ->
               { t with g_funcs = List.mapi (fun j g -> if j = i then { g with f_body = body' } else g) t.g_funcs })
             (body_edits f.f_body))
         t.g_funcs)
  in
  let drop_plants =
    List.mapi (fun i _ -> { t with g_plants = drop_ith t.g_plants i }) t.g_plants
  in
  let drop_decoys =
    List.mapi (fun i _ -> { t with g_decoys = drop_ith t.g_decoys i }) t.g_decoys
  in
  let drop_cparams =
    List.mapi (fun i p -> (i, p)) t.g_cparams
    |> List.filter (fun (_, (p : cparam)) -> cparam_unreferenced t p.c_name)
    |> List.map (fun (i, _) -> { t with g_cparams = drop_ith t.g_cparams i })
  in
  let drop_wparams =
    List.mapi (fun i p -> (i, p)) t.g_wparams
    |> List.filter (fun (_, (p : wparam)) -> wparam_unreferenced t p.w_name)
    |> List.map (fun (i, _) -> { t with g_wparams = drop_ith t.g_wparams i })
  in
  drop_funcs @ body_edit_specs @ drop_plants @ drop_decoys @ drop_cparams @ drop_wparams
  |> List.filter (fun c -> match validate c with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)

let shrink ?(max_checks = 150) ~still_fails t =
  let checks = ref 0 in
  let steps = ref 0 in
  let rec improve current =
    if !checks >= max_checks then current
    else begin
      let rec first = function
        | [] -> None
        | c :: rest ->
          if !checks >= max_checks then None
          else begin
            incr checks;
            if still_fails c then Some c else first rest
          end
      in
      match first (candidates current) with
      | Some smaller ->
        incr steps;
        improve smaller
      | None -> current
    end
  in
  let from_size = size t in
  let shrunk = improve t in
  let to_size = size shrunk in
  let shrunk =
    if !steps = 0 then shrunk
    else
      {
        shrunk with
        g_trail =
          shrunk.g_trail
          @ [ Printf.sprintf "shrunk: %d -> %d nodes in %d steps" from_size to_size !steps ];
      }
  in
  { sh_spec = shrunk; sh_from_size = from_size; sh_to_size = to_size; sh_steps = !steps; sh_checks = !checks }
