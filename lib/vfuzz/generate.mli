(** Seeded generation of random-but-well-formed target systems.

    Every generated system is well-formed by construction ({!Genspec.validate}
    passes, the lowering builds, the call graph is a forward DAG) and carries
    {e planted ground truth}: specious parameters are injected as branches
    whose poor side executes primitives orders of magnitude costlier than the
    fast side (fsync, DNS, direct I/O against the environment's cost model),
    optionally gated behind a workload predicate — the config/workload
    combination recorded in {!Genspec.plant}.  Decoy parameters are injected
    the same way but with both branch sides within the differential
    threshold, so a correct pipeline must flag every plant and no decoy.

    Determinism contract: [spec ~seed ~index] is a pure function of
    [(profile, seed, index)] — corpus member 17 of seed 42 is the same
    system on every machine, regardless of how many other members were
    generated or in what order ({!Sprng.split_at}). *)

type profile = {
  funcs : int * int;  (** min/max functions per system *)
  cparams : int * int;
  wparams : int * int;
  plants : int * int;
  decoys : int * int;
  filler : int * int;  (** filler statements per function *)
}

val default_profile : profile
(** Mini-fixture scale: 3–6 functions, 4–8 config parameters, 1–2 plants,
    1–3 decoys — large enough to exercise slicing and related-parameter
    analysis, small enough that a full pipeline run stays in the tens of
    milliseconds. *)

val spec : ?profile:profile -> seed:int -> index:int -> unit -> Genspec.t
(** The [index]-th system of the corpus rooted at [seed]. *)

val corpus :
  ?profile:profile -> ?mutate_fraction:float -> seed:int -> count:int -> unit ->
  Genspec.t list
(** [count] systems; a [mutate_fraction] (default 0.3) of them additionally
    run through {!Mutate.apply} — the generate-then-mutate loop — with the
    mutation recorded in the spec's trail and its ground truth updated. *)
