type verdict = {
  v_system : string;
  v_plants : (string * bool) list;
  v_decoys : (string * bool) list;
  v_errors : (string * string) list;
}

type score = {
  s_systems : int;
  s_plants : int;
  s_detected : int;
  s_decoys : int;
  s_flagged : int;
  s_errors : int;
  s_recall : float;
  s_precision : float;
}

let mentions param (row : Vmodel.Cost_row.t) =
  List.exists
    (fun c ->
      List.exists
        (fun (v : Vsmt.Expr.var) -> String.equal v.Vsmt.Expr.name param)
        (Vsmt.Expr.vars c))
    row.Vmodel.Cost_row.config_constraints

let score_spec ?(opts = Oracle.default_opts) (spec : Genspec.t) =
  let target = Genspec.to_target spec in
  let registry = target.Violet.Pipeline.registry in
  let errors = ref [] in
  let plants =
    List.map
      (fun (pl : Genspec.plant) ->
        let detected =
          match Violet.Pipeline.analyze ~opts target pl.Genspec.p_param with
          | Error e ->
            errors := (pl.Genspec.p_param, Violet.Pipeline.error_to_string e) :: !errors;
            false
          | Ok a ->
            let param = Vruntime.Config_registry.find registry pl.Genspec.p_param in
            let poor =
              [ (pl.Genspec.p_param, Vruntime.Config_registry.decode param pl.Genspec.p_poor) ]
            in
            Violet.Detect.detected registry a ~poor
        in
        (pl.Genspec.p_param, detected))
      spec.Genspec.g_plants
  in
  let decoys =
    List.map
      (fun d ->
        let flagged =
          match Violet.Pipeline.analyze ~opts target d with
          | Error (Violet.Pipeline.Unused_parameter _) ->
            (* a declared-but-never-read decoy: the pipeline refusing to
               analyze it is the right answer *)
            false
          | Error e ->
            errors := (d, Violet.Pipeline.error_to_string e) :: !errors;
            false
          | Ok a ->
            List.exists (mentions d)
              (Vmodel.Impact_model.poor_rows a.Violet.Pipeline.model)
        in
        (d, flagged))
      spec.Genspec.g_decoys
  in
  {
    v_system = spec.Genspec.g_name;
    v_plants = plants;
    v_decoys = decoys;
    v_errors = List.rev !errors;
  }

let aggregate verdicts =
  let count sel = List.fold_left (fun n v -> n + List.length (sel v)) 0 verdicts in
  let hits sel = List.fold_left (fun n v -> n + List.length (List.filter snd (sel v))) 0 verdicts in
  let plants = count (fun v -> v.v_plants) in
  let detected = hits (fun v -> v.v_plants) in
  let decoys = count (fun v -> v.v_decoys) in
  let flagged = hits (fun v -> v.v_decoys) in
  let errors = count (fun v -> v.v_errors) in
  {
    s_systems = List.length verdicts;
    s_plants = plants;
    s_detected = detected;
    s_decoys = decoys;
    s_flagged = flagged;
    s_errors = errors;
    s_recall = (if plants = 0 then 1.0 else float_of_int detected /. float_of_int plants);
    s_precision =
      (if detected + flagged = 0 then 1.0
       else float_of_int detected /. float_of_int (detected + flagged));
  }

let run ?opts specs =
  let verdicts = List.map (fun s -> score_spec ?opts s) specs in
  (verdicts, aggregate verdicts)
