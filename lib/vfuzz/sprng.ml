(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state advanced by
   a weyl constant ("gamma"), output finalized by a murmur-style mixer.
   Splitting draws a fresh state and a fresh odd gamma from the parent, so
   child streams never share the parent's orbit. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* gamma mixer (variant constants) + the "enough transitions" fixup keeping
   every gamma odd and bit-diverse *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let transitions =
    let x = Int64.logxor z (Int64.shift_right_logical z 1) in
    let rec popcount acc x =
      if Int64.equal x 0L then acc
      else popcount (acc + 1) (Int64.logand x (Int64.sub x 1L))
    in
    popcount 0 x
  in
  if transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let make seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let split t =
  let s = next_seed t in
  let g = next_seed t in
  { state = mix64 s; gamma = mix_gamma g }

let split_at t k =
  (* keyed derivation, not an advance: child state folds the key into the
     parent's current position, so the same (t, k) always yields the same
     stream regardless of sibling consumption *)
  let key = Int64.add t.state (Int64.mul (Int64.of_int (k + 1)) golden_gamma) in
  { state = mix64 key; gamma = mix_gamma (mix64 (Int64.logxor key t.gamma)) }

let int t bound =
  if bound <= 0 then invalid_arg "Sprng.int: bound must be positive";
  (* rejection-free for our small bounds: fold 62 nonnegative bits onto
     [0, bound) — 62, not 63, so the value fits OCaml's native int *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let range t ~lo ~hi =
  if lo > hi then invalid_arg "Sprng.range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.equal (Int64.logand (bits64 t) 1L) 1L

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else
    let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    v /. 9007199254740992. (* 2^53 *) < p

let choose t = function
  | [] -> invalid_arg "Sprng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 pairs in
  if total <= 0 then invalid_arg "Sprng.choose_weighted: no positive weight";
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Sprng.choose_weighted: impossible"
    | (x, w) :: rest ->
      let acc = acc + max 0 w in
      if pick < acc then x else go acc rest
  in
  go 0 pairs

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let lowercase_ident t ~len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))
