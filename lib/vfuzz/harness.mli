(** Scoring the pipeline against planted ground truth.

    Every generated system knows which of its parameters are specious (the
    plants, with their poor values) and which merely look configuration-like
    (the decoys).  The harness runs the real pipeline over each, scores
    detection with the paper's case-level verdict ({!Violet.Detect.detected}),
    and aggregates recall (plants detected / plants) and precision (plants
    detected / (plants detected + decoys flagged)) over a corpus. *)

type verdict = {
  v_system : string;
  v_plants : (string * bool) list;  (** plant param, detected? *)
  v_decoys : (string * bool) list;  (** decoy param, wrongly flagged? *)
  v_errors : (string * string) list;  (** param, analysis error (informational) *)
}

type score = {
  s_systems : int;
  s_plants : int;
  s_detected : int;
  s_decoys : int;
  s_flagged : int;
  s_errors : int;
  s_recall : float;  (** 1.0 when there are no plants *)
  s_precision : float;  (** 1.0 when nothing was detected or flagged *)
}

val score_spec : ?opts:Violet.Pipeline.options -> Genspec.t -> verdict
(** Analyze each plant and decoy parameter of one system (jobs/slice as in
    [opts], default {!Oracle.default_opts}).  A plant counts detected when
    the poor rows of its analysis enclose the planted poor value; a decoy
    counts flagged when its analysis has any poor row mentioning it.  An
    unused-parameter error on a decoy is the correct answer (not flagged,
    not an error). *)

val aggregate : verdict list -> score

val run : ?opts:Violet.Pipeline.options -> Genspec.t list -> verdict list * score
