open Genspec

type profile = {
  funcs : int * int;
  cparams : int * int;
  wparams : int * int;
  plants : int * int;
  decoys : int * int;
  filler : int * int;
}

let default_profile =
  {
    funcs = (3, 6);
    cparams = (4, 8);
    wparams = (2, 3);
    plants = (1, 2);
    decoys = (1, 3);
    filler = (2, 5);
  }

let pick rng (lo, hi) = Sprng.range rng ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Parameter shapes                                                    *)
(* ------------------------------------------------------------------ *)

let gen_cparam rng i =
  let name = Printf.sprintf "p%d_%s" i (Sprng.lowercase_ident rng ~len:4) in
  let kind =
    Sprng.choose_weighted rng
      [
        `Bool, 4;
        `Int (Sprng.choose rng [ 1; 2; 8; 100; 65536 ]), 4;
        `Enum (2 + Sprng.int rng 3), 2;
      ]
  in
  match kind with
  | `Bool -> { c_name = name; c_kind = C_bool; c_default = Sprng.int rng 2 }
  | `Int hi ->
    { c_name = name; c_kind = C_int { lo = 0; hi }; c_default = Sprng.range rng ~lo:0 ~hi }
  | `Enum n ->
    {
      c_name = name;
      c_kind = C_enum (List.init n (Printf.sprintf "v%d"));
      c_default = Sprng.int rng n;
    }

let gen_wparam rng i =
  let hi = Sprng.choose rng [ 1; 8; 100; 1024 ] in
  { w_name = Printf.sprintf "w%d_%s" i (Sprng.lowercase_ident rng ~len:3); w_lo = 0; w_hi = hi }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Filler must stay far under the plants' cost signal (fsync 8 ms, DNS
   20 ms on the default environment): cheap compute, small buffered I/O,
   cache and allocator touches.  No fsync/DNS/pwrite outside plants. *)
let cheap_op rng =
  Sprng.choose_weighted rng
    [
      O_compute (10 + Sprng.int rng 490), 5;
      O_buffered_write (64 + Sprng.int rng 4032), 2;
      O_buffered_read (64 + Sprng.int rng 4032), 2;
      O_log_append (32 + Sprng.int rng 480), 2;
      O_cache_lookup, 2;
      O_malloc (128 + Sprng.int rng 8064), 1;
      O_mutex_pair, 1;
    ]

let expensive_ops rng =
  Sprng.choose rng
    [
      [ O_fsync ];
      [ O_fsync; O_pwrite (16384 + Sprng.int rng 49152) ];
      [ O_dns_lookup ];
      [ O_pwrite (262144 + Sprng.int rng 262144) ];
      [ O_fsync; O_fsync ];
    ]

(* A filler statement: cheap op, occasionally wrapped in the structures the
   IR supports — a bounded loop, a workload-conditioned branch with both
   sides cheap, an unreachable block, a config read that never reaches a
   predicate.  These are exactly the Builder edge shapes the satellite tests
   pin (function with no branches, unreachable block, read-but-never-
   branched parameter). *)
let filler_node rng (wparams : wparam list) =
  match Sprng.int rng 10 with
  | 0 | 1 ->
    let k = 2 + Sprng.int rng 2 in
    S_loop (k, [ S_op (cheap_op rng) ])
  | 2 when wparams <> [] ->
    (* workload-conditioned, both sides cheap and metric-balanced: the
       branch forks symbolic states without creating a specious signal *)
    let w = Sprng.choose rng wparams in
    let cut = Sprng.range rng ~lo:w.w_lo ~hi:w.w_hi in
    let a = 20 + Sprng.int rng 200 in
    S_if
      ( [ A_wl (w.w_name, Vsmt.Expr.Ge, cut) ],
        [ S_op (O_compute a) ],
        [ S_op (O_compute (a + Sprng.int rng (a / 2 + 1))) ] )
  | 3 -> S_unreachable [ S_op (cheap_op rng) ]
  | _ -> S_op (cheap_op rng)

let plant_node rng (wparams : wparam list) (p : cparam) =
  let lo, hi = cparam_domain p in
  let poor = Sprng.range rng ~lo ~hi in
  let good =
    if poor = lo then poor + 1
    else if poor = hi then poor - 1
    else if Sprng.bool rng then poor + 1
    else poor - 1
  in
  let guard, workload =
    if wparams <> [] && Sprng.bool rng then begin
      let w = Sprng.choose rng wparams in
      (* the guard must be satisfiable on both sides so the skipped-plant
         states exist too; the recorded trigger value satisfies it *)
      let cut = Sprng.range rng ~lo:(w.w_lo + 1) ~hi:w.w_hi in
      ([ A_wl (w.w_name, Vsmt.Expr.Ge, cut) ], [ (w.w_name, cut) ])
    end
    else ([], [])
  in
  let cheap = if Sprng.bool rng then [ S_op (O_compute (20 + Sprng.int rng 100)) ] else [] in
  let node =
    S_if
      ( A_cfg (p.c_name, Vsmt.Expr.Eq, poor) :: guard,
        List.map (fun o -> S_op o) (expensive_ops rng),
        cheap )
  in
  (node, { p_param = p.c_name; p_poor = poor; p_good = good; p_workload = workload })

(* A decoy branch: the parameter sits in a predicate, but both sides stay
   within the differential threshold on every metric — compute-only and
   within 2x of each other. *)
let decoy_branch_node rng (p : cparam) =
  let lo, hi = cparam_domain p in
  let v = Sprng.range rng ~lo ~hi in
  let op = Sprng.choose rng [ Vsmt.Expr.Eq; Vsmt.Expr.Le; Vsmt.Expr.Ge ] in
  let a = 40 + Sprng.int rng 300 in
  S_if
    ( [ A_cfg (p.c_name, op, v) ],
      [ S_op (O_compute a) ],
      [ S_op (O_compute (a + Sprng.int rng (a / 2 + 1))) ] )

(* ------------------------------------------------------------------ *)
(* Whole systems                                                       *)
(* ------------------------------------------------------------------ *)

let spec ?(profile = default_profile) ~seed ~index () =
  let rng = Sprng.split_at (Sprng.make seed) index in
  let n_funcs = pick rng profile.funcs in
  let n_cparams = pick rng profile.cparams in
  let n_wparams = pick rng profile.wparams in
  let n_plants = min (pick rng profile.plants) n_cparams in
  let n_decoys = min (pick rng profile.decoys) (n_cparams - n_plants) in
  let cparams = List.init n_cparams (gen_cparam rng) in
  let wparams = List.init n_wparams (gen_wparam rng) in
  let shuffled = Sprng.shuffle rng cparams in
  let plant_params = List.filteri (fun i _ -> i < n_plants) shuffled in
  let decoy_params =
    List.filteri (fun i _ -> i >= n_plants && i < n_plants + n_decoys) shuffled
  in
  (* each decoy takes one of three shapes: a balanced branch, a read that
     never reaches a predicate, or a declared-but-never-read parameter *)
  let decoys =
    List.map
      (fun (p : cparam) -> (p, Sprng.choose_weighted rng [ `Branch, 3; `Read, 1; `Unused, 1 ]))
      decoy_params
  in
  let planted = List.map (fun p -> plant_node rng wparams p) plant_params in
  (* a plant parameter's default must be its good value: with two plants in
     one system, a default sitting on plant A's poor value would fire A's
     expensive side on every path of plant B's analysis (A stays concrete at
     its default there), burying B's signal under a constant costly
     baseline.  It is also the paper's scenario — the deployed default is
     fine, the specious setting is the deviation. *)
  let cparams =
    List.map
      (fun (c : cparam) ->
        match
          List.find_opt (fun (_, pl) -> String.equal pl.p_param c.c_name) planted
        with
        | Some (_, pl) -> { c with c_default = pl.p_good }
        | None -> c)
      cparams
  in
  let decoy_nodes =
    List.filter_map
      (fun ((p : cparam), shape) ->
        match shape with
        | `Branch -> Some (decoy_branch_node rng p)
        | `Read -> Some (S_cfg_read p.c_name)
        | `Unused -> None)
      decoys
  in
  (* distribute the interesting nodes over the functions, then pad with
     filler.  Function f_i only ever calls f_j with j > i. *)
  let fnames = List.init n_funcs (Printf.sprintf "f%d") in
  let assignments = Array.make n_funcs [] in
  List.iter
    (fun node ->
      let slot = Sprng.int rng n_funcs in
      assignments.(slot) <- node :: assignments.(slot))
    (List.map fst planted @ decoy_nodes);
  let funcs =
    List.mapi
      (fun i name ->
        let filler = List.init (pick rng profile.filler) (fun _ -> filler_node rng wparams) in
        (* the call chain keeping every function reachable: f_i calls
           f_{i+1}, plus an occasional extra forward call *)
        let chain = if i + 1 < n_funcs then [ S_call (List.nth fnames (i + 1)) ] else [] in
        let extra =
          if i + 2 < n_funcs && Sprng.chance rng 0.3 then
            [ S_call (List.nth fnames (Sprng.range rng ~lo:(i + 2) ~hi:(n_funcs - 1))) ]
          else []
        in
        let body =
          Sprng.shuffle rng (assignments.(i) @ filler) @ chain @ extra
        in
        { f_name = name; f_body = body })
      fnames
  in
  let t =
    {
      g_name = Printf.sprintf "fz-s%d-i%d" seed index;
      g_seed = seed;
      g_cparams = cparams;
      g_wparams = wparams;
      g_funcs = funcs;
      g_plants = List.map snd planted;
      g_decoys = List.map (fun ((p : cparam), _) -> p.c_name) decoys;
      g_trail = [];
    }
  in
  match validate t with
  | Ok () -> t
  | Error msg ->
    (* a generator bug, not an input problem: fail loudly with provenance *)
    failwith (Printf.sprintf "Generate.spec produced an invalid system (%s): %s" t.g_name msg)

let corpus ?profile ?(mutate_fraction = 0.3) ~seed ~count () =
  let mrng = Sprng.split_at (Sprng.make seed) (-1) in
  List.init count (fun index ->
      let s = spec ?profile ~seed ~index () in
      let r = Sprng.split_at mrng index in
      if Sprng.chance r mutate_fraction then fst (Mutate.apply r s) else s)
