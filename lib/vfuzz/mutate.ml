open Genspec

type kind = Flip_const | Swap_predicate | Widen_range | Splice_hot_loop

let kind_to_string = function
  | Flip_const -> "flip-const"
  | Swap_predicate -> "swap-predicate"
  | Widen_range -> "widen-range"
  | Splice_hot_loop -> "splice-hot-loop"

(* bottom-up node rewrite over every function body *)
let rec map_body f body = List.map (map_node f) body

and map_node f = function
  | S_if (c, t, e) -> f (S_if (c, map_body f t, map_body f e))
  | S_loop (k, b) -> f (S_loop (k, map_body f b))
  | S_unreachable b -> f (S_unreachable (map_body f b))
  | n -> f n

let map_funcs f t =
  { t with g_funcs = List.map (fun fn -> { fn with f_body = map_body f fn.f_body }) t.g_funcs }

let rec fold_body f acc body = List.fold_left (fold_node f) acc body

and fold_node f acc = function
  | S_if (_, t, e) as n -> fold_body f (fold_body f (f acc n) t) e
  | (S_loop (_, b) | S_unreachable b) as n -> fold_body f (f acc n) b
  | n -> f acc n

let fold_funcs f acc t = List.fold_left (fun acc fn -> fold_body f acc fn.f_body) acc t.g_funcs

(* ------------------------------------------------------------------ *)
(* Flip a constant                                                     *)
(* ------------------------------------------------------------------ *)

(* Only cheap magnitudes are perturbed, and only within the cheap band, so
   a benign site cannot silently cross the cost threshold and invalidate
   the plant record. *)
let flip_op rng = function
  | O_compute _ -> Some (O_compute (10 + Sprng.int rng 490))
  | O_buffered_write _ -> Some (O_buffered_write (64 + Sprng.int rng 4032))
  | O_buffered_read _ -> Some (O_buffered_read (64 + Sprng.int rng 4032))
  | O_log_append _ -> Some (O_log_append (32 + Sprng.int rng 480))
  | O_malloc _ -> Some (O_malloc (128 + Sprng.int rng 8064))
  | _ -> None

let flippable = function
  | S_op (O_compute _ | O_buffered_write _ | O_buffered_read _ | O_log_append _ | O_malloc _)
    ->
    true
  | _ -> false

let flip_const rng t =
  let sites = fold_funcs (fun acc n -> if flippable n then acc + 1 else acc) 0 t in
  if sites = 0 then None
  else begin
    let target = Sprng.int rng sites in
    let seen = ref (-1) in
    let t' =
      map_funcs
        (fun n ->
          if flippable n then begin
            incr seen;
            if !seen = target then
              match n with
              | S_op o -> (
                match flip_op rng o with Some o' -> S_op o' | None -> n)
              | _ -> n
            else n
          end
          else n)
        t
    in
    Some (t', Printf.sprintf "flip-const: re-drew cheap magnitude at site %d" target)
  end

(* ------------------------------------------------------------------ *)
(* Swap a plant's predicate                                            *)
(* ------------------------------------------------------------------ *)

let is_plant_if (pl : plant) = function
  | S_if (cond, _, _) ->
    List.exists
      (function
        | A_cfg (p, Vsmt.Expr.Eq, v) -> String.equal p pl.p_param && v = pl.p_poor
        | _ -> false)
      cond
  | _ -> false

let swap_predicate rng t =
  if t.g_plants = [] then None
  else begin
    let pl = Sprng.choose rng t.g_plants in
    let swapped = ref false in
    let t' =
      map_funcs
        (fun n ->
          if (not !swapped) && is_plant_if pl n then begin
            swapped := true;
            match n with
            | S_if (cond, th, el) ->
              S_if
                ( List.map
                    (function
                      | A_cfg (p, Vsmt.Expr.Eq, v)
                        when String.equal p pl.p_param && v = pl.p_poor ->
                        A_cfg (p, Vsmt.Expr.Eq, pl.p_good)
                      | a -> a)
                    cond,
                  th, el )
            | n -> n
          end
          else n)
        t
    in
    if not !swapped then None
    else begin
      let t' =
        {
          t' with
          g_plants =
            List.map
              (fun (p : plant) ->
                if p == pl then { p with p_poor = pl.p_good; p_good = pl.p_poor } else p)
              t'.g_plants;
          (* keep the plant-default invariant: the default follows the good
             value, so the swapped plant's poor side stays out of every other
             plant's concrete baseline *)
          g_cparams =
            List.map
              (fun (c : cparam) ->
                if String.equal c.c_name pl.p_param then { c with c_default = pl.p_poor }
                else c)
              t'.g_cparams;
        }
      in
      Some
        ( t',
          Printf.sprintf "swap-predicate: plant %s poor value %d -> %d" pl.p_param
            pl.p_poor pl.p_good )
    end
  end

(* ------------------------------------------------------------------ *)
(* Widen an int parameter's range                                      *)
(* ------------------------------------------------------------------ *)

let widen_range rng t =
  let ints =
    List.filter (fun p -> match p.c_kind with C_int _ -> true | _ -> false) t.g_cparams
  in
  if ints = [] then None
  else begin
    let p = Sprng.choose rng ints in
    let lo, hi = cparam_domain p in
    let hi' = (hi * 2) + 1 in
    let t' =
      {
        t with
        g_cparams =
          List.map
            (fun q ->
              if String.equal q.c_name p.c_name then { q with c_kind = C_int { lo; hi = hi' } }
              else q)
            t.g_cparams;
      }
    in
    Some (t', Printf.sprintf "widen-range: %s hi %d -> %d" p.c_name hi hi')
  end

(* ------------------------------------------------------------------ *)
(* Splice a hot loop around a plant's expensive side                   *)
(* ------------------------------------------------------------------ *)

let splice_hot_loop rng t =
  if t.g_plants = [] then None
  else begin
    let pl = Sprng.choose rng t.g_plants in
    let spliced = ref false in
    let t' =
      map_funcs
        (fun n ->
          if (not !spliced) && is_plant_if pl n then begin
            match n with
            | S_if (cond, th, el) when th <> [] ->
              spliced := true;
              S_if (cond, [ S_loop (2, th) ], el)
            | n -> n
          end
          else n)
        t
    in
    if not !spliced then None
    else
      Some (t', Printf.sprintf "splice-hot-loop: doubled plant %s's poor side" pl.p_param)
  end

(* ------------------------------------------------------------------ *)

let apply_kind rng kind t =
  let result =
    match kind with
    | Flip_const -> flip_const rng t
    | Swap_predicate -> swap_predicate rng t
    | Widen_range -> widen_range rng t
    | Splice_hot_loop -> splice_hot_loop rng t
  in
  Option.map
    (fun (t', desc) ->
      let t' = { t' with g_trail = t'.g_trail @ [ desc ] } in
      match validate t' with
      | Ok () -> (t', desc)
      | Error msg ->
        failwith
          (Printf.sprintf "Mutate.%s broke spec %s: %s" (kind_to_string kind) t.g_name msg))
    result

let apply rng t =
  let kinds =
    Sprng.shuffle rng [ Flip_const; Swap_predicate; Widen_range; Splice_hot_loop ]
  in
  let rec try_kinds = function
    | [] -> (t, "no-op: no applicable mutation")
    | k :: rest -> ( match apply_kind rng k t with Some r -> r | None -> try_kinds rest)
  in
  try_kinds kinds
