module Sexp = Vsmt.Sexp
module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

type ckind = C_bool | C_int of { lo : int; hi : int } | C_enum of string list
type cparam = { c_name : string; c_kind : ckind; c_default : int }
type wparam = { w_name : string; w_lo : int; w_hi : int }

type atom =
  | A_cfg of string * Vsmt.Expr.binop * int
  | A_wl of string * Vsmt.Expr.binop * int

type cond = atom list

type op =
  | O_fsync
  | O_pwrite of int
  | O_pread of int
  | O_buffered_write of int
  | O_buffered_read of int
  | O_net_send of int
  | O_dns_lookup
  | O_mutex_pair
  | O_log_append of int
  | O_cache_lookup
  | O_malloc of int
  | O_compute of int

type snode =
  | S_op of op
  | S_if of cond * snode list * snode list
  | S_loop of int * snode list
  | S_call of string
  | S_unreachable of snode list
  | S_cfg_read of string

type fspec = { f_name : string; f_body : snode list }

type plant = {
  p_param : string;
  p_poor : int;
  p_good : int;
  p_workload : (string * int) list;
}

type t = {
  g_name : string;
  g_seed : int;
  g_cparams : cparam list;
  g_wparams : wparam list;
  g_funcs : fspec list;
  g_plants : plant list;
  g_decoys : string list;
  g_trail : string list;
}

(* ------------------------------------------------------------------ *)
(* Size and domains                                                    *)
(* ------------------------------------------------------------------ *)

let rec node_size = function
  | S_op _ | S_call _ | S_cfg_read _ -> 1
  | S_if (cond, t, e) -> 1 + List.length cond + body_size t + body_size e
  | S_loop (_, b) | S_unreachable b -> 1 + body_size b

and body_size b = List.fold_left (fun acc n -> acc + node_size n) 0 b

let size t =
  (* every shrink edit must strictly reduce this, so count every component a
     candidate can drop: params, plant/decoy records, functions, body nodes *)
  List.length t.g_cparams + List.length t.g_wparams + List.length t.g_plants
  + List.length t.g_decoys
  + List.fold_left (fun acc f -> acc + 1 + body_size f.f_body) 0 t.g_funcs

let cparam_domain p =
  match p.c_kind with
  | C_bool -> (0, 1)
  | C_int { lo; hi } -> (lo, hi)
  | C_enum vs -> (0, List.length vs - 1)

let find_cparam t name = List.find_opt (fun p -> String.equal p.c_name name) t.g_cparams
let find_wparam t name = List.find_opt (fun p -> String.equal p.w_name name) t.g_wparams

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let is_comparison = function
  | Vsmt.Expr.Eq | Vsmt.Expr.Ne | Vsmt.Expr.Lt | Vsmt.Expr.Le | Vsmt.Expr.Gt
  | Vsmt.Expr.Ge ->
    true
  | _ -> false

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let unique what names =
    if List.length (List.sort_uniq String.compare names) = List.length names then Ok ()
    else fail "duplicate %s name" what
  in
  let* () = if t.g_funcs = [] then fail "spec has no functions" else Ok () in
  let* () = if t.g_cparams = [] then fail "spec has no config parameters" else Ok () in
  let* () = unique "config-parameter" (List.map (fun p -> p.c_name) t.g_cparams) in
  let* () = unique "workload-parameter" (List.map (fun p -> p.w_name) t.g_wparams) in
  let* () = unique "function" (List.map (fun f -> f.f_name) t.g_funcs) in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        let lo, hi = cparam_domain p in
        if p.c_default < lo || p.c_default > hi then
          fail "parameter %s: default %d outside [%d, %d]" p.c_name p.c_default lo hi
        else
          match p.c_kind with
          | C_enum vs when List.length vs < 2 -> fail "parameter %s: enum too small" p.c_name
          | C_int { lo; hi } when lo > hi -> fail "parameter %s: empty range" p.c_name
          | _ -> Ok ())
      (Ok ()) t.g_cparams
  in
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        if w.w_lo > w.w_hi then fail "workload %s: empty range" w.w_name else Ok ())
      (Ok ()) t.g_wparams
  in
  let check_atom = function
    | A_cfg (name, op, v) ->
      if not (is_comparison op) then fail "atom on %s: not a comparison" name
      else begin
        match find_cparam t name with
        | None -> fail "atom reads undeclared config parameter %s" name
        | Some p ->
          let lo, hi = cparam_domain p in
          if v < lo || v > hi then fail "atom on %s: constant %d outside domain" name v
          else Ok ()
      end
    | A_wl (name, op, _) ->
      if not (is_comparison op) then fail "atom on %s: not a comparison" name
      else if find_wparam t name = None then
        fail "atom reads undeclared workload parameter %s" name
      else Ok ()
  in
  (* calls may only go to strictly later functions: recursion-free by
     construction, so exploration depth is bounded *)
  let fname_index =
    List.mapi (fun i f -> (f.f_name, i)) t.g_funcs
  in
  let rec check_body caller_idx acc body =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        match n with
        | S_op _ -> Ok ()
        | S_cfg_read name ->
          if find_cparam t name = None then
            fail "cfg-read of undeclared parameter %s" name
          else Ok ()
        | S_call callee -> begin
          match List.assoc_opt callee fname_index with
          | None -> fail "call to undeclared function %s" callee
          | Some j when j <= caller_idx ->
            fail "call from %s to %s is not forward (recursion risk)"
              (List.nth t.g_funcs caller_idx).f_name callee
          | Some _ -> Ok ()
        end
        | S_loop (k, b) ->
          if k < 1 || k > 8 then fail "loop bound %d outside [1, 8]" k
          else check_body caller_idx (Ok ()) b
        | S_unreachable b -> check_body caller_idx (Ok ()) b
        | S_if (cond, th, el) ->
          let* () = List.fold_left (fun acc a -> let* () = acc in check_atom a) (Ok ()) cond in
          let* () = check_body caller_idx (Ok ()) th in
          check_body caller_idx (Ok ()) el)
      acc body
  in
  let* () =
    List.fold_left
      (fun acc (i, f) -> check_body i acc f.f_body)
      (Ok ())
      (List.mapi (fun i f -> (i, f)) t.g_funcs)
  in
  let* () =
    List.fold_left
      (fun acc (pl : plant) ->
        let* () = acc in
        match find_cparam t pl.p_param with
        | None -> fail "plant on undeclared parameter %s" pl.p_param
        | Some p ->
          let lo, hi = cparam_domain p in
          if pl.p_poor < lo || pl.p_poor > hi || pl.p_good < lo || pl.p_good > hi then
            fail "plant on %s: value outside domain" pl.p_param
          else if pl.p_poor = pl.p_good then fail "plant on %s: poor = good" pl.p_param
          else
            List.fold_left
              (fun acc (w, _) ->
                let* () = acc in
                if find_wparam t w = None then
                  fail "plant workload names undeclared parameter %s" w
                else Ok ())
              (Ok ()) pl.p_workload)
      (Ok ()) t.g_plants
  in
  List.fold_left
    (fun acc d ->
      let* () = acc in
      if find_cparam t d = None then fail "decoy %s is undeclared" d else Ok ())
    (Ok ()) t.g_decoys

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let registry_of t =
  Reg.make ~system:t.g_name
    (List.map
       (fun p ->
         match p.c_kind with
         | C_bool -> Reg.param_bool p.c_name ~default:(p.c_default = 1) "generated"
         | C_int { lo; hi } -> Reg.param_int p.c_name ~lo ~hi ~default:p.c_default "generated"
         | C_enum vs ->
           Reg.param_enum p.c_name ~values:vs ~default:(List.nth vs p.c_default) "generated")
       t.g_cparams)

let template_of t =
  Wl.template "load"
    (List.map (fun w -> Wl.wparam_int w.w_name ~lo:w.w_lo ~hi:w.w_hi "generated") t.g_wparams)

let lower_atom = function
  | A_cfg (name, op, v) -> Vir.Ast.Binop (op, Vir.Ast.Config name, Vir.Ast.Const v)
  | A_wl (name, op, v) -> Vir.Ast.Binop (op, Vir.Ast.Workload name, Vir.Ast.Const v)

let lower_cond = function
  | [] -> Vir.Ast.Const 1
  | a :: rest ->
    List.fold_left
      (fun acc atom -> Vir.Ast.Binop (Vsmt.Expr.And, acc, lower_atom atom))
      (lower_atom a) rest

let lower_op =
  let open Vir.Builder in
  function
  | O_fsync -> [ fsync ]
  | O_pwrite n -> [ pwrite (i n) ]
  | O_pread n -> [ pread (i n) ]
  | O_buffered_write n -> [ buffered_write (i n) ]
  | O_buffered_read n -> [ buffered_read (i n) ]
  | O_net_send n -> [ net_send (i n) ]
  | O_dns_lookup -> [ dns_lookup ]
  | O_mutex_pair -> [ mutex_lock; mutex_unlock ]
  | O_log_append n -> [ log_append (i n) ]
  | O_cache_lookup -> [ cache_lookup ]
  | O_malloc n -> [ malloc (i n) ]
  | O_compute n -> [ compute (i n) ]

let lower_body body =
  let open Vir.Builder in
  (* fresh local names per lowering run: loop counters and read sinks must
     not collide when a function holds several *)
  let fresh = ref 0 in
  let next prefix =
    incr fresh;
    Printf.sprintf "_%s%d" prefix !fresh
  in
  let rec go body = List.concat_map node body
  and node = function
    | S_op o -> lower_op o
    | S_call f -> [ call f [] ]
    | S_cfg_read p -> [ set (next "sink") (cfg p) ]
    | S_unreachable b -> [ if_ (i 0 ==. i 1) (go b) [] ]
    | S_if (cond, th, el) -> [ if_ (lower_cond cond) (go th) (go el) ]
    | S_loop (k, b) ->
      let c = next "loop" in
      [ set c (i 0); while_ (lv c <. i k) (go b @ [ set c (lv c +. i 1) ]) ]
  in
  go body

let to_target t =
  (match validate t with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "invalid spec %s: %s" t.g_name msg));
  let open Vir.Builder in
  let root = (List.hd t.g_funcs).f_name in
  let funcs =
    func "fz_main" [ trace_on; call root []; trace_off; ret_void ]
    :: List.map (fun f -> func f.f_name (lower_body f.f_body @ [ ret_void ])) t.g_funcs
  in
  {
    Violet.Pipeline.name = t.g_name;
    program = program ~name:t.g_name ~entry:"fz_main" funcs;
    registry = registry_of t;
    workloads = [ template_of t ];
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let format_version = 1

let binop_name = function
  | Vsmt.Expr.Eq -> "eq"
  | Vsmt.Expr.Ne -> "ne"
  | Vsmt.Expr.Lt -> "lt"
  | Vsmt.Expr.Le -> "le"
  | Vsmt.Expr.Gt -> "gt"
  | Vsmt.Expr.Ge -> "ge"
  | _ -> invalid_arg "Genspec: non-comparison operator in atom"

let binop_of_name = function
  | "eq" -> Some Vsmt.Expr.Eq
  | "ne" -> Some Vsmt.Expr.Ne
  | "lt" -> Some Vsmt.Expr.Lt
  | "le" -> Some Vsmt.Expr.Le
  | "gt" -> Some Vsmt.Expr.Gt
  | "ge" -> Some Vsmt.Expr.Ge
  | _ -> None

let sexp_of_atom = function
  | A_cfg (n, op, v) ->
    Sexp.list [ Sexp.atom "cfg"; Sexp.atom n; Sexp.atom (binop_name op); Sexp.int v ]
  | A_wl (n, op, v) ->
    Sexp.list [ Sexp.atom "wl"; Sexp.atom n; Sexp.atom (binop_name op); Sexp.int v ]

let sexp_of_op = function
  | O_fsync -> Sexp.list [ Sexp.atom "fsync" ]
  | O_pwrite n -> Sexp.list [ Sexp.atom "pwrite"; Sexp.int n ]
  | O_pread n -> Sexp.list [ Sexp.atom "pread"; Sexp.int n ]
  | O_buffered_write n -> Sexp.list [ Sexp.atom "buffered-write"; Sexp.int n ]
  | O_buffered_read n -> Sexp.list [ Sexp.atom "buffered-read"; Sexp.int n ]
  | O_net_send n -> Sexp.list [ Sexp.atom "net-send"; Sexp.int n ]
  | O_dns_lookup -> Sexp.list [ Sexp.atom "dns-lookup" ]
  | O_mutex_pair -> Sexp.list [ Sexp.atom "mutex-pair" ]
  | O_log_append n -> Sexp.list [ Sexp.atom "log-append"; Sexp.int n ]
  | O_cache_lookup -> Sexp.list [ Sexp.atom "cache-lookup" ]
  | O_malloc n -> Sexp.list [ Sexp.atom "malloc"; Sexp.int n ]
  | O_compute n -> Sexp.list [ Sexp.atom "compute"; Sexp.int n ]

let rec sexp_of_node = function
  | S_op o -> Sexp.list [ Sexp.atom "op"; sexp_of_op o ]
  | S_call f -> Sexp.list [ Sexp.atom "call"; Sexp.atom f ]
  | S_cfg_read p -> Sexp.list [ Sexp.atom "cfg-read"; Sexp.atom p ]
  | S_if (cond, th, el) ->
    Sexp.list
      [
        Sexp.atom "if";
        Sexp.list (List.map sexp_of_atom cond);
        Sexp.list (List.map sexp_of_node th);
        Sexp.list (List.map sexp_of_node el);
      ]
  | S_loop (k, b) ->
    Sexp.list [ Sexp.atom "loop"; Sexp.int k; Sexp.list (List.map sexp_of_node b) ]
  | S_unreachable b ->
    Sexp.list [ Sexp.atom "unreachable"; Sexp.list (List.map sexp_of_node b) ]

let sexp_of_cparam p =
  let kind =
    match p.c_kind with
    | C_bool -> Sexp.atom "bool"
    | C_int { lo; hi } -> Sexp.list [ Sexp.atom "int"; Sexp.int lo; Sexp.int hi ]
    | C_enum vs -> Sexp.list (Sexp.atom "enum" :: List.map Sexp.atom vs)
  in
  Sexp.list [ Sexp.atom p.c_name; kind; Sexp.int p.c_default ]

let sexp_of_wparam w =
  Sexp.list [ Sexp.atom w.w_name; Sexp.int w.w_lo; Sexp.int w.w_hi ]

let sexp_of_plant (p : plant) =
  Sexp.list
    [
      Sexp.atom p.p_param;
      Sexp.int p.p_poor;
      Sexp.int p.p_good;
      Sexp.list
        (List.map (fun (w, v) -> Sexp.list [ Sexp.atom w; Sexp.int v ]) p.p_workload);
    ]

let to_sexp t =
  Sexp.list
    [
      Sexp.atom "vfuzz-spec";
      Sexp.int format_version;
      Sexp.list [ Sexp.atom "name"; Sexp.atom t.g_name ];
      Sexp.list [ Sexp.atom "seed"; Sexp.int t.g_seed ];
      Sexp.list (Sexp.atom "cparams" :: List.map sexp_of_cparam t.g_cparams);
      Sexp.list (Sexp.atom "wparams" :: List.map sexp_of_wparam t.g_wparams);
      Sexp.list
        (Sexp.atom "funcs"
        :: List.map
             (fun f ->
               Sexp.list
                 [ Sexp.atom f.f_name; Sexp.list (List.map sexp_of_node f.f_body) ])
             t.g_funcs);
      Sexp.list (Sexp.atom "plants" :: List.map sexp_of_plant t.g_plants);
      Sexp.list (Sexp.atom "decoys" :: List.map Sexp.atom t.g_decoys);
      Sexp.list (Sexp.atom "trail" :: List.map Sexp.atom t.g_trail);
    ]

let to_string t = Sexp.to_string (to_sexp t)

(* --- parsing --- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let as_atom = function Sexp.Atom s -> s | Sexp.List _ -> bad "expected atom"

let as_int s =
  match Sexp.to_int s with Some n -> n | None -> bad "expected integer"

let as_list = function Sexp.List l -> l | Sexp.Atom a -> bad "expected list, got %s" a

let atom_of_sexp s =
  match as_list s with
  | [ Sexp.Atom kind; Sexp.Atom name; Sexp.Atom opn; v ] -> begin
    let op =
      match binop_of_name opn with Some op -> op | None -> bad "unknown operator %s" opn
    in
    match kind with
    | "cfg" -> A_cfg (name, op, as_int v)
    | "wl" -> A_wl (name, op, as_int v)
    | k -> bad "unknown atom kind %s" k
  end
  | _ -> bad "malformed atom"

let op_of_sexp s =
  match as_list s with
  | [ Sexp.Atom "fsync" ] -> O_fsync
  | [ Sexp.Atom "pwrite"; n ] -> O_pwrite (as_int n)
  | [ Sexp.Atom "pread"; n ] -> O_pread (as_int n)
  | [ Sexp.Atom "buffered-write"; n ] -> O_buffered_write (as_int n)
  | [ Sexp.Atom "buffered-read"; n ] -> O_buffered_read (as_int n)
  | [ Sexp.Atom "net-send"; n ] -> O_net_send (as_int n)
  | [ Sexp.Atom "dns-lookup" ] -> O_dns_lookup
  | [ Sexp.Atom "mutex-pair" ] -> O_mutex_pair
  | [ Sexp.Atom "log-append"; n ] -> O_log_append (as_int n)
  | [ Sexp.Atom "cache-lookup" ] -> O_cache_lookup
  | [ Sexp.Atom "malloc"; n ] -> O_malloc (as_int n)
  | [ Sexp.Atom "compute"; n ] -> O_compute (as_int n)
  | Sexp.Atom o :: _ -> bad "unknown op %s" o
  | _ -> bad "malformed op"

let rec node_of_sexp s =
  match as_list s with
  | [ Sexp.Atom "op"; o ] -> S_op (op_of_sexp o)
  | [ Sexp.Atom "call"; Sexp.Atom f ] -> S_call f
  | [ Sexp.Atom "cfg-read"; Sexp.Atom p ] -> S_cfg_read p
  | [ Sexp.Atom "if"; cond; th; el ] ->
    S_if
      ( List.map atom_of_sexp (as_list cond),
        List.map node_of_sexp (as_list th),
        List.map node_of_sexp (as_list el) )
  | [ Sexp.Atom "loop"; k; b ] -> S_loop (as_int k, List.map node_of_sexp (as_list b))
  | [ Sexp.Atom "unreachable"; b ] -> S_unreachable (List.map node_of_sexp (as_list b))
  | Sexp.Atom n :: _ -> bad "unknown node %s" n
  | _ -> bad "malformed node"

let cparam_of_sexp s =
  match as_list s with
  | [ Sexp.Atom name; kind; default ] ->
    let c_kind =
      match kind with
      | Sexp.Atom "bool" -> C_bool
      | Sexp.List [ Sexp.Atom "int"; lo; hi ] -> C_int { lo = as_int lo; hi = as_int hi }
      | Sexp.List (Sexp.Atom "enum" :: vs) -> C_enum (List.map as_atom vs)
      | _ -> bad "malformed kind for %s" name
    in
    { c_name = name; c_kind; c_default = as_int default }
  | _ -> bad "malformed cparam"

let wparam_of_sexp s =
  match as_list s with
  | [ Sexp.Atom name; lo; hi ] -> { w_name = name; w_lo = as_int lo; w_hi = as_int hi }
  | _ -> bad "malformed wparam"

let plant_of_sexp s =
  match as_list s with
  | [ Sexp.Atom param; poor; good; wl ] ->
    {
      p_param = param;
      p_poor = as_int poor;
      p_good = as_int good;
      p_workload =
        List.map
          (fun pair ->
            match as_list pair with
            | [ Sexp.Atom w; v ] -> (w, as_int v)
            | _ -> bad "malformed plant workload")
          (as_list wl);
    }
  | _ -> bad "malformed plant"

let section name fields =
  match
    List.find_opt
      (function Sexp.List (Sexp.Atom n :: _) -> String.equal n name | _ -> false)
      fields
  with
  | Some (Sexp.List (_ :: rest)) -> rest
  | _ -> bad "missing section %s" name

let of_string text =
  match Sexp.of_string text with
  | Error msg -> Error ("vfuzz spec: " ^ msg)
  | Ok sexp -> begin
    try
      match sexp with
      | Sexp.List (Sexp.Atom "vfuzz-spec" :: version :: fields) ->
        if as_int version <> format_version then
          Error (Printf.sprintf "vfuzz spec: unsupported version %d" (as_int version))
        else begin
          let name = match section "name" fields with [ n ] -> as_atom n | _ -> bad "name" in
          let seed = match section "seed" fields with [ n ] -> as_int n | _ -> bad "seed" in
          let t =
            {
              g_name = name;
              g_seed = seed;
              g_cparams = List.map cparam_of_sexp (section "cparams" fields);
              g_wparams = List.map wparam_of_sexp (section "wparams" fields);
              g_funcs =
                List.map
                  (fun f ->
                    match as_list f with
                    | [ Sexp.Atom fname; body ] ->
                      { f_name = fname; f_body = List.map node_of_sexp (as_list body) }
                    | _ -> bad "malformed function")
                  (section "funcs" fields);
              g_plants = List.map plant_of_sexp (section "plants" fields);
              g_decoys = List.map as_atom (section "decoys" fields);
              g_trail = List.map as_atom (section "trail" fields);
            }
          in
          match validate t with
          | Ok () -> Ok t
          | Error msg -> Error ("vfuzz spec: " ^ msg)
        end
      | _ -> Error "vfuzz spec: not a (vfuzz-spec ...) form"
    with Bad msg -> Error ("vfuzz spec: " ^ msg)
  end

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
