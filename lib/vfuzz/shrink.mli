(** Greedy minimization of a failing generated system.

    When the {!Oracle} finds a disagreement, the interesting artifact is not
    the 200-node generated system but the smallest spec that still
    disagrees.  The shrinker repeatedly tries single structural reductions —
    drop a function (fixing up calls), drop a statement, splice a branch or
    loop body in place of its wrapper, drop an unreferenced parameter, drop
    a plant or decoy record — keeping a candidate whenever [still_fails]
    accepts it, until no reduction applies or the check budget runs out.

    Every accepted candidate is strictly smaller under {!Genspec.size}, so
    the loop terminates; the shrunk spec records the reduction in its
    trail and round-trips through {!Genspec.save} as an on-disk
    reproducer. *)

type outcome = {
  sh_spec : Genspec.t;  (** the minimized spec (original if nothing shrank) *)
  sh_from_size : int;
  sh_to_size : int;
  sh_steps : int;  (** accepted reductions *)
  sh_checks : int;  (** [still_fails] evaluations spent *)
}

val candidates : Genspec.t -> Genspec.t list
(** All valid single-step reductions, biggest-first.  Exposed for tests. *)

val shrink : ?max_checks:int -> still_fails:(Genspec.t -> bool) -> Genspec.t -> outcome
(** [max_checks] (default 150) bounds predicate evaluations — each one
    typically re-runs the oracle, so the budget is the wall-clock knob. *)
