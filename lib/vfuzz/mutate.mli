(** Mutations over generated systems — the VeriFuzz-style [Mutate] pass.

    Each mutation is small, structure-preserving (the result still passes
    {!Genspec.validate} and lowers), and {e ground-truth aware}: a mutation
    either provably preserves the plant record or updates it, and either way
    the change is appended to the spec's trail so a scored corpus explains
    itself.

    The four families:
    - {e flip a constant}: perturb a cheap op's magnitude within the band
      that keeps it cheap (ground truth preserved);
    - {e swap a branch predicate}: re-point a plant's equality at its good
      value, making the former fast side the poor side (ground truth
      updated: poor and good exchange);
    - {e widen a range}: grow an int parameter's upper bound (ground truth
      preserved — plants compare for equality against values that remain in
      domain);
    - {e splice a hot loop}: wrap a plant's expensive side in a bounded
      loop, amplifying the planted signal (ground truth preserved). *)

type kind = Flip_const | Swap_predicate | Widen_range | Splice_hot_loop

val kind_to_string : kind -> string

val apply_kind : Sprng.t -> kind -> Genspec.t -> (Genspec.t * string) option
(** Apply one mutation of the given kind; [None] when the spec has no
    applicable site (e.g. [Swap_predicate] on a plantless spec).  The
    returned string describes the change (also appended to the trail). *)

val apply : Sprng.t -> Genspec.t -> Genspec.t * string
(** Apply one randomly chosen applicable mutation.  Falls back to
    [Flip_const] (always applicable on generated systems); if truly nothing
    applies the spec is returned unchanged with a ["no-op"] description. *)
