(** The seeded splittable PRNG every piece of vfuzz randomness goes through.

    Reproducibility is the whole point of the fuzzer: a corpus, a mutation
    trail and a differential failure must all be reconstructible from
    [--seed] alone, on any machine, in any process layout.  [Stdlib.Random]'s
    single global state cannot give that once streams are consumed in
    different orders (parallel scoring, early-exit shrinking), so vfuzz uses
    a SplitMix64 generator with {e splitting}: {!split} derives a child
    stream whose output is statistically independent of the parent's and of
    every sibling's, and — crucially — independent of {e how much} of any
    other stream has been consumed.  Generator, mutator, and every generated
    system get their own stream keyed by purpose and index.

    (Audit note: the rest of the repo already routes randomness through
    seeded [Random.State] values — chaos, noise, the random searcher, the
    user-study bench — and nothing calls [Random.self_init] or touches the
    global [Random] state; vfuzz adds no exception.) *)

type t

val make : int -> t
(** A root stream from an integer seed. *)

val split : t -> t
(** A child stream: independent of the parent's subsequent output.  Drawing
    from the child does not advance the parent beyond the split itself. *)

val split_at : t -> int -> t
(** [split_at t k] is the [k]-th of a family of independent child streams,
    the same for a given [(t, k)] no matter how many other children were
    taken or how far they were consumed.  Does not advance [t]. *)

val bits64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive; requires [lo <= hi]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val choose_weighted : t -> ('a * int) list -> 'a
(** Element with probability proportional to its positive weight; the list
    must contain at least one positive weight. *)

val shuffle : t -> 'a list -> 'a list
val lowercase_ident : t -> len:int -> string
(** A random [a-z] identifier fragment of the given length. *)
