(** The differential oracle.

    The pipeline promises its impact models are deterministic: parallelism
    ([--jobs]), independence slicing ([--slice]), and serving a model through
    the {!Vserve} daemon are all supposed to be {e invisible} to the output.
    The oracle holds every generated system against that promise:

    - the four analyze combos (jobs 1/4 {m \times} slice on/off) must produce
      byte-identical impact models (wall-clock scrubbed, the one legitimately
      run-dependent field) for every analyzable parameter;
    - checking the exported model through a live daemon must produce findings
      byte-identical (canonical wire encoding) to running
      {!Vchecker.Checker.check_current} in process on the re-imported model;
    - checking through a 2-shard {!Vfleet.Router} fronting two such daemons
      must also be byte-identical — routing, re-encoding with the client's
      request id, and failover machinery must all be invisible to the
      answer bytes;
    - re-analyzing under [jobs=4 --fast-nondet] must produce the same
      {e verdicts} (order-insensitive findings) as the reference run —
      byte-identity of the model is exactly what that mode trades for
      throughput, verdict-identity is the contract it keeps.

    Any disagreement is a bug in the pipeline, not in the generated system —
    the harness shrinks the system to a minimal reproducer and writes it to
    disk. *)

type combo = { jobs : int; slice : bool }

val combos : combo list
(** The grid: jobs 1/4 {m \times} slice on/off.  Head is the reference. *)

val combo_to_string : combo -> string

type disagreement = {
  d_system : string;
  d_param : string;
  d_leg : string;  (** e.g. ["jobs=4 slice=off"] or ["daemon"] *)
  d_detail : string;  (** first point of divergence, truncated *)
}

type report = {
  r_system : string;
  r_params : string list;  (** parameters put through the grid *)
  r_combos : int;  (** model fingerprints compared *)
  r_daemon_checks : int;  (** daemon-vs-in-process findings compared *)
  r_fleet_checks : int;  (** fleet-vs-in-process findings compared *)
  r_mode_checks : int;  (** mode-vs-solver findings compared (Section 5j) *)
  r_fast_checks : int;  (** fast-nondet-vs-reference verdicts compared *)
  r_inc_checks : int;
      (** spliced-vs-scratch upgrade analyses compared (Section 5k): jobs
          1/4 {m \times} persistent solver cache cold/warm *)
  r_disagreements : disagreement list;
}

val agreed : report -> bool

val default_opts : Violet.Pipeline.options
(** {!Violet.Pipeline.default_options} with the state budget clamped for
    fuzz-scale systems, so a corpus run stays fast. *)

val model_fingerprint : Vmodel.Impact_model.t -> string
(** Canonical model text with [(analysis-wall-s ...)] scrubbed — the
    byte-identity the oracle compares. *)

val findings_fingerprint : Vchecker.Checker.finding list -> string
(** Canonical wire encoding of a findings list ({!Vserve.Protocol}). *)

val verdict_fingerprint : Vchecker.Checker.finding list -> string
(** Order-insensitive findings fingerprint (each finding encoded alone, the
    encodings sorted) — the equality the fast-nondet leg compares: row order
    is exactly what [--fast-nondet] gives up. *)

val check :
  ?opts:Violet.Pipeline.options ->
  ?daemon:bool ->
  ?fleet:bool ->
  ?modes:bool ->
  ?fast:bool ->
  ?inc:bool ->
  Genspec.t ->
  report
(** Run the full grid over every plant and decoy parameter of the system.
    [daemon] (default [true]) additionally exports each reference model,
    serves it from a throwaway daemon on a Unix socket, and compares
    [check-current] findings against the in-process checker.  [fleet]
    (default = [daemon]) repeats the comparison through a 2-shard
    {!Vfleet.Router} over two such daemons — the fleet leg runs in-process
    (domains, not forked processes: the jobs=4 combos have already spawned
    domains by then).  [modes] (default [true]) re-checks each exported model
    in process under [Materialized] (with and without a pre-compiled
    artifact) and [Hybrid], which must match the [Solver] reference
    byte-for-byte.  [fast] (default [true]) re-analyzes each parameter under
    [jobs=4 --fast-nondet] and requires verdict-identity
    ({!verdict_fingerprint}) against the reference — byte-identity is
    exactly what that mode trades away.  [inc] (default [true]) mutates the
    system with {!Mutate.apply}, derives the upgraded models by splicing
    against a baseline of the original ({!Vinc.Splice.run}) under jobs 1/4
    {m \times} persistent-solver-cache cold/warm, and requires each spliced
    baseline to match a from-scratch rebuild byte-for-byte — per-slice
    model digests and upgrade findings alike. *)
