(** The generated-system specification vfuzz works on.

    The generator does not emit {!Vir.Ast} programs directly: the mutator
    and the shrinker need a representation they can edit {e structurally}
    (drop a function, swap a plant's polarity, unwrap a loop) while keeping
    the system well-formed and the planted ground truth attached.  A spec is
    that representation — a restricted, always-lowerable shape of target
    system.  {!to_target} lowers it deterministically through {!Vir.Builder}
    into the same [Pipeline.target] bundle the hand-written models use, and
    {!to_string}/{!of_string} round-trip it through a file so a shrunk
    differential failure can be committed as a reproducer. *)

(** Configuration-parameter shape (encoded-integer view, like the runtime
    registry). *)
type ckind = C_bool | C_int of { lo : int; hi : int } | C_enum of string list

type cparam = { c_name : string; c_kind : ckind; c_default : int }
type wparam = { w_name : string; w_lo : int; w_hi : int }

(** One comparison of a config or workload variable against a constant —
    the only predicate atoms generated systems use, so every branch is
    trivially both lowerable and invertible. *)
type atom =
  | A_cfg of string * Vsmt.Expr.binop * int
  | A_wl of string * Vsmt.Expr.binop * int

type cond = atom list  (** conjunction; [[]] is [true] *)

(** Cost operations, a generator-friendly subset of {!Vir.Ast.prim}. *)
type op =
  | O_fsync
  | O_pwrite of int
  | O_pread of int
  | O_buffered_write of int
  | O_buffered_read of int
  | O_net_send of int
  | O_dns_lookup
  | O_mutex_pair
  | O_log_append of int
  | O_cache_lookup
  | O_malloc of int
  | O_compute of int

type snode =
  | S_op of op
  | S_if of cond * snode list * snode list
  | S_loop of int * snode list  (** constant-bounded counting loop *)
  | S_call of string
  | S_unreachable of snode list  (** a block behind a constant-false guard *)
  | S_cfg_read of string
      (** config value read into a local that never reaches a predicate *)

type fspec = { f_name : string; f_body : snode list }

(** Ground truth for one injected specious parameter: setting [p_param] to
    [p_poor] (encoded) crosses the cost threshold under any workload
    satisfying [p_workload]; [p_good] stays cheap. *)
type plant = {
  p_param : string;
  p_poor : int;
  p_good : int;
  p_workload : (string * int) list;
}

type t = {
  g_name : string;  (** system name; doubles as the model-registry key *)
  g_seed : int;  (** provenance: the corpus seed this spec came from *)
  g_cparams : cparam list;
  g_wparams : wparam list;
  g_funcs : fspec list;  (** first function is the root the entry calls *)
  g_plants : plant list;
  g_decoys : string list;
      (** benign parameters the recall/precision harness probes; expected
          {e not} to be flagged *)
  g_trail : string list;  (** applied mutations, oldest first *)
}

val size : t -> int
(** Structural size (parameters + statement nodes); the shrinker's metric. *)

val cparam_domain : cparam -> int * int
(** Inclusive encoded-value bounds of a parameter. *)

val find_cparam : t -> string -> cparam option

val validate : t -> (unit, string) result
(** Structural well-formedness: non-empty function list, unique names,
    calls only to later-defined functions (no recursion), atoms and plants
    referring to declared parameters, defaults and plant values in domain. *)

val to_target : t -> Violet.Pipeline.target
(** Deterministic lowering through {!Vir.Builder}.  Raises [Failure] on a
    spec {!validate} rejects. *)

val to_string : t -> string
(** Canonical s-expression rendering (the [.vfz] reproducer format). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)

val save : t -> string -> unit
val load : string -> (t, string) result
