type combo = { jobs : int; slice : bool }

let combos =
  [
    { jobs = 1; slice = true };
    { jobs = 1; slice = false };
    { jobs = 4; slice = true };
    { jobs = 4; slice = false };
  ]

let combo_to_string c =
  Printf.sprintf "jobs=%d slice=%s" c.jobs (if c.slice then "on" else "off")

type disagreement = {
  d_system : string;
  d_param : string;
  d_leg : string;
  d_detail : string;
}

type report = {
  r_system : string;
  r_params : string list;
  r_combos : int;
  r_daemon_checks : int;
  r_fleet_checks : int;
  r_mode_checks : int;
  r_fast_checks : int;
  r_inc_checks : int;
  r_disagreements : disagreement list;
}

let agreed r = r.r_disagreements = []

let default_opts =
  {
    Violet.Pipeline.default_options with
    Violet.Pipeline.budget =
      Vresilience.Budget.with_max_states Vresilience.Budget.default 4096;
    jobs = 1;
    (* the byte-identity legs are meaningless in fast-nondet mode; pin it
       off even if VIOLET_FAST_NONDET leaks into the environment *)
    fast_nondet = false;
  }

(* the one legitimately run-dependent model field *)
let scrub_wall_s text =
  let marker = "(analysis-wall-s " in
  let b = Buffer.create (String.length text) in
  let rec copy i =
    if i >= String.length text then Buffer.contents b
    else begin
      let is_marker =
        i + String.length marker <= String.length text
        && String.sub text i (String.length marker) = marker
      in
      if is_marker then begin
        Buffer.add_string b "(analysis-wall-s 0)";
        let j = ref (i + String.length marker) in
        while !j < String.length text && text.[!j] <> ')' do
          incr j
        done;
        copy (!j + 1)
      end
      else begin
        Buffer.add_char b text.[i];
        copy (i + 1)
      end
    end
  in
  copy 0

let model_fingerprint m = scrub_wall_s (Vmodel.Impact_model.to_string m)

let findings_fingerprint fs =
  Vserve.Wire.to_string (Vserve.Protocol.findings_to_wire fs)

(* order-insensitive and id-insensitive variant for the fast-nondet leg:
   row order and canonical state ids are exactly what the mode gives up, so
   each finding is encoded alone with its rows' state ids zeroed and the
   encodings sorted.  Everything semantic — constraints, costs, ratios,
   chains, test cases — still participates. *)
let verdict_fingerprint fs =
  let scrub_row (r : Vmodel.Cost_row.t) = { r with Vmodel.Cost_row.state_id = 0 } in
  let scrub (f : Vchecker.Checker.finding) =
    {
      f with
      Vchecker.Checker.slow_row = scrub_row f.Vchecker.Checker.slow_row;
      fast_row = Option.map scrub_row f.Vchecker.Checker.fast_row;
    }
  in
  String.concat "\n"
    (List.sort String.compare
       (List.map
          (fun f ->
            Vserve.Wire.to_string (Vserve.Protocol.findings_to_wire [ scrub f ]))
          fs))

(* first point of divergence, with a little context either side *)
let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  let i = go 0 in
  let snip s =
    let from = max 0 (i - 20) in
    let len = min 60 (String.length s - from) in
    if len <= 0 then "<end>" else String.sub s from len
  in
  Printf.sprintf "byte %d: %S vs %S" i (snip a) (snip b)

let analysis_fingerprint opts target param c =
  let opts =
    { opts with Violet.Pipeline.jobs = c.jobs; slice = c.slice; fast_nondet = false }
  in
  match Violet.Pipeline.analyze ~opts target param with
  | Ok a -> (model_fingerprint a.Violet.Pipeline.model, Some a)
  | Error e -> ("error: " ^ Violet.Pipeline.error_to_string e, None)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec try_n n =
    let d = Filename.concat base (Printf.sprintf "vfuzz-%d-%d" (Unix.getpid ()) n) in
    try
      Unix.mkdir d 0o700;
      d
    with Unix.Unix_error (Unix.EEXIST, _, _) -> try_n (n + 1)
  in
  try_n 0

let rm_rf dir =
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* Daemon leg: serve the exported models from a throwaway daemon and compare
   check-current findings against the in-process checker on the re-imported
   model.  [exports] pairs registry keys with the model file just written. *)
let daemon_leg ~system ~registry ~dir exports =
  if exports = [] then ([], 0)
  else begin
    let addr = `Unix (Filename.concat dir "sock") in
    let sopts =
      {
        (Vserve.Server.default_options ~addr ~models_dir:dir) with
        Vserve.Server.resolve_registry = (fun _ -> Some registry);
        refresh_every_s = 0.05;
        jobs = 1;
      }
    in
    let srv = Domain.spawn (fun () -> Vserve.Server.run sopts) in
    let bad leg detail = { d_system = system; d_param = leg; d_leg = "daemon"; d_detail = detail } in
    let ds = ref [] in
    let checks = ref 0 in
    begin
      match Vserve.Client.connect_retry addr with
      | Error e -> ds := [ bad "connect" e ]
      | Ok client ->
        List.iter
          (fun (param, key, path) ->
            incr checks;
            let local =
              match Violet.Pipeline.import_model path with
              | Error e -> Error ("import: " ^ e)
              | Ok model -> (
                match
                  Vchecker.Checker.check_current ~model ~registry
                    ~file:(Vchecker.Config_file.parse "") ()
                with
                | Error e -> Error ("check: " ^ e)
                | Ok rep -> Ok (findings_fingerprint rep.Vchecker.Checker.findings))
            in
            let served =
              match
                Vserve.Client.call client
                  (Vserve.Protocol.Check_current { key; config = "" })
              with
              | Error e -> Error ("call: " ^ e)
              | Ok (Vserve.Protocol.Report o) ->
                Ok (findings_fingerprint o.Vserve.Protocol.findings)
              | Ok _ -> Error "unexpected response"
            in
            match (local, served) with
            | Ok a, Ok b when String.equal a b -> ()
            | Ok a, Ok b ->
              ds := bad param (first_diff a b) :: !ds
            | Error e, _ | _, Error e -> ds := bad param e :: !ds)
          exports;
        (match Vserve.Client.call client Vserve.Protocol.Shutdown with
        | Ok Vserve.Protocol.Bye | Ok _ | Error _ -> ());
        Vserve.Client.close client
    end;
    (match Domain.join srv with Ok () | Error _ -> ());
    (List.rev !ds, !checks)
  end

(* Fleet leg: the same exports served through a 2-shard router — workers and
   router live in domains, not forked processes, because the oracle has
   already spawned domains by now (the jobs=4 combos) and [fork] would be
   unsound.  The router must relay answers byte-identical to the worker's
   encoding (canonical wire encoding makes re-encoding with the client's id
   byte-stable), which in turn must match the in-process checker. *)
let fleet_leg ~system ~registry ~dir exports =
  if exports = [] then ([], 0)
  else begin
    let n_shards = 2 in
    let run_dir = Filename.concat dir "fleet" in
    let topology = Vfleet.Topology.make ~run_dir ~shards:n_shards in
    let wopts i =
      {
        (Vserve.Server.default_options
           ~addr:(Vfleet.Topology.worker_addr topology i)
           ~models_dir:dir)
        with
        Vserve.Server.resolve_registry = (fun _ -> Some registry);
        jobs = 1;
        manual_reload = true;
      }
    in
    let workers =
      List.init n_shards (fun i -> Domain.spawn (fun () -> Vserve.Server.run (wopts i)))
    in
    let ropts = Vfleet.Router.default_options ~topology ~models_dir:dir in
    let router = Domain.spawn (fun () -> Vfleet.Router.run ropts) in
    let bad param detail = { d_system = system; d_param = param; d_leg = "fleet"; d_detail = detail } in
    let ds = ref [] in
    let checks = ref 0 in
    begin
      match Vserve.Client.connect_retry (Vfleet.Topology.router_addr topology) with
      | Error e -> ds := [ bad "connect" e ]
      | Ok client ->
        List.iter
          (fun (param, key, path) ->
            incr checks;
            let local =
              match Violet.Pipeline.import_model path with
              | Error e -> Error ("import: " ^ e)
              | Ok model -> (
                match
                  Vchecker.Checker.check_current ~model ~registry
                    ~file:(Vchecker.Config_file.parse "") ()
                with
                | Error e -> Error ("check: " ^ e)
                | Ok rep -> Ok (findings_fingerprint rep.Vchecker.Checker.findings))
            in
            let served =
              match
                Vserve.Client.call ~timeout_s:30.0 client
                  (Vserve.Protocol.Check_current { key; config = "" })
              with
              | Error e -> Error ("call: " ^ e)
              | Ok (Vserve.Protocol.Report o) ->
                if o.Vserve.Protocol.degraded then Error "fleet served a degraded answer"
                else Ok (findings_fingerprint o.Vserve.Protocol.findings)
              | Ok _ -> Error "unexpected response"
            in
            match (local, served) with
            | Ok a, Ok b when String.equal a b -> ()
            | Ok a, Ok b -> ds := bad param (first_diff a b) :: !ds
            | Error e, _ | _, Error e -> ds := bad param e :: !ds)
          exports;
        (* workers first (each honours shutdown on its own socket), the
           router last *)
        List.iteri
          (fun i _ ->
            match Vserve.Client.connect_retry (Vfleet.Topology.worker_addr topology i) with
            | Error _ -> ()
            | Ok wc ->
              (match Vserve.Client.call wc Vserve.Protocol.Shutdown with
              | Ok _ | Error _ -> ());
              Vserve.Client.close wc)
          workers;
        (match Vserve.Client.call client Vserve.Protocol.Shutdown with
        | Ok _ | Error _ -> ());
        Vserve.Client.close client
    end;
    List.iter (fun w -> match Domain.join w with Ok () | Error _ -> ()) workers;
    (match Domain.join router with Ok () | Error _ -> ());
    rm_rf run_dir;
    (List.rev !ds, !checks)
  end

(* Modes leg: the re-imported model checked in-process under every
   row-decision mode.  [Solver] is the reference; [Materialized] (once with a
   pre-compiled artifact, once compiling on the fly) and [Hybrid] carrying the
   artifact must produce byte-identical findings — the compiled decision
   tables are required to be exact, falling back to the solver per row rather
   than approximating (DESIGN.md Section 5j). *)
let modes_leg ~system ~registry exports =
  let bad param detail =
    { d_system = system; d_param = param; d_leg = "modes"; d_detail = detail }
  in
  let ds = ref [] in
  let checks = ref 0 in
  List.iter
    (fun (param, _key, path) ->
      match Violet.Pipeline.import_model path with
      | Error e -> ds := bad param ("import: " ^ e) :: !ds
      | Ok model ->
        let file = Vchecker.Config_file.parse "" in
        let run ?compiled mode =
          match Vchecker.Checker.check_current ~mode ?compiled ~model ~registry ~file () with
          | Error e -> Error ("check: " ^ e)
          | Ok rep -> Ok (findings_fingerprint rep.Vchecker.Checker.findings)
        in
        let compiled = Vmodel.Compiled_model.compile model in
        let reference = run Vchecker.Checker.Solver in
        List.iter
          (fun (label, result) ->
            incr checks;
            match (reference, result) with
            | Ok a, Ok b when String.equal a b -> ()
            | Ok a, Ok b -> ds := bad param (label ^ ": " ^ first_diff b a) :: !ds
            | Error e, _ | _, Error e -> ds := bad param (label ^ ": " ^ e) :: !ds)
          [
            ("materialized", run ~compiled Vchecker.Checker.Materialized);
            ("materialized-fresh", run Vchecker.Checker.Materialized);
            ("hybrid", run ~compiled Vchecker.Checker.Hybrid);
          ])
    exports;
  (List.rev !ds, !checks)

(* Incremental leg (DESIGN.md Section 5k): mutate the system, then derive
   the upgraded models two ways — splicing against a baseline of the
   original version vs building from scratch — under jobs 1/4 x
   persistent-solver-cache cold/warm.  Every spliced baseline must carry
   the same per-slice model digests as the scratch rebuild and produce
   byte-identical upgrade findings against the original baseline: splicing,
   parallelism and cache priming are all required to be invisible. *)
let upgrade_fingerprint (mf : Vinc.Baseline.t) reports =
  String.concat "\n"
    (List.map
       (fun (s : Vinc.Baseline.slice) ->
         s.Vinc.Baseline.sl_param ^ "=" ^ s.Vinc.Baseline.sl_digest)
       mf.Vinc.Baseline.mf_slices
    @ List.map
        (fun (p, (r : Vchecker.Checker.report)) ->
          p ^ ": " ^ findings_fingerprint r.Vchecker.Checker.findings)
        reports)

let inc_leg ~opts (spec : Genspec.t) =
  let system = spec.Genspec.g_name in
  let bad param detail = { d_system = system; d_param = param; d_leg = "inc"; d_detail = detail } in
  let mutated, _ =
    Mutate.apply (Sprng.split_at (Sprng.make spec.Genspec.g_seed) (Genspec.size spec)) spec
  in
  let old_t = Genspec.to_target spec in
  let new_t = Genspec.to_target mutated in
  let sopts = { opts with Violet.Pipeline.jobs = 1; cache_dir = None } in
  let base = fresh_dir () in
  let scratch = fresh_dir () in
  let cache1 = fresh_dir () in
  let cache4 = fresh_dir () in
  let outs = List.init 4 (fun _ -> fresh_dir ()) in
  let cleanup () = List.iter rm_rf (base :: scratch :: cache1 :: cache4 :: outs) in
  let fingerprint_of dir mf =
    Result.map (upgrade_fingerprint mf) (Vinc.Splice.check_upgrade ~old_dir:base ~new_dir:dir)
  in
  let ds = ref [] in
  let checks = ref 0 in
  (match Vinc.Baseline.build ~opts:sopts ~dir:base old_t with
  | Error e -> ds := [ bad "baseline" e ]
  | Ok _ -> (
    match Vinc.Baseline.build ~opts:sopts ~dir:scratch new_t with
    | Error e -> ds := [ bad "scratch" e ]
    | Ok (scratch_mf, _) ->
      let reference = fingerprint_of scratch scratch_mf in
      List.iteri
        (fun i (label, jobs, cache) ->
          incr checks;
          let out = List.nth outs i in
          let vopts = { sopts with Violet.Pipeline.jobs; cache_dir = Some cache } in
          match Vinc.Splice.run ~opts:vopts ~baseline:base ~out new_t with
          | Error e -> ds := bad label e :: !ds
          | Ok r -> (
            match (reference, fingerprint_of out r.Vinc.Splice.sp_baseline) with
            | Ok a, Ok b when String.equal a b -> ()
            | Ok a, Ok b -> ds := bad label (first_diff b a) :: !ds
            | Error e, _ | _, Error e -> ds := bad label e :: !ds))
        [
          ("inc jobs=1 cache=cold", 1, cache1);
          ("inc jobs=1 cache=warm", 1, cache1);
          ("inc jobs=4 cache=cold", 4, cache4);
          ("inc jobs=4 cache=warm", 4, cache4);
        ]));
  cleanup ();
  (List.rev !ds, !checks)

(* Fast-nondet leg: [--fast-nondet] gives up model byte-identity under
   [jobs > 1] but keeps verdict-identity — path constraints and symbol names
   derive from each state's own fork history, never from scheduling.  The
   leg re-analyzes under jobs=4 fast-nondet and requires the checker's
   findings (order-insensitively) to match the reference run's. *)
let verdict_of ~registry (a : Violet.Pipeline.analysis) =
  match
    Vchecker.Checker.check_current ~model:a.Violet.Pipeline.model ~registry
      ~file:(Vchecker.Config_file.parse "") ()
  with
  | Error e -> Error ("check: " ^ e)
  | Ok rep -> Ok (verdict_fingerprint rep.Vchecker.Checker.findings)

let check ?(opts = default_opts) ?(daemon = true) ?(fleet = daemon) ?(modes = true)
    ?(fast = true) ?(inc = true) (spec : Genspec.t) =
  let target = Genspec.to_target spec in
  let registry = target.Violet.Pipeline.registry in
  let params =
    List.map (fun (p : Genspec.plant) -> p.Genspec.p_param) spec.Genspec.g_plants
    @ spec.Genspec.g_decoys
  in
  let reference = List.hd combos in
  let ds = ref [] in
  let n_combos = ref 0 in
  let n_fast = ref 0 in
  let exports = ref [] in
  let dir = if daemon || fleet || modes then Some (fresh_dir ()) else None in
  List.iter
    (fun param ->
      let ref_fp, ref_analysis = analysis_fingerprint opts target param reference in
      incr n_combos;
      List.iter
        (fun c ->
          incr n_combos;
          let fp, _ = analysis_fingerprint opts target param c in
          if not (String.equal fp ref_fp) then
            ds :=
              {
                d_system = spec.Genspec.g_name;
                d_param = param;
                d_leg = combo_to_string c ^ " vs " ^ combo_to_string reference;
                d_detail = first_diff fp ref_fp;
              }
              :: !ds)
        (List.tl combos);
      (if fast then begin
         incr n_fast;
         let fopts =
           { opts with Violet.Pipeline.jobs = 4; slice = true; fast_nondet = true }
         in
         let fast_v =
           match Violet.Pipeline.analyze ~opts:fopts target param with
           | Error e -> Error ("error: " ^ Violet.Pipeline.error_to_string e)
           | Ok a -> verdict_of ~registry a
         in
         let ref_v =
           match ref_analysis with Some a -> verdict_of ~registry a | None -> Error ref_fp
         in
         let same =
           match (ref_v, fast_v) with
           | Ok a, Ok b | Error a, Error b -> String.equal a b
           | _ -> false
         in
         if not same then begin
           let s = function Ok s -> s | Error e -> e in
           ds :=
             {
               d_system = spec.Genspec.g_name;
               d_param = param;
               d_leg = "fast-nondet vs " ^ combo_to_string reference;
               d_detail = first_diff (s fast_v) (s ref_v);
             }
             :: !ds
         end
       end);
      match (dir, ref_analysis) with
      | Some d, Some a ->
        let key = spec.Genspec.g_name ^ "--" ^ param in
        let path = Filename.concat d (key ^ ".vmodel") in
        (match Violet.Pipeline.export_model a.Violet.Pipeline.model path with
        | Ok () -> exports := (param, key, path) :: !exports
        | Error e ->
          ds :=
            {
              d_system = spec.Genspec.g_name;
              d_param = param;
              d_leg = "daemon";
              d_detail = "export: " ^ e;
            }
            :: !ds)
      | _ -> ())
    params;
  let daemon_ds, daemon_checks =
    match dir with
    | Some d when daemon ->
      daemon_leg ~system:spec.Genspec.g_name ~registry ~dir:d (List.rev !exports)
    | _ -> ([], 0)
  in
  let fleet_ds, fleet_checks =
    match dir with
    | Some d when fleet ->
      fleet_leg ~system:spec.Genspec.g_name ~registry ~dir:d (List.rev !exports)
    | _ -> ([], 0)
  in
  let mode_ds, mode_checks =
    if modes then modes_leg ~system:spec.Genspec.g_name ~registry (List.rev !exports)
    else ([], 0)
  in
  let inc_ds, inc_checks = if inc then inc_leg ~opts spec else ([], 0) in
  (match dir with Some d -> rm_rf d | None -> ());
  {
    r_system = spec.Genspec.g_name;
    r_params = params;
    r_combos = !n_combos;
    r_daemon_checks = daemon_checks;
    r_fleet_checks = fleet_checks;
    r_mode_checks = mode_checks;
    r_fast_checks = !n_fast;
    r_inc_checks = inc_checks;
    r_disagreements = List.rev !ds @ daemon_ds @ fleet_ds @ mode_ds @ inc_ds;
  }
