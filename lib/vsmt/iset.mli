(** Sorted disjoint interval sets — the leaves of the materialized checker's
    per-parameter decision tables (DESIGN.md Section 5j).

    An {!t} is a normalized array of disjoint, non-adjacent {!Interval.t}
    ranges, kept sorted by lower bound so membership is a binary search.
    {!of_expr} compiles a single-variable constraint into the {e exact} set
    of domain values on which it evaluates truthy — exact, not an
    over-approximation, so a compiled lookup can replace the
    substitute-simplify-evaluate path byte-for-byte.  Constraints the
    compiler cannot close return [None] and stay on the solver path. *)

type t

val empty : t
val of_dom : Dom.t -> t
(** The whole domain as one interval. *)

val of_intervals : Interval.t list -> t
(** Normalize: sort, merge overlapping and adjacent ranges. *)

val intervals : t -> Interval.t list
val is_empty : t -> bool
val mem : int -> t -> bool
(** Binary search over the normalized ranges. *)

val inter : t -> t -> t
val union : t -> t -> t
val complement : dom:Dom.t -> t -> t
(** Domain values not in the set (the set is first clipped to the domain). *)

val cardinal : t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

val of_expr : var:Expr.var -> Expr.t -> t option
(** [of_expr ~var e] is the exact truth set [{ x ∈ dom var | eval (var:=x) e
    ≠ 0 }], or [None] when the compiler cannot close [e].  Precondition:
    [var] is the only variable of [e].  Boolean structure (And/Or/Not)
    recurses; comparisons between linear forms [k·v + c] are solved with
    exact floor/ceiling division (bailing out when coefficient magnitudes
    could overflow native evaluation); anything else falls back to
    enumeration when the domain is small enough ({!enum_max}), and [None]
    otherwise. *)

val enum_max : int
(** Largest domain size the enumeration fallback of {!of_expr} will walk. *)
