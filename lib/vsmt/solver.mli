(** Satisfiability and model generation for path constraints.

    Every symbolic variable Violet creates ranges over a finite domain
    ({!Dom}), and path constraints are boolean combinations of (mostly linear)
    comparisons — the branch conditions of systems code.  The solver combines
    interval propagation with candidate-seeded enumeration: it narrows each
    variable's interval from the constraints, then branches on the constants
    the constraints actually compare against.  This is complete for the
    constraint shapes the executor produces and fast enough to be called on
    every fork.

    A result of [Unknown] (search budget exhausted) is treated by callers as
    "possibly feasible", which over-approximates the explored path set — the
    safe direction for a detector. *)

type model = (string * int) list
(** Assignment from variable name to integer encoding. *)

type result = Sat of model | Unsat | Unknown

val default_max_nodes : int
(** The search budget used when a caller does not pass [max_nodes] (20_000).
    Callers on a configured path (executor, pipeline) should thread their own
    budget instead of relying on this fallback. *)

val check : ?budget:Vresilience.Budget.armed -> ?max_nodes:int -> Expr.t list -> result
(** Decide the conjunction of the given constraints.  [max_nodes] bounds the
    number of branching steps; when absent it defaults to the [budget]'s
    [solver_max_nodes] (or {!default_max_nodes} without either).  An armed
    [budget] also adds a cooperative wall-clock deadline: the search polls
    the budget clock every few dozen nodes and returns [Unknown] once the
    deadline has passed, so a solver call never outlives the run's deadline.
    Deadline-induced [Unknown]s are indistinguishable from budget-exhaustion
    ones to the caller; cache layers must avoid recording results produced
    after expiry (see {!Vsched.Solver_cache}). *)

val is_feasible : ?budget:Vresilience.Budget.armed -> ?max_nodes:int -> Expr.t list -> bool
(** True when {!check} returns [Sat] or [Unknown]. *)

val model_value : model -> string -> int option

val complete : vars:Expr.var list -> model -> model
(** Extend a model with default values (domain minimum) for the listed
    variables that the solver did not need to pin. *)

val eval_in : model -> Expr.t -> int option
(** Evaluate an expression under a model; [None] if a variable is missing. *)
