let ( let* ) r f = Result.bind r f

let dom_to_sexp = function
  | Dom.Bool -> Sexp.atom "bool"
  | Dom.Int_range { lo; hi } -> Sexp.list [ Sexp.atom "int"; Sexp.int lo; Sexp.int hi ]
  | Dom.Enum { type_name; members } ->
    Sexp.list
      (Sexp.atom "enum" :: Sexp.atom type_name :: List.map Sexp.atom (Array.to_list members))

let dom_of_sexp = function
  | Sexp.Atom "bool" -> Ok Dom.Bool
  | Sexp.List [ Sexp.Atom "int"; lo; hi ] -> begin
    match Sexp.to_int lo, Sexp.to_int hi with
    | Some lo, Some hi when lo <= hi -> Ok (Dom.int_range lo hi)
    | _ -> Error "dom: malformed int range"
  end
  | Sexp.List (Sexp.Atom "enum" :: Sexp.Atom type_name :: members) -> begin
    let names = List.filter_map Sexp.to_atom members in
    if List.length names = List.length members && names <> [] then
      Ok (Dom.enum type_name names)
    else Error "dom: malformed enum"
  end
  | s -> Error ("dom: unrecognized " ^ Sexp.to_string s)

let origin_to_atom = function
  | Expr.Config -> "config"
  | Expr.Workload -> "workload"
  | Expr.Internal -> "internal"

let origin_of_atom = function
  | "config" -> Ok Expr.Config
  | "workload" -> Ok Expr.Workload
  | "internal" -> Ok Expr.Internal
  | s -> Error ("var: unknown origin " ^ s)

let var_to_sexp (v : Expr.var) =
  Sexp.list
    [ Sexp.atom "var"; Sexp.atom v.Expr.name; dom_to_sexp v.Expr.dom;
      Sexp.atom (origin_to_atom v.Expr.origin) ]

let var_of_sexp = function
  | Sexp.List [ Sexp.Atom "var"; Sexp.Atom name; dom; Sexp.Atom origin ] ->
    let* dom = dom_of_sexp dom in
    let* origin = origin_of_atom origin in
    Ok { Expr.name; dom; origin }
  | s -> Error ("var: unrecognized " ^ Sexp.to_string s)

let binop_atom = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"
  | Expr.Mod -> "%"
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.And -> "&&"
  | Expr.Or -> "||"

let binop_of_atom = function
  | "+" -> Ok Expr.Add
  | "-" -> Ok Expr.Sub
  | "*" -> Ok Expr.Mul
  | "/" -> Ok Expr.Div
  | "%" -> Ok Expr.Mod
  | "==" -> Ok Expr.Eq
  | "!=" -> Ok Expr.Ne
  | "<" -> Ok Expr.Lt
  | "<=" -> Ok Expr.Le
  | ">" -> Ok Expr.Gt
  | ">=" -> Ok Expr.Ge
  | "&&" -> Ok Expr.And
  | "||" -> Ok Expr.Or
  | s -> Error ("expr: unknown operator " ^ s)

let rec expr_to_sexp e =
  match Expr.view e with
  | Expr.Const v -> Sexp.list [ Sexp.atom "const"; Sexp.int v ]
  | Expr.Var v -> var_to_sexp v
  | Expr.Not e -> Sexp.list [ Sexp.atom "not"; expr_to_sexp e ]
  | Expr.Neg e -> Sexp.list [ Sexp.atom "neg"; expr_to_sexp e ]
  | Expr.Binop (op, a, b) ->
    Sexp.list [ Sexp.atom (binop_atom op); expr_to_sexp a; expr_to_sexp b ]
  | Expr.Ite (c, a, b) ->
    Sexp.list [ Sexp.atom "ite"; expr_to_sexp c; expr_to_sexp a; expr_to_sexp b ]

(* decoding goes through the smart constructors, so expressions read back
   from disk are interned like any other *)
let rec expr_of_sexp = function
  | Sexp.List [ Sexp.Atom "const"; v ] -> begin
    match Sexp.to_int v with
    | Some v -> Ok (Expr.const v)
    | None -> Error "expr: malformed const"
  end
  | Sexp.List (Sexp.Atom "var" :: _) as s ->
    let* v = var_of_sexp s in
    Ok (Expr.of_var v)
  | Sexp.List [ Sexp.Atom "not"; e ] ->
    let* e = expr_of_sexp e in
    Ok (Expr.not_ e)
  | Sexp.List [ Sexp.Atom "neg"; e ] ->
    let* e = expr_of_sexp e in
    Ok (Expr.neg e)
  | Sexp.List [ Sexp.Atom "ite"; c; a; b ] ->
    let* c = expr_of_sexp c in
    let* a = expr_of_sexp a in
    let* b = expr_of_sexp b in
    Ok (Expr.ite c a b)
  | Sexp.List [ Sexp.Atom op; a; b ] ->
    let* op = binop_of_atom op in
    let* a = expr_of_sexp a in
    let* b = expr_of_sexp b in
    Ok (Expr.binop op a b)
  | s -> Error ("expr: unrecognized " ^ Sexp.to_string s)
