(** Symbolic expressions.

    Violet reasons about path constraints: boolean combinations of comparisons
    between configuration variables, workload (input) variables, and constants.
    Expressions are integer-valued; booleans are encoded as 0/1, enums as
    member indices (see {!Dom}).  This mirrors the view a symbolic-execution
    engine has of the underlying program values. *)

type origin =
  | Config  (** the variable is a configuration parameter *)
  | Workload  (** the variable is a workload-template (input) parameter *)
  | Internal  (** engine-created symbol (e.g. a relaxed library return) *)

type var = { name : string; dom : Dom.t; origin : origin }

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncating; division by zero evaluates to 0, like a guarded path *)
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

(** Expressions are hash-consed: every structurally distinct expression is
    interned exactly once per process, so {!equal} is physical equality,
    {!hash} is a field read, and rendered forms ({!to_string}) are computed
    once per unique node.  The intern table is striped and mutex-protected,
    so expressions can be built and shared freely across domains.

    [t] is [private]: build via the smart constructors below, destructure
    via {!view} (or direct [e.node] record patterns). *)

type t = private { id : int; hkey : int; node : node; mutable str : string }

and node =
  | Const of int
  | Var of var
  | Not of t
  | Neg of t
  | Binop of binop * t * t
  | Ite of t * t * t

val view : t -> node
(** The top node of [e]; children are themselves interned. *)

val id : t -> int
(** Unique id of the interned node.  Stable within a process run; NOT stable
    across processes or across [Marshal] — see {!rehash}. *)

val rehash : t -> t
(** Re-intern an expression whose nodes bypassed the constructors (i.e. came
    from [Marshal]).  Must be applied to every expression loaded from a
    snapshot before it is mixed with live expressions. *)

val interned_count : unit -> int
(** Number of distinct expressions interned so far (telemetry). *)

val var : ?origin:origin -> string -> Dom.t -> t
val of_var : var -> t
val const : int -> t
val bool_ : bool -> t
val tru : t
val fls : t

(** Infix constructors.  [( ==. )], [( <. )], ... build comparisons;
    [( &&. )]/[( ||. )] build conjunction/disjunction; arithmetic uses
    [( +. )]-style names suffixed with [.] to avoid clashing with float ops. *)

val ( ==. ) : t -> t -> t
val ( <>. ) : t -> t -> t
val ( <. ) : t -> t -> t
val ( <=. ) : t -> t -> t
val ( >. ) : t -> t -> t
val ( >=. ) : t -> t -> t
val ( &&. ) : t -> t -> t
val ( ||. ) : t -> t -> t
val ( +. ) : t -> t -> t
val ( -. ) : t -> t -> t
val ( *. ) : t -> t -> t
val ( /. ) : t -> t -> t
val ( %. ) : t -> t -> t
val not_ : t -> t
val neg : t -> t
val binop : binop -> t -> t -> t
val ite : t -> t -> t -> t

val apply_binop : binop -> int -> int -> int
(** Concrete semantics of a binary operator (division/modulo by zero yield
    0; comparisons and logical operators yield 0/1). *)

val is_const : t -> int option
(** [is_const e] is [Some v] when [e] is a literal constant. *)

val eval : (var -> int) -> t -> int
(** Concrete evaluation under an assignment.  Comparisons and logical operators
    yield 0/1; [Div]/[Mod] by zero yield 0. *)

val vars : t -> var list
(** Distinct variables of [e], in first-occurrence order. *)

val has_var : t -> bool

val subst : (var -> t option) -> t -> t
(** Capture-free substitution: replace each variable [v] with [f v] when it
    returns [Some]. *)

val compare : t -> t -> int
(** Structural order — stable across processes and runs (ids are not), so
    sorted constraint sets serialize deterministically. *)

val equal : t -> t -> bool
(** O(1): interning makes structural and physical equality coincide. *)

val hash : t -> int
(** O(1) structural hash, usable as a table key together with {!equal}. *)

val pp : t Fmt.t
val to_string : t -> string

val tree_size : t -> int
(** Tree node count of [e] (shared subtrees counted per occurrence, the
    way solver propagation visits them).  Memoized per hash-consed node
    in a capped domain-local table; telemetry for query-size accounting. *)

val rendered_count : unit -> int
(** Number of interned nodes whose {!to_string} form has been rendered —
    the live size of the string memo (telemetry). *)

val clear_rendered : unit -> unit
(** Drop every memoized rendered string (they re-render on demand).  The
    hook that bounds the string memo on week-long runs. *)

val pp_friendly : t Fmt.t
(** Like {!pp} but renders comparisons of a variable against a constant using
    the variable's domain vocabulary, e.g. [autocommit==ON] rather than
    [autocommit==1].  Used for cost-table and report rendering (Table 1). *)
