(** Free-symbol footprints of hash-consed expressions.

    The footprint of an expression is the set of symbolic variables it
    mentions.  Footprints drive the constraint-independence optimization
    (KLEE lineage): two constraints with disjoint footprints cannot
    influence each other's satisfiability, so feasibility queries need
    only the slices of the path condition that share symbols with the
    branch condition (see {!Partition}).

    Representation: a sorted array of interned symbol ids, so union and
    overlap tests are linear merges and a footprint is computed once per
    hash-consed node ({!of_expr} is memoized per [Expr.id]).  Symbols are
    interned by {e name} — matching [Expr.vars]'s identity — in a global
    mutex-protected table shared by all domains.

    Symbol ids, like expression ids, are process-local: never persist
    them.  Cache entries and other [Marshal]-crossing data use {!names}
    (sorted symbol names) instead. *)

type t = private int array
(** A footprint: strictly increasing array of symbol ids. *)

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val of_expr : Expr.t -> t
(** Footprint of one expression.  Memoized per hash-consed node id in a
    lock-striped table shared by every domain (capped; see
    {!set_memo_cap}). *)

val of_list : Expr.t list -> t
(** Union of the footprints of a constraint list. *)

val mentions_any : Expr.t list -> string list -> bool
(** [mentions_any cs names] iff the footprint of [cs] contains a symbol
    with one of the given names.  The name-keyed counterpart of
    {!overlaps} for queries arriving from persisted (name-tagged) data;
    names never interned in this process match nothing. *)

val union : t -> t -> t
val overlaps : t -> t -> bool
(** [overlaps a b] iff [a] and [b] share at least one symbol. *)

val subset : t -> t -> bool
(** [subset a b] iff every symbol of [a] is in [b]. *)

val mem : int -> t -> bool

val names : t -> string list
(** Symbol names of the footprint, sorted — the process-portable form
    used to tag marshalled cache entries. *)

val exists_origin : Expr.origin -> t -> bool
(** True iff some symbol in the footprint has the given origin. *)

val for_all_origin : Expr.origin -> t -> bool
(** True iff every symbol in the footprint has the given origin
    (vacuously true on {!empty}). *)

val symbol_count : unit -> int
(** Number of distinct symbols interned so far (telemetry). *)

val memo_size : unit -> int
(** Entries in the shared footprint memo, summed across its lock stripes
    (telemetry). *)

val clear_memo : unit -> unit
(** Drop the shared footprint memo (footprints recompute on demand). *)

val set_memo_cap : int -> unit
(** Cap the shared memo (each stripe holds its share and resets wholesale
    at the cap).  Clamped to at least 1024.  Default [131072]. *)

val pp : t Fmt.t
