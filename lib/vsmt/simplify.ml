open Expr

let truthy v = v <> 0

(* Hash-consing gives every expression a stable id, so simplification is
   memoized once per node — in a lock-striped table shared by every domain,
   so parallel workers reuse (rather than duplicate) each other's
   simplification work on shared path-condition prefixes.  The stripe is
   picked by node id, so contention on 4–8 workers is negligible; each
   stripe holds its share of the cap and resets wholesale when it fills, so
   unbounded interning on long runs cannot grow the memo without bound. *)
let n_stripes = 64

type stripe = { lock : Mutex.t; tbl : (int, t) Hashtbl.t }

let stripes = Array.init n_stripes (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 256 })
let stripe_of i = stripes.(i land (n_stripes - 1))

let default_memo_cap = 1 lsl 18
let memo_cap = ref default_memo_cap
let set_memo_cap n = memo_cap := max 1024 n

let memo_size () = Array.fold_left (fun acc s -> acc + Hashtbl.length s.tbl) 0 stripes

let clear_memo () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Mutex.unlock s.lock)
    stripes

let memo_find i =
  let s = stripe_of i in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl i in
  Mutex.unlock s.lock;
  r

let memo_add i e' =
  let s = stripe_of i in
  Mutex.lock s.lock;
  if Hashtbl.length s.tbl >= !memo_cap / n_stripes then Hashtbl.reset s.tbl;
  Hashtbl.replace s.tbl i e';
  Mutex.unlock s.lock

(* One rewriting pass, bottom-up.  Kept to local rules so each is obviously
   semantics-preserving; the qcheck suite checks the composition. *)
let rec simplify e =
  match memo_find (id e) with
  | Some e' -> e'
  | None ->
    let e' = simplify_uncached e in
    memo_add (id e) e';
    (* a fixpoint result maps to itself so re-simplifying is free *)
    if not (equal e e') then memo_add (id e') e';
    e'

and simplify_uncached e =
  match view e with
  | Const _ | Var _ -> e
  | Not a -> begin
    let a' = simplify a in
    match view a' with
    | Const v -> const (if truthy v then 0 else 1)
    | Not b -> simplify_bool b
    | Binop (Eq, x, y) -> binop Ne x y
    | Binop (Ne, x, y) -> binop Eq x y
    | Binop (Lt, x, y) -> binop Ge x y
    | Binop (Le, x, y) -> binop Gt x y
    | Binop (Gt, x, y) -> binop Le x y
    | Binop (Ge, x, y) -> binop Lt x y
    | _ -> not_ a'
  end
  | Neg a -> begin
    let a' = simplify a in
    match view a' with
    | Const v -> const (-v)
    | Neg b -> b
    | _ -> neg a'
  end
  | Binop (op, a, b) -> simplify_binop op (simplify a) (simplify b)
  | Ite (c, a, b) -> begin
    let c' = simplify c in
    match view c' with
    | Const v -> if truthy v then simplify a else simplify b
    | _ ->
      let a' = simplify a and b' = simplify b in
      if equal a' b' then a' else ite c' a' b'
  end

(* [Not] distinguishes 0 from non-zero; double negation only collapses to the
   operand when the operand is known boolean-valued (0/1). *)
and simplify_bool e =
  match view e with
  | Const v -> const (if truthy v then 1 else 0)
  | Not _ | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> e
  | Var v when Dom.equal v.dom Dom.bool -> e
  | Var _ | Neg _ | Binop _ | Ite _ -> not_ (not_ e)

and simplify_binop op a b =
  match op, view a, view b with
  | _, Const x, Const y -> const (apply_binop op x y)
  | Add, _, Const 0 -> a
  | Add, Const 0, _ -> b
  | Sub, _, Const 0 -> a
  | Sub, _, _ when equal a b -> const 0
  | Mul, _, Const 0 | Mul, Const 0, _ -> const 0
  | Mul, _, Const 1 -> a
  | Mul, Const 1, _ -> b
  | Div, _, Const 1 -> a
  | Div, Const 0, _ -> const 0
  | Mod, _, Const 1 -> const 0
  | And, _, Const c -> if truthy c then simplify_bool a else const 0
  | And, Const c, _ -> if truthy c then simplify_bool b else const 0
  | Or, _, Const c -> if truthy c then const 1 else simplify_bool a
  | Or, Const c, _ -> if truthy c then const 1 else simplify_bool b
  | And, _, _ when equal a b -> simplify_bool a
  | Or, _, _ when equal a b -> simplify_bool a
  | Eq, _, _ when equal a b -> const 1
  | Ne, _, _ when equal a b -> const 0
  | Le, _, _ when equal a b -> const 1
  | Ge, _, _ when equal a b -> const 1
  | Lt, _, _ when equal a b -> const 0
  | Gt, _, _ when equal a b -> const 0
  (* domain-based comparison folding: x cmp c decided by x's range *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Var v, Const c -> fold_cmp op v c (binop op a b)
  | (Eq | Ne | Lt | Le | Gt | Ge), Const c, Var v ->
    fold_cmp (flip op) v c (binop op a b)
  | _, _, _ -> binop op a b

and flip = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | (Eq | Ne | Add | Sub | Mul | Div | Mod | And | Or) as op -> op

and fold_cmp op v c keep =
  let lo = Dom.lo v.dom and hi = Dom.hi v.dom in
  let decided b = const (if b then 1 else 0) in
  match op with
  | Eq -> if c < lo || c > hi then decided false else if lo = hi then decided (lo = c) else keep
  | Ne -> if c < lo || c > hi then decided true else if lo = hi then decided (lo <> c) else keep
  | Lt -> if hi < c then decided true else if lo >= c then decided false else keep
  | Le -> if hi <= c then decided true else if lo > c then decided false else keep
  | Gt -> if lo > c then decided true else if hi <= c then decided false else keep
  | Ge -> if lo >= c then decided true else if hi < c then decided false else keep
  | Add | Sub | Mul | Div | Mod | And | Or -> keep

let rec flatten_and e acc =
  match view e with
  | Binop (And, a, b) -> flatten_and a (flatten_and b acc)
  | _ -> e :: acc

let simplify_conj cs =
  let cs = List.concat_map (fun c -> flatten_and (simplify c) []) cs in
  (* a conjunct and its (normalized) negation make the whole conjunction
     false — catches complementary branch conditions over non-invertible
     shapes (e.g. [x*y > c] with [x*y <= c]) that interval propagation
     cannot decide *)
  let negation_of c = simplify (not_ c) in
  let rec dedup seen = function
    | [] -> List.rev seen
    | c :: rest -> begin
      match view c with
      | Const v when truthy v -> dedup seen rest
      | Const _ -> [ fls ]
      | _ ->
        if List.exists (equal (negation_of c)) seen then [ fls ]
        else if List.exists (equal c) seen then dedup seen rest
        else dedup (c :: seen) rest
    end
  in
  dedup [] cs
