type origin = Config | Workload | Internal

type var = { name : string; dom : Dom.t; origin : origin }

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

(* Hash-consed expressions: every structurally distinct expression exists
   exactly once per process, so equality is an integer comparison, hashing
   is a field read, and tables keyed on expressions never re-serialize
   them.  [node] is the shape; [t] wraps it with the unique id and the
   structural hash.  [str] memoizes the rendered form ("" = not yet
   rendered) — the rendering is a pure function of the structure, so a
   racy double-write from two domains stores equal strings. *)
type t = { id : int; hkey : int; node : node; mutable str : string }

and node =
  | Const of int
  | Var of var
  | Not of t
  | Neg of t
  | Binop of binop * t * t
  | Ite of t * t * t

let view e = e.node
let id e = e.id

(* ------------------------------------------------------------------ *)
(* The intern table: striped by hash so concurrent domains building    *)
(* expressions contend only when they hash to the same stripe.         *)
(* ------------------------------------------------------------------ *)

let binop_tag = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4 | Eq -> 5 | Ne -> 6
  | Lt -> 7 | Le -> 8 | Gt -> 9 | Ge -> 10 | And -> 11 | Or -> 12

let mix h v = (h * 0x01000193) lxor v land max_int

let node_hash = function
  | Const v -> mix 0x11 v
  | Var v -> mix 0x22 (Hashtbl.hash v.name)
  | Not a -> mix 0x33 a.id
  | Neg a -> mix 0x44 a.id
  | Binop (op, a, b) -> mix (mix (mix 0x55 (binop_tag op)) a.id) b.id
  | Ite (c, a, b) -> mix (mix (mix 0x66 c.id) a.id) b.id

(* children are already interned, so one level of physical comparison
   decides structural equality *)
let node_equal n1 n2 =
  match n1, n2 with
  | Const a, Const b -> a = b
  | Var a, Var b ->
    String.equal a.name b.name && a.origin = b.origin && a.dom = b.dom
  | Not a, Not b | Neg a, Neg b -> a == b
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | (Const _ | Var _ | Not _ | Neg _ | Binop _ | Ite _), _ -> false

type stripe = { lock : Mutex.t; buckets : (int, t list) Hashtbl.t }

let n_stripes = 64
let stripes =
  Array.init n_stripes (fun _ -> { lock = Mutex.create (); buckets = Hashtbl.create 1024 })

let next_id = Atomic.make 0

let intern node =
  let hkey = node_hash node in
  let s = stripes.(hkey land (n_stripes - 1)) in
  Mutex.lock s.lock;
  let found =
    match Hashtbl.find_opt s.buckets hkey with
    | None -> None
    | Some bucket -> List.find_opt (fun e -> node_equal e.node node) bucket
  in
  let e =
    match found with
    | Some e -> e
    | None ->
      let e = { id = Atomic.fetch_and_add next_id 1; hkey; node; str = "" } in
      let bucket = match Hashtbl.find_opt s.buckets hkey with Some b -> b | None -> [] in
      Hashtbl.replace s.buckets hkey (e :: bucket);
      e
  in
  Mutex.unlock s.lock;
  e

(* current number of live interned nodes — telemetry only *)
let interned_count () = Atomic.get next_id

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let const v = intern (Const v)
let of_var v = intern (Var v)
let var ?(origin = Config) name dom = of_var { name; dom; origin }
let bool_ b = const (if b then 1 else 0)
let tru = const 1
let fls = const 0
let not_ e = intern (Not e)
let neg e = intern (Neg e)
let binop op a b = intern (Binop (op, a, b))
let ite c a b = intern (Ite (c, a, b))

let ( ==. ) a b = binop Eq a b
let ( <>. ) a b = binop Ne a b
let ( <. ) a b = binop Lt a b
let ( <=. ) a b = binop Le a b
let ( >. ) a b = binop Gt a b
let ( >=. ) a b = binop Ge a b
let ( &&. ) a b = binop And a b
let ( ||. ) a b = binop Or a b
let ( +. ) a b = binop Add a b
let ( -. ) a b = binop Sub a b
let ( *. ) a b = binop Mul a b
let ( /. ) a b = binop Div a b
let ( %. ) a b = binop Mod a b

(* Re-intern an expression whose nodes came from another process
   (e.g. a checkpoint loaded with [Marshal]): the marshalled ids are
   meaningless here, so rebuild bottom-up through the intern table.
   The memo is keyed on the *marshalled* ids, which are consistent
   within one unmarshalled value. *)
let rehash e =
  let memo = Hashtbl.create 64 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some e' -> e'
    | None ->
      let e' =
        match e.node with
        | Const v -> const v
        | Var v -> of_var v
        | Not a -> not_ (go a)
        | Neg a -> neg (go a)
        | Binop (op, a, b) -> binop op (go a) (go b)
        | Ite (c, a, b) -> ite (go c) (go a) (go b)
      in
      Hashtbl.add memo e.id e';
      e'
  in
  go e

(* ------------------------------------------------------------------ *)
(* Equality, hashing, ordering                                         *)
(* ------------------------------------------------------------------ *)

(* O(1): interning makes structural and physical equality coincide *)
let equal a b = a == b
let hash e = e.hkey

(* Structural (not id) order so sorts are stable across processes and
   across runs — the deterministic-reduction step of the parallel
   executor sorts with this. *)
let node_tag = function
  | Const _ -> 0 | Var _ -> 1 | Not _ -> 2 | Neg _ -> 3 | Binop _ -> 4 | Ite _ -> 5

let rec compare a b =
  if a == b then 0
  else
    match a.node, b.node with
    | Const x, Const y -> Int.compare x y
    | Var x, Var y ->
      let c = String.compare x.name y.name in
      if c <> 0 then c
      else
        let c = Stdlib.compare x.origin y.origin in
        if c <> 0 then c else Stdlib.compare x.dom y.dom
    | Not x, Not y | Neg x, Neg y -> compare x y
    | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      let c = Int.compare (binop_tag o1) (binop_tag o2) in
      if c <> 0 then c
      else
        let c = compare a1 a2 in
        if c <> 0 then c else compare b1 b2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      let c = compare c1 c2 in
      if c <> 0 then c
      else
        let c = compare a1 a2 in
        if c <> 0 then c else compare b1 b2
    | n1, n2 -> Int.compare (node_tag n1) (node_tag n2)

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let is_const e = match e.node with Const v -> Some v | Var _ | Not _ | Neg _ | Binop _ | Ite _ -> None

let truthy v = v <> 0

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | And -> if truthy a && truthy b then 1 else 0
  | Or -> if truthy a || truthy b then 1 else 0

let rec eval env e =
  match e.node with
  | Const v -> v
  | Var v -> env v
  | Not e -> if truthy (eval env e) then 0 else 1
  | Neg e -> -eval env e
  | Binop (And, a, b) -> if truthy (eval env a) then (if truthy (eval env b) then 1 else 0) else 0
  | Binop (Or, a, b) -> if truthy (eval env a) then 1 else if truthy (eval env b) then 1 else 0
  | Binop (op, a, b) -> apply_binop op (eval env a) (eval env b)
  | Ite (c, a, b) -> if truthy (eval env c) then eval env a else eval env b

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go e =
    match e.node with
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v.name) then begin
        Hashtbl.add seen v.name ();
        acc := v :: !acc
      end
    | Not e | Neg e -> go e
    | Binop (_, a, b) -> go a; go b
    | Ite (c, a, b) -> go c; go a; go b
  in
  go e;
  List.rev !acc

let rec has_var e =
  match e.node with
  | Const _ -> false
  | Var _ -> true
  | Not e | Neg e -> has_var e
  | Binop (_, a, b) -> has_var a || has_var b
  | Ite (c, a, b) -> has_var c || has_var a || has_var b

let rec subst f e =
  match e.node with
  | Const _ -> e
  | Var v -> ( match f v with Some e' -> e' | None -> e)
  | Not a -> not_ (subst f a)
  | Neg a -> neg (subst f a)
  | Binop (op, a, b) -> binop op (subst f a) (subst f b)
  | Ite (c, a, b) -> ite (subst f c) (subst f a) (subst f b)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

(* [friendly] renders var-vs-constant comparisons in domain vocabulary. *)
let pp_gen ~friendly ppf e =
  let rec go ppf ~ctx e =
    match e.node with
    | Const v -> Fmt.int ppf v
    | Var v -> Fmt.string ppf v.name
    | Not e -> Fmt.pf ppf "!%a" (fun ppf -> go ppf ~ctx:9) e
    | Neg e -> Fmt.pf ppf "-%a" (fun ppf -> go ppf ~ctx:9) e
    | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), { node = Var v; _ }, { node = Const c; _ })
      when friendly ->
      Fmt.pf ppf "%s%s%s" v.name (binop_to_string op) (Dom.value_to_string v.dom c)
    | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), { node = Const c; _ }, { node = Var v; _ })
      when friendly ->
      Fmt.pf ppf "%s%s%s" (Dom.value_to_string v.dom c) (binop_to_string op) v.name
    | Binop (op, a, b) ->
      let p = prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a"
          (fun ppf -> go ppf ~ctx:p)
          a (binop_to_string op)
          (fun ppf -> go ppf ~ctx:(p + 1))
          b
      in
      if p < ctx then Fmt.pf ppf "(%a)" body () else body ppf ()
    | Ite (c, a, b) ->
      Fmt.pf ppf "(%a ? %a : %a)"
        (fun ppf -> go ppf ~ctx:0)
        c
        (fun ppf -> go ppf ~ctx:0)
        a
        (fun ppf -> go ppf ~ctx:0)
        b
  in
  go ppf ~ctx:0 e

let pp ppf e = pp_gen ~friendly:false ppf e
let pp_friendly ppf e = pp_gen ~friendly:true ppf e

(* Rendered once per unique node, then read off the memo field.  Used as
   the portable (cross-process) cache key by [Vsched.Solver_cache]. *)
let to_string e =
  if e.str <> "" then e.str
  else begin
    let s = Fmt.str "%a" pp e in
    e.str <- s;
    s
  end

let rendered_count () =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let acc =
        Hashtbl.fold
          (fun _ bucket acc ->
            List.fold_left (fun acc e -> if e.str = "" then acc else acc + 1) acc bucket)
          s.buckets acc
      in
      Mutex.unlock s.lock;
      acc)
    0 stripes

(* Racy against a concurrent [to_string] only in the benign direction: a
   string written after we pass its node simply survives the sweep. *)
let clear_rendered () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.iter (fun _ bucket -> List.iter (fun e -> e.str <- "") bucket) s.buckets;
      Mutex.unlock s.lock)
    stripes

(* Tree node count — the honest measure of solver work, since interval
   propagation walks constraint trees (shared subtrees re-visited).  The
   count itself is memoized per DAG node, domain-locally and capped. *)
let size_memo_key = Domain.DLS.new_key (fun () : (int, int) Hashtbl.t -> Hashtbl.create 4096)
let size_memo_cap = 1 lsl 17

let rec tree_size e =
  let memo = Domain.DLS.get size_memo_key in
  match Hashtbl.find_opt memo e.id with
  | Some n -> n
  | None ->
    let n =
      match e.node with
      | Const _ | Var _ -> 1
      | Not a | Neg a -> 1 + tree_size a
      | Binop (_, a, b) -> 1 + tree_size a + tree_size b
      | Ite (c, a, b) -> 1 + tree_size c + tree_size a + tree_size b
    in
    if Hashtbl.length memo >= size_memo_cap then Hashtbl.reset memo;
    Hashtbl.replace memo e.id n;
    n
