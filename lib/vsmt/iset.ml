(* Sorted disjoint interval sets over Interval.t.  Normal form: ranges
   sorted by lower bound, pairwise disjoint and non-adjacent, every range
   non-empty — so [equal] is structural and [mem] is a binary search. *)

type t = Interval.t array

let empty : t = [||]
let of_dom d : t = [| Interval.of_dom d |]
let intervals (s : t) = Array.to_list s
let is_empty (s : t) = Array.length s = 0

let of_intervals ivs : t =
  let sorted =
    List.sort
      (fun (a : Interval.t) (b : Interval.t) ->
        if a.Interval.lo <> b.Interval.lo then Int.compare a.Interval.lo b.Interval.lo
        else Int.compare a.Interval.hi b.Interval.hi)
      ivs
  in
  let merged =
    List.fold_left
      (fun acc (iv : Interval.t) ->
        match acc with
        | (prev : Interval.t) :: rest
          when iv.Interval.lo <= prev.Interval.hi + 1 ->
          { prev with Interval.hi = max prev.Interval.hi iv.Interval.hi } :: rest
        | _ -> iv :: acc)
      [] sorted
  in
  Array.of_list (List.rev merged)

let mem v (s : t) =
  let rec go lo hi =
    if lo > hi then false
    else
      let mid = (lo + hi) / 2 in
      let iv = s.(mid) in
      if v < iv.Interval.lo then go lo (mid - 1)
      else if v > iv.Interval.hi then go (mid + 1) hi
      else true
  in
  go 0 (Array.length s - 1)

let inter (a : t) (b : t) : t =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    (match Interval.inter x y with Some iv -> out := iv :: !out | None -> ());
    if x.Interval.hi <= y.Interval.hi then incr i else incr j
  done;
  Array.of_list (List.rev !out)

let union (a : t) (b : t) : t = of_intervals (Array.to_list a @ Array.to_list b)

let complement ~dom (s : t) : t =
  let lo = Dom.lo dom and hi = Dom.hi dom in
  let out = ref [] in
  let cursor = ref lo in
  Array.iter
    (fun (iv : Interval.t) ->
      let l = max iv.Interval.lo lo and h = min iv.Interval.hi hi in
      if l <= h then begin
        if !cursor < l then out := Interval.make !cursor (l - 1) :: !out;
        cursor := h + 1
      end)
    s;
  if !cursor <= hi then out := Interval.make !cursor hi :: !out;
  Array.of_list (List.rev !out)

let cardinal (s : t) =
  Array.fold_left (fun acc iv -> acc + Interval.size iv) 0 s

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Interval.equal x y) a b

let pp ppf (s : t) =
  if is_empty s then Fmt.pf ppf "{}"
  else Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any " ") Interval.pp) s

(* ------------------------------------------------------------------ *)
(* Truth-set compilation                                               *)
(* ------------------------------------------------------------------ *)

let enum_max = 4_096

(* Exact algebra diverges from native evaluation only on overflow; these
   bounds keep |k·x + c| well inside native range for any domain value
   (domain bounds themselves clamp at Interval.pos_inf = 2^40). *)
let max_coeff = 1 lsl 20
let max_const = 1 lsl 50

(* [e] as [k·v + c], when it is that linear form with small coefficients. *)
let rec linear_form (v : Expr.var) (e : Expr.t) =
  let guard (k, c) =
    if abs k <= max_coeff && abs c <= max_const then Some (k, c) else None
  in
  match Expr.view e with
  | Expr.Const c -> guard (0, c)
  | Expr.Var u when String.equal u.Expr.name v.Expr.name -> Some (1, 0)
  | Expr.Neg a -> (
    match linear_form v a with Some (k, c) -> guard (-k, -c) | None -> None)
  | Expr.Binop (Expr.Add, a, b) -> (
    match (linear_form v a, linear_form v b) with
    | Some (ka, ca), Some (kb, cb) -> guard (ka + kb, ca + cb)
    | _ -> None)
  | Expr.Binop (Expr.Sub, a, b) -> (
    match (linear_form v a, linear_form v b) with
    | Some (ka, ca), Some (kb, cb) -> guard (ka - kb, ca - cb)
    | _ -> None)
  | Expr.Binop (Expr.Mul, a, b) -> (
    match (linear_form v a, linear_form v b) with
    | Some (0, ca), Some (kb, cb) -> guard (ca * kb, ca * cb)
    | Some (ka, ca), Some (0, cb) -> guard (ka * cb, ca * cb)
    | _ -> None)
  | _ -> None

(* floor/ceiling division for exact integer bound solving *)
let fdiv a b = if (a < 0) <> (b < 0) && a mod b <> 0 then (a / b) - 1 else a / b
let cdiv a b = if (a < 0) = (b < 0) && a mod b <> 0 then (a / b) + 1 else a / b

let clip ~dom lo hi =
  let lo = max lo (Dom.lo dom) and hi = min hi (Dom.hi dom) in
  if lo > hi then empty else of_intervals [ Interval.make lo hi ]

(* Solutions of [k·x cmp m] within [dom]; [k <> 0]. *)
let solve_cmp ~dom op k m : t =
  let all = of_dom dom and none = empty in
  match op with
  | Expr.Eq -> if m mod k = 0 then clip ~dom (m / k) (m / k) else none
  | Expr.Ne ->
    if m mod k = 0 then complement ~dom (clip ~dom (m / k) (m / k)) else all
  | Expr.Le ->
    if k > 0 then clip ~dom Interval.neg_inf (fdiv m k)
    else clip ~dom (cdiv m k) Interval.pos_inf
  | Expr.Lt ->
    (* k·x < m  ⇔  k·x ≤ m−1, then divide (flipping for k < 0) *)
    if k > 0 then clip ~dom Interval.neg_inf (fdiv (m - 1) k)
    else clip ~dom (cdiv (m - 1) k) Interval.pos_inf
  | Expr.Ge ->
    if k > 0 then clip ~dom (cdiv m k) Interval.pos_inf
    else clip ~dom Interval.neg_inf (fdiv m k)
  | Expr.Gt ->
    if k > 0 then clip ~dom (cdiv (m + 1) k) Interval.pos_inf
    else clip ~dom Interval.neg_inf (fdiv (m + 1) k)
  | _ -> invalid_arg "Iset.solve_cmp: not a comparison"

(* Truth set of a comparison/equation between two linear forms. *)
let compare_sets ~dom op (ka, ca) (kb, cb) : t =
  let k = ka - kb and m = cb - ca in
  if k = 0 then
    (* constant truth: 0 cmp m *)
    if Expr.apply_binop op 0 m <> 0 then of_dom dom else empty
  else solve_cmp ~dom op k m

let is_cmp = function
  | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> true
  | _ -> false

exception Unclosable

let rec truth_set (v : Expr.var) dom (e : Expr.t) : t =
  match Expr.view e with
  | Expr.Const c -> if c <> 0 then of_dom dom else empty
  | Expr.Var u when String.equal u.Expr.name v.Expr.name ->
    complement ~dom (clip ~dom 0 0)
  | Expr.Not a -> complement ~dom (truth_set v dom a)
  | Expr.Binop (Expr.And, a, b) -> inter (truth_set v dom a) (truth_set v dom b)
  | Expr.Binop (Expr.Or, a, b) -> union (truth_set v dom a) (truth_set v dom b)
  | Expr.Binop (op, a, b) when is_cmp op -> (
    match (linear_form v a, linear_form v b) with
    | Some la, Some lb -> compare_sets ~dom op la lb
    | _ -> raise Unclosable)
  | _ -> (
    (* bare arithmetic in boolean position: truthy = non-zero *)
    match linear_form v e with
    | Some (0, c) -> if c <> 0 then of_dom dom else empty
    | Some (k, c) -> solve_cmp ~dom Expr.Ne k (-c)
    | None -> raise Unclosable)

let enumerate dom e : t =
  let lo = Dom.lo dom in
  let ivs = ref [] in
  for x = lo to Dom.hi dom do
    if Expr.eval (fun _ -> x) e <> 0 then
      ivs := Interval.make x x :: !ivs
  done;
  of_intervals !ivs

let of_expr ~(var : Expr.var) (e : Expr.t) : t option =
  let dom = var.Expr.dom in
  (* Interval bounds saturate at ±2^40; a wider domain would silently clip
     the truth set, so such parameters stay on the solver path. *)
  if Dom.lo dom < Interval.neg_inf || Dom.hi dom > Interval.pos_inf then None
  else
  match truth_set var dom e with
  | s -> Some s
  | exception Unclosable ->
    if Dom.size dom <= enum_max then Some (enumerate dom e) else None
