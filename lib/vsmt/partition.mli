(** Symbol-disjoint partition of a path condition.

    Groups a constraint list into slices such that constraints in
    different slices share no symbols (the KLEE constraint-independence
    factoring).  A feasibility query for a branch condition then needs
    only the slices overlapping the condition's footprint — the rest of
    the path condition cannot affect the verdict — and a model for the
    full conjunction is the composition of independent per-slice models.

    The structure is persistent and maintained incrementally: {!extend}
    folds in only the new suffix when the constraint list grew (which is
    how [Simplify.simplify_conj] evolves a path condition), so forked
    states share their common prefix's partition.

    Determinism: every slice, and every {!relevant} result, lists its
    constraints in original path order, and {!slices} enumerates slices
    by the position of their earliest constraint.  Both orders are pure
    functions of the input constraint sequence — no symbol or expression
    id (process-local allocation order) ever leaks into them. *)

type t

val empty : t

val of_list : Expr.t list -> t
(** Partition a constraint list from scratch. *)

val extend : t -> Expr.t list -> t
(** [extend part cs] is the partition of [cs], reusing [part] when [cs]
    extends the list [part] was built from (the common case in the
    executor); otherwise equivalent to [of_list cs]. *)

val relevant : t -> Footprint.t -> Expr.t list
(** Constraints of every slice whose footprint overlaps the given one
    (plus any ground leftovers), in original path order.  On a
    {!falsified} partition returns [[Expr.fls]]. *)

val slices : t -> (Expr.t list * Footprint.t) list
(** All slices in canonical order (by earliest-constraint position),
    each as (constraints in path order, slice footprint).  A falsified
    partition yields the single slice [([Expr.fls], Footprint.empty)].
    Ground leftovers are {e not} included — check {!clean} first. *)

val ground : t -> Expr.t list
(** Var-free, non-literal constraints that fit no slice, in path order.
    Empty for any simplified path condition. *)

val falsified : t -> bool
(** True once a literal-false constraint was folded in. *)

val clean : t -> bool
(** [ground t = [] && not (falsified t)] — the precondition for
    composing per-slice models into a full model. *)

val count : t -> int
(** Number of constraints folded in. *)

val n_slices : t -> int

val pp : t Fmt.t
