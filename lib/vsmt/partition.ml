(* Symbol-disjoint partition of a path condition.

   A partition groups a constraint list into slices such that constraints
   in different slices share no symbols.  It is a persistent structure
   maintained incrementally as the executor appends constraints: forked
   states share their common prefix's partition, and a query only pays
   for the constraints it actually depends on (see [relevant]).

   Constraints carry their position in the source list, so every slice
   (and every [relevant] result) lists its constraints in original path
   order — a canonical order that is a pure function of the constraint
   sequence, independent of symbol or expression ids.  That is what makes
   per-slice solving deterministic across [--jobs N] and cache on/off. *)

module Imap = Map.Make (Int)

type slice = {
  s_foot : Footprint.t;
  s_rev : (int * Expr.t) list;  (* (position, constraint), descending position *)
}

type t = {
  by_sym : int Imap.t;  (* symbol id -> slice id *)
  slices : slice Imap.t;
  next : int;  (* next slice id *)
  count : int;  (* constraints folded in so far *)
  src : Expr.t list;  (* the constraint list this partition was built from *)
  ground : (int * Expr.t) list;  (* var-free non-constant leftovers, descending *)
  falsified : bool;
}

let empty =
  { by_sym = Imap.empty; slices = Imap.empty; next = 0; count = 0; src = []; ground = []; falsified = false }

let count p = p.count
let n_slices p = Imap.cardinal p.slices
let falsified p = p.falsified

let clean p = p.ground = [] && not p.falsified

(* Merge two position-descending lists (positions are unique). *)
let rec merge_desc a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((ia, _) as ha) :: ta, ((ib, _) as hb) :: tb ->
    if ia > ib then ha :: merge_desc ta b else hb :: merge_desc a tb

let touched_ids by_sym (f : Footprint.t) =
  Array.fold_left
    (fun acc sy ->
      match Imap.find_opt sy by_sym with
      | Some i when not (List.mem i acc) -> i :: acc
      | _ -> acc)
    []
    (f :> int array)

let add1 part c =
  if part.falsified then { part with count = part.count + 1 }
  else
    match Expr.is_const c with
    | Some 0 -> { part with falsified = true; count = part.count + 1 }
    | Some _ -> { part with count = part.count + 1 }
    | None ->
      let f = Footprint.of_expr c in
      if Footprint.is_empty f then
        (* var-free but not a literal constant: keep it aside so [relevant]
           stays sound.  Simplified path conditions never produce these. *)
        { part with ground = (part.count, c) :: part.ground; count = part.count + 1 }
      else begin
        let ids = touched_ids part.by_sym f in
        let merged_foot, merged_rev =
          List.fold_left
            (fun (fo, rev) i ->
              let s = Imap.find i part.slices in
              (Footprint.union fo s.s_foot, merge_desc rev s.s_rev))
            (f, []) ids
        in
        let s = { s_foot = merged_foot; s_rev = (part.count, c) :: merged_rev } in
        let slices = List.fold_left (fun m i -> Imap.remove i m) part.slices ids in
        let slices = Imap.add part.next s slices in
        let by_sym =
          Array.fold_left (fun m sy -> Imap.add sy part.next m) part.by_sym (merged_foot :> int array)
        in
        { part with by_sym; slices; next = part.next + 1; count = part.count + 1 }
      end

let of_list cs = { (List.fold_left add1 empty cs) with src = cs }

let extend part cs =
  (* The executor's path conditions grow by suffix ([Simplify.simplify_conj]
     keeps an already-simplified prefix intact), so the common case folds in
     only the new constraints.  Anything else — including falsification to
     [[fls]] — rebuilds from scratch, which is always correct. *)
  let rec split old fresh =
    match (old, fresh) with
    | [], rest -> Some rest
    | _ :: _, [] -> None
    | o :: os, f :: fs -> if Expr.equal o f then split os fs else None
  in
  match split part.src cs with
  | Some suffix -> { (List.fold_left add1 part suffix) with src = cs }
  | None -> of_list cs

let relevant part (fp : Footprint.t) =
  if part.falsified then [ Expr.fls ]
  else
    let ids = touched_ids part.by_sym fp in
    let rev =
      List.fold_left (fun rev i -> merge_desc rev (Imap.find i part.slices).s_rev) part.ground ids
    in
    List.rev_map snd rev

let slices part =
  if part.falsified then [ ([ Expr.fls ], Footprint.empty) ]
  else
    Imap.bindings part.slices
    |> List.map (fun (_, s) ->
           let min_pos = match List.rev s.s_rev with (p, _) :: _ -> p | [] -> 0 in
           (min_pos, (List.rev_map snd s.s_rev, s.s_foot)))
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
    |> List.map snd

let ground part = List.rev_map snd part.ground

let pp ppf part =
  if part.falsified then Fmt.pf ppf "partition(false)"
  else
    Fmt.pf ppf "partition(%d constraints, %d slices%s)" part.count (n_slices part)
      (if part.ground = [] then "" else Fmt.str ", %d ground" (List.length part.ground))
