module I = Interval
open Expr

type model = (string * int) list
type result = Sat of model | Unsat | Unknown

module Smap = Map.Make (String)

exception Empty_domain

(* ------------------------------------------------------------------ *)
(* Interval evaluation of expressions under an interval environment.  *)
(* ------------------------------------------------------------------ *)

let rec ieval env e =
  match view e with
  | Const v -> I.point v
  | Var v -> ( match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom)
  | Not e -> I.logical_not (nonzero_interval (ieval env e))
  | Neg e -> I.neg (ieval env e)
  | Binop (op, a, b) -> begin
    let ia = ieval env a and ib = ieval env b in
    match op with
    | Add -> I.add ia ib
    | Sub -> I.sub ia ib
    | Mul -> I.mul ia ib
    | Div -> I.div ia ib
    | Mod -> I.rem ia ib
    | Eq -> I.eq_result ia ib
    | Ne -> I.ne_result ia ib
    | Lt -> I.cmp_result ( < ) ia ib
    | Le -> I.cmp_result ( <= ) ia ib
    | Gt -> I.cmp_result ( > ) ia ib
    | Ge -> I.cmp_result ( >= ) ia ib
    | And -> I.logical_and (nonzero_interval ia) (nonzero_interval ib)
    | Or -> I.logical_or (nonzero_interval ia) (nonzero_interval ib)
  end
  | Ite (c, a, b) ->
    let ic = nonzero_interval (ieval env c) in
    if I.equal ic (I.point 1) then ieval env a
    else if I.equal ic (I.point 0) then ieval env b
    else I.hull (ieval env a) (ieval env b)

(* truthiness of an integer interval as a 0/1 interval *)
and nonzero_interval i =
  if i.I.lo > 0 || i.I.hi < 0 then I.point 1
  else if i.I.lo = 0 && i.I.hi = 0 then I.point 0
  else I.make 0 1

(* ------------------------------------------------------------------ *)
(* Backward refinement: require [e] truthy (or falsy) and narrow vars. *)
(* ------------------------------------------------------------------ *)

let refine_var env v want =
  let cur = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
  match I.inter cur want with
  | None -> raise Empty_domain
  | Some i -> Smap.add v.name i env

(* Require expression [e] to take a value within [want].  Propagates through
   the invertible shapes that branch conditions actually use: variables,
   var +- const, var * const, and negation. *)
let rec require env e want =
  match view e with
  | Const v -> if I.mem v want then env else raise Empty_domain
  | Var v -> refine_var env v want
  | Neg a -> require env a (I.neg want)
  | Binop (Add, a, { node = Const c; _ }) -> require env a (I.sub want (I.point c))
  | Binop (Add, { node = Const c; _ }, a) -> require env a (I.sub want (I.point c))
  | Binop (Sub, a, { node = Const c; _ }) -> require env a (I.add want (I.point c))
  | Binop (Sub, { node = Const c; _ }, a) -> require env a (I.sub (I.point c) want)
  | Binop (Mul, a, { node = Const c; _ }) when c > 0 ->
    (* a*c in [lo..hi]  =>  a in [ceil(lo/c) .. floor(hi/c)] *)
    let lo = if want.I.lo >= 0 then (want.I.lo + c - 1) / c else want.I.lo / c in
    let hi = if want.I.hi >= 0 then want.I.hi / c else (want.I.hi - c + 1) / c in
    if lo > hi then raise Empty_domain else require env a (I.make lo hi)
  | Binop (Mul, ({ node = Const c; _ } as kc), a) when c > 0 ->
    require env (binop Mul a kc) want
  | Not _ | Binop _ | Ite _ -> env

let rec assume_true env e =
  match view e with
  | Const v -> if v <> 0 then env else raise Empty_domain
  | Var v ->
    let d = I.of_dom v.dom in
    (* v <> 0: representable when the domain is non-negative or non-positive *)
    if d.I.lo >= 0 then refine_var env v (I.make (max 1 d.I.lo) (max 1 d.I.hi))
    else if d.I.hi <= 0 then refine_var env v (I.make (min (-1) d.I.lo) (min (-1) d.I.hi))
    else env
  | Not a -> assume_false env a
  | Binop (And, a, b) -> assume_true (assume_true env a) b
  | Binop (Or, a, b) -> begin
    (* refine only when one side is already impossible *)
    match nonzero_interval (ieval env a), nonzero_interval (ieval env b) with
    | { I.hi = 0; _ }, _ -> assume_true env b
    | _, { I.hi = 0; _ } -> assume_true env a
    | _, _ -> env
  end
  | Binop (Eq, a, b) ->
    let env = require env a (ieval env b) in
    require env b (ieval env a)
  | Binop (Ne, a, b) -> assume_ne env a b
  | Binop (Lt, a, b) ->
    let ib = ieval env b and ia = ieval env a in
    let env = require env a (I.make I.neg_inf (ib.I.hi - 1)) in
    require env b (I.make (ia.I.lo + 1) I.pos_inf)
  | Binop (Le, a, b) ->
    let ib = ieval env b and ia = ieval env a in
    let env = require env a (I.make I.neg_inf ib.I.hi) in
    require env b (I.make ia.I.lo I.pos_inf)
  | Binop (Gt, a, b) -> assume_true env (binop Lt b a)
  | Binop (Ge, a, b) -> assume_true env (binop Le b a)
  | Neg _ | Binop ((Add | Sub | Mul | Div | Mod), _, _) ->
    (* arithmetic used as a condition: truthy = nonzero; no useful refinement *)
    if I.equal (nonzero_interval (ieval env e)) (I.point 0) then raise Empty_domain else env
  | Ite (c, a, b) -> begin
    match nonzero_interval (ieval env c) with
    | { I.lo = 1; _ } -> assume_true env a
    | { I.hi = 0; _ } -> assume_true env b
    | _ -> env
  end

and assume_false env e =
  match view e with
  | Const v -> if v = 0 then env else raise Empty_domain
  | Var v -> refine_var env v (I.point 0)
  | Not a -> assume_true env a
  | Binop (Or, a, b) -> assume_false (assume_false env a) b
  | Binop (And, a, b) -> begin
    match nonzero_interval (ieval env a), nonzero_interval (ieval env b) with
    | { I.lo = 1; _ }, _ -> assume_false env b
    | _, { I.lo = 1; _ } -> assume_false env a
    | _, _ -> env
  end
  | Binop (Eq, a, b) -> assume_ne env a b
  | Binop (Ne, a, b) -> assume_true env (binop Eq a b)
  | Binop (Lt, a, b) -> assume_true env (binop Ge a b)
  | Binop (Le, a, b) -> assume_true env (binop Gt a b)
  | Binop (Gt, a, b) -> assume_true env (binop Le a b)
  | Binop (Ge, a, b) -> assume_true env (binop Lt a b)
  | Neg _ | Binop ((Add | Sub | Mul | Div | Mod), _, _) -> require env e (I.point 0)
  | Ite (c, a, b) -> begin
    match nonzero_interval (ieval env c) with
    | { I.lo = 1; _ } -> assume_false env a
    | { I.hi = 0; _ } -> assume_false env b
    | _ -> env
  end

and assume_ne env a b =
  let shave env e other =
    match view e with
    | Var v when I.is_point other ->
      let c = other.I.lo in
      let cur = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
      if I.is_point cur && cur.I.lo = c then raise Empty_domain
      else if cur.I.lo = c then refine_var env v (I.make (c + 1) cur.I.hi)
      else if cur.I.hi = c then refine_var env v (I.make cur.I.lo (c - 1))
      else env
    | _ -> env
  in
  let env = shave env a (ieval env b) in
  shave env b (ieval env a)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* Constants a variable is compared against — the decision points of the
   constraint set.  Branching on these (+-1) is complete for conjunctions of
   single-variable linear comparisons. *)
let candidate_constants cs =
  let tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let add v c =
    let r =
      match Hashtbl.find_opt tbl v.name with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add tbl v.name r;
        r
    in
    r := (c - 1) :: c :: (c + 1) :: !r
  in
  let rec scan e =
    match view e with
    | Const _ -> ()
    | Var _ -> ()
    | Not e | Neg e -> scan e
    | Binop (_, a, b) -> begin
      scan a;
      scan b;
      match view a, view b with
      | Var v, Const c | Const c, Var v -> add v c
      | Binop (Add, { node = Var v; _ }, { node = Const k; _ }), Const c
      | Const c, Binop (Add, { node = Var v; _ }, { node = Const k; _ }) ->
        add v (c - k)
      | Binop (Sub, { node = Var v; _ }, { node = Const k; _ }), Const c
      | Const c, Binop (Sub, { node = Var v; _ }, { node = Const k; _ }) ->
        add v (c + k)
      | _, _ -> ()
    end
    | Ite (c, a, b) -> scan c; scan a; scan b
  in
  List.iter scan cs;
  tbl

let propagate env cs =
  let env = List.fold_left assume_true env cs in
  env

let fixpoint env cs =
  let rec go env n =
    if n = 0 then env
    else
      let env' = propagate env cs in
      if Smap.equal I.equal env env' then env else go env' (n - 1)
  in
  go (propagate env cs) 8

let default_max_nodes = 20_000

(* how many search nodes between two reads of the deadline clock *)
let deadline_check_period = 64

let check ?budget ?max_nodes cs =
  let max_nodes =
    match max_nodes, budget with
    | Some n, _ -> n
    | None, Some b -> (Vresilience.Budget.spec b).Vresilience.Budget.solver_max_nodes
    | None, None -> default_max_nodes
  in
  let cs = Simplify.simplify_conj cs in
  match cs with
  | [ { node = Const 0; _ } ] -> Unsat
  | _ when (match budget with Some b -> Vresilience.Budget.expired b | None -> false) ->
    (* cooperative deadline: once time is up every undecided query is
       Unknown, immediately — the solver never hangs past the deadline *)
    Unknown
  | _ -> begin
    (* Sorted by name: a canonical variable order makes the search (and
       hence the model found first) a pure function of the constraint
       set.  In particular, solving a symbol-disjoint slice alone visits
       its variables in the same relative order as solving the full
       conjunction, which is what lets sliced model generation compose
       byte-identical models (see Partition). *)
    let all_vars =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun c -> List.iter (fun v -> Hashtbl.replace tbl v.name v) (vars c))
        cs;
      Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
      |> List.sort (fun a b -> String.compare a.name b.name)
    in
    let cands = candidate_constants cs in
    let budget_nodes = ref max_nodes in
    let nodes_since_clock = ref 0 in
    (* set when a large domain was sampled rather than enumerated: an
       exhausted search then means Unknown, not Unsat *)
    let sampled = ref false in
    (* a model maps every constrained var; evaluate conjuncts to verify *)
    let verify model =
      let lookup v =
        match List.assoc_opt v.name model with Some x -> x | None -> Dom.lo v.dom
      in
      List.for_all (fun c -> eval lookup c <> 0) cs
    in
    let exception Found of model in
    let check_deadline =
      match budget with
      | None -> fun () -> ()
      | Some b ->
        fun () ->
          if !nodes_since_clock >= deadline_check_period then begin
            nodes_since_clock := 0;
            if Vresilience.Budget.expired b then raise Exit
          end
    in
    let rec search env cs =
      if !budget_nodes <= 0 then raise Exit;
      decr budget_nodes;
      incr nodes_since_clock;
      check_deadline ();
      let env = fixpoint env cs in
      (* drop conjuncts already decided true; fail on decided false *)
      let remaining =
        List.filter
          (fun c ->
            match nonzero_interval (ieval env c) with
            | { I.lo = 1; _ } -> false
            | { I.hi = 0; _ } -> raise Empty_domain
            | _ -> true)
          cs
      in
      if remaining = [] then begin
        let model =
          List.map
            (fun v ->
              let i = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
              v.name, i.I.lo)
            all_vars
        in
        if verify model then raise (Found model)
        (* intervals said "true for all corners" yet the point model failed:
           cannot happen for our decided-true criterion, but stay safe *)
      end;
      if remaining <> [] then begin
        (* pick the undecided variable with the fewest candidate values *)
        let undecided =
          List.filter
            (fun v ->
              let i = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
              not (I.is_point i)
              && List.exists (fun c -> List.exists (fun w -> w.name = v.name) (vars c)) remaining)
            all_vars
        in
        match undecided with
        | [] ->
          (* all vars pinned but conjuncts undecided (non-invertible shapes):
             evaluate the point model directly *)
          let model =
            List.map
              (fun v ->
                let i =
                  match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom
                in
                v.name, i.I.lo)
              all_vars
          in
          if verify model then raise (Found model)
        | _ :: _ ->
          let score v =
            let i = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
            min (I.size i) 1024
          in
          let v =
            List.fold_left (fun best v -> if score v < score best then v else best)
              (List.hd undecided) (List.tl undecided)
          in
          let i = match Smap.find_opt v.name env with Some i -> i | None -> I.of_dom v.dom in
          let values =
            if I.size i <= 64 then List.init (I.size i) (fun k -> i.I.lo + k)
            else begin
              sampled := true;
              let extra =
                match Hashtbl.find_opt cands v.name with Some r -> !r | None -> []
              in
              let mid = i.I.lo + ((i.I.hi - i.I.lo) / 2) in
              let raw = i.I.lo :: i.I.hi :: mid :: (i.I.lo + 1) :: (i.I.hi - 1) :: extra in
              List.sort_uniq Int.compare (List.filter (fun x -> I.mem x i) raw)
            end
          in
          List.iter
            (fun x ->
              try
                let env' = Smap.add v.name (I.point x) env in
                let sub =
                  List.map
                    (Expr.subst (fun w -> if w.name = v.name then Some (const x) else None))
                    remaining
                in
                search env' (Simplify.simplify_conj sub)
              with Empty_domain -> ())
            values
      end
    in
    try
      search Smap.empty cs;
      if !sampled then Unknown else Unsat
    with
    | Found m -> Sat m
    | Empty_domain -> Unsat
    | Exit -> Unknown
  end

let is_feasible ?budget ?max_nodes cs =
  match check ?budget ?max_nodes cs with Sat _ | Unknown -> true | Unsat -> false

let model_value m name = List.assoc_opt name m

let complete ~vars m =
  let extra =
    List.filter_map
      (fun (v : Expr.var) ->
        if List.mem_assoc v.name m then None else Some (v.name, Dom.lo v.dom))
      vars
  in
  m @ extra

let eval_in m e =
  let exception Missing in
  try
    Some
      (eval
         (fun v -> match List.assoc_opt v.name m with Some x -> x | None -> raise Missing)
         e)
  with Missing -> None
