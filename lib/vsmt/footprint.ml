(* Free-symbol footprints of hash-consed expressions.

   A footprint is the set of symbolic variables an expression reads,
   represented as a sorted array of interned symbol ids so set operations
   are linear merges and equality is an array compare.  Symbol ids — like
   expression ids — are process-local allocation order: anything that must
   survive [Marshal] (cache dumps, snapshots) goes through {!names}
   instead, and partitions over rehashed expressions are rebuilt from
   scratch ({!Sym_state.map_exprs}). *)

(* ------------------------------------------------------------------ *)
(* The symbol intern table: name -> id, plus the reverse arrays.       *)
(* ------------------------------------------------------------------ *)

type sym_info = { s_name : string; s_origin : Expr.origin }

let sym_lock = Mutex.create ()
let sym_ids : (string, int) Hashtbl.t = Hashtbl.create 256
let sym_infos : sym_info array ref = ref (Array.make 64 { s_name = ""; s_origin = Expr.Internal })
let sym_next = ref 0

(* Variables are identified by name alone, matching [Expr.vars]'s dedup
   semantics: two [Expr.var]s with the same name are the same symbol. *)
let intern_sym (v : Expr.var) =
  Mutex.lock sym_lock;
  let id =
    match Hashtbl.find_opt sym_ids v.Expr.name with
    | Some id -> id
    | None ->
      let id = !sym_next in
      sym_next := id + 1;
      if id >= Array.length !sym_infos then begin
        let bigger = Array.make (2 * Array.length !sym_infos) { s_name = ""; s_origin = Expr.Internal } in
        Array.blit !sym_infos 0 bigger 0 (Array.length !sym_infos);
        sym_infos := bigger
      end;
      !sym_infos.(id) <- { s_name = v.Expr.name; s_origin = v.Expr.origin };
      Hashtbl.add sym_ids v.Expr.name id;
      id
  in
  Mutex.unlock sym_lock;
  id

let sym_info id = !sym_infos.(id)
let symbol_count () = !sym_next

(* ------------------------------------------------------------------ *)
(* Footprints: sorted int arrays with merge-based set operations.      *)
(* ------------------------------------------------------------------ *)

type t = int array

let empty : t = [||]
let is_empty (f : t) = Array.length f = 0
let cardinal (f : t) = Array.length f
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let mem id (f : t) =
  let rec go lo hi =
    if lo >= hi then false
    else
      let m = (lo + hi) / 2 in
      if f.(m) = id then true else if f.(m) < id then go (m + 1) hi else go lo m
  in
  go 0 (Array.length f)

let union (a : t) (b : t) : t =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let na = Array.length a and nb = Array.length b in
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin out.(!k) <- x; incr i; incr j end
      else if x < y then begin out.(!k) <- x; incr i end
      else begin out.(!k) <- y; incr j end;
      incr k
    done;
    while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
    while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
    if !k = na + nb then out else Array.sub out 0 !k
  end

let overlaps (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then false
    else if a.(i) = b.(j) then true
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let subset (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let names (f : t) =
  List.sort String.compare (List.map (fun id -> (sym_info id).s_name) (Array.to_list f))

let exists_origin origin (f : t) =
  Array.exists (fun id -> (sym_info id).s_origin = origin) f

let for_all_origin origin (f : t) =
  Array.for_all (fun id -> (sym_info id).s_origin = origin) f

(* ------------------------------------------------------------------ *)
(* Per-node memoization.                                               *)
(* ------------------------------------------------------------------ *)

(* Footprints are memoized per hash-consed node id in a lock-striped table
   shared by every domain, so parallel workers reuse each other's footprint
   work on shared nodes (the stripe is picked by node id; contention on a
   handful of workers is negligible).  Each stripe is capped at its share of
   the total: a week-long checker run interns expressions without bound, so
   an uncapped memo would too.  On overflow the stripe resets wholesale —
   footprints are cheap to recompute and the working set re-fills
   immediately. *)
let default_memo_cap = 1 lsl 17

let memo_cap = ref default_memo_cap

let n_stripes = 64

type stripe = { lock : Mutex.t; tbl : (int, t) Hashtbl.t }

let stripes = Array.init n_stripes (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 256 })
let stripe_of i = stripes.(i land (n_stripes - 1))

let memo_size () = Array.fold_left (fun acc s -> acc + Hashtbl.length s.tbl) 0 stripes

let clear_memo () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.tbl;
      Mutex.unlock s.lock)
    stripes

let set_memo_cap n = memo_cap := max 1024 n

let memo_find i =
  let s = stripe_of i in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl i in
  Mutex.unlock s.lock;
  r

let memo_add i f =
  let s = stripe_of i in
  Mutex.lock s.lock;
  if Hashtbl.length s.tbl >= !memo_cap / n_stripes then Hashtbl.reset s.tbl;
  Hashtbl.replace s.tbl i f;
  Mutex.unlock s.lock

let rec of_expr (e : Expr.t) : t =
  match memo_find (Expr.id e) with
  | Some f -> f
  | None ->
    let f =
      match Expr.view e with
      | Expr.Const _ -> empty
      | Expr.Var v -> [| intern_sym v |]
      | Expr.Not a | Expr.Neg a -> of_expr a
      | Expr.Binop (_, a, b) -> union (of_expr a) (of_expr b)
      | Expr.Ite (c, a, b) -> union (of_expr c) (union (of_expr a) (of_expr b))
    in
    memo_add (Expr.id e) f;
    f

let of_list cs = List.fold_left (fun acc c -> union acc (of_expr c)) empty cs

(* Name-keyed overlap test for data that crossed a process boundary:
   cross-run caches tag entries with [names], so invalidation queries
   arrive as names, not ids.  Names that were never interned in this
   process cannot appear in any footprint and are skipped. *)
let mentions_any cs (dirty : string list) =
  match dirty with
  | [] -> false
  | _ ->
    let f = of_list cs in
    if is_empty f then false
    else
      List.exists
        (fun name ->
          Mutex.lock sym_lock;
          let id = Hashtbl.find_opt sym_ids name in
          Mutex.unlock sym_lock;
          match id with Some id -> mem id f | None -> false)
        dirty

let pp ppf (f : t) = Fmt.pf ppf "{%s}" (String.concat "," (names f))
