(** Algebraic simplification of symbolic expressions.

    The executor simplifies every expression it stores or branches on; this
    keeps path constraints small and makes many branch conditions concrete
    without ever calling the solver (e.g. after substituting a just-concretized
    variable).  Simplification is semantics-preserving: for every assignment,
    [eval env (simplify e) = eval env e] — a property-tested invariant. *)

val simplify : Expr.t -> Expr.t

val simplify_conj : Expr.t list -> Expr.t list
(** Simplify a conjunction of constraints: simplifies each conjunct, flattens
    nested [&&], drops duplicates and trivially-true conjuncts.  If any
    conjunct is trivially false the result is [[Expr.fls]].

    A list that is already fully simplified comes back with itself as a
    prefix (each conjunct is a fixpoint, non-[And], and deduplication keeps
    first occurrences) — the property [Partition.extend] relies on to stay
    incremental. *)

val memo_size : unit -> int
(** Entries in the shared simplification memo, summed across its lock
    stripes (telemetry).  The memo is striped by hash-cons node id and
    shared by every domain, so parallel workers reuse — rather than
    duplicate — each other's simplification work. *)

val clear_memo : unit -> unit
(** Drop the shared simplification memo (results recompute on demand). *)

val set_memo_cap : int -> unit
(** Cap the shared memo (each stripe holds its share and resets wholesale
    at the cap).  Clamped to at least 1024.  Default [262144]. *)
