module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload
module Ex = Vsymexec.Executor

type target = {
  name : string;
  program : Vir.Ast.program;
  registry : Reg.t;
  workloads : Wl.template list;
}

type options = {
  threshold : float;
  max_states : int;
  fuel : int;
  env : Vruntime.Hw_env.t;
  workload_template : string option;
  sym_workload_params : string list;
  workload_overrides : (string * int) list;
  config_overrides : (string * int) list;
  include_related : bool;
  all_symbolic : bool;
  max_related : int;
  policy : Ex.policy;
  solver_cache : bool;
  solver_max_nodes : int;
  state_switching : bool;
  noise : Ex.noise option;
  relaxation_rules : bool;
  fault_injection : bool;
  startup_virtual_s : float;
}

let default_options =
  {
    threshold = 1.0;
    max_states = 4096;
    fuel = 200_000;
    env = Vruntime.Hw_env.hdd_server;
    workload_template = None;
    sym_workload_params = [];
    workload_overrides = [];
    config_overrides = [];
    include_related = true;
    all_symbolic = false;
    max_related = 8;
    policy = Ex.Dfs;
    solver_cache = true;
    solver_max_nodes = 4_000;
    state_switching = false;
    noise = None;
    relaxation_rules = true;
    fault_injection = false;
    startup_virtual_s = -1.;
  }

type analysis = {
  model : Vmodel.Impact_model.t;
  related : Vanalysis.Related_config.result;
  result : Ex.result;
  rows : Vmodel.Cost_row.t list;
  diff : Vmodel.Diff_analysis.t;
}

let related_params target param = Vanalysis.Related_config.analyze target.program param

let hookable target param =
  match Reg.find_opt target.registry param with
  | Some p -> p.Reg.hook = Reg.Hooked
  | None -> false

let analyzable_params target =
  let usage = Vanalysis.Usage.analyze target.program in
  let used = Vanalysis.Usage.all_params usage in
  List.filter_map
    (fun (p : Reg.param) ->
      if p.Reg.perf_related && p.Reg.hook = Reg.Hooked && List.mem p.Reg.name used then
        Some p.Reg.name
      else None)
    (Reg.params target.registry)

let pick_template target opts =
  match opts.workload_template with
  | Some name -> List.find_opt (fun t -> String.equal t.Wl.tname name) target.workloads
  | None -> ( match target.workloads with t :: _ -> Some t | [] -> None)

let analyze ?(opts = default_options) target param =
  match Reg.find_opt target.registry param with
  | None -> Error (Printf.sprintf "%s: unknown parameter %s" target.name param)
  | Some p when p.Reg.hook <> Reg.Hooked ->
    Error
      (Printf.sprintf "%s: no symbolic hook can be attached to %s" target.name param)
  | Some _ -> begin
    let wall0 = Unix.gettimeofday () in
    (* stage 1: static analysis *)
    let related = related_params target param in
    let usage = Vanalysis.Usage.analyze target.program in
    if not (List.mem param (Vanalysis.Usage.all_params usage)) then
      Error (Printf.sprintf "%s: parameter %s is never used by the code" target.name param)
    else begin
      (* stage 2: choose the symbolic set *)
      let related_hooked =
        List.filter (hookable target) related.Vanalysis.Related_config.related
      in
      let related_hooked =
        List.filteri (fun i _ -> i < opts.max_related) related_hooked
      in
      let sym_param_names =
        if opts.all_symbolic then
          (* ablation: every hookable perf parameter the program reads *)
          List.sort_uniq String.compare (param :: analyzable_params target)
        else if opts.include_related then param :: related_hooked
        else [ param ]
      in
      let sym_configs = List.map (Ex.sym_config_var target.registry) sym_param_names in
      let template = pick_template target opts in
      let sym_workloads =
        match template with
        | None -> []
        | Some t ->
          let names =
            match opts.sym_workload_params with
            | [] -> List.map (fun (wp : Wl.param) -> wp.Wl.name) t.Wl.params
            | names -> names
          in
          List.map (Ex.sym_workload_var t) names
      in
      let base_values =
        List.fold_left
          (fun values (name, v) -> Reg.Values.set values name v)
          (Reg.Values.defaults target.registry)
          opts.config_overrides
      in
      let concrete_workload name =
        match List.assoc_opt name opts.workload_overrides with
        | Some v -> v
        | None -> begin
          match template with
          | Some t -> ( match List.assoc_opt name t.Wl.defaults with Some v -> v | None -> 0)
          | None -> 0
        end
      in
      (* stage 3: symbolic execution with tracing.  A config-impact searcher
         declared without a related set inherits the one static analysis just
         computed — the vanalysis output steering exploration. *)
      let policy =
        match opts.policy with
        | Ex.Config_impact { related = [] } -> Ex.Config_impact { related = sym_param_names }
        | p -> p
      in
      let exec_opts =
        {
          Ex.env = opts.env;
          sym_configs;
          concrete_config = (fun n -> Reg.Values.lookup base_values n 0);
          sym_workloads;
          concrete_workload;
          max_states = opts.max_states;
          max_loop_unroll = 48;
          fuel = opts.fuel;
          policy;
          state_switching = opts.state_switching;
          time_slice = 64;
          solver_max_nodes = opts.solver_max_nodes;
          solver_cache = opts.solver_cache;
          noise = opts.noise;
          enable_tracer = true;
          relaxation_rules = opts.relaxation_rules;
          fault_injection = opts.fault_injection;
        }
      in
      let result = Ex.run exec_opts target.program in
      (* stage 4: trace analysis *)
      let profiles = Vtrace.Profile.of_result result in
      let rows = List.map Vmodel.Cost_row.of_profile profiles in
      let diff =
        Vmodel.Diff_analysis.analyze ~threshold:opts.threshold
          ~max_nodes:opts.solver_max_nodes rows
      in
      (* engine boot + target start-up inside the guest differs per system:
         MySQL starts "within one minute" (Section 5.1); Apache's prefork
         boot under the engine is the slowest in the paper's Figure 14 *)
      let startup_virtual_s =
        if opts.startup_virtual_s >= 0. then opts.startup_virtual_s
        else
          match target.name with
          | "mysql" -> 55.
          | "postgres" -> 35.
          | "apache" -> 340.
          | "squid" -> 150.
          | _ -> 45.
      in
      let virtual_analysis_s =
        startup_virtual_s
        +. List.fold_left
             (fun acc (st : Vsymexec.Sym_state.t) -> acc +. (st.Vsymexec.Sym_state.clock /. 1e6))
             0. result.Ex.states
        +. (0.05 *. float_of_int result.Ex.stats.Ex.solver_calls)
      in
      (* the model records the symbolic companions actually used *)
      let used_related = List.filter (fun n -> n <> param) sym_param_names in
      let model =
        Vmodel.Impact_model.build ~system:target.name ~target:param
          ~related:used_related ~rows ~analysis:diff
          ~explored_states:
            (result.Ex.stats.Ex.states_terminated + result.Ex.stats.Ex.states_killed)
          ~analysis_wall_s:(Unix.gettimeofday () -. wall0)
          ~virtual_analysis_s
      in
      Ok { model; related; result; rows; diff }
    end
  end

let analyze_exn ?opts target param =
  match analyze ?opts target param with
  | Ok a -> a
  | Error msg -> failwith msg
