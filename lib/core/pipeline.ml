module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload
module Ex = Vsymexec.Executor
module B = Vresilience.Budget
module D = Vresilience.Degradation

type target = {
  name : string;
  program : Vir.Ast.program;
  registry : Reg.t;
  workloads : Wl.template list;
}

(* ------------------------------------------------------------------ *)
(* Typed errors                                                        *)
(* ------------------------------------------------------------------ *)

type error =
  | Unknown_parameter of { system : string; param : string }
  | Not_hookable of { system : string; param : string }
  | Unused_parameter of { system : string; param : string }
  | Checkpoint_failed of { path : string; reason : Vresilience.Checkpoint.error }
  | Engine_failure of string

exception Pipeline_error of error

let error_to_string = function
  | Unknown_parameter { system; param } ->
    Printf.sprintf "%s: unknown parameter %s" system param
  | Not_hookable { system; param } ->
    Printf.sprintf "%s: no symbolic hook can be attached to %s" system param
  | Unused_parameter { system; param } ->
    Printf.sprintf "%s: parameter %s is never used by the code" system param
  | Checkpoint_failed { path; reason } ->
    Printf.sprintf "checkpoint %s: %s" path (Vresilience.Checkpoint.error_to_string reason)
  | Engine_failure msg -> Printf.sprintf "engine failure: %s" msg

let pp_error ppf e = Fmt.string ppf (error_to_string e)

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

type checkpointing = { path : string; every_picks : int }

type options = {
  threshold : float;
  budget : B.t;
  env : Vruntime.Hw_env.t;
  workload_template : string option;
  sym_workload_params : string list;
  workload_overrides : (string * int) list;
  config_overrides : (string * int) list;
  include_related : bool;
  all_symbolic : bool;
  max_related : int;
  policy : Ex.policy;
  solver_cache : bool;
  slice : bool;
  state_switching : bool;
  noise : Ex.noise option;
  relaxation_rules : bool;
  fault_injection : bool;
  startup_virtual_s : float;
  checkpoint : checkpointing option;
  resume : bool;
  chaos : Vresilience.Chaos.t option;
  degradation : D.policy;
  jobs : int;
  fast_nondet : bool;
  cache_dir : string option;
  cache_dirty : string list;
}

let default_options =
  {
    threshold = 1.0;
    budget = B.default;
    env = Vruntime.Hw_env.hdd_server;
    workload_template = None;
    sym_workload_params = [];
    workload_overrides = [];
    config_overrides = [];
    include_related = true;
    all_symbolic = false;
    max_related = 8;
    policy = Ex.Dfs;
    solver_cache = true;
    slice = true;
    state_switching = false;
    noise = None;
    relaxation_rules = true;
    fault_injection = false;
    startup_virtual_s = -1.;
    checkpoint = None;
    resume = false;
    chaos = None;
    degradation = D.default_policy;
    jobs = Vpar.Pool.default_jobs ();
    fast_nondet = Vpar.Pool.default_fast_nondet ();
    cache_dir = Sys.getenv_opt "VIOLET_CACHE_DIR";
    cache_dirty = [];
  }

type analysis = {
  model : Vmodel.Impact_model.t;
  related : Vanalysis.Related_config.result;
  result : Ex.result;
  rows : Vmodel.Cost_row.t list;
  diff : Vmodel.Diff_analysis.t;
  cache_primed : int;
}

let related_params target param = Vanalysis.Related_config.analyze target.program param

let hookable target param =
  match Reg.find_opt target.registry param with
  | Some p -> p.Reg.hook = Reg.Hooked
  | None -> false

let analyzable_params target =
  let usage = Vanalysis.Usage.analyze target.program in
  let used = Vanalysis.Usage.all_params usage in
  List.filter_map
    (fun (p : Reg.param) ->
      if p.Reg.perf_related && p.Reg.hook = Reg.Hooked && List.mem p.Reg.name used then
        Some p.Reg.name
      else None)
    (Reg.params target.registry)

let pick_template target opts =
  match opts.workload_template with
  | Some name -> List.find_opt (fun t -> String.equal t.Wl.tname name) target.workloads
  | None -> ( match target.workloads with t :: _ -> Some t | [] -> None)

(* Checkpointing is best-effort mid-run: a failed save must not abort the
   exploration it is trying to protect.  Under chaos, a freshly written file
   may immediately be truncated — exactly the corruption --resume has to
   survive via typed errors. *)
let checkpoint_hook opts =
  match opts.checkpoint with
  | None -> None
  | Some c when c.every_picks <= 0 -> None
  | Some c ->
    Some
      (fun snap ->
        match Ex.save_snapshot ~path:c.path snap with
        | Error _ -> ()
        | Ok () -> begin
          match opts.chaos with
          | Some chaos -> ignore (Vresilience.Chaos.truncate_file chaos c.path)
          | None -> ()
        end)

let load_resume_snapshot opts =
  if not opts.resume then Ok None
  else
    match opts.checkpoint with
    | None -> Error (Engine_failure "resume requested but no checkpoint path configured")
    | Some c -> begin
      match Ex.load_snapshot ~path:c.path with
      | Ok snap -> Ok (Some snap)
      | Error reason -> Error (Checkpoint_failed { path = c.path; reason })
    end

let degradation_summary (result : Ex.result) =
  let dropped_paths =
    List.filter_map
      (fun (st : Vsymexec.Sym_state.t) ->
        match st.Vsymexec.Sym_state.status with
        | Vsymexec.Sym_state.Killed reason when Ex.is_budget_kill reason ->
          Some
            {
              Vmodel.Impact_model.dp_state_id = st.Vsymexec.Sym_state.id;
              dp_config_constraints = Vsymexec.Sym_state.config_constraints st;
              dp_latency_so_far_us = st.Vsymexec.Sym_state.clock;
            }
        | _ -> None)
      result.Ex.states
  in
  let rungs =
    List.map
      (fun (e : D.event) -> D.rung_to_string e.D.rung)
      result.Ex.sched.Vsched.Exploration_stats.degradation
  in
  let deadline_hit = result.Ex.stats.Ex.deadline_hit in
  if rungs = [] && (not deadline_hit) && dropped_paths = [] then None
  else Some { Vmodel.Impact_model.rungs; deadline_hit; dropped_paths }

let analyze ?(opts = default_options) target param =
  match Reg.find_opt target.registry param with
  | None -> Error (Unknown_parameter { system = target.name; param })
  | Some p when p.Reg.hook <> Reg.Hooked ->
    Error (Not_hookable { system = target.name; param })
  | Some _ -> begin
    let wall0 = opts.budget.B.now () in
    (* stage 1: static analysis *)
    let related = related_params target param in
    let usage = Vanalysis.Usage.analyze target.program in
    if not (List.mem param (Vanalysis.Usage.all_params usage)) then
      Error (Unused_parameter { system = target.name; param })
    else begin
      (* stage 2: choose the symbolic set *)
      let related_hooked =
        List.filter (hookable target) related.Vanalysis.Related_config.related
      in
      let related_hooked =
        List.filteri (fun i _ -> i < opts.max_related) related_hooked
      in
      let sym_param_names =
        if opts.all_symbolic then
          (* ablation: every hookable perf parameter the program reads *)
          List.sort_uniq String.compare (param :: analyzable_params target)
        else if opts.include_related then param :: related_hooked
        else [ param ]
      in
      let sym_configs = List.map (Ex.sym_config_var target.registry) sym_param_names in
      let template = pick_template target opts in
      let sym_workloads =
        match template with
        | None -> []
        | Some t ->
          let names =
            match opts.sym_workload_params with
            | [] -> List.map (fun (wp : Wl.param) -> wp.Wl.name) t.Wl.params
            | names -> names
          in
          List.map (Ex.sym_workload_var t) names
      in
      let base_values =
        List.fold_left
          (fun values (name, v) -> Reg.Values.set values name v)
          (Reg.Values.defaults target.registry)
          opts.config_overrides
      in
      let concrete_workload name =
        match List.assoc_opt name opts.workload_overrides with
        | Some v -> v
        | None -> begin
          match template with
          | Some t -> ( match List.assoc_opt name t.Wl.defaults with Some v -> v | None -> 0)
          | None -> 0
        end
      in
      (* stage 3: symbolic execution with tracing.  A config-impact searcher
         declared without a related set inherits the one static analysis just
         computed — the vanalysis output steering exploration. *)
      let policy =
        match opts.policy with
        | Ex.Config_impact { related = [] } -> Ex.Config_impact { related = sym_param_names }
        | p -> p
      in
      (* cross-run persistent solver cache: load → footprint-filter → prime
         before the run, persist the merged contents after.  A missing,
         corrupt or version-skewed cache file is a cold start, never an
         error. *)
      let cache_path =
        match opts.cache_dir with
        | Some dir when opts.solver_cache ->
          Some (Vsched.Cache_store.file ~dir ~system:target.name ~param)
        | _ -> None
      in
      let prime_cache =
        match cache_path with
        | None -> None
        | Some path -> (
          match Vsched.Cache_store.load_filtered ~path ~dirty:opts.cache_dirty with
          | Ok d -> Some d
          | Error _ -> None)
      in
      let cache_primed =
        match prime_cache with Some d -> Vsched.Solver_cache.dump_entries d | None -> 0
      in
      let on_cache_dump =
        match cache_path with
        | None -> None
        | Some path ->
          Some
            (fun d ->
              (* filter with an empty dirty set to zero the run's counters
                 before the dump crosses the run boundary; a failed save
                 (read-only dir) must not fail the analysis *)
              ignore
                (Vsched.Cache_store.save ~path (Vsched.Solver_cache.filter_dump d ~dirty:[])))
      in
      let exec_opts =
        {
          Ex.env = opts.env;
          sym_configs;
          concrete_config = (fun n -> Reg.Values.lookup base_values n 0);
          sym_workloads;
          concrete_workload;
          budget = opts.budget;
          max_loop_unroll = 48;
          policy;
          state_switching = opts.state_switching;
          time_slice = 64;
          solver_cache = opts.solver_cache;
          slice = opts.slice;
          noise = opts.noise;
          enable_tracer = true;
          relaxation_rules = opts.relaxation_rules;
          fault_injection = opts.fault_injection;
          chaos = opts.chaos;
          degradation = opts.degradation;
          checkpoint_every =
            (match opts.checkpoint with Some c -> c.every_picks | None -> 0);
          on_checkpoint = checkpoint_hook opts;
          jobs = opts.jobs;
          fast_nondet = opts.fast_nondet;
          prime_cache;
          on_cache_dump;
        }
      in
      match load_resume_snapshot opts with
      | Error e -> Error e
      | Ok resume -> begin
        (* stages 3–4 are the moving parts chaos attacks; any escape becomes
           a typed error so the continuous checker can report-and-continue *)
        match
          try
            let result = Ex.run ?resume exec_opts target.program in
            (* stage 4: trace analysis *)
            let profiles = Vtrace.Profile.of_result result in
            let rows = List.map Vmodel.Cost_row.of_profile profiles in
            let diff =
              Vmodel.Diff_analysis.analyze ~threshold:opts.threshold
                ~max_nodes:opts.budget.B.solver_max_nodes ~jobs:opts.jobs ~slice:opts.slice
                rows
            in
            Ok (result, rows, diff)
          with e -> Error (Engine_failure (Printexc.to_string e))
        with
        | Error e -> Error e
        | Ok (result, rows, diff) ->
          (* engine boot + target start-up inside the guest differs per
             system: MySQL starts "within one minute" (Section 5.1);
             Apache's prefork boot under the engine is the slowest in the
             paper's Figure 14 *)
          let startup_virtual_s =
            if opts.startup_virtual_s >= 0. then opts.startup_virtual_s
            else
              match target.name with
              | "mysql" -> 55.
              | "postgres" -> 35.
              | "apache" -> 340.
              | "squid" -> 150.
              | _ -> 45.
          in
          let virtual_analysis_s =
            startup_virtual_s
            +. List.fold_left
                 (fun acc (st : Vsymexec.Sym_state.t) ->
                   acc +. (st.Vsymexec.Sym_state.clock /. 1e6))
                 0. result.Ex.states
            +. (0.05 *. float_of_int result.Ex.stats.Ex.solver_calls)
          in
          (* the model records the symbolic companions actually used *)
          let used_related = List.filter (fun n -> n <> param) sym_param_names in
          let model =
            Vmodel.Impact_model.build
              ?degradation:(degradation_summary result)
              ~system:target.name ~target:param
              ~related:used_related ~rows ~analysis:diff
              ~explored_states:
                (result.Ex.stats.Ex.states_terminated + result.Ex.stats.Ex.states_killed)
              ~analysis_wall_s:(opts.budget.B.now () -. wall0)
              ~virtual_analysis_s ()
          in
          Ok { model; related; result; rows; diff; cache_primed }
      end
    end
  end

(* Registry-format model export: the impact model's sexp rendering inside
   the vresilience checkpoint envelope, so the serving layer's model
   registry gets the same version/kind/digest verification — and the same
   atomic-rename crash safety — checkpoints have. *)
let model_kind = "impact-model"
let model_version = 1

let export_model model path =
  Result.map_error Vresilience.Checkpoint.error_to_string
    (Vresilience.Checkpoint.write ~path ~kind:model_kind ~version:model_version
       (Vmodel.Impact_model.to_string model))

let import_model path =
  match
    Vresilience.Checkpoint.read ~path ~kind:model_kind ~version:model_version
  with
  | Ok payload -> Vmodel.Impact_model.of_string payload
  | Error e -> Error (Vresilience.Checkpoint.error_to_string e)

let analyze_exn ?opts target param =
  match analyze ?opts target param with
  | Ok a -> a
  | Error e -> raise (Pipeline_error e)

let () =
  Printexc.register_printer (function
    | Pipeline_error e -> Some ("Pipeline_error: " ^ error_to_string e)
    | _ -> None)
