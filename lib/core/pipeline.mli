(** The end-to-end Violet pipeline (paper Figure 6).

    [analyze] wires together every stage for one target parameter:

    + static analysis discovers the control-dependent related parameters
      (Algorithms 1–2);
    + the symbolic hooks make the target and its related set symbolic with
      their valid ranges, plus the requested workload-template parameters;
    + the symbolic executor explores the paths while the tracer records
      signals and costs;
    + the trace analyzer matches records, reconstructs call paths, builds
      the cost table, and runs the differential analysis;
    + the result is a serializable configuration performance impact model.

    A {!target} packages what the paper calls "the target system": the
    (modelled) program, its configuration registry and workload templates. *)

type target = {
  name : string;
  program : Vir.Ast.program;
  registry : Vruntime.Config_registry.t;
  workloads : Vruntime.Workload.template list;
}

type options = {
  threshold : float;  (** differential threshold, default 1.0 (=100%) *)
  max_states : int;
  fuel : int;
  env : Vruntime.Hw_env.t;
  workload_template : string option;
      (** template whose parameters the program reads; defaults to the
          target's first template *)
  sym_workload_params : string list;
      (** workload parameters to make symbolic; [[]] = all of the template's *)
  workload_overrides : (string * int) list;
      (** concrete values for non-symbolic workload parameters *)
  config_overrides : (string * int) list;
      (** concrete values for non-symbolic configuration parameters *)
  include_related : bool;  (** false = ablation: only the target symbolic *)
  all_symbolic : bool;
      (** true = ablation of Section 4.2/Figure 9: make {e every} hookable
          parameter symbolic instead of the related set *)
  max_related : int;
  policy : Vsymexec.Executor.policy;
      (** the {!Vsched.Searcher} plugged into the executor; a
          [Config_impact] policy with an empty related set is completed with
          the symbolic set the static analysis selects *)
  solver_cache : bool;
      (** enable the {!Vsched.Solver_cache} layer (default true); hit rates
          surface in [analysis.result.sched] *)
  solver_max_nodes : int;
      (** solver search budget threaded to every executor query (default
          4_000) *)
  state_switching : bool;
  noise : Vsymexec.Executor.noise option;
  relaxation_rules : bool;  (** false: Section 5.4 relaxation-rule ablation *)
  fault_injection : bool;
      (** explore library-call failure paths (Section 8 extension) *)
  startup_virtual_s : float;
      (** virtual engine start-up cost (booting the guest and the target
          system; about a minute for MySQL in the paper, Section 5.1);
          negative = per-target default *)
}

val default_options : options

type analysis = {
  model : Vmodel.Impact_model.t;
  related : Vanalysis.Related_config.result;
  result : Vsymexec.Executor.result;
  rows : Vmodel.Cost_row.t list;
  diff : Vmodel.Diff_analysis.t;
}

val related_params : target -> string -> Vanalysis.Related_config.result

val hookable : target -> string -> bool
(** Can a symbolic hook be attached to this parameter (paper Section 4.1)? *)

val analyzable_params : target -> string list
(** Parameters eligible for the coverage experiment: performance-related,
    hookable, and actually read by the program (Section 7.6). *)

val analyze : ?opts:options -> target -> string -> (analysis, string) result
(** Analyze one target parameter.  [Error] for unknown, non-hookable or
    unused parameters. *)

val analyze_exn : ?opts:options -> target -> string -> analysis
