(** The end-to-end Violet pipeline (paper Figure 6).

    [analyze] wires together every stage for one target parameter:

    + static analysis discovers the control-dependent related parameters
      (Algorithms 1–2);
    + the symbolic hooks make the target and its related set symbolic with
      their valid ranges, plus the requested workload-template parameters;
    + the symbolic executor explores the paths while the tracer records
      signals and costs;
    + the trace analyzer matches records, reconstructs call paths, builds
      the cost table, and runs the differential analysis;
    + the result is a serializable configuration performance impact model.

    A {!target} packages what the paper calls "the target system": the
    (modelled) program, its configuration registry and workload templates.

    Resource limits are carried by one {!Vresilience.Budget.t}.  A run can be
    checkpointed ({!options.checkpoint}) and resumed ({!options.resume});
    a resumed run produces an impact model byte-identical to the
    uninterrupted one.  Under budget pressure the executor walks the
    {!Vresilience.Degradation} ladder, and the resulting model carries a
    degradation summary instead of silently posing as complete. *)

type target = {
  name : string;
  program : Vir.Ast.program;
  registry : Vruntime.Config_registry.t;
  workloads : Vruntime.Workload.template list;
}

(** Everything [analyze] can fail with, as data: the continuous checker
    reports and continues instead of crashing on a [failwith]. *)
type error =
  | Unknown_parameter of { system : string; param : string }
  | Not_hookable of { system : string; param : string }
      (** no symbolic hook can be attached (paper Section 4.1) *)
  | Unused_parameter of { system : string; param : string }
      (** the program never reads the parameter *)
  | Checkpoint_failed of { path : string; reason : Vresilience.Checkpoint.error }
      (** [--resume] could not load the snapshot (missing, truncated,
          corrupt, version mismatch) *)
  | Engine_failure of string
      (** an exception escaped the exploration or trace-analysis stages *)

exception Pipeline_error of error

val error_to_string : error -> string
val pp_error : error Fmt.t

type checkpointing = {
  path : string;  (** snapshot file, atomically rewritten *)
  every_picks : int;  (** checkpoint every N state picks *)
}

type options = {
  threshold : float;  (** differential threshold, default 1.0 (=100%) *)
  budget : Vresilience.Budget.t;
      (** unified resource budget (deadline, state cap, fuel, solver nodes);
          replaces the old [max_states]/[fuel]/[solver_max_nodes] fields *)
  env : Vruntime.Hw_env.t;
  workload_template : string option;
      (** template whose parameters the program reads; defaults to the
          target's first template *)
  sym_workload_params : string list;
      (** workload parameters to make symbolic; [[]] = all of the template's *)
  workload_overrides : (string * int) list;
      (** concrete values for non-symbolic workload parameters *)
  config_overrides : (string * int) list;
      (** concrete values for non-symbolic configuration parameters *)
  include_related : bool;  (** false = ablation: only the target symbolic *)
  all_symbolic : bool;
      (** true = ablation of Section 4.2/Figure 9: make {e every} hookable
          parameter symbolic instead of the related set *)
  max_related : int;
  policy : Vsymexec.Executor.policy;
      (** the {!Vsched.Searcher} plugged into the executor; a
          [Config_impact] policy with an empty related set is completed with
          the symbolic set the static analysis selects *)
  solver_cache : bool;
      (** enable the {!Vsched.Solver_cache} layer (default true); hit rates
          surface in [analysis.result.sched] *)
  slice : bool;
      (** independence slicing across the stack (default true): the executor
          sends only the relevant symbol-disjoint slices of each path
          condition to the solver, composes per-slice models, and the
          differential analysis decomposes joint-sat queries over disjoint
          input classes.  Impact models are byte-identical with slicing on
          or off ([--no-slice] is an A/B measurement hatch). *)
  state_switching : bool;
  noise : Vsymexec.Executor.noise option;
  relaxation_rules : bool;  (** false: Section 5.4 relaxation-rule ablation *)
  fault_injection : bool;
      (** explore library-call failure paths (Section 8 extension) *)
  startup_virtual_s : float;
      (** virtual engine start-up cost (booting the guest and the target
          system; about a minute for MySQL in the paper, Section 5.1);
          negative = per-target default *)
  checkpoint : checkpointing option;  (** periodic frontier snapshots *)
  resume : bool;
      (** continue from [checkpoint.path] instead of starting fresh *)
  chaos : Vresilience.Chaos.t option;
      (** engine-fault injection (solver unknowns, dropped signals,
          truncated checkpoints) — the chaos harness's hook *)
  degradation : Vresilience.Degradation.policy;
  jobs : int;
      (** worker domains for exploration and the pairwise diff screen;
          threaded to {!Vsymexec.Executor.options.jobs} and
          {!Vmodel.Diff_analysis.analyze}.  The default reads the
          [VIOLET_JOBS] environment variable (falling back to 1), clamped to
          the machine's recommended domain count. *)
  fast_nondet : bool;
      (** skip the executor's deferred renumbering under [jobs > 1]: model
          bytes (state ids, row order) may differ run to run, verdicts do
          not — see {!Vsymexec.Executor.options.fast_nondet}.  The default
          reads the [VIOLET_FAST_NONDET] environment variable (falling back
          to false). *)
  cache_dir : string option;
      (** directory for the persistent cross-run solver cache
          ({!Vsched.Cache_store}): before exploration the
          [<system>.<param>.vcache] file is loaded, footprint-filtered
          against [cache_dirty] and primed into the run's solver cache, and
          after the run the merged cache contents are written back
          (atomically, checksummed).  Missing/corrupt/stale files mean a
          cold start, never an error.  The default reads the
          [VIOLET_CACHE_DIR] environment variable; [None] disables
          persistence. *)
  cache_dirty : string list;
      (** symbol names from changed code: persisted cache entries whose
          footprints mention any of them are dropped at load time (vinc
          passes the config/workload symbols of re-explored slices). *)
}

val default_options : options

type analysis = {
  model : Vmodel.Impact_model.t;
  related : Vanalysis.Related_config.result;
  result : Vsymexec.Executor.result;
  rows : Vmodel.Cost_row.t list;
  diff : Vmodel.Diff_analysis.t;
  cache_primed : int;
      (** entries primed into the solver cache from the persistent
          cross-run store (0 on a cold start or with caching disabled) *)
}

val related_params : target -> string -> Vanalysis.Related_config.result

val hookable : target -> string -> bool
(** Can a symbolic hook be attached to this parameter (paper Section 4.1)? *)

val analyzable_params : target -> string list
(** Parameters eligible for the coverage experiment: performance-related,
    hookable, and actually read by the program (Section 7.6). *)

val analyze : ?opts:options -> target -> string -> (analysis, error) result
(** Analyze one target parameter.  Never raises: bad parameters, unloadable
    snapshots and engine escapes all come back as typed {!error}s. *)

val analyze_exn : ?opts:options -> target -> string -> analysis
(** Raises {!Pipeline_error}. *)

(** {1 Registry-format model files}

    The serving layer ({!Vserve.Registry}) loads impact models from files in
    the {!Vresilience.Checkpoint} envelope (versioned, checksummed, written
    with atomic rename): a corrupt or half-written model file is rejected
    before {!Vmodel.Impact_model.of_string} ever sees it. *)

val model_kind : string
(** The envelope [kind] of a registry-format model file (["impact-model"]). *)

val model_version : int

val export_model : Vmodel.Impact_model.t -> string -> (unit, string) result
(** Write a model in registry format (atomically — a crash mid-write leaves
    any previous file intact). *)

val import_model : string -> (Vmodel.Impact_model.t, string) result
(** Read and verify a registry-format model file. *)
