module Row = Vmodel.Cost_row
module Reg = Vruntime.Config_registry

type verdict = {
  native_slow_us : float;
  native_fast_us : float;
  ratio : float;
  slow_cost : Vruntime.Cost.t;
  fast_cost : Vruntime.Cost.t;
}

let assignment_lookup assignment fallback name =
  match List.assoc_opt name assignment with Some v -> v | None -> fallback name

(* Solve constraints into a concrete assignment; [pin] supplies values for
   variables already fixed (the shared workload). *)
let solve_with constraints ~pin =
  let constrained =
    List.map
      (fun c ->
        Vsmt.Expr.subst
          (fun v ->
            match List.assoc_opt v.Vsmt.Expr.name pin with
            | Some x -> Some (Vsmt.Expr.const x)
            | None -> None)
          c)
      constraints
  in
  match Vsmt.Solver.check ~max_nodes:Vsmt.Solver.default_max_nodes constrained with
  | Vsmt.Solver.Sat m ->
    let vars = List.concat_map Vsmt.Expr.vars constrained in
    Some (Vsmt.Solver.complete ~vars m)
  | Vsmt.Solver.Unsat -> None
  | Vsmt.Solver.Unknown -> None

let pair_ratio ?(env = Vruntime.Hw_env.hdd_server) ~(target : Pipeline.target) ~entry
    ~(slow : Row.t) ~(fast : Row.t) () =
  (* a single input class triggering both states; prefer one that also
     satisfies the slow state's (possibly input-dependent) configuration
     constraints, so the native run actually takes the slow path *)
  let joint = slow.Row.workload_pred @ fast.Row.workload_pred in
  let solved =
    match Vsmt.Solver.check (joint @ slow.Row.config_constraints) with
    | Vsmt.Solver.Sat m -> Some m
    | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> begin
      match Vsmt.Solver.check joint with
      | Vsmt.Solver.Sat m -> Some m
      | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> None
    end
  in
  match solved with
  | None -> None
  | Some wmodel -> begin
    let wvars =
      List.filter
        (fun (v : Vsmt.Expr.var) -> v.Vsmt.Expr.origin = Vsmt.Expr.Workload)
        (List.concat_map Vsmt.Expr.vars (joint @ slow.Row.config_constraints))
    in
    let wmodel =
      List.filter
        (fun (name, _) ->
          List.exists (fun (v : Vsmt.Expr.var) -> v.Vsmt.Expr.name = name) wvars)
        (Vsmt.Solver.complete ~vars:wvars wmodel)
    in
    let template_default name =
      List.find_map
        (fun (t : Vruntime.Workload.template) -> List.assoc_opt name t.Vruntime.Workload.defaults)
        target.Pipeline.workloads
    in
    let workload name =
      match List.assoc_opt name wmodel with
      | Some v -> v
      | None -> ( match template_default name with Some v -> v | None -> 0)
    in
    let config_of row =
      match solve_with row.Row.config_constraints ~pin:wmodel with
      | None -> None
      | Some cmodel ->
        let registry_default name =
          match Reg.find_opt target.Pipeline.registry name with
          | Some p -> p.Reg.default
          | None -> 0
        in
        Some (assignment_lookup cmodel registry_default)
    in
    match config_of slow, config_of fast with
    | Some config_slow, Some config_fast ->
      let run config =
        (Vruntime.Concrete_exec.run ~entry ~env target.Pipeline.program ~config ~workload)
          .Vruntime.Concrete_exec.cost
      in
      let slow_cost = run config_slow and fast_cost = run config_fast in
      let native_slow_us = slow_cost.Vruntime.Cost.latency_us
      and native_fast_us = fast_cost.Vruntime.Cost.latency_us in
      Some
        {
          native_slow_us;
          native_fast_us;
          ratio = (if native_fast_us <= 0. then infinity else native_slow_us /. native_fast_us);
          slow_cost;
          fast_cost;
        }
    | None, _ | _, None -> None
  end

let confirms ?env ~threshold ~target ~entry (pair : Vmodel.Diff_analysis.poor_pair) =
  match
    pair_ratio ?env ~target ~entry ~slow:pair.Vmodel.Diff_analysis.slow
      ~fast:pair.Vmodel.Diff_analysis.fast ()
  with
  | None -> None
  | Some v ->
    (* confirmed when the native run reproduces the difference on latency or
       on any logical metric, in either direction *)
    let lat_confirms =
      v.ratio >= 1. +. threshold || v.ratio <= 1. /. (1. +. threshold)
    in
    let fake_row cost =
      {
        Vmodel.Cost_row.state_id = 0;
        config_constraints = [];
        workload_pred = [];
        cost;
        traced_latency_us = cost.Vruntime.Cost.latency_us;
        chain = [];
        nodes = [];
        critical_ops = [];
      }
    in
    let logical_confirms =
      Vmodel.Diff_analysis.compare_pair ~threshold ~slow:(fake_row v.slow_cost)
        ~fast:(fake_row v.fast_cost)
      <> None
      || Vmodel.Diff_analysis.compare_pair ~threshold ~slow:(fake_row v.fast_cost)
           ~fast:(fake_row v.slow_cost)
         <> None
    in
    Some (lat_confirms || logical_confirms)
