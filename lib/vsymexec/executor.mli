(** The forking symbolic executor.

    Plays the role S²E (with its embedded KLEE) plays in the paper: it
    interprets an IR program, forks a new state at every branch whose
    condition is symbolic and two-way feasible, memorizes path constraints,
    and emits call/return signals for the tracer.  The Violet-specific
    machinery is layered in directly:

    - {e symbolic hooks} (Section 4.1/4.4): configuration and workload
      variables listed in {!options.sym_configs}/{!options.sym_workloads}
      evaluate to range-restricted symbolic variables; all others read their
      concrete values;
    - {e selective concretization} (Section 5.4): library calls with symbolic
      arguments follow the Strictly-Consistent Unit-Level consistency model —
      arguments are silently concretized with a solver model, the pinned
      variable is substituted through the whole store ([concretizeAll]), and
      the relaxation rules for [Pure]/[Benign] libraries drop the
      concretization constraint (a [Pure] call instead returns a fresh
      symbol);
    - {e profiling controls} (Section 5.3): tracing starts/stops on the
      [Trace_on]/[Trace_off] hooks, state-switch costs are only charged when
      state switching is enabled, and optional latency jitter models
      measurement noise in the engine. *)

(** The state-selection policy is the {!Vsched.Searcher} type, re-exported so
    the historical [Executor.Dfs]-style spellings keep working.  The live
    queue behind it is instantiated per run by the executor. *)
type policy = Vsched.Searcher.t =
  | Dfs  (** run each state to completion before its sibling *)
  | Bfs
  | Random_path of int  (** seeded random state selection *)
  | Coverage_guided
      (** prioritize states closest to uncovered config-dependent branches *)
  | Config_impact of { related : string list }
      (** weight states by how many related parameters their pending branches
          read; [related = []] counts every configuration parameter *)

type noise = {
  jitter : float;  (** relative latency jitter, e.g. 0.05 for ±5% *)
  signal_delay_prob : float;
      (** probability that a return signal is delayed (the [gettimeofday]
          effect behind the paper's false positives, Section 7.8) *)
  signal_delay_us : float;
  seed : int;
}

type options = {
  env : Vruntime.Hw_env.t;
  sym_configs : (string * Vsmt.Expr.var) list;
  concrete_config : string -> int;
  sym_workloads : (string * Vsmt.Expr.var) list;
  concrete_workload : string -> int;
  max_states : int;  (** cap on states ever created (forks + initial) *)
  max_loop_unroll : int;  (** iterations of a symbolic-condition loop *)
  fuel : int;  (** per-state statement budget *)
  policy : policy;
  state_switching : bool;
      (** charge {!Vruntime.Hw_env.t.state_switch_us} on every switch; the
          tracer disables this when it would distort latency (Section 5.3) *)
  time_slice : int;  (** steps before a preemptive switch (non-Dfs) *)
  solver_max_nodes : int;
  solver_cache : bool;
      (** route every feasibility/model query through a per-run
          {!Vsched.Solver_cache}; cache statistics surface in
          {!result.sched} *)
  noise : noise option;
  enable_tracer : bool;
      (** false = "vanilla S²E": no signals are captured at all (Table 7) *)
  relaxation_rules : bool;
      (** false = ablation of Section 5.4: every library call keeps its
          concretization constraints, as strict consistency would *)
  fault_injection : bool;
      (** fork an error-return (-1) state at every library call with a
          destination — the paper's Section 8 extension for specious
          configuration that only matters in error handling *)
}

val default_options :
  ?env:Vruntime.Hw_env.t ->
  config:(string -> int) ->
  workload:(string -> int) ->
  unit ->
  options
(** No symbolic variables, DFS, no switching, no noise; suitable defaults
    for [max_states] (512), [max_loop_unroll] (48), [fuel] (200_000). *)

type stats = {
  states_created : int;
  states_terminated : int;
  states_killed : int;
  forks : int;
  solver_calls : int;
  concretizations : int;
  wall_time_s : float;
}

type result = {
  states : Sym_state.t list;
  stats : stats;
  sched : Vsched.Exploration_stats.t;
}
(** [states] holds every state that reached a terminal status, in completion
    order.  [stats] keeps the historical headline counters ([solver_calls]
    counts {e queries}, cached or not, so virtual-time accounting is
    cache-independent); [sched] is the full exploration telemetry including
    solver-cache hit rates and per-state completion steps. *)

val run : options -> Vir.Ast.program -> result

val sym_config_var : Vruntime.Config_registry.t -> string -> string * Vsmt.Expr.var
(** Convenience: the [(name, var)] pair for a registry parameter, using its
    declared domain — the [make_symbolic] hook of paper Figure 7. *)

val sym_workload_var : Vruntime.Workload.template -> string -> string * Vsmt.Expr.var
