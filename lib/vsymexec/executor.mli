(** The forking symbolic executor.

    Plays the role S²E (with its embedded KLEE) plays in the paper: it
    interprets an IR program, forks a new state at every branch whose
    condition is symbolic and two-way feasible, memorizes path constraints,
    and emits call/return signals for the tracer.  The Violet-specific
    machinery is layered in directly:

    - {e symbolic hooks} (Section 4.1/4.4): configuration and workload
      variables listed in {!options.sym_configs}/{!options.sym_workloads}
      evaluate to range-restricted symbolic variables; all others read their
      concrete values;
    - {e selective concretization} (Section 5.4): library calls with symbolic
      arguments follow the Strictly-Consistent Unit-Level consistency model —
      arguments are silently concretized with a solver model, the pinned
      variable is substituted through the whole store ([concretizeAll]), and
      the relaxation rules for [Pure]/[Benign] libraries drop the
      concretization constraint (a [Pure] call instead returns a fresh
      symbol);
    - {e profiling controls} (Section 5.3): tracing starts/stops on the
      [Trace_on]/[Trace_off] hooks, state-switch costs are only charged when
      state switching is enabled, and optional latency jitter models
      measurement noise in the engine;
    - {e resilience} (the [vresilience] layer): every resource cap lives in
      one {!Vresilience.Budget.t}, exploration can be checkpointed to a
      {!snapshot} and resumed, and budget pressure walks a
      {!Vresilience.Degradation} ladder instead of aborting. *)

(** The state-selection policy is the {!Vsched.Searcher} type, re-exported so
    the historical [Executor.Dfs]-style spellings keep working.  The live
    queue behind it is instantiated per run by the executor. *)
type policy = Vsched.Searcher.t =
  | Dfs  (** run each state to completion before its sibling *)
  | Bfs
  | Random_path of int  (** seeded random state selection *)
  | Coverage_guided
      (** prioritize states closest to uncovered config-dependent branches *)
  | Config_impact of { related : string list }
      (** weight states by how many related parameters their pending branches
          read; [related = []] counts every configuration parameter *)

type noise = {
  jitter : float;  (** relative latency jitter, e.g. 0.05 for ±5% *)
  signal_delay_prob : float;
      (** probability that a return signal is delayed (the [gettimeofday]
          effect behind the paper's false positives, Section 7.8) *)
  signal_delay_us : float;
  seed : int;
}

type snapshot
(** A self-contained, [Marshal]-safe image of a paused exploration: every
    engine counter, the searcher frontier (including its RNG and coverage
    state), the solver-cache contents, the telemetry recorder, and the
    degradation-ladder history.  Resuming from a snapshot and running to
    completion produces the same states — and therefore a byte-identical
    impact model — as the uninterrupted run. *)

type options = {
  env : Vruntime.Hw_env.t;
  sym_configs : (string * Vsmt.Expr.var) list;
  concrete_config : string -> int;
  sym_workloads : (string * Vsmt.Expr.var) list;
  concrete_workload : string -> int;
  budget : Vresilience.Budget.t;
      (** unified resource budget: wall-clock deadline, state cap, per-state
          fuel, and solver node budget (replaces the old scattered
          [max_states]/[fuel]/[solver_max_nodes] fields) *)
  max_loop_unroll : int;  (** iterations of a symbolic-condition loop *)
  policy : policy;
  state_switching : bool;
      (** charge {!Vruntime.Hw_env.t.state_switch_us} on every switch; the
          tracer disables this when it would distort latency (Section 5.3) *)
  time_slice : int;  (** steps before a preemptive switch (non-Dfs) *)
  solver_cache : bool;
      (** route every feasibility/model query through a per-run
          {!Vsched.Solver_cache.Striped} shared by all workers; cache
          statistics surface in {!result.sched} *)
  slice : bool;
      (** independence slicing (KLEE lineage): feasibility queries send only
          the symbol-disjoint slices of the path condition that overlap the
          branch condition's footprint, and model queries solve each slice
          independently and compose the per-slice models in name order.
          Sound (untouched slices are inherited from the feasible parent;
          slices share no symbols) and deterministic (the solver's
          name-ordered search makes a slice's model the projection of the
          full query's, so impact models are byte-identical with slicing on
          or off while every query shrinks — the [--no-slice] escape hatch
          exists for A/B measurement, not correctness).  Default [true]. *)
  noise : noise option;
  enable_tracer : bool;
      (** false = "vanilla S²E": no signals are captured at all (Table 7) *)
  relaxation_rules : bool;
      (** false = ablation of Section 5.4: every library call keeps its
          concretization constraints, as strict consistency would *)
  fault_injection : bool;
      (** fork an error-return (-1) state at every library call with a
          destination — the paper's Section 8 extension for specious
          configuration that only matters in error handling *)
  chaos : Vresilience.Chaos.t option;
      (** engine-level fault injection (distinct from [fault_injection],
          which models faults in the analyzed program): probabilistic solver
          [Unknown]s, dropped/delayed tracer signals *)
  degradation : Vresilience.Degradation.policy;
      (** graceful-degradation ladder walked under budget pressure; each
          rung entered is recorded in {!result.sched} *)
  checkpoint_every : int;
      (** invoke [on_checkpoint] every N state picks; [0] disables *)
  on_checkpoint : (snapshot -> unit) option;
  jobs : int;
      (** number of worker domains exploring the frontier in parallel
          (clamped to [Vpar.Pool.clamp_jobs]).  [1] — the default — runs the
          historical sequential driver.  With [jobs > 1] each worker owns a
          frontier and its own noise/chaos streams; all workers share one
          lock-striped solver cache, feasibility queries go out in batches
          (both sides of a fork in one round), and idle workers steal from
          the cold end of a victim's frontier, backing off to short sleeps
          when the whole fleet is starved.  On quiesce, worker segments
          merge and finished states are renumbered by fork path, so the
          result (and therefore the impact model) is byte-identical to the
          sequential run's as long as neither the state cap nor the deadline
          binds.  Checkpointing and resume force the sequential driver
          regardless of this field. *)
  fast_nondet : bool;
      (** skip the deferred renumbering of the deterministic reduction:
          finished states keep their worker-local ids and arrival order.
          State ids and row order in the serialized impact model may then
          differ run to run under [jobs > 1] — but verdicts (checks,
          findings, scores) do not, because path constraints and symbol
          names are derived from each state's own fork history, never from
          scheduling.  Default [false]; the [--fast-nondet] escape hatch for
          throughput-first sweeps where model bytes are not diffed. *)
  prime_cache : Vsched.Solver_cache.dump option;
      (** prime the run's solver cache with a persisted dump before
          exploration starts (cross-run warm start).  The caller is
          responsible for invalidation: prime only dumps that went through
          [Vsched.Solver_cache.filter_dump], which drops entries touching
          changed code and zeroes the dump's counters so this run's hit
          statistics stay clean. *)
  on_cache_dump : (Vsched.Solver_cache.dump -> unit) option;
      (** called once at the end of the run with the merged contents of the
          shared solver cache (never called when [solver_cache = false]) —
          the persistence hook for cross-run caching. *)
}

val default_options :
  ?env:Vruntime.Hw_env.t ->
  config:(string -> int) ->
  workload:(string -> int) ->
  unit ->
  options
(** No symbolic variables, DFS, no switching, no noise, no chaos, default
    degradation policy, checkpointing off, [jobs = 1],
    [fast_nondet = false]; the default budget caps states at 512 with no
    deadline. *)

type stats = {
  states_created : int;
  states_terminated : int;
  states_killed : int;
  forks : int;
  solver_calls : int;
  concretizations : int;
  wall_time_s : float;
  deadline_hit : bool;  (** exploration was cut short by the budget deadline *)
}

type result = {
  states : Sym_state.t list;
  stats : stats;
  sched : Vsched.Exploration_stats.t;
  visited_functions : string list;
}
(** [states] holds every state that reached a terminal status, renumbered
    0..n-1 in fork-path order — a canonical, scheduling-independent order
    shared by the sequential and parallel drivers.  [stats] keeps the
    historical headline counters ([solver_calls] counts {e queries}, cached
    or not, so virtual-time accounting is cache-independent); [sched] is the
    full exploration telemetry including solver-cache hit rates, degradation
    events, per-state completion steps and — for parallel runs — per-worker
    counters.  [visited_functions] is the sorted set of functions any path
    {e entered} during exploration (including paths that later died
    infeasible) — the dynamic coverage incremental re-analysis uses to
    decide whether a code change can affect this analysis. *)

val run : ?resume:snapshot -> options -> Vir.Ast.program -> result
(** Explore [program].  With [?resume], continue a checkpointed exploration
    instead of starting fresh; raises [Invalid_argument] when the snapshot
    was taken for a different program or searcher policy. *)

(** {1 Budget-kill conventions}

    States dropped for resource reasons are [Killed] with a reason starting
    with ["budget:"], so downstream layers can distinguish resource drops
    (which widen the model conservatively) from semantic kills
    (infeasibility, stuck statements). *)

val deadline_reason : string
val degraded_drop_reason : string
val is_budget_kill : string -> bool

(** {1 Checkpoint persistence} *)

val snapshot_version : int

val save_snapshot :
  path:string -> snapshot -> (unit, Vresilience.Checkpoint.error) Stdlib.result
(** Atomic (write-to-temp + rename) versioned, checksummed snapshot file. *)

val load_snapshot :
  path:string -> (snapshot, Vresilience.Checkpoint.error) Stdlib.result
(** Never raises on a truncated, corrupt, or mismatched file — every failure
    mode is a typed {!Vresilience.Checkpoint.error}. *)

val sym_config_var : Vruntime.Config_registry.t -> string -> string * Vsmt.Expr.var
(** Convenience: the [(name, var)] pair for a registry parameter, using its
    declared domain — the [make_symbolic] hook of paper Figure 7. *)

val sym_workload_var : Vruntime.Workload.template -> string -> string * Vsmt.Expr.var
