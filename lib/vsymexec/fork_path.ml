(* O(1) fork-history paths.

   A state's fork path used to be an eagerly-built string, one character
   appended per fork — O(depth) allocation and copying on every fork, paid
   on the exploration hot path whether or not anyone ever read the string.
   Here a path is a persistent chain of one-character steps sharing its
   parent's spine, so forking is a single allocation; the rendered string
   is produced on demand (symbol naming, the final deterministic sort) and
   memoized per node.

   The memo field uses the same benign-race idiom as [Vsmt.Expr]'s
   rendered-string cache: [""] means "not yet rendered" (a rendered step is
   never empty — it carries at least its own tag), and two domains racing
   on the same node write the identical string, where an OCaml word-sized
   field write is atomic.  [Lazy] would be the obvious spelling but raises
   [Lazy.Undefined] on a concurrent force. *)

type t = Root | Step of { parent : t; tag : char; mutable str : string }

let root = Root
let extend parent tag = Step { parent; tag; str = "" }

let rec length = function Root -> 0 | Step { parent; _ } -> 1 + length parent

let rec to_string = function
  | Root -> ""
  | Step s ->
    if s.str <> "" then s.str
    else begin
      let rendered = to_string s.parent ^ String.make 1 s.tag in
      s.str <- rendered;
      rendered
    end

let compare a b = String.compare (to_string a) (to_string b)
let equal a b = compare a b = 0
let pp ppf p = Fmt.string ppf (to_string p)
