module E = Vsmt.Expr
module Ast = Vir.Ast
module S = Sym_state
module B = Vresilience.Budget
module D = Vresilience.Degradation
module Chaos = Vresilience.Chaos
module ES = Vsched.Exploration_stats

(* The policy type *is* the vsched searcher: the old [Dfs]/[Bfs]/
   [Random_path] spellings stay valid as constructors of the re-exported
   variant. *)
type policy = Vsched.Searcher.t =
  | Dfs
  | Bfs
  | Random_path of int
  | Coverage_guided
  | Config_impact of { related : string list }

type noise = {
  jitter : float;
  signal_delay_prob : float;
  signal_delay_us : float;
  seed : int;
}

(* Everything the scheduling loop needs to pick up where a previous run
   stopped: the frontier (with the searcher's rng/covered set), the finished
   states, every engine counter that feeds the impact model, the solver-cache
   contents and the telemetry recorder.  All fields are closure-free data, so
   the whole record round-trips through [Marshal] with flags [].  Expressions
   inside the states carry hashcons ids from the process that wrote them, so
   loading re-interns every expression ({!rehash_snapshot}). *)
type snapshot = {
  snap_program : string;
  snap_policy : string;
  snap_next_state_id : int;
  snap_n_forks : int;
  snap_n_solver_calls : int;
  snap_n_concretizations : int;
  snap_terminated : int;
  snap_killed : int;
  snap_last_run_id : int;
  snap_finished : Sym_state.t list;  (* newest first *)
  snap_frontier : Sym_state.t Vsched.Searcher.dump;
  snap_noise_rng : Random.State.t option;
  snap_cache : Vsched.Solver_cache.dump option;
  snap_recorder : Vsched.Exploration_stats.recorder;
  snap_degradation : D.event list;  (* ladder history, oldest first *)
  snap_visited : string list;  (* functions entered so far, sorted *)
}

type options = {
  env : Vruntime.Hw_env.t;
  sym_configs : (string * E.var) list;
  concrete_config : string -> int;
  sym_workloads : (string * E.var) list;
  concrete_workload : string -> int;
  budget : B.t;
  max_loop_unroll : int;
  policy : policy;
  state_switching : bool;
  time_slice : int;
  solver_cache : bool;
  slice : bool;
  noise : noise option;
  enable_tracer : bool;
  relaxation_rules : bool;
  fault_injection : bool;
  chaos : Chaos.t option;
  degradation : D.policy;
  checkpoint_every : int;
  on_checkpoint : (snapshot -> unit) option;
  jobs : int;
  fast_nondet : bool;
  prime_cache : Vsched.Solver_cache.dump option;
  on_cache_dump : (Vsched.Solver_cache.dump -> unit) option;
}

let default_options ?(env = Vruntime.Hw_env.hdd_server) ~config ~workload () =
  {
    env;
    sym_configs = [];
    concrete_config = config;
    sym_workloads = [];
    concrete_workload = workload;
    budget = B.with_max_states B.default 512;
    max_loop_unroll = 48;
    policy = Dfs;
    state_switching = false;
    time_slice = 64;
    solver_cache = true;
    slice = true;
    noise = None;
    enable_tracer = true;
    relaxation_rules = true;
    fault_injection = false;
    chaos = None;
    degradation = D.default_policy;
    checkpoint_every = 0;
    on_checkpoint = None;
    jobs = 1;
    fast_nondet = false;
    prime_cache = None;
    on_cache_dump = None;
  }

type stats = {
  states_created : int;
  states_terminated : int;
  states_killed : int;
  forks : int;
  solver_calls : int;
  concretizations : int;
  wall_time_s : float;
  deadline_hit : bool;
}

type result = {
  states : Sym_state.t list;
  stats : stats;
  sched : Vsched.Exploration_stats.t;
  visited_functions : string list;
}

let sym_config_var reg name =
  let p = Vruntime.Config_registry.find reg name in
  name, Vruntime.Config_registry.sym_var p

let sym_workload_var tmpl name =
  let p = Vruntime.Workload.find_param tmpl name in
  name, Vruntime.Workload.sym_var p

(* ------------------------------------------------------------------ *)

(* State-id allocation.  Sequential runs use a plain counter (and snapshot
   it); parallel runs share one atomic counter across workers, so raw ids
   are allocation-order dependent — the deterministic reduction at the end
   of the run renumbers every finished state by its fork path, which is
   scheduling-independent. *)
type id_source = Seq_ids of { mutable next : int } | Par_ids of int Atomic.t

type engine = {
  opts : options;
  worker : int;  (* worker index; 0 for sequential runs *)
  program : Ast.program;
  armed : B.armed;
  ladder : D.controller;
  ids : id_source;
  mutable n_forks : int;
  mutable n_solver_calls : int;
  mutable n_concretizations : int;
  mutable terminated : int;
  mutable killed : int;
  mutable finished : Sym_state.t list;  (* newest first *)
  mutable last_run_id : int;
  mutable picks_to_ckpt : int;
  mutable n_steals : int;
  mutable solver_time_s : float;
  mutable n_cache_hits : int;  (* queries this worker got without a solver round-trip *)
  (* batched-feasibility accounting: one batch per aggregation event (a
     fork's true/false pair, a loop-exit probe) *)
  mutable n_batches : int;
  mutable n_batch_queries : int;
  mutable n_batch_saved : int;
  (* effective knobs, tightened by the degradation ladder *)
  mutable eff_max_unroll : int;
  mutable eff_concretize_all : bool;
  rng : Random.State.t option;
  chaos : Chaos.t option;
  cache : Vsched.Solver_cache.Striped.t option;
      (* ONE striped cache shared by every worker of the run: a slice
         verdict any worker computes is immediately visible to all, where
         the pre-striped per-worker segments re-solved each other's
         queries *)
  visited : (string, unit) Hashtbl.t;
      (* every function this worker *entered* on any path, live or dead —
         the dynamic coverage that scopes incremental invalidation.
         Completed-row call chains are not enough: a path can enter a
         function and then die infeasible, yet its exploration already
         depended on that function's body. *)
  frontier : Sym_state.t Vsched.Searcher.frontier;
  recorder : Vsched.Exploration_stats.recorder;
}

let fresh_id eng =
  match eng.ids with
  | Seq_ids r ->
    let id = r.next in
    r.next <- id + 1;
    id
  | Par_ids a -> Atomic.fetch_and_add a 1

let ids_created eng =
  match eng.ids with Seq_ids r -> r.next | Par_ids a -> Atomic.get a

(* The searcher's window into a state: how deep it is and which branch
   conditions are still syntactically ahead of it.  Only the scored searchers
   ever call this. *)
(* Branch conditions still ahead of a state, in statement order, descending
   through call sites into defined callee bodies — the scored searchers need
   to see the autocommit-style branches of a [trans_commit] that the
   continuation only reaches through a [Call].  Fully-expanded per-function
   lists are memoized for the run; recursion is truncated (and the truncated
   list not memoized, since it depends on the call stack). *)
let make_state_view program =
  let memo : (string, Ast.expr list) Hashtbl.t = Hashtbl.create 64 in
  let rec func_conds visiting fname =
    match Hashtbl.find_opt memo fname with
    | Some cs -> cs
    | None ->
      if List.mem fname visiting then []
      else begin
        let cs =
          match Ast.find_func_opt program fname with
          | Some { Ast.kind = Ast.Defined body; _ } -> block_conds (fname :: visiting) body
          | _ -> []
        in
        if visiting = [] then Hashtbl.replace memo fname cs;
        cs
      end
  and block_conds visiting b = List.concat_map (stmt_conds visiting) b
  and stmt_conds visiting = function
    | Ast.If (c, t, e) -> (c :: block_conds visiting t) @ block_conds visiting e
    | Ast.While (c, body) -> c :: block_conds visiting body
    | Ast.Call { fn; _ } -> func_conds visiting fn
    | _ -> []
  in
  fun (st : S.t) ->
    let pending =
      List.concat_map
        (function
          | S.Kstmts b -> block_conds [] b
          | S.Kloop { cond; body; _ } -> cond :: block_conds [] body
          | S.Kret _ -> [])
        st.S.work
    in
    { Vsched.Searcher.depth = List.length st.S.branch_trail; pending }

(* Fresh symbols are named after the creating state's fork path and its own
   symbol counter, so the name depends only on the path's execution history —
   identical under any worker interleaving — and never collides across
   states. *)
let fresh_symbol (st : S.t) prefix =
  let n = st.S.next_symbol in
  let v =
    {
      E.name = Printf.sprintf "%s#%s:%d" prefix (Fork_path.to_string st.S.path) n;
      dom = Vsmt.Dom.int_range (-1048576) 1048576;
      origin = E.Internal;
    }
  in
  v, { st with S.next_symbol = n + 1 }

let jittered eng us =
  match eng.rng, eng.opts.noise with
  | Some rng, Some n when n.jitter > 0. ->
    us *. (1. +. (n.jitter *. ((Random.State.float rng 2.) -. 1.)))
  | _ -> us

(* Charge a cost to a state: logical metrics verbatim, latency inflated by
   the engine overhead (and jitter) on the [clock] used for timestamps. *)
let charge eng (st : S.t) ?(serial = false) (c : Vruntime.Cost.t) =
  let lat = jittered eng c.Vruntime.Cost.latency_us in
  let c = { c with Vruntime.Cost.latency_us = lat } in
  {
    st with
    S.cost = Vruntime.Cost.add st.S.cost c;
    serial_us = (st.S.serial_us +. if serial then lat else 0.);
    clock = st.S.clock +. (lat *. eng.opts.env.Vruntime.Hw_env.symexec_overhead);
  }

let emit eng (st : S.t) kind fname =
  if (not st.S.tracing) || not eng.opts.enable_tracer then st
  else begin
    match eng.chaos with
    | Some c when Chaos.flip c c.Chaos.signal_drop_p ->
      (* chaos: the signal is emitted (the guest pays for it) but never
         reaches the tracer *)
      {
        st with
        S.next_cid = st.S.next_cid + 1;
        clock = st.S.clock +. eng.opts.env.Vruntime.Hw_env.tracer_signal_us;
      }
    | chaos ->
      let ts =
        match kind, eng.rng, eng.opts.noise with
        | Signals.Ret _, Some rng, Some n
          when n.signal_delay_prob > 0. && Random.State.float rng 1.0 < n.signal_delay_prob ->
          st.S.clock +. n.signal_delay_us
        | _ -> st.S.clock
      in
      let ts =
        match chaos with
        | Some c when Chaos.flip c c.Chaos.signal_delay_p -> ts +. c.Chaos.signal_delay_us
        | _ -> ts
      in
      let r = { Signals.kind; fname; ts; thread = st.S.thread; cid = st.S.next_cid } in
      {
        st with
        S.signals = r :: st.S.signals;
        next_cid = st.S.next_cid + 1;
        clock = st.S.clock +. eng.opts.env.Vruntime.Hw_env.tracer_signal_us;
      }
  end

let chaos_unknown eng =
  match eng.chaos with
  | Some c -> Chaos.flip c c.Chaos.solver_unknown_p
  | None -> false

(* solver time is telemetry, so it reads the real clock even when the
   budget runs on an injected one *)
let timed eng f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  eng.solver_time_s <- eng.solver_time_s +. (Unix.gettimeofday () -. t0);
  r

let count_constraints cs =
  (List.length cs, List.fold_left (fun a c -> a + E.tree_size c) 0 cs)

(* One call per *logical* query, whatever the slicer sent: [n_solver_calls]
   feeds the virtual-clock analysis cost in the impact model, so it must not
   depend on how many slices a query happened to split into. *)
let record_query eng ~pre ~sent =
  let pre_constraints, pre_nodes = count_constraints pre in
  let sent_constraints, sent_nodes = count_constraints sent in
  Vsched.Exploration_stats.on_query eng.recorder ~pre_constraints ~pre_nodes ~sent_constraints
    ~sent_nodes

(* Branch-feasibility queries, batched.  Each query's [sliced] carries the
   candidate path condition's partition and the branch condition's
   footprint: only the slices overlapping that footprint are sent.  Sound
   because every untouched slice is inherited from the (feasible) parent
   path condition, so it cannot flip the verdict; on an undecided
   (budget-bound) solver the sliced query can only be *more* decided, never
   wrongly Unsat.

   A call is one aggregation event (a fork's true/false pair, a loop-exit
   probe): the pending relevant-slice queries go to the striped cache as
   one round — consulted pre-batch, with only the remaining misses each
   paying a solver round-trip that populates the shard under its lock. *)
let feasible_batch eng queries =
  let sents =
    List.map
      (fun (pc, sliced) ->
        eng.n_solver_calls <- eng.n_solver_calls + 1;
        let sent =
          match sliced with
          | Some (part, fp) when eng.opts.slice -> Vsmt.Partition.relevant part fp
          | _ -> pc
        in
        record_query eng ~pre:pc ~sent;
        sent)
      queries
  in
  eng.n_batches <- eng.n_batches + 1;
  eng.n_batch_queries <- eng.n_batch_queries + List.length sents;
  let answers =
    timed eng (fun () ->
        let max_nodes = eng.opts.budget.B.solver_max_nodes in
        match eng.cache with
        | Some cache when eng.chaos = None ->
          Vsched.Solver_cache.Striped.feasible_batch cache ~budget:eng.armed ~max_nodes sents
        | _ ->
          (* chaos runs keep their per-query Unknown flip (a forced Unknown
             over-approximates to feasible); uncached runs have no batch to
             aggregate *)
          List.map
            (fun sent ->
              if chaos_unknown eng then true, false
              else begin
                match eng.cache with
                | Some cache ->
                  Vsched.Solver_cache.Striped.is_feasible cache ~budget:eng.armed ~max_nodes sent
                | None -> Vsmt.Solver.is_feasible ~budget:eng.armed ~max_nodes sent, false
              end)
            sents)
  in
  List.iter
    (fun (_, served_from_cache) ->
      if served_from_cache then begin
        eng.n_cache_hits <- eng.n_cache_hits + 1;
        eng.n_batch_saved <- eng.n_batch_saved + 1
      end)
    answers;
  List.map fst answers

let is_feasible ?sliced eng pc =
  match feasible_batch eng [ pc, sliced ] with [ ok ] -> ok | _ -> assert false

(* Model-generation query.  With [sliced] (the path condition's partition),
   each symbol-disjoint slice is solved independently and the per-slice
   models are concatenated and name-sorted.  Sound: slices share no
   symbols, so the union assignment satisfies every slice.  Deterministic:
   the solver visits variables in name order (see [Solver.check]), so the
   model it finds for a slice alone is the projection of the model it would
   find for the full conjunction — composing slices in canonical order and
   name-sorting reproduces the unsliced model byte for byte (on decisive
   queries; a budget-bound Unknown can differ, as with any budget change). *)
let model_of ?sliced eng pc =
  eng.n_solver_calls <- eng.n_solver_calls + 1;
  (* every slice is solved, so the whole condition counts as sent *)
  record_query eng ~pre:pc ~sent:pc;
  if chaos_unknown eng then None
  else
    timed eng (fun () ->
        let max_nodes = eng.opts.budget.B.solver_max_nodes in
        let check cs =
          match eng.cache with
          | Some cache ->
            let r, served =
              Vsched.Solver_cache.Striped.check_model cache ~budget:eng.armed ~max_nodes cs
            in
            if served then eng.n_cache_hits <- eng.n_cache_hits + 1;
            r
          | None -> Vsmt.Solver.check ~budget:eng.armed ~max_nodes cs
        in
        match sliced with
        | Some part when eng.opts.slice && Vsmt.Partition.clean part ->
          let rec compose acc = function
            | [] -> Some (List.sort (fun (a, _) (b, _) -> String.compare a b) acc)
            | (cs, _) :: rest -> begin
              match check cs with
              | Vsmt.Solver.Sat m -> compose (m @ acc) rest
              | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> None
            end
          in
          compose [] (Vsmt.Partition.slices part)
        | _ -> begin
          match check pc with
          | Vsmt.Solver.Sat m -> Some m
          | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> None
        end)

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation of IR expressions.                              *)
(* ------------------------------------------------------------------ *)

exception Stuck of string

let rec sym_eval eng (st : S.t) (e : Ast.expr) : E.t =
  match e with
  | Ast.Const v -> E.const v
  | Ast.Config n -> begin
    match List.assoc_opt n eng.opts.sym_configs with
    | Some v -> E.of_var v
    | None -> E.const (eng.opts.concrete_config n)
  end
  | Ast.Workload n -> begin
    match List.assoc_opt n eng.opts.sym_workloads with
    | Some v -> E.of_var v
    | None -> E.const (eng.opts.concrete_workload n)
  end
  | Ast.Local n -> begin
    match Sym_store.get_local st.S.store n with
    | Some v -> v
    | None -> raise (Stuck (Printf.sprintf "uninitialized local %s" n))
  end
  | Ast.Global n -> begin
    match Sym_store.get_global st.S.store n with
    | Some v -> v
    | None -> raise (Stuck (Printf.sprintf "unknown global %s" n))
  end
  | Ast.Not e -> E.not_ (sym_eval eng st e)
  | Ast.Neg e -> E.neg (sym_eval eng st e)
  | Ast.Binop (op, a, b) -> E.binop op (sym_eval eng st a) (sym_eval eng st b)
  | Ast.Ite (c, a, b) -> E.ite (sym_eval eng st c) (sym_eval eng st a) (sym_eval eng st b)

let sym_eval_simpl eng st e = Vsmt.Simplify.simplify (sym_eval eng st e)

(* Concretize a symbolic expression under the current path condition.
   Returns the concrete value and, per the consistency model, pins every
   symbolic variable occurring in [e]: adds [var == value] constraints
   (unless [add_constraint] is false, the relaxation-rule case) and
   substitutes the pinned variables through the store (concretizeAll). *)
let concretize eng (st : S.t) ~add_constraint e =
  eng.n_concretizations <- eng.n_concretizations + 1;
  match E.is_const e with
  | Some v -> v, st
  | None -> begin
    let vars = E.vars e in
    match model_of ~sliced:st.S.pc_part eng (st.S.pc @ [ E.tru ]) with
    | None ->
      (* path condition infeasible or unknown: fall back to domain minima *)
      let m = Vsmt.Solver.complete ~vars [] in
      (match Vsmt.Solver.eval_in m e with Some v -> v | None -> 0), st
    | Some m ->
      let m = Vsmt.Solver.complete ~vars m in
      let v = match Vsmt.Solver.eval_in m e with Some v -> v | None -> 0 in
      let pinned =
        List.filter_map
          (fun (var : E.var) ->
            match Vsmt.Solver.model_value m var.E.name with
            | Some x -> Some (var, x)
            | None -> None)
          vars
      in
      let subst (w : E.var) =
        List.find_map
          (fun ((var : E.var), x) ->
            if String.equal var.E.name w.E.name then Some (E.const x) else None)
          pinned
      in
      let store = Sym_store.substitute_everywhere st.S.store subst in
      let pc =
        if add_constraint then
          Vsmt.Simplify.simplify_conj
            (st.S.pc
            @ List.map (fun ((vr : E.var), x) -> E.binop E.Eq (E.of_var vr) (E.const x)) pinned)
        else st.S.pc
      in
      v, S.with_pc { st with S.store } pc
  end

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

type step_result =
  | One of S.t
  | Two of S.t * S.t  (** fork *)
  | Done of S.t  (** reached a terminal status *)

let kill st reason = Done { st with S.status = S.Killed reason }

(* Unwind the work stack to the nearest [Kret]; emit the return signal and
   bind the returned value.  [None] work means the entry returned. *)
let do_return eng (st : S.t) value =
  let rec unwind work =
    match work with
    | [] -> None
    | S.Kret { dest; fname; ret_addr } :: rest -> Some (dest, fname, ret_addr, rest)
    | (S.Kstmts _ | S.Kloop _) :: rest -> unwind rest
  in
  match unwind st.S.work with
  | None -> Done { st with S.status = S.Terminated value; work = [] }
  | Some (dest, fname, ret_addr, rest) ->
    let st = emit eng st (Signals.Ret { ret_addr }) fname in
    let st = { st with S.store = Sym_store.pop_frame st.S.store; work = rest } in
    if rest = [] then
      (* the entry function returned: keep its value as the path's result *)
      Done { st with S.status = S.Terminated value }
    else begin
      let st =
        match dest with
        | Some d ->
          let v = match value with Some v -> v | None -> E.const 0 in
          { st with S.store = Sym_store.set_local st.S.store d v }
        | None -> st
      in
      One st
    end

let enter_function eng (st : S.t) ~dest ~ret_addr (f : Ast.func) args =
  Hashtbl.replace eng.visited f.Ast.fname ();
  let st = emit eng st (Signals.Call { eip = f.Ast.addr; ret_addr }) f.Ast.fname in
  let store = Sym_store.push_frame st.S.store in
  let store =
    List.fold_left
      (fun store (i, name) ->
        let v = try List.nth args i with Failure _ | Invalid_argument _ -> E.const 0 in
        Sym_store.set_local store name v)
      store
      (List.mapi (fun i n -> i, n) f.Ast.params)
  in
  {
    st with
    S.store;
    work = S.Kstmts (Ast.func_body f) :: S.Kret { dest; fname = f.Ast.fname; ret_addr } :: st.S.work;
  }

let call_library eng (st : S.t) ~dest ~ret_addr (f : Ast.func) lib args =
  Hashtbl.replace eng.visited f.Ast.fname ();
  let st = emit eng st (Signals.Call { eip = f.Ast.addr; ret_addr }) f.Ast.fname in
  let effect, semantics, cost =
    match (lib : Ast.fkind) with
    | Ast.Library { effect; semantics; cost } -> effect, semantics, cost
    | Ast.Defined _ -> assert false
  in
  let st =
    List.fold_left (fun st (p, m) -> charge eng st (Vruntime.Hw_env.cost_of_prim eng.opts.env p m)) st cost
  in
  let all_const = List.for_all (fun a -> E.is_const a <> None) args in
  let ret_value, st =
    if all_const then begin
      let vals = List.map (fun a -> match E.is_const a with Some v -> v | None -> 0) args in
      E.const (semantics vals), st
    end
    else begin
      (* degradation rung 2 forces [concretizeAll] semantics on every call *)
      let effective =
        if eng.opts.relaxation_rules && not eng.eff_concretize_all then effect
        else Ast.Effectful
      in
      match effective with
      | Ast.Pure ->
        (* relaxation rule 1: no side effect; keep args symbolic, return a
           fresh symbol, no concretization constraint *)
        let v, st = fresh_symbol st f.Ast.fname in
        E.of_var v, st
      | Ast.Benign | Ast.Effectful ->
        let add_constraint = effective = Ast.Effectful in
        let vals, st =
          List.fold_left
            (fun (vals, st) a ->
              let v, st = concretize eng st ~add_constraint a in
              vals @ [ v ], st)
            ([], st) args
        in
        E.const (semantics vals), st
    end
  in
  let st = emit eng st (Signals.Ret { ret_addr }) f.Ast.fname in
  match dest with
  | Some d -> { st with S.store = Sym_store.set_local st.S.store d ret_value }
  | None -> st

let exec_branch eng (st : S.t) cond ~on_true ~on_false =
  (* coverage feedback for the coverage-guided searcher: this branch site has
     now been executed by some state *)
  Vsched.Searcher.mark_covered eng.frontier cond;
  let c = sym_eval_simpl eng st cond in
  match E.is_const c with
  | Some v -> One (if v <> 0 then on_true st else on_false st)
  | None -> begin
    let pc_true = Vsmt.Simplify.simplify_conj (st.S.pc @ [ c ]) in
    let pc_false = Vsmt.Simplify.simplify_conj (st.S.pc @ [ E.not_ c ]) in
    (* both sides share the branch condition's footprint ([not_ c] reads the
       same symbols), and it covers every conjunct simplification can derive
       from [c], so it bounds the slices either side's verdict depends on *)
    let fp = Vsmt.Footprint.of_expr c in
    let part_true = Vsmt.Partition.extend st.S.pc_part pc_true in
    let part_false = Vsmt.Partition.extend st.S.pc_part pc_false in
    let can_fork = ids_created eng < eng.opts.budget.B.max_states in
    (* both sides of the fork go out as one batched feasibility round *)
    let t_ok, f_ok =
      match
        feasible_batch eng
          [ pc_true, Some (part_true, fp); pc_false, Some (part_false, fp) ]
      with
      | [ t_ok; f_ok ] -> t_ok, f_ok
      | _ -> assert false
    in
    match t_ok, f_ok with
    | true, false ->
      One
        (on_true
           { st with S.pc = pc_true; pc_part = part_true; branch_trail = c :: st.S.branch_trail })
    | false, true ->
      One
        (on_false
           {
             st with
             S.pc = pc_false;
             pc_part = part_false;
             branch_trail = E.not_ c :: st.S.branch_trail;
           })
    | false, false -> kill st "infeasible path condition"
    | true, true ->
      if can_fork then begin
        eng.n_forks <- eng.n_forks + 1;
        Vsched.Exploration_stats.on_fork eng.recorder;
        let st_t =
          {
            st with
            S.id = fresh_id eng;
            parent = Some st.S.id;
            path = Fork_path.extend st.S.path 't';
            pc = pc_true;
            pc_part = part_true;
            branch_trail = c :: st.S.branch_trail;
          }
        in
        let st_f =
          {
            st with
            S.id = fresh_id eng;
            parent = Some st.S.id;
            path = Fork_path.extend st.S.path 'f';
            pc = pc_false;
            pc_part = part_false;
            branch_trail = E.not_ c :: st.S.branch_trail;
          }
        in
        Two (on_true st_t, on_false st_f)
      end
      else
        (* state cap reached: concretize the branch like a silent
           concretization and continue down one side *)
        One
          (on_true
             { st with S.pc = pc_true; pc_part = part_true; branch_trail = c :: st.S.branch_trail })
  end

let step eng (st : S.t) : step_result =
  if st.S.fuel <= 0 then kill st "out of fuel"
  else begin
    Vsched.Exploration_stats.on_step eng.recorder;
    let st = { st with S.fuel = st.S.fuel - 1 } in
    let st = charge eng st (Vruntime.Hw_env.statement_cost eng.opts.env) in
    match st.S.work with
    | [] -> Done { st with S.status = S.Terminated None }
    | S.Kret _ :: _ -> do_return eng st None  (* function body fell through *)
    | S.Kloop { cond; body; iter } :: rest ->
      if iter >= eng.eff_max_unroll then begin
        (* force loop exit if feasible, else kill: bounded unrolling *)
        let c = sym_eval_simpl eng st cond in
        match E.is_const c with
        | Some v when v <> 0 -> kill st "loop unroll limit"
        | Some _ -> One { st with S.work = rest }
        | None ->
          let pc_false = Vsmt.Simplify.simplify_conj (st.S.pc @ [ E.not_ c ]) in
          let part_false = Vsmt.Partition.extend st.S.pc_part pc_false in
          if is_feasible ~sliced:(part_false, Vsmt.Footprint.of_expr c) eng pc_false then
            One { st with S.pc = pc_false; pc_part = part_false; work = rest }
          else kill st "loop unroll limit"
      end
      else
        exec_branch eng st cond
          ~on_true:(fun st ->
            {
              st with
              S.work = S.Kstmts body :: S.Kloop { cond; body; iter = iter + 1 } :: rest;
            })
          ~on_false:(fun st -> { st with S.work = rest })
    | S.Kstmts [] :: rest -> One { st with S.work = rest }
    | S.Kstmts (stmt :: tail) :: rest -> begin
      let st = { st with S.work = S.Kstmts tail :: rest } in
      match stmt with
      | Ast.Assign (Ast.Lv_local n, e) ->
        let v = sym_eval_simpl eng st e in
        One { st with S.store = Sym_store.set_local st.S.store n v }
      | Ast.Assign (Ast.Lv_global n, e) ->
        let v = sym_eval_simpl eng st e in
        One { st with S.store = Sym_store.set_global st.S.store n v }
      | Ast.If (c, th, el) ->
        exec_branch eng st c
          ~on_true:(fun st -> { st with S.work = S.Kstmts th :: st.S.work })
          ~on_false:(fun st -> { st with S.work = S.Kstmts el :: st.S.work })
      | Ast.While (c, body) ->
        One { st with S.work = S.Kloop { cond = c; body; iter = 0 } :: st.S.work }
      | Ast.Call { dest; fn; args; ret_addr } -> begin
        let f = Ast.find_func eng.program fn in
        let args = List.map (sym_eval_simpl eng st) args in
        match f.Ast.kind with
        | Ast.Defined _ -> One (enter_function eng st ~dest ~ret_addr f args)
        | Ast.Library _ ->
          let ok = call_library eng st ~dest ~ret_addr f f.Ast.kind args in
          (* Section 8: specious configuration used only in error handling
             needs faults to surface; fault injection forks a state where
             the library call fails with -1 *)
          if eng.opts.fault_injection && dest <> None
             && ids_created eng < eng.opts.budget.B.max_states
          then begin
            eng.n_forks <- eng.n_forks + 1;
            Vsched.Exploration_stats.on_fork eng.recorder;
            let failed =
              let st = emit eng st (Signals.Call { eip = f.Ast.addr; ret_addr }) f.Ast.fname in
              let st = emit eng st (Signals.Ret { ret_addr }) f.Ast.fname in
              match dest with
              | Some d ->
                { st with
                  S.id = fresh_id eng;
                  parent = Some st.S.id;
                  path = Fork_path.extend st.S.path 'x';
                  store = Sym_store.set_local st.S.store d (E.const (-1));
                }
              | None -> st
            in
            Two
              ( {
                  ok with
                  S.id = fresh_id eng;
                  parent = Some st.S.id;
                  path = Fork_path.extend st.S.path 's';
                },
                failed )
          end
          else One ok
      end
      | Ast.Return e ->
        let v = Option.map (sym_eval_simpl eng st) e in
        do_return eng st v
      | Ast.Prim (p, args) -> begin
        let magnitude, st =
          match args with
          | [] -> 1, st
          | a :: _ -> begin
            let e = sym_eval_simpl eng st a in
            match E.is_const e with
            | Some v -> v, st
            | None ->
              (* cost magnitudes are concretized without constraining the
                 path: an approximation of the engine's cost accounting,
                 documented in DESIGN.md *)
              concretize eng st ~add_constraint:false e
          end
        in
        let c = Vruntime.Hw_env.cost_of_prim eng.opts.env p magnitude in
        One (charge eng st ~serial:(Vruntime.Concrete_exec.is_serial_prim p) c)
      end
      | Ast.Thread n -> One { st with S.thread = n }
      | Ast.Trace_on -> One { st with S.tracing = true }
      | Ast.Trace_off -> One { st with S.tracing = false }
    end
  end

(* ------------------------------------------------------------------ *)
(* Scheduling loop                                                     *)
(* ------------------------------------------------------------------ *)

(* kill reasons the pipeline recognizes as budget-induced drops; such states
   become dropped-path entries in the model's degradation summary *)
let budget_kill_prefix = "budget:"
let deadline_reason = budget_kill_prefix ^ " deadline"
let degraded_drop_reason = budget_kill_prefix ^ " degraded frontier drop"

let is_budget_kill reason =
  String.length reason >= String.length budget_kill_prefix
  && String.sub reason 0 (String.length budget_kill_prefix) = budget_kill_prefix

let finish_state eng (st : S.t) =
  begin
    match st.S.status with
    | S.Terminated _ -> eng.terminated <- eng.terminated + 1
    | S.Killed _ -> eng.killed <- eng.killed + 1
    | S.Running -> assert false
  end;
  Vsched.Exploration_stats.on_complete eng.recorder ~state_id:st.S.id
    ~dropped:(match st.S.status with S.Killed _ -> true | _ -> false);
  eng.finished <- st :: eng.finished

let drop_state eng (st : S.t) reason =
  finish_state eng { st with S.status = S.Killed reason }

let drain_frontier eng reason =
  let rec go () =
    match Vsched.Searcher.select eng.frontier with
    | None -> ()
    | Some st ->
      drop_state eng st reason;
      go ()
  in
  go ()

let visited_list eng =
  Hashtbl.fold (fun f () acc -> f :: acc) eng.visited [] |> List.sort String.compare

let snapshot_of eng =
  {
    snap_program = eng.program.Ast.pname;
    snap_policy = Vsched.Searcher.to_string eng.opts.policy;
    snap_next_state_id = ids_created eng;
    snap_n_forks = eng.n_forks;
    snap_n_solver_calls = eng.n_solver_calls;
    snap_n_concretizations = eng.n_concretizations;
    snap_terminated = eng.terminated;
    snap_killed = eng.killed;
    snap_last_run_id = eng.last_run_id;
    snap_finished = eng.finished;
    snap_frontier = Vsched.Searcher.dump eng.frontier;
    snap_noise_rng = Option.map Random.State.copy eng.rng;
    snap_cache = Option.map Vsched.Solver_cache.Striped.dump eng.cache;
    snap_recorder = Vsched.Exploration_stats.copy eng.recorder;
    snap_degradation = D.events eng.ladder;
    snap_visited = visited_list eng;
  }

(* version 4: added [snap_visited] (dynamic function coverage for
   incremental invalidation); version 3: Sym_state.path became the
   structured [Fork_path.t] (version 2 introduced [path]/[next_symbol] as
   a flat string) *)
let snapshot_version = 4
let snapshot_kind = "executor-frontier"

let save_snapshot ~path snap =
  Vresilience.Checkpoint.write ~path ~kind:snapshot_kind ~version:snapshot_version
    (Marshal.to_string snap [])

(* Marshalled expressions carry the hashcons ids of the process that wrote
   the snapshot; re-intern every expression so they can be mixed with this
   process's. *)
let rehash_snapshot snap =
  let rs = S.map_exprs E.rehash in
  {
    snap with
    snap_finished = List.map rs snap.snap_finished;
    snap_frontier =
      {
        snap.snap_frontier with
        Vsched.Searcher.d_states = List.map rs snap.snap_frontier.Vsched.Searcher.d_states;
      };
  }

let load_snapshot ~path =
  match Vresilience.Checkpoint.read ~path ~kind:snapshot_kind ~version:snapshot_version with
  | Error e -> Error e
  | Ok payload -> begin
    match (Marshal.from_string payload 0 : snapshot) with
    | snap -> Ok (rehash_snapshot snap)
    | exception _ -> Error Vresilience.Checkpoint.Corrupt
  end

(* entering a degradation rung tightens the engine's effective knobs *)
let tighten_knobs eng (rung : D.rung) =
  match rung with
  | D.Full -> ()
  | D.Reduced_unroll ->
    eng.eff_max_unroll <- min eng.eff_max_unroll (max 2 (eng.opts.max_loop_unroll / 8))
  | D.Concretize_all -> eng.eff_concretize_all <- true
  | D.Drop_states ->
    let len = Vsched.Searcher.length eng.frontier in
    let keep =
      max 1
        (int_of_float
           (ceil (float_of_int len *. eng.opts.degradation.D.drop_keep_fraction)))
    in
    if len > keep then
      List.iter
        (fun st -> drop_state eng st degraded_drop_reason)
        (Vsched.Searcher.drop_weakest eng.frontier ~keep)

(* ------------------------------------------------------------------ *)
(* Engine construction and the deterministic reduction                 *)
(* ------------------------------------------------------------------ *)

let make_engine ~worker ~ids ~armed ~cache opts program =
  {
    opts;
    worker;
    program;
    armed;
    ladder = D.controller opts.degradation;
    ids;
    n_forks = 0;
    n_solver_calls = 0;
    n_concretizations = 0;
    n_cache_hits = 0;
    n_batches = 0;
    n_batch_queries = 0;
    n_batch_saved = 0;
    terminated = 0;
    killed = 0;
    finished = [];
    last_run_id = -1;
    picks_to_ckpt = 0;
    n_steals = 0;
    solver_time_s = 0.;
    eff_max_unroll = opts.max_loop_unroll;
    eff_concretize_all = false;
    rng =
      (match opts.noise with
      | Some n when worker = 0 -> Some (Random.State.make [| n.seed |])
      | Some n -> Some (Random.State.make [| n.seed; worker |])
      | None -> None);
    chaos =
      (if worker = 0 then opts.chaos else Option.map (Chaos.fork ~salt:worker) opts.chaos);
    cache;
    visited = Hashtbl.create 64;
    frontier = Vsched.Searcher.frontier ~view:(make_state_view program) opts.policy;
    recorder =
      Vsched.Exploration_stats.recorder
        ~searcher:(Vsched.Searcher.name opts.policy)
        ~solver_cache_enabled:opts.solver_cache ();
  }

let root_state eng program opts =
  let entry = Ast.find_func program program.Ast.entry in
  (* tracing starts disabled only when a reachable Trace_on hook will
     turn it on later (Section 5.3, optimization 1) *)
  let reachable =
    Vir.Callgraph.reachable (Vir.Callgraph.build program) ~from:program.Ast.entry
  in
  let has_trace_on =
    List.exists
      (fun (f : Ast.func) ->
        List.mem f.Ast.fname reachable
        &&
        let found = ref false in
        Ast.iter_stmts
          (function Ast.Trace_on -> found := true | _ -> ())
          (Ast.func_body f);
        !found)
      program.Ast.funcs
  in
  let root_ret_addr = 0x10 in
  let st0 =
    S.initial ~id:0
      ~store:(Sym_store.with_globals program.Ast.globals)
      ~work:[] ~fuel:opts.budget.B.fuel ~tracing:(not has_trace_on)
  in
  enter_function eng st0 ~dest:None ~ret_addr:root_ret_addr entry []

(* The deterministic reduction: finished states are sorted by fork path
   (unique, scheduling-independent) and renumbered 0..n-1 in that order, so
   the state ids that appear in the serialized impact model — rows, pairs,
   dropped paths — do not depend on worker interleaving or searcher policy
   timing.  The recorder's completion log is rewritten to the same ids.
   Parent pointers refer to pre-fork states that never reach the finished
   list, so lineage collapses to [None] uniformly in every mode. *)
let canonicalize_states eng finished =
  let sorted =
    List.stable_sort (fun (a : S.t) b -> Fork_path.compare a.S.path b.S.path) finished
  in
  let remap = Hashtbl.create (List.length sorted * 2) in
  List.iteri (fun i (st : S.t) -> Hashtbl.replace remap st.S.id i) sorted;
  let states =
    List.mapi
      (fun i (st : S.t) ->
        { st with S.id = i; parent = Option.bind st.S.parent (Hashtbl.find_opt remap) })
      sorted
  in
  let completions =
    List.filter_map
      (fun (c : ES.completion) ->
        match Hashtbl.find_opt remap c.ES.state_id with
        | Some id -> Some { c with ES.state_id = id }
        | None -> None)
      (ES.completions eng.recorder)
  in
  ES.set_completions eng.recorder completions;
  states

(* ------------------------------------------------------------------ *)
(* Sequential driver                                                   *)
(* ------------------------------------------------------------------ *)

let run_sequential ?resume opts program eng =
  let deadline_hit = ref false in
  let frontier = eng.frontier in
  begin
    match resume with
    | Some s ->
      (match eng.ids with Seq_ids r -> r.next <- s.snap_next_state_id | Par_ids _ -> ());
      eng.n_forks <- s.snap_n_forks;
      eng.n_solver_calls <- s.snap_n_solver_calls;
      eng.n_concretizations <- s.snap_n_concretizations;
      eng.terminated <- s.snap_terminated;
      eng.killed <- s.snap_killed;
      eng.finished <- s.snap_finished;
      eng.last_run_id <- s.snap_last_run_id;
      Vsched.Searcher.restore eng.frontier s.snap_frontier;
      D.restore eng.ladder s.snap_degradation;
      (* re-derive the effective knobs from the restored ladder position
         (frontier drops already happened before the snapshot) *)
      List.iter
        (fun (ev : D.event) ->
          match ev.D.rung with
          | D.Drop_states -> ()
          | rung -> tighten_knobs eng rung)
        s.snap_degradation;
      Vsched.Exploration_stats.mark_resumed eng.recorder
    | None -> Vsched.Searcher.add frontier ~preempted:false (root_state eng program opts)
  end;
  let switch_cost (st : S.t) =
    if opts.state_switching && eng.last_run_id <> st.S.id && eng.last_run_id >= 0 then
      { st with S.clock = st.S.clock +. opts.env.Vruntime.Hw_env.state_switch_us }
    else st
  in
  let slice =
    if Vsched.Searcher.run_to_completion opts.policy then max_int else opts.time_slice
  in
  let maybe_checkpoint () =
    match opts.on_checkpoint with
    | Some hook when opts.checkpoint_every > 0 ->
      eng.picks_to_ckpt <- eng.picks_to_ckpt + 1;
      if eng.picks_to_ckpt >= opts.checkpoint_every then begin
        eng.picks_to_ckpt <- 0;
        hook (snapshot_of eng)
      end
    | _ -> ()
  in
  let rec drive () =
    if B.expired eng.armed then begin
      deadline_hit := true;
      drain_frontier eng deadline_reason
    end
    else begin
      List.iter
        (fun (ev : D.event) ->
          Vsched.Exploration_stats.on_degrade eng.recorder ev;
          tighten_knobs eng ev.D.rung)
        (D.observe eng.ladder ~pressure:(B.pressure eng.armed)
           ~step:(Vsched.Exploration_stats.steps eng.recorder));
      maybe_checkpoint ();
      match Vsched.Searcher.select frontier with
      | None -> ()
      | Some st ->
        Vsched.Exploration_stats.on_pick eng.recorder
          ~queue_depth:(Vsched.Searcher.length frontier);
        let st = switch_cost st in
        eng.last_run_id <- st.S.id;
        let rec run_state st steps =
          if B.expired eng.armed then begin
            deadline_hit := true;
            drop_state eng st deadline_reason
          end
          else if steps = 0 then Vsched.Searcher.add frontier ~preempted:true st
          else begin
            match
              try step eng st
              with Stuck reason -> Done { st with S.status = S.Killed ("stuck: " ^ reason) }
            with
            | One st -> run_state st (steps - 1)
            | Two (a, b) ->
              (* run the first child now; queue the second *)
              Vsched.Searcher.add frontier ~preempted:false b;
              run_state a (steps - 1)
            | Done st -> finish_state eng st
          end
        in
        run_state st slice;
        drive ()
    end
  in
  drive ();
  !deadline_hit

(* ------------------------------------------------------------------ *)
(* Parallel driver                                                     *)
(* ------------------------------------------------------------------ *)

(* Each worker owns a frontier (guarded by its mutex), a solver-cache
   segment, a recorder, and its own noise/chaos streams; the state-id
   counter is the only hot shared cell.  An idle worker steals from the
   cold end of a victim's frontier.  Termination: [in_flight] counts states
   that exist but have not reached a terminal status; when it hits zero no
   worker can ever receive work again.

   On quiesce, worker segments merge into worker 0's engine and the
   deterministic reduction renumbers the union of finished states, so the
   result is byte-identical to the sequential run's (as long as neither the
   state cap nor the wall-clock deadline binds — both are inherently
   timing-dependent cut-offs, and noise/chaos streams are per-worker). *)
let run_parallel opts program engines =
  let jobs = Array.length engines in
  let locks = Array.init jobs (fun _ -> Mutex.create ()) in
  let in_flight = Atomic.make 1 in
  let deadline_hit = Atomic.make false in
  let with_lock w f =
    Mutex.lock locks.(w);
    Fun.protect ~finally:(fun () -> Mutex.unlock locks.(w)) f
  in
  Vsched.Searcher.add engines.(0).frontier ~preempted:false
    (root_state engines.(0) program opts);
  let slice =
    if Vsched.Searcher.run_to_completion opts.policy then max_int else opts.time_slice
  in
  let worker w =
    let eng = engines.(w) in
    (* Idle backoff: a worker that finds no runnable state spins briefly
       (cheap, keeps steal latency low while victims are still forking),
       then parks in short sleeps so it stops burning a core — and stops
       hammering the frontier locks of the workers still doing real work. *)
    let idle_misses = ref 0 in
    let idle_backoff () =
      incr idle_misses;
      if !idle_misses <= 32 then Domain.cpu_relax () else Unix.sleepf 0.00005
    in
    let idle_reset () = idle_misses := 0 in
    let switch_cost (st : S.t) =
      if opts.state_switching && eng.last_run_id <> st.S.id && eng.last_run_id >= 0 then
        { st with S.clock = st.S.clock +. opts.env.Vruntime.Hw_env.state_switch_us }
      else st
    in
    let rec run_state st steps =
      if B.expired eng.armed then begin
        Atomic.set deadline_hit true;
        drop_state eng st deadline_reason;
        Atomic.decr in_flight
      end
      else if steps = 0 then with_lock w (fun () -> Vsched.Searcher.add eng.frontier ~preempted:true st)
      else begin
        match
          try step eng st
          with Stuck reason -> Done { st with S.status = S.Killed ("stuck: " ^ reason) }
        with
        | One st -> run_state st (steps - 1)
        | Two (a, b) ->
          (* run the first child now; queue the second on our own frontier *)
          Atomic.incr in_flight;
          with_lock w (fun () -> Vsched.Searcher.add eng.frontier ~preempted:false b);
          run_state a (steps - 1)
        | Done st ->
          finish_state eng st;
          Atomic.decr in_flight
      end
    in
    let try_steal () =
      let rec go i =
        if i >= jobs then None
        else begin
          let v = (w + i) mod jobs in
          match with_lock v (fun () -> Vsched.Searcher.steal engines.(v).frontier) with
          | Some st ->
            eng.n_steals <- eng.n_steals + 1;
            Some st
          | None -> go (i + 1)
        end
      in
      go 1
    in
    let rec loop () =
      if Atomic.get in_flight <= 0 then ()
      else if B.expired eng.armed then begin
        Atomic.set deadline_hit true;
        (* drain our own frontier; every other worker drains its own *)
        let rec drain () =
          match with_lock w (fun () -> Vsched.Searcher.select eng.frontier) with
          | None -> ()
          | Some st ->
            drop_state eng st deadline_reason;
            Atomic.decr in_flight;
            drain ()
        in
        drain ();
        if Atomic.get in_flight > 0 then begin
          idle_backoff ();
          loop ()
        end
      end
      else begin
        List.iter
          (fun (ev : D.event) ->
            Vsched.Exploration_stats.on_degrade eng.recorder ev;
            tighten_knobs eng ev.D.rung)
          (D.observe eng.ladder ~pressure:(B.pressure eng.armed)
             ~step:(Vsched.Exploration_stats.steps eng.recorder));
        match with_lock w (fun () -> Vsched.Searcher.select eng.frontier) with
        | Some st ->
          idle_reset ();
          Vsched.Exploration_stats.on_pick eng.recorder
            ~queue_depth:(Vsched.Searcher.length eng.frontier);
          let st = switch_cost st in
          eng.last_run_id <- st.S.id;
          run_state st slice;
          loop ()
        | None -> begin
          match try_steal () with
          | Some st ->
            idle_reset ();
            Vsched.Exploration_stats.on_pick eng.recorder ~queue_depth:0;
            let st = switch_cost st in
            eng.last_run_id <- st.S.id;
            run_state st slice;
            loop ()
          | None ->
            idle_backoff ();
            loop ()
        end
      end
    in
    loop ()
  in
  Vpar.Pool.run ~jobs worker;
  Atomic.get deadline_hit

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?resume opts program =
  begin
    match resume with
    | Some s when not (String.equal s.snap_program program.Ast.pname) ->
      invalid_arg
        (Printf.sprintf "Executor.run: snapshot is for program %S, not %S" s.snap_program
           program.Ast.pname)
    | Some s when not (String.equal s.snap_policy (Vsched.Searcher.to_string opts.policy)) ->
      invalid_arg
        (Printf.sprintf "Executor.run: snapshot used searcher %s, options say %s"
           s.snap_policy
           (Vsched.Searcher.to_string opts.policy))
    | _ -> ()
  end;
  let t0 = opts.budget.B.now () in
  (* checkpointing and resume walk a single engine's frontier, so they force
     the sequential driver regardless of [jobs] *)
  let jobs =
    if resume <> None || opts.on_checkpoint <> None then 1
    else Vpar.Pool.clamp_jobs opts.jobs
  in
  let armed = B.arm opts.budget in
  let parallel = jobs > 1 in
  let ids = if parallel then Par_ids (Atomic.make 1) else Seq_ids { next = 1 } in
  (* one solver cache shared by every worker: duplicated queries across
     domains hit instead of re-solving.  Sequential runs use a single shard
     (no contention to stripe against). *)
  let cache =
    if opts.solver_cache then
      Some (Vsched.Solver_cache.Striped.create ~shards:(if parallel then 64 else 1) ())
    else None
  in
  let engines =
    Array.init jobs (fun w -> make_engine ~worker:w ~ids ~armed ~cache opts program)
  in
  let eng = engines.(0) in
  (* the entry function is entered by construction, not via a Call *)
  Hashtbl.replace eng.visited program.Ast.entry ();
  begin
    match resume with
    | Some { snap_cache = Some d; _ } -> begin
      match cache with
      | Some cache -> Vsched.Solver_cache.Striped.prime cache d
      | None -> ()
    end
    | _ -> ()
  end;
  (* cross-run warm start: prime the shared cache with a persisted dump
     (already footprint-filtered and counter-zeroed by the caller) *)
  begin
    match opts.prime_cache, cache with
    | Some d, Some cache -> Vsched.Solver_cache.Striped.prime cache d
    | _ -> ()
  end;
  begin
    match resume with
    | Some s -> List.iter (fun f -> Hashtbl.replace eng.visited f ()) s.snap_visited
    | None -> ()
  end;
  begin
    match resume with
    | Some s ->
      (* replace worker 0's fresh recorder with the snapshot's *)
      Vsched.Exploration_stats.merge ~into:eng.recorder
        (Vsched.Exploration_stats.copy s.snap_recorder)
    | None -> ()
  end;
  let deadline_hit =
    if parallel then run_parallel opts program engines
    else run_sequential ?resume opts program eng
  in
  (* quiesce: merge worker segments into worker 0 *)
  let per_worker =
    Array.to_list
      (Array.map
         (fun (weng : engine) ->
           {
             ES.w_id = weng.worker;
             w_steps = Vsched.Exploration_stats.steps weng.recorder;
             w_forks = weng.n_forks;
             w_steals = weng.n_steals;
             w_solver_queries = weng.n_solver_calls;
             w_cache_hits = weng.n_cache_hits;
             w_solver_time_s = weng.solver_time_s;
           })
         engines)
  in
  for w = 1 to jobs - 1 do
    let weng = engines.(w) in
    eng.n_forks <- eng.n_forks + weng.n_forks;
    eng.n_solver_calls <- eng.n_solver_calls + weng.n_solver_calls;
    eng.n_concretizations <- eng.n_concretizations + weng.n_concretizations;
    eng.terminated <- eng.terminated + weng.terminated;
    eng.killed <- eng.killed + weng.killed;
    eng.n_cache_hits <- eng.n_cache_hits + weng.n_cache_hits;
    eng.n_batches <- eng.n_batches + weng.n_batches;
    eng.n_batch_queries <- eng.n_batch_queries + weng.n_batch_queries;
    eng.n_batch_saved <- eng.n_batch_saved + weng.n_batch_saved;
    eng.finished <- weng.finished @ eng.finished;
    Hashtbl.iter (fun f () -> Hashtbl.replace eng.visited f ()) weng.visited;
    Vsched.Exploration_stats.merge ~into:eng.recorder weng.recorder
  done;
  (* the deterministic reduction: path-sorted, renumbered states.
     --fast-nondet trades it away: states keep their worker-local ids and
     arrival order, so model bytes may differ run to run, but verdicts
     (which depend on constraints and symbol names, both still
     deterministic) do not. *)
  let states =
    if opts.fast_nondet then List.rev eng.finished
    else canonicalize_states eng (List.rev eng.finished)
  in
  let wall_time_s = opts.budget.B.now () -. t0 in
  let cache_stats = Option.map Vsched.Solver_cache.Striped.stats eng.cache in
  let solver_solves =
    match cache_stats with
    | Some c -> c.Vsched.Solver_cache.misses
    | None -> eng.n_solver_calls
  in
  let feas_entries, model_entries =
    match eng.cache with
    | Some c -> Vsched.Solver_cache.Striped.table_sizes c
    | None -> 0, 0
  in
  (* hand the merged cache contents to the caller for persistence (the
     callback gets this run's counters too; [Solver_cache.filter_dump]
     zeroes them before the dump crosses a run boundary) *)
  begin
    match opts.on_cache_dump, eng.cache with
    | Some f, Some c -> f (Vsched.Solver_cache.Striped.dump c)
    | _ -> ()
  end;
  {
    states;
    visited_functions = visited_list eng;
    stats =
      {
        states_created = ids_created eng;
        states_terminated = eng.terminated;
        states_killed = eng.killed;
        forks = eng.n_forks;
        solver_calls = eng.n_solver_calls;
        concretizations = eng.n_concretizations;
        wall_time_s;
        deadline_hit;
      };
    sched =
      Vsched.Exploration_stats.finish ~deadline_hit ~jobs
        ~workers:(if parallel then per_worker else [])
        ~memo_sizes:
          [
            "simplify_memo", Vsmt.Simplify.memo_size ();
            "footprint_memo", Vsmt.Footprint.memo_size ();
            "rendered_strings", Vsmt.Expr.rendered_count ();
            "interned_exprs", Vsmt.Expr.interned_count ();
            "solver_cache_feas_entries", feas_entries;
            "solver_cache_model_entries", model_entries;
          ]
        ~batch:
          {
            ES.b_batches = eng.n_batches;
            b_queries = eng.n_batch_queries;
            b_saved = eng.n_batch_saved;
          }
        eng.recorder ~states_created:(ids_created eng) ~solver_queries:eng.n_solver_calls
        ~solver_solves ~cache:cache_stats ~wall_time_s;
  }
