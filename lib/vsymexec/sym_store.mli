(** Symbolic program store: a stack of local frames plus globals.

    Values are {!Vsmt.Expr} expressions — concrete values are just constant
    expressions, so a location silently becomes symbolic when a symbolic
    value is assigned to it ("tainting", in the paper's terms).  Persistent
    maps make state forking O(1). *)

type t

val empty : t
val with_globals : (string * int) list -> t

val push_frame : t -> t
val pop_frame : t -> t
val frame_count : t -> int

val set_local : t -> string -> Vsmt.Expr.t -> t
val get_local : t -> string -> Vsmt.Expr.t option
val set_global : t -> string -> Vsmt.Expr.t -> t
val get_global : t -> string -> Vsmt.Expr.t option

val substitute_everywhere : t -> (Vsmt.Expr.var -> Vsmt.Expr.t option) -> t
(** Apply a substitution to every stored value, in every frame and in the
    globals.  This is the repository-side of [concretizeAll] (Section 5.4):
    concretizing a symbolic variable also concretizes the locations it
    tainted. *)

val map_exprs : (Vsmt.Expr.t -> Vsmt.Expr.t) -> t -> t
(** Apply a function to every stored value verbatim (no simplification) —
    the snapshot-load rehash hook. *)
