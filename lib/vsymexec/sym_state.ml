type kont =
  | Kstmts of Vir.Ast.block
  | Kloop of { cond : Vir.Ast.expr; body : Vir.Ast.block; iter : int }
  | Kret of { dest : string option; fname : string; ret_addr : int }

type status = Running | Terminated of Vsmt.Expr.t option | Killed of string

type t = {
  id : int;
  parent : int option;
  path : Fork_path.t;
      (* fork history from the root: one step appended per fork the lineage
         survived ('t'/'f' for a branch, 's'/'x' for fault injection).
         Unique per state and independent of scheduling order — the sort
         key of the executor's deterministic reduction.  Extending is O(1);
         rendering is deferred and memoized (see Fork_path). *)
  next_symbol : int;
      (* per-state counter for fresh Internal symbols, so symbol names
         depend only on the state's own execution history, never on a
         global allocation order *)
  work : kont list;
  store : Sym_store.t;
  pc : Vsmt.Expr.t list;
  pc_part : Vsmt.Partition.t;
      (* symbol-disjoint partition of [pc], maintained incrementally as
         constraints are appended (persistent, so forks share the common
         prefix's structure).  Rebuilt from scratch by [map_exprs]: the
         partition caches footprints, which are process-local. *)
  branch_trail : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  serial_us : float;
  clock : float;
  signals : Signals.record list;
  next_cid : int;
  thread : int;
  tracing : bool;
  fuel : int;
  status : status;
}

let initial ~id ~store ~work ~fuel ~tracing =
  {
    id;
    parent = None;
    path = Fork_path.root;
    next_symbol = 0;
    work;
    store;
    pc = [];
    pc_part = Vsmt.Partition.empty;
    branch_trail = [];
    cost = Vruntime.Cost.zero;
    serial_us = 0.;
    clock = 0.;
    signals = [];
    next_cid = 0;
    thread = 0;
    tracing;
    fuel;
    status = Running;
  }

(* Apply [f] to every expression the state holds — the executor's
   rehash-on-load hook for marshalled snapshots, whose interned nodes carry
   another process's ids. *)
let with_pc t pc = { t with pc; pc_part = Vsmt.Partition.extend t.pc_part pc }

let map_exprs f t =
  let pc = List.map f t.pc in
  {
    t with
    store = Sym_store.map_exprs f t.store;
    pc;
    pc_part = Vsmt.Partition.of_list pc;
    branch_trail = List.map f t.branch_trail;
    status = (match t.status with Terminated (Some e) -> Terminated (Some (f e)) | s -> s);
  }

let config_constraints t =
  List.filter (fun e -> Vsmt.Footprint.(exists_origin Vsmt.Expr.Config (of_expr e))) t.pc

let workload_constraints t =
  List.filter
    (fun e ->
      let f = Vsmt.Footprint.of_expr e in
      (not (Vsmt.Footprint.is_empty f)) && Vsmt.Footprint.for_all_origin Vsmt.Expr.Workload f)
    t.pc

let signals_in_order t = List.rev t.signals

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Terminated None -> Fmt.string ppf "terminated"
  | Terminated (Some e) -> Fmt.pf ppf "terminated(%a)" Vsmt.Expr.pp e
  | Killed reason -> Fmt.pf ppf "killed(%s)" reason
