type kont =
  | Kstmts of Vir.Ast.block
  | Kloop of { cond : Vir.Ast.expr; body : Vir.Ast.block; iter : int }
  | Kret of { dest : string option; fname : string; ret_addr : int }

type status = Running | Terminated of Vsmt.Expr.t option | Killed of string

type t = {
  id : int;
  parent : int option;
  path : string;
      (* fork history from the root: one character appended per fork the
         lineage survived ('t'/'f' for a branch, 's'/'x' for fault
         injection).  Unique per state and independent of scheduling order —
         the sort key of the executor's deterministic reduction. *)
  next_symbol : int;
      (* per-state counter for fresh Internal symbols, so symbol names
         depend only on the state's own execution history, never on a
         global allocation order *)
  work : kont list;
  store : Sym_store.t;
  pc : Vsmt.Expr.t list;
  branch_trail : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  serial_us : float;
  clock : float;
  signals : Signals.record list;
  next_cid : int;
  thread : int;
  tracing : bool;
  fuel : int;
  status : status;
}

let initial ~id ~store ~work ~fuel ~tracing =
  {
    id;
    parent = None;
    path = "";
    next_symbol = 0;
    work;
    store;
    pc = [];
    branch_trail = [];
    cost = Vruntime.Cost.zero;
    serial_us = 0.;
    clock = 0.;
    signals = [];
    next_cid = 0;
    thread = 0;
    tracing;
    fuel;
    status = Running;
  }

(* Apply [f] to every expression the state holds — the executor's
   rehash-on-load hook for marshalled snapshots, whose interned nodes carry
   another process's ids. *)
let map_exprs f t =
  {
    t with
    store = Sym_store.map_exprs f t.store;
    pc = List.map f t.pc;
    branch_trail = List.map f t.branch_trail;
    status = (match t.status with Terminated (Some e) -> Terminated (Some (f e)) | s -> s);
  }

let mentions_origin origin e =
  List.exists (fun (v : Vsmt.Expr.var) -> v.origin = origin) (Vsmt.Expr.vars e)

let config_constraints t = List.filter (mentions_origin Vsmt.Expr.Config) t.pc

let workload_constraints t =
  List.filter
    (fun e ->
      let vs = Vsmt.Expr.vars e in
      vs <> [] && List.for_all (fun (v : Vsmt.Expr.var) -> v.origin = Vsmt.Expr.Workload) vs)
    t.pc

let signals_in_order t = List.rev t.signals

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Terminated None -> Fmt.string ppf "terminated"
  | Terminated (Some e) -> Fmt.pf ppf "terminated(%a)" Vsmt.Expr.pp e
  | Killed reason -> Fmt.pf ppf "killed(%s)" reason
