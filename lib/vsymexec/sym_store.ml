module Smap = Map.Make (String)

type t = { frames : Vsmt.Expr.t Smap.t list; globals : Vsmt.Expr.t Smap.t }

let empty = { frames = [ Smap.empty ]; globals = Smap.empty }

let with_globals bindings =
  {
    empty with
    globals =
      List.fold_left
        (fun m (n, v) -> Smap.add n (Vsmt.Expr.const v) m)
        Smap.empty bindings;
  }

let push_frame t = { t with frames = Smap.empty :: t.frames }

let pop_frame t =
  match t.frames with
  | [] | [ _ ] -> invalid_arg "Sym_store.pop_frame: no frame to pop"
  | _ :: rest -> { t with frames = rest }

let frame_count t = List.length t.frames

let set_local t name v =
  match t.frames with
  | [] -> invalid_arg "Sym_store.set_local: no frame"
  | f :: rest -> { t with frames = Smap.add name v f :: rest }

let get_local t name =
  match t.frames with [] -> None | f :: _ -> Smap.find_opt name f

let set_global t name v = { t with globals = Smap.add name v t.globals }
let get_global t name = Smap.find_opt name t.globals

let substitute_everywhere t f =
  let sub m = Smap.map (fun e -> Vsmt.Simplify.simplify (Vsmt.Expr.subst f e)) m in
  { frames = List.map sub t.frames; globals = sub t.globals }

let map_exprs f t =
  { frames = List.map (Smap.map f) t.frames; globals = Smap.map f t.globals }
