(** O(1) fork-history paths.

    A path records the forks a state's lineage survived, one character per
    fork (['t']/['f'] for a branch, ['s']/['x'] for fault injection).  It is
    unique per state and independent of scheduling order — the sort key of
    the executor's deterministic reduction — but unlike the eager string it
    replaces, {!extend} is a single allocation sharing the parent's spine:
    the canonicalization cost is deferred to the points that actually need
    the rendered string (fresh-symbol naming, the final path sort), where it
    is memoized per node.

    Values are immutable apart from the internal render memo and are
    [Marshal]-safe (snapshots carry them; sharing is preserved). *)

type t

val root : t
(** The empty path of the root state. *)

val extend : t -> char -> t
(** [extend p tag] is the path [p] with [tag] appended — O(1). *)

val to_string : t -> string
(** The rendered path, identical to the eager concatenation of tags from
    the root ([""] for {!root}).  Memoized per node; safe to call from any
    domain. *)

val length : t -> int

val compare : t -> t -> int
(** Lexicographic on the rendered strings — the canonical state order of
    the deterministic reduction. *)

val equal : t -> t -> bool
val pp : t Fmt.t
