(** One symbolic-execution state (= one explored path).

    A state carries the whole per-path context: work continuations, the
    symbolic store, the memorized path constraints, the accumulated cost and
    virtual clock, and the tracer's signal log.  States are immutable;
    forking at a symbolic branch copies the record with a fresh id. *)

type kont =
  | Kstmts of Vir.Ast.block  (** statements remaining in a sequence *)
  | Kloop of { cond : Vir.Ast.expr; body : Vir.Ast.block; iter : int }
      (** a loop back-edge: re-test [cond]; [iter] counts completed
          iterations for the unroll bound *)
  | Kret of { dest : string option; fname : string; ret_addr : int }
      (** return point of an active call *)

type status =
  | Running
  | Terminated of Vsmt.Expr.t option  (** the entry function returned *)
  | Killed of string  (** fuel/unroll/constraint limits; reason recorded *)

type t = {
  id : int;
  parent : int option;
  path : Fork_path.t;
      (** fork history from the root, one step per fork survived (['t']/['f']
          for a branch, ['s']/['x'] for fault injection).  Unique per state
          and independent of exploration order — the sort key of the
          executor's deterministic parallel reduction.  O(1) to extend;
          rendered (and memoized) only where the string is needed. *)
  next_symbol : int;
      (** per-state fresh-symbol counter: symbol names derive from the
          state's own history, not from a global allocation order *)
  work : kont list;
  store : Sym_store.t;
  pc : Vsmt.Expr.t list;  (** path constraints, conjunction *)
  pc_part : Vsmt.Partition.t;
      (** symbol-disjoint partition of [pc], maintained incrementally by
          {!with_pc} (persistent — forks share the common prefix's
          structure).  The executor slices solver queries with it. *)
  branch_trail : Vsmt.Expr.t list;
      (** every branch condition taken in order, including non-forking ones —
          richer than [pc] for similarity analysis *)
  cost : Vruntime.Cost.t;
  serial_us : float;
  clock : float;  (** inflated symbolic-execution timestamp source *)
  signals : Signals.record list;  (** newest first *)
  next_cid : int;
  thread : int;
  tracing : bool;
  fuel : int;
  status : status;
}

val initial :
  id:int -> store:Sym_store.t -> work:kont list -> fuel:int -> tracing:bool -> t

val with_pc : t -> Vsmt.Expr.t list -> t
(** Replace the path condition, updating [pc_part] incrementally (cheap
    when the new list extends the old one, which is how the executor
    grows path conditions).  Every [pc] write must go through here so
    the partition never drifts from the constraints. *)

val config_constraints : t -> Vsmt.Expr.t list
(** Path constraints that mention at least one configuration variable. *)

val workload_constraints : t -> Vsmt.Expr.t list
(** Path constraints whose variables are all workload (input) variables —
    the row's input predicate (Section 4.6). *)

val signals_in_order : t -> Signals.record list
val pp_status : status Fmt.t

val map_exprs : (Vsmt.Expr.t -> Vsmt.Expr.t) -> t -> t
(** Apply a function to every expression in the state (store, path
    constraints, branch trail, terminal value).  Used to re-intern
    ({!Vsmt.Expr.rehash}) states loaded from a marshalled snapshot. *)
