(** Whole-program call graph, used by Algorithm 2 to extract the call chains
    from the entry function to a parameter's usage function. *)

type t

val build : Ast.program -> t

val callees : t -> string -> string list
(** Direct callees of a function (no duplicates, call order). *)

val callers : t -> string -> string list

val paths_to : ?max_paths:int -> t -> entry:string -> string -> string list list
(** Simple (cycle-free) call chains [entry; ...; target], each ending at
    [target].  Bounded by [max_paths] (default 256). *)

val reachable : t -> from:string -> string list
(** Functions reachable from [from], including itself. *)

val reaching : t -> target:string -> string list
(** Transitive callers of [target], including itself — the functions whose
    exploration can reach changed code, used for conservative slice
    invalidation when dynamic coverage is unavailable. *)
