type t = {
  callees_of : (string, string list) Hashtbl.t;
  callers_of : (string, string list) Hashtbl.t;
}

let add_edge tbl a b =
  let cur = match Hashtbl.find_opt tbl a with Some l -> l | None -> [] in
  if not (List.mem b cur) then Hashtbl.replace tbl a (cur @ [ b ])

let build (p : Ast.program) =
  let callees_of = Hashtbl.create 64 and callers_of = Hashtbl.create 64 in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (function
          | Ast.Call { fn; _ } ->
            add_edge callees_of f.fname fn;
            add_edge callers_of fn f.fname
          | _ -> ())
        (Ast.func_body f))
    p.funcs;
  { callees_of; callers_of }

let callees t f = match Hashtbl.find_opt t.callees_of f with Some l -> l | None -> []
let callers t f = match Hashtbl.find_opt t.callers_of f with Some l -> l | None -> []

let paths_to ?(max_paths = 256) t ~entry target =
  let results = ref [] and count = ref 0 in
  let rec go path f =
    if !count < max_paths && not (List.mem f path) then begin
      let path = path @ [ f ] in
      if String.equal f target then begin
        results := path :: !results;
        incr count
      end
      else List.iter (go path) (callees t f)
    end
  in
  go [] entry;
  List.rev !results

let reaching t ~target =
  let seen = Hashtbl.create 32 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter go (callers t f)
    end
  in
  go target;
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort String.compare

let reachable t ~from =
  let seen = Hashtbl.create 32 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      List.iter go (callees t f)
    end
  in
  go from;
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort String.compare
