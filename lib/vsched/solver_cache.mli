(** Constraint-solving caches in front of {!Vsmt.Solver} — the KLEE-style
    layer the executor consults on every fork.

    Two query entry points with different cache strength, because they have
    different soundness obligations:

    - {!check_model} serves the executor's model-generation queries (silent
      concretization).  It uses exact memoization only, keyed on the
      {e sorted} constraint set (permuted path conditions share one entry);
      the solver is deterministic and a miss solves that same sorted set, so
      a hit returns byte-for-byte the model a fresh solve would, and
      concretization values — and therefore the derived impact model — are
      identical with the cache on or off.
    - {!is_feasible} serves the executor's branch-feasibility queries, where
      only the Sat/Unsat verdict matters.  On top of (order-insensitive)
      exact memoization it runs the two KLEE counterexample-cache probes:
      a stored satisfying assignment is evaluated against the new query
      (a superset of a satisfiable set often still holds under the same
      model — sound because the probe {e verifies} the model by evaluation),
      and a stored unsatisfiable set that is a subset of the new query
      proves it unsatisfiable (a superset of an unsat core is unsat).

    [Unknown] results are budget-dependent: they are cached together with the
    [max_nodes] budget that produced them and replayed only for queries with
    the same or a smaller budget; a query with a larger budget re-solves and
    overwrites the entry.  [Sat]/[Unsat] are proofs and replay for any
    budget.

    Every entry is additionally tagged with the query's symbol footprint
    (sorted names, so dumps stay process-portable).  When a larger-budget
    re-solve {e decides} a previously-[Unknown] query, smaller-budget
    [Unknown] entries whose footprint lies within the decided query's are
    reclaimed as stale; the footprint guard keeps the reclaim from evicting
    [Unknown] entries of unrelated slices (which still carry useful
    budget-exhaustion evidence for other paths).

    With query slicing on (see {!Vsmt.Partition}) the executor sends one
    query per touched slice, so entries are naturally slice-keyed: a verdict
    for an untouched slice replays across every path that shares it, which
    is where the hit-rate win lives.

    When the underlying solver is decisive (never returns [Unknown]) the
    cache is answer-preserving.  When the solver would return [Unknown] on
    the full query, a subsumption hit can be {e more precise} (a genuine
    [Unsat] where the direct solve would over-approximate to feasible);
    precision can only increase, never flip a decided verdict. *)

type t

val create : ?max_models:int -> ?max_cores:int -> unit -> t
(** [max_models] bounds the counterexample list probed per query (default
    64, most recently stored first); [max_cores] bounds the stored
    unsatisfiable sets (default 256). *)

val check_model :
  t -> ?budget:Vresilience.Budget.armed -> max_nodes:int -> Vsmt.Expr.t list ->
  Vsmt.Solver.result
(** Decide the conjunction, exact-memoized.  Identical to
    [Vsmt.Solver.check ~max_nodes] on every call, hit or miss.  An armed
    [budget] is threaded to the solver for its cooperative deadline; results
    computed after the deadline expired are returned but {e not} recorded
    (a deadline [Unknown] describes this run's clock, not the query). *)

val is_feasible :
  t -> ?budget:Vresilience.Budget.armed -> max_nodes:int -> Vsmt.Expr.t list -> bool
(** True when the constraint set is satisfiable or undecided, like
    {!Vsmt.Solver.is_feasible}, with all cache probes enabled.  Same
    [budget] semantics as {!check_model}. *)

(** {1 Checkpointing} *)

type dump
(** A self-contained copy of the cache's contents (memo tables,
    counterexample models, unsat cores, counters), safe to [Marshal] into a
    checkpoint: it shares no mutable structure with the live cache. *)

val dump : t -> dump
val restore : dump -> t
(** A fresh cache primed with the dumped contents; replaying the same query
    sequence against it answers exactly as the original would have. *)

val dump_entries : dump -> int
(** Total memo entries (feasibility + model) held by a dump. *)

val filter_dump : dump -> dirty:string list -> dump
(** Prepare a dump for cross-run reuse: drop every memo entry whose
    footprint mentions one of the [dirty] symbol names, along with stored
    models and unsat cores touching them, and zero all counters (a primed
    dump's counters fold into the receiving cache, so a cross-run dump
    must not carry last run's totals).  Cached Sat/Unsat verdicts are
    proofs about the constraint text and would stay sound across code
    versions; the footprint scoping keeps a warm run's solver provenance
    identical to a cold run's for the changed slices. *)

val merge_into : src:t -> dst:t -> unit
(** Fold one worker's cache segment into another (parallel exploration
    merges per-domain segments on quiesce).  Every entry is sound in any
    cache, so merging keeps the stronger of two conflicting entries (a
    decided verdict over [Unknown]; the larger-budget [Unknown] otherwise).
    Counters are summed; [src] is left unchanged. *)

type stats = {
  lookups : int;
  exact_hits : int;  (** same constraint set seen before *)
  cex_hits : int;  (** a stored model satisfied the query *)
  subsumption_hits : int;  (** a stored unsat set was a subset of the query *)
  misses : int;  (** fell through to {!Vsmt.Solver} *)
  stored_models : int;
  stored_cores : int;
  solver_constraints : int;  (** conjuncts sent to the solver across all misses *)
  solver_nodes : int;  (** expression tree nodes sent to the solver across all misses *)
  unknown_purged : int;  (** stale [Unknown] entries reclaimed by decided re-solves *)
  coalesced : int;
      (** queries that blocked on a {!Striped} shard already solving the
          same key and were then answered by the entry it recorded; always
          [0] for a plain cache *)
}

val stats : t -> stats
val hits : stats -> int
val hit_rate : stats -> float
(** Hits over lookups; [0.] before the first lookup. *)

val pp_stats : stats Fmt.t

(** {1 The striped concurrent cache}

    One cache shared by every worker domain, lock-striped by query key:
    concurrent queries for different keys proceed in parallel, and the
    expensive pure work (simplification, canonicalization, key rendering)
    happens outside any lock.  A shard's lock is deliberately held across
    the solve of a miss, so a duplicate query arriving from another worker
    queues behind the first and is answered from the entry it records
    instead of re-solving (natural coalescing, counted in
    [stats.coalesced]).  Sharing one cache across workers removes the
    per-worker shard duplication of the pre-striped design, where every
    worker re-solved queries its siblings had already answered. *)
module Striped : sig
  type t

  val create : ?max_models:int -> ?max_cores:int -> ?shards:int -> unit -> t
  (** [shards] is rounded up to a power of two (default 64); [max_models]
      and [max_cores] bound each shard as in {!create}. *)

  val is_feasible :
    t -> ?budget:Vresilience.Budget.armed -> max_nodes:int -> Vsmt.Expr.t list -> bool * bool
  (** The verdict, paired with [true] when it was served without a solver
      round-trip (any cache probe, or an entry a concurrent worker recorded
      while this query queued on the shard). *)

  val feasible_batch :
    t ->
    ?budget:Vresilience.Budget.armed ->
    max_nodes:int ->
    Vsmt.Expr.t list list ->
    (bool * bool) list
  (** One aggregated feasibility round over several pending queries (the
      executor's per-fork pair, or any larger quantum): the cache is
      consulted for the whole batch first, then only the remaining misses
      pay a solver round-trip each, populating their shard under its
      striped lock.  Answers are returned in query order with the same
      served-from-cache flag as {!is_feasible}. *)

  val check_model :
    t ->
    ?budget:Vresilience.Budget.armed ->
    max_nodes:int ->
    Vsmt.Expr.t list ->
    Vsmt.Solver.result * bool
  (** {!check_model} against the query's shard, with the served-from-cache
      flag. *)

  val stats : t -> stats
  (** Counters summed across shards; [coalesced] counts duplicate in-flight
      queries that queued behind an identical solve. *)

  val table_sizes : t -> int * int
  (** [(feasibility entries, model entries)] summed across shards —
      telemetry for [memo_sizes]. *)

  val dump : t -> dump
  (** Merge every shard into one plain, [Marshal]-safe dump (the
      checkpoint format is shared with the plain cache). *)

  val prime : t -> dump -> unit
  (** Distribute a dump's entries back over the shards (stored models and
      unsat cores replicate into every shard, since they are probed against
      arbitrary queries). *)
end
