(** Persistent cross-run solver cache store.

    Serializes {!Solver_cache.dump} values to disk under the
    {!Vresilience.Checkpoint} envelope (magic + version + kind + length +
    md5, atomic tmp+rename writes), so repeated analyses of near-identical
    program versions start warm.  Dumps are geometry-agnostic: a cache
    dumped by a 64-shard parallel run primes a sequential run and vice
    versa ({!Solver_cache.Striped.prime}).

    A missing, truncated, corrupt or version-skewed file is never an
    error for the analysis — {!load} reports why via [Error], and callers
    fall back to a cold cache.  [save] failures (e.g. read-only cache
    dir) are likewise reported, not raised. *)

val kind : string
(** Envelope kind tag ("solver-cache"). *)

val version : int
(** On-disk format version; bump when {!Solver_cache.dump}'s shape
    changes. *)

val file : dir:string -> system:string -> param:string -> string
(** Canonical cache path [<dir>/<system>.<param>.vcache] for one
    (system, parameter) analysis.  Path separators and other non-filename
    characters in the components are replaced with ['_']. *)

val save : path:string -> Solver_cache.dump -> (unit, Vresilience.Checkpoint.error) result
(** Atomically persist a dump (parent directory is created if missing). *)

val load : path:string -> (Solver_cache.dump, Vresilience.Checkpoint.error) result
(** Read back a dump; the payload is unmarshalled only after the
    envelope's digest verifies, so corruption surfaces as a typed error,
    never a crash. *)

val load_filtered :
  path:string -> dirty:string list -> (Solver_cache.dump, Vresilience.Checkpoint.error) result
(** {!load} followed by {!Solver_cache.filter_dump}: entries whose
    footprints mention a [dirty] symbol name are dropped and the dump's
    counters are zeroed, making the result safe to prime into a fresh
    run's cache. *)
