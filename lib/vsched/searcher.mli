(** Pluggable path-exploration scheduling (the S²E/KLEE "searcher" layer).

    The executor used to hard-code its state-selection policy; this module
    extracts it into a value the caller plugs in.  A {!t} is a declarative
    policy; {!frontier} instantiates it into a live priority queue over the
    executor's states.  The frontier is polymorphic in the state type: policies
    that need to look inside a state (the scored searchers) do so through the
    {!view} the executor provides, so this library stays below the engine in
    the dependency graph.

    The three classic policies reproduce the executor's historical behaviour
    exactly (state for state, pick for pick).  The two scored policies are the
    paper's Section 5 scaling idea made concrete:

    - {!Coverage_guided} prefers states whose pending work contains
      config-dependent branch conditions that no explored state has executed
      yet, weighted by how close the uncovered branch is;
    - {!Config_impact} prefers states whose pending branch conditions read
      many parameters of a given related set — the
      {!Vanalysis.Related_config} output — steering exploration toward the
      configuration logic under analysis. *)

type view = {
  depth : int;  (** branches taken so far (length of the branch trail) *)
  pending : Vir.Ast.expr list;
      (** branch conditions syntactically remaining in the state's
          continuation, nearest first.  Conditions inside functions that are
          called but not yet entered are not included — the view is a cheap
          syntactic horizon, not a reachability analysis. *)
}

type t =
  | Dfs  (** run each state to completion before its sibling *)
  | Bfs
  | Random_path of int  (** seeded random state selection *)
  | Coverage_guided
      (** prioritize states closest to uncovered config-dependent branches *)
  | Config_impact of { related : string list }
      (** weight states by how many related parameters their pending branches
          read; [related = []] means every configuration parameter counts *)

val name : t -> string
(** Short stable identifier: ["dfs"], ["bfs"], ["random"], ["coverage"],
    ["config-impact"]. *)

val of_string : string -> (t, string) result
(** Parse a CLI spelling: [dfs], [bfs], [random] or [random:SEED],
    [coverage], [config-impact].  The config-impact related set is filled in
    by the pipeline (it owns the static analysis), so the CLI form carries an
    empty one. *)

val to_string : t -> string
(** Round-trips with {!of_string}. *)

val run_to_completion : t -> bool
(** True for {!Dfs}: the selected state keeps running until it terminates, so
    the time slice does not apply. *)

(** {1 Live frontiers} *)

type 'a frontier

val frontier : view:('a -> view) -> t -> 'a frontier
(** Instantiate a policy.  [view] is only called by the scored policies, and
    only once per added state. *)

val add : 'a frontier -> preempted:bool -> 'a -> unit
(** Queue a state.  [preempted] distinguishes a state re-queued after its
    time slice expired from a freshly forked child; Dfs keeps fork children
    at the front of its stack but preempted states at the back. *)

val select : 'a frontier -> 'a option
(** Remove and return the next state to run, or [None] when empty. *)

val length : 'a frontier -> int

val mark_covered : 'a frontier -> Vir.Ast.expr -> unit
(** Coverage feedback: the executor reports every branch condition it
    actually executes.  Only {!Coverage_guided} frontiers retain it. *)

val frontier_name : 'a frontier -> string

(** {1 Checkpointing and degradation} *)

type 'a dump = {
  d_states : 'a list;  (** queued states, internal order *)
  d_rng : Random.State.t option;  (** {!Random_path} selection rng *)
  d_covered : Vir.Ast.expr list;  (** {!Coverage_guided} covered set *)
}
(** A frontier's full scheduling state.  Restoring a dump into a fresh
    frontier of the same policy reproduces the original's future selection
    sequence exactly — the property checkpoint/resume relies on. *)

val dump : 'a frontier -> 'a dump
(** Read-only: the frontier is left untouched. *)

val restore : 'a frontier -> 'a dump -> unit
(** Replace the frontier's contents (and rng/covered set where the policy
    has one) with the dump's. *)

val drop_weakest : 'a frontier -> keep:int -> 'a list
(** Degradation rung 3: shrink the frontier to its [keep] highest-priority
    states and return the dropped ones.  "Weakest" follows each policy's own
    selection order: the back of the Dfs stack, the front of the Bfs queue,
    the oldest states for Random_path, the lowest-scored entries for the
    scored policies. *)

val steal : 'a frontier -> 'a option
(** Remove and return the single lowest-priority state (the one
    {!drop_weakest} would shed first), or [None] when empty.  Work-stealing
    takes from the victim's cold end so the owner's selection order is
    disturbed as little as possible.  The frontier itself is not
    thread-safe; parallel callers serialize access per frontier. *)
