module Checkpoint = Vresilience.Checkpoint

let kind = "solver-cache"
let version = 1

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let file ~dir ~system ~param =
  Filename.concat dir (Printf.sprintf "%s.%s.vcache" (sanitize system) (sanitize param))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Save / load                                                         *)
(* ------------------------------------------------------------------ *)

(* The payload is a [Marshal]ed {!Solver_cache.dump}.  Dumps are built to
   survive this: memo keys are rendered constraint strings, footprints are
   sorted symbol *names*, models are [(name * value)] assignments and cores
   are string sets — no hash-consed expressions or process-local ids
   anywhere.  The envelope's digest check runs before unmarshalling, so a
   damaged file can't crash the process inside [Marshal.from_string]. *)

let save ~path dump =
  mkdir_p (Filename.dirname path);
  let payload = Marshal.to_string (dump : Solver_cache.dump) [] in
  Checkpoint.write ~path ~kind ~version payload

let load ~path =
  match Checkpoint.read ~path ~kind ~version with
  | Error _ as e -> e
  | Ok payload -> (
    (* digest already verified, but stay defensive: a format change without
       a version bump must degrade to a cold cache, not an exception *)
    match (Marshal.from_string payload 0 : Solver_cache.dump) with
    | d -> Ok d
    | exception _ -> Error Checkpoint.Corrupt)

let load_filtered ~path ~dirty =
  match load ~path with
  | Error _ as e -> e
  | Ok d -> Ok (Solver_cache.filter_dump d ~dirty)
