module E = Vsmt.Expr
module Solver = Vsmt.Solver
module Sset = Set.Make (String)

(* [foot] is the query's symbol footprint as sorted names — names, not
   footprint ids, so dumped caches stay valid across processes.  It scopes
   the Unknown-reclaim below to the slice that was actually re-solved. *)
type entry = { result : Solver.result; budget : int; foot : string list }

type t = {
  max_models : int;
  max_cores : int;
  (* both memos key on the *sorted* constraint set, so permuted path
     conditions (same constraints discovered in a different branch order)
     hit the same entry *)
  model_memo : (string, entry) Hashtbl.t;
  feas_memo : (string, entry) Hashtbl.t;
  mutable models : Solver.model list;  (* newest first *)
  mutable cores : Sset.t list;  (* newest first *)
  mutable n_lookups : int;
  mutable n_exact_hits : int;
  mutable n_cex_hits : int;
  mutable n_subsumption_hits : int;
  mutable n_misses : int;
  (* work that actually reached the solver (cache misses only) *)
  mutable n_solver_constraints : int;
  mutable n_solver_nodes : int;
  mutable n_unknown_purged : int;
}

type stats = {
  lookups : int;
  exact_hits : int;
  cex_hits : int;
  subsumption_hits : int;
  misses : int;
  stored_models : int;
  stored_cores : int;
  solver_constraints : int;  (** conjuncts sent to the solver across all misses *)
  solver_nodes : int;  (** expression tree nodes sent to the solver across all misses *)
  unknown_purged : int;  (** stale Unknown entries reclaimed by decided re-solves *)
}

let create ?(max_models = 64) ?(max_cores = 256) () =
  {
    max_models;
    max_cores;
    model_memo = Hashtbl.create 256;
    feas_memo = Hashtbl.create 256;
    models = [];
    cores = [];
    n_lookups = 0;
    n_exact_hits = 0;
    n_cex_hits = 0;
    n_subsumption_hits = 0;
    n_misses = 0;
    n_solver_constraints = 0;
    n_solver_nodes = 0;
    n_unknown_purged = 0;
  }

(* [E.to_string] is memoized per unique node, so keying stays cheap; string
   keys (rather than hashcons ids) keep dumps valid across processes, where
   ids are reassigned. *)
let key_of cs = String.concat "\x00" (List.map E.to_string cs)

(* A cached Sat/Unsat is a completed proof and is a *sound* verdict under any
   budget; a cached Unknown only witnesses that [budget] nodes were not
   enough, so it replays only for queries with the same or a smaller
   budget. *)
let sound_verdict entry ~max_nodes =
  match entry.result with
  | Solver.Sat _ | Solver.Unsat -> true
  | Solver.Unknown -> entry.budget >= max_nodes

(* Stricter rule for model queries: replay only when a fresh solve would
   provably return the identical result.  The solver's answer is monotone in
   the budget (decided at some node count n*, Unknown below it), so a decided
   result cached at budget b replays for any request >= b, and an Unknown
   cached at b replays for any request <= b. *)
let identical_replay entry ~max_nodes =
  match entry.result with
  | Solver.Sat _ | Solver.Unsat -> max_nodes >= entry.budget
  | Solver.Unknown -> max_nodes <= entry.budget

let all_vars cs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun c -> List.iter (fun (v : E.var) -> Hashtbl.replace tbl v.E.name v) (E.vars c)) cs;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : E.var) (b : E.var) -> String.compare a.E.name b.E.name)

(* Probe a stored satisfying assignment against the query: complete it over
   the query's variables and verify every conjunct by evaluation, so a hit is
   sound by construction. *)
let probe_models t cs =
  let vars = all_vars cs in
  let satisfies m =
    let m = Solver.complete ~vars m in
    if List.for_all (fun c -> match Solver.eval_in m c with Some v -> v <> 0 | None -> false) cs
    then Some m
    else None
  in
  List.find_map satisfies t.models

let store_model t m =
  let canon m = List.sort compare m in
  let cm = canon m in
  if not (List.exists (fun m' -> canon m' = cm) t.models) then begin
    t.models <- m :: t.models;
    if List.length t.models > t.max_models then
      t.models <- List.filteri (fun i _ -> i < t.max_models) t.models
  end

let store_core t set =
  (* keep only minimal cores: a new superset of a stored core is redundant,
     and a new core obsoletes its stored supersets *)
  if not (List.exists (fun c -> Sset.subset c set) t.cores) then begin
    t.cores <- set :: List.filter (fun c -> not (Sset.subset set c)) t.cores;
    if List.length t.cores > t.max_cores then
      t.cores <- List.filteri (fun i _ -> i < t.max_cores) t.cores
  end

(* Subset test over sorted name lists. *)
let rec foot_subset a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = String.compare x y in
    if c = 0 then foot_subset xs ys else if c > 0 then foot_subset a ys else false

let query_foot cs = Vsmt.Footprint.names (Vsmt.Footprint.of_list cs)

(* Reclaim Unknown entries superseded by a decided re-solve: once a query
   over some symbols is decided at budget [b], Unknown entries recorded at
   smaller budgets whose footprint lies inside those symbols are stale
   hints — keeping them only delays their inevitable replacement.  The
   footprint guard is the point: without it this reclaim would also evict
   Unknown entries of *unrelated* slices, throwing away budget-exhaustion
   evidence the next path still needs. *)
let purge_stale_unknowns t memo ~budget ~foot =
  let stale =
    Hashtbl.fold
      (fun key e acc ->
        match e.result with
        | Solver.Unknown when e.budget < budget && foot_subset e.foot foot -> key :: acc
        | _ -> acc)
      memo []
  in
  List.iter (Hashtbl.remove memo) stale;
  t.n_unknown_purged <- t.n_unknown_purged + List.length stale

let record t memo key ~max_nodes ~foot result =
  let superseded_unknown =
    match Hashtbl.find_opt memo key with
    | Some { result = Solver.Unknown; _ } -> ( match result with Solver.Unknown -> false | _ -> true)
    | _ -> false
  in
  Hashtbl.replace memo key { result; budget = max_nodes; foot };
  (* scan only on an actual larger-budget re-solve of a previously-Unknown
     query — the rare event the reclaim exists for; ordinary misses never
     pay an O(cache) sweep *)
  if superseded_unknown then purge_stale_unknowns t memo ~budget:max_nodes ~foot;
  match result with
  | Solver.Sat m -> store_model t m
  | Solver.Unsat -> ()
  | Solver.Unknown -> ()

let count_solver_work t cs =
  t.n_solver_constraints <- t.n_solver_constraints + List.length cs;
  t.n_solver_nodes <- t.n_solver_nodes + List.fold_left (fun a c -> a + E.tree_size c) 0 cs

(* A result computed after the deadline passed may be a deadline-induced
   [Unknown] — a property of *this* run's clock, not of the query.  Caching
   it would poison replay (and break checkpoint/resume determinism), so
   post-expiry results are returned but never recorded. *)
let expired = function
  | None -> false
  | Some b -> Vresilience.Budget.expired b

let check_model t ?budget ~max_nodes cs =
  t.n_lookups <- t.n_lookups + 1;
  let cs = Vsmt.Simplify.simplify_conj cs in
  (* solve the sorted set, not just key on it: permuted queries then share
     one entry AND a miss computes the very result a permuted hit replays *)
  let canon = List.sort_uniq E.compare cs in
  let key = key_of canon in
  match Hashtbl.find_opt t.model_memo key with
  | Some e when identical_replay e ~max_nodes ->
    t.n_exact_hits <- t.n_exact_hits + 1;
    e.result
  | _ ->
    t.n_misses <- t.n_misses + 1;
    count_solver_work t canon;
    let result = Solver.check ?budget ~max_nodes canon in
    if not (expired budget) then
      record t t.model_memo key ~max_nodes ~foot:(query_foot canon) result;
    result

let is_feasible t ?budget ~max_nodes cs =
  t.n_lookups <- t.n_lookups + 1;
  let cs = Vsmt.Simplify.simplify_conj cs in
  let canon = List.sort_uniq E.compare cs in
  let conjunct_keys = List.map E.to_string canon in
  let key = String.concat "\x00" conjunct_keys in
  let feasible = function Solver.Sat _ | Solver.Unknown -> true | Solver.Unsat -> false in
  match Hashtbl.find_opt t.feas_memo key with
  | Some e when sound_verdict e ~max_nodes ->
    t.n_exact_hits <- t.n_exact_hits + 1;
    feasible e.result
  | _ -> begin
    match probe_models t canon with
    | Some m ->
      t.n_cex_hits <- t.n_cex_hits + 1;
      Hashtbl.replace t.feas_memo key
        { result = Solver.Sat m; budget = max_nodes; foot = query_foot canon };
      true
    | None ->
      let qset = Sset.of_list conjunct_keys in
      if List.exists (fun core -> Sset.subset core qset) t.cores then begin
        t.n_subsumption_hits <- t.n_subsumption_hits + 1;
        Hashtbl.replace t.feas_memo key
          { result = Solver.Unsat; budget = max_nodes; foot = query_foot canon };
        false
      end
      else begin
        t.n_misses <- t.n_misses + 1;
        count_solver_work t canon;
        let result = Solver.check ?budget ~max_nodes canon in
        if not (expired budget) then begin
          record t t.feas_memo key ~max_nodes ~foot:(query_foot canon) result;
          if result = Solver.Unsat then store_core t qset
        end;
        feasible result
      end
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type dump = t

let dump t =
  { t with model_memo = Hashtbl.copy t.model_memo; feas_memo = Hashtbl.copy t.feas_memo }

let restore d =
  { d with model_memo = Hashtbl.copy d.model_memo; feas_memo = Hashtbl.copy d.feas_memo }

(* ------------------------------------------------------------------ *)
(* Shard merging                                                       *)
(* ------------------------------------------------------------------ *)

(* Fold one worker's cache segment into another.  Entries are sound
   regardless of which worker computed them, so a conflict keeps whichever
   entry is stronger: a decided verdict beats Unknown, and among Unknowns
   the larger budget subsumes the smaller. *)
let merge_entry memo key (e : entry) =
  match Hashtbl.find_opt memo key with
  | None -> Hashtbl.replace memo key e
  | Some cur -> begin
    match cur.result, e.result with
    | Solver.Unknown, (Solver.Sat _ | Solver.Unsat) -> Hashtbl.replace memo key e
    | Solver.Unknown, Solver.Unknown when e.budget > cur.budget ->
      Hashtbl.replace memo key e
    | _ -> ()
  end

let merge_into ~src ~dst =
  Hashtbl.iter (merge_entry dst.model_memo) src.model_memo;
  Hashtbl.iter (merge_entry dst.feas_memo) src.feas_memo;
  (* oldest first so dst's recency order roughly matches discovery order *)
  List.iter (store_model dst) (List.rev src.models);
  List.iter (store_core dst) (List.rev src.cores);
  dst.n_lookups <- dst.n_lookups + src.n_lookups;
  dst.n_exact_hits <- dst.n_exact_hits + src.n_exact_hits;
  dst.n_cex_hits <- dst.n_cex_hits + src.n_cex_hits;
  dst.n_subsumption_hits <- dst.n_subsumption_hits + src.n_subsumption_hits;
  dst.n_misses <- dst.n_misses + src.n_misses;
  dst.n_solver_constraints <- dst.n_solver_constraints + src.n_solver_constraints;
  dst.n_solver_nodes <- dst.n_solver_nodes + src.n_solver_nodes;
  dst.n_unknown_purged <- dst.n_unknown_purged + src.n_unknown_purged

let stats t =
  {
    lookups = t.n_lookups;
    exact_hits = t.n_exact_hits;
    cex_hits = t.n_cex_hits;
    subsumption_hits = t.n_subsumption_hits;
    misses = t.n_misses;
    stored_models = List.length t.models;
    stored_cores = List.length t.cores;
    solver_constraints = t.n_solver_constraints;
    solver_nodes = t.n_solver_nodes;
    unknown_purged = t.n_unknown_purged;
  }

let hits s = s.exact_hits + s.cex_hits + s.subsumption_hits

let hit_rate s = if s.lookups = 0 then 0. else float_of_int (hits s) /. float_of_int s.lookups

let pp_stats ppf s =
  Fmt.pf ppf
    "%d lookups, %d hits (%.0f%%: %d exact, %d cex, %d subsumption), %d misses \
     (%d constraints / %d nodes solved, %d stale unknowns purged)"
    s.lookups (hits s) (100. *. hit_rate s) s.exact_hits s.cex_hits s.subsumption_hits
    s.misses s.solver_constraints s.solver_nodes s.unknown_purged
