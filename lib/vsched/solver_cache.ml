module E = Vsmt.Expr
module Solver = Vsmt.Solver
module Sset = Set.Make (String)

(* [foot] is the query's symbol footprint as sorted names — names, not
   footprint ids, so dumped caches stay valid across processes.  It scopes
   the Unknown-reclaim below to the slice that was actually re-solved. *)
type entry = { result : Solver.result; budget : int; foot : string list }

type t = {
  max_models : int;
  max_cores : int;
  (* both memos key on the *sorted* constraint set, so permuted path
     conditions (same constraints discovered in a different branch order)
     hit the same entry *)
  model_memo : (string, entry) Hashtbl.t;
  feas_memo : (string, entry) Hashtbl.t;
  mutable models : Solver.model list;  (* newest first *)
  mutable cores : Sset.t list;  (* newest first *)
  mutable n_lookups : int;
  mutable n_exact_hits : int;
  mutable n_cex_hits : int;
  mutable n_subsumption_hits : int;
  mutable n_misses : int;
  (* work that actually reached the solver (cache misses only) *)
  mutable n_solver_constraints : int;
  mutable n_solver_nodes : int;
  mutable n_unknown_purged : int;
}

type stats = {
  lookups : int;
  exact_hits : int;
  cex_hits : int;
  subsumption_hits : int;
  misses : int;
  stored_models : int;
  stored_cores : int;
  solver_constraints : int;  (** conjuncts sent to the solver across all misses *)
  solver_nodes : int;  (** expression tree nodes sent to the solver across all misses *)
  unknown_purged : int;  (** stale Unknown entries reclaimed by decided re-solves *)
  coalesced : int;
      (** queries that blocked on a shard already solving the same key
          (striped caches only; always 0 for a plain cache) *)
}

let create ?(max_models = 64) ?(max_cores = 256) () =
  {
    max_models;
    max_cores;
    model_memo = Hashtbl.create 256;
    feas_memo = Hashtbl.create 256;
    models = [];
    cores = [];
    n_lookups = 0;
    n_exact_hits = 0;
    n_cex_hits = 0;
    n_subsumption_hits = 0;
    n_misses = 0;
    n_solver_constraints = 0;
    n_solver_nodes = 0;
    n_unknown_purged = 0;
  }

(* [E.to_string] is memoized per unique node, so keying stays cheap; string
   keys (rather than hashcons ids) keep dumps valid across processes, where
   ids are reassigned. *)

(* A cached Sat/Unsat is a completed proof and is a *sound* verdict under any
   budget; a cached Unknown only witnesses that [budget] nodes were not
   enough, so it replays only for queries with the same or a smaller
   budget. *)
let sound_verdict entry ~max_nodes =
  match entry.result with
  | Solver.Sat _ | Solver.Unsat -> true
  | Solver.Unknown -> entry.budget >= max_nodes

(* Stricter rule for model queries: replay only when a fresh solve would
   provably return the identical result.  The solver's answer is monotone in
   the budget (decided at some node count n*, Unknown below it), so a decided
   result cached at budget b replays for any request >= b, and an Unknown
   cached at b replays for any request <= b. *)
let identical_replay entry ~max_nodes =
  match entry.result with
  | Solver.Sat _ | Solver.Unsat -> max_nodes >= entry.budget
  | Solver.Unknown -> max_nodes <= entry.budget

let all_vars cs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun c -> List.iter (fun (v : E.var) -> Hashtbl.replace tbl v.E.name v) (E.vars c)) cs;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : E.var) (b : E.var) -> String.compare a.E.name b.E.name)

(* Probe a stored satisfying assignment against the query: complete it over
   the query's variables and verify every conjunct by evaluation, so a hit is
   sound by construction. *)
let probe_models t cs =
  let vars = all_vars cs in
  let satisfies m =
    let m = Solver.complete ~vars m in
    if List.for_all (fun c -> match Solver.eval_in m c with Some v -> v <> 0 | None -> false) cs
    then Some m
    else None
  in
  List.find_map satisfies t.models

let store_model t m =
  let canon m = List.sort compare m in
  let cm = canon m in
  if not (List.exists (fun m' -> canon m' = cm) t.models) then begin
    t.models <- m :: t.models;
    if List.length t.models > t.max_models then
      t.models <- List.filteri (fun i _ -> i < t.max_models) t.models
  end

let store_core t set =
  (* keep only minimal cores: a new superset of a stored core is redundant,
     and a new core obsoletes its stored supersets *)
  if not (List.exists (fun c -> Sset.subset c set) t.cores) then begin
    t.cores <- set :: List.filter (fun c -> not (Sset.subset set c)) t.cores;
    if List.length t.cores > t.max_cores then
      t.cores <- List.filteri (fun i _ -> i < t.max_cores) t.cores
  end

(* Subset test over sorted name lists. *)
let rec foot_subset a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = String.compare x y in
    if c = 0 then foot_subset xs ys else if c > 0 then foot_subset a ys else false

let query_foot cs = Vsmt.Footprint.names (Vsmt.Footprint.of_list cs)

(* Reclaim Unknown entries superseded by a decided re-solve: once a query
   over some symbols is decided at budget [b], Unknown entries recorded at
   smaller budgets whose footprint lies inside those symbols are stale
   hints — keeping them only delays their inevitable replacement.  The
   footprint guard is the point: without it this reclaim would also evict
   Unknown entries of *unrelated* slices, throwing away budget-exhaustion
   evidence the next path still needs. *)
let purge_stale_unknowns t memo ~budget ~foot =
  let stale =
    Hashtbl.fold
      (fun key e acc ->
        match e.result with
        | Solver.Unknown when e.budget < budget && foot_subset e.foot foot -> key :: acc
        | _ -> acc)
      memo []
  in
  List.iter (Hashtbl.remove memo) stale;
  t.n_unknown_purged <- t.n_unknown_purged + List.length stale

let record t memo key ~max_nodes ~foot result =
  let superseded_unknown =
    match Hashtbl.find_opt memo key with
    | Some { result = Solver.Unknown; _ } -> ( match result with Solver.Unknown -> false | _ -> true)
    | _ -> false
  in
  Hashtbl.replace memo key { result; budget = max_nodes; foot };
  (* scan only on an actual larger-budget re-solve of a previously-Unknown
     query — the rare event the reclaim exists for; ordinary misses never
     pay an O(cache) sweep *)
  if superseded_unknown then purge_stale_unknowns t memo ~budget:max_nodes ~foot;
  match result with
  | Solver.Sat m -> store_model t m
  | Solver.Unsat -> ()
  | Solver.Unknown -> ()

let count_solver_work t cs =
  t.n_solver_constraints <- t.n_solver_constraints + List.length cs;
  t.n_solver_nodes <- t.n_solver_nodes + List.fold_left (fun a c -> a + E.tree_size c) 0 cs

(* A result computed after the deadline passed may be a deadline-induced
   [Unknown] — a property of *this* run's clock, not of the query.  Caching
   it would poison replay (and break checkpoint/resume determinism), so
   post-expiry results are returned but never recorded. *)
let expired = function
  | None -> false
  | Some b -> Vresilience.Budget.expired b

(* The query entry points split into a pure preparation step (simplify,
   canonicalize, render the key — all safe outside any lock) and keyed
   probe/solve steps over the prepared query, so the striped concurrent
   layer below can consult the cache for a whole batch first and hold a
   shard lock only around the table accesses and the solve. *)

type prepared = { p_canon : E.t list; p_conjunct_keys : string list; p_key : string }

(* canonicalize: solve the sorted set, not just key on it — permuted queries
   then share one entry AND a miss computes the very result a permuted hit
   replays *)
let prepare cs =
  let canon = List.sort_uniq E.compare (Vsmt.Simplify.simplify_conj cs) in
  let conjunct_keys = List.map E.to_string canon in
  { p_canon = canon; p_conjunct_keys = conjunct_keys; p_key = String.concat "\x00" conjunct_keys }

let feasible = function Solver.Sat _ | Solver.Unknown -> true | Solver.Unsat -> false

(* Cache-only consult of a prepared feasibility query: exact entry, stored-
   model probe, unsat-core subsumption — everything short of a solver call.
   [count_lookup] is false on the re-probe a batch does just before solving
   (another worker may have populated the key since the pre-batch consult),
   so each logical query still counts exactly one lookup. *)
let probe_feasible t ~count_lookup ~max_nodes p =
  if count_lookup then t.n_lookups <- t.n_lookups + 1;
  match Hashtbl.find_opt t.feas_memo p.p_key with
  | Some e when sound_verdict e ~max_nodes ->
    if count_lookup then t.n_exact_hits <- t.n_exact_hits + 1;
    Some (feasible e.result)
  | _ -> begin
    match probe_models t p.p_canon with
    | Some m ->
      if count_lookup then t.n_cex_hits <- t.n_cex_hits + 1;
      Hashtbl.replace t.feas_memo p.p_key
        { result = Solver.Sat m; budget = max_nodes; foot = query_foot p.p_canon };
      Some true
    | None ->
      let qset = Sset.of_list p.p_conjunct_keys in
      if List.exists (fun core -> Sset.subset core qset) t.cores then begin
        if count_lookup then t.n_subsumption_hits <- t.n_subsumption_hits + 1;
        Hashtbl.replace t.feas_memo p.p_key
          { result = Solver.Unsat; budget = max_nodes; foot = query_foot p.p_canon };
        Some false
      end
      else None
  end

let solve_feasible t ?budget ~max_nodes p =
  t.n_misses <- t.n_misses + 1;
  count_solver_work t p.p_canon;
  let result = Solver.check ?budget ~max_nodes p.p_canon in
  if not (expired budget) then begin
    record t t.feas_memo p.p_key ~max_nodes ~foot:(query_foot p.p_canon) result;
    if result = Solver.Unsat then store_core t (Sset.of_list p.p_conjunct_keys)
  end;
  feasible result

let check_model_prepared t ?budget ~max_nodes p =
  t.n_lookups <- t.n_lookups + 1;
  match Hashtbl.find_opt t.model_memo p.p_key with
  | Some e when identical_replay e ~max_nodes ->
    t.n_exact_hits <- t.n_exact_hits + 1;
    e.result, true
  | _ ->
    t.n_misses <- t.n_misses + 1;
    count_solver_work t p.p_canon;
    let result = Solver.check ?budget ~max_nodes p.p_canon in
    if not (expired budget) then
      record t t.model_memo p.p_key ~max_nodes ~foot:(query_foot p.p_canon) result;
    result, false

let check_model t ?budget ~max_nodes cs =
  fst (check_model_prepared t ?budget ~max_nodes (prepare cs))

let is_feasible t ?budget ~max_nodes cs =
  let p = prepare cs in
  match probe_feasible t ~count_lookup:true ~max_nodes p with
  | Some v -> v
  | None -> solve_feasible t ?budget ~max_nodes p

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

type dump = t

let dump t =
  { t with model_memo = Hashtbl.copy t.model_memo; feas_memo = Hashtbl.copy t.feas_memo }

let restore d =
  { d with model_memo = Hashtbl.copy d.model_memo; feas_memo = Hashtbl.copy d.feas_memo }

let dump_entries (d : dump) = Hashtbl.length d.model_memo + Hashtbl.length d.feas_memo

(* Footprint-scoped invalidation for cross-run reuse.  A cached Sat/Unsat
   is a proof about the constraint *text* and stays logically valid across
   code versions, but entries touching symbols from changed code are
   dropped anyway: their queries won't recur verbatim under the new
   version, and keeping them would let a warm run's verdict provenance
   differ from a cold run's.  Counters are zeroed because [Striped.prime]
   folds the dump's counters into shard 0 — a cross-run dump must not
   pollute the next run's hit statistics with last run's totals. *)
let filter_dump (d : dump) ~(dirty : string list) =
  let dirty_set = Sset.of_list dirty in
  let clean_entry (e : entry) = not (List.exists (fun n -> Sset.mem n dirty_set) e.foot) in
  let filter_memo memo =
    let out = Hashtbl.create (Hashtbl.length memo) in
    Hashtbl.iter (fun k e -> if clean_entry e then Hashtbl.replace out k e) memo;
    out
  in
  let clean_model m = not (List.exists (fun (n, _) -> Sset.mem n dirty_set) m) in
  let clean_core c = Sset.is_empty (Sset.inter c dirty_set) in
  {
    d with
    model_memo = filter_memo d.model_memo;
    feas_memo = filter_memo d.feas_memo;
    models = (if Sset.is_empty dirty_set then d.models else List.filter clean_model d.models);
    cores = (if Sset.is_empty dirty_set then d.cores else List.filter clean_core d.cores);
    n_lookups = 0;
    n_exact_hits = 0;
    n_cex_hits = 0;
    n_subsumption_hits = 0;
    n_misses = 0;
    n_solver_constraints = 0;
    n_solver_nodes = 0;
    n_unknown_purged = 0;
  }

(* ------------------------------------------------------------------ *)
(* Shard merging                                                       *)
(* ------------------------------------------------------------------ *)

(* Fold one worker's cache segment into another.  Entries are sound
   regardless of which worker computed them, so a conflict keeps whichever
   entry is stronger: a decided verdict beats Unknown, and among Unknowns
   the larger budget subsumes the smaller. *)
let merge_entry memo key (e : entry) =
  match Hashtbl.find_opt memo key with
  | None -> Hashtbl.replace memo key e
  | Some cur -> begin
    match cur.result, e.result with
    | Solver.Unknown, (Solver.Sat _ | Solver.Unsat) -> Hashtbl.replace memo key e
    | Solver.Unknown, Solver.Unknown when e.budget > cur.budget ->
      Hashtbl.replace memo key e
    | _ -> ()
  end

let merge_into ~src ~dst =
  Hashtbl.iter (merge_entry dst.model_memo) src.model_memo;
  Hashtbl.iter (merge_entry dst.feas_memo) src.feas_memo;
  (* oldest first so dst's recency order roughly matches discovery order *)
  List.iter (store_model dst) (List.rev src.models);
  List.iter (store_core dst) (List.rev src.cores);
  dst.n_lookups <- dst.n_lookups + src.n_lookups;
  dst.n_exact_hits <- dst.n_exact_hits + src.n_exact_hits;
  dst.n_cex_hits <- dst.n_cex_hits + src.n_cex_hits;
  dst.n_subsumption_hits <- dst.n_subsumption_hits + src.n_subsumption_hits;
  dst.n_misses <- dst.n_misses + src.n_misses;
  dst.n_solver_constraints <- dst.n_solver_constraints + src.n_solver_constraints;
  dst.n_solver_nodes <- dst.n_solver_nodes + src.n_solver_nodes;
  dst.n_unknown_purged <- dst.n_unknown_purged + src.n_unknown_purged

let stats t =
  {
    lookups = t.n_lookups;
    exact_hits = t.n_exact_hits;
    cex_hits = t.n_cex_hits;
    subsumption_hits = t.n_subsumption_hits;
    misses = t.n_misses;
    stored_models = List.length t.models;
    stored_cores = List.length t.cores;
    solver_constraints = t.n_solver_constraints;
    solver_nodes = t.n_solver_nodes;
    unknown_purged = t.n_unknown_purged;
    coalesced = 0;
  }

let hits s = s.exact_hits + s.cex_hits + s.subsumption_hits

let hit_rate s = if s.lookups = 0 then 0. else float_of_int (hits s) /. float_of_int s.lookups

let pp_stats ppf s =
  Fmt.pf ppf
    "%d lookups, %d hits (%.0f%%: %d exact, %d cex, %d subsumption), %d misses \
     (%d constraints / %d nodes solved, %d stale unknowns purged%s)"
    s.lookups (hits s) (100. *. hit_rate s) s.exact_hits s.cex_hits s.subsumption_hits
    s.misses s.solver_constraints s.solver_nodes s.unknown_purged
    (if s.coalesced > 0 then Printf.sprintf ", %d coalesced" s.coalesced else "")

(* ------------------------------------------------------------------ *)
(* The striped concurrent cache                                         *)
(* ------------------------------------------------------------------ *)

(* One cache shared by every worker domain, lock-striped by query key so
   concurrent queries for different keys proceed in parallel.  The expensive
   pure work (simplification, canonicalization, key rendering) happens
   outside any lock; a shard's lock is held across its table accesses and —
   deliberately — across the solve of a miss, so a duplicate query arriving
   from another worker queues behind the first and is answered from the
   entry it records instead of re-solving (natural query coalescing; such
   waits are counted in [stats.coalesced]). *)
module Striped = struct
  type shard = { s_lock : Mutex.t; s_cache : t; mutable s_busy : string }

  type nonrec t = { shards : shard array; n_coalesced : int Atomic.t }

  let create_plain = create

  let create ?max_models ?max_cores ?(shards = 64) () =
    let requested = max 1 shards in
    let rec pow2 p = if p >= requested then p else pow2 (p * 2) in
    {
      shards =
        Array.init (pow2 1) (fun _ ->
            { s_lock = Mutex.create (); s_cache = create ?max_models ?max_cores (); s_busy = "" });
      n_coalesced = Atomic.make 0;
    }

  let shard_ix t key = Hashtbl.hash key land (Array.length t.shards - 1)

  let with_shard t key f =
    let s = t.shards.(shard_ix t key) in
    if not (Mutex.try_lock s.s_lock) then begin
      (* benign racy read of [s_busy]: when the lock holder is answering
         this very key, we are a duplicate in-flight query about to be
         served by the entry it records *)
      if String.equal s.s_busy key then Atomic.incr t.n_coalesced;
      Mutex.lock s.s_lock
    end;
    s.s_busy <- key;
    Fun.protect
      ~finally:(fun () ->
        s.s_busy <- "";
        Mutex.unlock s.s_lock)
      (fun () -> f s.s_cache)

  (* Each call returns the answer paired with [true] when it was served
     without a solver round-trip (any cache probe, or an entry recorded by
     a concurrent worker while we queued). *)
  let is_feasible t ?budget ~max_nodes cs =
    let p = prepare cs in
    with_shard t p.p_key (fun c ->
        match probe_feasible c ~count_lookup:true ~max_nodes p with
        | Some v -> v, true
        | None -> solve_feasible c ?budget ~max_nodes p, false)

  (* One aggregated feasibility round: the cache is consulted for every
     pending query first (pre-batch), then only the remaining misses pay a
     solver round-trip each, populating their shard under its lock
     (post-batch).  The re-probe before a solve is uncounted — another
     worker may have recorded the key between the two phases, and each
     logical query must count exactly one lookup. *)
  let feasible_batch t ?budget ~max_nodes queries =
    let prepped = List.map prepare queries in
    let consulted =
      List.map
        (fun p -> with_shard t p.p_key (fun c -> probe_feasible c ~count_lookup:true ~max_nodes p))
        prepped
    in
    List.map2
      (fun p consult ->
        match consult with
        | Some v -> v, true
        | None ->
          with_shard t p.p_key (fun c ->
              match probe_feasible c ~count_lookup:false ~max_nodes p with
              | Some v -> v, true
              | None -> solve_feasible c ?budget ~max_nodes p, false))
      prepped consulted

  let check_model t ?budget ~max_nodes cs =
    let p = prepare cs in
    with_shard t p.p_key (fun c -> check_model_prepared c ?budget ~max_nodes p)

  let stats t =
    let zero =
      {
        lookups = 0;
        exact_hits = 0;
        cex_hits = 0;
        subsumption_hits = 0;
        misses = 0;
        stored_models = 0;
        stored_cores = 0;
        solver_constraints = 0;
        solver_nodes = 0;
        unknown_purged = 0;
        coalesced = Atomic.get t.n_coalesced;
      }
    in
    Array.fold_left
      (fun acc sh ->
        let s = stats sh.s_cache in
        {
          lookups = acc.lookups + s.lookups;
          exact_hits = acc.exact_hits + s.exact_hits;
          cex_hits = acc.cex_hits + s.cex_hits;
          subsumption_hits = acc.subsumption_hits + s.subsumption_hits;
          misses = acc.misses + s.misses;
          stored_models = acc.stored_models + s.stored_models;
          stored_cores = acc.stored_cores + s.stored_cores;
          solver_constraints = acc.solver_constraints + s.solver_constraints;
          solver_nodes = acc.solver_nodes + s.solver_nodes;
          unknown_purged = acc.unknown_purged + s.unknown_purged;
          coalesced = acc.coalesced;
        })
      zero t.shards

  let table_sizes t =
    Array.fold_left
      (fun (f, m) sh ->
        (f + Hashtbl.length sh.s_cache.feas_memo, m + Hashtbl.length sh.s_cache.model_memo))
      (0, 0) t.shards

  let dump t =
    let acc = create_plain () in
    Array.iter (fun sh -> merge_into ~src:sh.s_cache ~dst:acc) t.shards;
    acc

  let prime t d =
    Array.iteri
      (fun i sh ->
        Mutex.lock sh.s_lock;
        Hashtbl.iter
          (fun key e -> if shard_ix t key = i then merge_entry sh.s_cache.model_memo key e)
          d.model_memo;
        Hashtbl.iter
          (fun key e -> if shard_ix t key = i then merge_entry sh.s_cache.feas_memo key e)
          d.feas_memo;
        (* stored models and unsat cores are probed against arbitrary
           queries, so they replicate into every shard *)
        List.iter (store_model sh.s_cache) (List.rev d.models);
        List.iter (store_core sh.s_cache) (List.rev d.cores);
        if i = 0 then begin
          sh.s_cache.n_lookups <- sh.s_cache.n_lookups + d.n_lookups;
          sh.s_cache.n_exact_hits <- sh.s_cache.n_exact_hits + d.n_exact_hits;
          sh.s_cache.n_cex_hits <- sh.s_cache.n_cex_hits + d.n_cex_hits;
          sh.s_cache.n_subsumption_hits <- sh.s_cache.n_subsumption_hits + d.n_subsumption_hits;
          sh.s_cache.n_misses <- sh.s_cache.n_misses + d.n_misses;
          sh.s_cache.n_solver_constraints <- sh.s_cache.n_solver_constraints + d.n_solver_constraints;
          sh.s_cache.n_solver_nodes <- sh.s_cache.n_solver_nodes + d.n_solver_nodes;
          sh.s_cache.n_unknown_purged <- sh.s_cache.n_unknown_purged + d.n_unknown_purged
        end;
        Mutex.unlock sh.s_lock)
      t.shards
end
