(** Per-run exploration telemetry.

    The executor drives a {!recorder} while it runs (one bump per event, a
    throttled queue-depth sample per state pick) and {!finish}es it into an
    immutable {!t} that rides on the executor result.  [t] serializes to JSON
    so the bench harness can dump trajectories ([--stats-out]) without any
    external JSON dependency. *)

type sample = { step : int; queue_depth : int }

type completion = {
  state_id : int;
  at_step : int;  (** global step counter when the state reached a terminal
                      status — the "state steps" currency searcher
                      comparisons are measured in *)
  dropped : bool;  (** killed rather than terminated *)
}

type worker = {
  w_id : int;  (** worker index, 0 = the driving domain *)
  w_steps : int;
  w_forks : int;
  w_steals : int;  (** states this worker stole from other frontiers *)
  w_solver_queries : int;
  w_cache_hits : int;  (** solver-cache hits in this worker's segment *)
  w_solver_time_s : float;  (** wall time inside solver/cache queries *)
}
(** Per-worker counters of a parallel ([--jobs N]) run. *)

type batch = { b_batches : int; b_queries : int; b_saved : int }
(** Batched-feasibility accounting: [b_batches] counts executor aggregation
    events (a fork's true/false pair, a loop-exit probe), [b_queries] the
    feasibility queries inside them, [b_saved] the queries answered without
    a solver round-trip (cache probes plus coalesced duplicate solves). *)

type query_sizes = {
  pre_constraints : int;  (** conjuncts across all queries, before slicing *)
  pre_nodes : int;  (** expression tree nodes across all queries, before slicing *)
  sent_constraints : int;  (** conjuncts actually sent to the solver layer *)
  sent_nodes : int;  (** tree nodes actually sent to the solver layer *)
  sliced : int;  (** queries where slicing removed at least one conjunct *)
  hist_pre : int array;  (** constraints-per-query histogram, before slicing *)
  hist_sent : int array;  (** constraints-per-query histogram, after slicing *)
}
(** Query-size accounting, measured at the executor (cache-independent):
    "pre" is the full simplified path condition a query would classically
    send, "sent" is what the independence slicer actually sent.  Histogram
    buckets are bounded by {!hist_thresholds} (last bucket = overflow). *)

val hist_thresholds : int array
(** Upper bounds of the histogram buckets ([[|1;2;4;8;16;32;64|]]); a query
    with [n] constraints lands in the first bucket with threshold >= [n]. *)

type t = {
  searcher : string;
  solver_cache_enabled : bool;
  states_created : int;
  states_completed : int;  (** reached [Terminated] *)
  states_dropped : int;  (** killed (infeasible, out of fuel, stuck) *)
  forks : int;
  steps : int;
  fork_rate : float;  (** forks per executed statement step *)
  solver_queries : int;  (** feasibility + model queries issued *)
  solver_solves : int;  (** queries that reached {!Vsmt.Solver} (= queries
                            when the cache is off) *)
  cache : Solver_cache.stats option;
  completions : completion list;  (** in completion order *)
  queue_samples : sample list;  (** (step, frontier depth) over time *)
  wall_time_s : float;
  degradation : Vresilience.Degradation.event list;
      (** every degradation-ladder rung entered, oldest first — the
          [degradation] section of the JSON dump.  Empty = complete run. *)
  deadline_hit : bool;  (** exploration was cut short by the deadline *)
  resumed : bool;  (** this run continued from a checkpoint *)
  jobs : int;  (** worker count of the run (1 = sequential) *)
  workers : worker list;  (** per-worker counters; empty for sequential runs *)
  query_sizes : query_sizes;
  memo_sizes : (string * int) list;
      (** sizes of the process's shared expression-level tables at finish
          time (lock-striped simplify/footprint memos summed across
          stripes, rendered strings, the shared hash-cons table, and — for
          cached runs — the striped solver cache's entry counts) — the
          observability hook for the bounded-memo policy *)
  batch : batch option;
      (** batched-feasibility counters; [None] when the run predates the
          batching layer (e.g. deserialized older telemetry) *)
}

(** {1 Recording} *)

type recorder

val recorder : searcher:string -> solver_cache_enabled:bool -> unit -> recorder
val on_step : recorder -> unit
val on_fork : recorder -> unit

val on_pick : recorder -> queue_depth:int -> unit
(** Called on every state selection; samples are kept at most once every 64
    steps (plus the first), so long runs stay small. *)

val on_complete : recorder -> state_id:int -> dropped:bool -> unit

val on_query :
  recorder ->
  pre_constraints:int ->
  pre_nodes:int ->
  sent_constraints:int ->
  sent_nodes:int ->
  unit
(** Called once per logical solver query (feasibility or model) with the
    query's size before and after independence slicing.  With slicing off
    the executor reports [sent = pre]. *)

val on_degrade : recorder -> Vresilience.Degradation.event -> unit
val mark_resumed : recorder -> unit
val steps : recorder -> int
(** Current step count — the timestamp currency for degradation events. *)

val copy : recorder -> recorder
(** A snapshot of the recorder, decoupled from further mutation — what the
    executor puts in a checkpoint. *)

val merge : into:recorder -> recorder -> unit
(** Fold one worker's recorder into [into] when a parallel run quiesces:
    counters sum, event logs concatenate.  [into] typically belongs to
    worker 0; completion order across workers is arbitrary, so callers that
    need a canonical order rewrite it with {!set_completions}. *)

val completions : recorder -> completion list
(** Completion log so far, oldest first. *)

val set_completions : recorder -> completion list -> unit
(** Replace the completion log (oldest first) — parallel runs renumber state
    ids and re-sort completions into a deterministic order before
    {!finish}. *)

val finish :
  ?deadline_hit:bool ->
  ?jobs:int ->
  ?workers:worker list ->
  ?memo_sizes:(string * int) list ->
  ?batch:batch ->
  recorder ->
  states_created:int ->
  solver_queries:int ->
  solver_solves:int ->
  cache:Solver_cache.stats option ->
  wall_time_s:float ->
  t

(** {1 Reporting} *)

val first_completion : t -> satisfying:(int -> bool) -> completion option
(** Earliest completion whose state id satisfies the predicate — e.g. "when
    did the first specious path finish". *)

val to_json : t -> string
val save : path:string -> t list -> unit
(** Write a JSON array of stats records. *)

val pp : t Fmt.t

(** {1 Serving telemetry}

    Counters for the continuous-checking service (vserve): per-request
    latency histograms and shed/batch accounting, dumped into the same
    hand-rolled JSON dialect as the exploration stats.  Kept here so every
    telemetry surface of the system shares one home and one JSON style. *)

type latency_hist
(** Power-of-two-bucketed latency histogram (microseconds, 28 buckets up to
    ~67 s; the last bucket is the overflow).  Mutable; not domain-safe —
    observe from the serving loop only. *)

val latency_hist : unit -> latency_hist
val observe_latency : latency_hist -> us:float -> unit
val latency_observations : latency_hist -> int
val latency_mean_us : latency_hist -> float

val latency_percentile_us : latency_hist -> float -> float
(** [latency_percentile_us h q] for [q] in [0..1]: the upper bound of the
    bucket holding the q-quantile observation (the recorded maximum for the
    overflow bucket); [0.] with no observations. *)

val merge_latency : into:latency_hist -> latency_hist -> unit
(** Bucket-wise sum — the fleet router folds per-shard histograms into one
    fleet-wide view with this. *)

val absorb_latency :
  latency_hist -> counts:int list -> mean_us:float -> max_us:float -> unit
(** {!merge_latency} for a histogram that arrived in serialized parts (a
    worker's stats JSON pulled over the wire): bucket counts sum, the
    observation total and sum are reconstructed from the mean. *)

val latency_hist_to_json : latency_hist -> string

type serve = {
  requests : int;  (** requests answered (check + service verbs) *)
  by_verb : (string * int) list;
  shed_queue_full : int;  (** rejected at admission: queue depth exceeded *)
  shed_deadline : int;
      (** degraded at execution: queue wait consumed the request deadline,
          so only the conservative widening ran *)
  batches : int;  (** batch groups executed *)
  batched_requests : int;  (** requests that shared a batch group *)
  coalesced : int;  (** requests served from an identical batch-mate *)
  write_failed : int;
      (** responses dropped because the client connection failed mid-write
          (the connection is closed; nothing truncated ever reaches a peer) *)
  model_reloads : int;
  model_load_failures : int;
  model_compiles : int;
      (** models compiled into decision tables at load/stage (DESIGN.md
          Section 5j); digest-unchanged refreshes don't recompile *)
  compile_wall_s : float;  (** wall time spent in those compilations *)
  models : (string * int) list;  (** live model keys and their generations *)
  latency : latency_hist;  (** enqueue-to-response, check requests only *)
}

val serve_to_json : serve -> string

(** {1 Fleet telemetry}

    The vfleet router/supervisor counters, aggregated across shards into the
    same JSON dialect.  [fs_stats] carries each worker's own {!serve} JSON
    verbatim (the router collects it over the wire), so a fleet stats dump
    nests the complete per-shard picture. *)

type fleet_shard = {
  fs_id : int;  (** shard index (position on the hash ring) *)
  fs_pid : int;  (** current worker pid; 0 when down *)
  fs_state : string;  (** ["up"], ["down"], ["restarting"], or ["tripped"] *)
  fs_restarts : int;  (** times the supervisor respawned this shard *)
  fs_breaker_trips : int;  (** crash-loop / failure breaker openings *)
  fs_failures : int;  (** probe failures + dispatch errors charged here *)
  fs_stats : string option;  (** the worker's own serve-stats JSON, verbatim *)
}

type fleet = {
  f_shards : fleet_shard list;
  f_routed : int;  (** check requests dispatched to a worker *)
  f_retries : int;  (** re-dispatches after a retryable error *)
  f_failovers : int;  (** re-dispatches that switched to a sibling shard *)
  f_timeouts : int;  (** per-attempt deadlines that expired *)
  f_stale_responses : int;  (** late answers for already-answered requests *)
  f_fallback_degraded : int;
      (** requests answered from the router's conservative widening because
          every candidate shard was down past its budget *)
  f_shed : int;  (** rejected at router admission (pending table full) *)
  f_write_failed : int;  (** router responses dropped on dead client conns *)
  f_reloads_staged : int;  (** fleet-wide stage rounds that fully succeeded *)
  f_reloads_committed : int;  (** fleet-wide generation flips completed *)
  f_latency : latency_hist;  (** router-observed dispatch-to-answer *)
}

val fleet_shard_to_json : fleet_shard -> string
val fleet_to_json : fleet -> string
