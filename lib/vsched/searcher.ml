module Ast = Vir.Ast

type view = { depth : int; pending : Vir.Ast.expr list }

type t =
  | Dfs
  | Bfs
  | Random_path of int
  | Coverage_guided
  | Config_impact of { related : string list }

let name = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_path _ -> "random"
  | Coverage_guided -> "coverage"
  | Config_impact _ -> "config-impact"

let to_string = function
  | Random_path seed -> Printf.sprintf "random:%d" seed
  | p -> name p

let of_string s =
  match String.split_on_char ':' (String.trim (String.lowercase_ascii s)) with
  | [ "dfs" ] -> Ok Dfs
  | [ "bfs" ] -> Ok Bfs
  | [ "random" ] -> Ok (Random_path 0)
  | [ "random"; seed ] -> begin
    match int_of_string_opt seed with
    | Some seed -> Ok (Random_path seed)
    | None -> Error (Printf.sprintf "invalid searcher seed %S" s)
  end
  | [ "coverage" ] -> Ok Coverage_guided
  | [ "config-impact" ] -> Ok (Config_impact { related = [] })
  | _ ->
    Error
      (Printf.sprintf
         "unknown searcher %S (expected dfs, bfs, random[:SEED], coverage or config-impact)" s)

let run_to_completion = function
  | Dfs -> true
  | Bfs | Random_path _ | Coverage_guided | Config_impact _ -> false

(* ------------------------------------------------------------------ *)
(* Live frontiers                                                      *)
(* ------------------------------------------------------------------ *)

(* The three classic frontiers replicate the executor's historical queue
   behaviour exactly:
   - Dfs kept a stack (fork children pushed at the front, picks at the front);
     preempted states went to the back, though Dfs never preempts in practice;
   - Bfs appended at the back and picked from the back;
   - Random_path appended at the back and removed a uniformly random index,
     with the rng seeded [| seed; 77 |] as before. *)

(* A checkpointable image of a frontier: the queued states in internal
   order, the selection rng (Random_path only) and the covered branch set
   (Coverage_guided only).  Restoring a dump into a fresh frontier of the
   same policy reproduces the selection sequence exactly — the property the
   resume path relies on. *)
type 'a dump = {
  d_states : 'a list;
  d_rng : Random.State.t option;
  d_covered : Ast.expr list;
}

type 'a impl = {
  i_add : preempted:bool -> 'a -> unit;
  i_select : unit -> 'a option;
  i_length : unit -> int;
  i_mark_covered : Ast.expr -> unit;
  i_dump : unit -> 'a dump;
  i_restore : 'a dump -> unit;
  i_drop : keep:int -> 'a list;
}

type 'a frontier = { policy : t; impl : 'a impl }

let no_coverage _ = ()

(* first [keep] elements kept, the rest returned as dropped *)
let split_keep keep l =
  let rec go i acc = function
    | rest when i >= keep -> List.rev acc, rest
    | [] -> List.rev acc, []
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] l

let dfs_impl () =
  let q = ref [] in
  {
    i_add = (fun ~preempted st -> if preempted then q := !q @ [ st ] else q := st :: !q);
    i_select =
      (fun () ->
        match !q with
        | [] -> None
        | st :: rest ->
          q := rest;
          Some st);
    i_length = (fun () -> List.length !q);
    i_mark_covered = no_coverage;
    i_dump = (fun () -> { d_states = !q; d_rng = None; d_covered = [] });
    i_restore = (fun d -> q := d.d_states);
    i_drop =
      (fun ~keep ->
        (* picks come from the front, so the back of the stack is the
           lowest-priority end *)
        let kept, dropped = split_keep keep !q in
        q := kept;
        dropped);
  }

let take_last states =
  let rec go acc = function
    | [] -> assert false
    | [ x ] -> x, List.rev acc
    | x :: rest -> go (x :: acc) rest
  in
  go [] states

let bfs_impl () =
  let q = ref [] in
  {
    i_add = (fun ~preempted:_ st -> q := !q @ [ st ]);
    i_select =
      (fun () ->
        match !q with
        | [] -> None
        | states ->
          let st, rest = take_last states in
          q := rest;
          Some st);
    i_length = (fun () -> List.length !q);
    i_mark_covered = no_coverage;
    i_dump = (fun () -> { d_states = !q; d_rng = None; d_covered = [] });
    i_restore = (fun d -> q := d.d_states);
    i_drop =
      (fun ~keep ->
        (* picks come from the back, so the front of the queue is the
           lowest-priority end *)
        let n = List.length !q in
        let dropped, kept = split_keep (max 0 (n - keep)) !q in
        q := kept;
        dropped);
  }

let random_impl seed =
  let rng = ref (Random.State.make [| seed; 77 |]) in
  let q = ref [] in
  {
    i_add = (fun ~preempted:_ st -> q := !q @ [ st ]);
    i_select =
      (fun () ->
        match !q with
        | [] -> None
        | states ->
          let k = Random.State.int !rng (List.length states) in
          let st = List.nth states k in
          q := List.filteri (fun i _ -> i <> k) states;
          Some st);
    i_length = (fun () -> List.length !q);
    i_mark_covered = no_coverage;
    i_dump =
      (fun () -> { d_states = !q; d_rng = Some (Random.State.copy !rng); d_covered = [] });
    i_restore =
      (fun d ->
        q := d.d_states;
        match d.d_rng with Some s -> rng := Random.State.copy s | None -> ());
    i_drop =
      (fun ~keep ->
        (* no priority order: drop the oldest states *)
        let n = List.length !q in
        let dropped, kept = split_keep (max 0 (n - keep)) !q in
        q := kept;
        dropped);
  }

(* Scored frontiers keep entries newest first and select the entry with the
   highest score; on ties the newest entry wins, which keeps the search
   depth-leaning and deterministic.  Scores are cached per entry and
   invalidated by epoch when the scoring context (coverage) changes, so a
   select is a cheap scan even over deep frontiers. *)
type ('a, 'v) entry = { st : 'a; v : 'v; mutable s : float; mutable at : int }

let scored_impl ~view ~score ~mark ?(dump_cov = fun () -> []) ?(restore_cov = fun _ -> ()) ()
    =
  let epoch = ref 0 in
  let invalidate () = incr epoch in
  let entries = ref [] in
  let rescore e =
    if e.at <> !epoch then begin
      e.s <- score e.v;
      e.at <- !epoch
    end;
    e.s
  in
  {
    i_add =
      (fun ~preempted:_ st ->
        let v = view st in
        entries := { st; v; s = score v; at = !epoch } :: !entries);
    i_select =
      (fun () ->
        match !entries with
        | [] -> None
        | first :: rest ->
          let best_i = ref 0 and best_s = ref (rescore first) in
          List.iteri
            (fun i e ->
              let s = rescore e in
              if s > !best_s then begin
                best_i := i + 1;
                best_s := s
              end)
            rest;
          let e = List.nth !entries !best_i in
          entries := List.filteri (fun i _ -> i <> !best_i) !entries;
          Some e.st);
    i_length = (fun () -> List.length !entries);
    i_mark_covered = (fun cond -> mark ~invalidate cond);
    i_dump =
      (fun () ->
        {
          d_states = List.map (fun e -> e.st) !entries;
          d_rng = None;
          d_covered = dump_cov ();
        });
    i_restore =
      (fun d ->
        restore_cov d.d_covered;
        invalidate ();
        (* rebuild in dump order so newest-first tie-breaking is preserved *)
        entries := List.map (fun st -> let v = view st in { st; v; s = score v; at = !epoch }) d.d_states);
    i_drop =
      (fun ~keep ->
        (* keep the [keep] best-scored entries; on ties, list position
           (newest first) wins, mirroring selection order *)
        let scored = List.mapi (fun i e -> rescore e, i, e) !entries in
        let ranked =
          List.stable_sort
            (fun (sa, ia, _) (sb, ib, _) ->
              if sa <> sb then Float.compare sb sa else Int.compare ia ib)
            scored
        in
        let keep_idx =
          ranked |> List.filteri (fun i _ -> i < keep) |> List.map (fun (_, i, _) -> i)
        in
        let dropped =
          List.filteri (fun i _ -> not (List.mem i keep_idx)) !entries
          |> List.map (fun e -> e.st)
        in
        entries := List.filteri (fun i _ -> List.mem i keep_idx) !entries;
        dropped);
  }

(* Positional discount: a pending branch [i] conditions away contributes
   [w / (i + 1)], so states *closest* to an interesting branch rank first. *)
let positional_score weight pending =
  let s = ref 0. in
  List.iteri
    (fun i cond ->
      let w = weight cond in
      if w > 0. then s := !s +. (w /. float_of_int (i + 1)))
    pending;
  !s

let coverage_impl ~view () =
  let covered : (Ast.expr, unit) Hashtbl.t = Hashtbl.create 64 in
  let weight cond =
    if Ast.config_reads cond <> [] && not (Hashtbl.mem covered cond) then 1. else 0.
  in
  scored_impl ~view
    ~score:(fun v -> positional_score weight v.pending)
    ~mark:(fun ~invalidate cond ->
      if Ast.config_reads cond <> [] && not (Hashtbl.mem covered cond) then begin
        Hashtbl.replace covered cond ();
        invalidate ()
      end)
    ~dump_cov:(fun () -> Hashtbl.fold (fun cond () acc -> cond :: acc) covered [])
    ~restore_cov:(fun conds ->
      Hashtbl.reset covered;
      List.iter (fun c -> Hashtbl.replace covered c ()) conds)
    ()

let config_impact_impl ~view ~related () =
  let interesting =
    match related with
    | [] -> fun _ -> true
    | rs -> fun p -> List.mem p rs
  in
  let weight cond =
    float_of_int (List.length (List.filter interesting (Ast.config_reads cond)))
  in
  scored_impl ~view
    ~score:(fun v -> positional_score weight v.pending)
    ~mark:(fun ~invalidate:_ _ -> ())
    ()

let frontier ~view policy =
  let impl =
    match policy with
    | Dfs -> dfs_impl ()
    | Bfs -> bfs_impl ()
    | Random_path seed -> random_impl seed
    | Coverage_guided -> coverage_impl ~view ()
    | Config_impact { related } -> config_impact_impl ~view ~related ()
  in
  { policy; impl }

let add f ~preempted st = f.impl.i_add ~preempted st
let select f = f.impl.i_select ()
let length f = f.impl.i_length ()
let mark_covered f cond = f.impl.i_mark_covered cond
let frontier_name f = name f.policy
let dump f = f.impl.i_dump ()
let restore f d = f.impl.i_restore d
let drop_weakest f ~keep = f.impl.i_drop ~keep

(* Work-stealing entry point: remove the single lowest-priority state — the
   one the owner would pick last — so a thief disturbs the owner's search
   order as little as possible. *)
let steal f =
  match f.impl.i_length () with
  | 0 -> None
  | n -> begin
    match f.impl.i_drop ~keep:(n - 1) with
    | [ st ] -> Some st
    | [] -> None
    | st :: _ -> Some st (* i_drop over-dropped; only ever 1 by construction *)
  end
