type sample = { step : int; queue_depth : int }
type completion = { state_id : int; at_step : int; dropped : bool }

(* Query-size histogram buckets: a query with [n] constraints lands in the
   first bucket whose threshold is >= n; the final bucket catches the rest. *)
let hist_thresholds = [| 1; 2; 4; 8; 16; 32; 64 |]
let n_hist_buckets = Array.length hist_thresholds + 1

let hist_bucket n =
  let rec go i =
    if i >= Array.length hist_thresholds then i
    else if n <= hist_thresholds.(i) then i
    else go (i + 1)
  in
  go 0

type query_sizes = {
  pre_constraints : int;  (* conjuncts across all queries, before slicing *)
  pre_nodes : int;  (* expression tree nodes, before slicing *)
  sent_constraints : int;  (* conjuncts actually sent (after slicing) *)
  sent_nodes : int;
  sliced : int;  (* queries where slicing removed at least one conjunct *)
  hist_pre : int array;  (* constraints-per-query histogram, before slicing *)
  hist_sent : int array;  (* same, after slicing *)
}

type worker = {
  w_id : int;
  w_steps : int;
  w_forks : int;
  w_steals : int;
  w_solver_queries : int;
  w_cache_hits : int;
  w_solver_time_s : float;
}

(* Batched-feasibility accounting: one batch per executor aggregation event
   (a fork's true/false pair, a loop-exit probe), [saved] counts the queries
   in those batches answered without a solver round-trip. *)
type batch = { b_batches : int; b_queries : int; b_saved : int }

type t = {
  searcher : string;
  solver_cache_enabled : bool;
  states_created : int;
  states_completed : int;
  states_dropped : int;
  forks : int;
  steps : int;
  fork_rate : float;
  solver_queries : int;
  solver_solves : int;
  cache : Solver_cache.stats option;
  completions : completion list;
  queue_samples : sample list;
  wall_time_s : float;
  degradation : Vresilience.Degradation.event list;
  deadline_hit : bool;
  resumed : bool;
  jobs : int;
  workers : worker list;
  query_sizes : query_sizes;
  memo_sizes : (string * int) list;
  batch : batch option;
}

(* ------------------------------------------------------------------ *)

type recorder = {
  r_searcher : string;
  r_cache_enabled : bool;
  mutable r_resumed : bool;
  mutable r_steps : int;
  mutable r_forks : int;
  mutable r_completions : completion list;  (* newest first *)
  mutable r_samples : sample list;  (* newest first *)
  mutable r_last_sample_step : int;
  mutable r_degradation : Vresilience.Degradation.event list;  (* newest first *)
  mutable r_q_pre_constraints : int;
  mutable r_q_pre_nodes : int;
  mutable r_q_sent_constraints : int;
  mutable r_q_sent_nodes : int;
  mutable r_q_sliced : int;
  r_hist_pre : int array;
  r_hist_sent : int array;
}

let sample_every = 64

let recorder ~searcher ~solver_cache_enabled () =
  {
    r_searcher = searcher;
    r_cache_enabled = solver_cache_enabled;
    r_resumed = false;
    r_steps = 0;
    r_forks = 0;
    r_completions = [];
    r_samples = [];
    r_last_sample_step = -sample_every;  (* so the very first pick samples *)
    r_degradation = [];
    r_q_pre_constraints = 0;
    r_q_pre_nodes = 0;
    r_q_sent_constraints = 0;
    r_q_sent_nodes = 0;
    r_q_sliced = 0;
    r_hist_pre = Array.make n_hist_buckets 0;
    r_hist_sent = Array.make n_hist_buckets 0;
  }

let on_step r = r.r_steps <- r.r_steps + 1
let on_fork r = r.r_forks <- r.r_forks + 1
let on_degrade r ev = r.r_degradation <- ev :: r.r_degradation
let mark_resumed r = r.r_resumed <- true
let steps r = r.r_steps

let copy r =
  { r with r_hist_pre = Array.copy r.r_hist_pre; r_hist_sent = Array.copy r.r_hist_sent }

let on_query r ~pre_constraints ~pre_nodes ~sent_constraints ~sent_nodes =
  r.r_q_pre_constraints <- r.r_q_pre_constraints + pre_constraints;
  r.r_q_pre_nodes <- r.r_q_pre_nodes + pre_nodes;
  r.r_q_sent_constraints <- r.r_q_sent_constraints + sent_constraints;
  r.r_q_sent_nodes <- r.r_q_sent_nodes + sent_nodes;
  if sent_constraints < pre_constraints then r.r_q_sliced <- r.r_q_sliced + 1;
  let bp = hist_bucket pre_constraints and bs = hist_bucket sent_constraints in
  r.r_hist_pre.(bp) <- r.r_hist_pre.(bp) + 1;
  r.r_hist_sent.(bs) <- r.r_hist_sent.(bs) + 1

let on_pick r ~queue_depth =
  if r.r_steps - r.r_last_sample_step >= sample_every then begin
    r.r_samples <- { step = r.r_steps; queue_depth } :: r.r_samples;
    r.r_last_sample_step <- r.r_steps
  end

let on_complete r ~state_id ~dropped =
  r.r_completions <- { state_id; at_step = r.r_steps; dropped } :: r.r_completions

(* Fold a worker's recorder into the main one when a parallel run quiesces.
   Counters sum; event logs concatenate (the executor re-sorts completions
   into canonical order afterwards via {!set_completions}). *)
let merge ~into r =
  into.r_steps <- into.r_steps + r.r_steps;
  into.r_forks <- into.r_forks + r.r_forks;
  into.r_completions <- r.r_completions @ into.r_completions;
  into.r_samples <- r.r_samples @ into.r_samples;
  into.r_degradation <- r.r_degradation @ into.r_degradation;
  into.r_q_pre_constraints <- into.r_q_pre_constraints + r.r_q_pre_constraints;
  into.r_q_pre_nodes <- into.r_q_pre_nodes + r.r_q_pre_nodes;
  into.r_q_sent_constraints <- into.r_q_sent_constraints + r.r_q_sent_constraints;
  into.r_q_sent_nodes <- into.r_q_sent_nodes + r.r_q_sent_nodes;
  into.r_q_sliced <- into.r_q_sliced + r.r_q_sliced;
  Array.iteri (fun i v -> into.r_hist_pre.(i) <- into.r_hist_pre.(i) + v) r.r_hist_pre;
  Array.iteri (fun i v -> into.r_hist_sent.(i) <- into.r_hist_sent.(i) + v) r.r_hist_sent;
  if r.r_resumed then into.r_resumed <- true

let completions r = List.rev r.r_completions
let set_completions r cs = r.r_completions <- List.rev cs

let finish ?(deadline_hit = false) ?(jobs = 1) ?(workers = []) ?(memo_sizes = []) ?batch r
    ~states_created ~solver_queries ~solver_solves ~cache ~wall_time_s =
  let completions = List.rev r.r_completions in
  let dropped = List.length (List.filter (fun c -> c.dropped) completions) in
  {
    searcher = r.r_searcher;
    solver_cache_enabled = r.r_cache_enabled;
    states_created;
    states_completed = List.length completions - dropped;
    states_dropped = dropped;
    forks = r.r_forks;
    steps = r.r_steps;
    fork_rate = (if r.r_steps = 0 then 0. else float_of_int r.r_forks /. float_of_int r.r_steps);
    solver_queries;
    solver_solves;
    cache;
    completions;
    queue_samples = List.rev r.r_samples;
    wall_time_s;
    degradation = List.rev r.r_degradation;
    deadline_hit;
    resumed = r.r_resumed;
    jobs;
    workers;
    query_sizes =
      {
        pre_constraints = r.r_q_pre_constraints;
        pre_nodes = r.r_q_pre_nodes;
        sent_constraints = r.r_q_sent_constraints;
        sent_nodes = r.r_q_sent_nodes;
        sliced = r.r_q_sliced;
        hist_pre = Array.copy r.r_hist_pre;
        hist_sent = Array.copy r.r_hist_sent;
      };
    memo_sizes;
    batch;
  }

let first_completion t ~satisfying =
  List.find_opt (fun c -> satisfying c.state_id) t.completions

(* ------------------------------------------------------------------ *)
(* JSON, hand-rolled: flat records of numbers and one string field.    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let cache_to_json (c : Solver_cache.stats) =
  Printf.sprintf
    "{\"lookups\":%d,\"exact_hits\":%d,\"cex_hits\":%d,\"subsumption_hits\":%d,\"misses\":%d,\"stored_models\":%d,\"stored_cores\":%d,\"hit_rate\":%s,\"solver_constraints\":%d,\"solver_nodes\":%d,\"unknown_purged\":%d,\"coalesced\":%d}"
    c.Solver_cache.lookups c.Solver_cache.exact_hits c.Solver_cache.cex_hits
    c.Solver_cache.subsumption_hits c.Solver_cache.misses c.Solver_cache.stored_models
    c.Solver_cache.stored_cores
    (json_float (Solver_cache.hit_rate c))
    c.Solver_cache.solver_constraints c.Solver_cache.solver_nodes c.Solver_cache.unknown_purged
    c.Solver_cache.coalesced

let batch_to_json b =
  Printf.sprintf
    "{\"batches\":%d,\"queries\":%d,\"queries_per_batch\":%s,\"saved_round_trips\":%d}"
    b.b_batches b.b_queries
    (json_float
       (if b.b_batches = 0 then 0. else float_of_int b.b_queries /. float_of_int b.b_batches))
    b.b_saved

let hist_to_json h =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list h)) ^ "]"

let query_sizes_to_json q =
  Printf.sprintf
    "{\"pre_constraints\":%d,\"pre_nodes\":%d,\"sent_constraints\":%d,\"sent_nodes\":%d,\"sliced_queries\":%d,\"hist_thresholds\":%s,\"hist_pre\":%s,\"hist_sent\":%s}"
    q.pre_constraints q.pre_nodes q.sent_constraints q.sent_nodes q.sliced
    (hist_to_json hist_thresholds) (hist_to_json q.hist_pre) (hist_to_json q.hist_sent)

let memo_sizes_to_json ms =
  "{"
  ^ String.concat ","
      (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" (json_escape name) n) ms)
  ^ "}"

let degradation_to_json evs =
  evs
  |> List.map (fun (e : Vresilience.Degradation.event) ->
         Printf.sprintf "{\"rung\":\"%s\",\"at_step\":%d,\"pressure\":%s}"
           (Vresilience.Degradation.rung_to_string e.Vresilience.Degradation.rung)
           e.Vresilience.Degradation.at_step
           (json_float e.Vresilience.Degradation.pressure))
  |> String.concat ","

let worker_to_json w =
  Printf.sprintf
    "{\"id\":%d,\"steps\":%d,\"forks\":%d,\"steals\":%d,\"solver_queries\":%d,\"cache_hits\":%d,\"solver_time_s\":%s}"
    w.w_id w.w_steps w.w_forks w.w_steals w.w_solver_queries w.w_cache_hits
    (json_float w.w_solver_time_s)

let to_json t =
  let completions =
    t.completions
    |> List.map (fun c ->
           Printf.sprintf "{\"state_id\":%d,\"at_step\":%d,\"dropped\":%b}" c.state_id
             c.at_step c.dropped)
    |> String.concat ","
  in
  let samples =
    t.queue_samples
    |> List.map (fun s -> Printf.sprintf "{\"step\":%d,\"queue_depth\":%d}" s.step s.queue_depth)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"searcher\":\"%s\",\"solver_cache_enabled\":%b,\"states_created\":%d,\"states_completed\":%d,\"states_dropped\":%d,\"forks\":%d,\"steps\":%d,\"fork_rate\":%s,\"solver_queries\":%d,\"solver_solves\":%d,\"cache\":%s,\"completions\":[%s],\"queue_samples\":[%s],\"wall_time_s\":%s,\"degradation\":[%s],\"deadline_hit\":%b,\"resumed\":%b,\"jobs\":%d,\"workers\":[%s],\"query_sizes\":%s,\"memo_sizes\":%s,\"feas_batches\":%s}"
    (json_escape t.searcher) t.solver_cache_enabled t.states_created t.states_completed
    t.states_dropped t.forks t.steps (json_float t.fork_rate) t.solver_queries t.solver_solves
    (match t.cache with None -> "null" | Some c -> cache_to_json c)
    completions samples (json_float t.wall_time_s)
    (degradation_to_json t.degradation)
    t.deadline_hit t.resumed t.jobs
    (String.concat "," (List.map worker_to_json t.workers))
    (query_sizes_to_json t.query_sizes)
    (memo_sizes_to_json t.memo_sizes)
    (match t.batch with None -> "null" | Some b -> batch_to_json b)

let save ~path ts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i t ->
          if i > 0 then output_string oc ",\n";
          output_string oc (to_json t))
        ts;
      output_string oc "\n]\n")

(* ------------------------------------------------------------------ *)
(* Serving telemetry (vserve)                                          *)
(* ------------------------------------------------------------------ *)

(* power-of-two microsecond buckets: bucket i counts latencies <= 2^i us;
   27 buckets reach ~67 s, the last bucket is the overflow *)
let latency_buckets = 28

type latency_hist = {
  counts : int array;
  mutable observations : int;
  mutable sum_us : float;
  mutable max_us : float;
}

let latency_hist () =
  { counts = Array.make latency_buckets 0; observations = 0; sum_us = 0.; max_us = 0. }

let latency_bucket us =
  let rec go i = if i >= latency_buckets - 1 || us <= float_of_int (1 lsl i) then i else go (i + 1) in
  go 0

let observe_latency h ~us =
  let us = Float.max 0. us in
  let b = latency_bucket us in
  h.counts.(b) <- h.counts.(b) + 1;
  h.observations <- h.observations + 1;
  h.sum_us <- h.sum_us +. us;
  h.max_us <- Float.max h.max_us us

let latency_observations h = h.observations
let latency_mean_us h = if h.observations = 0 then 0. else h.sum_us /. float_of_int h.observations

let latency_percentile_us h q =
  if h.observations = 0 then 0.
  else begin
    let rank = Float.max 1. (Float.round (q *. float_of_int h.observations)) in
    let rec go i seen =
      if i >= latency_buckets then h.max_us
      else
        let seen = seen + h.counts.(i) in
        if float_of_int seen >= rank then
          if i = latency_buckets - 1 then h.max_us else float_of_int (1 lsl i)
        else go (i + 1) seen
    in
    go 0 0
  end

let merge_latency ~into h =
  Array.iteri (fun i v -> into.counts.(i) <- into.counts.(i) + v) h.counts;
  into.observations <- into.observations + h.observations;
  into.sum_us <- into.sum_us +. h.sum_us;
  into.max_us <- Float.max into.max_us h.max_us

(* fold in a histogram that arrived as serialized parts (a worker's stats
   JSON crossing the wire); the exact sum is reconstructed from the mean *)
let absorb_latency into ~counts ~mean_us ~max_us =
  List.iteri
    (fun i v -> if i < latency_buckets then into.counts.(i) <- into.counts.(i) + v)
    counts;
  let n = List.fold_left ( + ) 0 counts in
  into.observations <- into.observations + n;
  into.sum_us <- into.sum_us +. (mean_us *. float_of_int n);
  into.max_us <- Float.max into.max_us max_us

let latency_hist_to_json h =
  Printf.sprintf
    "{\"observations\":%d,\"mean_us\":%s,\"max_us\":%s,\"p50_us\":%s,\"p90_us\":%s,\"p99_us\":%s,\"bucket_counts\":%s}"
    h.observations
    (json_float (latency_mean_us h))
    (json_float h.max_us)
    (json_float (latency_percentile_us h 0.50))
    (json_float (latency_percentile_us h 0.90))
    (json_float (latency_percentile_us h 0.99))
    (hist_to_json h.counts)

type serve = {
  requests : int;
  by_verb : (string * int) list;
  shed_queue_full : int;
  shed_deadline : int;
  batches : int;
  batched_requests : int;
  coalesced : int;
  write_failed : int;
  model_reloads : int;
  model_load_failures : int;
  model_compiles : int;
  compile_wall_s : float;
  models : (string * int) list;
  latency : latency_hist;
}

let serve_to_json s =
  let counts kvs =
    "{"
    ^ String.concat ","
        (List.map (fun (k, n) -> Printf.sprintf "\"%s\":%d" (json_escape k) n) kvs)
    ^ "}"
  in
  Printf.sprintf
    "{\"requests\":%d,\"by_verb\":%s,\"shed_queue_full\":%d,\"shed_deadline\":%d,\"batches\":%d,\"batched_requests\":%d,\"coalesced\":%d,\"write_failed\":%d,\"model_reloads\":%d,\"model_load_failures\":%d,\"model_compiles\":%d,\"compile_wall_s\":%s,\"models\":%s,\"latency\":%s}"
    s.requests (counts s.by_verb) s.shed_queue_full s.shed_deadline s.batches
    s.batched_requests s.coalesced s.write_failed s.model_reloads s.model_load_failures
    s.model_compiles (json_float s.compile_wall_s)
    (counts s.models)
    (latency_hist_to_json s.latency)

(* ------------------------------------------------------------------ *)
(* Fleet telemetry (vfleet)                                            *)
(* ------------------------------------------------------------------ *)

type fleet_shard = {
  fs_id : int;
  fs_pid : int;
  fs_state : string;
  fs_restarts : int;
  fs_breaker_trips : int;
  fs_failures : int;
  fs_stats : string option;
}

type fleet = {
  f_shards : fleet_shard list;
  f_routed : int;
  f_retries : int;
  f_failovers : int;
  f_timeouts : int;
  f_stale_responses : int;
  f_fallback_degraded : int;
  f_shed : int;
  f_write_failed : int;
  f_reloads_staged : int;
  f_reloads_committed : int;
  f_latency : latency_hist;
}

let fleet_shard_to_json s =
  Printf.sprintf
    "{\"id\":%d,\"pid\":%d,\"state\":\"%s\",\"restarts\":%d,\"breaker_trips\":%d,\"failures\":%d,\"stats\":%s}"
    s.fs_id s.fs_pid (json_escape s.fs_state) s.fs_restarts s.fs_breaker_trips s.fs_failures
    (match s.fs_stats with None -> "null" | Some j -> j)

let fleet_to_json f =
  Printf.sprintf
    "{\"shards\":[%s],\"routed\":%d,\"retries\":%d,\"failovers\":%d,\"timeouts\":%d,\"stale_responses\":%d,\"fallback_degraded\":%d,\"shed\":%d,\"write_failed\":%d,\"reloads_staged\":%d,\"reloads_committed\":%d,\"latency\":%s}"
    (String.concat "," (List.map fleet_shard_to_json f.f_shards))
    f.f_routed f.f_retries f.f_failovers f.f_timeouts f.f_stale_responses
    f.f_fallback_degraded f.f_shed f.f_write_failed f.f_reloads_staged f.f_reloads_committed
    (latency_hist_to_json f.f_latency)

let pp ppf t =
  Fmt.pf ppf
    "searcher=%s states=%d (%d completed, %d dropped) forks=%d steps=%d fork_rate=%.4f solver=%d/%d%a%a%s%s"
    t.searcher t.states_created t.states_completed t.states_dropped t.forks t.steps t.fork_rate
    t.solver_solves t.solver_queries
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf " cache[%a]" Solver_cache.pp_stats c)
    t.cache
    (fun ppf -> function
      | [] -> ()
      | evs ->
        Fmt.pf ppf " degraded[%s]"
          (String.concat " -> "
             (List.map
                (fun (e : Vresilience.Degradation.event) ->
                  Vresilience.Degradation.rung_to_string e.Vresilience.Degradation.rung)
                evs)))
    t.degradation
    (if t.deadline_hit then " DEADLINE" else "")
    (if t.resumed then " resumed" else "");
  if t.query_sizes.pre_constraints > 0 then
    Fmt.pf ppf " slice[constraints=%d/%d nodes=%d/%d sliced_queries=%d]"
      t.query_sizes.sent_constraints t.query_sizes.pre_constraints t.query_sizes.sent_nodes
      t.query_sizes.pre_nodes t.query_sizes.sliced;
  if t.memo_sizes <> [] then
    Fmt.pf ppf " memo[%s]"
      (String.concat " " (List.map (fun (n, s) -> Printf.sprintf "%s=%d" n s) t.memo_sizes));
  (match t.batch with
  | Some b when b.b_batches > 0 ->
    Fmt.pf ppf " batch[batches=%d queries/batch=%.2f saved=%d]" b.b_batches
      (float_of_int b.b_queries /. float_of_int b.b_batches)
      b.b_saved
  | _ -> ());
  if t.jobs > 1 then begin
    Fmt.pf ppf " jobs=%d" t.jobs;
    List.iter
      (fun w ->
        Fmt.pf ppf " w%d[steps=%d steals=%d cache_hits=%d solver=%.3fs]" w.w_id w.w_steps
          w.w_steals w.w_cache_hits w.w_solver_time_s)
      t.workers
  end
