type sample = { step : int; queue_depth : int }
type completion = { state_id : int; at_step : int; dropped : bool }

type worker = {
  w_id : int;
  w_steps : int;
  w_forks : int;
  w_steals : int;
  w_solver_queries : int;
  w_cache_hits : int;
  w_solver_time_s : float;
}

type t = {
  searcher : string;
  solver_cache_enabled : bool;
  states_created : int;
  states_completed : int;
  states_dropped : int;
  forks : int;
  steps : int;
  fork_rate : float;
  solver_queries : int;
  solver_solves : int;
  cache : Solver_cache.stats option;
  completions : completion list;
  queue_samples : sample list;
  wall_time_s : float;
  degradation : Vresilience.Degradation.event list;
  deadline_hit : bool;
  resumed : bool;
  jobs : int;
  workers : worker list;
}

(* ------------------------------------------------------------------ *)

type recorder = {
  r_searcher : string;
  r_cache_enabled : bool;
  mutable r_resumed : bool;
  mutable r_steps : int;
  mutable r_forks : int;
  mutable r_completions : completion list;  (* newest first *)
  mutable r_samples : sample list;  (* newest first *)
  mutable r_last_sample_step : int;
  mutable r_degradation : Vresilience.Degradation.event list;  (* newest first *)
}

let sample_every = 64

let recorder ~searcher ~solver_cache_enabled () =
  {
    r_searcher = searcher;
    r_cache_enabled = solver_cache_enabled;
    r_resumed = false;
    r_steps = 0;
    r_forks = 0;
    r_completions = [];
    r_samples = [];
    r_last_sample_step = -sample_every;  (* so the very first pick samples *)
    r_degradation = [];
  }

let on_step r = r.r_steps <- r.r_steps + 1
let on_fork r = r.r_forks <- r.r_forks + 1
let on_degrade r ev = r.r_degradation <- ev :: r.r_degradation
let mark_resumed r = r.r_resumed <- true
let steps r = r.r_steps
let copy r = { r with r_steps = r.r_steps }

let on_pick r ~queue_depth =
  if r.r_steps - r.r_last_sample_step >= sample_every then begin
    r.r_samples <- { step = r.r_steps; queue_depth } :: r.r_samples;
    r.r_last_sample_step <- r.r_steps
  end

let on_complete r ~state_id ~dropped =
  r.r_completions <- { state_id; at_step = r.r_steps; dropped } :: r.r_completions

(* Fold a worker's recorder into the main one when a parallel run quiesces.
   Counters sum; event logs concatenate (the executor re-sorts completions
   into canonical order afterwards via {!set_completions}). *)
let merge ~into r =
  into.r_steps <- into.r_steps + r.r_steps;
  into.r_forks <- into.r_forks + r.r_forks;
  into.r_completions <- r.r_completions @ into.r_completions;
  into.r_samples <- r.r_samples @ into.r_samples;
  into.r_degradation <- r.r_degradation @ into.r_degradation;
  if r.r_resumed then into.r_resumed <- true

let completions r = List.rev r.r_completions
let set_completions r cs = r.r_completions <- List.rev cs

let finish ?(deadline_hit = false) ?(jobs = 1) ?(workers = []) r ~states_created
    ~solver_queries ~solver_solves ~cache ~wall_time_s =
  let completions = List.rev r.r_completions in
  let dropped = List.length (List.filter (fun c -> c.dropped) completions) in
  {
    searcher = r.r_searcher;
    solver_cache_enabled = r.r_cache_enabled;
    states_created;
    states_completed = List.length completions - dropped;
    states_dropped = dropped;
    forks = r.r_forks;
    steps = r.r_steps;
    fork_rate = (if r.r_steps = 0 then 0. else float_of_int r.r_forks /. float_of_int r.r_steps);
    solver_queries;
    solver_solves;
    cache;
    completions;
    queue_samples = List.rev r.r_samples;
    wall_time_s;
    degradation = List.rev r.r_degradation;
    deadline_hit;
    resumed = r.r_resumed;
    jobs;
    workers;
  }

let first_completion t ~satisfying =
  List.find_opt (fun c -> satisfying c.state_id) t.completions

(* ------------------------------------------------------------------ *)
(* JSON, hand-rolled: flat records of numbers and one string field.    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let cache_to_json (c : Solver_cache.stats) =
  Printf.sprintf
    "{\"lookups\":%d,\"exact_hits\":%d,\"cex_hits\":%d,\"subsumption_hits\":%d,\"misses\":%d,\"stored_models\":%d,\"stored_cores\":%d,\"hit_rate\":%s}"
    c.Solver_cache.lookups c.Solver_cache.exact_hits c.Solver_cache.cex_hits
    c.Solver_cache.subsumption_hits c.Solver_cache.misses c.Solver_cache.stored_models
    c.Solver_cache.stored_cores
    (json_float (Solver_cache.hit_rate c))

let degradation_to_json evs =
  evs
  |> List.map (fun (e : Vresilience.Degradation.event) ->
         Printf.sprintf "{\"rung\":\"%s\",\"at_step\":%d,\"pressure\":%s}"
           (Vresilience.Degradation.rung_to_string e.Vresilience.Degradation.rung)
           e.Vresilience.Degradation.at_step
           (json_float e.Vresilience.Degradation.pressure))
  |> String.concat ","

let worker_to_json w =
  Printf.sprintf
    "{\"id\":%d,\"steps\":%d,\"forks\":%d,\"steals\":%d,\"solver_queries\":%d,\"cache_hits\":%d,\"solver_time_s\":%s}"
    w.w_id w.w_steps w.w_forks w.w_steals w.w_solver_queries w.w_cache_hits
    (json_float w.w_solver_time_s)

let to_json t =
  let completions =
    t.completions
    |> List.map (fun c ->
           Printf.sprintf "{\"state_id\":%d,\"at_step\":%d,\"dropped\":%b}" c.state_id
             c.at_step c.dropped)
    |> String.concat ","
  in
  let samples =
    t.queue_samples
    |> List.map (fun s -> Printf.sprintf "{\"step\":%d,\"queue_depth\":%d}" s.step s.queue_depth)
    |> String.concat ","
  in
  Printf.sprintf
    "{\"searcher\":\"%s\",\"solver_cache_enabled\":%b,\"states_created\":%d,\"states_completed\":%d,\"states_dropped\":%d,\"forks\":%d,\"steps\":%d,\"fork_rate\":%s,\"solver_queries\":%d,\"solver_solves\":%d,\"cache\":%s,\"completions\":[%s],\"queue_samples\":[%s],\"wall_time_s\":%s,\"degradation\":[%s],\"deadline_hit\":%b,\"resumed\":%b,\"jobs\":%d,\"workers\":[%s]}"
    (json_escape t.searcher) t.solver_cache_enabled t.states_created t.states_completed
    t.states_dropped t.forks t.steps (json_float t.fork_rate) t.solver_queries t.solver_solves
    (match t.cache with None -> "null" | Some c -> cache_to_json c)
    completions samples (json_float t.wall_time_s)
    (degradation_to_json t.degradation)
    t.deadline_hit t.resumed t.jobs
    (String.concat "," (List.map worker_to_json t.workers))

let save ~path ts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i t ->
          if i > 0 then output_string oc ",\n";
          output_string oc (to_json t))
        ts;
      output_string oc "\n]\n")

let pp ppf t =
  Fmt.pf ppf
    "searcher=%s states=%d (%d completed, %d dropped) forks=%d steps=%d fork_rate=%.4f solver=%d/%d%a%a%s%s"
    t.searcher t.states_created t.states_completed t.states_dropped t.forks t.steps t.fork_rate
    t.solver_solves t.solver_queries
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf " cache[%a]" Solver_cache.pp_stats c)
    t.cache
    (fun ppf -> function
      | [] -> ()
      | evs ->
        Fmt.pf ppf " degraded[%s]"
          (String.concat " -> "
             (List.map
                (fun (e : Vresilience.Degradation.event) ->
                  Vresilience.Degradation.rung_to_string e.Vresilience.Degradation.rung)
                evs)))
    t.degradation
    (if t.deadline_hit then " DEADLINE" else "")
    (if t.resumed then " resumed" else "");
  if t.jobs > 1 then begin
    Fmt.pf ppf " jobs=%d" t.jobs;
    List.iter
      (fun w ->
        Fmt.pf ppf " w%d[steps=%d steals=%d cache_hits=%d solver=%.3fs]" w.w_id w.w_steps
          w.w_steals w.w_cache_hits w.w_solver_time_s)
      t.workers
  end
