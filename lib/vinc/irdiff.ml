module Ast = Vir.Ast

type t = {
  unchanged : string list;
  modified : string list;
  added : string list;
  removed : string list;
}

(* ------------------------------------------------------------------ *)
(* Address-free canonical rendering                                    *)
(* ------------------------------------------------------------------ *)

(* [Vir.Pretty] deliberately prints the synthetic addresses (the tracer
   demos rely on them), so content keys use their own renderer.  The
   rendering is an unambiguous S-expression: every construct is wrapped
   and tagged, so no two distinct bodies collide by concatenation. *)

let binop_tag (b : Vsmt.Expr.binop) =
  match b with
  | Vsmt.Expr.Add -> "add"
  | Vsmt.Expr.Sub -> "sub"
  | Vsmt.Expr.Mul -> "mul"
  | Vsmt.Expr.Div -> "div"
  | Vsmt.Expr.Mod -> "mod"
  | Vsmt.Expr.Eq -> "eq"
  | Vsmt.Expr.Ne -> "ne"
  | Vsmt.Expr.Lt -> "lt"
  | Vsmt.Expr.Le -> "le"
  | Vsmt.Expr.Gt -> "gt"
  | Vsmt.Expr.Ge -> "ge"
  | Vsmt.Expr.And -> "and"
  | Vsmt.Expr.Or -> "or"

let rec render_expr buf (e : Ast.expr) =
  match e with
  | Ast.Const v -> Buffer.add_string buf (Printf.sprintf "(c %d)" v)
  | Ast.Config n -> Buffer.add_string buf (Printf.sprintf "(cfg %s)" n)
  | Ast.Workload n -> Buffer.add_string buf (Printf.sprintf "(wl %s)" n)
  | Ast.Local n -> Buffer.add_string buf (Printf.sprintf "(l %s)" n)
  | Ast.Global n -> Buffer.add_string buf (Printf.sprintf "(g %s)" n)
  | Ast.Not a ->
    Buffer.add_string buf "(not ";
    render_expr buf a;
    Buffer.add_char buf ')'
  | Ast.Neg a ->
    Buffer.add_string buf "(neg ";
    render_expr buf a;
    Buffer.add_char buf ')'
  | Ast.Binop (op, a, b) ->
    Buffer.add_string buf (Printf.sprintf "(%s " (binop_tag op));
    render_expr buf a;
    Buffer.add_char buf ' ';
    render_expr buf b;
    Buffer.add_char buf ')'
  | Ast.Ite (c, a, b) ->
    Buffer.add_string buf "(ite ";
    render_expr buf c;
    Buffer.add_char buf ' ';
    render_expr buf a;
    Buffer.add_char buf ' ';
    render_expr buf b;
    Buffer.add_char buf ')'

let render_lvalue buf = function
  | Ast.Lv_local n -> Buffer.add_string buf (Printf.sprintf "(l %s)" n)
  | Ast.Lv_global n -> Buffer.add_string buf (Printf.sprintf "(g %s)" n)

let rec render_stmt buf (s : Ast.stmt) =
  match s with
  | Ast.Assign (lv, e) ->
    Buffer.add_string buf "(:= ";
    render_lvalue buf lv;
    Buffer.add_char buf ' ';
    render_expr buf e;
    Buffer.add_char buf ')'
  | Ast.If (c, a, b) ->
    Buffer.add_string buf "(if ";
    render_expr buf c;
    render_block buf a;
    render_block buf b;
    Buffer.add_char buf ')'
  | Ast.While (c, body) ->
    Buffer.add_string buf "(while ";
    render_expr buf c;
    render_block buf body;
    Buffer.add_char buf ')'
  | Ast.Call { dest; fn; args; ret_addr = _ } ->
    (* ret_addr is the synthetic builder-assigned site address: excluded *)
    Buffer.add_string buf
      (Printf.sprintf "(call %s %s" (match dest with Some d -> d | None -> "_") fn);
    List.iter
      (fun a ->
        Buffer.add_char buf ' ';
        render_expr buf a)
      args;
    Buffer.add_char buf ')'
  | Ast.Return None -> Buffer.add_string buf "(ret)"
  | Ast.Return (Some e) ->
    Buffer.add_string buf "(ret ";
    render_expr buf e;
    Buffer.add_char buf ')'
  | Ast.Prim (p, args) ->
    Buffer.add_string buf (Printf.sprintf "(prim %s" (Ast.prim_name p));
    List.iter
      (fun a ->
        Buffer.add_char buf ' ';
        render_expr buf a)
      args;
    Buffer.add_char buf ')'
  | Ast.Thread tid -> Buffer.add_string buf (Printf.sprintf "(thread %d)" tid)
  | Ast.Trace_on -> Buffer.add_string buf "(trace-on)"
  | Ast.Trace_off -> Buffer.add_string buf "(trace-off)"

and render_block buf (b : Ast.block) =
  Buffer.add_string buf " (";
  List.iter (render_stmt buf) b;
  Buffer.add_char buf ')'

(* Library semantics are closures: probe them on a fixed input grid instead
   of comparing structure.  The grid covers arities 0–3 with values that
   distinguish the arithmetic a generated system's libraries use; a
   semantics change invisible on the whole grid is treated as no change. *)
let probe_inputs =
  [ []; [ 0 ]; [ 1 ]; [ -1 ]; [ 7 ]; [ 13 ]; [ 0; 0 ]; [ 1; 1 ]; [ 3; 5 ]; [ 256; 4096 ]; [ 13; 7; 2 ] ]

let render_fkind buf = function
  | Ast.Defined body -> render_block buf body
  | Ast.Library { effect; semantics; cost } ->
    let eff =
      match effect with Ast.Pure -> "pure" | Ast.Benign -> "benign" | Ast.Effectful -> "effectful"
    in
    Buffer.add_string buf (Printf.sprintf " (lib %s (" eff);
    List.iter
      (fun (p, m) -> Buffer.add_string buf (Printf.sprintf "(%s %d)" (Ast.prim_name p) m))
      cost;
    Buffer.add_string buf ") (";
    List.iter
      (fun args ->
        match semantics args with
        | v -> Buffer.add_string buf (Printf.sprintf "%d;" v)
        | exception _ -> Buffer.add_string buf "!;")
      probe_inputs;
    Buffer.add_string buf "))"

let func_key (f : Ast.func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "(func %s (%s)" f.Ast.fname (String.concat " " f.Ast.params));
  render_fkind buf f.Ast.kind;
  Buffer.add_char buf ')';
  Digest.to_hex (Digest.string (Buffer.contents buf))

let program_keys (p : Ast.program) =
  List.map (fun f -> f.Ast.fname, func_key f) p.Ast.funcs
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let diff ~old_keys (new_program : Ast.program) =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (name, key) -> Hashtbl.replace old_tbl name key) old_keys;
  let new_keys = program_keys new_program in
  let unchanged = ref [] and modified = ref [] and added = ref [] in
  List.iter
    (fun (name, key) ->
      match Hashtbl.find_opt old_tbl name with
      | None -> added := name :: !added
      | Some old_key ->
        if String.equal old_key key then unchanged := name :: !unchanged
        else modified := name :: !modified)
    new_keys;
  let new_names = List.map fst new_keys in
  let removed =
    List.filter_map
      (fun (name, _) -> if List.mem name new_names then None else Some name)
      old_keys
  in
  {
    unchanged = List.sort String.compare !unchanged;
    modified = List.sort String.compare !modified;
    added = List.sort String.compare !added;
    removed = List.sort String.compare removed;
  }

let diff_programs ~old_program new_program =
  diff ~old_keys:(program_keys old_program) new_program

let dirty_functions t = List.sort String.compare (t.modified @ t.added)

let dirty_symbols t (p : Ast.program) =
  let dirty = dirty_functions t in
  let acc = Hashtbl.create 16 in
  let add_reads e =
    List.iter (fun n -> Hashtbl.replace acc n ()) (Ast.config_reads e);
    List.iter (fun n -> Hashtbl.replace acc n ()) (Ast.workload_reads e)
  in
  List.iter
    (fun (f : Ast.func) ->
      if List.mem f.Ast.fname dirty then
        Ast.iter_stmts
          (fun (s : Ast.stmt) ->
            match s with
            | Ast.Assign (_, e) | Ast.While (e, _) | Ast.If (e, _, _) -> add_reads e
            | Ast.Return (Some e) -> add_reads e
            | Ast.Call { args; _ } | Ast.Prim (_, args) -> List.iter add_reads args
            | Ast.Return None | Ast.Thread _ | Ast.Trace_on | Ast.Trace_off -> ())
          (Ast.func_body f))
    p.Ast.funcs;
  Hashtbl.fold (fun n () l -> n :: l) acc [] |> List.sort String.compare
