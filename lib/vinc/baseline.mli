(** Persisted whole-system analysis baselines.

    A baseline directory holds one registry-format impact model per
    analyzed parameter ([<param>.vmodel], written with
    {!Violet.Pipeline.export_model}) plus a checksummed manifest
    ([manifest.vinc], a {!Vresilience.Checkpoint} envelope) recording
    everything incremental re-analysis needs that the models themselves
    do not carry:

    - the {e content keys} of every function of the analyzed program
      version ({!Irdiff.program_keys}), so a new version can be diffed
      without the old program;
    - per slice: the related-parameter set actually made symbolic, the
      digest of the serialized model, the {e dynamic function coverage}
      ({!Vsymexec.Executor.result.visited_functions} — serialized models
      drop call chains, and completed-row chains would miss paths that
      entered a function and then died infeasible);
    - an analysis-options fingerprint (a baseline analyzed under
      different options is not a valid splice donor);
    - a checksummed provenance record: whether this baseline was built
      from scratch or spliced, and from what. *)

type slice_origin =
  | Fresh_slice  (** produced by a full [Pipeline.analyze] run *)
  | Carried  (** copied verbatim from the parent baseline *)

type slice = {
  sl_param : string;
  sl_related : string list;  (** related parameters made symbolic, sorted *)
  sl_digest : string;  (** md5 hex of the serialized impact model *)
  sl_visited : string list;  (** dynamic function coverage, sorted *)
  sl_origin : slice_origin;
}

type provenance =
  | Scratch
  | Spliced of {
      parent : string;  (** {!digest} of the donor baseline *)
      reused : int;  (** slices carried over verbatim *)
      reexplored : int;  (** slices re-explored against the new version *)
    }

type t = {
  mf_system : string;
  mf_entry : string;  (** entry function name; a changed entry invalidates all *)
  mf_program_keys : (string * string) list;  (** (fname, content key), sorted *)
  mf_options_fp : string;
  mf_provenance : provenance;
  mf_slices : slice list;  (** sorted by [sl_param] *)
}

val manifest_kind : string
val manifest_version : int

val options_fingerprint : Violet.Pipeline.options -> string
(** Digest of every option that can change analysis output (threshold,
    symbolic-set policy, budget caps, searcher, overrides, ...).  [jobs]
    is excluded — the deterministic reduction makes models
    jobs-independent — but [fast_nondet] is included, since it trades
    that guarantee away. *)

val digest : t -> string
(** Checksum of the baseline's content (program keys + slice digests +
    options fingerprint): the provenance link a spliced child records,
    and the identity under which two baselines are interchangeable. *)

val manifest_file : dir:string -> string
val model_file : dir:string -> param:string -> string

val ensure_dir : string -> unit
(** [mkdir -p] (atomic envelope writes need the directory to exist). *)

val slice_of_analysis :
  origin:slice_origin -> string -> Violet.Pipeline.analysis -> slice
(** Manifest slice for one completed analysis (related set and coverage
    sorted, model digested). *)

val model_digest : Vmodel.Impact_model.t -> string
(** md5 hex of the model's serialized form with [analysis_wall_s] zeroed
    (real wall-clock time is the one field two equal analyses do not
    reproduce) — the identity [sl_digest] records and upgrade checking
    short-circuits on. *)

val save : dir:string -> t -> (unit, string) result
(** Write [manifest.vinc] (atomic, checksummed; the directory is created
    if missing).  Model files are written separately by the caller. *)

val load : dir:string -> (t, string) result
(** Read and verify the manifest; truncation, bit flips and version skew
    come back as [Error], never an exception. *)

val load_model : dir:string -> param:string -> (Vmodel.Impact_model.t * string, string) result
(** Load one slice's model and the md5 digest of its serialized payload
    (for verification against [sl_digest]). *)

val build :
  ?opts:Violet.Pipeline.options ->
  ?params:string list ->
  dir:string ->
  Violet.Pipeline.target ->
  (t * (string * Violet.Pipeline.analysis) list, string) result
(** Build a from-scratch baseline: analyze every parameter ([?params]
    defaults to {!Violet.Pipeline.analyzable_params}), export each model
    into [dir], and save a [Scratch] manifest.  Returns the manifest and
    the per-parameter analyses (for callers that also want wall-clock or
    row data).  Fails on the first parameter whose analysis fails. *)
