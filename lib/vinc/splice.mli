(** Incremental re-analysis: diff → invalidate → re-explore → splice.

    Given a {!Baseline} of a prior program version and the new version,
    {!run} re-explores only the {e invalidated} slices (the per-parameter
    impact models whose recorded dynamic coverage intersects changed
    functions) and carries every other slice over verbatim, producing a
    new baseline whose models are byte-identical to a from-scratch
    analysis of the new version — distinguishable from one only by its
    [Spliced] provenance record.

    Invalidation is sound because entry {e into} a changed function is
    decided by call sites in unchanged callers: an analysis whose
    exploration never entered a dirty function explores the new version
    identically, so its model (and every verdict derived from it) cannot
    change.  When that argument does not apply — missing coverage, a
    changed entry function, an options-fingerprint mismatch, a changed
    related-parameter set, a model file failing its digest — the slice
    (or the whole baseline) conservatively re-explores. *)

type report = {
  sp_diff : Irdiff.t;
  sp_dirty_functions : string list;
  sp_dirty_symbols : string list;
      (** config/workload names read by dirty functions — passed to the
          persistent solver cache as its invalidation set *)
  sp_conservative : string option;
      (** [Some reason] when the whole baseline was invalidated (system,
          entry or options mismatch) and every slice re-explored *)
  sp_reused : string list;  (** parameters carried over verbatim *)
  sp_reexplored : (string * string) list;
      (** parameters re-analyzed, with the reason ("coverage touches
          changed code", "no baseline slice", "related-parameter set
          changed", a conservative whole-baseline reason, ...) *)
  sp_models : (string * Vmodel.Impact_model.t) list;
      (** every slice of the new baseline, sorted by parameter *)
  sp_baseline : Baseline.t;  (** the new manifest (already saved to [out]) *)
}

val reuse_fraction : report -> float
(** [reused / (reused + reexplored)]; [0.] on an empty baseline. *)

val run :
  ?opts:Violet.Pipeline.options ->
  baseline:string ->
  out:string ->
  Violet.Pipeline.target ->
  (report, string) result
(** Splice [target] (the {e new} program version) against the baseline in
    directory [baseline], writing the resulting models and manifest into
    [out] (which may equal [baseline]; every write is atomic).  The
    analysis options must match the baseline's fingerprint for any slice
    to be reused.  Re-explored slices pass the dirty symbol set to
    {!Violet.Pipeline.options.cache_dirty}, so a persistent solver cache
    primes only entries untouched by the diff. *)

val check_upgrade :
  old_dir:string -> new_dir:string -> ((string * Vchecker.Checker.report) list, string) result
(** Mode-3a upgrade check between two baselines, per parameter present in
    both manifests.  Slices whose model digests match short-circuit
    without touching their model files ({!Vchecker.Checker.check_upgrade}
    digest fast path) — on a small diff that is almost every slice. *)
