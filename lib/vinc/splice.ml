module P = Violet.Pipeline
module M = Vmodel.Impact_model

type report = {
  sp_diff : Irdiff.t;
  sp_dirty_functions : string list;
  sp_dirty_symbols : string list;
  sp_conservative : string option;
  sp_reused : string list;
  sp_reexplored : (string * string) list;
  sp_models : (string * M.t) list;
  sp_baseline : Baseline.t;
}

let reuse_fraction r =
  let reused = List.length r.sp_reused and redone = List.length r.sp_reexplored in
  if reused + redone = 0 then 0. else float_of_int reused /. float_of_int (reused + redone)

(* The symbolic set [Pipeline.analyze] would choose for this parameter
   under these options, as the sorted related list the model records.  A
   carried slice must have the same set: static analysis runs over the
   whole program, so a diff can change a slice's symbolic companions even
   when exploration never enters the changed code. *)
let expected_related (target : P.target) (opts : P.options) param =
  if opts.P.all_symbolic then
    List.filter
      (fun n -> n <> param)
      (List.sort_uniq String.compare (param :: P.analyzable_params target))
  else if opts.P.include_related then begin
    let rel = (P.related_params target param).Vanalysis.Related_config.related in
    let hooked = List.filter (P.hookable target) rel in
    let truncated = List.filteri (fun i _ -> i < opts.P.max_related) hooked in
    List.sort String.compare (List.filter (fun n -> n <> param) truncated)
  end
  else []

type decision =
  | Reuse of Baseline.slice * M.t  (* verified model, carried verbatim *)
  | Reexplore of string  (* reason *)

let classify ~baseline_dir (manifest : Baseline.t) target opts ~dirty_functions param =
  match List.find_opt (fun s -> s.Baseline.sl_param = param) manifest.Baseline.mf_slices with
  | None -> Reexplore "no baseline slice"
  | Some slice ->
    if slice.Baseline.sl_visited = [] then Reexplore "no recorded coverage"
    else if List.exists (fun f -> List.mem f dirty_functions) slice.Baseline.sl_visited then
      Reexplore "coverage touches changed code"
    else if expected_related target opts param <> slice.Baseline.sl_related then
      Reexplore "related-parameter set changed"
    else begin
      match Baseline.load_model ~dir:baseline_dir ~param with
      | Error _ -> Reexplore "baseline model unreadable"
      | Ok (model, digest) ->
        if String.equal digest slice.Baseline.sl_digest then Reuse (slice, model)
        else Reexplore "baseline model digest mismatch"
    end

let run ?(opts = P.default_options) ~baseline ~out (target : P.target) =
  match Baseline.load ~dir:baseline with
  | Error e -> Error (Printf.sprintf "baseline %s: %s" baseline e)
  | Ok manifest ->
    let diff = Irdiff.diff ~old_keys:manifest.Baseline.mf_program_keys target.P.program in
    let dirty_functions = Irdiff.dirty_functions diff in
    let dirty_symbols = Irdiff.dirty_symbols diff target.P.program in
    let conservative =
      if manifest.Baseline.mf_system <> target.P.name then Some "different system"
      else if manifest.Baseline.mf_entry <> target.P.program.Vir.Ast.entry then
        Some "entry function changed"
      else if manifest.Baseline.mf_options_fp <> Baseline.options_fingerprint opts then
        Some "analysis options changed"
      else None
    in
    let params = P.analyzable_params target in
    let decisions =
      List.map
        (fun param ->
          match conservative with
          | Some reason -> param, Reexplore reason
          | None ->
            ( param,
              classify ~baseline_dir:baseline manifest target opts ~dirty_functions param ))
        params
    in
    (* re-explored slices load their persistent cache minus the entries the
       diff invalidates *)
    let reexplore_opts = { opts with P.cache_dirty = dirty_symbols @ opts.P.cache_dirty } in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (param, Reuse (slice, model)) :: rest -> go ((param, `Reused (slice, model)) :: acc) rest
      | (param, Reexplore reason) :: rest -> begin
        match P.analyze ~opts:reexplore_opts target param with
        | Error e -> Error (Printf.sprintf "%s: %s" param (P.error_to_string e))
        | Ok a -> go ((param, `Fresh (reason, a)) :: acc) rest
      end
    in
    (match go [] decisions with
    | Error e -> Error e
    | Ok outcomes ->
      Baseline.ensure_dir out;
      (* write every model of the new baseline; carried models re-export to
         byte-identical files (the envelope is deterministic in the payload) *)
      let rec export = function
        | [] -> Ok ()
        | (param, model) :: rest -> begin
          match P.export_model model (Baseline.model_file ~dir:out ~param) with
          | Error e -> Error (Printf.sprintf "export %s: %s" param e)
          | Ok () -> export rest
        end
      in
      let models =
        List.map
          (fun (param, o) ->
            param, match o with `Reused (_, m) -> m | `Fresh (_, a) -> a.P.model)
          outcomes
      in
      (match export models with
      | Error e -> Error e
      | Ok () ->
        let slices =
          List.sort
            (fun a b -> String.compare a.Baseline.sl_param b.Baseline.sl_param)
            (List.map
               (fun (param, o) ->
                 match o with
                 | `Reused (slice, _) -> { slice with Baseline.sl_origin = Baseline.Carried }
                 | `Fresh (_, a) ->
                   Baseline.slice_of_analysis ~origin:Baseline.Fresh_slice param a)
               outcomes)
        in
        let reused =
          List.filter_map (fun (p, o) -> match o with `Reused _ -> Some p | _ -> None) outcomes
        in
        let reexplored =
          List.filter_map
            (fun (p, o) -> match o with `Fresh (reason, _) -> Some (p, reason) | _ -> None)
            outcomes
        in
        let new_manifest =
          {
            Baseline.mf_system = target.P.name;
            mf_entry = target.P.program.Vir.Ast.entry;
            mf_program_keys = Irdiff.program_keys target.P.program;
            mf_options_fp = Baseline.options_fingerprint opts;
            mf_provenance =
              Baseline.Spliced
                {
                  parent = Baseline.digest manifest;
                  reused = List.length reused;
                  reexplored = List.length reexplored;
                };
            mf_slices = slices;
          }
        in
        (match Baseline.save ~dir:out new_manifest with
        | Error e -> Error e
        | Ok () ->
          Ok
            {
              sp_diff = diff;
              sp_dirty_functions = dirty_functions;
              sp_dirty_symbols = dirty_symbols;
              sp_conservative = conservative;
              sp_reused = reused;
              sp_reexplored = reexplored;
              sp_models = List.sort (fun (a, _) (b, _) -> String.compare a b) models;
              sp_baseline = new_manifest;
            })))

(* ------------------------------------------------------------------ *)
(* Upgrade checking between baselines                                  *)
(* ------------------------------------------------------------------ *)

let check_upgrade ~old_dir ~new_dir =
  match Baseline.load ~dir:old_dir, Baseline.load ~dir:new_dir with
  | Error e, _ -> Error (Printf.sprintf "old baseline: %s" e)
  | _, Error e -> Error (Printf.sprintf "new baseline: %s" e)
  | Ok old_mf, Ok new_mf ->
    let old_slice p =
      List.find_opt (fun s -> s.Baseline.sl_param = p) old_mf.Baseline.mf_slices
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (ns : Baseline.slice) :: rest -> begin
        match old_slice ns.Baseline.sl_param with
        | None -> go acc rest (* parameter new in this version: nothing to compare *)
        | Some os when String.equal os.Baseline.sl_digest ns.Baseline.sl_digest ->
          (* identical models: no findings possible, skip the file loads *)
          go
            ((ns.Baseline.sl_param, { Vchecker.Checker.findings = []; checked_in_s = 0. })
            :: acc)
            rest
        | Some os -> begin
          match
            ( Baseline.load_model ~dir:old_dir ~param:os.Baseline.sl_param,
              Baseline.load_model ~dir:new_dir ~param:ns.Baseline.sl_param )
          with
          | Error e, _ | _, Error e -> Error e
          | Ok (old_model, od), Ok (new_model, nd) ->
            let r =
              Vchecker.Checker.check_upgrade ~old_digest:od ~new_digest:nd ~old_model
                ~new_model ()
            in
            go ((ns.Baseline.sl_param, r) :: acc) rest
        end
      end
    in
    go [] new_mf.Baseline.mf_slices
