(** Structural differ over {!Vir.Ast} programs.

    Classifies every function of a new program version as unchanged,
    modified, added or removed relative to an old version, by comparing
    {e content keys}: digests of an address-free canonical rendering of
    each function.  Builder-assigned synthetic addresses (function start
    addresses, call-site return addresses) are excluded on purpose — they
    shift wholesale when any earlier function grows, and a function whose
    code did not change must keep its key.

    Keys are the unit of persistence: a baseline manifest stores
    [(fname, key)] pairs, so diffing a new version against a baseline
    needs no old program in memory. *)

type t = {
  unchanged : string list;
  modified : string list;  (** same name, different content key *)
  added : string list;  (** in the new version only *)
  removed : string list;  (** in the old version only *)
}
(** All four lists are sorted by function name.  A removed function needs
    no transitive treatment of its own: any surviving caller necessarily
    lost its call statement and therefore classifies as modified. *)

val func_key : Vir.Ast.func -> string
(** Content key (md5 hex) of one function: name, parameters and the
    canonical rendering of its body — statements, expressions, operator
    structure — with every synthetic address zeroed out.  Library
    functions render their effect class, cost vector and the semantics
    function's outputs on a fixed probe grid (closures cannot be compared
    structurally). *)

val program_keys : Vir.Ast.program -> (string * string) list
(** [(fname, content key)] for every function, sorted by name — the form
    a baseline manifest persists. *)

val diff : old_keys:(string * string) list -> Vir.Ast.program -> t
(** Classify the new program's functions against a persisted key list. *)

val diff_programs : old_program:Vir.Ast.program -> Vir.Ast.program -> t
(** Convenience: [diff ~old_keys:(program_keys old_program)]. *)

val dirty_functions : t -> string list
(** [modified @ added], sorted: the functions whose bodies the old
    analysis cannot have accounted for.  A slice is invalidated iff its
    recorded dynamic coverage intersects this set (entry {e into} changed
    code is decided by call sites in unchanged callers, so an analysis
    that never entered a dirty function explores identically under the
    new version). *)

val dirty_symbols : t -> Vir.Ast.program -> string list
(** Configuration and workload parameter names read anywhere inside the
    new program's dirty functions, sorted — the symbol set used to
    invalidate persisted solver-cache entries whose footprints touch
    changed code ({!Vsched.Solver_cache.filter_dump}). *)
