module P = Violet.Pipeline
module B = Vresilience.Budget
module Checkpoint = Vresilience.Checkpoint

type slice_origin = Fresh_slice | Carried

type slice = {
  sl_param : string;
  sl_related : string list;
  sl_digest : string;
  sl_visited : string list;
  sl_origin : slice_origin;
}

type provenance = Scratch | Spliced of { parent : string; reused : int; reexplored : int }

type t = {
  mf_system : string;
  mf_entry : string;
  mf_program_keys : (string * string) list;
  mf_options_fp : string;
  mf_provenance : provenance;
  mf_slices : slice list;
}

let manifest_kind = "vinc-manifest"
let manifest_version = 1

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

(* Every option that can change analysis output, rendered by hand —
   [P.options] holds closures (the budget clock, chaos streams), so
   [Marshal] is not available.  [jobs] is excluded (the deterministic
   reduction makes models jobs-independent); [fast_nondet] is included
   because it trades that guarantee away; [solver_cache]/[slice]/
   [cache_dir] are excluded (documented byte-transparent); checkpointing
   fields are excluded (resume reproduces the uninterrupted model). *)
let options_fingerprint (o : P.options) =
  let pair (n, v) = Printf.sprintf "%s=%d" n v in
  let fields =
    [
      Printf.sprintf "threshold=%g" o.P.threshold;
      Printf.sprintf "deadline=%s"
        (match o.P.budget.B.deadline_s with None -> "-" | Some d -> Printf.sprintf "%g" d);
      Printf.sprintf "max_states=%d" o.P.budget.B.max_states;
      Printf.sprintf "fuel=%d" o.P.budget.B.fuel;
      Printf.sprintf "solver_max_nodes=%d" o.P.budget.B.solver_max_nodes;
      Printf.sprintf "env=%s" o.P.env.Vruntime.Hw_env.name;
      Printf.sprintf "template=%s"
        (match o.P.workload_template with None -> "-" | Some t -> t);
      Printf.sprintf "sym_workload=%s" (String.concat "," o.P.sym_workload_params);
      Printf.sprintf "wl_overrides=%s"
        (String.concat "," (List.map pair o.P.workload_overrides));
      Printf.sprintf "cfg_overrides=%s"
        (String.concat "," (List.map pair o.P.config_overrides));
      Printf.sprintf "include_related=%b" o.P.include_related;
      Printf.sprintf "all_symbolic=%b" o.P.all_symbolic;
      Printf.sprintf "max_related=%d" o.P.max_related;
      Printf.sprintf "policy=%s" (Vsched.Searcher.to_string o.P.policy);
      Printf.sprintf "state_switching=%b" o.P.state_switching;
      Printf.sprintf "noise=%s"
        (match o.P.noise with
        | None -> "-"
        | Some n ->
          Printf.sprintf "%g/%g/%g/%d" n.Vsymexec.Executor.jitter
            n.Vsymexec.Executor.signal_delay_prob n.Vsymexec.Executor.signal_delay_us
            n.Vsymexec.Executor.seed);
      Printf.sprintf "relaxation=%b" o.P.relaxation_rules;
      Printf.sprintf "fault_injection=%b" o.P.fault_injection;
      Printf.sprintf "startup=%g" o.P.startup_virtual_s;
      Printf.sprintf "chaos=%b" (o.P.chaos <> None);
      Printf.sprintf "fast_nondet=%b" o.P.fast_nondet;
    ]
  in
  Digest.to_hex (Digest.string (String.concat ";" fields))

let digest t =
  let keys = List.map (fun (n, k) -> n ^ ":" ^ k) t.mf_program_keys in
  let slices = List.map (fun s -> s.sl_param ^ ":" ^ s.sl_digest) t.mf_slices in
  Digest.to_hex
    (Digest.string
       (String.concat "|" ((t.mf_system :: t.mf_entry :: t.mf_options_fp :: keys) @ slices)))

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '_')
    s

let manifest_file ~dir = Filename.concat dir "manifest.vinc"
let model_file ~dir ~param = Filename.concat dir (sanitize param ^ ".vmodel")

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* The marshalled manifest rides the checkpoint envelope, so truncation and
   bit flips are caught by the digest before [Marshal.from_string] runs. *)
let save ~dir t =
  ensure_dir dir;
  Result.map_error Checkpoint.error_to_string
    (Checkpoint.write ~path:(manifest_file ~dir) ~kind:manifest_kind ~version:manifest_version
       (Marshal.to_string t []))

let load ~dir =
  match
    Checkpoint.read ~path:(manifest_file ~dir) ~kind:manifest_kind ~version:manifest_version
  with
  | Error e -> Error (Checkpoint.error_to_string e)
  | Ok payload -> (
    match (Marshal.from_string payload 0 : t) with
    | t -> Ok t
    | exception _ -> Error "manifest payload does not unmarshal")

(* [analysis_wall_s] is real wall-clock time: the one field of a model two
   equal analyses do not reproduce.  Digest the model with it zeroed, so
   "same digest" means "same analysis content" — the identity the splice
   verifies on carried models and upgrade checking short-circuits on. *)
let model_digest model =
  Digest.to_hex
    (Digest.string
       (Vmodel.Impact_model.to_string
          { model with Vmodel.Impact_model.analysis_wall_s = 0. }))

let load_model ~dir ~param =
  let path = model_file ~dir ~param in
  match P.import_model path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok model -> Ok (model, model_digest model)

(* ------------------------------------------------------------------ *)
(* From-scratch construction                                           *)
(* ------------------------------------------------------------------ *)

let slice_of_analysis ~origin param (a : P.analysis) =
  {
    sl_param = param;
    sl_related = List.sort String.compare a.P.model.Vmodel.Impact_model.related;
    sl_digest = model_digest a.P.model;
    sl_visited = a.P.result.Vsymexec.Executor.visited_functions;
    sl_origin = origin;
  }

let build ?(opts = P.default_options) ?params ~dir (target : P.target) =
  ensure_dir dir;
  let params = match params with Some ps -> ps | None -> P.analyzable_params target in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | param :: rest -> begin
      match P.analyze ~opts target param with
      | Error e -> Error (P.error_to_string e)
      | Ok a -> begin
        match P.export_model a.P.model (model_file ~dir ~param) with
        | Error e -> Error (Printf.sprintf "export %s: %s" param e)
        | Ok () -> go ((param, a) :: acc) rest
      end
    end
  in
  match go [] params with
  | Error e -> Error e
  | Ok analyses ->
    let slices =
      List.sort
        (fun a b -> String.compare a.sl_param b.sl_param)
        (List.map (fun (p, a) -> slice_of_analysis ~origin:Fresh_slice p a) analyses)
    in
    let t =
      {
        mf_system = target.P.name;
        mf_entry = target.P.program.Vir.Ast.entry;
        mf_program_keys = Irdiff.program_keys target.P.program;
        mf_options_fp = options_fingerprint opts;
        mf_provenance = Scratch;
        mf_slices = slices;
      }
    in
    (match save ~dir t with Error e -> Error e | Ok () -> Ok (t, analyses))
