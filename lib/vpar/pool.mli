(** Domain-based worker pool.

    A pool is a fixed team of [jobs] workers: worker 0 is the calling domain,
    workers 1..jobs-1 are spawned domains.  The pool makes no scheduling
    decisions of its own — callers provide a [worker] body (for free-form
    work-stealing loops, as in the parallel executor) or use {!map_array}
    (self-dispatching data parallelism, as in the pairwise diff stage).

    Determinism contract: the pool never reorders results.  [map_array] writes
    each result at its input's index, and [run] hands every worker its own
    stable index, so any run-order nondeterminism is confined to what the
    worker bodies do with shared state. *)

val default_jobs : unit -> int
(** Worker count when the caller does not specify one: [VIOLET_JOBS] if set
    to a positive integer, else 1 (parallelism is opt-in). *)

val default_fast_nondet : unit -> bool
(** Default for the executor's fast-nondet mode when the caller does not
    specify one: true iff [VIOLET_FAST_NONDET] is set to anything other
    than [""], ["0"] or ["false"]. *)

val clamp_jobs : int -> int
(** Clamp a requested job count to [1 .. 64].  Oversubscription past the
    machine's core count is deliberately allowed: results are
    job-count-independent, so [--jobs 4] on a single-core machine still
    exercises real worker interleavings (how the determinism tests run in
    constrained CI), it just cannot be faster. *)

val spawned_domains : unit -> bool
(** True once any pool has spawned a domain in this process.  OCaml 5
    forbids [Unix.fork] after the first [Domain.spawn] (the runtime goes
    multicore and stays there), so fork-based code checks this first. *)

val run : jobs:int -> (int -> unit) -> unit
(** [run ~jobs body] executes [body w] for each worker index [w] in
    [0..jobs-1], worker 0 on the calling domain and the rest on spawned
    domains, then joins them all.  If any body raises, the first exception
    (by worker index) is re-raised after every domain has been joined — no
    domain is leaked. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f xs] is [Array.map f xs] computed by [jobs] workers
    pulling indices from a shared counter.  Output order matches input
    order regardless of which worker computed which element.  [f] must be
    safe to call concurrently.  With [jobs = 1] (or on arrays of fewer than
    2 elements) no domain is spawned. *)
