(* Oversubscription past the core count is allowed on purpose: results are
   job-count-independent, so running `--jobs 4` on a single-core machine is
   how the determinism tests exercise real worker interleavings anywhere.
   The absolute bound only guards against absurd spawn requests. *)
let max_jobs = 64
let clamp_jobs n = max 1 (min n max_jobs)

let default_jobs () =
  match Sys.getenv_opt "VIOLET_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> clamp_jobs n
    | Some _ | None -> 1)

let default_fast_nondet () =
  match Sys.getenv_opt "VIOLET_FAST_NONDET" with
  | None -> false
  | Some s -> ( match String.trim s with "" | "0" | "false" -> false | _ -> true)

(* sticky: OCaml 5 puts the runtime in multicore mode on the first
   Domain.spawn and [Unix.fork] is forbidden from then on; fork-based code
   (the kill -9 checkpoint test) consults this to bail out cleanly *)
let spawned = Atomic.make false
let spawned_domains () = Atomic.get spawned

let run ~jobs body =
  let jobs = clamp_jobs jobs in
  if jobs = 1 then body 0
  else begin
    Atomic.set spawned true;
    let errors = Array.make jobs None in
    let guarded w () =
      try body w with e -> errors.(w) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let spawned = Array.init (jobs - 1) (fun i -> Domain.spawn (guarded (i + 1))) in
    guarded 0 ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let map_array ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if clamp_jobs jobs = 1 || n < 2 then Array.map f xs
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    run ~jobs:(min jobs n) (fun _ ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            out.(i) <- Some (f xs.(i));
            loop ()
          end
        in
        loop ());
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* every index was claimed by some worker *))
      out
  end
