(* Resilience experiment (DESIGN.md Section 5d): what do the robustness
   features cost, and what does a degraded model still know?

   1. checkpoint overhead: wall-clock cost of periodic frontier snapshots
      as a percentage of an uncheckpointed run;
   2. resume fidelity: a run continued from its last mid-run checkpoint
      must produce a byte-identical impact model;
   3. degradation fidelity: cut the same analysis off at decreasing
      fractions of its natural clock-sample count and report what each
      deadline leaves of the model (states, cost-table rows, dropped
      paths, rungs entered, and whether c1 is still detected). *)

module P = Violet.Pipeline
module B = Vresilience.Budget
module M = Vmodel.Impact_model
module Ex = Vsymexec.Executor

let target = Targets.Mysql_model.target
let param = "autocommit"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

(* wall time pinned to zero so two runs can be compared byte-for-byte *)
let frozen = B.with_clock B.default (fun () -> 0.)

(* pressure ramps linearly from 0 to 1 across [expire_at] clock samples, so
   the degradation ladder gets to walk its rungs before the deadline lands *)
let ramp_clock ~deadline ~expire_at =
  let n = ref 0 in
  fun () ->
    incr n;
    deadline *. float_of_int !n /. float_of_int expire_at

let checkpoint_overhead () =
  Fmt.pr "@.1. checkpoint overhead (mysql/%s):@." param;
  let median_wall opts =
    let walls =
      List.init 3 (fun _ -> snd (timed (fun () -> P.analyze_exn ~opts target param)))
    in
    List.nth (List.sort compare walls) 1
  in
  let base = median_wall P.default_options in
  let path = Filename.temp_file "violet_resilience" ".ckpt" in
  let rows =
    List.map
      (fun every ->
        let wall =
          median_wall
            { P.default_options with P.checkpoint = Some { P.path; every_picks = every } }
        in
        [
          Printf.sprintf "every %d picks" every;
          Util.f2 wall;
          Printf.sprintf "%+.1f%%" (100. *. (wall -. base) /. base);
        ])
      [ 64; 16; 4; 1 ]
  in
  if Sys.file_exists path then Sys.remove path;
  Util.print_table
    ~header:[ "checkpointing"; "wall s"; "overhead" ]
    ([ "none (baseline)"; Util.f2 base; "-" ] :: rows)

let resume_fidelity () =
  Fmt.pr "@.2. resume fidelity (mysql/%s):@." param;
  let path = Filename.temp_file "violet_resilience" ".ckpt" in
  Sys.remove path;
  let opts ~resume =
    {
      P.default_options with
      P.budget = frozen;
      checkpoint = Some { P.path; every_picks = 4 };
      resume;
    }
  in
  let full = P.analyze_exn ~opts:(opts ~resume:false) target param in
  let resumed = P.analyze_exn ~opts:(opts ~resume:true) target param in
  Util.record_sched resumed.P.result.Ex.sched;
  Util.note "resumed model byte-identical: %s"
    (Util.yes_no (M.to_string full.P.model = M.to_string resumed.P.model));
  if Sys.file_exists path then Sys.remove path

let degradation_fidelity () =
  Fmt.pr "@.3. model fidelity under deadline degradation (mysql/%s):@." param;
  let case = Targets.Cases.find_known "c1" in
  (* calibrate: how many clock samples does the full analysis take?  The
     calibration budget needs a (never-firing) deadline — without one the
     engine skips the clock on every deadline check and the count collapses
     to a handful of reads *)
  let reads = ref 0 in
  let counting =
    B.with_clock
      (B.with_deadline B.default (Some 1e12))
      (fun () ->
        incr reads;
        0.)
  in
  ignore (P.analyze_exn ~opts:{ P.default_options with P.budget = counting } target param);
  let total = !reads in
  let row frac =
    let budget =
      if frac >= 1. then frozen
      else
        B.with_clock
          (B.with_deadline B.default (Some 60.))
          (ramp_clock ~deadline:60.
             ~expire_at:(max 10 (int_of_float (float_of_int total *. frac))))
    in
    let a = P.analyze_exn ~opts:{ P.default_options with P.budget } target param in
    Util.record_sched a.P.result.Ex.sched;
    let detected =
      Violet.Detect.detected target.P.registry a ~poor:case.Targets.Cases.poor_setting
    in
    let dropped, rungs =
      match a.P.model.M.degradation with
      | None -> 0, "-"
      | Some d ->
        ( List.length d.M.dropped_paths,
          if d.M.rungs = [] then "-" else String.concat "+" d.M.rungs )
    in
    [
      (if frac >= 1. then "no deadline" else Printf.sprintf "cut at %.0f%%" (frac *. 100.));
      Util.i0 a.P.model.M.explored_states;
      Util.i0 (List.length a.P.rows);
      Util.i0 dropped;
      rungs;
      Util.yes_no (M.is_degraded a.P.model);
      Util.yes_no detected;
    ]
  in
  Util.print_table
    ~header:[ "budget"; "states"; "rows"; "dropped"; "rungs"; "degraded"; "c1 detected" ]
    (List.map row [ 1.0; 0.75; 0.5; 0.25 ])

let run () =
  Util.section "Resilience: checkpoint overhead, resume and degradation fidelity";
  checkpoint_overhead ();
  resume_fidelity ();
  degradation_fidelity ()
