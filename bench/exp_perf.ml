(* Section 7.9: performance of the toolchain — trace-analyzer and checker
   times, plus Bechamel micro-benchmarks of the hot components. *)

open Bechamel
open Toolkit

let checker_inputs () =
  List.filter_map
    (fun case_id ->
      let c = Targets.Cases.find_known case_id in
      let target = Targets.Cases.target_of c.Targets.Cases.system in
      let a = Util.analyze_case c in
      let text =
        String.concat "\n"
          (List.map (fun (k, v) -> k ^ " = " ^ v) c.Targets.Cases.poor_setting)
      in
      Some (c, target, a, Vchecker.Config_file.parse text))
    [ "c1"; "c3"; "c5"; "c7"; "c12"; "c16" ]

let wall_measurements () =
  let inputs = checker_inputs () in
  let checker_times =
    List.filter_map
      (fun ((_ : Targets.Cases.known_case), target, a, file) ->
        match
          Vchecker.Checker.check_current ~model:a.Violet.Pipeline.model
            ~registry:target.Violet.Pipeline.registry ~file ()
        with
        | Ok report -> Some report.Vchecker.Checker.checked_in_s
        | Error _ -> None)
      inputs
  in
  let analyzer_times =
    List.map
      (fun (_, _, (a : Violet.Pipeline.analysis), _) ->
        let t0 = Unix.gettimeofday () in
        ignore (Vmodel.Diff_analysis.analyze ~threshold:1.0 a.Violet.Pipeline.rows);
        Unix.gettimeofday () -. t0)
      inputs
  in
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  Util.note "average checker time: %.4f s over %d models (paper: 15.7 s on 471 full-size models)"
    (avg checker_times) (List.length checker_times);
  Util.note "average trace-analyzer time: %.4f s (paper log-analyzer: 68 s)"
    (avg analyzer_times)

let micro_benchmarks () =
  let c1 = Util.analyze_case (Targets.Cases.find_known "c1") in
  let rows = c1.Violet.Pipeline.rows in
  let signals =
    match c1.Violet.Pipeline.result.Vsymexec.Executor.states with
    | st :: _ -> Vsymexec.Sym_state.signals_in_order st
    | [] -> []
  in
  let target = Targets.Mysql_model.target in
  let registry = target.Violet.Pipeline.registry in
  let file =
    Vchecker.Config_file.parse "autocommit = ON\ninnodb_flush_log_at_trx_commit = 1"
  in
  let constraints =
    let open Vsmt.Expr in
    let ac = var "autocommit" Vsmt.Dom.bool in
    let flush = var "flush" (Vsmt.Dom.int_range 0 2) in
    let buf = var "buf" (Vsmt.Dom.int_range 1024 67108864) in
    [ ac ==. const 1; flush <>. const 0; buf >. const 4096; buf <. const 1048576 ]
  in
  let tests =
    [
      Test.make ~name:"solver.check"
        (Staged.stage (fun () -> ignore (Vsmt.Solver.check constraints)));
      Test.make ~name:"record_match"
        (Staged.stage (fun () -> ignore (Vtrace.Record_match.match_records signals)));
      Test.make ~name:"trace_analyzer"
        (Staged.stage (fun () ->
             ignore (Vmodel.Diff_analysis.analyze ~threshold:1.0 rows)));
      Test.make ~name:"checker.mode2"
        (Staged.stage (fun () ->
             ignore
               (Vchecker.Checker.check_current ~model:c1.Violet.Pipeline.model ~registry
                  ~file ())));
      Test.make ~name:"pipeline.autocommit"
        (Staged.stage (fun () ->
             ignore (Violet.Pipeline.analyze_exn target "autocommit")));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results =
          Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
        in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name result acc ->
            let ns =
              match Analyze.OLS.estimates result with
              | Some (x :: _) -> x
              | Some [] | None -> nan
            in
            [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ] :: acc)
          analyzed [])
      tests
    |> List.concat
  in
  Util.print_table ~header:[ "component"; "time per run" ] rows

let run () =
  Util.section "Section 7.9: toolchain performance";
  wall_measurements ();
  Fmt.pr "@.Bechamel micro-benchmarks:@.";
  micro_benchmarks ()
