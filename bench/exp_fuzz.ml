(* vfuzz: score the pipeline against generated systems with planted ground
   truth, and hold the determinism promises to the differential oracle.

   Three measurements over one seeded corpus (--seed/--count, default
   42/200):

   - recall/precision of specious-parameter detection against the plants
     (every plant should be detected, no decoy flagged);
   - differential agreement: jobs 1/4 x slice on/off must produce
     byte-identical impact models, and serving the exported model through a
     live vserve daemon must reproduce the in-process checker's findings
     byte-for-byte, on every generated system.  Any failure is shrunk to a
     minimal reproducer in fuzz-failures/;
   - shrinker calibration: minimize one corpus member under an artificial
     "still contains an expensive primitive" predicate, pinning the greedy
     loop's convergence on a known-shrinkable input.

   Emits BENCH_fuzz.json with the gate booleans CI greps. *)

let rec node_has_expensive = function
  | Vfuzz.Genspec.S_op
      (Vfuzz.Genspec.O_fsync | Vfuzz.Genspec.O_dns_lookup | Vfuzz.Genspec.O_pwrite _) ->
    true
  | Vfuzz.Genspec.S_op _ | Vfuzz.Genspec.S_call _ | Vfuzz.Genspec.S_cfg_read _ -> false
  | Vfuzz.Genspec.S_if (_, t, e) ->
    List.exists node_has_expensive t || List.exists node_has_expensive e
  | Vfuzz.Genspec.S_loop (_, b) | Vfuzz.Genspec.S_unreachable b ->
    List.exists node_has_expensive b

let has_expensive (s : Vfuzz.Genspec.t) =
  List.exists
    (fun (f : Vfuzz.Genspec.fspec) -> List.exists node_has_expensive f.Vfuzz.Genspec.f_body)
    s.Vfuzz.Genspec.g_funcs

let shrink_json name (o : Vfuzz.Shrink.outcome) =
  Printf.sprintf "{\"system\":%S,\"from_size\":%d,\"to_size\":%d,\"steps\":%d,\"checks\":%d}"
    name o.Vfuzz.Shrink.sh_from_size o.Vfuzz.Shrink.sh_to_size o.Vfuzz.Shrink.sh_steps
    o.Vfuzz.Shrink.sh_checks

let run () =
  Util.section "vfuzz: plants, decoys and the differential oracle";
  let seed = !Util.fuzz_seed and count = !Util.fuzz_count in
  Util.note "corpus: seed %d, %d systems" seed count;
  let specs = Vfuzz.Generate.corpus ~seed ~count () in
  let mutated =
    List.length
      (List.filter (fun (s : Vfuzz.Genspec.t) -> s.Vfuzz.Genspec.g_trail <> []) specs)
  in

  (* recall / precision against planted ground truth *)
  let t0 = Unix.gettimeofday () in
  let _, score = Vfuzz.Harness.run specs in
  let harness_s = Unix.gettimeofday () -. t0 in

  (* differential oracle, daemon leg included *)
  let t0 = Unix.gettimeofday () in
  let reports = List.map (fun s -> (s, Vfuzz.Oracle.check s)) specs in
  let oracle_s = Unix.gettimeofday () -. t0 in
  let failures = List.filter (fun (_, r) -> not (Vfuzz.Oracle.agreed r)) reports in
  let combos = List.fold_left (fun n (_, r) -> n + r.Vfuzz.Oracle.r_combos) 0 reports in
  let daemon_checks =
    List.fold_left (fun n (_, r) -> n + r.Vfuzz.Oracle.r_daemon_checks) 0 reports
  in
  let inc_checks =
    List.fold_left (fun n (_, r) -> n + r.Vfuzz.Oracle.r_inc_checks) 0 reports
  in
  let shrunk =
    List.map
      (fun ((spec : Vfuzz.Genspec.t), _) ->
        let still_fails s = not (Vfuzz.Oracle.agreed (Vfuzz.Oracle.check s)) in
        let o = Vfuzz.Shrink.shrink ~still_fails spec in
        if not (Sys.file_exists "fuzz-failures") then Unix.mkdir "fuzz-failures" 0o755;
        let path = Filename.concat "fuzz-failures" (spec.Vfuzz.Genspec.g_name ^ ".vfz") in
        Vfuzz.Genspec.save o.Vfuzz.Shrink.sh_spec path;
        Util.note "DISAGREEMENT %s: reproducer %s" spec.Vfuzz.Genspec.g_name path;
        (spec.Vfuzz.Genspec.g_name, o))
      failures
  in

  (* shrinker calibration on a known-shrinkable predicate *)
  let calib_spec = List.hd specs in
  let calibration = Vfuzz.Shrink.shrink ~still_fails:has_expensive calib_spec in

  let agreement_rate =
    if reports = [] then 1.0
    else
      float_of_int (List.length reports - List.length failures)
      /. float_of_int (List.length reports)
  in
  let recall_ok = score.Vfuzz.Harness.s_recall >= 0.9 in
  let precision_ok = score.Vfuzz.Harness.s_precision >= 0.9 in
  let differential_ok = failures = [] in

  Util.print_table
    ~header:[ "metric"; "value" ]
    [
      [ "systems"; Util.i0 score.Vfuzz.Harness.s_systems ];
      [ "mutated"; Util.i0 mutated ];
      [ "plants"; Util.i0 score.Vfuzz.Harness.s_plants ];
      [ "detected"; Util.i0 score.Vfuzz.Harness.s_detected ];
      [ "decoys"; Util.i0 score.Vfuzz.Harness.s_decoys ];
      [ "wrongly flagged"; Util.i0 score.Vfuzz.Harness.s_flagged ];
      [ "recall"; Util.f2 score.Vfuzz.Harness.s_recall ];
      [ "precision"; Util.f2 score.Vfuzz.Harness.s_precision ];
      [ "model combos compared"; Util.i0 combos ];
      [ "daemon-vs-in-process checks"; Util.i0 daemon_checks ];
      [ "spliced-vs-scratch upgrade checks"; Util.i0 inc_checks ];
      [ "differential agreement"; Util.f2 agreement_rate ];
      [ "harness wall"; Util.f1 harness_s ^ " s" ];
      [ "oracle wall"; Util.f1 oracle_s ^ " s" ];
      [
        "shrink calibration";
        Printf.sprintf "%d -> %d nodes in %d steps"
          calibration.Vfuzz.Shrink.sh_from_size calibration.Vfuzz.Shrink.sh_to_size
          calibration.Vfuzz.Shrink.sh_steps;
      ];
    ];
  Util.note "recall >= 0.9: %s; precision >= 0.9: %s; differential agreement: %s"
    (Util.yes_no recall_ok) (Util.yes_no precision_ok) (Util.yes_no differential_ok);

  let json =
    Printf.sprintf
      "{\"experiment\":\"fuzz\",\"seed\":%d,\"count\":%d,\"corpus_size\":%d,\"mutated\":%d,\"plants\":%d,\"detected\":%d,\"decoys\":%d,\"flagged\":%d,\"recall\":%.4f,\"precision\":%.4f,\"combos_compared\":%d,\"daemon_checks\":%d,\"inc_checks\":%d,\"disagreements\":%d,\"agreement_rate\":%.4f,\"harness_wall_s\":%.2f,\"oracle_wall_s\":%.2f,\"recall_ok\":%b,\"precision_ok\":%b,\"differential_ok\":%b,\"shrink_calibration\":%s,\"shrunk_failures\":[%s]}"
      seed count (List.length specs) mutated score.Vfuzz.Harness.s_plants
      score.Vfuzz.Harness.s_detected score.Vfuzz.Harness.s_decoys
      score.Vfuzz.Harness.s_flagged score.Vfuzz.Harness.s_recall
      score.Vfuzz.Harness.s_precision combos daemon_checks inc_checks
      (List.length failures)
      agreement_rate harness_s oracle_s recall_ok precision_ok differential_ok
      (shrink_json (List.hd specs).Vfuzz.Genspec.g_name calibration)
      (String.concat "," (List.map (fun (n, o) -> shrink_json n o) shrunk))
  in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_fuzz.json"
