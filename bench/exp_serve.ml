(* The serving layer under load (DESIGN.md Section 5g): an in-process daemon
   on a Unix socket, concurrent client domains, three phases:

   - batching A/B: the same concurrent load with request batching on and
     off.  Identical requests coalesce inside a batch, so the batched p99
     must not exceed the unbatched p99 — recorded as "batch_p99_ok":true,
     the nightly CI gate;
   - saturation: a tiny admission queue under many clients; the shed counter
     must be non-zero ("shed_nonzero":true, also gated);
   - overload degradation: a microscopic per-request deadline, so queue wait
     pushes every request past the shed pressure and the daemon answers with
     the conservative widening instead of erroring.

   Results go to BENCH_serve.json. *)

module M = Vmodel.Impact_model
module P = Vserve.Protocol
module Server = Vserve.Server
module Client = Vserve.Client
module Reg = Vserve.Registry

let or_die = function
  | Ok v -> v
  | Error e ->
    Fmt.epr "bench serve: %s@." e;
    exit 1

let mk_tmpdir () =
  let path = Filename.temp_file "vserve_bench" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let percentile xs q =
  match xs with
  | [] -> 0.
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let idx = int_of_float (Float.ceil (q *. float_of_int n) -. 1.) in
    a.(max 0 (min (n - 1) idx))

type phase = {
  ph_label : string;
  ph_requests : int;  (** responses received (reports + sheds) *)
  ph_reports : int;
  ph_shed : int;  (** [overloaded] responses *)
  ph_degraded : int;  (** reports served degraded-only *)
  ph_wall_s : float;
  ph_req_per_s : float;
  ph_p50_us : float;
  ph_p99_us : float;
  ph_batches : int;  (** from server stats *)
  ph_coalesced : int;
}

let resolve_registry (m : M.t) =
  Option.map
    (fun t -> t.Violet.Pipeline.registry)
    (Targets.Cases.find_target m.M.system)

let rec await_model c =
  match or_die (Client.call c P.Health) with
  | P.Health_info { models = _ :: _; _ } -> ()
  | _ ->
    Unix.sleepf 0.02;
    await_model c

let stat_int w name =
  match Option.bind (Vserve.Wire.member name w) Vserve.Wire.to_int with
  | Some n -> n
  | None -> 0

let drive ~label ~models_dir ~batching ~max_queue ~deadline ~clients ~per_client =
  let sock = Filename.temp_file "vserve_bench" ".sock" in
  Sys.remove sock;
  let opts =
    {
      (Server.default_options ~addr:(`Unix sock) ~models_dir) with
      Server.resolve_registry;
      batching;
      max_queue;
      request_deadline_s = deadline;
      refresh_every_s = 0.05;
      jobs = 2;
    }
  in
  let srv = Domain.spawn (fun () -> Server.run opts) in
  let control = or_die (Client.connect_retry (`Unix sock)) in
  await_model control;
  let req = P.Check_current { key = "mysql-autocommit"; config = "" } in
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let c = or_die (Client.connect (`Unix sock)) in
            let lat = ref [] and reports = ref 0 and shed = ref 0 and degraded = ref 0 in
            for _ = 1 to per_client do
              let t = Unix.gettimeofday () in
              match Client.call c req with
              | Ok (P.Report o) ->
                incr reports;
                if o.P.degraded then incr degraded;
                lat := (Unix.gettimeofday () -. t) *. 1e6 :: !lat
              | Ok (P.Error_resp { code = P.Overloaded; _ }) -> incr shed
              | Ok _ | Error _ -> ()
            done;
            Client.close c;
            (!lat, !reports, !shed, !degraded)))
  in
  let results = List.map Domain.join workers in
  let wall = Unix.gettimeofday () -. t0 in
  let lats = List.concat_map (fun (l, _, _, _) -> l) results in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let reports = sum (fun (_, r, _, _) -> r) in
  let shed = sum (fun (_, _, s, _) -> s) in
  let degraded = sum (fun (_, _, _, d) -> d) in
  let batches, coalesced =
    match or_die (Client.call control P.Stats) with
    | P.Stats_info w -> (stat_int w "batches", stat_int w "coalesced")
    | _ -> (0, 0)
  in
  ignore (Client.call control P.Shutdown);
  Client.close control;
  (match Domain.join srv with
  | Ok () -> ()
  | Error e -> Fmt.epr "bench serve: server exited with %s@." e);
  let answered = reports + shed in
  {
    ph_label = label;
    ph_requests = answered;
    ph_reports = reports;
    ph_shed = shed;
    ph_degraded = degraded;
    ph_wall_s = wall;
    ph_req_per_s = (if wall > 0. then float_of_int answered /. wall else 0.);
    ph_p50_us = percentile lats 0.50;
    ph_p99_us = percentile lats 0.99;
    ph_batches = batches;
    ph_coalesced = coalesced;
  }

let phase_json p =
  Printf.sprintf
    "{\"requests\":%d,\"reports\":%d,\"shed\":%d,\"degraded\":%d,\"wall_s\":%.4f,\"req_per_s\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\"batches\":%d,\"coalesced\":%d,\"shed_rate\":%.4f}"
    p.ph_requests p.ph_reports p.ph_shed p.ph_degraded p.ph_wall_s p.ph_req_per_s
    p.ph_p50_us p.ph_p99_us p.ph_batches p.ph_coalesced
    (if p.ph_requests = 0 then 0.
     else float_of_int p.ph_shed /. float_of_int p.ph_requests)

let run () =
  Util.section "Serving: batching A/B, admission control, overload degradation";
  let models_dir = mk_tmpdir () in
  let target = Targets.Cases.target_of "mysql" in
  let model = (Violet.Pipeline.analyze_exn target "autocommit").Violet.Pipeline.model in
  or_die
    (Violet.Pipeline.export_model model
       (Reg.model_file ~dir:models_dir ~key:"mysql-autocommit"));
  let batched =
    drive ~label:"batched" ~models_dir ~batching:true ~max_queue:64 ~deadline:None
      ~clients:4 ~per_client:25
  in
  let unbatched =
    drive ~label:"unbatched" ~models_dir ~batching:false ~max_queue:64 ~deadline:None
      ~clients:4 ~per_client:25
  in
  let saturated =
    drive ~label:"saturated" ~models_dir ~batching:true ~max_queue:2 ~deadline:None
      ~clients:8 ~per_client:30
  in
  let degraded =
    drive ~label:"deadline" ~models_dir ~batching:true ~max_queue:64
      ~deadline:(Some 1e-6) ~clients:2 ~per_client:10
  in
  let phases = [ batched; unbatched; saturated; degraded ] in
  Util.print_table
    ~header:
      [ "phase"; "requests"; "req/s"; "p50 us"; "p99 us"; "shed"; "degraded"; "coalesced" ]
    (List.map
       (fun p ->
         [
           p.ph_label;
           Util.i0 p.ph_requests;
           Util.f1 p.ph_req_per_s;
           Util.f1 p.ph_p50_us;
           Util.f1 p.ph_p99_us;
           Util.i0 p.ph_shed;
           Util.i0 p.ph_degraded;
           Util.i0 p.ph_coalesced;
         ])
       phases);
  let batch_p99_ok = batched.ph_p99_us <= unbatched.ph_p99_us in
  let shed_nonzero = saturated.ph_shed > 0 in
  let degraded_served = degraded.ph_degraded > 0 in
  if not batch_p99_ok then
    Util.note "WARNING: batched p99 exceeded unbatched p99";
  if not shed_nonzero then
    Util.note "WARNING: saturation shed no load — admission control untested";
  if not degraded_served then
    Util.note "WARNING: deadline pressure produced no degraded answers";
  let json =
    Printf.sprintf
      "{\"experiment\":\"serve\",\"batch_p99_ok\":%b,\"shed_nonzero\":%b,\"degraded_served\":%b,\"batched\":%s,\"unbatched\":%s,\"saturated\":%s,\"deadline\":%s}"
      batch_p99_ok shed_nonzero degraded_served (phase_json batched)
      (phase_json unbatched) (phase_json saturated) (phase_json degraded)
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_serve.json"
