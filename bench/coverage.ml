(* Shared coverage sweep: derive impact models for every analyzable
   parameter of every target (Section 7.6).  Memoized because Table 6,
   Figure 14 and the false-positive experiment all consume it. *)

type entry = {
  system : string;
  param : string;
  analysis : Violet.Pipeline.analysis option;  (* None: analysis failed *)
}

type system_coverage = {
  target : Violet.Pipeline.target;
  total : int;
  perf_related : int;
  hooked_perf : int;
  entries : entry list;  (* one per analyzable (perf, hooked, used) param *)
}

let sweep_opts =
  {
    Violet.Pipeline.default_options with
    Violet.Pipeline.budget =
      Vresilience.Budget.with_max_states Vresilience.Budget.default 512;
  }

let run_system (target : Violet.Pipeline.target) =
  let params = Vruntime.Config_registry.params target.Violet.Pipeline.registry in
  let perf = List.filter (fun (p : Vruntime.Config_registry.param) -> p.Vruntime.Config_registry.perf_related) params in
  let hooked =
    List.filter
      (fun (p : Vruntime.Config_registry.param) ->
        p.Vruntime.Config_registry.hook = Vruntime.Config_registry.Hooked)
      perf
  in
  let analyzable = Violet.Pipeline.analyzable_params target in
  let entries =
    List.map
      (fun param ->
        let analysis =
          match Violet.Pipeline.analyze ~opts:sweep_opts target param with
          | Ok a when a.Violet.Pipeline.rows <> [] -> Some a
          | Ok _ | Error _ -> None
        in
        { system = target.Violet.Pipeline.name; param; analysis })
      analyzable
  in
  {
    target;
    total = List.length params;
    perf_related = List.length perf;
    hooked_perf = List.length hooked;
    entries;
  }

let memo = ref None

let all () =
  match !memo with
  | Some r -> r
  | None ->
    let r = List.map run_system Targets.Cases.all_targets in
    memo := Some r;
    r

let derived cov = List.filter (fun e -> e.analysis <> None) cov.entries
