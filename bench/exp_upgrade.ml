(* Checker mode 3 (paper Section 4.7, scenario 3): a code upgrade changes
   the cost of existing settings.  The MySQL 5.6-like build fixes the binlog
   group-commit problem but worsens query-cache contention; re-deriving the
   impact models and diffing them flags exactly the regressed setting. *)

module P = Violet.Pipeline
module Checker = Vchecker.Checker

let model target param =
  (P.analyze_exn target param).P.model

(* derive the old- and new-version models for one parameter, timed: the
   per-pair wall time is the cost a from-scratch upgrade analysis pays and
   the baseline the incremental path (bench inc) is measured against *)
let model_pair param old_target new_target =
  let t0 = Unix.gettimeofday () in
  let o = model old_target param in
  let n = model new_target param in
  (o, n, Unix.gettimeofday () -. t0)

let mentions param (row : Vmodel.Cost_row.t) =
  List.exists
    (fun c ->
      List.exists
        (fun (v : Vsmt.Expr.var) -> v.Vsmt.Expr.name = param)
        (Vsmt.Expr.vars c))
    row.Vmodel.Cost_row.config_constraints

let run () =
  Util.section "Checker mode 3: MySQL 5.5 -> 5.6 code upgrade";
  (* regression: query_cache_type=ON contends harder in 5.6 *)
  let old_qc, new_qc, qc_wall_s =
    model_pair "query_cache_type" Targets.Mysql_model.target Targets.Mysql_model.target_56
  in
  let report = Checker.check_upgrade ~old_model:old_qc ~new_model:new_qc () in
  Util.note "query_cache_type version pair: models %.1f s, diff %.3f s" qc_wall_s
    report.Checker.checked_in_s;
  let qc_findings =
    List.filter
      (fun (f : Checker.finding) ->
        Vmodel.Cost_row.satisfied_by f.Checker.slow_row [ "query_cache_type", 1 ])
      report.Checker.findings
  in
  Util.print_table
    ~header:[ "setting made slower by 5.6"; "ratio"; "trigger" ]
    (List.map
       (fun (f : Checker.finding) ->
         [ Vmodel.Cost_row.constraint_string f.Checker.slow_row;
           Util.fx f.Checker.ratio; f.Checker.trigger ])
       (List.filteri (fun i _ -> i < 5) qc_findings));
  Util.note "query_cache_type=ON regressions flagged: %d (the 5.6 query-cache contention)"
    (List.length qc_findings);
  (* improvement: sync_binlog=1 got cheaper (2 fsyncs -> 1).  Comparing the
     same constraint-state across the two versions' models shows the cost
     change directly. *)
  let sync_state model_ =
    List.find_opt
      (fun r ->
        mentions "sync_binlog" r
        && Vmodel.Cost_row.satisfied_by r [ "sync_binlog", 1; "sql_log_bin", 1 ]
        && Vmodel.Cost_row.workload_satisfied_by r
             [ "sql_command", 1; "table_type", 0; "row_bytes", 256; "n_rows", 1;
               "n_tables", 1; "cached", 0; "use_index", 1; "other_clients_reading", 0 ])
      model_.Vmodel.Impact_model.rows
  in
  let old_sb, new_sb, sb_wall_s =
    model_pair "sync_binlog" Targets.Mysql_model.target Targets.Mysql_model.target_56
  in
  Util.note "sync_binlog version pair: models %.1f s" sb_wall_s;
  (match sync_state old_sb, sync_state new_sb with
  | Some o, Some n ->
    Util.note
      "sync_binlog=1 insert state: 5.5 %.1f ms -> 5.6 %.1f ms (%.2fx, binlog group commit)"
      (o.Vmodel.Cost_row.traced_latency_us /. 1000.)
      (n.Vmodel.Cost_row.traced_latency_us /. 1000.)
      (o.Vmodel.Cost_row.traced_latency_us /. n.Vmodel.Cost_row.traced_latency_us)
  | _ -> Util.note "sync_binlog state not found in one of the models")
