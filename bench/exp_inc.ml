(* Incremental re-analysis (DESIGN.md Section 5k): a one-function diff on
   a generated system of >= 20 functions must re-explore under 30% of the
   slices yet produce byte-identical models and upgrade verdicts, and the
   persistent cross-run solver cache must cut warm-run solver work.

   Phases and their BENCH_inc.json gates:
   - slice invalidation selectivity              -> "reuse_lt_30pct"
   - spliced-vs-scratch model + verdict identity -> "verdict_identical"
   - cold/warm persistent solver cache           -> "warm_cache_solver_reduction"
   - scratch-vs-splice wall time                 -> "speedup" (reported) *)

module P = Violet.Pipeline
module G = Vfuzz.Genspec

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ok = function Ok v -> v | Error e -> failwith e

(* A 21-function system whose exploration coverage is parameter-dependent:
   parameter [optI] gates the call chain helperJ -> helperJ+1 (J = 2I), so
   the slice for optI dynamically covers exactly its own two helpers and
   nothing gated by the other parameters.  Generated systems cannot play
   this role — [Generate.spec] keeps every function reachable on every
   path by construction, so their dynamic coverage is total and any
   one-function diff invalidates every slice. *)
let n_params = 10

let helper i =
  {
    G.f_name = Printf.sprintf "helper%d" i;
    f_body =
      ([
         G.S_op G.O_cache_lookup;
         G.S_op (G.O_compute (8 + (3 * i)));
         G.S_loop (6, [ G.S_op (G.O_log_append 512); G.S_op G.O_mutex_pair ]);
         G.S_if
           ( [ G.A_wl ("req_sz", Vsmt.Expr.Gt, 1) ],
             [ G.S_op (G.O_pwrite 4096) ],
             [ G.S_op (G.O_buffered_write (256 * (i + 1))) ] );
       ]
      @ if i mod 2 = 0 then [ G.S_call (Printf.sprintf "helper%d" (i + 1)) ] else []);
  }

let spec_v1 =
  let root =
    {
      G.f_name = "root";
      f_body =
        G.S_if
          ([ G.A_wl ("req_sz", Vsmt.Expr.Gt, 2) ], [ G.S_op (G.O_compute 16) ], [])
        :: List.init n_params (fun i ->
               G.S_if
                 ( [ G.A_cfg (Printf.sprintf "opt%d" i, Vsmt.Expr.Eq, 1) ],
                   [ G.S_call (Printf.sprintf "helper%d" (2 * i)) ],
                   [ G.S_op (G.O_compute 4) ] ));
    }
  in
  let t =
    {
      G.g_name = "inc-bench";
      g_seed = 0;
      g_cparams =
        List.init n_params (fun i ->
            { G.c_name = Printf.sprintf "opt%d" i; c_kind = G.C_bool; c_default = 0 });
      g_wparams = [ { G.w_name = "req_sz"; w_lo = 0; w_hi = 4 } ];
      g_funcs = root :: List.init (2 * n_params) helper;
      g_plants = [];
      g_decoys = [];
      g_trail = [];
    }
  in
  match G.validate t with
  | Ok () -> t
  | Error e -> failwith ("inc bench spec invalid: " ^ e)

let opts =
  {
    P.default_options with
    P.budget = Vresilience.Budget.with_max_states Vresilience.Budget.default 512;
    cache_dir = None;
  }

let run () =
  Util.section "Incremental re-analysis: one-function diff, splice vs scratch";
  let seed = !Util.fuzz_seed in
  let old_spec = spec_v1 in
  let old_t = G.to_target old_spec in
  let n_funcs = List.length old_t.P.program.Vir.Ast.funcs in
  let tmp = Filename.get_temp_dir_name () in
  let dir_old = Filename.concat tmp "violet_bench_inc_old" in
  let dir_inc = Filename.concat tmp "violet_bench_inc_spliced" in
  let dir_scratch = Filename.concat tmp "violet_bench_inc_scratch" in
  let cache = Filename.concat tmp "violet_bench_inc_cache" in
  List.iter rm_rf [ dir_old; dir_inc; dir_scratch; cache ];
  let (mf_old, _), t_base = timed (fun () -> ok (Vinc.Baseline.build ~opts ~dir:dir_old old_t)) in
  (* Flip_const perturbs one constant inside one function body: the
     smallest structure-preserving diff the mutator can make.  The draw is
     rng-positional, so draw a few candidates and keep the most localized
     one — the "routine maintenance commit" the incremental path targets —
     scoring each by how many baseline slices its diff would invalidate
     (recorded coverage ∩ dirty functions, the classifier's own rule). *)
  let invalidated dirty =
    List.length
      (List.filter
         (fun (s : Vinc.Baseline.slice) ->
           List.exists (fun f -> List.mem f dirty) s.Vinc.Baseline.sl_visited)
         mf_old.Vinc.Baseline.mf_slices)
  in
  let rng = Vfuzz.Sprng.make (seed + 1) in
  let candidates =
    List.filter_map
      (fun k -> Vfuzz.Mutate.apply_kind (Vfuzz.Sprng.split_at rng k) Vfuzz.Mutate.Flip_const old_spec)
      (List.init 12 Fun.id)
  in
  let new_spec, mutation =
    match
      List.sort
        (fun (_, _, a) (_, _, b) -> compare a b)
        (List.map
           (fun (s, d) ->
             let t = G.to_target s in
             let diff = Vinc.Irdiff.diff_programs ~old_program:old_t.P.program t.P.program in
             (s, d, invalidated (Vinc.Irdiff.dirty_functions diff)))
           candidates)
    with
    | (s, d, _) :: _ -> (s, d)
    | [] -> failwith "Flip_const produced no candidate mutations"
  in
  let new_t = G.to_target new_spec in
  let diff = Vinc.Irdiff.diff_programs ~old_program:old_t.P.program new_t.P.program in
  let report, t_inc =
    timed (fun () -> ok (Vinc.Splice.run ~opts ~baseline:dir_old ~out:dir_inc new_t))
  in
  let (scratch_mf, _), t_scratch =
    timed (fun () -> ok (Vinc.Baseline.build ~opts ~dir:dir_scratch new_t))
  in
  let reused = List.length report.Vinc.Splice.sp_reused in
  let reexplored = List.length report.Vinc.Splice.sp_reexplored in
  let total = reused + reexplored in
  let reuse_lt_30pct =
    total > 0 && float_of_int reexplored < 0.30 *. float_of_int total
  in
  (* model identity: the spliced baseline's per-slice digests must equal the
     scratch rebuild's, carried and re-explored alike *)
  let digests mf =
    List.map
      (fun (s : Vinc.Baseline.slice) -> (s.Vinc.Baseline.sl_param, s.Vinc.Baseline.sl_digest))
      mf.Vinc.Baseline.mf_slices
  in
  let models_identical =
    digests report.Vinc.Splice.sp_baseline = digests scratch_mf
  in
  if not models_identical then
    List.iter2
      (fun (p, a) (_, b) ->
        if a <> b then Util.note "model digest diverges for %s: spliced %s, scratch %s" p a b)
      (digests report.Vinc.Splice.sp_baseline)
      (digests scratch_mf);
  (* verdict identity: upgrade findings old->spliced must equal old->scratch
     (checked_in_s is wall time, so compare the findings only) *)
  let findings dir =
    List.map
      (fun (p, (r : Vchecker.Checker.report)) -> (p, r.Vchecker.Checker.findings))
      (ok (Vinc.Splice.check_upgrade ~old_dir:dir_old ~new_dir:dir))
  in
  let upgrade_inc = findings dir_inc in
  let verdict_identical = models_identical && upgrade_inc = findings dir_scratch in
  let n_findings = List.fold_left (fun n (_, fs) -> n + List.length fs) 0 upgrade_inc in
  (* persistent solver cache: same analysis cold then warm; the warm run must
     answer from the primed cache and produce the byte-identical model *)
  let param =
    match P.analyzable_params old_t with p :: _ -> p | [] -> failwith "no analyzable params"
  in
  let cache_opts = { opts with P.cache_dir = Some cache } in
  let solves (a : P.analysis) =
    a.P.result.Vsymexec.Executor.sched.Vsched.Exploration_stats.solver_solves
  in
  let cold =
    match P.analyze ~opts:cache_opts old_t param with
    | Ok a -> a
    | Error e -> failwith (P.error_to_string e)
  in
  let warm =
    match P.analyze ~opts:cache_opts old_t param with
    | Ok a -> a
    | Error e -> failwith (P.error_to_string e)
  in
  let warm_identical =
    Vinc.Baseline.model_digest cold.P.model = Vinc.Baseline.model_digest warm.P.model
  in
  let warm_cache_solver_reduction =
    solves cold > 0 && solves warm < solves cold && warm.P.cache_primed > 0
    && warm_identical
  in
  let speedup = if t_inc > 0. then t_scratch /. t_inc else 0. in
  Util.print_table
    ~header:[ "phase"; "value" ]
    [
      [ "system"; Printf.sprintf "%s (%d functions)" old_spec.G.g_name n_funcs ];
      [ "mutation"; mutation ];
      [
        "diff";
        Printf.sprintf "%d modified, %d added, %d removed"
          (List.length diff.Vinc.Irdiff.modified)
          (List.length diff.Vinc.Irdiff.added)
          (List.length diff.Vinc.Irdiff.removed);
      ];
      [ "slices reused / re-explored"; Printf.sprintf "%d / %d" reused reexplored ];
      [
        "re-exploration reasons";
        String.concat "; "
          (List.sort_uniq String.compare (List.map snd report.Vinc.Splice.sp_reexplored));
      ];
      [ "old baseline wall"; Util.f1 t_base ^ " s" ];
      [ "splice wall"; Util.f1 t_inc ^ " s" ];
      [ "scratch wall"; Util.f1 t_scratch ^ " s" ];
      [ "splice speedup"; Util.fx speedup ];
      [ "upgrade findings"; Util.i0 n_findings ];
      [
        "solver solves cold -> warm";
        Printf.sprintf "%d -> %d (%d primed)" (solves cold) (solves warm)
          warm.P.cache_primed;
      ];
    ];
  Util.note "re-explored < 30%%: %s; verdicts byte-identical: %s; warm cache cuts solves: %s"
    (Util.yes_no reuse_lt_30pct) (Util.yes_no verdict_identical)
    (Util.yes_no warm_cache_solver_reduction);
  let json =
    Printf.sprintf
      "{\"experiment\":\"inc\",\"seed\":%d,\"functions\":%d,\"modified\":%d,\"added\":%d,\"removed\":%d,\"reused\":%d,\"reexplored\":%d,\"base_wall_s\":%.2f,\"splice_wall_s\":%.2f,\"scratch_wall_s\":%.2f,\"speedup\":%.2f,\"findings\":%d,\"cold_solves\":%d,\"warm_solves\":%d,\"warm_primed\":%d,\"reuse_lt_30pct\":%b,\"verdict_identical\":%b,\"warm_cache_solver_reduction\":%b}"
      seed n_funcs
      (List.length diff.Vinc.Irdiff.modified)
      (List.length diff.Vinc.Irdiff.added)
      (List.length diff.Vinc.Irdiff.removed)
      reused reexplored t_base t_inc t_scratch speedup n_findings (solves cold)
      (solves warm) warm.P.cache_primed reuse_lt_30pct verdict_identical
      warm_cache_solver_reduction
  in
  let oc = open_out "BENCH_inc.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_inc.json"
