(* Materialized checker fast path (DESIGN.md Section 5j): compiling the
   impact model into solver-free decision tables moves the row-decision cost
   from query time to load time.  This experiment measures both sides of
   that trade and holds the exactness promise.

   Phases and their BENCH_matcheck.json gates:

   - timing: check-current on the four target systems, solver path vs
     compiled decision tables, per-call wall percentiles over the pooled
     samples.  Gates: the compiled p99 stays in microseconds
     ("mat_p99_us_ok": p99 < 1000 us) and is at least 100x faster than the
     solver path ("speedup_ok");
   - identity: findings are byte-identical across Solver, Materialized and
     Hybrid on every target case ("targets_identical");
   - corpus: the mode-equivalence leg over a seeded vfuzz corpus
     (--seed/--count, default 42/200) — every generated system's model is
     compiled and checked under all three modes, which must agree
     byte-for-byte ("corpus_identical").

   The compile wall (the load-time tax the registry pays) is reported per
   model and in total. *)

let cases =
  [
    "mysql", "autocommit";
    "postgres", "wal_sync_method";
    "apache", "HostnameLookups";
    "squid", "cache";
  ]

let fingerprint (rep : Vchecker.Checker.report) =
  Vfuzz.Oracle.findings_fingerprint rep.Vchecker.Checker.findings

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let i = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(max 0 (min (n - 1) i))
  end

(* one timed check-current call; the config file is empty so the checker
   runs the model's poor states against the registry defaults — the serving
   daemon's steady-state request *)
let time_check ~mode ?compiled ~model ~registry ~file iters =
  let samples = Array.make iters 0. in
  for i = 0 to iters - 1 do
    let t0 = Unix.gettimeofday () in
    (match
       Vchecker.Checker.check_current ~mode ?compiled ~model ~registry ~file ()
     with
    | Ok _ -> ()
    | Error e -> failwith ("check_current: " ^ e));
    samples.(i) <- (Unix.gettimeofday () -. t0) *. 1e6
  done;
  samples

let run () =
  Util.section "Materialized checker fast path (DESIGN.md Section 5j)";

  (* -- timing + identity on the four target systems ------------------- *)
  let solver_iters = 100 and mat_iters = 400 in
  let solver_samples = ref [] and mat_samples = ref [] in
  let compile_total = ref 0. in
  let targets_identical = ref true in
  let table_rows =
    List.map
      (fun (system, param) ->
        let target = Targets.Cases.target_of system in
        let registry = target.Violet.Pipeline.registry in
        let a = Violet.Pipeline.analyze_exn target param in
        let model = a.Violet.Pipeline.model in
        let file = Vchecker.Config_file.parse "" in
        let compiled = Vmodel.Compiled_model.compile model in
        let cstats = Vmodel.Compiled_model.stats compiled in
        compile_total := !compile_total +. cstats.Vmodel.Compiled_model.compile_s;
        (* identity before timing, so a disagreement fails loudly *)
        let fp mode ?c () =
          match
            Vchecker.Checker.check_current ~mode ?compiled:c ~model ~registry ~file ()
          with
          | Ok rep -> fingerprint rep
          | Error e -> "error: " ^ e
        in
        let f_solver = fp Vchecker.Checker.Solver ()
        and f_mat = fp Vchecker.Checker.Materialized ~c:compiled ()
        and f_hybrid = fp Vchecker.Checker.Hybrid ~c:compiled () in
        if not (String.equal f_solver f_mat && String.equal f_solver f_hybrid) then begin
          targets_identical := false;
          Util.note "IDENTITY FAILURE %s/%s: modes disagree" system param
        end;
        let s =
          time_check ~mode:Vchecker.Checker.Solver ~model ~registry ~file solver_iters
        in
        let m =
          time_check ~mode:Vchecker.Checker.Materialized ~compiled ~model ~registry
            ~file mat_iters
        in
        solver_samples := s :: !solver_samples;
        mat_samples := m :: !mat_samples;
        Array.sort compare s;
        Array.sort compare m;
        [
          system ^ "/" ^ param;
          Printf.sprintf "%d/%d" cstats.Vmodel.Compiled_model.rows_closed
            cstats.Vmodel.Compiled_model.rows_total;
          Printf.sprintf "%.2f ms" (cstats.Vmodel.Compiled_model.compile_s *. 1e3);
          Printf.sprintf "%.0f us" (percentile s 0.99);
          Printf.sprintf "%.0f us" (percentile m 0.99);
          Printf.sprintf "%.0fx" (percentile s 0.99 /. percentile m 0.99);
        ])
      cases
  in
  Util.print_table
    ~header:[ "case"; "rows closed"; "compile"; "solver p99"; "compiled p99"; "speedup" ]
    table_rows;

  let pool l =
    let a = Array.concat l in
    Array.sort compare a;
    a
  in
  let s_all = pool !solver_samples and m_all = pool !mat_samples in
  let s_p50 = percentile s_all 0.5
  and s_p99 = percentile s_all 0.99
  and m_p50 = percentile m_all 0.5
  and m_p99 = percentile m_all 0.99 in
  let speedup_p50 = s_p50 /. m_p50 and speedup_p99 = s_p99 /. m_p99 in
  let mat_p99_us_ok = m_p99 < 1000. in
  let speedup_ok = speedup_p99 >= 100. in
  Util.note "pooled: solver p50/p99 %.0f/%.0f us, compiled p50/p99 %.1f/%.1f us" s_p50
    s_p99 m_p50 m_p99;
  Util.note "speedup p50 %.0fx, p99 %.0fx; compile tax %.1f ms total" speedup_p50
    speedup_p99 (!compile_total *. 1e3);

  (* -- mode equivalence over the generated corpus --------------------- *)
  let seed = !Util.fuzz_seed and count = !Util.fuzz_count in
  Util.note "corpus: seed %d, %d systems" seed count;
  let specs = Vfuzz.Generate.corpus ~seed ~count () in
  let t0 = Unix.gettimeofday () in
  let corpus_checks = ref 0 and corpus_mismatches = ref 0 in
  List.iter
    (fun (spec : Vfuzz.Genspec.t) ->
      let target = Vfuzz.Genspec.to_target spec in
      let registry = target.Violet.Pipeline.registry in
      let params =
        List.map (fun (p : Vfuzz.Genspec.plant) -> p.Vfuzz.Genspec.p_param)
          spec.Vfuzz.Genspec.g_plants
        @ spec.Vfuzz.Genspec.g_decoys
      in
      List.iter
        (fun param ->
          match Violet.Pipeline.analyze ~opts:Vfuzz.Oracle.default_opts target param with
          | Error _ -> ()
          | Ok a ->
            let model = a.Violet.Pipeline.model in
            let file = Vchecker.Config_file.parse "" in
            let compiled = Vmodel.Compiled_model.compile model in
            let fp mode ?c () =
              match
                Vchecker.Checker.check_current ~mode ?compiled:c ~model ~registry
                  ~file ()
              with
              | Ok rep -> fingerprint rep
              | Error e -> "error: " ^ e
            in
            let reference = fp Vchecker.Checker.Solver () in
            List.iter
              (fun (label, f) ->
                incr corpus_checks;
                if not (String.equal f reference) then begin
                  incr corpus_mismatches;
                  Util.note "CORPUS MISMATCH %s/%s (%s)" spec.Vfuzz.Genspec.g_name
                    param label
                end)
              [
                ("materialized", fp Vchecker.Checker.Materialized ~c:compiled ());
                ("materialized-fresh", fp Vchecker.Checker.Materialized ());
                ("hybrid", fp Vchecker.Checker.Hybrid ~c:compiled ());
              ])
        params)
    specs;
  let corpus_s = Unix.gettimeofday () -. t0 in
  let corpus_identical = !corpus_mismatches = 0 in
  Util.note "corpus: %d mode checks over %d systems in %.1f s, %d mismatches"
    !corpus_checks (List.length specs) corpus_s !corpus_mismatches;
  Util.note "compiled p99 < 1 ms: %s; speedup >= 100x: %s; targets identical: %s; corpus identical: %s"
    (Util.yes_no mat_p99_us_ok) (Util.yes_no speedup_ok)
    (Util.yes_no !targets_identical) (Util.yes_no corpus_identical);

  let json =
    Printf.sprintf
      "{\"experiment\":\"matcheck\",\"solver_p50_us\":%.1f,\"solver_p99_us\":%.1f,\"mat_p50_us\":%.2f,\"mat_p99_us\":%.2f,\"speedup_p50\":%.1f,\"speedup_p99\":%.1f,\"compile_total_s\":%.4f,\"seed\":%d,\"count\":%d,\"corpus_size\":%d,\"corpus_checks\":%d,\"corpus_mismatches\":%d,\"corpus_wall_s\":%.1f,\"mat_p99_us_ok\":%b,\"speedup_ok\":%b,\"targets_identical\":%b,\"corpus_identical\":%b}"
      s_p50 s_p99 m_p50 m_p99 speedup_p50 speedup_p99 !compile_total seed count
      (List.length specs) !corpus_checks !corpus_mismatches corpus_s mat_p99_us_ok
      speedup_ok !targets_identical corpus_identical
  in
  let oc = open_out "BENCH_matcheck.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_matcheck.json"
