(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7), plus the ablations from DESIGN.md.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table4  # one experiment
     dune exec bench/main.exe -- sched --stats-out sched.json
                                         # dump exploration telemetry *)

let experiments =
  [
    (* first: the fleet forks a supervisor, which is only sound before any
       experiment has spawned domains *)
    "fleet", ("vfleet: shard scaling + chaos A/B + fleet oracle", Exp_fleet.run);
    "fig2", ("Figure 2: autocommit throughput", Exp_fig2.run);
    "table1", ("Table 1: autocommit cost table", Exp_table1.run);
    "table4", ("Table 4: 17 known cases", Exp_table4.run);
    "testing", ("Section 7.3: black-box testing comparison", Exp_testing.run);
    "table5", ("Table 5: unknown specious configs", Exp_table5.run);
    "table6", ("Table 6: model coverage", Exp_table6.run);
    "table7", ("Table 7: profiling accuracy", Exp_table7.run);
    "fig9", ("Figure 9: unrelated-parameter explosion", Exp_fig9.run);
    "fig12", ("Figures 12-13: user study", Exp_userstudy.run);
    "fig14", ("Figure 14: analysis times", Exp_fig14.run);
    "fig15", ("Figure 15: threshold sensitivity", Exp_fig15.run);
    "fp", ("Section 7.8: false positives", Exp_fp.run);
    "upgrade", ("Checker mode 3: code upgrade", Exp_upgrade.run);
    "perf", ("Section 7.9: toolchain performance", Exp_perf.run);
    "ablation", ("Design-choice ablations", Exp_ablation.run);
    "sched", ("Searcher comparison + solver-cache ablation", Exp_sched.run);
    "resilience", ("Checkpoint overhead + degradation fidelity", Exp_resilience.run);
    "par", ("Parallel exploration: two-mode speedup + determinism tax", Exp_par.run);
    "slice", ("Independence slicing: solver work + model identity", Exp_slice.run);
    "serve", ("Serving: batching A/B + admission control", Exp_serve.run);
    "matcheck", ("Materialized checker: decision-table fast path", Exp_matcheck.run);
    "fuzz", ("vfuzz: planted ground truth + differential oracle", Exp_fuzz.run);
    "inc", ("vinc: incremental re-analysis + persistent solver cache", Exp_inc.run);
  ]

(* strip [--stats-out FILE] / [--seed N] / [--count N] before dispatching on
   experiment names *)
let int_arg flag v =
  match int_of_string_opt v with
  | Some n -> n
  | None ->
    Fmt.epr "%s requires an integer argument@." flag;
    exit 1

let rec parse_args = function
  | "--stats-out" :: path :: rest ->
    Util.stats_out := Some path;
    parse_args rest
  | "--seed" :: v :: rest ->
    Util.fuzz_seed := int_arg "--seed" v;
    parse_args rest
  | "--count" :: v :: rest ->
    Util.fuzz_count := int_arg "--count" v;
    parse_args rest
  | [ ("--stats-out" | "--seed" | "--count") ] ->
    Fmt.epr "--stats-out/--seed/--count require an argument@.";
    exit 1
  | name :: rest -> name :: parse_args rest
  | [] -> []

let () =
  let args = parse_args (List.tl (Array.to_list Sys.argv)) in
  let t0 = Unix.gettimeofday () in
  begin
    match args with
    | [] ->
      Fmt.pr "Violet-ML benchmark harness: regenerating all paper tables and figures@.";
      List.iter (fun (_, (_, run)) -> run ()) experiments
    | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some (_, run) -> run ()
          | None ->
            Fmt.epr "unknown experiment %s; available: %s@." name
              (String.concat ", " (List.map fst experiments));
            exit 1)
        names
  end;
  Util.flush_sched ();
  Fmt.pr "@.[bench complete in %.1f s]@." (Unix.gettimeofday () -. t0)
