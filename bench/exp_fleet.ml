(* The fleet under load and chaos (DESIGN.md Section 5i): a supervised
   multi-process fleet — forked supervisor, N worker daemons, one router —
   driven by a single-threaded multi-connection load loop.  The load loop
   deliberately uses connections plus {!Vserve.Client.post}/{!await}
   instead of client domains: the supervisor forks, and forking is unsound
   once a domain has been spawned, so every fleet phase must run before
   anything in this process spawns a domain (which is also why "fleet"
   sits first in bench/main.ml's experiment list, and why the analysis
   below runs with [jobs = 1]).  The oracle leg, which does spawn domains,
   runs last.

   Phases and their BENCH_fleet.json gates:

   - scaling: the same load over 1/2/4 shards with a tiny worker admission
     queue — the shed rate must fall as shards are added
     ("shed_decreasing");
   - chaos A/B: seeded kills, stalls and reload corruptions under load.
     With retries on the fleet must absorb them — error rate ~ 0
     ("chaos_error_free"); with the resilience machinery off the same
     storm must draw blood ("errors_without_retries"), or the A/B proves
     nothing;
   - oracle: the vfuzz differential fleet leg on a small generated corpus —
     routed answers byte-identical to the in-process checker
     ("fleet_oracle_ok"). *)

module M = Vmodel.Impact_model
module P = Vserve.Protocol
module Client = Vserve.Client
module Server = Vserve.Server
module Reg = Vserve.Registry
module Wire = Vserve.Wire
module Topology = Vfleet.Topology
module Supervisor = Vfleet.Supervisor
module Router = Vfleet.Router
module Chaos = Vfleet.Chaos

let or_die = function
  | Ok v -> v
  | Error e ->
    Fmt.epr "bench fleet: %s@." e;
    exit 1

let mk_tmpdir () =
  let path = Filename.temp_file "vfleet_bench" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let percentile xs q =
  match xs with
  | [] -> 0.
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let idx = int_of_float (Float.ceil (q *. float_of_int n) -. 1.) in
    a.(max 0 (min (n - 1) idx))

let resolve_registry (m : M.t) =
  Option.map
    (fun t -> t.Violet.Pipeline.registry)
    (Targets.Cases.find_target m.M.system)

(* ------------------------------------------------------------------ *)
(* Fleet lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

(* Fork a supervisor child running the whole fleet; the bench process only
   ever talks to the router socket (and, for chaos, reads the supervisor's
   state file).  Returns the topology and the supervisor pid. *)
let start_fleet ~run_dir ~models_dir ~shards ~retries ~max_queue =
  let topology = Topology.make ~run_dir ~shards in
  match Unix.fork () with
  | 0 ->
    let base = Supervisor.default_options ~topology ~models_dir in
    let opts =
      {
        base with
        Supervisor.worker_opts =
          (fun i ->
            {
              (base.Supervisor.worker_opts i) with
              Server.resolve_registry;
              jobs = 1;
              max_queue;
            });
        router_opts =
          {
            base.Supervisor.router_opts with
            Router.retries;
            attempt_timeout_s = 1.0;
            max_pending = 1024;
          };
        probe_every_s = 0.2;
        backoff_base_s = 0.02;
      }
    in
    (match Supervisor.run opts with
    | Ok () -> ()
    | Error e -> prerr_endline ("bench fleet supervisor: " ^ e));
    Unix._exit 0
  | pid -> (topology, pid)

let stop_fleet pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* every worker up with the models loaded, so round one measures the fleet
   and not its boot *)
let await_fleet (topology : Topology.t) =
  List.iter
    (fun i ->
      let c =
        or_die (Client.connect_retry ~deadline_s:20.0 (Topology.worker_addr topology i))
      in
      let rec wait () =
        match Client.call ~timeout_s:5.0 c P.Health with
        | Ok (P.Health_info { models = _ :: _; _ }) -> ()
        | _ ->
          Unix.sleepf 0.02;
          wait ()
      in
      wait ();
      Client.close c)
    (List.init topology.Topology.shards Fun.id)

(* restart and failover counters out of the router's aggregated stats —
   the bench doubles as a live test of the fleet stats verb *)
let fleet_counters client =
  match Client.call ~timeout_s:10.0 client P.Stats with
  | Ok (P.Stats_info w) ->
    let top name =
      Option.value ~default:0 (Option.bind (Wire.member name w) Wire.to_int)
    in
    let restarts =
      match Option.bind (Wire.member "shards" w) Wire.to_list with
      | None -> 0
      | Some items ->
        List.fold_left
          (fun acc it ->
            acc
            + Option.value ~default:0 (Option.bind (Wire.member "restarts" it) Wire.to_int))
          0 items
    in
    (top "failovers", restarts, top "fallback_degraded")
  | Ok _ | Error _ -> (0, 0, 0)

(* ------------------------------------------------------------------ *)
(* Load generation: rounds of one in-flight request per connection      *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable reports : int;
  mutable shed : int;  (* [overloaded] answers *)
  mutable degraded : int;  (* reports served from the fallback widening *)
  mutable errors : int;  (* everything else: error responses, transport *)
  mutable lats : float list;
}

let drive_load ~router_addr ~keys ~conns ~rounds ?(on_round = fun _ -> ()) () =
  let cs =
    Array.init conns (fun _ -> or_die (Client.connect_retry ~deadline_s:10.0 router_addr))
  in
  let t = { reports = 0; shed = 0; degraded = 0; errors = 0; lats = [] } in
  let nk = Array.length keys in
  let t0 = Unix.gettimeofday () in
  for round = 0 to rounds - 1 do
    on_round round;
    let posted =
      Array.mapi
        (fun i c ->
          let key = keys.(((round * conns) + i) mod nk) in
          let tpost = Unix.gettimeofday () in
          match Client.post c (P.Check_current { key; config = "" }) with
          | Ok id -> Some (id, tpost)
          | Error _ ->
            t.errors <- t.errors + 1;
            None)
        cs
    in
    Array.iteri
      (fun i slot ->
        match slot with
        | None -> ()
        | Some (id, tpost) -> begin
          match Client.await ~timeout_s:15.0 cs.(i) id with
          | Ok (P.Report o) ->
            t.reports <- t.reports + 1;
            if o.P.degraded then t.degraded <- t.degraded + 1;
            t.lats <- ((Unix.gettimeofday () -. tpost) *. 1e6) :: t.lats
          | Ok (P.Error_resp { code = P.Overloaded; _ }) -> t.shed <- t.shed + 1
          | Ok _ | Error _ -> t.errors <- t.errors + 1
        end)
      posted
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter Client.close cs;
  (t, wall)

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)
(* ------------------------------------------------------------------ *)

type phase = {
  ph_label : string;
  ph_shards : int;
  ph_requests : int;
  ph_reports : int;
  ph_shed : int;
  ph_degraded : int;
  ph_errors : int;
  ph_failovers : int;
  ph_restarts : int;
  ph_wall_s : float;
  ph_req_per_s : float;
  ph_p50_us : float;
  ph_p99_us : float;
}

let shed_rate p =
  if p.ph_requests = 0 then 0.
  else float_of_int p.ph_shed /. float_of_int p.ph_requests

let error_rate p =
  if p.ph_requests = 0 then 0.
  else float_of_int p.ph_errors /. float_of_int p.ph_requests

let finish_phase ~label ~shards ~topology ~pid (t, wall) =
  let control =
    or_die (Client.connect_retry ~deadline_s:10.0 (Topology.router_addr topology))
  in
  let failovers, restarts, _ = fleet_counters control in
  Client.close control;
  stop_fleet pid;
  let requests = t.reports + t.shed + t.errors in
  {
    ph_label = label;
    ph_shards = shards;
    ph_requests = requests;
    ph_reports = t.reports;
    ph_shed = t.shed;
    ph_degraded = t.degraded;
    ph_errors = t.errors;
    ph_failovers = failovers;
    ph_restarts = restarts;
    ph_wall_s = wall;
    ph_req_per_s = (if wall > 0. then float_of_int requests /. wall else 0.);
    ph_p50_us = percentile t.lats 0.50;
    ph_p99_us = percentile t.lats 0.99;
  }

let scaling_phase ~models_dir ~keys ~shards =
  let run_dir = mk_tmpdir () in
  let topology, pid =
    start_fleet ~run_dir ~models_dir ~shards ~retries:true ~max_queue:2
  in
  await_fleet topology;
  let res =
    drive_load
      ~router_addr:(Topology.router_addr topology)
      ~keys ~conns:24 ~rounds:12 ()
  in
  let p =
    finish_phase ~label:(Printf.sprintf "scale-%d" shards) ~shards ~topology ~pid res
  in
  rm_rf run_dir;
  p

let chaos_phase ~models_dir ~keys ~retries ~seed =
  let shards = 3 in
  let run_dir = mk_tmpdir () in
  let topology, pid =
    start_fleet ~run_dir ~models_dir ~shards ~retries ~max_queue:32
  in
  await_fleet topology;
  let g = Vfuzz.Sprng.make seed in
  let draws =
    {
      Chaos.draw_int = (fun n -> Vfuzz.Sprng.int g n);
      draw_float = (fun () -> float_of_int (Vfuzz.Sprng.int g 1_000_000) /. 1e6);
    }
  in
  let plan =
    Chaos.plan ~draws ~shards ~keys:[ keys.(0) ] ~events:8
  in
  let actions = ref plan in
  let outcome = ref { Chaos.killed = 0; stalled = 0; corrupted = 0; stage_rejections = 0 } in
  let control =
    or_die (Client.connect_retry ~deadline_s:10.0 (Topology.router_addr topology))
  in
  let pid_of_shard i =
    match Topology.read_state topology with
    | None -> None
    | Some contents -> begin
      match Wire.of_string contents with
      | Error _ -> None
      | Ok v ->
        Option.bind (Wire.member "shards" v) Wire.to_list
        |> Option.map
             (List.filter_map (fun it ->
                  match
                    ( Option.bind (Wire.member "id" it) Wire.to_int,
                      Option.bind (Wire.member "pid" it) Wire.to_int )
                  with
                  | Some id, Some pid when id = i && pid > 0 -> Some pid
                  | _ -> None))
        |> Option.map (function p :: _ -> Some p | [] -> None)
        |> Option.join
    end
  in
  let on_round round =
    if round > 0 && round mod 3 = 0 then
      match !actions with
      | [] -> ()
      | a :: rest ->
        actions := rest;
        outcome := Chaos.apply ~pid_of_shard ~router:control ~models_dir !outcome a
  in
  let res =
    drive_load
      ~router_addr:(Topology.router_addr topology)
      ~keys ~conns:12 ~rounds:30 ~on_round ()
  in
  let label = if retries then "chaos-retries" else "chaos-no-retries" in
  Client.close control;
  let p = finish_phase ~label ~shards ~topology ~pid res in
  rm_rf run_dir;
  (p, !outcome)

(* ------------------------------------------------------------------ *)
(* JSON and driver                                                     *)
(* ------------------------------------------------------------------ *)

let phase_json p =
  Printf.sprintf
    "{\"label\":%S,\"shards\":%d,\"requests\":%d,\"reports\":%d,\"shed\":%d,\"degraded\":%d,\"errors\":%d,\"failovers\":%d,\"restarts\":%d,\"wall_s\":%.4f,\"req_per_s\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\"shed_rate\":%.4f,\"error_rate\":%.4f}"
    p.ph_label p.ph_shards p.ph_requests p.ph_reports p.ph_shed p.ph_degraded
    p.ph_errors p.ph_failovers p.ph_restarts p.ph_wall_s p.ph_req_per_s p.ph_p50_us
    p.ph_p99_us (shed_rate p) (error_rate p)

let run_phases () =
  let models_dir = mk_tmpdir () in
  let target = Targets.Cases.target_of "mysql" in
  let opts = { Violet.Pipeline.default_options with Violet.Pipeline.jobs = 1 } in
  let model = (Violet.Pipeline.analyze_exn ~opts target "autocommit").Violet.Pipeline.model in
  (* one model under several keys: the ring spreads keys, not requests, so
     distinct keys are what scaling and failover act on *)
  let keys =
    Array.init 8 (fun i -> Printf.sprintf "mysql-autocommit-r%d" i)
  in
  Array.iter
    (fun key ->
      or_die (Violet.Pipeline.export_model model (Reg.model_file ~dir:models_dir ~key)))
    keys;
  let seed = !Util.fuzz_seed in

  let scale1 = scaling_phase ~models_dir ~keys ~shards:1 in
  let scale2 = scaling_phase ~models_dir ~keys ~shards:2 in
  let scale4 = scaling_phase ~models_dir ~keys ~shards:4 in
  let chaos_on, outcome_on = chaos_phase ~models_dir ~keys ~retries:true ~seed in
  let chaos_off, outcome_off = chaos_phase ~models_dir ~keys ~retries:false ~seed in

  (* differential fleet leg: routed answers must be byte-identical to the
     in-process checker.  Spawns domains, so it must come after every fork. *)
  let specs = Vfuzz.Generate.corpus ~seed ~count:2 () in
  let oracle_reports =
    List.map (fun s -> Vfuzz.Oracle.check ~daemon:false ~fleet:true ~inc:false s) specs
  in
  let fleet_checks =
    List.fold_left (fun n r -> n + r.Vfuzz.Oracle.r_fleet_checks) 0 oracle_reports
  in
  let fleet_oracle_ok =
    fleet_checks > 0 && List.for_all Vfuzz.Oracle.agreed oracle_reports
  in

  let phases = [ scale1; scale2; scale4; chaos_on; chaos_off ] in
  Util.print_table
    ~header:
      [
        "phase"; "shards"; "requests"; "req/s"; "p99 us"; "shed"; "errors"; "degraded";
        "failovers"; "restarts";
      ]
    (List.map
       (fun p ->
         [
           p.ph_label;
           Util.i0 p.ph_shards;
           Util.i0 p.ph_requests;
           Util.f1 p.ph_req_per_s;
           Util.f1 p.ph_p99_us;
           Util.i0 p.ph_shed;
           Util.i0 p.ph_errors;
           Util.i0 p.ph_degraded;
           Util.i0 p.ph_failovers;
           Util.i0 p.ph_restarts;
         ])
       phases);
  Util.note "chaos (retries on): %d killed, %d stalled, %d corrupted (%d stage rejections)"
    outcome_on.Chaos.killed outcome_on.Chaos.stalled outcome_on.Chaos.corrupted
    outcome_on.Chaos.stage_rejections;

  let shed_decreasing =
    shed_rate scale1 > 0.
    && shed_rate scale4 < shed_rate scale1
    && shed_rate scale2 <= shed_rate scale1
  in
  let chaos_error_free = error_rate chaos_on <= 0.01 in
  let errors_without_retries = chaos_off.ph_errors > 0 in
  if not shed_decreasing then
    Util.note "WARNING: shed rate did not fall with shard count (%.3f / %.3f / %.3f)"
      (shed_rate scale1) (shed_rate scale2) (shed_rate scale4);
  if not chaos_error_free then
    Util.note "WARNING: chaos drew errors through the resilient fleet (rate %.3f)"
      (error_rate chaos_on);
  if not errors_without_retries then
    Util.note "WARNING: chaos without retries drew no errors — the A/B proves nothing";
  if not fleet_oracle_ok then
    Util.note "WARNING: fleet oracle leg disagreed or compared nothing";
  Util.note "shed_decreasing: %s; chaos_error_free: %s; errors_without_retries: %s; fleet_oracle_ok: %s"
    (Util.yes_no shed_decreasing) (Util.yes_no chaos_error_free)
    (Util.yes_no errors_without_retries) (Util.yes_no fleet_oracle_ok);

  let outcome_json o =
    Printf.sprintf
      "{\"killed\":%d,\"stalled\":%d,\"corrupted\":%d,\"stage_rejections\":%d}"
      o.Chaos.killed o.Chaos.stalled o.Chaos.corrupted o.Chaos.stage_rejections
  in
  let json =
    Printf.sprintf
      "{\"experiment\":\"fleet\",\"seed\":%d,\"shed_decreasing\":%b,\"chaos_error_free\":%b,\"errors_without_retries\":%b,\"fleet_oracle_ok\":%b,\"fleet_checks\":%d,\"phases\":[%s],\"chaos_outcome_retries\":%s,\"chaos_outcome_no_retries\":%s}"
      seed shed_decreasing chaos_error_free errors_without_retries fleet_oracle_ok
      fleet_checks
      (String.concat "," (List.map phase_json phases))
      (outcome_json outcome_on) (outcome_json outcome_off)
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  rm_rf models_dir;
  Util.note "wrote BENCH_fleet.json"

let run () =
  Util.section "Fleet: shard scaling, chaos A/B, differential oracle";
  if Vpar.Pool.spawned_domains () then
    (* the supervisor forks; a process that has spawned domains cannot.
       bench/main.ml runs "fleet" first for exactly this reason. *)
    Util.note "SKIP: domains already spawned in this process — run `bench fleet` alone"
  else run_phases ()
