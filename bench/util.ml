(* Table rendering and shared helpers for the experiment harness. *)

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Fmt.pr "@.%s@.=== %s ===@.%s@." bar title bar

let note fmt = Fmt.pr ("  " ^^ fmt ^^ "@.")

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = match List.nth_opt row c with Some s -> s | None -> "" in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    Fmt.pr "| %s |@." (String.concat " | " cells)
  in
  render header;
  Fmt.pr "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter render rows

let fx f = Printf.sprintf "%.1fx" f
let f1 f = Printf.sprintf "%.1f" f
let f2 f = Printf.sprintf "%.2f" f
let i0 = string_of_int
let yes_no b = if b then "yes" else "no"
let check b = if b then "v" else "x"

(* quartiles over a non-empty float list *)
let quartiles values =
  let a = Array.of_list values in
  Array.sort Float.compare a;
  let n = Array.length a in
  let at q =
    let idx = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) and hi = int_of_float (Float.ceil idx) in
    let frac = idx -. Float.floor idx in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  in
  a.(0), at 0.25, at 0.5, at 0.75, a.(n - 1)

let config_values registry settings =
  List.fold_left
    (fun values (name, v) -> Vruntime.Config_registry.Values.set_str values name v)
    (Vruntime.Config_registry.Values.defaults registry)
    settings

(* [--seed N] / [--count N] support for the corpus-driven experiments
   (currently the vfuzz one). *)
let fuzz_seed = ref 42
let fuzz_count = ref 200

(* [--stats-out FILE] support: experiments push the exploration telemetry of
   every pipeline run they make; main flushes the collection once at exit. *)
let stats_out : string option ref = ref None
let collected_sched : Vsched.Exploration_stats.t list ref = ref []
let record_sched s = collected_sched := s :: !collected_sched

let flush_sched () =
  match !stats_out with
  | None -> ()
  | Some path ->
    Vsched.Exploration_stats.save ~path (List.rev !collected_sched);
    note "wrote %d exploration-stats record(s) to %s" (List.length !collected_sched) path

let analyze_case (c : Targets.Cases.known_case) =
  let target = Targets.Cases.target_of c.Targets.Cases.system in
  let opts = c.Targets.Cases.tweak Violet.Pipeline.default_options in
  Violet.Pipeline.analyze_exn ~opts target c.Targets.Cases.param
