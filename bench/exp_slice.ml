(* Independence slicing (DESIGN.md Section 5f): how much of each path
   condition actually reaches the solver once queries are restricted to the
   symbol-disjoint slices touching the branch condition — measured on the
   four target systems, slicing on vs off.

   Two contracts are checked and recorded in BENCH_slice.json:
   - node_guard: slicing never increases the total constraint nodes sent to
     the solver (the nightly CI job greps for "node_guard_ok":true);
   - deterministic: the impact model is byte-identical with slicing on or
     off (modulo the real-wall-clock field). *)

let cases =
  [
    "mysql", "autocommit";
    "postgres", "wal_sync_method";
    "apache", "HostnameLookups";
    "squid", "cache";
  ]

type run_stats = {
  r_wall_s : float;
  r_solver_calls : int;
  r_pre_constraints : int;
  r_pre_nodes : int;
  r_sent_constraints : int;
  r_sent_nodes : int;
  r_sliced_queries : int;
  r_cache_hit_rate : float;
  r_model : string;  (** scrubbed serialized model *)
}

let run_once ~slice target param =
  let opts = { Violet.Pipeline.default_options with Violet.Pipeline.slice } in
  let t0 = Unix.gettimeofday () in
  let a = Violet.Pipeline.analyze_exn ~opts target param in
  let wall = Unix.gettimeofday () -. t0 in
  let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
  Util.record_sched sched;
  let q = sched.Vsched.Exploration_stats.query_sizes in
  let hit_rate =
    match sched.Vsched.Exploration_stats.cache with
    | Some c -> Vsched.Solver_cache.hit_rate c
    | None -> 0.
  in
  {
    r_wall_s = wall;
    r_solver_calls = sched.Vsched.Exploration_stats.solver_queries;
    r_pre_constraints = q.Vsched.Exploration_stats.pre_constraints;
    r_pre_nodes = q.Vsched.Exploration_stats.pre_nodes;
    r_sent_constraints = q.Vsched.Exploration_stats.sent_constraints;
    r_sent_nodes = q.Vsched.Exploration_stats.sent_nodes;
    r_sliced_queries = q.Vsched.Exploration_stats.sliced;
    r_cache_hit_rate = hit_rate;
    r_model = Exp_par.scrub_wall_s (Vmodel.Impact_model.to_string a.Violet.Pipeline.model);
  }

type point = {
  p_system : string;
  p_param : string;
  p_on : run_stats;
  p_off : run_stats;
  p_guard_ok : bool;  (** sent nodes with slicing <= sent nodes without *)
  p_identical : bool;  (** impact models byte-identical on vs off *)
}

let run_case (system, param) =
  let target = Targets.Cases.target_of system in
  let on = run_once ~slice:true target param in
  let off = run_once ~slice:false target param in
  {
    p_system = system;
    p_param = param;
    p_on = on;
    p_off = off;
    p_guard_ok = on.r_sent_nodes <= off.r_sent_nodes;
    p_identical = String.equal on.r_model off.r_model;
  }

let json_of points ~node_guard_ok ~deterministic =
  let side r =
    Printf.sprintf
      "{\"wall_s\":%.4f,\"solver_calls\":%d,\"pre_constraints\":%d,\"pre_nodes\":%d,\"sent_constraints\":%d,\"sent_nodes\":%d,\"sliced_queries\":%d,\"cache_hit_rate\":%.4f}"
      r.r_wall_s r.r_solver_calls r.r_pre_constraints r.r_pre_nodes r.r_sent_constraints
      r.r_sent_nodes r.r_sliced_queries r.r_cache_hit_rate
  in
  let row p =
    Printf.sprintf
      "{\"system\":%S,\"param\":%S,\"slice_on\":%s,\"slice_off\":%s,\"guard_ok\":%b,\"model_identical\":%b}"
      p.p_system p.p_param (side p.p_on) (side p.p_off) p.p_guard_ok p.p_identical
  in
  Printf.sprintf
    "{\"experiment\":\"slice\",\"node_guard_ok\":%b,\"deterministic\":%b,\"points\":[%s]}"
    node_guard_ok deterministic
    (String.concat "," (List.map row points))

let run () =
  Util.section "Independence slicing: solver work on vs off, model identity";
  let points = List.map run_case cases in
  let node_guard_ok = List.for_all (fun p -> p.p_guard_ok) points in
  let deterministic = List.for_all (fun p -> p.p_identical) points in
  Util.print_table
    ~header:
      [ "system"; "param"; "nodes sent (off)"; "nodes sent (on)"; "reduction";
        "sliced queries"; "model" ]
    (List.map
       (fun p ->
         let reduction =
           if p.p_off.r_sent_nodes = 0 then "n/a"
           else
             Printf.sprintf "%.1f%%"
               (100.
               *. (1.
                  -. (float_of_int p.p_on.r_sent_nodes
                     /. float_of_int p.p_off.r_sent_nodes)))
         in
         [
           p.p_system;
           p.p_param;
           Util.i0 p.p_off.r_sent_nodes;
           Util.i0 p.p_on.r_sent_nodes;
           reduction;
           Util.i0 p.p_on.r_sliced_queries;
           (if p.p_identical then "identical" else "DIVERGED");
         ])
       points);
  if not node_guard_ok then
    Util.note "WARNING: slicing increased total solver nodes on some case — guard violated";
  if not deterministic then
    Util.note "WARNING: impact model diverged between slicing on and off";
  let json = json_of points ~node_guard_ok ~deterministic in
  let oc = open_out "BENCH_slice.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_slice.json"
