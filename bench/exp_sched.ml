(* Scheduler experiment: how fast each path-exploration searcher reaches the
   specious states of the MySQL autocommit analysis, and what the solver
   cache saves.  The "steps to 1st poor" column is the global statement-step
   counter when the first state the differential analysis later marks poor
   reached a terminal status — the currency for comparing searchers that all
   explore the same path set under an exhaustive budget. *)

module Ex = Vsymexec.Executor
module Stats = Vsched.Exploration_stats
module Cache = Vsched.Solver_cache

let searchers =
  [
    Ex.Dfs;
    Ex.Bfs;
    Ex.Random_path 11;
    Ex.Coverage_guided;
    Ex.Config_impact { related = [] };
  ]

let analyze ?(solver_cache = true) policy =
  let opts =
    { Violet.Pipeline.default_options with policy; solver_cache }
  in
  Violet.Pipeline.analyze_exn ~opts Targets.Mysql_model.target "autocommit"

let cache_cell = function
  | None -> "off"
  | Some c -> Printf.sprintf "%.0f%% (%d/%d)" (100. *. Cache.hit_rate c) (Cache.hits c) c.Cache.lookups

let run () =
  Util.section "Searcher comparison: MySQL autocommit (steps to first specious state)";
  let rows =
    List.map
      (fun policy ->
        let a = analyze policy in
        let sched = a.Violet.Pipeline.result.Ex.sched in
        Util.record_sched sched;
        let poor =
          a.Violet.Pipeline.diff.Vmodel.Diff_analysis.poor_state_ids
        in
        let first =
          match Stats.first_completion sched ~satisfying:(fun id -> List.mem id poor) with
          | Some c -> Util.i0 c.Stats.at_step
          | None -> "-"
        in
        [
          sched.Stats.searcher;
          Util.i0 sched.Stats.states_completed;
          Util.i0 sched.Stats.states_dropped;
          Util.i0 sched.Stats.steps;
          first;
          Util.i0 sched.Stats.solver_queries;
          Util.i0 sched.Stats.solver_solves;
          cache_cell sched.Stats.cache;
        ])
      searchers
  in
  Util.print_table
    ~header:
      [ "searcher"; "completed"; "dropped"; "steps"; "steps to 1st poor";
        "queries"; "solves"; "cache hits" ]
    rows;
  Util.note "every searcher completes the same path set; only the order differs";
  (* cache ablation: same searcher with and without the solver cache must
     produce the identical impact model, only cheaper *)
  Util.section "Solver cache ablation (Dfs, cache on vs off)";
  let on = analyze Ex.Dfs and off = analyze ~solver_cache:false Ex.Dfs in
  let strip (m : Vmodel.Impact_model.t) =
    Vmodel.Impact_model.to_string { m with Vmodel.Impact_model.analysis_wall_s = 0. }
  in
  let identical =
    String.equal (strip on.Violet.Pipeline.model) (strip off.Violet.Pipeline.model)
  in
  let sched_on = on.Violet.Pipeline.result.Ex.sched
  and sched_off = off.Violet.Pipeline.result.Ex.sched in
  Util.record_sched sched_on;
  Util.record_sched sched_off;
  Util.print_table
    ~header:[ "cache"; "queries"; "solver solves"; "hits" ]
    [
      [ "on"; Util.i0 sched_on.Stats.solver_queries;
        Util.i0 sched_on.Stats.solver_solves; cache_cell sched_on.Stats.cache ];
      [ "off"; Util.i0 sched_off.Stats.solver_queries;
        Util.i0 sched_off.Stats.solver_solves; cache_cell sched_off.Stats.cache ];
    ];
  Util.note "impact model identical cache-on vs cache-off: %s" (Util.yes_no identical)
