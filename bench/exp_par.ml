(* Domain-parallel exploration (DESIGN.md Section 5d): end-to-end speedup of
   the MySQL autocommit analysis at --jobs 1/2/4/8, solver-cache hit rates
   per job count, and the determinism contract — the impact model must be
   byte-identical for every job count (modulo the real-wall-clock field,
   which no scheduling can pin).

   Emits BENCH_par.json next to the console table. *)

let target = Targets.Mysql_model.target
let param = "autocommit"
let job_counts = [ 1; 2; 4; 8 ]
let runs_per_point = 3

(* the one legitimately run-dependent model field *)
let scrub_wall_s text =
  let marker = "(analysis-wall-s " in
  match String.index_opt text '(' with
  | None -> text
  | Some _ -> begin
    let b = Buffer.create (String.length text) in
    let rec copy i =
      if i >= String.length text then Buffer.contents b
      else begin
        let is_marker =
          i + String.length marker <= String.length text
          && String.sub text i (String.length marker) = marker
        in
        if is_marker then begin
          Buffer.add_string b "(analysis-wall-s 0)";
          let j = ref (i + String.length marker) in
          while !j < String.length text && text.[!j] <> ')' do
            incr j
          done;
          copy (!j + 1)
        end
        else begin
          Buffer.add_char b text.[i];
          copy (i + 1)
        end
      end
    in
    copy 0
  end

type point = {
  p_jobs : int;
  p_wall_s : float;  (** median over [runs_per_point] *)
  p_speedup : float;
  p_cache_hit_rate : float;
  p_steals : int;
  p_model : string;  (** scrubbed serialized model *)
}

let run_point ~jobs =
  let opts = { Violet.Pipeline.default_options with Violet.Pipeline.jobs } in
  let results =
    List.init runs_per_point (fun _ ->
        let t0 = Unix.gettimeofday () in
        let a = Violet.Pipeline.analyze_exn ~opts target param in
        let wall = Unix.gettimeofday () -. t0 in
        wall, a)
  in
  let walls = List.sort Float.compare (List.map fst results) in
  let median = List.nth walls (List.length walls / 2) in
  let _, a = List.hd results in
  let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
  Util.record_sched sched;
  let hit_rate =
    match sched.Vsched.Exploration_stats.cache with
    | Some c -> Vsched.Solver_cache.hit_rate c
    | None -> 0.
  in
  let steals =
    List.fold_left
      (fun acc (w : Vsched.Exploration_stats.worker) ->
        acc + w.Vsched.Exploration_stats.w_steals)
      0 sched.Vsched.Exploration_stats.workers
  in
  {
    p_jobs = jobs;
    p_wall_s = median;
    p_speedup = 1.0;
    p_cache_hit_rate = hit_rate;
    p_steals = steals;
    p_model = scrub_wall_s (Vmodel.Impact_model.to_string a.Violet.Pipeline.model);
  }

let json_of points ~cores ~deterministic =
  let row p =
    Printf.sprintf
      "{\"jobs\":%d,\"wall_s\":%.4f,\"speedup\":%.3f,\"cache_hit_rate\":%.4f,\"steals\":%d}"
      p.p_jobs p.p_wall_s p.p_speedup p.p_cache_hit_rate p.p_steals
  in
  Printf.sprintf
    "{\"experiment\":\"par\",\"system\":\"mysql\",\"param\":%S,\"cores\":%d,\"deterministic\":%b,\"points\":[%s]}"
    param cores deterministic
    (String.concat "," (List.map row points))

let run () =
  Util.section "Parallel exploration: speedup, cache hit rates, determinism";
  let points = List.map (fun jobs -> run_point ~jobs) job_counts in
  let base = (List.hd points).p_wall_s in
  let points =
    List.map (fun p -> { p with p_speedup = base /. Float.max p.p_wall_s 1e-9 }) points
  in
  let reference = (List.hd points).p_model in
  let deterministic = List.for_all (fun p -> String.equal p.p_model reference) points in
  let cores = Domain.recommended_domain_count () in
  Util.print_table
    ~header:[ "jobs"; "wall (median of 3)"; "speedup"; "cache hit rate"; "steals"; "model" ]
    (List.map
       (fun p ->
         [
           Util.i0 p.p_jobs;
           Printf.sprintf "%.3f s" p.p_wall_s;
           Util.fx p.p_speedup;
           Printf.sprintf "%.1f%%" (100. *. p.p_cache_hit_rate);
           Util.i0 p.p_steals;
           (if String.equal p.p_model reference then "identical" else "DIVERGED");
         ])
       points);
  Util.note "machine has %d core(s); speedup past 1.0x needs real cores" cores;
  if not deterministic then
    Util.note "WARNING: impact model diverged across job counts — determinism bug";
  let json = json_of points ~cores ~deterministic in
  let oc = open_out "BENCH_par.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_par.json"
