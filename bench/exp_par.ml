(* Domain-parallel exploration (DESIGN.md Section 5e): end-to-end speedup of
   the MySQL autocommit analysis at --jobs 1/2/4/8 in both modes —

   - default: the deterministic reduction runs, so the impact model must be
     byte-identical at every job count (modulo the real-wall-clock field,
     which no scheduling can pin);
   - fast-nondet: the deferred renumbering is skipped, model bytes may vary,
     and the checker's verdicts must still match the sequential reference.

   The gap between the two modes at each job count is the measured
   determinism tax.  Emits BENCH_par.json next to the console table; the
   speedup gate (>= 1.5x at 4 jobs, per mode) only applies on machines with
   at least 4 cores — raw numbers are recorded either way. *)

let target = Targets.Mysql_model.target
let param = "autocommit"
let job_counts = [ 1; 2; 4; 8 ]
let runs_per_point = 3
let speedup_gate = 1.5

(* the one legitimately run-dependent model field *)
let scrub_wall_s text =
  let marker = "(analysis-wall-s " in
  match String.index_opt text '(' with
  | None -> text
  | Some _ -> begin
    let b = Buffer.create (String.length text) in
    let rec copy i =
      if i >= String.length text then Buffer.contents b
      else begin
        let is_marker =
          i + String.length marker <= String.length text
          && String.sub text i (String.length marker) = marker
        in
        if is_marker then begin
          Buffer.add_string b "(analysis-wall-s 0)";
          let j = ref (i + String.length marker) in
          while !j < String.length text && text.[!j] <> ')' do
            incr j
          done;
          copy (!j + 1)
        end
        else begin
          Buffer.add_char b text.[i];
          copy (i + 1)
        end
      end
    in
    copy 0
  end

type point = {
  p_jobs : int;
  p_wall_s : float;  (** median over [runs_per_point] *)
  p_speedup : float;  (** vs the same mode's jobs=1 point *)
  p_cache_hit_rate : float;
  p_coalesced : int;
  p_steals : int;
  p_batches : int;
  p_queries_per_batch : float;
  p_batch_saved : int;
  p_model : string;  (** scrubbed serialized model *)
  p_verdict : string;  (** order-insensitive checker-findings fingerprint *)
}

let verdict_of (a : Violet.Pipeline.analysis) =
  match
    Vchecker.Checker.check_current ~model:a.Violet.Pipeline.model
      ~registry:target.Violet.Pipeline.registry
      ~file:(Vchecker.Config_file.parse "") ()
  with
  | Error e -> "error: " ^ e
  | Ok rep -> Vfuzz.Oracle.verdict_fingerprint rep.Vchecker.Checker.findings

let run_point ~fast_nondet ~jobs =
  let opts = { Violet.Pipeline.default_options with Violet.Pipeline.jobs; fast_nondet } in
  let results =
    List.init runs_per_point (fun _ ->
        let t0 = Unix.gettimeofday () in
        let a = Violet.Pipeline.analyze_exn ~opts target param in
        let wall = Unix.gettimeofday () -. t0 in
        wall, a)
  in
  let walls = List.sort Float.compare (List.map fst results) in
  let median = List.nth walls (List.length walls / 2) in
  let _, a = List.hd results in
  let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
  Util.record_sched sched;
  let hit_rate, coalesced =
    match sched.Vsched.Exploration_stats.cache with
    | Some c -> Vsched.Solver_cache.hit_rate c, c.Vsched.Solver_cache.coalesced
    | None -> 0., 0
  in
  let steals =
    List.fold_left
      (fun acc (w : Vsched.Exploration_stats.worker) ->
        acc + w.Vsched.Exploration_stats.w_steals)
      0 sched.Vsched.Exploration_stats.workers
  in
  let batches, queries_per_batch, batch_saved =
    match sched.Vsched.Exploration_stats.batch with
    | Some b ->
      ( b.Vsched.Exploration_stats.b_batches,
        (if b.Vsched.Exploration_stats.b_batches = 0 then 0.
         else
           float_of_int b.Vsched.Exploration_stats.b_queries
           /. float_of_int b.Vsched.Exploration_stats.b_batches),
        b.Vsched.Exploration_stats.b_saved )
    | None -> 0, 0., 0
  in
  {
    p_jobs = jobs;
    p_wall_s = median;
    p_speedup = 1.0;
    p_cache_hit_rate = hit_rate;
    p_coalesced = coalesced;
    p_steals = steals;
    p_batches = batches;
    p_queries_per_batch = queries_per_batch;
    p_batch_saved = batch_saved;
    p_model = scrub_wall_s (Vmodel.Impact_model.to_string a.Violet.Pipeline.model);
    p_verdict = verdict_of a;
  }

let run_mode ~fast_nondet =
  let points = List.map (fun jobs -> run_point ~fast_nondet ~jobs) job_counts in
  let base = (List.hd points).p_wall_s in
  List.map (fun p -> { p with p_speedup = base /. Float.max p.p_wall_s 1e-9 }) points

let point_at points jobs = List.find (fun p -> p.p_jobs = jobs) points

let json_of ~cores ~default_points ~fast_points ~byte_identical ~verdict_identical
    ~tax_pct ~gate_applicable ~gate_ok =
  let row mode p =
    Printf.sprintf
      "{\"mode\":%S,\"jobs\":%d,\"wall_s\":%.4f,\"speedup\":%.3f,\"cache_hit_rate\":%.4f,\"coalesced\":%d,\"steals\":%d,\"feas_batches\":%d,\"queries_per_batch\":%.2f,\"batch_saved_roundtrips\":%d}"
      mode p.p_jobs p.p_wall_s p.p_speedup p.p_cache_hit_rate p.p_coalesced p.p_steals
      p.p_batches p.p_queries_per_batch p.p_batch_saved
  in
  Printf.sprintf
    "{\"experiment\":\"par\",\"system\":\"mysql\",\"param\":%S,\"cores\":%d,\"byte_identical_default\":%b,\"verdict_identical_fast\":%b,\"determinism_tax_pct_4j\":%.1f,\"speedup_gate\":%.1f,\"speedup_gate_applicable\":%b,\"speedup_gate_ok\":%b,\"points\":[%s]}"
    param cores byte_identical verdict_identical tax_pct speedup_gate gate_applicable
    gate_ok
    (String.concat ","
       (List.map (row "default") default_points @ List.map (row "fast-nondet") fast_points))

let run () =
  Util.section "Parallel exploration: two modes, speedup, and the determinism tax";
  let default_points = run_mode ~fast_nondet:false in
  let fast_points = run_mode ~fast_nondet:true in
  let reference = (List.hd default_points).p_model in
  let byte_identical =
    List.for_all (fun p -> String.equal p.p_model reference) default_points
  in
  let ref_verdict = (List.hd default_points).p_verdict in
  let verdict_identical =
    List.for_all
      (fun p -> String.equal p.p_verdict ref_verdict)
      (default_points @ fast_points)
  in
  (* determinism tax at 4 jobs: how much slower the byte-identical mode is
     than fast-nondet on the same machine *)
  let d4 = point_at default_points 4 and f4 = point_at fast_points 4 in
  let tax_pct = 100. *. ((d4.p_wall_s -. f4.p_wall_s) /. Float.max f4.p_wall_s 1e-9) in
  let cores = Domain.recommended_domain_count () in
  let gate_applicable = cores >= 4 in
  let gate_ok =
    (not gate_applicable)
    || (d4.p_speedup >= speedup_gate && f4.p_speedup >= speedup_gate)
  in
  let table mode points =
    Util.print_table
      ~header:
        [
          "mode"; "jobs"; "wall (median of 3)"; "speedup"; "hit rate"; "steals";
          "batches"; "q/batch"; "saved"; "identity";
        ]
      (List.map
         (fun p ->
           [
             mode;
             Util.i0 p.p_jobs;
             Printf.sprintf "%.3f s" p.p_wall_s;
             Util.fx p.p_speedup;
             Printf.sprintf "%.1f%%" (100. *. p.p_cache_hit_rate);
             Util.i0 p.p_steals;
             Util.i0 p.p_batches;
             Util.f2 p.p_queries_per_batch;
             Util.i0 p.p_batch_saved;
             (if String.equal p.p_model reference then "bytes"
              else if String.equal p.p_verdict ref_verdict then "verdicts"
              else "DIVERGED");
           ])
         points)
  in
  table "default" default_points;
  table "fast-nondet" fast_points;
  Util.note "machine has %d core(s); speedup past 1.0x needs real cores" cores;
  Util.note "determinism tax at 4 jobs: %.1f%% (default vs fast-nondet wall)" tax_pct;
  if not byte_identical then
    Util.note "WARNING: default-mode impact model diverged across job counts";
  if not verdict_identical then
    Util.note "WARNING: verdicts diverged — fast-nondet broke its contract";
  if gate_applicable && not gate_ok then
    Util.note "WARNING: speedup gate (%.1fx at 4 jobs) missed" speedup_gate;
  let json =
    json_of ~cores ~default_points ~fast_points ~byte_identical ~verdict_identical
      ~tax_pct ~gate_applicable ~gate_ok
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Util.note "wrote BENCH_par.json"
