(* Ablations of the design choices DESIGN.md calls out:
   1. related-set selection vs target-only vs all-symbolic (Section 4.2);
   2. similarity/comparability-guided pairing vs raw all-pairs (Section 4.6);
   3. selective-concretization relaxation rules on/off (Section 5.4);
   4. deferred record matching vs on-the-fly matching (Section 5.3). *)

module P = Violet.Pipeline

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

let ablation_symbolic_set () =
  Fmt.pr "@.1. symbolic-set selection (mysql/autocommit):@.";
  let target = Targets.Mysql_model.target in
  let case = Targets.Cases.find_known "c1" in
  let row label opts =
    let a, wall = timed (fun () -> P.analyze_exn ~opts target "autocommit") in
    let detected =
      Violet.Detect.detected target.P.registry a ~poor:case.Targets.Cases.poor_setting
    in
    let st = a.P.result.Vsymexec.Executor.stats in
    [
      label;
      Util.i0 a.P.model.Vmodel.Impact_model.explored_states;
      Util.i0 st.Vsymexec.Executor.solver_calls;
      Util.f2 wall;
      Util.yes_no detected;
    ]
  in
  Util.print_table
    ~header:[ "symbolic set"; "states"; "solver calls"; "wall s"; "c1 detected" ]
    [
      row "target only" { P.default_options with P.include_related = false };
      row "target + related (default)" P.default_options;
      row "all hookable params"
        {
          P.default_options with
          P.all_symbolic = true;
          P.budget = Vresilience.Budget.with_max_states P.default_options.P.budget 2048;
        };
    ]

let ablation_pairing () =
  Fmt.pr "@.2. pair selection (mysql/autocommit):@.";
  let a = P.analyze_exn Targets.Mysql_model.target "autocommit" in
  let rows = a.P.rows in
  let n = List.length rows in
  let all_pairs = n * (n - 1) / 2 in
  let guided = List.length a.P.diff.Vmodel.Diff_analysis.pairs in
  (* raw mode: drop the comparability rules by comparing every pair directly *)
  let raw =
    let count = ref 0 in
    let rec go = function
      | [] -> ()
      | r :: rest ->
        List.iter
          (fun r' ->
            let slow, fast =
              if
                r.Vmodel.Cost_row.traced_latency_us >= r'.Vmodel.Cost_row.traced_latency_us
              then r, r'
              else r', r
            in
            match Vmodel.Diff_analysis.compare_pair ~threshold:1.0 ~slow ~fast with
            | Some _ -> incr count
            | None -> ())
          rest;
        go rest
    in
    go rows;
    !count
  in
  Util.print_table
    ~header:[ "pairing"; "pairs flagged"; "of possible" ]
    [
      [ "comparability-guided (default)"; Util.i0 guided; Util.i0 all_pairs ];
      [ "raw all-pairs"; Util.i0 raw; Util.i0 all_pairs ];
    ];
  Util.note "raw pairing mixes input-driven differences into the verdicts (misleading pairs)"

let ablation_relaxation () =
  Fmt.pr "@.3. selective-concretization relaxation rules (mysql/general_log):@.";
  (* the paper's Section 5.4 point: strict concretization sacrifices
     completeness (library calls pin symbolic inputs, collapsing workload
     classes); the relaxation rules restore the explored-state coverage *)
  let target = Targets.Mysql_model.target in
  let case = Targets.Cases.find_known "c3" in
  let row label opts =
    let a, wall = timed (fun () -> P.analyze_exn ~opts target "general_log") in
    let st = a.P.result.Vsymexec.Executor.stats in
    let detected =
      Violet.Detect.detected target.P.registry a ~poor:case.Targets.Cases.poor_setting
    in
    [
      label;
      Util.i0 a.P.model.Vmodel.Impact_model.explored_states;
      Util.i0 st.Vsymexec.Executor.concretizations;
      Util.i0 st.Vsymexec.Executor.solver_calls;
      Util.f2 wall;
      Util.yes_no detected;
    ]
  in
  Util.print_table
    ~header:
      [ "mode"; "states explored"; "concretizations"; "solver calls"; "wall s";
        "c3 detected" ]
    [
      row "relaxation rules on (default)" P.default_options;
      row "strict concretization" { P.default_options with P.relaxation_rules = false };
    ];
  Util.note "strict mode pins symbolic inputs at library calls: fewer workload classes explored"


let ablation_matching () =
  Fmt.pr "@.4. record matching strategy (tracer):@.";
  (* a long single-path trace: match once at termination (deferred, the
     design) vs re-matching after every record (on-the-fly) *)
  let a = P.analyze_exn Targets.Mysql_model.target "autocommit" in
  let signals =
    List.concat_map Vsymexec.Sym_state.signals_in_order
      a.P.result.Vsymexec.Executor.states
  in
  let signals = List.filteri (fun i _ -> i < 6000) signals in
  let deferred, t_deferred =
    timed (fun () -> List.length (Vtrace.Record_match.match_records signals))
  in
  let _, t_eager =
    timed (fun () ->
        let prefix = ref [] in
        List.iteri
          (fun i r ->
            prefix := r :: !prefix;
            if i mod 4 = 0 then
              ignore (Vtrace.Record_match.match_records (List.rev !prefix)))
          signals)
  in
  Util.print_table
    ~header:[ "strategy"; "records"; "matched"; "wall s" ]
    [
      [ "deferred (default)"; Util.i0 (List.length signals); Util.i0 deferred;
        Util.f2 t_deferred ];
      [ "on-the-fly (every 4th signal)"; Util.i0 (List.length signals); Util.i0 deferred;
        Util.f2 t_eager ];
    ]

let run () =
  Util.section "Ablations";
  ablation_symbolic_set ();
  ablation_pairing ();
  ablation_relaxation ();
  ablation_matching ()
