(* Figures 12 and 13: the controlled user study, reproduced as a seeded
   stochastic simulation (documented substitution — see DESIGN.md).

   20 simulated programmers judge 6 configuration files each, drawn from 12
   prepared cases (6 parameters x bad/good variants).  Group A consults the
   Violet checker (whose verdicts come from actually running the checker on
   each case's impact model); group B relies on their own expertise. *)

module Checker = Vchecker.Checker

type study_case = {
  sc_id : int;
  case_id : string;  (* known-case id driving the model *)
  bad_variant : bool;
}

let params_under_study = [ "c1"; "c3"; "c5"; "c7"; "c8"; "c11" ]

let study_cases =
  List.concat
    (List.mapi
       (fun i case_id ->
         [
           { sc_id = (2 * i) + 1; case_id; bad_variant = true };
           { sc_id = (2 * i) + 2; case_id; bad_variant = false };
         ])
       params_under_study)

(* Run the real checker once per study case; its verdict is what group A
   participants see. *)
let checker_verdicts () =
  List.map
    (fun sc ->
      let c = Targets.Cases.find_known sc.case_id in
      let target = Targets.Cases.target_of c.Targets.Cases.system in
      let registry = target.Violet.Pipeline.registry in
      let analysis = Util.analyze_case c in
      let setting =
        if sc.bad_variant then c.Targets.Cases.poor_setting else c.Targets.Cases.good_setting
      in
      let file_text =
        String.concat "\n" (List.map (fun (k, v) -> k ^ " = " ^ v) setting)
      in
      let file = Vchecker.Config_file.parse file_text in
      let report =
        match
          Checker.check_current ~model:analysis.Violet.Pipeline.model ~registry ~file ()
        with
        | Ok r -> r
        | Error e -> failwith e
      in
      let flagged = report.Checker.findings <> [] in
      sc, flagged)
    study_cases

type group = A | B

let simulate () =
  let rng = Random.State.make [| 20201104 |] in
  let verdicts = checker_verdicts () in
  let participants = List.init 20 (fun i -> i, (if i < 10 then A else B)) in
  let judge group sc_correct_checker skill =
    match group with
    | B -> Random.State.float rng 1.0 < skill
    | A ->
      (* follows the checker most of the time; falls back to own judgment *)
      if Random.State.float rng 1.0 < 0.92 then sc_correct_checker
      else Random.State.float rng 1.0 < skill
  in
  let results = Hashtbl.create 32 in
  let times = Hashtbl.create 8 in
  List.iter
    (fun (pid, group) ->
      let skill = 0.55 +. Random.State.float rng 0.3 in
      (* each participant judges 6 of the 12 files *)
      let assigned = List.filteri (fun i _ -> (i + pid) mod 2 = 0) verdicts in
      List.iter
        (fun ((sc : study_case), flagged) ->
          let checker_right = flagged = sc.bad_variant in
          let correct = judge group checker_right skill in
          let key = sc.sc_id, group in
          let ok, n = match Hashtbl.find_opt results key with Some x -> x | None -> 0, 0 in
          Hashtbl.replace results key ((ok + if correct then 1 else 0), n + 1);
          let base = 8. +. Random.State.float rng 8. in
          let minutes = match group with A -> base *. 0.79 | B -> base in
          let tot, cnt = match Hashtbl.find_opt times group with Some x -> x | None -> 0., 0 in
          Hashtbl.replace times group (tot +. minutes, cnt + 1))
        assigned)
    participants;
  results, times

let run () =
  Util.section "Figures 12-13: user study (simulated participants, real checker verdicts)";
  let results, times = simulate () in
  let acc group sc_id =
    match Hashtbl.find_opt results (sc_id, group) with
    | Some (ok, n) when n > 0 -> Some (100. *. float_of_int ok /. float_of_int n)
    | _ -> None
  in
  let rows =
    List.map
      (fun sc ->
        let cell g = match acc g sc.sc_id with Some p -> Printf.sprintf "%.0f%%" p | None -> "-" in
        [ Util.i0 sc.sc_id; sc.case_id; (if sc.bad_variant then "bad" else "good");
          cell A; cell B ])
      study_cases
  in
  Util.print_table ~header:[ "case"; "from"; "variant"; "group A (checker)"; "group B" ] rows;
  let overall group =
    let ok, n =
      Hashtbl.fold
        (fun (_, g) (ok, n) (accok, accn) ->
          if g = group then (accok + ok, accn + n) else (accok, accn))
        results (0, 0)
    in
    100. *. float_of_int ok /. float_of_int (max n 1)
  in
  Util.note "overall accuracy: group A %.0f%% vs group B %.0f%% (paper: 95%% vs 70%%)"
    (overall A) (overall B);
  let avg group =
    match Hashtbl.find_opt times group with
    | Some (tot, n) when n > 0 -> tot /. float_of_int n
    | _ -> 0.
  in
  Util.note "average decision time: group A %.1f min vs group B %.1f min (paper: 9.6 vs 12.1)"
    (avg A) (avg B)
