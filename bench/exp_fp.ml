(* Section 7.8: false positives.  Ten parameters are re-analyzed with engine
   measurement noise injected (latency jitter plus occasional delayed return
   signals — the gettimeofday artifact the paper describes); every reported
   suspicious pair is validated natively and the false-positive rate
   reported. *)

let sampled_params =
  [
    "mysql", "autocommit";
    "mysql", "sync_binlog";
    "mysql", "general_log";
    "mysql", "table_open_cache";
    "postgres", "wal_sync_method";
    "postgres", "max_wal_size";
    "postgres", "work_mem";
    "apache", "HostnameLookups";
    "apache", "BufferedLogs";
    "squid", "cache";
  ]

let noise =
  {
    Vsymexec.Executor.jitter = 0.10;
    signal_delay_prob = 0.02;
    signal_delay_us = 450.;
    seed = 7;
  }

let run () =
  Util.section "Section 7.8: false positives under measurement noise";
  let total_pairs = ref 0 and fp = ref 0 and checked = ref 0 in
  let rows =
    List.filter_map
      (fun (system, param) ->
        let target = Targets.Cases.target_of system in
        let entry = Targets.Cases.query_entry_of system in
        let opts =
          { Violet.Pipeline.default_options with Violet.Pipeline.noise = Some noise }
        in
        match Violet.Pipeline.analyze ~opts target param with
        | Error e ->
          Some [ system; param; "error: " ^ Violet.Pipeline.error_to_string e; "-"; "-" ]
        | Ok a ->
          let pairs = a.Violet.Pipeline.diff.Vmodel.Diff_analysis.pairs in
          let sample = List.filteri (fun i _ -> i < 25) pairs in
          let this_fp = ref 0 and this_checked = ref 0 in
          List.iter
            (fun pair ->
              match Violet.Validate.confirms ~threshold:1.0 ~target ~entry pair with
              | Some true -> incr this_checked
              | Some false ->
                incr this_checked;
                incr this_fp
              | None -> ())
            sample;
          total_pairs := !total_pairs + List.length pairs;
          fp := !fp + !this_fp;
          checked := !checked + !this_checked;
          Some
            [
              system;
              param;
              Util.i0 (List.length pairs);
              Util.i0 !this_checked;
              Util.i0 !this_fp;
            ])
      sampled_params
  in
  Util.print_table
    ~header:[ "system"; "parameter"; "pairs"; "validated"; "false positives" ]
    rows;
  let rate =
    if !checked = 0 then 0. else 100. *. float_of_int !fp /. float_of_int !checked
  in
  Util.note "false-positive rate: %.1f%% of validated pairs (paper: 6.4%%)" rate
