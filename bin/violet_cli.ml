(* The Violet command-line tool.

   Subcommands mirror the paper's workflow (Figure 6):
     violet list-params <system>            parameter registry inventory
     violet related <system> <param>        static related-parameter analysis
     violet analyze <system> <param>        run the pipeline, print the report
     violet check <system> <param> <file>   checker mode 2 on a config file
     violet check-update <system> <param> <old> <new>   checker mode 1
     violet serve --models <dir>            continuous-checking daemon
     violet client <verb> ...               talk to a running daemon

   Systems are the bundled target models: mysql, postgres, apache, squid.
   Models can be saved with --save and reused by the checker with --model,
   the deployment the paper describes (analyze once, check continuously) —
   or exported with --export into a model-registry directory served by the
   vserve daemon. *)

open Cmdliner

let system_arg =
  let doc = "Target system (mysql, postgres, apache or squid)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)

let param_arg pos_idx =
  let doc = "Configuration parameter name." in
  Arg.(required & pos pos_idx (some string) None & info [] ~docv:"PARAM" ~doc)

let target_of_system system =
  match Targets.Cases.find_target system with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown system %s (expected one of: %s)" system
         (String.concat ", " Targets.Cases.systems))

let or_die = function
  | Ok v -> v
  | Error msg ->
    Fmt.epr "violet: %s@." msg;
    exit 1

(* ------------------------------------------------------------------ *)

let list_params system =
  let target = or_die (target_of_system system) in
  let reg = target.Violet.Pipeline.registry in
  Fmt.pr "%-34s %-22s %-8s %-6s %s@." "parameter" "type" "perf" "hook" "description";
  List.iter
    (fun (p : Vruntime.Config_registry.param) ->
      let ty =
        match p.Vruntime.Config_registry.kind with
        | Vruntime.Config_registry.Bool -> "bool"
        | Vruntime.Config_registry.Int { lo; hi } -> Printf.sprintf "int[%d..%d]" lo hi
        | Vruntime.Config_registry.Enum vs -> "enum{" ^ String.concat "," vs ^ "}"
        | Vruntime.Config_registry.Float_choices fs ->
          "float{" ^ String.concat "," (List.map (Printf.sprintf "%g") fs) ^ "}"
      in
      let ty = if String.length ty > 22 then String.sub ty 0 19 ^ "..." else ty in
      let hook =
        match p.Vruntime.Config_registry.hook with
        | Vruntime.Config_registry.Hooked -> "yes"
        | Vruntime.Config_registry.No_hook_function_pointer -> "fnptr"
        | Vruntime.Config_registry.No_hook_complex_type -> "complex"
      in
      Fmt.pr "%-34s %-22s %-8s %-6s %s@." p.Vruntime.Config_registry.name ty
        (if p.Vruntime.Config_registry.perf_related then "perf" else "-")
        hook p.Vruntime.Config_registry.summary)
    (Vruntime.Config_registry.params reg);
  0

let related system param =
  let target = or_die (target_of_system system) in
  let r = Violet.Pipeline.related_params target param in
  Fmt.pr "target:     %s@." r.Vanalysis.Related_config.target;
  Fmt.pr "enablers:   [%s]@." (String.concat ", " r.Vanalysis.Related_config.enablers);
  Fmt.pr "influenced: [%s]@." (String.concat ", " r.Vanalysis.Related_config.influenced);
  Fmt.pr "related:    [%s]@." (String.concat ", " r.Vanalysis.Related_config.related);
  0

(* Whole-system incremental analysis (DESIGN.md Section 5k).  The first
   run (or --no-incremental) builds the baseline directory from scratch;
   later runs diff the current program against the manifest's content
   keys, re-explore only invalidated slices, splice the rest in verbatim
   and report upgrade findings against the previous baseline's models. *)
let analyze_incremental ~opts ~dir ~no_incremental (target : Violet.Pipeline.target) =
  let scratch () =
    let t, _ = or_die (Vinc.Baseline.build ~opts ~dir target) in
    Fmt.pr "baseline %s: built from scratch, %d slices@." dir
      (List.length t.Vinc.Baseline.mf_slices);
    0
  in
  match Vinc.Baseline.load ~dir with
  | Error _ -> scratch ()
  | Ok _ when no_incremental -> scratch ()
  | Ok old_manifest ->
    (* pre-load the previous version's models: Splice.run rewrites the
       directory in place, and upgrade checking needs both sides *)
    let old_models =
      List.filter_map
        (fun (s : Vinc.Baseline.slice) ->
          match Vinc.Baseline.load_model ~dir ~param:s.Vinc.Baseline.sl_param with
          | Ok (m, d) -> Some (s.Vinc.Baseline.sl_param, (m, d))
          | Error _ -> None)
        old_manifest.Vinc.Baseline.mf_slices
    in
    let r = or_die (Vinc.Splice.run ~opts ~baseline:dir ~out:dir target) in
    let d = r.Vinc.Splice.sp_diff in
    Fmt.pr "incremental: %d unchanged, %d modified, %d added, %d removed functions@."
      (List.length d.Vinc.Irdiff.unchanged)
      (List.length d.Vinc.Irdiff.modified)
      (List.length d.Vinc.Irdiff.added)
      (List.length d.Vinc.Irdiff.removed);
    (match r.Vinc.Splice.sp_conservative with
    | Some reason -> Fmt.pr "incremental: conservative re-exploration (%s)@." reason
    | None -> ());
    Fmt.pr "incremental: reused %d slices, re-explored %d (%.0f%% reused)@."
      (List.length r.Vinc.Splice.sp_reused)
      (List.length r.Vinc.Splice.sp_reexplored)
      (100. *. Vinc.Splice.reuse_fraction r);
    let findings = ref 0 in
    List.iter
      (fun (param, new_model) ->
        match List.assoc_opt param old_models with
        | None -> () (* parameter new in this version: nothing to compare *)
        | Some (old_model, old_digest) ->
          let report =
            Vchecker.Checker.check_upgrade ~old_digest
              ~new_digest:(Vinc.Baseline.model_digest new_model) ~old_model ~new_model ()
          in
          if report.Vchecker.Checker.findings <> [] then begin
            findings := !findings + List.length report.Vchecker.Checker.findings;
            Fmt.pr "%s: %a" param Vchecker.Checker.pp_report report
          end)
      r.Vinc.Splice.sp_models;
    if !findings = 0 then begin
      Fmt.pr "upgrade check: no specious configuration findings@.";
      0
    end
    else 2

let analyze system param save export max_states threshold no_related searcher solver_cache
    no_slice deadline checkpoint resume chaos jobs fast_nondet baseline cache_dir
    no_incremental =
  let target = or_die (target_of_system system) in
  let chaos =
    match chaos with
    | None -> None
    | Some spec -> Some (or_die (Vresilience.Chaos.of_string spec))
  in
  let budget =
    Vresilience.Budget.with_deadline
      (Vresilience.Budget.with_max_states Vresilience.Budget.default max_states)
      deadline
  in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.budget;
      threshold;
      include_related = not no_related;
      policy = searcher;
      solver_cache;
      slice = not no_slice;
      checkpoint =
        Option.map
          (fun path -> { Violet.Pipeline.path; every_picks = 32 })
          checkpoint;
      resume;
      chaos;
      jobs = (match jobs with Some j -> j | None -> Vpar.Pool.default_jobs ());
      fast_nondet = fast_nondet || Vpar.Pool.default_fast_nondet ();
      cache_dir =
        (match cache_dir with
        | Some _ -> cache_dir
        | None -> Violet.Pipeline.default_options.Violet.Pipeline.cache_dir);
    }
  in
  match baseline with
  | Some dir -> analyze_incremental ~opts ~dir ~no_incremental target
  | None ->
  let param =
    match param with
    | Some p -> p
    | None ->
      Fmt.epr "violet: PARAM is required unless --baseline is given@.";
      exit 1
  in
  (match Violet.Pipeline.analyze ~opts target param with
  | Error e ->
    Fmt.epr "violet: %s@." (Violet.Pipeline.error_to_string e);
    1
  | Ok a ->
    Fmt.pr "%a" Violet.Report.pp_analysis a;
    let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
    Fmt.pr "exploration: %a@." Vsched.Exploration_stats.pp sched;
    (if opts.Violet.Pipeline.cache_dir <> None then
       let hits =
         match sched.Vsched.Exploration_stats.cache with
         | Some stats -> Vsched.Solver_cache.hits stats
         | None -> 0
       in
       Fmt.pr "cross-run solver cache: primed %d entries, %d cache hits, %d solver solves@."
         a.Violet.Pipeline.cache_primed hits
         sched.Vsched.Exploration_stats.solver_solves);
    (if Vmodel.Impact_model.is_degraded a.Violet.Pipeline.model then
       Fmt.pr
         "WARNING: analysis was degraded under budget pressure; the model is \
          conservative, not complete@.");
    (match save with
    | Some path ->
      Vmodel.Impact_model.save a.Violet.Pipeline.model path;
      Fmt.pr "impact model saved to %s@." path
    | None -> ());
    (match export with
    | Some path ->
      or_die (Violet.Pipeline.export_model a.Violet.Pipeline.model path);
      Fmt.pr "impact model exported to %s (registry format)@." path
    | None -> ());
    0)

let load_model_or_analyze target param model_path =
  match model_path with
  | Some path -> Vmodel.Impact_model.load path
  | None ->
    Result.map_error Violet.Pipeline.error_to_string
      (Result.map
         (fun (a : Violet.Pipeline.analysis) -> a.Violet.Pipeline.model)
         (Violet.Pipeline.analyze target param))

let load_config_file path =
  let file = or_die (Vchecker.Config_file.load path) in
  List.iter
    (fun (line, msg) -> Fmt.epr "violet: %s:%d: %s (line skipped)@." path line msg)
    (Vchecker.Config_file.issues file);
  file

(* Row-decision backend selection, shared by check, check-update, serve and
   fleet start (DESIGN.md Section 5j). *)
let check_mode_conv =
  let parse s =
    match Vchecker.Checker.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error (`Msg (Printf.sprintf "invalid check mode %s (solver|materialized|hybrid)" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Vchecker.Checker.mode_to_string m))

let check_mode_opt =
  Arg.(
    value
    & opt check_mode_conv Vchecker.Checker.Hybrid
    & info [ "check-mode" ] ~docv:"MODE"
        ~doc:
          "Row-decision backend: $(b,solver) (substitute-simplify-solve), \
           $(b,materialized) (compiled decision tables, built on the fly when no \
           registry artifact exists) or $(b,hybrid) (compiled tables when the \
           registry built them at load time, solver otherwise).  All three produce \
           byte-identical findings.")

let joint_max_nodes_opt =
  Arg.(
    value
    & opt int Vchecker.Checker.default_joint_input_max_nodes
    & info [ "joint-max-nodes" ] ~docv:"N"
        ~doc:
          "Node budget of the checker's joint-input feasibility gate.  The \
           registry's compiled feasibility tables are keyed to it: a mismatched \
           budget falls back to a live solver call per pair.")

let check system param file model_path mode joint_input_max_nodes =
  let target = or_die (target_of_system system) in
  let model = or_die (load_model_or_analyze target param model_path) in
  let file = load_config_file file in
  let report =
    or_die
      (Vchecker.Checker.check_current ~mode ~joint_input_max_nodes ~model
         ~registry:target.Violet.Pipeline.registry ~file ())
  in
  Fmt.pr "%a" Vchecker.Checker.pp_report report;
  if report.Vchecker.Checker.findings = [] then 0 else 2

let check_update system param old_file new_file model_path mode joint_input_max_nodes =
  let target = or_die (target_of_system system) in
  let model = or_die (load_model_or_analyze target param model_path) in
  let old_file = load_config_file old_file in
  let new_file = load_config_file new_file in
  let report =
    or_die
      (Vchecker.Checker.check_update ~mode ~joint_input_max_nodes ~model
         ~registry:target.Violet.Pipeline.registry ~old_file ~new_file ())
  in
  Fmt.pr "%a" Vchecker.Checker.pp_report report;
  if report.Vchecker.Checker.findings = [] then 0 else 2

let coverage system =
  let target = or_die (target_of_system system) in
  let params = Vruntime.Config_registry.params target.Violet.Pipeline.registry in
  let analyzable = Violet.Pipeline.analyzable_params target in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.budget =
        Vresilience.Budget.with_max_states Vresilience.Budget.default 512;
    }
  in
  let derived =
    List.filter
      (fun p ->
        match Violet.Pipeline.analyze ~opts target p with
        | Ok a -> a.Violet.Pipeline.rows <> []
        | Error _ -> false)
      analyzable
  in
  Fmt.pr "%s: %d parameters, %d analyzable, %d models derived (%.1f%%)@." system
    (List.length params) (List.length analyzable) (List.length derived)
    (100. *. float_of_int (List.length derived) /. float_of_int (List.length params));
  List.iter (fun p -> Fmt.pr "  %s@." p) derived;
  0

let dump_trace system param out =
  let target = or_die (target_of_system system) in
  match Violet.Pipeline.analyze target param with
  | Error e ->
    Fmt.epr "violet: %s@." (Violet.Pipeline.error_to_string e);
    1
  | Ok a ->
    let traces = Vtrace.Trace_file.of_result a.Violet.Pipeline.result in
    Vtrace.Trace_file.save traces out;
    Fmt.pr "wrote %d state traces to %s@." (List.length traces) out;
    0

let analyze_trace path threshold =
  let traces = or_die (Vtrace.Trace_file.load path) in
  let rows =
    List.map
      (fun t -> Vmodel.Cost_row.of_profile (Vtrace.Trace_file.profile_of_state_trace t))
      traces
  in
  let diff = Vmodel.Diff_analysis.analyze ~threshold rows in
  Fmt.pr "%d states, %d poor, %d suspicious pairs (threshold %.0f%%)@." (List.length rows)
    (List.length diff.Vmodel.Diff_analysis.poor_state_ids)
    (List.length diff.Vmodel.Diff_analysis.pairs)
    (100. *. threshold);
  List.iter
    (fun (p : Vmodel.Diff_analysis.poor_pair) ->
      Fmt.pr "  state %d vs %d: %.1fx (%s)@." p.Vmodel.Diff_analysis.slow.Vmodel.Cost_row.state_id
        p.Vmodel.Diff_analysis.fast.Vmodel.Cost_row.state_id
        p.Vmodel.Diff_analysis.worst_ratio
        (Vmodel.Diff_analysis.trigger_label p.Vmodel.Diff_analysis.triggers))
    (List.filteri (fun i _ -> i < 12) diff.Vmodel.Diff_analysis.pairs);
  0

(* ------------------------------------------------------------------ *)
(* The continuous-checking service: a daemon serving the model registry,
   and a thin client speaking the newline-delimited JSON protocol. *)

let serve addr models max_queue max_batch no_batch request_deadline shed_pressure jobs
    refresh no_shutdown check_mode joint_input_max_nodes =
  let addr = or_die (Vserve.Client.addr_of_string addr) in
  let resolve_registry (m : Vmodel.Impact_model.t) =
    Option.map
      (fun t -> t.Violet.Pipeline.registry)
      (Targets.Cases.find_target m.Vmodel.Impact_model.system)
  in
  let opts =
    {
      (Vserve.Server.default_options ~addr ~models_dir:models) with
      Vserve.Server.resolve_registry;
      max_queue;
      max_batch;
      batching = not no_batch;
      request_deadline_s = request_deadline;
      shed_pressure;
      jobs = (match jobs with Some j -> j | None -> Vpar.Pool.default_jobs ());
      refresh_every_s = refresh;
      allow_shutdown = not no_shutdown;
      check_mode;
      joint_input_max_nodes;
    }
  in
  Fmt.pr "violet serve: listening on %s, models from %s@."
    (Vserve.Client.addr_to_string addr)
    models;
  or_die (Vserve.Server.run opts);
  0

let with_client addr f =
  let addr = or_die (Vserve.Client.addr_of_string addr) in
  (* retry briefly: "start the daemon, then the client" scripts race the bind *)
  let c = or_die (Vserve.Client.connect_retry ~deadline_s:2.0 addr) in
  Fun.protect ~finally:(fun () -> Vserve.Client.close c) (fun () -> f c)

(* Mirrors the in-process [check]/[check-update] convention: exit 0 when
   clean, 2 when the daemon reported findings, 1 on errors. *)
let print_response (resp : Vserve.Protocol.response) =
  match resp with
  | Vserve.Protocol.Report o ->
    let report =
      {
        Vchecker.Checker.findings = o.Vserve.Protocol.findings;
        checked_in_s = o.Vserve.Protocol.checked_in_s;
      }
    in
    Fmt.pr "%a" Vchecker.Checker.pp_report report;
    Fmt.pr "served by model generation %d%s%s%s@." o.Vserve.Protocol.generation
      (if o.Vserve.Protocol.batched then ", batched" else "")
      (if o.Vserve.Protocol.coalesced then ", coalesced" else "")
      (if o.Vserve.Protocol.degraded then ", DEGRADED (overload shed)" else "");
    if o.Vserve.Protocol.findings = [] then 0 else 2
  | Vserve.Protocol.Health_info { status; models } ->
    Fmt.pr "status: %s@." status;
    List.iter
      (fun (m : Vserve.Protocol.model_info) ->
        Fmt.pr "  %s  generation %d  digest %s@." m.Vserve.Protocol.mi_key
          m.Vserve.Protocol.mi_generation m.Vserve.Protocol.mi_digest)
      models;
    0
  | Vserve.Protocol.Stats_info w ->
    Fmt.pr "%s@." (Vserve.Wire.to_string w);
    0
  | Vserve.Protocol.Reload_info { phase; ok; entries } ->
    Fmt.pr "reload %s: %s@." phase (if ok then "ok" else "FAILED");
    List.iter (fun (k, v) -> Fmt.pr "  %s  %s@." k v) entries;
    if ok then 0 else 1
  | Vserve.Protocol.Error_resp { code; message } ->
    Fmt.epr "violet: daemon error (%s): %s@."
      (Vserve.Protocol.error_code_to_string code)
      message;
    1
  | Vserve.Protocol.Bye ->
    Fmt.pr "daemon shutting down@.";
    0

let client_call addr req = with_client addr (fun c -> print_response (or_die (Vserve.Client.call c req)))

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> or_die (Error msg)

(* "reads=80,writes=20" — the workload-class assignments mode 3b compares *)
let parse_workload spec =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i -> begin
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match int_of_string_opt v with
        | Some n -> (k, n)
        | None -> or_die (Error (Printf.sprintf "workload %s: %s is not an integer" kv v))
      end
      | None -> or_die (Error (Printf.sprintf "workload entry %s is not KEY=INT" kv)))
    (String.split_on_char ',' spec)

let client_check_current addr key config =
  client_call addr
    (Vserve.Protocol.Check_current { key; config = read_file config })

let client_check_update addr key old_config new_config =
  client_call addr
    (Vserve.Protocol.Check_update
       { key; old_config = read_file old_config; new_config = read_file new_config })

let client_check_upgrade addr key old_workload new_workload =
  let workloads =
    match old_workload, new_workload with
    | None, None -> None
    | Some o, Some n -> Some (parse_workload o, parse_workload n)
    | _ ->
      or_die
        (Error "check-upgrade needs both --old-workload and --new-workload, or neither")
  in
  client_call addr (Vserve.Protocol.Check_upgrade { key; workloads })

let client_health addr = client_call addr Vserve.Protocol.Health
let client_stats addr = client_call addr Vserve.Protocol.Stats
let client_shutdown addr = client_call addr Vserve.Protocol.Shutdown

(* ------------------------------------------------------------------ *)

let list_params_cmd =
  Cmd.v
    (Cmd.info "list-params" ~doc:"List a system's configuration registry")
    Term.(const list_params $ system_arg)

let related_cmd =
  Cmd.v
    (Cmd.info "related" ~doc:"Static control-dependency analysis of related parameters")
    Term.(const related $ system_arg $ param_arg 1)

let analyze_cmd =
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Save the impact model for later checking.")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:
            "Export the impact model in the vserve registry format (versioned, \
             checksummed envelope).  Name it $(i,KEY).vmodel inside the daemon's \
             $(b,--models) directory and the daemon hot-loads it.")
  in
  let max_states =
    Arg.(value & opt int 4096 & info [ "max-states" ] ~doc:"State exploration cap.")
  in
  let threshold =
    Arg.(
      value & opt float 1.0
      & info [ "threshold" ] ~doc:"Differential threshold (1.0 = 100%).")
  in
  let no_related =
    Arg.(
      value & flag
      & info [ "no-related" ] ~doc:"Make only the target parameter symbolic.")
  in
  let searcher =
    let searcher_conv =
      Arg.conv
        ( (fun s ->
            match Vsched.Searcher.of_string s with
            | Ok p -> Ok p
            | Error msg -> Error (`Msg msg)),
          fun ppf p -> Fmt.string ppf (Vsched.Searcher.to_string p) )
    in
    Arg.(
      value
      & opt searcher_conv Vsched.Searcher.Dfs
      & info [ "searcher" ] ~docv:"POLICY"
          ~doc:
            "Path-exploration searcher: $(b,dfs), $(b,bfs), $(b,random)[:SEED], \
             $(b,coverage) (prioritize uncovered config-dependent branches) or \
             $(b,config-impact) (weight states by pending related-parameter branches).")
  in
  let solver_cache =
    Arg.(
      value & opt bool true
      & info [ "solver-cache" ] ~docv:"BOOL"
          ~doc:"Cache constraint-solver queries (branch + counterexample caches).")
  in
  let no_slice =
    Arg.(
      value & flag
      & info [ "no-slice" ]
          ~doc:
            "Disable independence slicing: send the full path condition on \
             every solver query instead of only the symbol-disjoint slices \
             that overlap the branch condition.  Impact models are \
             byte-identical either way; the flag exists for A/B measurement.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget.  Exploration degrades gracefully as the deadline \
             nears and always terminates by it; a degraded model is flagged.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically snapshot the exploration frontier to $(docv) (atomic, \
             versioned, checksummed), so a killed run can be continued with \
             $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the $(b,--checkpoint) file instead of starting fresh.  The \
             resumed run's impact model is byte-identical to an uninterrupted one.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SEED[:PROB]"
          ~doc:
            "Engine-fault injection for robustness testing: with the given seed, \
             solver queries return unknown, tracer signals are dropped or delayed \
             and checkpoint files are truncated, each with its default (or $(i,PROB)) \
             probability.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains exploring paths in parallel.  The impact model is \
             byte-identical for any $(docv) as \
             long as neither the state cap nor the deadline cuts exploration \
             short.  Defaults to $(b,VIOLET_JOBS) or 1.  Checkpointing and \
             $(b,--resume) force sequential exploration.")
  in
  let fast_nondet =
    Arg.(
      value
      & flag
      & info [ "fast-nondet" ]
          ~doc:
            "Skip the deferred renumbering that makes parallel results \
             byte-identical to sequential ones.  State ids and row order in a \
             saved model may then vary run to run under $(b,--jobs) > 1, but \
             verdicts (check results, findings, scores) are unchanged.  \
             Defaults to $(b,VIOLET_FAST_NONDET) or off.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"DIR"
          ~doc:
            "Whole-system incremental mode.  $(docv) holds one exported model per \
             parameter plus a checksummed manifest; the first run (or \
             $(b,--no-incremental)) builds it from scratch, later runs diff the \
             program against the manifest, re-explore only invalidated slices, \
             splice the rest in verbatim and report upgrade findings against the \
             previous baseline.  PARAM is ignored and may be omitted.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the solver cache across runs: prime this run's cache from \
             $(docv) and write the merged cache back after exploration \
             (checksummed; a corrupt or truncated file means a cold start, never \
             an error).  Models are byte-identical with or without it.  Defaults \
             to $(b,VIOLET_CACHE_DIR).")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "With $(b,--baseline), rebuild the baseline from scratch instead of \
             splicing into the existing one.")
  in
  let param_opt =
    let doc = "Configuration parameter name (optional with --baseline)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"PARAM" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Symbolically analyze a parameter's performance impact")
    Term.(
      const analyze $ system_arg $ param_opt $ save $ export $ max_states $ threshold
      $ no_related $ searcher $ solver_cache $ no_slice $ deadline $ checkpoint $ resume
      $ chaos $ jobs $ fast_nondet $ baseline $ cache_dir $ no_incremental)

let model_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"FILE" ~doc:"Use a saved impact model instead of re-analyzing.")

let check_cmd =
  let file =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"CONFIG" ~doc:"Config file.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a configuration file against the impact model (mode 2)")
    Term.(
      const check $ system_arg $ param_arg 1 $ file $ model_opt $ check_mode_opt
      $ joint_max_nodes_opt)

let check_update_cmd =
  let old_file =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"OLD" ~doc:"Old config file.")
  in
  let new_file =
    Arg.(required & pos 3 (some string) None & info [] ~docv:"NEW" ~doc:"New config file.")
  in
  Cmd.v
    (Cmd.info "check-update"
       ~doc:"Check a configuration update for performance regressions (mode 1)")
    Term.(
      const check_update $ system_arg $ param_arg 1 $ old_file $ new_file $ model_opt
      $ check_mode_opt $ joint_max_nodes_opt)

let coverage_cmd =
  Cmd.v
    (Cmd.info "coverage" ~doc:"Derive impact models for every analyzable parameter")
    Term.(const coverage $ system_arg)

let dump_trace_cmd =
  let out =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"OUT" ~doc:"Trace file path.")
  in
  Cmd.v
    (Cmd.info "dump-trace"
       ~doc:"Symbolically execute and write the raw execution trace to a file")
    Term.(const dump_trace $ system_arg $ param_arg 1 $ out)

let analyze_trace_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let threshold =
    Arg.(
      value & opt float 1.0
      & info [ "threshold" ] ~doc:"Differential threshold (1.0 = 100%).")
  in
  Cmd.v
    (Cmd.info "analyze-trace"
       ~doc:"Run the standalone trace analyzer on a stored execution trace")
    Term.(const analyze_trace $ path $ threshold)

let addr_opt =
  Arg.(
    value
    & opt string "unix:/tmp/violet.sock"
    & info [ "addr"; "a" ] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:)$(i,PATH), $(b,tcp:)$(i,HOST):$(i,PORT), or a \
           bare Unix-socket path.")

let serve_cmd =
  let models =
    Arg.(
      required
      & opt (some string) None
      & info [ "models" ] ~docv:"DIR"
          ~doc:
            "Model-registry directory: every $(i,KEY).vmodel file (written by \
             $(b,violet analyze --export)) is loaded, checksummed and hot-reloaded \
             on change.")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission-control queue depth; beyond it requests are answered \
             $(b,overloaded) immediately (load shedding).")
  in
  let max_batch =
    Arg.(
      value & opt int 16
      & info [ "max-batch" ] ~docv:"N" ~doc:"Requests executed per batch.")
  in
  let no_batch =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Execute requests one at a time instead of batching and coalescing — \
             the A/B hatch the serve bench measures against.")
  in
  let request_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request budget, armed at admission.  A request whose queue wait \
             pushed the budget past the shed pressure is served the conservative \
             degraded-region answer instead of the full check.")
  in
  let shed_pressure =
    Arg.(
      value & opt float 0.9
      & info [ "shed-pressure" ] ~docv:"FRACTION"
          ~doc:"Budget pressure beyond which a queued request is served degraded.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains executing batches.  Defaults to $(b,VIOLET_JOBS) or 1.")
  in
  let refresh =
    Arg.(
      value & opt float 0.5
      & info [ "refresh" ] ~docv:"SECONDS" ~doc:"Model-directory poll period.")
  in
  let no_shutdown =
    Arg.(
      value & flag
      & info [ "no-shutdown" ] ~doc:"Refuse the remote $(b,shutdown) verb.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the continuous configuration-checking daemon (model registry, request \
          batching, admission control)")
    Term.(
      const serve $ addr_opt $ models $ max_queue $ max_batch $ no_batch
      $ request_deadline $ shed_pressure $ jobs $ refresh $ no_shutdown
      $ check_mode_opt $ joint_max_nodes_opt)

let client_cmd =
  let key_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KEY" ~doc:"Model key (the $(i,KEY).vmodel name in the registry).")
  in
  let check_current_cmd =
    let config =
      Arg.(
        required & pos 1 (some string) None & info [] ~docv:"CONFIG" ~doc:"Config file.")
    in
    Cmd.v
      (Cmd.info "check-current" ~doc:"Checker mode 2 against the daemon's model")
      Term.(const client_check_current $ addr_opt $ key_arg $ config)
  in
  let check_update_cmd =
    let old_file =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"OLD" ~doc:"Old config file.")
    in
    let new_file =
      Arg.(required & pos 2 (some string) None & info [] ~docv:"NEW" ~doc:"New config file.")
    in
    Cmd.v
      (Cmd.info "check-update" ~doc:"Checker mode 1 against the daemon's model")
      Term.(const client_check_update $ addr_opt $ key_arg $ old_file $ new_file)
  in
  let check_upgrade_cmd =
    let old_workload =
      Arg.(
        value
        & opt (some string) None
        & info [ "old-workload" ] ~docv:"K=V,.."
            ~doc:"Previous workload class (selects mode 3b together with \
                  $(b,--new-workload); without both, mode 3a compares the \
                  registry's previous model generation).")
    in
    let new_workload =
      Arg.(
        value
        & opt (some string) None
        & info [ "new-workload" ] ~docv:"K=V,.." ~doc:"Shifted workload class.")
    in
    Cmd.v
      (Cmd.info "check-upgrade"
         ~doc:"Checker mode 3: model-generation upgrade (3a) or workload shift (3b)")
      Term.(const client_check_upgrade $ addr_opt $ key_arg $ old_workload $ new_workload)
  in
  let health_cmd =
    Cmd.v
      (Cmd.info "health" ~doc:"Daemon status and loaded model generations")
      Term.(const client_health $ addr_opt)
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats" ~doc:"Serving telemetry as JSON (latency histogram, shed and \
                              batch counters)")
      Term.(const client_stats $ addr_opt)
  in
  let shutdown_cmd =
    Cmd.v
      (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit")
      Term.(const client_shutdown $ addr_opt)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running violet daemon")
    [
      check_current_cmd; check_update_cmd; check_upgrade_cmd; health_cmd; stats_cmd;
      shutdown_cmd;
    ]

(* ------------------------------------------------------------------ *)
(* violet fleet: a supervised multi-process serve fleet — router +
   N shard workers + supervisor, all rooted in one run directory. *)

let fleet_router_addr run_dir =
  Vserve.Client.addr_to_string
    (Vfleet.Topology.router_addr { Vfleet.Topology.run_dir; shards = 1 })

let fleet_start run_dir models shards replication no_retries attempt_timeout
    probe_every seed check_mode joint_input_max_nodes =
  let topology = Vfleet.Topology.make ~run_dir ~shards in
  let resolve_registry (m : Vmodel.Impact_model.t) =
    Option.map
      (fun t -> t.Violet.Pipeline.registry)
      (Targets.Cases.find_target m.Vmodel.Impact_model.system)
  in
  let base = Vfleet.Supervisor.default_options ~topology ~models_dir:models in
  let opts =
    {
      base with
      Vfleet.Supervisor.worker_opts =
        (fun i ->
          {
            (base.Vfleet.Supervisor.worker_opts i) with
            Vserve.Server.resolve_registry;
            check_mode;
            joint_input_max_nodes;
          });
      router_opts =
        {
          base.Vfleet.Supervisor.router_opts with
          Vfleet.Router.replication;
          retries = not no_retries;
          attempt_timeout_s = attempt_timeout;
        };
      probe_every_s = probe_every;
      seed;
    }
  in
  Fmt.pr "violet fleet: %d shards in %s, router on %s@." shards run_dir
    (fleet_router_addr run_dir);
  or_die (Vfleet.Supervisor.run opts);
  0

let fleet_stats run_dir = client_call (fleet_router_addr run_dir) Vserve.Protocol.Stats
let fleet_health run_dir = client_call (fleet_router_addr run_dir) Vserve.Protocol.Health

let fleet_drain run_dir =
  (* shutting the router down drains it; the supervisor sees the clean exit
     and terminates the workers *)
  client_call (fleet_router_addr run_dir) Vserve.Protocol.Shutdown

let fleet_reload run_dir =
  with_client (fleet_router_addr run_dir) (fun c ->
      match or_die (Vserve.Client.call ~timeout_s:30.0 c Vserve.Protocol.Reload_stage) with
      | Vserve.Protocol.Reload_info { ok = false; _ } as resp ->
        ignore (print_response resp);
        Fmt.epr "violet: stage failed on at least one shard — nothing committed@.";
        1
      | Vserve.Protocol.Reload_info { ok = true; _ } as resp ->
        ignore (print_response resp);
        print_response
          (or_die (Vserve.Client.call ~timeout_s:30.0 c Vserve.Protocol.Reload_commit))
      | resp -> print_response resp)

let fleet_cmd =
  let run_dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "run-dir" ] ~docv:"DIR"
          ~doc:
            "Fleet run directory: shard sockets ($(i,shard-N.sock)), the router \
             socket ($(i,router.sock)) and the supervisor state file \
             ($(i,fleet-state.json)) all live here.")
  in
  let start_cmd =
    let models =
      Arg.(
        required
        & opt (some string) None
        & info [ "models" ] ~docv:"DIR"
            ~doc:
              "Model-registry directory, loaded by every shard (full replication: \
               the ring decides affinity, not placement).  Generations change only \
               via $(b,violet fleet reload).")
    in
    let shards =
      Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc:"Worker process count.")
    in
    let replication =
      Arg.(
        value & opt int 2
        & info [ "replication" ] ~docv:"N"
            ~doc:"Preference-list prefix a key may fail over across.")
    in
    let no_retries =
      Arg.(
        value & flag
        & info [ "no-retries" ]
            ~doc:
              "Disable re-dispatch: the first shard failure answers the client \
               (the chaos bench A/B hatch).")
    in
    let attempt_timeout =
      Arg.(
        value & opt float 2.0
        & info [ "attempt-timeout" ] ~docv:"SECONDS"
            ~doc:"Per-dispatch deadline before the router fails over.")
    in
    let probe_every =
      Arg.(
        value & opt float 0.5
        & info [ "probe-every" ] ~docv:"SECONDS" ~doc:"Supervisor health-probe period.")
    in
    let seed =
      Arg.(
        value & opt int 0x5eed
        & info [ "seed" ] ~docv:"N" ~doc:"Restart-backoff jitter seed.")
    in
    Cmd.v
      (Cmd.info "start"
         ~doc:
           "Start the fleet in the foreground: fork router and shard workers, \
            supervise (health probes, backoff restarts, crash-loop breaker) until \
            SIGTERM or $(b,violet fleet drain)")
      Term.(
        const fleet_start $ run_dir_arg $ models $ shards $ replication $ no_retries
        $ attempt_timeout $ probe_every $ seed $ check_mode_opt $ joint_max_nodes_opt)
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Fleet-wide telemetry as JSON: per-shard serve stats and restart/trip \
            counters merged with the router's routing/failover/fallback counters")
      Term.(const fleet_stats $ run_dir_arg)
  in
  let health_cmd =
    Cmd.v
      (Cmd.info "health" ~doc:"Router status and model generations")
      Term.(const fleet_health $ run_dir_arg)
  in
  let reload_cmd =
    Cmd.v
      (Cmd.info "reload"
         ~doc:
           "Two-phase hot reload: stage the model directory on every shard, commit \
            the generation flip only if all of them staged successfully")
      Term.(const fleet_reload $ run_dir_arg)
  in
  let drain_cmd =
    Cmd.v
      (Cmd.info "drain" ~doc:"Drain the router and shut the whole fleet down")
      Term.(const fleet_drain $ run_dir_arg)
  in
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Supervised multi-process serve fleet: consistent-hash routing, crash \
          recovery, failover and two-phase hot reload")
    [ start_cmd; stats_cmd; health_cmd; reload_cmd; drain_cmd ]

(* ------------------------------------------------------------------ *)
(* violet fuzz: generated target systems with planted ground truth     *)
(* ------------------------------------------------------------------ *)

let fuzz_summary (s : Vfuzz.Genspec.t) =
  Fmt.pr "%-14s size=%-3d funcs=%d cparams=%d plants=[%s] decoys=[%s]@."
    s.Vfuzz.Genspec.g_name (Vfuzz.Genspec.size s)
    (List.length s.Vfuzz.Genspec.g_funcs)
    (List.length s.Vfuzz.Genspec.g_cparams)
    (String.concat ", "
       (List.map
          (fun (p : Vfuzz.Genspec.plant) ->
            Printf.sprintf "%s=%d" p.Vfuzz.Genspec.p_param p.Vfuzz.Genspec.p_poor)
          s.Vfuzz.Genspec.g_plants))
    (String.concat ", " s.Vfuzz.Genspec.g_decoys);
  List.iter (fun m -> Fmt.pr "  trail: %s@." m) s.Vfuzz.Genspec.g_trail

let fuzz_gen seed count out =
  let specs = Vfuzz.Generate.corpus ~seed ~count () in
  List.iter
    (fun s ->
      fuzz_summary s;
      match out with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Vfuzz.Genspec.save s (Filename.concat dir (s.Vfuzz.Genspec.g_name ^ ".vfz")))
    specs;
  (match out with
  | Some dir -> Fmt.pr "wrote %d specs to %s/@." count dir
  | None -> ());
  0

let fuzz_run seed count =
  let specs = Vfuzz.Generate.corpus ~seed ~count () in
  let verdicts, score = Vfuzz.Harness.run specs in
  List.iter
    (fun (v : Vfuzz.Harness.verdict) ->
      Fmt.pr "%-14s plants:[%s] decoys:[%s]%s@." v.Vfuzz.Harness.v_system
        (String.concat ", "
           (List.map
              (fun (p, d) -> Printf.sprintf "%s %s" p (if d then "DETECTED" else "missed"))
              v.Vfuzz.Harness.v_plants))
        (String.concat ", "
           (List.map
              (fun (p, f) -> Printf.sprintf "%s %s" p (if f then "FLAGGED" else "clean"))
              v.Vfuzz.Harness.v_decoys))
        (match v.Vfuzz.Harness.v_errors with
        | [] -> ""
        | es -> Printf.sprintf " errors:%d" (List.length es)))
    verdicts;
  Fmt.pr "systems=%d plants=%d detected=%d decoys=%d flagged=%d recall=%.3f precision=%.3f@."
    score.Vfuzz.Harness.s_systems score.Vfuzz.Harness.s_plants
    score.Vfuzz.Harness.s_detected score.Vfuzz.Harness.s_decoys
    score.Vfuzz.Harness.s_flagged score.Vfuzz.Harness.s_recall
    score.Vfuzz.Harness.s_precision;
  0

let fuzz_save_reproducer dir (spec : Vfuzz.Genspec.t) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (spec.Vfuzz.Genspec.g_name ^ ".vfz") in
  Vfuzz.Genspec.save spec path;
  path

let fuzz_diff seed count no_daemon out =
  let daemon = not no_daemon in
  let specs = Vfuzz.Generate.corpus ~seed ~count () in
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let r = Vfuzz.Oracle.check ~daemon spec in
      if Vfuzz.Oracle.agreed r then
        Fmt.pr
          "%-14s ok (%d combos, %d daemon checks, %d fleet checks, %d mode checks, %d \
           fast-nondet checks)@."
          r.Vfuzz.Oracle.r_system r.Vfuzz.Oracle.r_combos r.Vfuzz.Oracle.r_daemon_checks
          r.Vfuzz.Oracle.r_fleet_checks r.Vfuzz.Oracle.r_mode_checks
          r.Vfuzz.Oracle.r_fast_checks
      else begin
        incr failures;
        Fmt.pr "%-14s DISAGREES@." r.Vfuzz.Oracle.r_system;
        List.iter
          (fun (d : Vfuzz.Oracle.disagreement) ->
            Fmt.pr "  %s [%s]: %s@." d.Vfuzz.Oracle.d_param d.Vfuzz.Oracle.d_leg
              d.Vfuzz.Oracle.d_detail)
          r.Vfuzz.Oracle.r_disagreements;
        let still_fails s = not (Vfuzz.Oracle.agreed (Vfuzz.Oracle.check ~daemon s)) in
        let o = Vfuzz.Shrink.shrink ~still_fails spec in
        let path = fuzz_save_reproducer out o.Vfuzz.Shrink.sh_spec in
        Fmt.pr "  shrunk %d -> %d nodes (%d checks); reproducer: %s@."
          o.Vfuzz.Shrink.sh_from_size o.Vfuzz.Shrink.sh_to_size
          o.Vfuzz.Shrink.sh_checks path
      end)
    specs;
  if !failures = 0 then begin
    Fmt.pr "differential oracle: %d/%d systems agree@." count count;
    0
  end
  else begin
    Fmt.epr "violet: %d/%d systems disagree (reproducers in %s/)@." !failures count out;
    1
  end

let fuzz_shrink file no_daemon out =
  let daemon = not no_daemon in
  let spec = or_die (Vfuzz.Genspec.load file) in
  let still_fails s = not (Vfuzz.Oracle.agreed (Vfuzz.Oracle.check ~daemon s)) in
  if not (still_fails spec) then begin
    Fmt.epr "violet: %s does not currently fail the oracle — nothing to shrink@." file;
    1
  end
  else begin
    let o = Vfuzz.Shrink.shrink ~still_fails spec in
    let path = match out with Some p -> p | None -> file ^ ".min" in
    Vfuzz.Genspec.save o.Vfuzz.Shrink.sh_spec path;
    Fmt.pr "shrunk %d -> %d nodes in %d steps (%d oracle runs); wrote %s@."
      o.Vfuzz.Shrink.sh_from_size o.Vfuzz.Shrink.sh_to_size o.Vfuzz.Shrink.sh_steps
      o.Vfuzz.Shrink.sh_checks path;
    0
  end

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Corpus seed.  Member $(i,i) of a seed is the same system on every \
             machine (splittable PRNG).")
  in
  let count =
    Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc:"Systems to generate.")
  in
  let no_daemon =
    Arg.(
      value & flag
      & info [ "no-daemon" ]
          ~doc:
            "Skip the daemon-vs-in-process findings leg (the analyze grid still \
             runs).")
  in
  let out_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Also save each spec as $(i,DIR)/$(i,NAME).vfz.")
  in
  let failures_dir =
    Arg.(
      value & opt string "fuzz-failures"
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers.")
  in
  let gen_cmd =
    Cmd.v
      (Cmd.info "gen" ~doc:"Generate seeded systems and print their shape")
      Term.(const fuzz_gen $ seed $ count $ out_opt)
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Score the pipeline against planted ground truth (recall/precision)")
      Term.(const fuzz_run $ seed $ count)
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Differential oracle: jobs 1/4 x slice on/off x daemon vs in-process must \
            be byte-identical on every generated system; failures are shrunk to \
            reproducers")
      Term.(const fuzz_diff $ seed $ count $ no_daemon $ failures_dir)
  in
  let shrink_cmd =
    let file =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"A .vfz spec that fails the oracle.")
    in
    let out_file =
      Arg.(
        value
        & opt (some string) None
        & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the minimized spec.")
    in
    Cmd.v
      (Cmd.info "shrink" ~doc:"Minimize a failing spec to the smallest one that still fails")
      Term.(const fuzz_shrink $ file $ no_daemon $ out_file)
  in
  Cmd.group
    (Cmd.info "fuzz"
       ~doc:
         "Generated target systems with planted ground truth: recall/precision \
          scoring and a differential oracle over the pipeline")
    [ gen_cmd; run_cmd; diff_cmd; shrink_cmd ]

let main_cmd =
  Cmd.group
    (Cmd.info "violet" ~version:"1.0.0"
       ~doc:"Automated reasoning and detection of specious configuration")
    [
      list_params_cmd; related_cmd; analyze_cmd; check_cmd; check_update_cmd;
      coverage_cmd; dump_trace_cmd; analyze_trace_cmd; serve_cmd; client_cmd; fleet_cmd;
      fuzz_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
