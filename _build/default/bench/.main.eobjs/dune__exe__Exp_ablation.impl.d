bench/exp_ablation.ml: Fmt List Targets Unix Util Violet Vmodel Vsymexec Vtrace
