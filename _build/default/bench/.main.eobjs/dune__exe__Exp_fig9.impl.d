bench/exp_fig9.ml: Util Violet Vir Vmodel Vruntime
