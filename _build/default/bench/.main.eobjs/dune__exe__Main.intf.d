bench/main.mli:
