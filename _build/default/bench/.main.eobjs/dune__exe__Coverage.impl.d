bench/coverage.ml: List Targets Violet Vruntime
