bench/exp_fig15.ml: Fmt List Printf Targets Util Violet Vmodel
