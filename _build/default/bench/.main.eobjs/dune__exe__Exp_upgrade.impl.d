bench/exp_upgrade.ml: List Targets Util Vchecker Violet Vmodel Vsmt
