bench/exp_table5.ml: List String Targets Util Violet Vmodel
