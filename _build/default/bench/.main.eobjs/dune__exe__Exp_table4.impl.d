bench/exp_table4.ml: List Targets Util Violet Vmodel
