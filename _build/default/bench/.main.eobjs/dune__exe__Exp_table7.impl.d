bench/exp_table7.ml: Fmt List Printf Targets Util Violet Vir Vruntime Vsymexec Vtrace
