bench/exp_fig2.ml: List Targets Util Vruntime
