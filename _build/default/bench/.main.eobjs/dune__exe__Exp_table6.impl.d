bench/exp_table6.ml: Coverage List Printf Util Violet Vmodel
