bench/exp_userstudy.ml: Hashtbl List Printf Random String Targets Util Vchecker Violet
