bench/exp_fig14.ml: Coverage List Option Util Violet Vmodel
