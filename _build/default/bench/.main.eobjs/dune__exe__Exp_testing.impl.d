bench/exp_testing.ml: List Printf Targets Util Violet Vruntime
