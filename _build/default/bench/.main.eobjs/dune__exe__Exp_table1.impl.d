bench/exp_table1.ml: Float Fmt List String Targets Util Violet Vmodel Vruntime Vsmt
