bench/util.ml: Array Float Fmt List Printf String Targets Violet Vruntime
