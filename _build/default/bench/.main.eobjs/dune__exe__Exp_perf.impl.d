bench/exp_perf.ml: Analyze Bechamel Benchmark Fmt Hashtbl Instance List Measure Printf Staged String Targets Test Time Toolkit Unix Util Vchecker Violet Vmodel Vsmt Vsymexec Vtrace
