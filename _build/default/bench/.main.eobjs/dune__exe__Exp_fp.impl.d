bench/exp_fp.ml: List Targets Util Violet Vmodel Vsymexec
