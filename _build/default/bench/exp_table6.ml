(* Table 6: number of configurations Violet derives performance models for. *)

let run () =
  Util.section "Table 6: model coverage per system";
  let cov = Coverage.all () in
  let total_all = ref 0 and derived_all = ref 0 and states_sum = ref 0 and states_n = ref 0 in
  let rows =
    List.map
      (fun (c : Coverage.system_coverage) ->
        let derived = Coverage.derived c in
        total_all := !total_all + c.Coverage.total;
        derived_all := !derived_all + List.length derived;
        List.iter
          (fun (e : Coverage.entry) ->
            match e.Coverage.analysis with
            | Some a ->
              states_sum :=
                !states_sum
                + a.Violet.Pipeline.model.Vmodel.Impact_model.explored_states;
              incr states_n
            | None -> ())
          derived;
        [
          c.Coverage.target.Violet.Pipeline.name;
          Util.i0 c.Coverage.total;
          Util.i0 c.Coverage.perf_related;
          Util.i0 c.Coverage.hooked_perf;
          Util.i0 (List.length derived);
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int (List.length derived) /. float_of_int c.Coverage.total);
        ])
      cov
  in
  Util.print_table
    ~header:[ "Software"; "Params"; "Perf-related"; "Hooked"; "Models derived"; "% of params" ]
    rows;
  Util.note "total: %d/%d (%.1f%%) — paper: 606/1123 (53.9%%), lowest for Apache (29.6%%)"
    !derived_all !total_all
    (100. *. float_of_int !derived_all /. float_of_int !total_all);
  if !states_n > 0 then
    Util.note "average states explored per derived model: %.1f (paper: 23)"
      (float_of_int !states_sum /. float_of_int !states_n)
