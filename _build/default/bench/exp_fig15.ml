(* Figure 15: sensitivity of the performance-difference threshold.

   For six representative parameters, the trace is analyzed under several
   thresholds t; each reported suspicious pair is then validated natively
   (Violet.Validate).  Lower thresholds surface more poor states at the cost
   of more false positives. *)

let subjects = [ "c1"; "c4"; "c5"; "c7"; "c12"; "c16" ]
let thresholds = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
let max_verified_pairs = 30

let run () =
  Util.section "Figure 15: sensitivity of the diff threshold (poor states normalized to t=100%)";
  let header =
    "case" :: List.map (fun t -> Printf.sprintf "t=%.0f%%" (100. *. t)) thresholds
  in
  let poor_rows = ref [] and fp_rows = ref [] in
  List.iter
    (fun case_id ->
      let c = Targets.Cases.find_known case_id in
      let target = Targets.Cases.target_of c.Targets.Cases.system in
      let entry = Targets.Cases.query_entry_of c.Targets.Cases.system in
      let a = Util.analyze_case c in
      let per_threshold =
        List.map
          (fun t ->
            let diff = Vmodel.Diff_analysis.analyze ~threshold:t a.Violet.Pipeline.rows in
            let poor = List.length diff.Vmodel.Diff_analysis.poor_state_ids in
            let sample =
              List.filteri (fun i _ -> i < max_verified_pairs)
                diff.Vmodel.Diff_analysis.pairs
            in
            let confirmed, checked =
              List.fold_left
                (fun (ok, n) pair ->
                  match Violet.Validate.confirms ~threshold:t ~target ~entry pair with
                  | Some true -> ok + 1, n + 1
                  | Some false -> ok, n + 1
                  | None -> ok, n)
                (0, 0) sample
            in
            let fp =
              if checked = 0 then 0.
              else 100. *. float_of_int (checked - confirmed) /. float_of_int checked
            in
            poor, fp)
          thresholds
      in
      let base =
        match List.nth_opt per_threshold 2 with
        | Some (p, _) when p > 0 -> float_of_int p
        | _ -> 1.
      in
      poor_rows :=
        (case_id
        :: List.map (fun (p, _) -> Util.f2 (float_of_int p /. base)) per_threshold)
        :: !poor_rows;
      fp_rows :=
        (case_id :: List.map (fun (_, fp) -> Printf.sprintf "%.0f%%" fp) per_threshold)
        :: !fp_rows)
    subjects;
  Fmt.pr "poor states (normalized to the default threshold):@.";
  Util.print_table ~header (List.rev !poor_rows);
  Fmt.pr "@.false-positive rate among reported pairs (native validation):@.";
  Util.print_table ~header (List.rev !fp_rows);
  Util.note "paper: lower thresholds dramatically increase detected poor states and false positives"
