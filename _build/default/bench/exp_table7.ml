(* Table 7: absolute latency of four representative parameters' settings
   under Violet (engine + tracer), vanilla S²E (engine only), and native
   execution.  The reproduction target is the paper's observation that the
   engine inflates absolute latency ~15x while preserving the relative
   ratios between settings. *)

module Ex = Vsymexec.Executor

type subject = {
  label : string;
  system : string;
  param : string;
  settings : string list;
  extra : (string * string) list;  (* concrete related settings *)
  env : Vruntime.Hw_env.t;
  workload : Vruntime.Workload.instance;
}

let subjects =
  [
    {
      label = "parA: autocommit";
      system = "mysql";
      param = "autocommit";
      settings = [ "0"; "1" ];
      (* flush_at_trx_commit=2 is the paper's micro-benchmark regime where
         the settings differ by ~1.9x rather than a full fsync *)
      extra = [ "innodb_flush_log_at_trx_commit", "2" ];
      env = Vruntime.Hw_env.hdd_server;
      workload =
        Vruntime.Workload.instantiate_named Targets.Mysql_model.oltp
          [ "sql_command", "INSERT"; "table_type", "INNODB"; "row_bytes", "256";
            "n_rows", "1"; "n_tables", "1"; "cached", "OFF"; "use_index", "ON";
            "other_clients_reading", "OFF" ];
    };
    {
      label = "parB: synchronous_commit";
      system = "postgres";
      param = "synchronous_commit";
      settings = [ "off"; "on" ];
      extra = [];
      env = Vruntime.Hw_env.ssd_server;
      workload =
        Vruntime.Workload.instantiate_named Targets.Postgres_model.pgbench
          [ "op", "UPDATE"; "n_rows", "1"; "row_bytes", "256"; "dirty_pages", "64";
            "indexed", "ON" ];
    };
    {
      label = "parC: archive_mode";
      system = "postgres";
      param = "archive_mode";
      settings = [ "off"; "on"; "always" ];
      extra = [ "synchronous_commit", "on" ];
      env = Vruntime.Hw_env.ssd_server;
      workload =
        Vruntime.Workload.instantiate_named Targets.Postgres_model.pgbench
          [ "op", "INSERT"; "n_rows", "100"; "row_bytes", "8192"; "dirty_pages", "64";
            "indexed", "ON" ];
    };
    {
      label = "parD: HostnameLookups";
      system = "apache";
      param = "HostnameLookups";
      settings = [ "Off"; "On"; "Double" ];
      extra = [];
      env = Vruntime.Hw_env.hdd_server;
      workload =
        Vruntime.Workload.instantiate_named Targets.Apache_model.http
          [ "request_type", "STATIC_SMALL"; "response_bytes", "4096"; "path_depth", "2" ];
    };
  ]

let measure subject setting =
  let target = Targets.Cases.target_of subject.system in
  let registry = target.Violet.Pipeline.registry in
  let entry = Targets.Cases.query_entry_of subject.system in
  let config_values =
    Util.config_values registry ((subject.param, setting) :: subject.extra)
  in
  let config n = Vruntime.Config_registry.Values.get config_values n in
  let workload n =
    match Vruntime.Workload.value_opt subject.workload n with Some v -> v | None -> 0
  in
  let env = subject.env in
  let native =
    (Vruntime.Concrete_exec.run ~entry ~env target.Violet.Pipeline.program ~config ~workload)
      .Vruntime.Concrete_exec.cost
      .Vruntime.Cost.latency_us
  in
  let program = { target.Violet.Pipeline.program with Vir.Ast.entry } in
  let engine ~tracer =
    let opts = { (Ex.default_options ~env ~config ~workload ()) with Ex.enable_tracer = tracer } in
    let result = Ex.run opts program in
    match result.Ex.states with
    | st :: _ ->
      if tracer then
        (Vtrace.Profile.of_state st).Vtrace.Profile.traced_latency_us
      else st.Vsymexec.Sym_state.clock
    | [] -> nan
  in
  native, engine ~tracer:false, engine ~tracer:true

let run () =
  Util.section "Table 7: profiling accuracy — Violet vs vanilla S2E vs native (ms)";
  List.iter
    (fun subject ->
      let measures = List.map (fun s -> s, measure subject s) subject.settings in
      let base = match measures with (_, (n, _, _)) :: _ -> n | [] -> 1. in
      let base_s2e = match measures with (_, (_, s, _)) :: _ -> s | [] -> 1. in
      let base_vio = match measures with (_, (_, _, v)) :: _ -> v | [] -> 1. in
      let rows =
        List.map
          (fun (s, (native, s2e, violet)) ->
            [
              Printf.sprintf "%s=%s" subject.param s;
              Util.f2 (violet /. 1000.);
              Util.f2 (s2e /. 1000.);
              Util.f2 (native /. 1000.);
              Util.f2 (violet /. base_vio);
              Util.f2 (s2e /. base_s2e);
              Util.f2 (native /. base);
            ])
          measures
      in
      Fmt.pr "@.%s:@." subject.label;
      Util.print_table
        ~header:
          [ "setting"; "Violet ms"; "S2E ms"; "Native ms"; "Violet ratio"; "S2E ratio";
            "Native ratio" ]
        rows)
    subjects;
  Util.note
    "paper: absolute engine latency ~15x native, but per-parameter setting ratios match native"
