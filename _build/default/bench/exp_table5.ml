(* Table 5: previously-unknown specious configurations Violet exposes. *)

let run () =
  Util.section "Table 5: unknown specious configurations (coverage sweep findings)";
  let rows =
    List.map
      (fun (u : Targets.Cases.unknown_case) ->
        let target = Targets.Cases.target_of u.Targets.Cases.u_system in
        let a = Violet.Pipeline.analyze_exn target u.Targets.Cases.u_param in
        let detected =
          Violet.Detect.detected target.Violet.Pipeline.registry a
            ~poor:u.Targets.Cases.u_poor
        in
        let m = a.Violet.Pipeline.model in
        [
          Util.check detected;
          u.Targets.Cases.u_system;
          u.Targets.Cases.u_param;
          Util.i0 m.Vmodel.Impact_model.explored_states;
          Util.i0 (List.length m.Vmodel.Impact_model.poor_state_ids);
          String.concat "," m.Vmodel.Impact_model.related;
          u.Targets.Cases.u_impact;
        ])
      Targets.Cases.unknown
  in
  Util.print_table
    ~header:[ "Det"; "Sys"; "Configuration"; "States"; "Poor"; "Related"; "Performance Impact" ]
    rows;
  Util.note "paper: 9 unknown specious configurations, 7 confirmed by developers"
