(* Figure 2: MySQL throughput for autocommit under two workloads. *)

module M = Targets.Mysql_model

let qps ~mix ~autocommit clients =
  let config =
    Util.config_values M.registry [ "autocommit", (if autocommit then "ON" else "OFF") ]
  in
  Vruntime.Concrete_exec.throughput ~entry:M.query_entry ~env:Vruntime.Hw_env.hdd_server
    M.program ~config ~mix ~clients

let run () =
  Util.section "Figure 2: MySQL throughput, autocommit ON vs OFF (QPS)";
  let threads = [ 8; 16; 32; 64 ] in
  let rows =
    List.map
      (fun n ->
        let normal_on = qps ~mix:(M.normal_mix ~autocommit:true) ~autocommit:true n in
        let normal_off = qps ~mix:(M.normal_mix ~autocommit:false) ~autocommit:false n in
        let ins_on = qps ~mix:(M.insert_mix ~autocommit:true) ~autocommit:true n in
        let ins_off = qps ~mix:(M.insert_mix ~autocommit:false) ~autocommit:false n in
        [ Util.i0 n; Util.f1 normal_on; Util.f1 normal_off;
          Util.f2 (normal_off /. normal_on); Util.f1 ins_on; Util.f1 ins_off;
          Util.f2 (ins_off /. ins_on) ])
      threads
  in
  Util.print_table
    ~header:
      [ "threads"; "normal ON"; "normal OFF"; "OFF/ON"; "insert ON"; "insert OFF"; "OFF/ON" ]
    rows;
  Util.note
    "paper: (a) normal workload ON ~= OFF; (b) insert-intensive: OFF ~6x better than ON"
