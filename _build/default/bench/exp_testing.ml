(* Section 7.3: comparison with black-box configuration testing.

   For each case, testing sets the poor and good configurations and measures
   end-to-end throughput over the system's stock benchmark workloads.  A case
   is detected when the throughput difference exceeds 100% on some workload.
   Each (configuration, workload) measurement is charged 5 virtual minutes,
   the scale of a sysbench/ab run. *)

let run_minutes_per_test = 5.

let test_case (c : Targets.Cases.known_case) =
  let system = c.Targets.Cases.system in
  let target = Targets.Cases.target_of system in
  let program = target.Violet.Pipeline.program in
  let entry = Targets.Cases.query_entry_of system in
  let registry = target.Violet.Pipeline.registry in
  let poor = Util.config_values registry c.Targets.Cases.poor_setting in
  let good = Util.config_values registry c.Targets.Cases.good_setting in
  let workloads = Targets.Cases.standard_workloads_of system in
  let rec enumerate spent = function
    | [] -> false, spent
    | (_name, mix) :: rest ->
      let spent = spent +. (2. *. run_minutes_per_test) in
      let qps config =
        Vruntime.Concrete_exec.throughput ~entry ~env:Vruntime.Hw_env.hdd_server program
          ~config ~mix ~clients:1
      in
      let q_poor = qps poor and q_good = qps good in
      if q_good > 2. *. q_poor || q_poor > 2. *. q_good then true, spent
      else enumerate spent rest
  in
  enumerate 0. workloads

let run () =
  Util.section "Section 7.3: black-box testing on the 17 cases (stock workloads)";
  let results =
    List.map (fun c -> c, test_case c) Targets.Cases.known
  in
  let rows =
    List.map
      (fun ((c : Targets.Cases.known_case), (detected, minutes)) ->
        [ Util.check detected; c.Targets.Cases.id; c.Targets.Cases.param;
          Printf.sprintf "%.0f min" minutes ])
      results
  in
  Util.print_table ~header:[ "Det"; "Id"; "Configuration"; "Testing time" ] rows;
  let detected = List.filter (fun (_, (d, _)) -> d) results in
  let times = List.map (fun (_, (_, m)) -> m) results in
  let _, _, median, _, _ = Util.quartiles times in
  Util.note "testing detects %d/17 (paper: 10/17), median time %.0f min (paper: 25 min)"
    (List.length detected) median;
  Util.note
    "missed cases need inputs outside stock suites (large rows, LOCK TABLES + MyISAM readers) or show up only in logical metrics"
