(* Table 1: the raw cost table Violet generates for autocommit. *)

module M = Vmodel.Impact_model
module Row = Vmodel.Cost_row

let run () =
  Util.section "Table 1: raw cost table for MySQL autocommit";
  let a = Util.analyze_case (Targets.Cases.find_known "c1") in
  let model = a.Violet.Pipeline.model in
  (* the paper's table shows the commit-path rows: INSERT-class states whose
     constraints mention autocommit/flush, plus the autocommit==0 row *)
  let interesting (r : Row.t) =
    List.exists
      (fun c ->
        List.exists
          (fun (v : Vsmt.Expr.var) ->
            v.Vsmt.Expr.name = "autocommit"
            || v.Vsmt.Expr.name = "innodb_flush_log_at_trx_commit")
          (Vsmt.Expr.vars c))
      r.Row.config_constraints
    && Row.workload_satisfied_by r
         [ "sql_command", 1; "table_type", 0; "row_bytes", 256; "n_rows", 1; "n_tables", 1;
           "cached", 0; "use_index", 1; "other_clients_reading", 0 ]
  in
  let rows = List.filter interesting model.M.rows in
  let rows =
    List.sort
      (fun (a : Row.t) b -> Float.compare b.Row.traced_latency_us a.Row.traced_latency_us)
      rows
  in
  let render (r : Row.t) =
    [
      Row.constraint_string r;
      Vruntime.Cost.summary r.Row.cost;
      "{" ^ String.concat " -> " r.Row.critical_ops ^ "}";
      (match r.Row.workload_pred with
      | [] -> "any"
      | cs ->
        String.concat " && " (List.map (Fmt.str "%a" Row.pp_constraint) cs));
    ]
  in
  Util.print_table
    ~header:[ "Configuration Constraint"; "Cost"; "Critical ops"; "Workload Predicate" ]
    (List.map render rows);
  Util.note "paper Table 1: flush=1 row costs ~2.2x the flush=2 row and carries fil_flush"
