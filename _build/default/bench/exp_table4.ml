(* Table 4: detection results for the 17 known specious-configuration cases. *)

module M = Vmodel.Impact_model

type outcome = {
  case : Targets.Cases.known_case;
  analysis : Violet.Pipeline.analysis;
  detected : bool;
}

let run_cases () =
  List.map
    (fun (c : Targets.Cases.known_case) ->
      let target = Targets.Cases.target_of c.Targets.Cases.system in
      let analysis = Util.analyze_case c in
      let detected =
        Violet.Detect.detected target.Violet.Pipeline.registry analysis
          ~poor:c.Targets.Cases.poor_setting
      in
      { case = c; analysis; detected })
    Targets.Cases.known

let run () =
  Util.section "Table 4: Violet detection of the 17 known cases";
  let outcomes = run_cases () in
  let rows =
    List.map
      (fun o ->
        [ Util.check o.detected; o.case.Targets.Cases.id; o.case.Targets.Cases.param ]
        @ Violet.Report.summary_row o.analysis
        @ [ (if o.detected = o.case.Targets.Cases.expect_detected then "agree" else "MISMATCH") ])
      outcomes
  in
  Util.print_table
    ~header:
      [ "Det"; "Id"; "Configuration"; "Explored"; "Poor"; "Related"; "Cost Metrics";
        "Analysis Time"; "Max Diff"; "vs paper" ]
    rows;
  let detected = List.length (List.filter (fun o -> o.detected) outcomes) in
  let agree =
    List.length
      (List.filter (fun o -> o.detected = o.case.Targets.Cases.expect_detected) outcomes)
  in
  Util.note "detected %d/17 (paper: 15/17); verdict agrees with the paper on %d/17 cases"
    detected agree;
  Util.note "c14/c15 are missed because the default Apache workload template has no keep-alive parameter (Section 7.2)"
