(* Figure 14: distribution of Violet analysis times per system (boxplots in
   the paper; quartile tables here).  Times are the virtual end-to-end
   analysis times from the coverage sweep. *)

let run () =
  Util.section "Figure 14: analysis-time distribution per system (virtual seconds)";
  let cov = Coverage.all () in
  let rows =
    List.filter_map
      (fun (c : Coverage.system_coverage) ->
        let times =
          List.filter_map
            (fun (e : Coverage.entry) ->
              Option.map
                (fun (a : Violet.Pipeline.analysis) ->
                  a.Violet.Pipeline.model.Vmodel.Impact_model.virtual_analysis_s)
                e.Coverage.analysis)
            c.Coverage.entries
        in
        if times = [] then None
        else begin
          let min_, q1, median, q3, max_ = Util.quartiles times in
          Some
            [
              c.Coverage.target.Violet.Pipeline.name;
              Util.i0 (List.length times);
              Util.f1 min_;
              Util.f1 q1;
              Util.f1 median;
              Util.f1 q3;
              Util.f1 max_;
            ]
        end)
      cov
  in
  Util.print_table
    ~header:[ "Software"; "models"; "min"; "q1"; "median"; "q3"; "max" ]
    rows;
  Util.note "paper medians: MySQL 206 s, PostgreSQL 117 s, Apache 1171 s, Squid 554 s";
  Util.note "shape target: minutes-scale medians; log-analyzer time is measured separately in the perf experiment"
