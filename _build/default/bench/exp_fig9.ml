(* Figure 9: making unrelated parameters symbolic causes excessive state
   exploration.  A three-parameter demo program where opt_y is unrelated to
   opt_x and opt_z: the related-set analysis keeps opt_y's run at two paths,
   while the all-symbolic ablation multiplies them. *)

let registry =
  Vruntime.Config_registry.(
    make ~system:"fig9"
      [
        param_int "opt_x" ~lo:0 ~hi:1000 ~default:50 "unrelated threshold";
        param_bool "opt_y" ~default:false "the target parameter";
        param_enum "opt_z" ~values:[ "FILE"; "NET"; "NONE" ] ~default:"NONE" "unrelated sink";
      ])

let program =
  let open Vir.Builder in
  program ~name:"fig9" ~entry:"main"
    [
      func "main"
        [
          if_ (cfg "opt_x" >. i 100)
            [ compute (i 500) ]
            [ compute (i 100) ];
          if_ (cfg "opt_z" ==. i 0)
            [ buffered_write (i 4096) ]
            [ if_ (cfg "opt_z" ==. i 1) [ net_send (i 4096) ] [] ];
          if_ (cfg "opt_y" ==. i 1) [ fsync ] [ compute (i 50) ];
          ret_void;
        ];
    ]

let target =
  { Violet.Pipeline.name = "fig9"; program; registry; workloads = [] }

let states opts =
  let a = Violet.Pipeline.analyze_exn ~opts target "opt_y" in
  a.Violet.Pipeline.model.Vmodel.Impact_model.explored_states

let run () =
  Util.section "Figure 9: symbolic set selection on the 3-parameter example";
  let related = states Violet.Pipeline.default_options in
  let all =
    states { Violet.Pipeline.default_options with Violet.Pipeline.all_symbolic = true }
  in
  Util.print_table
    ~header:[ "symbolic set"; "states explored" ]
    [
      [ "opt_y + related (= none)"; Util.i0 related ];
      [ "all parameters (ablation)"; Util.i0 all ];
    ];
  Util.note "paper: 2 paths suffice for opt_y; all-symbolic explores at least 6";
  assert (related < all)
