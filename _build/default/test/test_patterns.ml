(* The four specious-configuration code patterns of Section 2.3 must each be
   detected from the pattern's minimal program, with the poor value enclosed
   by a poor state and the expected metric kind triggering. *)

module P = Violet.Pipeline

let check = Alcotest.check

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let run_pattern (pat : Targets.Patterns.pattern) () =
  let a = P.analyze_exn pat.Targets.Patterns.target pat.Targets.Patterns.param in
  check Alcotest.bool "poor value detected" true
    (Violet.Detect.detected pat.Targets.Patterns.target.P.registry a
       ~poor:pat.Targets.Patterns.poor);
  (* the expected metric family appears among the triggering pairs *)
  let labels =
    List.map
      (fun (p : Vmodel.Diff_analysis.poor_pair) ->
        Vmodel.Diff_analysis.trigger_label p.Vmodel.Diff_analysis.triggers)
      a.P.diff.Vmodel.Diff_analysis.pairs
  in
  check Alcotest.bool
    (Printf.sprintf "trigger mentions %s" pat.Targets.Patterns.expected_trigger)
    true
    (List.exists (fun l -> contains l pat.Targets.Patterns.expected_trigger) labels)

let test_pattern_catalog () =
  check Alcotest.int "four patterns" 4 (List.length Targets.Patterns.all);
  check
    (Alcotest.list Alcotest.int)
    "ids" [ 1; 2; 3; 4 ]
    (List.map (fun p -> p.Targets.Patterns.id) Targets.Patterns.all)

let tests =
  Alcotest.test_case "pattern catalog" `Quick test_pattern_catalog
  :: List.map
       (fun (pat : Targets.Patterns.pattern) ->
         Alcotest.test_case ("pattern: " ^ pat.Targets.Patterns.name) `Quick
           (run_pattern pat))
       Targets.Patterns.all
