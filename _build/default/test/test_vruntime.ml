(* Tests for the runtime substrate: cost vectors, hardware environments,
   registries, workload templates and the concrete interpreter. *)

module Cost = Vruntime.Cost
module Hw = Vruntime.Hw_env
module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload
module CE = Vruntime.Concrete_exec
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let cost_gen =
  QCheck2.Gen.(
    let small = int_range 0 1000 in
    tup3 (float_range 0. 1e6) small (tup4 small small small small)
    >>= fun (latency_us, instructions, (syscalls, io_calls, io_bytes, sync_ops)) ->
    return
      {
        Cost.latency_us;
        instructions;
        syscalls;
        io_calls;
        io_bytes;
        sync_ops;
        net_ops = instructions mod 7;
        allocations = syscalls mod 5;
        cache_ops = io_calls mod 3;
      })

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let prop_cost_monoid =
  QCheck2.Test.make ~name:"cost add is a commutative monoid" ~count:300
    QCheck2.Gen.(pair cost_gen cost_gen)
    (fun (a, b) ->
      Cost.equal (Cost.add a b) (Cost.add b a)
      && Cost.equal (Cost.add a Cost.zero) a
      && Cost.equal (Cost.sub (Cost.add a b) b) a)

let test_cost_metrics () =
  let c = { Cost.zero with Cost.syscalls = 3; latency_us = 1.5 } in
  check (Alcotest.float 0.001) "syscalls" 3. (Cost.metric c "syscalls");
  check (Alcotest.float 0.001) "latency" 1.5 (Cost.metric c "latency_us");
  Alcotest.check_raises "unknown metric" (Invalid_argument "Cost.metric: unknown metric nope")
    (fun () -> ignore (Cost.metric c "nope"));
  check Alcotest.int "metric count" 9 (List.length Cost.metric_names)

let test_cost_scale () =
  let c = { Cost.zero with Cost.io_bytes = 10; latency_us = 2. } in
  let s = Cost.scale 3 c in
  check Alcotest.int "bytes" 30 s.Cost.io_bytes;
  check (Alcotest.float 0.001) "latency" 6. s.Cost.latency_us

(* ------------------------------------------------------------------ *)
(* Hw_env                                                              *)
(* ------------------------------------------------------------------ *)

let test_prim_costs () =
  let env = Hw.hdd_server in
  let fsync = Hw.cost_of_prim env Vir.Ast.Fsync 1 in
  check Alcotest.int "fsync syscall" 1 fsync.Cost.syscalls;
  check Alcotest.bool "fsync slow" true (fsync.Cost.latency_us >= 1000.);
  let w1 = Hw.cost_of_prim env Vir.Ast.Pwrite 1024 in
  let w2 = Hw.cost_of_prim env Vir.Ast.Pwrite 4096 in
  check Alcotest.bool "write scales" true (w2.Cost.latency_us > w1.Cost.latency_us);
  check Alcotest.int "bytes recorded" 4096 w2.Cost.io_bytes;
  let m = Hw.cost_of_prim env Vir.Ast.Mutex_lock 1 in
  check Alcotest.int "mutex sync op" 1 m.Cost.sync_ops;
  (* environments order: ramdisk < ssd < hdd for fsync *)
  let f e = (Hw.cost_of_prim e Vir.Ast.Fsync 1).Cost.latency_us in
  check Alcotest.bool "env ordering" true
    (f Hw.ramdisk < f Hw.ssd_server && f Hw.ssd_server < f Hw.hdd_server)

let test_negative_magnitude_clamped () =
  let c = Hw.cost_of_prim Hw.hdd_server Vir.Ast.Pwrite (-5) in
  check Alcotest.int "clamped" 0 c.Cost.io_bytes

(* ------------------------------------------------------------------ *)
(* Config_registry                                                     *)
(* ------------------------------------------------------------------ *)

let registry =
  Reg.(
    make ~system:"t"
      [
        param_bool "flag" ~default:true "a flag";
        param_int "size" ~lo:8 ~hi:1024 ~default:64 "a size";
        param_enum "mode" ~values:[ "A"; "B"; "C" ] ~default:"B" "a mode";
        param_float "ratio" ~choices:[ 0.1; 0.5; 0.9 ] ~default_index:1 "a ratio";
      ])

let test_registry_validation () =
  Alcotest.check_raises "duplicate param" (Failure "registry d: duplicate parameter x")
    (fun () ->
      ignore
        Reg.(make ~system:"d" [ param_bool "x" ~default:false ""; param_bool "x" ~default:true "" ]));
  Alcotest.check_raises "bad enum default" (Failure "param m: default D not in values")
    (fun () -> ignore Reg.(param_enum "m" ~values:[ "A" ] ~default:"D" ""))

let test_registry_encode_decode () =
  let size = Reg.find registry "size" in
  check (Alcotest.option Alcotest.int) "encode" (Some 512) (Reg.encode size "512");
  check (Alcotest.option Alcotest.int) "reject oob" None (Reg.encode size "4096");
  let mode = Reg.find registry "mode" in
  check (Alcotest.option Alcotest.int) "enum encode" (Some 2) (Reg.encode mode "C");
  check Alcotest.string "enum decode" "C" (Reg.decode mode 2);
  let ratio = Reg.find registry "ratio" in
  check (Alcotest.option (Alcotest.float 0.0001)) "float decode" (Some 0.9)
    (Reg.decode_float ratio 2);
  check (Alcotest.option Alcotest.int) "float encode by text" (Some 0) (Reg.encode ratio "0.1")

let test_values () =
  let v = Reg.Values.defaults registry in
  check Alcotest.int "default" 64 (Reg.Values.get v "size");
  let v = Reg.Values.set v "size" 128 in
  check Alcotest.int "set" 128 (Reg.Values.get v "size");
  Alcotest.check_raises "invalid value" (Failure "config t: value 9999 out of domain for size")
    (fun () -> ignore (Reg.Values.set v "size" 9999));
  let v = Reg.Values.set_str v "mode" "A" in
  check Alcotest.int "set_str" 0 (Reg.Values.get v "mode");
  check Alcotest.int "lookup fallback" 7 (Reg.Values.lookup v "missing" 7)

let test_sym_var () =
  let p = Reg.find registry "size" in
  let v = Reg.sym_var p in
  check Alcotest.string "name" "size" v.Vsmt.Expr.name;
  check Alcotest.bool "origin" true (v.Vsmt.Expr.origin = Vsmt.Expr.Config);
  check Alcotest.int "dom lo" 8 (Vsmt.Dom.lo v.Vsmt.Expr.dom)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let template =
  Wl.(
    template "w"
      [ wparam_enum "op" ~values:[ "R"; "W" ] "op"; wparam_int "n" ~lo:1 ~hi:100 "count" ])

let test_workload () =
  let inst = Wl.instantiate_named template [ "op", "W"; "n", "5" ] in
  check Alcotest.int "op" 1 (Wl.value inst "op");
  check Alcotest.int "n" 5 (Wl.value inst "n");
  check (Alcotest.option Alcotest.int) "value_opt missing" None (Wl.value_opt inst "zzz");
  Alcotest.check_raises "out of domain" (Failure "template w: value 0 out of domain for n")
    (fun () -> ignore (Wl.instantiate template [ "n", 0 ]));
  let d = Wl.instantiate template [] in
  check Alcotest.int "defaults to lo" 1 (Wl.value d "n");
  check Alcotest.bool "describe mentions" true
    (String.length (Wl.describe inst) > 0)

(* ------------------------------------------------------------------ *)
(* Concrete_exec                                                       *)
(* ------------------------------------------------------------------ *)

let env = Hw.hdd_server
let no_config _ = 0
let no_workload _ = 0

let test_exec_arith_and_calls () =
  let p =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ call ~dest:"r" "add" [ i 3; i 4 ]; ret (lv "r" *. i 2) ];
        func "add" ~params:[ "x"; "y" ] [ ret (lv "x" +. lv "y") ];
      ]
  in
  let o = CE.run ~env p ~config:no_config ~workload:no_workload in
  check (Alcotest.option Alcotest.int) "result" (Some 14) o.CE.ret

let test_exec_globals_and_loops () =
  let p =
    program ~name:"t" ~entry:"main" ~globals:[ "acc", 0 ]
      [
        func "main"
          [
            set "i" (i 0);
            while_ (lv "i" <. i 5)
              [ setg "acc" (gv "acc" +. lv "i"); set "i" (lv "i" +. i 1) ];
            ret (gv "acc");
          ];
      ]
  in
  let o = CE.run ~env p ~config:no_config ~workload:no_workload in
  check (Alcotest.option Alcotest.int) "sum 0..4" (Some 10) o.CE.ret

let test_exec_fuel () =
  let p =
    program ~name:"spin" ~entry:"main" [ func "main" [ while_ (i 1) [ compute (i 1) ] ] ]
  in
  Alcotest.check_raises "out of fuel" (CE.Out_of_fuel "spin") (fun () ->
      ignore (CE.run ~fuel:1000 ~env p ~config:no_config ~workload:no_workload))

let test_exec_costs_and_serial () =
  let p =
    program ~name:"t" ~entry:"main"
      [ func "main" [ fsync; buffered_write (i 2048); mutex_lock; mutex_unlock; ret_void ] ]
  in
  let o = CE.run ~env p ~config:no_config ~workload:no_workload in
  check Alcotest.int "io bytes" 2048 o.CE.cost.Cost.io_bytes;
  check Alcotest.int "sync ops" 2 o.CE.cost.Cost.sync_ops;
  (* fsync + both mutex ops are serialized; the buffered write is not *)
  check Alcotest.bool "serial below total" true
    (o.CE.serial_us < o.CE.cost.Cost.latency_us);
  check Alcotest.bool "serial includes fsync" true (o.CE.serial_us >= env.Hw.fsync_us)

let test_exec_library () =
  let p =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ call ~dest:"n" "strlen" [ i 42 ]; ret (lv "n") ];
        library "strlen" ~effect:Pure ~cost:[ Compute, 10 ] (fun args ->
            match args with [ x ] -> x + 1 | _ -> 0);
      ]
  in
  let o = CE.run ~env p ~config:no_config ~workload:no_workload in
  check (Alcotest.option Alcotest.int) "semantics applied" (Some 43) o.CE.ret

let test_exec_per_function () =
  let p =
    program ~name:"t" ~entry:"main"
      [
        func "main" [ call "slow" []; call "fast" []; ret_void ];
        func "slow" [ fsync; ret_void ];
        func "fast" [ compute (i 10); ret_void ];
      ]
  in
  let o = CE.run ~env p ~config:no_config ~workload:no_workload in
  let lat name = List.assoc name o.CE.per_function in
  check Alcotest.bool "slow > fast" true (lat "slow" > lat "fast");
  check Alcotest.bool "main inclusive" true (lat "main" >= Stdlib.( +. ) (lat "slow") (lat "fast"))

let test_exec_entry_override () =
  let p =
    program ~name:"t" ~entry:"main"
      [ func "main" [ fsync; call "leaf" []; ret_void ]; func "leaf" [ ret (i 7) ] ]
  in
  let o = CE.run ~entry:"leaf" ~env p ~config:no_config ~workload:no_workload in
  check (Alcotest.option Alcotest.int) "leaf ran" (Some 7) o.CE.ret;
  check Alcotest.int "no fsync" 0 o.CE.cost.Cost.io_calls

let throughput_program =
  program ~name:"t" ~entry:"op"
    [ func "op" [ compute (i 10000); fsync; ret_void ] ]

let test_throughput_saturates () =
  let config = Reg.Values.defaults registry in
  let mix = [ Wl.instantiate template [], 1.0 ] in
  let x n = CE.throughput ~env throughput_program ~config ~mix ~clients:n in
  check Alcotest.bool "monotone" true (x 2 >= x 1 && x 16 >= x 2);
  (* fsync serializes: throughput saturates near 1/fsync_us *)
  let cap = Stdlib.( /. ) 1e6 env.Hw.fsync_us in
  check Alcotest.bool "saturation" true (x 64 <= cap && x 64 > Stdlib.( *. ) 0.8 cap)

let test_throughput_validation () =
  let config = Reg.Values.defaults registry in
  let mix = [ Wl.instantiate template [], 1.0 ] in
  Alcotest.check_raises "zero clients"
    (Invalid_argument "Concrete_exec.throughput: clients must be positive") (fun () ->
      ignore (CE.throughput ~env throughput_program ~config ~mix ~clients:0));
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Concrete_exec.throughput: empty mix") (fun () ->
      ignore (CE.throughput ~env throughput_program ~config ~mix:[] ~clients:2))

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    qt prop_cost_monoid;
    tc "cost metrics" test_cost_metrics;
    tc "cost scale" test_cost_scale;
    tc "prim costs" test_prim_costs;
    tc "negative magnitude" test_negative_magnitude_clamped;
    tc "registry validation" test_registry_validation;
    tc "registry encode/decode" test_registry_encode_decode;
    tc "values" test_values;
    tc "sym var" test_sym_var;
    tc "workload" test_workload;
    tc "exec arith and calls" test_exec_arith_and_calls;
    tc "exec globals and loops" test_exec_globals_and_loops;
    tc "exec fuel" test_exec_fuel;
    tc "exec costs and serial" test_exec_costs_and_serial;
    tc "exec library" test_exec_library;
    tc "exec per function" test_exec_per_function;
    tc "exec entry override" test_exec_entry_override;
    tc "throughput saturates" test_throughput_saturates;
    tc "throughput validation" test_throughput_validation;
  ]
