(* Cross-cutting correctness properties of the engine:

   1. partition: the terminated states' path conditions partition the
      input space — every concrete assignment satisfies exactly one;
   2. symbolic/concrete consistency: replaying a path's solver model
      concretely takes the same path (same functions, same logical costs);
   3. profile structure: a root's latency covers its children's. *)

module Ex = Vsymexec.Executor
module S = Vsymexec.Sym_state
module E = Vsmt.Expr
module Cost = Vruntime.Cost
open Vir.Builder

let check = Alcotest.check

let demo_registry =
  Vruntime.Config_registry.(
    make ~system:"prop"
      [
        param_bool "a" ~default:false "flag a";
        param_int "n" ~lo:0 ~hi:7 ~default:3 "small int";
      ])

let demo_workload =
  Vruntime.Workload.(
    template "w" [ wparam_enum "k" ~values:[ "X"; "Y"; "Z" ] "kind" ])

(* branches on all three variables, including a joint condition *)
let demo_program =
  program ~name:"prop" ~entry:"main"
    [
      func "main"
        [
          if_ (cfg "a" ==. i 1) [ call "fast" [] ] [ call "slow" [] ];
          if_ ((cfg "n" >. i 4) &&. (wl "k" ==. i 1)) [ fsync ] [];
          if_ (wl "k" ==. i 2) [ buffered_write (i 2048) ] [];
          ret_void;
        ];
      func "fast" [ compute (i 10); ret_void ];
      func "slow" [ compute (i 500); buffered_read (i 512); ret_void ];
    ]

let demo_target =
  {
    Violet.Pipeline.name = "prop";
    program = demo_program;
    registry = demo_registry;
    workloads = [ demo_workload ];
  }

let analyze () = Violet.Pipeline.analyze_exn demo_target "a"

let terminated (r : Ex.result) =
  List.filter
    (fun (st : S.t) -> match st.S.status with S.Terminated _ -> true | _ -> false)
    r.Ex.states

let assignment_gen =
  QCheck2.Gen.(
    tup3 (int_range 0 1) (int_range 0 7) (int_range 0 2) >>= fun (a, n, k) ->
    return [ "a", a; "n", n; "k", k ])

let satisfies assignment (st : S.t) =
  List.for_all
    (fun c ->
      match Vsmt.Solver.eval_in assignment c with Some v -> v <> 0 | None -> false)
    st.S.pc

let prop_partition =
  let a = analyze () in
  let states = terminated a.Violet.Pipeline.result in
  QCheck2.Test.make ~name:"path conditions partition the input space" ~count:200
    assignment_gen (fun assignment ->
      List.length (List.filter (satisfies assignment) states) = 1)

let test_replay_consistency () =
  let a = analyze () in
  let states = terminated a.Violet.Pipeline.result in
  check Alcotest.bool "several paths" true (List.length states >= 4);
  List.iter
    (fun (st : S.t) ->
      (* solve the path condition and replay concretely *)
      let vars =
        [ E.{ name = "a"; dom = Vsmt.Dom.bool; origin = Config };
          E.{ name = "n"; dom = Vsmt.Dom.int_range 0 7; origin = Config };
          E.{ name = "k"; dom = Vsmt.Dom.enum "k" [ "X"; "Y"; "Z" ]; origin = Workload } ]
      in
      let model =
        match Vsmt.Solver.check st.S.pc with
        | Vsmt.Solver.Sat m -> Vsmt.Solver.complete ~vars m
        | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> Alcotest.fail "pc must be satisfiable"
      in
      let lookup name =
        match List.assoc_opt name model with Some v -> v | None -> 0
      in
      let native =
        Vruntime.Concrete_exec.run ~env:Vruntime.Hw_env.hdd_server demo_program
          ~config:lookup ~workload:lookup
      in
      check Alcotest.int "same syscalls"
        native.Vruntime.Concrete_exec.cost.Cost.syscalls st.S.cost.Cost.syscalls;
      check Alcotest.int "same io bytes"
        native.Vruntime.Concrete_exec.cost.Cost.io_bytes st.S.cost.Cost.io_bytes;
      (* the functions visited natively are the functions in the trace *)
      let native_fns =
        List.sort String.compare
          (List.map fst native.Vruntime.Concrete_exec.per_function)
      in
      let traced_fns =
        List.sort_uniq String.compare
          (List.filter_map
             (fun (r : Vsymexec.Signals.record) ->
               if Vsymexec.Signals.is_call r then Some r.Vsymexec.Signals.fname else None)
             (S.signals_in_order st))
      in
      check (Alcotest.list Alcotest.string) "same call set" native_fns traced_fns)
    states

let test_profile_structure () =
  let a = analyze () in
  List.iter
    (fun (row : Vmodel.Cost_row.t) ->
      match Vtrace.Callpath.roots row.Vmodel.Cost_row.nodes with
      | [ root ] ->
        let child_sum =
          List.fold_left
            (fun acc (c : Vtrace.Callpath.node) -> Stdlib.( +. ) acc c.Vtrace.Callpath.latency_us)
            0.
            (Vtrace.Callpath.children row.Vmodel.Cost_row.nodes root.Vtrace.Callpath.cid)
        in
        check Alcotest.bool "root covers children" true
          (root.Vtrace.Callpath.latency_us >= Stdlib.( -. ) child_sum 1e-6)
      | _ -> Alcotest.fail "one root per path")
    a.Violet.Pipeline.rows

let test_poor_states_have_satisfiable_pc () =
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  let poor = Vmodel.Impact_model.poor_rows a.Violet.Pipeline.model in
  check Alcotest.bool "has poor rows" true (poor <> []);
  List.iter
    (fun (row : Vmodel.Cost_row.t) ->
      check Alcotest.bool "config constraints satisfiable" true
        (Vsmt.Solver.is_feasible
           (row.Vmodel.Cost_row.config_constraints @ row.Vmodel.Cost_row.workload_pred)))
    poor

let tests =
  [
    QCheck_alcotest.to_alcotest prop_partition;
    Alcotest.test_case "replay consistency" `Quick test_replay_consistency;
    Alcotest.test_case "profile structure" `Quick test_profile_structure;
    Alcotest.test_case "poor states satisfiable" `Quick test_poor_states_have_satisfiable_pc;
  ]
