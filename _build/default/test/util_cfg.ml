(* Shared test helper: build a concrete configuration from string settings. *)

let values registry settings =
  List.fold_left
    (fun v (name, s) -> Vruntime.Config_registry.Values.set_str v name s)
    (Vruntime.Config_registry.Values.defaults registry)
    settings
