(* End-to-end closure of the paper's workflow: for every detected known
   case, the impact model's poor state must come with an input predicate
   whose generated test case, run natively with the poor configuration,
   reproduces a slowdown against the good configuration — the validation
   loop the checker hands to operators (Section 4.7). *)

module P = Violet.Pipeline
module Cases = Targets.Cases

let check = Alcotest.check

let native_cost target entry ~config ~workload_assignment =
  let workload name =
    match List.assoc_opt name workload_assignment with Some v -> v | None -> 0
  in
  (Vruntime.Concrete_exec.run ~entry ~env:Vruntime.Hw_env.hdd_server
     target.P.program
     ~config:(fun n -> Vruntime.Config_registry.Values.get config n)
     ~workload)
    .Vruntime.Concrete_exec.cost

let fake_row cost =
  {
    Vmodel.Cost_row.state_id = 0;
    config_constraints = [];
    workload_pred = [];
    cost;
    traced_latency_us = cost.Vruntime.Cost.latency_us;
    chain = [];
    nodes = [];
    critical_ops = [];
  }

let reproduce (c : Cases.known_case) () =
  let target = Cases.target_of c.Cases.system in
  let entry = Cases.query_entry_of c.Cases.system in
  let opts = c.Cases.tweak P.default_options in
  let a = P.analyze_exn ~opts target c.Cases.param in
  let poor_rows =
    Violet.Detect.poor_rows_for target.P.registry a ~poor:c.Cases.poor_setting
  in
  check Alcotest.bool "detected" true (poor_rows <> []);
  (* take the worst enclosed poor state and its generated test case *)
  let row =
    List.fold_left
      (fun best (r : Vmodel.Cost_row.t) ->
        if r.Vmodel.Cost_row.traced_latency_us > best.Vmodel.Cost_row.traced_latency_us
        then r
        else best)
      (List.hd poor_rows) (List.tl poor_rows)
  in
  let poor_assignment = Violet.Detect.full_assignment target.P.registry c.Cases.poor_setting in
  let good_assignment = Violet.Detect.full_assignment target.P.registry c.Cases.good_setting in
  (* prefer a distinguishing test case built from the row's best pair whose
     fast side the good configuration can actually reach *)
  let test_case =
    let pair_case =
      List.find_map
        (fun (p : Vmodel.Diff_analysis.poor_pair) ->
          if
            p.Vmodel.Diff_analysis.slow.Vmodel.Cost_row.state_id
            = row.Vmodel.Cost_row.state_id
            && Vmodel.Cost_row.satisfied_by p.Vmodel.Diff_analysis.fast good_assignment
          then
            Vchecker.Test_case.of_pair ~poor:poor_assignment ~good:good_assignment
              ~slow:p.Vmodel.Diff_analysis.slow ~fast:p.Vmodel.Diff_analysis.fast
          else None)
        a.P.diff.Vmodel.Diff_analysis.pairs
    in
    match pair_case with Some tc -> Some tc | None -> Vchecker.Test_case.of_row row
  in
  match test_case with
  | None -> Alcotest.fail "poor state must yield a test case"
  | Some tc ->
    let config_of setting = Util_cfg.values target.P.registry setting in
    let cost setting =
      native_cost target entry ~config:(config_of setting)
        ~workload_assignment:tc.Vchecker.Test_case.workload
    in
    let poor_cost = cost c.Cases.poor_setting and good_cost = cost c.Cases.good_setting in
    (* reproduced when latency or any logical metric shows a >=30% hit —
       the I/O-metric cases (c3, c6, c17) have near-equal latencies, which
       is exactly why the paper tracks logical costs *)
    let reproduced =
      Vmodel.Diff_analysis.compare_pair ~threshold:0.3 ~slow:(fake_row poor_cost)
        ~fast:(fake_row good_cost)
      <> None
    in
    check Alcotest.bool
      (Printf.sprintf "%s: test case reproduces the slowdown (%.0f vs %.0f us)"
         c.Cases.id poor_cost.Vruntime.Cost.latency_us good_cost.Vruntime.Cost.latency_us)
      true reproduced

let detected_cases =
  List.filter (fun (c : Cases.known_case) -> c.Cases.expect_detected) Cases.known

let tests =
  List.map
    (fun (c : Cases.known_case) ->
      Alcotest.test_case ("reproduce " ^ c.Cases.id) `Slow (reproduce c))
    detected_cases
