(* Shared test fixtures: a miniature MySQL-like program modelled directly on
   the paper's Figure 3 (autocommit / flush_at_trx_commit / write_row), its
   registry, and its workload template.  Small enough to reason about state
   counts by hand, rich enough to exercise every engine feature. *)

open Vir.Builder

let registry =
  Vruntime.Config_registry.(
    make ~system:"mini"
      [
        param_bool "autocommit" ~default:true "commit each statement";
        param_int "flush_at_trx_commit" ~lo:0 ~hi:2 ~default:1 "redo flush policy";
        param_enum "binlog_format" ~values:[ "ROW"; "STATEMENT"; "MIXED" ] ~default:"ROW"
          "binary log format";
        param_int "log_buffer_size" ~lo:1024 ~hi:(64 * 1024 * 1024) ~default:(8 * 1024 * 1024)
          "redo log buffer bytes";
        param_bool "unused_param" ~default:false "never read by the code";
        param_bool "fp_param" ~hook:No_hook_function_pointer ~default:false
          "set through a function pointer; no hook";
      ])

let workload =
  Vruntime.Workload.(
    template "oltp"
      [
        wparam_enum "sql_command" ~values:[ "SELECT"; "INSERT"; "UPDATE" ] "query type";
        wparam_int "row_bytes" ~lo:64 ~hi:65536 "bytes changed by the row";
      ])

(* Figure 3, transliterated.  fil_flush is the fsync; log_write_up_to chooses
   between flush and buffered write on flush_at_trx_commit. *)
let program =
  program ~name:"mini_mysql" ~entry:"dispatch_command"
    [
      func "dispatch_command"
        [
          if_ (wl "sql_command" ==. i 0)
            [ call "read_row" [] ]
            [ call "write_row" [] ];
          ret_void;
        ];
      func "read_row" [ compute (i 400); buffered_read (i 4096); ret_void ];
      func "write_row"
        [
          compute (i 600);
          buffered_write (wl "row_bytes");
          call "log_reserve_and_open" [ wl "row_bytes" ];
          if_ (cfg "autocommit" ==. i 1) [ call "trx_commit_complete" [] ] [];
          ret_void;
        ];
      func "log_reserve_and_open" ~params:[ "len" ]
        [
          if_ (lv "len" >=. cfg "log_buffer_size" /. i 2)
            [ call "log_buffer_extend" [ (lv "len" +. i 1) *. i 2 ] ]
            [];
          log_append (lv "len");
          ret_void;
        ];
      func "log_buffer_extend" ~params:[ "new_size" ]
        [ mutex_lock; malloc (lv "new_size"); memcpy (lv "new_size"); mutex_unlock; ret_void ];
      func "trx_commit_complete"
        [
          call "log_write_up_to" [];
          ret_void;
        ];
      func "log_write_up_to"
        [
          if_ (cfg "flush_at_trx_commit" ==. i 1)
            [ call "log_write_buf" []; call "fil_flush" [] ]
            [ if_ (cfg "flush_at_trx_commit" ==. i 2) [ call "log_write_buf" [] ] [] ];
          ret_void;
        ];
      func "log_write_buf" [ pwrite (i 4096); ret_void ];
      func "fil_flush" [ fsync; ret_void ];
    ]

let target =
  {
    Violet.Pipeline.name = "mini";
    program;
    registry;
    workloads = [ workload ];
  }
