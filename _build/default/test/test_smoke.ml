(* End-to-end smoke tests on the Figure-3 fixture: the full pipeline must
   detect autocommit as specious for insert workloads, with
   flush_at_trx_commit as a related parameter. *)

module P = Violet.Pipeline
module M = Vmodel.Impact_model

let analyze () = P.analyze_exn Fixtures.target "autocommit"

let test_related () =
  let r = P.related_params Fixtures.target "autocommit" in
  Alcotest.(check bool)
    "flush_at_trx_commit influenced by autocommit" true
    (List.mem "flush_at_trx_commit" r.Vanalysis.Related_config.related)

let test_detects_poor_state () =
  let a = analyze () in
  Alcotest.(check bool) "has rows" true (a.P.rows <> []);
  Alcotest.(check bool)
    "has poor states" true
    (a.P.model.M.poor_state_ids <> [])

let test_poor_state_is_insert_autocommit () =
  let a = analyze () in
  let poor = M.poor_rows a.P.model in
  Alcotest.(check bool) "at least one poor row" true (poor <> []);
  (* the worst state must require autocommit=1, flush=1 and an INSERT/UPDATE *)
  let worst =
    List.fold_left
      (fun best (r : Vmodel.Cost_row.t) ->
        if r.Vmodel.Cost_row.traced_latency_us > best.Vmodel.Cost_row.traced_latency_us then r
        else best)
      (List.hd poor) (List.tl poor)
  in
  let sat = Vmodel.Cost_row.satisfied_by worst [ "autocommit", 1; "flush_at_trx_commit", 1 ] in
  Alcotest.(check bool) "worst row is autocommit=1 && flush=1" true sat;
  let is_write = Vmodel.Cost_row.workload_satisfied_by worst [ "sql_command", 1; "row_bytes", 64 ]
                 || Vmodel.Cost_row.workload_satisfied_by worst [ "sql_command", 2; "row_bytes", 64 ] in
  Alcotest.(check bool) "worst row needs a write query" true is_write

let test_critical_path_names_fsync_path () =
  let a = analyze () in
  let has_fil_flush =
    List.exists
      (fun (p : M.poor_pair_summary) -> List.mem "fil_flush" p.M.critical_path)
      a.P.model.M.poor_pairs
  in
  Alcotest.(check bool) "some critical path reaches fil_flush" true has_fil_flush

let test_model_roundtrip () =
  let a = analyze () in
  let s = M.to_string a.P.model in
  match M.of_string s with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check string) "target" a.P.model.M.target m.M.target;
    Alcotest.(check int) "rows" (List.length a.P.model.M.rows) (List.length m.M.rows);
    Alcotest.(check (list int)) "poor states" a.P.model.M.poor_state_ids m.M.poor_state_ids

let tests =
  [
    Alcotest.test_case "related params" `Quick test_related;
    Alcotest.test_case "detects poor state" `Quick test_detects_poor_state;
    Alcotest.test_case "poor state constraints" `Quick test_poor_state_is_insert_autocommit;
    Alcotest.test_case "critical path" `Quick test_critical_path_names_fsync_path;
    Alcotest.test_case "model roundtrip" `Quick test_model_roundtrip;
  ]
