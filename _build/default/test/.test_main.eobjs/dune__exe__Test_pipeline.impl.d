test/test_pipeline.ml: Alcotest Fixtures List Result Violet Vmodel
