test/test_vchecker.ml: Alcotest Filename Fixtures List Result String Sys Vchecker Violet Vmodel Vruntime Vsmt
