test/test_vtrace.ml: Alcotest Fixtures Float Hashtbl Int List Option QCheck2 QCheck_alcotest Stdlib Violet Vmodel Vsymexec Vtrace
