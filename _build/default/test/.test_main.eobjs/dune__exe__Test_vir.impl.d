test/test_vir.ml: Alcotest Array Fmt Int List String Vir
