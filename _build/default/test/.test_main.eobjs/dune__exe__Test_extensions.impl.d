test/test_extensions.ml: Alcotest Fixtures List Stdlib Violet Vir Vmodel Vruntime Vsmt Vsymexec
