test/test_endtoend.ml: Alcotest List Printf Targets Util_cfg Vchecker Violet Vmodel Vruntime
