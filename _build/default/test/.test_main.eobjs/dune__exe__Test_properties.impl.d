test/test_properties.ml: Alcotest Fixtures List QCheck2 QCheck_alcotest Stdlib String Violet Vir Vmodel Vruntime Vsmt Vsymexec Vtrace
