test/util_cfg.ml: List Vruntime
