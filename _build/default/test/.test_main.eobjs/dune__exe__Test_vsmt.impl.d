test/test_vsmt.ml: Alcotest Fmt List QCheck2 QCheck_alcotest Result Vsmt
