test/test_vanalysis.ml: Alcotest Hashtbl List Printf Vanalysis Vir
