test/test_smoke.ml: Alcotest Fixtures List Vanalysis Violet Vmodel
