test/test_patterns.ml: Alcotest List Printf String Targets Violet Vmodel
