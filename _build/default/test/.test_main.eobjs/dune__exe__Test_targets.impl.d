test/test_targets.ml: Alcotest List Printf Targets Violet Vruntime
