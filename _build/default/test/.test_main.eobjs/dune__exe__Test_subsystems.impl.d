test/test_subsystems.ml: Alcotest List Printf Targets Violet Vmodel Vruntime
