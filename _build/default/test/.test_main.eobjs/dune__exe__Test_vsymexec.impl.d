test/test_vsymexec.ml: Alcotest Float List Stdlib String Vir Vruntime Vsmt Vsymexec
