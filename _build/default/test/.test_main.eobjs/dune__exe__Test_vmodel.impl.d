test/test_vmodel.ml: Alcotest Filename Fixtures Float List Option QCheck2 QCheck_alcotest Result Sys Violet Vmodel Vruntime Vsmt
