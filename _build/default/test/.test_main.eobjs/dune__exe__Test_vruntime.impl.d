test/test_vruntime.ml: Alcotest List QCheck2 QCheck_alcotest Stdlib String Vir Vruntime Vsmt
