test/fixtures.ml: Violet Vir Vruntime
