test/test_tracefile.ml: Alcotest Filename Fixtures List Result Sys Violet Vmodel Vruntime Vtrace
