test/test_report.ml: Alcotest Fixtures Fmt List String Vchecker Violet Vmodel
