(* Tests for the replication/durability subsystems added beyond the paper's
   case list: each new performance parameter must be analyzable and its
   expensive setting must land in a poor state with the right mechanism. *)

module P = Violet.Pipeline

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let detect ?target system param poor =
  let target =
    match target with Some t -> t | None -> Targets.Cases.target_of system
  in
  let a = P.analyze_exn target param in
  a, Violet.Detect.detected target.P.registry a ~poor

let test_semi_sync_replication () =
  (* enabling semi-sync adds a replica round trip to every commit; the
     feature is built into the 5.6 program *)
  let a, detected = detect ~target:Targets.Mysql_model.target_56 "mysql"
      "rpl_semi_sync_master_enabled" [ "rpl_semi_sync_master_enabled", "ON" ] in
  check Alcotest.bool "detected" true detected;
  (* the mechanism is network, not disk *)
  let has_net_trigger =
    List.exists
      (fun (p : Vmodel.Diff_analysis.poor_pair) ->
        List.mem (Vmodel.Diff_analysis.Logical "net_ops") p.Vmodel.Diff_analysis.triggers)
      a.P.diff.Vmodel.Diff_analysis.pairs
  in
  check Alcotest.bool "net metric triggers" true has_net_trigger

let test_sync_standby () =
  let _, detected = detect "postgres" "synchronous_standby_names"
      [ "synchronous_standby_names", "quorum"; "synchronous_commit", "remote_write" ] in
  check Alcotest.bool "detected" true detected

let test_wal_compression_tradeoff () =
  (* compression trades CPU for bytes: both directions appear in the model *)
  let target = Targets.Cases.target_of "postgres" in
  let a = P.analyze_exn target "wal_compression" in
  let on_rows =
    List.filter
      (fun r -> Vmodel.Cost_row.satisfied_by r [ "wal_compression", 1 ])
      a.P.rows
  in
  let off_rows =
    List.filter
      (fun r -> Vmodel.Cost_row.satisfied_by r [ "wal_compression", 0 ])
      a.P.rows
  in
  let max_bytes rows =
    List.fold_left
      (fun acc (r : Vmodel.Cost_row.t) -> max acc r.Vmodel.Cost_row.cost.Vruntime.Cost.io_bytes)
      0 rows
  in
  check Alcotest.bool "rows for both settings" true (on_rows <> [] && off_rows <> []);
  check Alcotest.bool "compression writes fewer bytes" true
    (max_bytes on_rows < max_bytes off_rows)

let test_binlog_cache_spill () =
  let _, detected = detect "mysql" "binlog_cache_size" [ "binlog_cache_size", "4096" ] in
  check Alcotest.bool "small cache spills to disk" true detected

let test_dirty_pages_threshold () =
  let _, detected = detect "mysql" "innodb_max_dirty_pages_pct"
      [ "innodb_max_dirty_pages_pct", "1" ] in
  check Alcotest.bool "low threshold forces flushing" true detected

let test_new_params_analyzable () =
  check Alcotest.bool "semi-sync analyzable in 5.6" true
    (List.mem "rpl_semi_sync_master_enabled"
       (P.analyzable_params Targets.Mysql_model.target_56));
  List.iter
    (fun (system, param) ->
      let target = Targets.Cases.target_of system in
      check Alcotest.bool
        (Printf.sprintf "%s/%s analyzable" system param)
        true
        (List.mem param (P.analyzable_params target)))
    [
      "mysql", "binlog_cache_size";
      "mysql", "innodb_max_dirty_pages_pct";
      "mysql", "innodb_purge_threads";
      "postgres", "synchronous_standby_names";
      "postgres", "wal_compression";
      "apache", "LimitRequestFields";
      "squid", "memory_pools";
      "squid", "quick_abort_min";
    ]

let tests =
  [
    tc "semi-sync replication" test_semi_sync_replication;
    tc "synchronous standby" test_sync_standby;
    tc "wal compression tradeoff" test_wal_compression_tradeoff;
    tc "binlog cache spill" test_binlog_cache_spill;
    tc "dirty-pages threshold" test_dirty_pages_threshold;
    tc "new params analyzable" test_new_params_analyzable;
  ]
