(* Tests for the tracer back-end: return-address record matching (paper
   Figure 11), call-path reconstruction by cid/closest-address, and per-state
   profiles.  Includes a property test: for a random well-nested call tree,
   emitting signals and reconstructing yields exactly the original tree. *)

module Sig = Vsymexec.Signals
module RM = Vtrace.Record_match
module CP = Vtrace.Callpath

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* build signal records by hand *)
let mk_call ?(thread = 0) ~cid ~ts ~eip ~ret fname =
  { Sig.kind = Sig.Call { eip; ret_addr = ret }; fname; ts; thread; cid }

let mk_ret ?(thread = 0) ~cid ~ts ~ret fname =
  { Sig.kind = Sig.Ret { ret_addr = ret }; fname; ts; thread; cid }

(* a two-level call: main(0x1000) -> child(0x2000), return address 0x1010 *)
let simple_trace =
  [
    mk_call ~cid:0 ~ts:0. ~eip:0x1000 ~ret:0x10 "main";
    mk_call ~cid:1 ~ts:5. ~eip:0x2000 ~ret:0x1010 "child";
    mk_ret ~cid:2 ~ts:25. ~ret:0x1010 "child";
    mk_ret ~cid:3 ~ts:40. ~ret:0x10 "main";
  ]

let test_match_simple () =
  let entries = RM.match_records simple_trace in
  check Alcotest.int "two entries" 2 (List.length entries);
  let lat name =
    List.find_map
      (fun (e : RM.entry) ->
        if e.RM.call.Sig.fname = name then e.RM.latency_us else None)
      entries
  in
  check (Alcotest.option (Alcotest.float 0.001)) "child latency" (Some 20.) (lat "child");
  check (Alcotest.option (Alcotest.float 0.001)) "main latency" (Some 40.) (lat "main")

let test_match_out_of_order_returns () =
  (* the S2E anomaly the paper describes: the caller's return signal can
     arrive before the callee's; address matching still pairs correctly *)
  let trace =
    [
      mk_call ~cid:0 ~ts:0. ~eip:0x1000 ~ret:0x10 "main";
      mk_call ~cid:1 ~ts:5. ~eip:0x2000 ~ret:0x1010 "child";
      mk_ret ~cid:2 ~ts:40. ~ret:0x10 "main";
      mk_ret ~cid:3 ~ts:41. ~ret:0x1010 "child";
    ]
  in
  let entries = RM.match_records trace in
  check Alcotest.int "both matched" 2
    (List.length (List.filter (fun (e : RM.entry) -> e.RM.ret <> None) entries))

let test_match_missing_return () =
  let trace =
    [
      mk_call ~cid:0 ~ts:0. ~eip:0x1000 ~ret:0x10 "main";
      mk_call ~cid:1 ~ts:5. ~eip:0x2000 ~ret:0x1010 "child";
      mk_ret ~cid:2 ~ts:40. ~ret:0x10 "main";
    ]
  in
  let entries = RM.match_records trace in
  let unmatched = List.filter (fun (e : RM.entry) -> e.RM.ret = None) entries in
  check Alcotest.int "one unmatched" 1 (List.length unmatched);
  check Alcotest.string "it is the child" "child"
    (List.hd unmatched).RM.call.Sig.fname

let test_match_spurious_return_dropped () =
  let trace = [ mk_ret ~cid:0 ~ts:1. ~ret:0x9999 "ghost" ] @ simple_trace in
  check Alcotest.int "spurious ignored" 2 (List.length (RM.match_records trace))

let test_match_threads_partitioned () =
  (* same return address on two threads: matching must stay within threads *)
  let trace =
    [
      mk_call ~thread:1 ~cid:0 ~ts:0. ~eip:0x2000 ~ret:0x1010 "f";
      mk_call ~thread:2 ~cid:1 ~ts:2. ~eip:0x2000 ~ret:0x1010 "f";
      mk_ret ~thread:2 ~cid:2 ~ts:10. ~ret:0x1010 "f";
      mk_ret ~thread:1 ~cid:3 ~ts:30. ~ret:0x1010 "f";
    ]
  in
  let entries = RM.match_records trace in
  let lat_of_thread t =
    List.find_map
      (fun (e : RM.entry) ->
        if e.RM.call.Sig.thread = t then e.RM.latency_us else None)
      entries
  in
  check (Alcotest.option (Alcotest.float 0.001)) "thread 1" (Some 30.) (lat_of_thread 1);
  check (Alcotest.option (Alcotest.float 0.001)) "thread 2" (Some 8.) (lat_of_thread 2)

let test_recursive_same_ret_addr () =
  (* recursion produces repeated identical return addresses: LIFO pairing *)
  let trace =
    [
      mk_call ~cid:0 ~ts:0. ~eip:0x2000 ~ret:0x2010 "rec";
      mk_call ~cid:1 ~ts:5. ~eip:0x2000 ~ret:0x2010 "rec";
      mk_ret ~cid:2 ~ts:10. ~ret:0x2010 "rec";
      mk_ret ~cid:3 ~ts:20. ~ret:0x2010 "rec";
    ]
  in
  let entries = RM.match_records trace in
  let lats = List.filter_map (fun (e : RM.entry) -> e.RM.latency_us) entries in
  check (Alcotest.list (Alcotest.float 0.001)) "inner 5, outer 20"
    [ 5.; 20. ]
    (List.sort Float.compare lats)

(* ------------------------------------------------------------------ *)
(* Call-path reconstruction                                            *)
(* ------------------------------------------------------------------ *)

let test_reconstruct_parents () =
  let nodes = CP.reconstruct (RM.match_records simple_trace) in
  let child = match CP.find nodes 1 with Some n -> n | None -> Alcotest.fail "child" in
  check (Alcotest.option Alcotest.int) "child's parent is main" (Some 0) child.CP.parent;
  let main = match CP.find nodes 0 with Some n -> n | None -> Alcotest.fail "main" in
  check (Alcotest.option Alcotest.int) "main is a root" None main.CP.parent;
  check Alcotest.int "one root" 1 (List.length (CP.roots nodes));
  check Alcotest.int "child depth" 1 (CP.depth_of nodes child)

let test_exclusive_latency () =
  let nodes = CP.reconstruct (RM.match_records simple_trace) in
  let main = Option.get (CP.find nodes 0) in
  check (Alcotest.float 0.001) "main exclusive = 40 - 20" 20.
    (CP.exclusive_latency nodes main)

(* random well-nested call trees: emit + reconstruct = identity.  Node
   labels are assigned uniquely in pre-order, mirroring distinct functions
   with distinct start addresses (the builder guarantees this; only
   recursion repeats an address, where latest-wins is correct). *)
type tree = Node of int * tree list  (* function index, children *)

let shape_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then return (Node (0, []))
           else
             list_size (int_range 0 3) (self (n / 4)) >>= fun kids ->
             return (Node (0, kids))))

let relabel root =
  let next = ref 0 in
  let rec go (Node (_, kids)) =
    let f = !next in
    incr next;
    Node (f, List.map go kids)
  in
  go root

let addr_of f = 0x400000 + ((f + 1) * 0x1000)

let emit_tree root =
  let records = ref [] and cid = ref 0 and clock = ref 0. in
  let next_site = Hashtbl.create 32 in
  let site_of f =
    let s = match Hashtbl.find_opt next_site f with Some s -> s | None -> 0 in
    Hashtbl.replace next_site f (s + 1);
    s
  in
  let emit r = records := r :: !records in
  let rec go ~ret_addr (Node (f, kids)) =
    clock := Stdlib.( +. ) !clock 1.;
    emit
      { Sig.kind = Sig.Call { eip = addr_of f; ret_addr }; fname = string_of_int f;
        ts = !clock; thread = 0; cid = !cid };
    incr cid;
    List.iter
      (fun kid -> go ~ret_addr:(addr_of f + 0x10 + (site_of f * 8)) kid)
      kids;
    clock := Stdlib.( +. ) !clock 1.;
    emit
      { Sig.kind = Sig.Ret { ret_addr }; fname = string_of_int f; ts = !clock;
        thread = 0; cid = !cid };
    incr cid
  in
  go ~ret_addr:0x10 root;
  List.rev !records

(* Rebuild the tree from reconstructed nodes and compare shapes.  Note the
   emitter gives each tree level its own address range, which is what the
   closest-enclosing-address heuristic needs (like distinct functions). *)
type shape = S of int * shape list

let rec shape_of_tree (Node (f, kids)) = S (f, List.map shape_of_tree kids)

let shape_of_nodes nodes =
  let rec build (n : CP.node) =
    S
      ( int_of_string n.CP.fname,
        List.map build
          (List.sort (fun (a : CP.node) b -> Int.compare a.CP.cid b.CP.cid)
             (CP.children nodes n.CP.cid)) )
  in
  match CP.roots nodes with [ r ] -> Some (build r) | _ -> None

let prop_tree_roundtrip =
  QCheck2.Test.make ~name:"emit + reconstruct recovers the call tree" ~count:300
    shape_gen (fun shape ->
      let t = relabel shape in
      let records = emit_tree t in
      let nodes = CP.reconstruct (RM.match_records records) in
      shape_of_nodes nodes = Some (shape_of_tree t))

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_of_fixture () =
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  List.iter
    (fun (row : Vmodel.Cost_row.t) ->
      check Alcotest.bool "traced latency positive" true
        (row.Vmodel.Cost_row.traced_latency_us > 0.);
      check Alcotest.bool "has nodes" true (row.Vmodel.Cost_row.nodes <> []))
    a.Violet.Pipeline.rows

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "match simple" test_match_simple;
    tc "match out-of-order returns" test_match_out_of_order_returns;
    tc "match missing return" test_match_missing_return;
    tc "spurious return dropped" test_match_spurious_return_dropped;
    tc "threads partitioned" test_match_threads_partitioned;
    tc "recursion LIFO pairing" test_recursive_same_ret_addr;
    tc "reconstruct parents" test_reconstruct_parents;
    tc "exclusive latency" test_exclusive_latency;
    qt prop_tree_roundtrip;
    tc "profiles of fixture" test_profile_of_fixture;
  ]
