(* Tests for the on-disk trace boundary between the tracer and the trace
   analyzer (the paper's Figure 6 architecture). *)

module TF = Vtrace.Trace_file
module Profile = Vtrace.Profile

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let fixture_result () =
  (Violet.Pipeline.analyze_exn Fixtures.target "autocommit").Violet.Pipeline.result

let test_roundtrip_text () =
  let traces = TF.of_result (fixture_result ()) in
  check Alcotest.bool "nonempty" true (traces <> []);
  match TF.of_string (TF.to_string traces) with
  | Error e -> Alcotest.fail e
  | Ok traces' ->
    check Alcotest.int "count" (List.length traces) (List.length traces');
    List.iter2
      (fun (a : TF.state_trace) (b : TF.state_trace) ->
        check Alcotest.int "state id" a.TF.state_id b.TF.state_id;
        check Alcotest.int "records" (List.length a.TF.records) (List.length b.TF.records);
        check Alcotest.int "pc" (List.length a.TF.pc) (List.length b.TF.pc);
        check Alcotest.bool "cost" true (Vruntime.Cost.equal a.TF.cost b.TF.cost))
      traces traces'

let test_analysis_survives_file_boundary () =
  (* the trace analyzer must reach the same verdicts from a loaded trace as
     from live states *)
  let result = fixture_result () in
  let live_rows =
    List.map Vmodel.Cost_row.of_profile (Profile.of_result result)
  in
  let path = Filename.temp_file "violet_trace" ".vtr" in
  TF.save (TF.of_result result) path;
  let traces = match TF.load path with Ok t -> t | Error e -> Alcotest.fail e in
  Sys.remove path;
  let loaded_rows =
    List.map
      (fun t -> Vmodel.Cost_row.of_profile (TF.profile_of_state_trace t))
      traces
  in
  let live = Vmodel.Diff_analysis.analyze live_rows in
  let loaded = Vmodel.Diff_analysis.analyze loaded_rows in
  check (Alcotest.list Alcotest.int) "same poor states"
    live.Vmodel.Diff_analysis.poor_state_ids loaded.Vmodel.Diff_analysis.poor_state_ids;
  check Alcotest.int "same pair count"
    (List.length live.Vmodel.Diff_analysis.pairs)
    (List.length loaded.Vmodel.Diff_analysis.pairs)

let test_traced_latency_preserved () =
  let result = fixture_result () in
  let live = Profile.of_result result in
  let loaded =
    List.map TF.profile_of_state_trace (TF.of_result result)
  in
  List.iter2
    (fun (a : Profile.t) (b : Profile.t) ->
      check (Alcotest.float 0.001) "latency" a.Profile.traced_latency_us
        b.Profile.traced_latency_us)
    live loaded

let test_load_missing_file () =
  check Alcotest.bool "missing file errors" true
    (Result.is_error (TF.load "/nonexistent/violet.vtr"))

let test_malformed_rejected () =
  check Alcotest.bool "garbage" true (Result.is_error (TF.of_string "(state garbage)"));
  check Alcotest.bool "empty ok" true (TF.of_string "" = Ok [])

let tests =
  [
    tc "text roundtrip" test_roundtrip_text;
    tc "analysis survives file boundary" test_analysis_survives_file_boundary;
    tc "traced latency preserved" test_traced_latency_preserved;
    tc "missing file" test_load_missing_file;
    tc "malformed rejected" test_malformed_rejected;
  ]
