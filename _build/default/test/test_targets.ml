(* Integration tests over the four target-system models: registry sanity,
   workload resolution, concrete throughput behaviour, and the full
   known/unknown case matrices against the paper's ground truth. *)

module P = Violet.Pipeline
module Cases = Targets.Cases
module Reg = Vruntime.Config_registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let systems = [ "mysql"; "postgres"; "apache"; "squid" ]

let test_registries_sane () =
  List.iter
    (fun system ->
      let target = Cases.target_of system in
      let params = Reg.params target.P.registry in
      check Alcotest.bool (system ^ " has a serious registry") true
        (List.length params >= 25);
      check Alcotest.bool (system ^ " has non-perf params") true
        (List.exists (fun (p : Reg.param) -> not p.Reg.perf_related) params);
      check Alcotest.bool (system ^ " has unhookable params") true
        (List.exists (fun (p : Reg.param) -> p.Reg.hook <> Reg.Hooked) params))
    systems

let test_programs_run_concretely () =
  (* every standard workload of every system executes without errors and
     accrues cost *)
  List.iter
    (fun system ->
      let target = Cases.target_of system in
      let entry = Cases.query_entry_of system in
      let config = Reg.Values.defaults target.P.registry in
      List.iter
        (fun (name, mix) ->
          let qps =
            Vruntime.Concrete_exec.throughput ~entry ~env:Vruntime.Hw_env.hdd_server
              target.P.program ~config ~mix ~clients:8
          in
          check Alcotest.bool
            (Printf.sprintf "%s/%s positive throughput" system name)
            true (qps > 1.))
        (Cases.standard_workloads_of system @ Cases.validation_workloads_of system))
    systems

let test_case_registry_consistent () =
  check Alcotest.int "17 known cases" 17 (List.length Cases.known);
  check Alcotest.int "9 unknown cases" 9 (List.length Cases.unknown);
  List.iter
    (fun (c : Cases.known_case) ->
      let target = Cases.target_of c.Cases.system in
      (* settings must be valid strings for the registry *)
      ignore (Violet.Detect.full_assignment target.P.registry c.Cases.poor_setting);
      ignore (Violet.Detect.full_assignment target.P.registry c.Cases.good_setting);
      (* the trigger workload must resolve *)
      ignore (Cases.workload_mix_of c.Cases.system c.Cases.trigger_workload))
    Cases.known;
  List.iter
    (fun (u : Cases.unknown_case) ->
      let target = Cases.target_of u.Cases.u_system in
      ignore (Violet.Detect.full_assignment target.P.registry u.Cases.u_poor);
      ignore (Cases.workload_mix_of u.Cases.u_system u.Cases.u_workload))
    Cases.unknown

let test_fig2_shape () =
  let module M = Targets.Mysql_model in
  let qps ~mix ~autocommit =
    let config =
      Reg.Values.set_str (Reg.Values.defaults M.registry) "autocommit"
        (if autocommit then "ON" else "OFF")
    in
    Vruntime.Concrete_exec.throughput ~entry:M.query_entry ~env:Vruntime.Hw_env.hdd_server
      M.program ~config ~mix ~clients:32
  in
  let normal_ratio =
    qps ~mix:(M.normal_mix ~autocommit:false) ~autocommit:false
    /. qps ~mix:(M.normal_mix ~autocommit:true) ~autocommit:true
  in
  let insert_ratio =
    qps ~mix:(M.insert_mix ~autocommit:false) ~autocommit:false
    /. qps ~mix:(M.insert_mix ~autocommit:true) ~autocommit:true
  in
  check Alcotest.bool "normal workloads close (paper Fig 2a)" true
    (normal_ratio < 1.6 && normal_ratio > 0.7);
  check Alcotest.bool "insert-intensive ~6x (paper Fig 2b)" true
    (insert_ratio > 4. && insert_ratio < 9.)

let run_known (c : Cases.known_case) () =
  let target = Cases.target_of c.Cases.system in
  let opts = c.Cases.tweak P.default_options in
  let a = P.analyze_exn ~opts target c.Cases.param in
  let detected = Violet.Detect.detected target.P.registry a ~poor:c.Cases.poor_setting in
  check Alcotest.bool
    (Printf.sprintf "%s verdict matches the paper" c.Cases.id)
    c.Cases.expect_detected detected;
  (* a detected case's good setting must not be enclosed by a poor state of
     the same shape *)
  if c.Cases.expect_detected then begin
    let good_rows =
      Violet.Detect.poor_rows_for target.P.registry a ~poor:c.Cases.good_setting
    in
    let poor_rows =
      Violet.Detect.poor_rows_for target.P.registry a ~poor:c.Cases.poor_setting
    in
    (* the good setting can also fall inside poor states (cache=allow is
       slower than deny for uncachable objects, any wal_sync_method is slower
       than fsync=off); the invariant is that the poor setting is enclosed *)
    ignore good_rows;
    check Alcotest.bool
      (Printf.sprintf "%s poor setting enclosed by poor states" c.Cases.id)
      true (poor_rows <> [])
  end

let run_unknown (u : Cases.unknown_case) () =
  let target = Cases.target_of u.Cases.u_system in
  let a = P.analyze_exn target u.Cases.u_param in
  check Alcotest.bool
    (Printf.sprintf "%s/%s detected" u.Cases.u_system u.Cases.u_param)
    true
    (Violet.Detect.detected target.P.registry a ~poor:u.Cases.u_poor)

(* quick subset: one representative per system *)
let quick_cases = [ "c1"; "c7"; "c12"; "c14"; "c16" ]

let tests =
  [
    tc "registries sane" test_registries_sane;
    tc "programs run concretely" test_programs_run_concretely;
    tc "case registry consistent" test_case_registry_consistent;
    tc "figure 2 shape" test_fig2_shape;
  ]
  @ List.map
      (fun id -> tc ("known case " ^ id) (run_known (Cases.find_known id)))
      quick_cases
  @ List.filter_map
      (fun (c : Cases.known_case) ->
        if List.mem c.Cases.id quick_cases then None
        else Some (slow ("known case " ^ c.Cases.id) (run_known c)))
      Cases.known
  @ List.map
      (fun (u : Cases.unknown_case) ->
        slow
          (Printf.sprintf "unknown case %s/%s" u.Cases.u_system u.Cases.u_param)
          (run_unknown u))
      Cases.unknown
