(* Tests for the end-to-end pipeline, detection helpers and the native
   validation substrate. *)

module P = Violet.Pipeline
module Detect = Violet.Detect
module Validate = Violet.Validate
module M = Vmodel.Impact_model

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let test_errors () =
  check Alcotest.bool "unknown parameter" true
    (Result.is_error (P.analyze Fixtures.target "nonexistent"));
  check Alcotest.bool "non-hookable parameter" true
    (Result.is_error (P.analyze Fixtures.target "fp_param"));
  check Alcotest.bool "unused parameter" true
    (Result.is_error (P.analyze Fixtures.target "unused_param"))

let test_analyzable_params () =
  let ps = P.analyzable_params Fixtures.target in
  check Alcotest.bool "autocommit analyzable" true (List.mem "autocommit" ps);
  check Alcotest.bool "unused filtered" false (List.mem "unused_param" ps);
  check Alcotest.bool "non-hookable filtered" false (List.mem "fp_param" ps)

let test_hookable () =
  check Alcotest.bool "hooked" true (P.hookable Fixtures.target "autocommit");
  check Alcotest.bool "fn pointer" false (P.hookable Fixtures.target "fp_param");
  check Alcotest.bool "unknown" false (P.hookable Fixtures.target "zzz")

let test_target_only_ablation () =
  let with_related = P.analyze_exn Fixtures.target "autocommit" in
  let without =
    P.analyze_exn ~opts:{ P.default_options with P.include_related = false }
      Fixtures.target "autocommit"
  in
  check (Alcotest.list Alcotest.string) "no related set" []
    without.P.model.M.related;
  check Alcotest.bool "related set explores at least as much" true
    (with_related.P.model.M.explored_states >= without.P.model.M.explored_states)

let test_all_symbolic_explores_more () =
  let normal = P.analyze_exn Fixtures.target "autocommit" in
  let all =
    P.analyze_exn ~opts:{ P.default_options with P.all_symbolic = true } Fixtures.target
      "autocommit"
  in
  check Alcotest.bool "more states" true
    (all.P.model.M.explored_states > normal.P.model.M.explored_states)

let test_threshold_plumbs_through () =
  let strict =
    P.analyze_exn ~opts:{ P.default_options with P.threshold = 50.0 } Fixtures.target
      "autocommit"
  in
  let lax =
    P.analyze_exn ~opts:{ P.default_options with P.threshold = 0.25 } Fixtures.target
      "autocommit"
  in
  check Alcotest.bool "stricter finds fewer" true
    (List.length strict.P.model.M.poor_state_ids
    <= List.length lax.P.model.M.poor_state_ids)

let test_config_overrides () =
  (* with flush pinned to 0 the fsync path is unreachable: no poor state *)
  let a =
    P.analyze_exn
      ~opts:
        {
          P.default_options with
          P.include_related = false;
          config_overrides = [ "flush_at_trx_commit", 0 ];
        }
      Fixtures.target "autocommit"
  in
  check (Alcotest.list Alcotest.int) "no poor states" [] a.P.model.M.poor_state_ids

let test_workload_overrides () =
  (* restricting the symbolic workload to reads hides the commit path *)
  let a =
    P.analyze_exn
      ~opts:
        {
          P.default_options with
          P.sym_workload_params = [ "row_bytes" ];
          workload_overrides = [ "sql_command", 0 ];
        }
      Fixtures.target "autocommit"
  in
  check (Alcotest.list Alcotest.int) "nothing to find on reads" []
    a.P.model.M.poor_state_ids

let test_detect_helpers () =
  let a = P.analyze_exn Fixtures.target "autocommit" in
  check Alcotest.bool "poor combination detected" true
    (Detect.detected Fixtures.registry a
       ~poor:[ "autocommit", "ON"; "flush_at_trx_commit", "1" ]);
  check Alcotest.bool "good combination not detected" false
    (Detect.detected Fixtures.registry a ~poor:[ "autocommit", "OFF" ]);
  Alcotest.check_raises "invalid setting rejected"
    (Failure "config mini: cannot parse \"banana\" for autocommit") (fun () ->
      ignore (Detect.detected Fixtures.registry a ~poor:[ "autocommit", "banana" ]))

let test_validate_confirms_real_pair () =
  let a = P.analyze_exn Fixtures.target "autocommit" in
  let big =
    List.filter
      (fun (p : Vmodel.Diff_analysis.poor_pair) ->
        p.Vmodel.Diff_analysis.latency_ratio > 5.)
      a.P.diff.Vmodel.Diff_analysis.pairs
  in
  check Alcotest.bool "has big pairs" true (big <> []);
  let confirmed =
    List.for_all
      (fun pair ->
        match
          Validate.confirms ~threshold:1.0 ~target:Fixtures.target
            ~entry:"dispatch_command" pair
        with
        | Some ok -> ok
        | None -> true)
      big
  in
  check Alcotest.bool "all confirmed natively" true confirmed

let test_validate_ratio_direction () =
  let a = P.analyze_exn Fixtures.target "autocommit" in
  match
    List.find_opt
      (fun (p : Vmodel.Diff_analysis.poor_pair) ->
        p.Vmodel.Diff_analysis.latency_ratio > 5.)
      a.P.diff.Vmodel.Diff_analysis.pairs
  with
  | None -> Alcotest.fail "no big pair"
  | Some pair -> begin
    match
      Validate.pair_ratio ~target:Fixtures.target ~entry:"dispatch_command"
        ~slow:pair.Vmodel.Diff_analysis.slow ~fast:pair.Vmodel.Diff_analysis.fast ()
    with
    | Some v ->
      check Alcotest.bool "native agrees on direction" true (v.Validate.ratio > 1.5)
    | None -> Alcotest.fail "pair should be validatable"
  end

let test_virtual_time_accounted () =
  let a = P.analyze_exn Fixtures.target "autocommit" in
  check Alcotest.bool "startup + exploration" true
    (a.P.model.M.virtual_analysis_s > 40.)

let tests =
  [
    tc "analyze errors" test_errors;
    tc "analyzable params" test_analyzable_params;
    tc "hookable" test_hookable;
    tc "target-only ablation" test_target_only_ablation;
    tc "all-symbolic explores more" test_all_symbolic_explores_more;
    tc "threshold plumbs" test_threshold_plumbs_through;
    tc "config overrides" test_config_overrides;
    tc "workload overrides" test_workload_overrides;
    tc "detect helpers" test_detect_helpers;
    tc "validate confirms real pair" test_validate_confirms_real_pair;
    tc "validate ratio direction" test_validate_ratio_direction;
    tc "virtual time" test_virtual_time_accounted;
  ]
