(* Tests for the static analyzer: usage/taint analysis, classic vs broadened
   control dependency (the paper's Section 4.3 snippets), and Algorithms 1-2
   for related-parameter discovery. *)

module Usage = Vanalysis.Usage
module CD = Vanalysis.Control_dep
module RC = Vanalysis.Related_config
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let slist = Alcotest.(list string)

(* ------------------------------------------------------------------ *)
(* Usage / taint                                                       *)
(* ------------------------------------------------------------------ *)

let taint_program =
  program ~name:"t" ~entry:"main"
    ~globals:[ "m_cache_is_disabled", 0 ]
    [
      func "main"
        [
          (* the paper's data-flow bridge: a global assigned from a config *)
          setg "m_cache_is_disabled" (cfg "query_cache_type" ==. i 0);
          call "serve" [];
          ret_void;
        ];
      func "serve"
        [
          if_ (gv "m_cache_is_disabled" ==. i 0)
            [ if_ (cfg "wlock_invalidate" ==. i 1) [ cache_store ] [] ]
            [];
          call ~dest:"d" "is_disabled" [];
          if_ (lv "d" ==. i 1) [ compute (i 5) ] [];
          ret_void;
        ];
      func "is_disabled" [ ret (gv "m_cache_is_disabled") ];
    ]

let test_taint_through_global () =
  let u = Usage.analyze taint_program in
  (* the branch on the tainted global counts as a usage of the config *)
  check slist "branch params include config via global"
    [ "query_cache_type"; "wlock_invalidate" ]
    (Usage.branch_params u ~func:"serve")

let test_taint_through_return () =
  let u = Usage.analyze taint_program in
  check slist "return taint" [ "query_cache_type" ] (Usage.return_taint u "is_disabled")

let test_usage_functions () =
  let u = Usage.analyze taint_program in
  check Alcotest.bool "wlock used in serve" true
    (List.mem "serve" (Usage.usage_functions u "wlock_invalidate"));
  check Alcotest.bool "qct used in main" true
    (List.mem "main" (Usage.usage_functions u "query_cache_type"))

let test_usage_guards_nested () =
  let u = Usage.analyze taint_program in
  (* wlock_invalidate's test is nested under the (tainted) cache branch *)
  let guards = Usage.usage_guards u ~func:"serve" ~param:"wlock_invalidate" in
  check Alcotest.bool "guarded by query_cache_type" true
    (List.exists (fun g -> List.mem "query_cache_type" g) guards)

let test_short_circuit_guard () =
  (* if (a && b): the b test is control dependent on a *)
  let p =
    program ~name:"t" ~entry:"main"
      [
        func "main"
          [ if_ ((cfg "a" ==. i 1) &&. (cfg "b" ==. i 1)) [ fsync ] []; ret_void ];
      ]
  in
  let u = Usage.analyze p in
  let guards_b = Usage.usage_guards u ~func:"main" ~param:"b" in
  check Alcotest.bool "b guarded by a" true (List.exists (List.mem "a") guards_b);
  let guards_a = Usage.usage_guards u ~func:"main" ~param:"a" in
  check Alcotest.bool "a not guarded by b" false (List.exists (List.mem "b") guards_a)

(* ------------------------------------------------------------------ *)
(* Control dependency: the paper's snippets (1) and (2)                *)
(* ------------------------------------------------------------------ *)

(* snippet 1: strictly nested ifs *)
let snippet1 =
  func "s1"
    [
      if_ (cfg "a" ==. i 1)
        [ if_ (cfg "b" ==. i 1) [ if_ (cfg "c" ==. i 1) [ if_ (cfg "d" ==. i 1) [] [] ] [] ] [] ]
        [];
    ]

(* snippet 2: sequential ifs inside one enclosing if *)
let snippet2 =
  func "s2"
    [
      if_ (cfg "a" ==. i 1)
        [
          if_ (cfg "b" ==. i 1) [] [];
          if_ (cfg "c" ==. i 1) [] [];
          if_ (cfg "d" ==. i 1) [] [];
        ]
        [];
    ]

let branch_ids f =
  (* node ids of the If statements reading each config, via the broadened
     walk's numbering: entry=0 exit=1 then pre-order *)
  let next = ref 2 in
  let tbl = Hashtbl.create 8 in
  let rec go block =
    List.iter
      (fun (s : Vir.Ast.stmt) ->
        let id = !next in
        incr next;
        match s with
        | Vir.Ast.If (c, t, e) ->
          List.iter (fun p -> Hashtbl.replace tbl p id) (Vir.Ast.config_reads c);
          go t;
          go e
        | Vir.Ast.While (c, b) ->
          List.iter (fun p -> Hashtbl.replace tbl p id) (Vir.Ast.config_reads c);
          go b
        | _ -> ())
      block
  in
  go (Vir.Ast.func_body f);
  fun name -> Hashtbl.find tbl name

let test_snippet1_classic_vs_broadened () =
  let g = Vir.Cfg.of_func snippet1 in
  let id = branch_ids snippet1 in
  (* classic: d's test is control dependent on c but NOT on a *)
  check Alcotest.bool "classic: d dep on c" true (CD.classic g ~on:(id "c") (id "d"));
  check Alcotest.bool "classic: d not dep on a" false (CD.classic g ~on:(id "a") (id "d"));
  (* broadened: all four are dependent *)
  let pairs = CD.broadened_pairs snippet1 in
  check Alcotest.bool "broadened: d dep on a" true (List.mem (id "a", id "d") pairs);
  check Alcotest.bool "broadened: d dep on b" true (List.mem (id "b", id "d") pairs);
  check Alcotest.bool "broadened: d dep on c" true (List.mem (id "c", id "d") pairs)

let test_snippet2_classic_agrees () =
  let g = Vir.Cfg.of_func snippet2 in
  let id = branch_ids snippet2 in
  (* in snippet 2 even the classic definition makes d dependent on a *)
  check Alcotest.bool "classic: d dep on a" true (CD.classic g ~on:(id "a") (id "d"));
  (* but d is not classic-dependent on its sibling c *)
  check Alcotest.bool "classic: d not dep on c" false (CD.classic g ~on:(id "c") (id "d"));
  let pairs = CD.broadened_pairs snippet2 in
  check Alcotest.bool "broadened: d dep on a" true (List.mem (id "a", id "d") pairs);
  check Alcotest.bool "broadened: siblings stay independent" false
    (List.mem (id "c", id "d") pairs)

(* ------------------------------------------------------------------ *)
(* Related-config discovery (Figure 10 / Algorithms 1-2)               *)
(* ------------------------------------------------------------------ *)

(* the paper's Figure 10 shape: binlog_format gates the call chain that
   reaches autocommit's usage; autocommit gates flush_at_trx_commit *)
let fig10 =
  program ~name:"f10" ~entry:"main"
    [
      func "main" [ call "decide_logging_format" []; ret_void ];
      func "decide_logging_format"
        [ if_ (cfg "binlog_format" ==. i 0) [ call "write_row" [] ] []; ret_void ];
      func "write_row"
        [ if_ (cfg "autocommit" ==. i 1) [ call "commit" [] ] []; ret_void ];
      func "commit" [ if_ (cfg "flush" ==. i 1) [ fsync ] []; ret_void ];
    ]

let test_enabler_via_call_chain () =
  let r = RC.analyze fig10 "autocommit" in
  check slist "enablers" [ "binlog_format" ] r.RC.enablers;
  check slist "influenced" [ "flush" ] r.RC.influenced;
  check slist "related" [ "binlog_format"; "flush" ] r.RC.related

let test_flush_enablers_transitive () =
  let r = RC.analyze fig10 "flush" in
  (* flush's usage is reached through callsites guarded by both params *)
  check slist "enablers" [ "autocommit"; "binlog_format" ] r.RC.enablers;
  check slist "influenced" [] r.RC.influenced

let test_unrelated_params_stay_unrelated () =
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            if_ (cfg "x" >. i 100) [ compute (i 1) ] [];
            if_ (cfg "y" ==. i 1) [ fsync ] [];
            ret_void;
          ];
      ]
  in
  let r = RC.analyze p "y" in
  check slist "no relation" [] r.RC.related

let test_analyze_all_consistent () =
  let all = RC.analyze_all fig10 in
  check Alcotest.int "three params" 3 (List.length all);
  let lookup p = List.assoc p all in
  (* influenced is the inverse of enablers across the whole result *)
  List.iter
    (fun (p, (r : RC.result)) ->
      List.iter
        (fun q ->
          check Alcotest.bool
            (Printf.sprintf "%s enabler of %s implies influence" q p)
            true
            (List.mem p (lookup q).RC.influenced))
        r.RC.enablers)
    all

let test_dataflow_bridge_related () =
  (* query_cache_type is an enabler of wlock_invalidate via the tainted
     global, the paper's is_disabled() example *)
  let r = RC.analyze taint_program "wlock_invalidate" in
  check Alcotest.bool "bridge found" true (List.mem "query_cache_type" r.RC.enablers)

let tests =
  [
    tc "taint through global" test_taint_through_global;
    tc "taint through return" test_taint_through_return;
    tc "usage functions" test_usage_functions;
    tc "usage guards nested" test_usage_guards_nested;
    tc "short-circuit guard" test_short_circuit_guard;
    tc "snippet1 classic vs broadened" test_snippet1_classic_vs_broadened;
    tc "snippet2 classic agrees" test_snippet2_classic_agrees;
    tc "enabler via call chain (Figure 10)" test_enabler_via_call_chain;
    tc "transitive enablers" test_flush_enablers_transitive;
    tc "unrelated params" test_unrelated_params_stay_unrelated;
    tc "analyze_all consistent" test_analyze_all_consistent;
    tc "dataflow bridge" test_dataflow_bridge_related;
  ]
