(* The paper's running example (Sections 2.2 and 3.1): reason about MySQL's
   autocommit parameter.

   Run with:  dune exec examples/mysql_autocommit.exe

   The analysis discovers that autocommit's performance effect depends on
   innodb_flush_log_at_trx_commit (and that binlog_format enables it),
   derives the cost table of Table 1, and explains the poor combination
   with a differential critical path ending at the fsync in fil_flush. *)

module M = Vmodel.Impact_model

let () =
  let target = Targets.Mysql_model.target in
  let a = Violet.Pipeline.analyze_exn target "autocommit" in
  let model = a.Violet.Pipeline.model in

  Fmt.pr "== static analysis ==@.";
  Fmt.pr "enablers:   %s@."
    (String.concat ", " a.Violet.Pipeline.related.Vanalysis.Related_config.enablers);
  Fmt.pr "influenced: %s@.@."
    (String.concat ", " a.Violet.Pipeline.related.Vanalysis.Related_config.influenced);

  Fmt.pr "== exploration ==@.";
  Fmt.pr "%d states explored, %d poor@.@." model.M.explored_states
    (List.length model.M.poor_state_ids);

  Fmt.pr "== the poor combination ==@.";
  let poor = [ "autocommit", "ON"; "innodb_flush_log_at_trx_commit", "1" ] in
  let rows =
    Violet.Detect.poor_rows_for target.Violet.Pipeline.registry a ~poor
  in
  List.iteri
    (fun idx (row : Vmodel.Cost_row.t) ->
      if idx < 3 then
        Fmt.pr "poor state %d: %s@.  cost %s@.  input: %s@." row.Vmodel.Cost_row.state_id
          (Vmodel.Cost_row.constraint_string row)
          (Vruntime.Cost.summary row.Vmodel.Cost_row.cost)
          (match Vchecker.Test_case.of_row row with
          | Some tc -> tc.Vchecker.Test_case.description
          | None -> "-"))
    rows;

  Fmt.pr "@.== why: differential critical path ==@.";
  let interesting (p : M.poor_pair_summary) =
    List.mem "fil_flush" p.M.critical_path
  in
  (match List.find_opt interesting model.M.poor_pairs with
  | Some p ->
    Fmt.pr "state %d is %.1fx slower than state %d (%s)@." p.M.slow_id p.M.latency_ratio
      p.M.fast_id p.M.trigger;
    Fmt.pr "critical path: %s@." (String.concat " -> " p.M.critical_path)
  | None -> Fmt.pr "(no fsync-rooted pair found)@.");

  Fmt.pr "@.== validating with the throughput simulator (Figure 2) ==@.";
  let qps ~autocommit mix =
    let config =
      Vruntime.Config_registry.Values.set_str
        (Vruntime.Config_registry.Values.defaults Targets.Mysql_model.registry)
        "autocommit"
        (if autocommit then "ON" else "OFF")
    in
    Vruntime.Concrete_exec.throughput ~entry:Targets.Mysql_model.query_entry
      ~env:Vruntime.Hw_env.hdd_server Targets.Mysql_model.program ~config ~mix ~clients:32
  in
  Fmt.pr "insert-intensive: autocommit ON %.0f QPS, OFF (batched commits) %.0f QPS@."
    (qps ~autocommit:true (Targets.Mysql_model.insert_mix ~autocommit:true))
    (qps ~autocommit:false (Targets.Mysql_model.insert_mix ~autocommit:false))
