examples/quickstart.ml: Fmt List String Vanalysis Vchecker Violet Vir Vruntime
