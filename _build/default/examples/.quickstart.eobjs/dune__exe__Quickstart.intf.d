examples/quickstart.mli:
