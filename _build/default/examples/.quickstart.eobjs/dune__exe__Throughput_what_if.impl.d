examples/throughput_what_if.ml: Fmt List Targets Violet Vmodel Vruntime
