examples/postgres_checker.ml: Filename Fmt Fun List Targets Vchecker Violet Vmodel
