examples/postgres_checker.mli:
