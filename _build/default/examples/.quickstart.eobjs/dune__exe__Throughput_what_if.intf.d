examples/throughput_what_if.mli:
