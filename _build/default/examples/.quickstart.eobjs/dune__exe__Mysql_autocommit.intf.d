examples/mysql_autocommit.mli:
