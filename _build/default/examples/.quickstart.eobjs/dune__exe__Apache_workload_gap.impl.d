examples/apache_workload_gap.ml: Fmt List Targets Violet Vmodel
