examples/mysql_autocommit.ml: Fmt List String Targets Vanalysis Vchecker Violet Vmodel Vruntime
