examples/apache_workload_gap.mli:
