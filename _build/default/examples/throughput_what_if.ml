(* Extrapolating impact models across environments (paper Sections 2.4,
   4.5): logical cost metrics let Violet flag settings whose damage a fast
   test disk would hide.

   Run with:  dune exec examples/throughput_what_if.exe

   We analyze MySQL's innodb_flush_log_at_trx_commit on the symbolic side,
   then replay the poor and good settings concretely on three hardware
   environments.  On the ramdisk "canary cluster" the settings are nearly
   indistinguishable — the paper's Section 1 incident in miniature — while
   the logical metrics (syscalls, I/O calls) already predict the production
   HDD behaviour. *)

module CE = Vruntime.Concrete_exec

let envs = [ Vruntime.Hw_env.hdd_server; Vruntime.Hw_env.ssd_server; Vruntime.Hw_env.ramdisk ]

let () =
  (* symbolic side: the model shows the flush=1 path has extra fsync and
     I/O calls regardless of hardware *)
  let target = Targets.Mysql_model.target in
  let a = Violet.Pipeline.analyze_exn target "innodb_flush_log_at_trx_commit" in
  let poor_rows =
    Violet.Detect.poor_rows_for target.Violet.Pipeline.registry a
      ~poor:[ "innodb_flush_log_at_trx_commit", "1" ]
  in
  (match poor_rows with
  | row :: _ ->
    Fmt.pr "impact model: flush=1 state does %d syscalls / %d I/O calls per op@.@."
      row.Vmodel.Cost_row.cost.Vruntime.Cost.syscalls
      row.Vmodel.Cost_row.cost.Vruntime.Cost.io_calls
  | [] -> Fmt.pr "no poor state found?!@.");

  (* concrete side: throughput of the insert workload per environment *)
  Fmt.pr "%-12s %14s %14s %8s@." "environment" "flush=1 QPS" "flush=0 QPS" "ratio";
  List.iter
    (fun env ->
      let qps setting =
        let config =
          Vruntime.Config_registry.Values.set_str
            (Vruntime.Config_registry.Values.defaults Targets.Mysql_model.registry)
            "innodb_flush_log_at_trx_commit" setting
        in
        CE.throughput ~entry:Targets.Mysql_model.query_entry ~env
          Targets.Mysql_model.program ~config
          ~mix:(Targets.Mysql_model.insert_mix ~autocommit:true)
          ~clients:32
      in
      let q1 = qps "1" and q0 = qps "0" in
      Fmt.pr "%-12s %14.0f %14.0f %8.2f@." env.Vruntime.Hw_env.name q1 q0 (q0 /. q1))
    envs;
  Fmt.pr
    "@.a canary on the ramdisk would pass this configuration; the impact model's \
     logical metrics flag it anyway.@."
