(* Quickstart: model a small system in the IR, analyze one parameter, and
   read the resulting performance impact model.

   Run with:  dune exec examples/quickstart.exe

   The program below is a compressed version of the paper's Figure 3: a
   write path whose commit behaviour depends on [autocommit], with
   [flush_policy] selecting between an fsync and a buffered write. *)

let registry =
  Vruntime.Config_registry.(
    make ~system:"demo"
      [
        param_bool "autocommit" ~default:true "commit after every statement";
        param_int "flush_policy" ~lo:0 ~hi:2 ~default:1 "0 = none, 1 = fsync, 2 = write";
      ])

let workload =
  Vruntime.Workload.(
    template "requests"
      [ wparam_enum "kind" ~values:[ "READ"; "WRITE" ] "request type" ])

let program =
  let open Vir.Builder in
  program ~name:"demo" ~entry:"handle"
    [
      func "handle"
        [
          if_ (wl "kind" ==. i 1)
            [ call "write_row" [] ]
            [ buffered_read (i 4096); compute (i 300) ];
          ret_void;
        ];
      func "write_row"
        [
          buffered_write (i 512);
          if_ (cfg "autocommit" ==. i 1) [ call "commit" [] ] [];
          ret_void;
        ];
      func "commit"
        [
          if_ (cfg "flush_policy" ==. i 1)
            [ call "flush_to_disk" [] ]
            [ if_ (cfg "flush_policy" ==. i 2) [ pwrite (i 4096) ] [] ];
          ret_void;
        ];
      func "flush_to_disk" [ pwrite (i 4096); fsync; ret_void ];
    ]

let target =
  { Violet.Pipeline.name = "demo"; program; registry; workloads = [ workload ] }

let () =
  (* 1. discover related parameters statically *)
  let related = Violet.Pipeline.related_params target "autocommit" in
  Fmt.pr "related parameters of autocommit: [%s]@.@."
    (String.concat ", " related.Vanalysis.Related_config.related);
  (* 2. run the full pipeline: symbolic execution + trace analysis *)
  let a = Violet.Pipeline.analyze_exn target "autocommit" in
  Fmt.pr "%a@." Violet.Report.pp_analysis a;
  (* 3. ask whether a concrete setting falls in a poor state *)
  let poor = [ "autocommit", "ON"; "flush_policy", "1" ] in
  Fmt.pr "is {%s} specious?  %b@."
    (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) poor))
    (Violet.Detect.detected registry a ~poor);
  (* 4. generate a validation test case from the poor state's input predicate *)
  match Violet.Detect.poor_rows_for registry a ~poor with
  | row :: _ -> begin
    match Vchecker.Test_case.of_row row with
    | Some tc -> Fmt.pr "to reproduce: %s@." tc.Vchecker.Test_case.description
    | None -> ()
  end
  | [] -> ()
