(* Workload templates decide what Violet can see (paper Sections 5.2, 7.2).

   Run with:  dune exec examples/apache_workload_gap.exe

   The paper's Violet missed Apache's MaxKeepAliveRequests and
   KeepAliveTimeout (c14/c15) because its workload templates did not
   parameterize HTTP keep-alive.  This example reproduces the miss with the
   default template, then closes the gap by analyzing with the richer
   [http_keepalive] template — the fix the paper implies. *)

let analyze_with ~template param =
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.workload_template = Some template;
    }
  in
  Violet.Pipeline.analyze_exn ~opts Targets.Apache_model.target param

let report ~template param poor =
  let a = analyze_with ~template param in
  let m = a.Violet.Pipeline.model in
  let detected =
    Violet.Detect.detected Targets.Apache_model.registry a ~poor
  in
  Fmt.pr "  template %-16s states=%-4d poor=%-3d detected=%b@." template
    m.Vmodel.Impact_model.explored_states
    (List.length m.Vmodel.Impact_model.poor_state_ids)
    detected;
  detected

let () =
  Fmt.pr "c14: MaxKeepAliveRequests = 2 (reconnect churn)@.";
  let d1 = report ~template:"http" "MaxKeepAliveRequests" [ "MaxKeepAliveRequests", "2" ] in
  let d2 =
    report ~template:"http_keepalive" "MaxKeepAliveRequests"
      [ "MaxKeepAliveRequests", "2" ]
  in
  Fmt.pr "@.c15: KeepAliveTimeout = 120 (workers pinned to idle connections)@.";
  let d3 = report ~template:"http" "KeepAliveTimeout" [ "KeepAliveTimeout", "120" ] in
  let d4 =
    report ~template:"http_keepalive" "KeepAliveTimeout" [ "KeepAliveTimeout", "120" ]
  in
  Fmt.pr
    "@.with the default template both cases are invisible (the paper's result); \
     exposing keep-alive as a workload parameter makes both detectable.@.";
  assert ((not d1) && d2 && (not d3) && d4)
