type origin = Config | Workload | Internal

type var = { name : string; dom : Dom.t; origin : origin }

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type t =
  | Const of int
  | Var of var
  | Not of t
  | Neg of t
  | Binop of binop * t * t
  | Ite of t * t * t

let var ?(origin = Config) name dom = Var { name; dom; origin }
let const v = Const v
let bool_ b = Const (if b then 1 else 0)
let tru = Const 1
let fls = Const 0

let ( ==. ) a b = Binop (Eq, a, b)
let ( <>. ) a b = Binop (Ne, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( <=. ) a b = Binop (Le, a, b)
let ( >. ) a b = Binop (Gt, a, b)
let ( >=. ) a b = Binop (Ge, a, b)
let ( &&. ) a b = Binop (And, a, b)
let ( ||. ) a b = Binop (Or, a, b)
let ( +. ) a b = Binop (Add, a, b)
let ( -. ) a b = Binop (Sub, a, b)
let ( *. ) a b = Binop (Mul, a, b)
let ( /. ) a b = Binop (Div, a, b)
let ( %. ) a b = Binop (Mod, a, b)
let not_ e = Not e
let ite c a b = Ite (c, a, b)

let is_const = function Const v -> Some v | Var _ | Not _ | Neg _ | Binop _ | Ite _ -> None

let truthy v = v <> 0

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | And -> if truthy a && truthy b then 1 else 0
  | Or -> if truthy a || truthy b then 1 else 0

let rec eval env = function
  | Const v -> v
  | Var v -> env v
  | Not e -> if truthy (eval env e) then 0 else 1
  | Neg e -> -eval env e
  | Binop (And, a, b) -> if truthy (eval env a) then (if truthy (eval env b) then 1 else 0) else 0
  | Binop (Or, a, b) -> if truthy (eval env a) then 1 else if truthy (eval env b) then 1 else 0
  | Binop (op, a, b) -> apply_binop op (eval env a) (eval env b)
  | Ite (c, a, b) -> if truthy (eval env c) then eval env a else eval env b

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v.name) then begin
        Hashtbl.add seen v.name ();
        acc := v :: !acc
      end
    | Not e | Neg e -> go e
    | Binop (_, a, b) -> go a; go b
    | Ite (c, a, b) -> go c; go a; go b
  in
  go e;
  List.rev !acc

let rec has_var = function
  | Const _ -> false
  | Var _ -> true
  | Not e | Neg e -> has_var e
  | Binop (_, a, b) -> has_var a || has_var b
  | Ite (c, a, b) -> has_var c || has_var a || has_var b

let rec subst f = function
  | Const _ as e -> e
  | Var v as e -> ( match f v with Some e' -> e' | None -> e)
  | Not e -> Not (subst f e)
  | Neg e -> Neg (subst f e)
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Ite (c, a, b) -> Ite (subst f c, subst f a, subst f b)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

(* [friendly] renders var-vs-constant comparisons in domain vocabulary. *)
let pp_gen ~friendly ppf e =
  let rec go ppf ~ctx e =
    match e with
    | Const v -> Fmt.int ppf v
    | Var v -> Fmt.string ppf v.name
    | Not e -> Fmt.pf ppf "!%a" (fun ppf -> go ppf ~ctx:9) e
    | Neg e -> Fmt.pf ppf "-%a" (fun ppf -> go ppf ~ctx:9) e
    | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), Var v, Const c) when friendly ->
      Fmt.pf ppf "%s%s%s" v.name (binop_to_string op) (Dom.value_to_string v.dom c)
    | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), Const c, Var v) when friendly ->
      Fmt.pf ppf "%s%s%s" (Dom.value_to_string v.dom c) (binop_to_string op) v.name
    | Binop (op, a, b) ->
      let p = prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a"
          (fun ppf -> go ppf ~ctx:p)
          a (binop_to_string op)
          (fun ppf -> go ppf ~ctx:(p + 1))
          b
      in
      if p < ctx then Fmt.pf ppf "(%a)" body () else body ppf ()
    | Ite (c, a, b) ->
      Fmt.pf ppf "(%a ? %a : %a)"
        (fun ppf -> go ppf ~ctx:0)
        c
        (fun ppf -> go ppf ~ctx:0)
        a
        (fun ppf -> go ppf ~ctx:0)
        b
  in
  go ppf ~ctx:0 e

let pp ppf e = pp_gen ~friendly:false ppf e
let pp_friendly ppf e = pp_gen ~friendly:true ppf e
let to_string e = Fmt.str "%a" pp e
