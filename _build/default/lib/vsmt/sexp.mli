(** Minimal s-expressions, the on-disk syntax of impact models.

    The checker is a standalone tool that consumes models produced by an
    earlier analysis run (paper Section 4.7), so models must survive a
    round-trip through a file.  Atoms are unquoted tokens or double-quoted
    strings with [\\]-escapes. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t
val int : int -> t
val float : float -> t

val to_string : t -> string
val of_string : string -> (t, string) Stdlib.result
(** Parses exactly one s-expression (surrounding whitespace allowed). *)

val to_int : t -> int option
val to_float : t -> float option
val to_atom : t -> string option
