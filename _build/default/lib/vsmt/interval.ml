type t = { lo : int; hi : int }

(* Stay well clear of native overflow: bounds saturate at +-2^40. *)
let pos_inf = 1 lsl 40
let neg_inf = -pos_inf

let clamp v = if v > pos_inf then pos_inf else if v < neg_inf then neg_inf else v

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: empty";
  { lo = clamp lo; hi = clamp hi }

let point v = make v v
let top = { lo = neg_inf; hi = pos_inf }
let of_dom d = make (Dom.lo d) (Dom.hi d)
let is_point { lo; hi } = lo = hi
let mem v { lo; hi } = v >= lo && v <= hi
let size { lo; hi } = if lo = neg_inf || hi = pos_inf then max_int else hi - lo + 1

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let add a b = make (a.lo + b.lo) (a.hi + b.hi)
let sub a b = make (a.lo - b.hi) (a.hi - b.lo)
let neg a = make (-a.hi) (-a.lo)

let mul a b =
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi and p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  make (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))

(* Division mirrors Expr.eval semantics: x / 0 = 0.  Over-approximate by
   including 0 whenever the divisor may be 0. *)
let div a b =
  let safe_div x y = if y = 0 then 0 else x / y in
  let candidates =
    [ safe_div a.lo b.lo; safe_div a.lo b.hi; safe_div a.hi b.lo; safe_div a.hi b.hi ]
  in
  let candidates =
    (* divisor crossing +-1 can produce extreme quotients *)
    (if mem 1 b then [ a.lo; a.hi ] else [])
    @ (if mem (-1) b then [ -a.lo; -a.hi ] else [])
    @ (if mem 0 b then [ 0 ] else [])
    @ candidates
  in
  make (List.fold_left min max_int candidates) (List.fold_left max min_int candidates)

let rem a b =
  if is_point a && is_point b then point (if b.lo = 0 then 0 else a.lo mod b.lo)
  else
    let m = max (abs b.lo) (abs b.hi) in
    if m = 0 then point 0
    else if a.lo >= 0 then make 0 (min a.hi (m - 1))
    else make (-(m - 1)) (m - 1)

let cmp_result holds a b =
  let all = holds a.lo b.hi && holds a.lo b.lo && holds a.hi b.lo && holds a.hi b.hi in
  let none =
    (not (holds a.lo b.lo)) && (not (holds a.lo b.hi)) && (not (holds a.hi b.lo))
    && not (holds a.hi b.hi)
  in
  (* [all]/[none] via corner checks are only exact for monotone relations;
     <, <=, >, >= are monotone, = and <> are special-cased by callers via
     interval containment.  Conservative fallback: unknown. *)
  if all then point 1 else if none then point 0 else make 0 1

let eq_result a b =
  if is_point a && is_point b then point (if a.lo = b.lo then 1 else 0)
  else if inter a b = None then point 0
  else make 0 1

let ne_result a b =
  if is_point a && is_point b then point (if a.lo <> b.lo then 1 else 0)
  else if inter a b = None then point 1
  else make 0 1

let definitely_true i = i.lo = 1 && i.hi = 1
let definitely_false i = i.lo = 0 && i.hi = 0

let logical_and a b =
  if definitely_false a || definitely_false b then point 0
  else if definitely_true a && definitely_true b then point 1
  else make 0 1

let logical_or a b =
  if definitely_true a || definitely_true b then point 1
  else if definitely_false a && definitely_false b then point 0
  else make 0 1

let logical_not a =
  if definitely_false a then point 1 else if definitely_true a then point 0 else make 0 1

let pp ppf { lo; hi } = Fmt.pf ppf "[%d..%d]" lo hi
let equal a b = a.lo = b.lo && a.hi = b.hi
