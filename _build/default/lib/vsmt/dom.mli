(** Finite value domains for symbolic variables.

    Every symbolic variable Violet creates is range-restricted: configuration
    parameters carry the [min_value]/[max_value] (or enum member list) declared
    by the target program, and workload-template parameters are small
    enumerations.  Restricting symbolic values to valid settings is what lets
    the engine explore only the space of {e valid} configurations (paper
    Section 4.1). *)

type t =
  | Bool  (** encoded as the integers 0 and 1 *)
  | Int_range of { lo : int; hi : int }  (** inclusive integer interval *)
  | Enum of { type_name : string; members : string array }
      (** named finite enumeration; values are member indices *)

val bool : t
val int_range : int -> int -> t
val enum : string -> string list -> t

val lo : t -> int
(** Smallest integer encoding of a value in the domain. *)

val hi : t -> int
(** Largest integer encoding of a value in the domain. *)

val size : t -> int
(** Number of values in the domain ([hi - lo + 1]). *)

val mem : t -> int -> bool
(** [mem d v] is true when integer encoding [v] denotes a value of [d]. *)

val value_to_string : t -> int -> string
(** Render an integer encoding in domain terms ([ON]/[OFF] for booleans, the
    member name for enums, the decimal literal for integer ranges). *)

val value_of_string : t -> string -> int option
(** Inverse of {!value_to_string}; also accepts raw integer literals. *)

val pp : t Fmt.t
val equal : t -> t -> bool
