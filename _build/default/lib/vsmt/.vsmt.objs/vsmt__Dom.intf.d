lib/vsmt/dom.mli: Fmt
