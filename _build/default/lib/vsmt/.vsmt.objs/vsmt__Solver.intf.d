lib/vsmt/solver.mli: Expr
