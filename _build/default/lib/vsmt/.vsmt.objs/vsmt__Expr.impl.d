lib/vsmt/expr.ml: Dom Fmt Hashtbl List Stdlib
