lib/vsmt/sexp.mli: Stdlib
