lib/vsmt/sexp.ml: Buffer List Printf String
