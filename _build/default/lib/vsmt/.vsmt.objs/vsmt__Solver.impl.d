lib/vsmt/solver.ml: Dom Expr Hashtbl Int Interval List Map Simplify String
