lib/vsmt/dom.ml: Array Fmt Printf String
