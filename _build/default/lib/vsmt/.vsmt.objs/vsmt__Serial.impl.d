lib/vsmt/serial.ml: Array Dom Expr List Result Sexp
