lib/vsmt/expr.mli: Dom Fmt
