lib/vsmt/interval.ml: Dom Fmt List
