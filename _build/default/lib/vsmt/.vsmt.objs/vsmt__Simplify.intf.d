lib/vsmt/simplify.mli: Expr
