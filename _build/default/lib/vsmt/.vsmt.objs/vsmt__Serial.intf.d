lib/vsmt/serial.mli: Dom Expr Sexp
