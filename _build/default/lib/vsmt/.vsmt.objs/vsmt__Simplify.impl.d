lib/vsmt/simplify.ml: Dom Expr List
