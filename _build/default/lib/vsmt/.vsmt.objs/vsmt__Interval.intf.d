lib/vsmt/interval.mli: Dom Fmt
