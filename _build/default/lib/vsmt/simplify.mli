(** Algebraic simplification of symbolic expressions.

    The executor simplifies every expression it stores or branches on; this
    keeps path constraints small and makes many branch conditions concrete
    without ever calling the solver (e.g. after substituting a just-concretized
    variable).  Simplification is semantics-preserving: for every assignment,
    [eval env (simplify e) = eval env e] — a property-tested invariant. *)

val simplify : Expr.t -> Expr.t

val simplify_conj : Expr.t list -> Expr.t list
(** Simplify a conjunction of constraints: simplifies each conjunct, flattens
    nested [&&], drops duplicates and trivially-true conjuncts.  If any
    conjunct is trivially false the result is [[Expr.fls]]. *)
