(** S-expression serialization of domains and expressions.

    Impact models are produced by one process (the analyzer) and consumed by
    another (the checker, deployed at user sites), so constraints must
    survive a file round-trip.  [of_sexp] functions return [Error] with a
    description rather than raising. *)

val dom_to_sexp : Dom.t -> Sexp.t
val dom_of_sexp : Sexp.t -> (Dom.t, string) result

val var_to_sexp : Expr.var -> Sexp.t
val var_of_sexp : Sexp.t -> (Expr.var, string) result

val expr_to_sexp : Expr.t -> Sexp.t
val expr_of_sexp : Sexp.t -> (Expr.t, string) result
